// Robustness sweep: every wire-format parser in the library is fed
// (a) uniformly random bytes, (b) mutated valid frames, and (c)
// truncations of valid frames. Parsers must reject or accept cleanly —
// no crashes, no exceptions escaping the documented contract. This is
// the "hostile RF input" property a monitor-mode receiver lives with:
// anyone can inject anything.
#include <gtest/gtest.h>

#include "ble/pdu.hpp"
#include "dot11/eapol.hpp"
#include "dot11/frame.hpp"
#include "dot11/ie.hpp"
#include "net/arp.hpp"
#include "net/dhcp.hpp"
#include "net/ipv4.hpp"
#include "net/llc.hpp"
#include "net/udp.hpp"
#include "util/rng.hpp"
#include "wile/codec.hpp"
#include "wile/gateway.hpp"

namespace wile {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

/// Run `parse` over random inputs; the parser may return an empty result
/// but must not crash or throw.
template <typename Fn>
void fuzz_random(std::uint64_t seed, std::size_t iterations, std::size_t max_len,
                 Fn&& parse) {
  Rng rng{seed};
  for (std::size_t i = 0; i < iterations; ++i) {
    const Bytes input = random_bytes(rng, max_len);
    EXPECT_NO_THROW(parse(BytesView{input}));
  }
}

/// Run `parse` over single-byte mutations and truncations of `valid`.
template <typename Fn>
void fuzz_mutations(const Bytes& valid, std::uint64_t seed, Fn&& parse) {
  Rng rng{seed};
  for (int i = 0; i < 300; ++i) {
    Bytes mutated = valid;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    EXPECT_NO_THROW(parse(BytesView{mutated}));
  }
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_NO_THROW(parse(BytesView{valid.data(), len}));
  }
}

TEST(FuzzParsers, ParseMpduNeverCrashes) {
  auto parse = [](BytesView in) { (void)dot11::parse_mpdu(in); };
  fuzz_random(1, 2000, 400, parse);
  const Bytes beacon = dot11::build_mgmt_mpdu(
      dot11::MgmtSubtype::Beacon, MacAddress::broadcast(), MacAddress::from_seed(1),
      MacAddress::from_seed(1), 7, dot11::Beacon{}.encode());
  fuzz_mutations(beacon, 2, parse);
}

TEST(FuzzParsers, ControlFrameParsersNeverCrash) {
  auto parse = [](BytesView in) {
    (void)dot11::parse_ack(in);
    (void)dot11::parse_ps_poll(in);
    (void)dot11::is_control_frame(in);
  };
  fuzz_random(3, 2000, 40, parse);
  fuzz_mutations(dot11::build_ack(MacAddress::from_seed(2)), 4, parse);
  fuzz_mutations(dot11::build_ps_poll(5, MacAddress::from_seed(1), MacAddress::from_seed(2)),
                 5, parse);
}

TEST(FuzzParsers, BeaconBodyDecoderToleratesGarbageIes) {
  auto parse = [](BytesView in) { (void)dot11::Beacon::decode(in); };
  fuzz_random(6, 2000, 300, parse);
  dot11::Beacon beacon;
  beacon.ies.add(dot11::make_ssid_ie("Net"));
  beacon.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  beacon.ies.add(dot11::make_tim_ie(dot11::Tim{}));
  fuzz_mutations(beacon.encode(), 7, parse);
}

TEST(FuzzParsers, MgmtBodyDecodersNeverCrash) {
  auto parse = [](BytesView in) {
    (void)dot11::ProbeRequest::decode(in);
    (void)dot11::ProbeResponse::decode(in);
    (void)dot11::Authentication::decode(in);
    (void)dot11::AssocRequest::decode(in);
    (void)dot11::AssocResponse::decode(in);
    (void)dot11::Deauthentication::decode(in);
  };
  fuzz_random(8, 2000, 200, parse);
}

TEST(FuzzParsers, EapolDecoderNeverCrashes) {
  auto parse = [](BytesView in) { (void)dot11::EapolKeyFrame::decode(in); };
  fuzz_random(9, 2000, 250, parse);
  std::array<std::uint8_t, 32> nonce{};
  fuzz_mutations(dot11::make_handshake_m1(1, nonce).encode(), 10, parse);
}

TEST(FuzzParsers, IeListParserThrowsOnlyBufferUnderflow) {
  Rng rng{11};
  for (int i = 0; i < 2000; ++i) {
    const Bytes input = random_bytes(rng, 200);
    try {
      ByteReader r{input};
      (void)dot11::IeList::read_from(r);
    } catch (const BufferUnderflow&) {
      // Documented: truncated elements throw this, nothing else.
    }
  }
}

TEST(FuzzParsers, NetworkStackDecodersNeverCrash) {
  auto parse = [](BytesView in) {
    (void)net::LlcSnap::decode(in);
    (void)net::ArpPacket::decode(in);
    (void)net::Ipv4Header::decode(in);
    (void)net::DhcpMessage::decode(in);
    (void)net::UdpDatagram::decode(in, net::Ipv4Address{10, 0, 0, 1},
                                   net::Ipv4Address{10, 0, 0, 2});
  };
  fuzz_random(12, 2000, 400, parse);
  const auto discover = net::DhcpMessage::discover(7, MacAddress::from_seed(1));
  fuzz_mutations(discover.encode(), 13, parse);
}

TEST(FuzzParsers, WileCodecNeverCrashes) {
  core::Codec plain;
  core::Codec keyed{Bytes(16, 0x42)};
  Rng rng{14};
  for (int i = 0; i < 2000; ++i) {
    dot11::InfoElement ie;
    ie.id = dot11::IeId::VendorSpecific;
    ie.data = random_bytes(rng, 255);
    EXPECT_NO_THROW((void)plain.decode(ie));
    EXPECT_NO_THROW((void)keyed.decode(ie));
  }
  // Mutations of a valid element.
  core::Message msg;
  msg.device_id = 7;
  msg.data = Bytes(50, 0xab);
  auto ies = keyed.encode(msg);
  Rng mut{15};
  for (int i = 0; i < 300; ++i) {
    dot11::InfoElement ie = ies[0];
    ie.data[mut.below(ie.data.size())] ^= static_cast<std::uint8_t>(1u << mut.below(8));
    EXPECT_NO_THROW((void)keyed.decode(ie));
  }
}

TEST(FuzzParsers, FecPayloadDecodersNeverCrash) {
  auto parse = [](BytesView in) {
    (void)core::decode_recovery_payload(in);
    (void)core::decode_channel_report(in);
  };
  fuzz_random(21, 2000, 300, parse);

  core::RecoveryPayload payload;
  payload.base_sequence = 0xfffffffe;
  for (int i = 0; i < 4; ++i) {
    payload.entries.push_back({core::MessageType::Telemetry,
                               static_cast<std::uint16_t>(8 + i)});
  }
  payload.xor_block = Bytes(11, 0x3c);
  fuzz_mutations(core::encode_recovery_payload(payload), 22, parse);
  fuzz_mutations(core::encode_channel_report({123456, 437, 16}), 23, parse);
}

TEST(FuzzParsers, MutatedParityElementsNeverCrashReassembly) {
  // The full parity path — decode + reassembly + XOR reconstruction —
  // must survive arbitrary corruption of any element in a parity train.
  core::Codec codec;
  core::Message msg;
  msg.device_id = 9;
  msg.sequence = 3;
  msg.data = Bytes(3 * codec.max_fragment_data(true, false), 0x61);
  const auto ies = codec.encode(msg, /*parity=*/true);
  ASSERT_GE(ies.size(), 4u);

  Rng rng{24};
  for (int i = 0; i < 500; ++i) {
    core::Reassembler reassembler;
    for (std::size_t e = 0; e < ies.size(); ++e) {
      dot11::InfoElement ie = ies[e];
      if (e == rng.below(ies.size())) {
        ie.data[rng.below(ie.data.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
      }
      auto fragment = codec.decode(ie);
      if (!fragment) continue;  // CRC catches most mutations
      EXPECT_NO_THROW((void)reassembler.add(*fragment));
    }
  }
}

TEST(FuzzParsers, BlePacketParserNeverCrashes) {
  auto parse = [](BytesView in) {
    (void)ble::parse_air_packet(in, 37);
    (void)ble::AdvertisingPdu::decode(in);
    (void)ble::DataPdu::decode(in);
  };
  fuzz_random(16, 2000, 60, parse);
  ble::AdvertisingPdu pdu;
  pdu.advertiser = MacAddress::from_seed(3);
  pdu.adv_data = Bytes(20, 0x11);
  fuzz_mutations(ble::assemble_air_packet(ble::kAdvAccessAddress, pdu.encode(), 37), 17,
                 parse);
}

TEST(FuzzParsers, ForwardedReadingNeverCrashes) {
  auto parse = [](BytesView in) { (void)core::ForwardedReading::decode(in); };
  fuzz_random(18, 2000, 300, parse);
  core::ForwardedReading reading;
  reading.data = Bytes(40, 0x22);
  fuzz_mutations(reading.encode(), 19, parse);
}

TEST(FuzzParsers, ForwardedBatchNeverCrashes) {
  auto parse = [](BytesView in) { (void)core::ForwardedBatch::decode(in); };
  fuzz_random(22, 2000, 400, parse);
  core::ForwardedBatch batch;
  for (int i = 0; i < 3; ++i) {
    core::ForwardedReading reading;
    reading.device_id = static_cast<std::uint32_t>(0x100 + i);
    reading.sequence = static_cast<std::uint32_t>(i);
    reading.data = Bytes(static_cast<std::size_t>(10 + i), 0x33);
    batch.readings.push_back(std::move(reading));
  }
  fuzz_mutations(batch.encode(), 23, parse);
}

TEST(FuzzParsers, MutatedMpduNeverAcceptedWithGoodFcs) {
  // Stronger property: any single-bit mutation of a valid MPDU must
  // flip fcs_ok to false (CRC-32 detects all single-bit errors).
  const Bytes beacon = dot11::build_mgmt_mpdu(
      dot11::MgmtSubtype::Beacon, MacAddress::broadcast(), MacAddress::from_seed(1),
      MacAddress::from_seed(1), 7, dot11::Beacon{}.encode());
  Rng rng{20};
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = beacon;
    mutated[rng.below(mutated.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    auto parsed = dot11::parse_mpdu(mutated);
    if (!parsed) continue;  // header-level rejection is fine
    EXPECT_FALSE(parsed->fcs_ok);
  }
}

}  // namespace
}  // namespace wile
