// Tests for the background traffic generator and the OS scan-list model
// (the §4.1 spam-avoidance reproduction).
#include <gtest/gtest.h>

#include "ap/access_point.hpp"
#include "sim/traffic.hpp"
#include "wile/scan_list.hpp"
#include "wile/sender.hpp"

namespace wile {
namespace {

// ---------------------------------------------------------------------------
// Traffic generator
// ---------------------------------------------------------------------------

class TrafficTest : public ::testing::Test {
 protected:
  sim::Scheduler scheduler_;
  sim::Medium medium_{scheduler_, phy::Channel{}, Rng{1}};
};

TEST_F(TrafficTest, DeliversOfferedLoad) {
  sim::TrafficConfig cfg;
  cfg.frames_per_second = 100.0;
  sim::TrafficSink sink{scheduler_, medium_, {3, 0}, cfg.sink_mac};
  sim::TrafficSource source{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  source.start();
  scheduler_.run_until(TimePoint{seconds(10)});
  source.stop();

  // Poisson arrivals at 100 f/s for 10 s: ~1000 frames, all delivered on
  // a clean channel.
  EXPECT_GT(source.frames_offered(), 900u);
  EXPECT_LT(source.frames_offered(), 1100u);
  EXPECT_EQ(source.frames_failed(), 0u);
  EXPECT_NEAR(static_cast<double>(sink.frames_received()),
              static_cast<double>(source.frames_delivered()), 2.0);
}

TEST_F(TrafficTest, ThroughputScalesWithOfferedLoad) {
  auto run = [&](double fps) {
    sim::Scheduler scheduler;
    sim::Medium medium{scheduler, phy::Channel{}, Rng{3}};
    sim::TrafficConfig cfg;
    cfg.frames_per_second = fps;
    sim::TrafficSink sink{scheduler, medium, {3, 0}, cfg.sink_mac};
    sim::TrafficSource source{scheduler, medium, {0, 0}, cfg, Rng{4}};
    source.start();
    scheduler.run_until(TimePoint{seconds(5)});
    return sink.bytes_received();
  };
  const auto low = run(50);
  const auto high = run(400);
  EXPECT_GT(high, low * 6);
}

TEST_F(TrafficTest, TwoSourcesShareTheChannel) {
  sim::TrafficConfig cfg_a;
  cfg_a.source_mac = MacAddress::from_seed(0xA1);
  cfg_a.sink_mac = MacAddress::from_seed(0xA2);
  cfg_a.frames_per_second = 400;
  sim::TrafficConfig cfg_b;
  cfg_b.source_mac = MacAddress::from_seed(0xB1);
  cfg_b.sink_mac = MacAddress::from_seed(0xB2);
  cfg_b.frames_per_second = 400;

  sim::TrafficSink sink_a{scheduler_, medium_, {3, 0}, cfg_a.sink_mac};
  sim::TrafficSink sink_b{scheduler_, medium_, {0, 3}, cfg_b.sink_mac};
  sim::TrafficSource src_a{scheduler_, medium_, {0, 0}, cfg_a, Rng{5}};
  sim::TrafficSource src_b{scheduler_, medium_, {1, 0}, cfg_b, Rng{6}};
  src_a.start();
  src_b.start();
  scheduler_.run_until(TimePoint{seconds(5)});

  // CSMA shares the medium: both flows make progress and loss stays low.
  EXPECT_GT(sink_a.frames_received(), 1000u);
  EXPECT_GT(sink_b.frames_received(), 1000u);
  const auto delivered = src_a.frames_delivered() + src_b.frames_delivered();
  const auto failed = src_a.frames_failed() + src_b.frames_failed();
  EXPECT_LT(static_cast<double>(failed), 0.02 * static_cast<double>(delivered + failed));
}

// ---------------------------------------------------------------------------
// Scan list (§4.1)
// ---------------------------------------------------------------------------

class ScanListTest : public ::testing::Test {
 protected:
  sim::Scheduler scheduler_;
  sim::Medium medium_{scheduler_, phy::Channel{}, Rng{1}};
};

TEST_F(ScanListTest, HiddenWiLeDevicesStayOffTheList) {
  core::ScanListModel phone{scheduler_, medium_, {0, 0}};

  std::vector<std::unique_ptr<core::Sender>> sensors;
  Rng seeder{2};
  for (int i = 0; i < 8; ++i) {
    core::SenderConfig cfg;
    cfg.device_id = 100 + i;
    cfg.period = seconds(1);
    cfg.wake_jitter = msec(30);
    sensors.push_back(std::make_unique<core::Sender>(
        scheduler_, medium_, sim::Position{1.0 + i * 0.3, 1}, cfg, seeder.fork()));
    sensors.back()->start_duty_cycle([] { return Bytes{1}; });
  }
  scheduler_.run_until(TimePoint{seconds(10)});
  for (auto& s : sensors) s->stop_duty_cycle();

  // The user's list is empty; the OS counted the hidden BSSIDs though.
  EXPECT_TRUE(phone.visible().empty());
  EXPECT_EQ(phone.hidden_networks(), 8u);
  EXPECT_GT(phone.beacons_processed(), 50u);
}

TEST_F(ScanListTest, SpoofedSsidDevicesSpamTheList) {
  core::ScanListModel phone{scheduler_, medium_, {0, 0}};

  std::vector<std::unique_ptr<core::Sender>> sensors;
  Rng seeder{3};
  for (int i = 0; i < 8; ++i) {
    core::SenderConfig cfg;
    cfg.device_id = 200 + i;
    cfg.period = seconds(1);
    cfg.wake_jitter = msec(30);
    cfg.spoofed_ssid = "IoT-Sensor-" + std::to_string(i);
    sensors.push_back(std::make_unique<core::Sender>(
        scheduler_, medium_, sim::Position{1.0 + i * 0.3, 1}, cfg, seeder.fork()));
    sensors.back()->start_duty_cycle([] { return Bytes{1}; });
  }
  scheduler_.run_until(TimePoint{seconds(10)});
  for (auto& s : sensors) s->stop_duty_cycle();

  // Exactly the §4.1 nightmare: eight junk entries in the user's list.
  EXPECT_EQ(phone.visible().size(), 8u);
}

TEST_F(ScanListTest, RealApListedWithMetadata) {
  core::ScanListModel phone{scheduler_, medium_, {2, 0}};
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler_, medium_, {0, 0}, ap_cfg, Rng{4}};
  ap.start();
  scheduler_.run_until(TimePoint{seconds(2)});

  const auto list = phone.visible();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].ssid, ap_cfg.ssid);
  EXPECT_EQ(list[0].bssid, ap_cfg.bssid);
  EXPECT_TRUE(list[0].rsn_protected);
  EXPECT_GT(list[0].beacons, 10u);
  EXPECT_LT(list[0].rssi_dbm, 0.0);
}

TEST_F(ScanListTest, VisibleSortedByRssi) {
  core::ScanListModel phone{scheduler_, medium_, {0, 0}};
  ap::AccessPointConfig near_cfg;
  near_cfg.ssid = "NearNet";
  near_cfg.bssid = MacAddress::from_seed(1);
  ap::AccessPointConfig far_cfg;
  far_cfg.ssid = "FarNet";
  far_cfg.bssid = MacAddress::from_seed(2);
  ap::AccessPoint near_ap{scheduler_, medium_, {1, 0}, near_cfg, Rng{5}};
  ap::AccessPoint far_ap{scheduler_, medium_, {20, 0}, far_cfg, Rng{6}};
  near_ap.start();
  far_ap.start();
  scheduler_.run_until(TimePoint{seconds(2)});

  const auto list = phone.visible();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].ssid, "NearNet");
  EXPECT_EQ(list[1].ssid, "FarNet");
}

}  // namespace
}  // namespace wile
