// Round-trip tests for the pcap reader (paired with the writer) and an
// end-to-end capture -> file -> decode pipeline like wile_inspect's.
#include <gtest/gtest.h>

#include <cstdio>

#include "dot11/frame.hpp"
#include "sim/tap.hpp"
#include "util/pcap.hpp"
#include "wile/sender.hpp"

namespace wile {
namespace {

TEST(PcapRead, RoundTripsBufferContents) {
  PcapBuffer buf{PcapLinkType::Ieee80211};
  buf.write(TimePoint{seconds(1) + usec(500)}, Bytes{1, 2, 3});
  buf.write(TimePoint{seconds(2)}, Bytes{4, 5});

  const auto file = read_pcap(buf.bytes());
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->link_type, PcapLinkType::Ieee80211);
  ASSERT_EQ(file->records.size(), 2u);
  EXPECT_EQ(file->records[0].timestamp.us(), 1'000'500);
  EXPECT_EQ(file->records[0].frame, (Bytes{1, 2, 3}));
  EXPECT_EQ(file->records[1].timestamp.us(), 2'000'000);
  EXPECT_EQ(file->records[1].frame, (Bytes{4, 5}));
}

TEST(PcapRead, RejectsBadMagicAndTruncation) {
  EXPECT_FALSE(read_pcap(Bytes{1, 2, 3}).has_value());
  PcapBuffer buf{PcapLinkType::Ieee80211};
  buf.write(TimePoint{usec(1)}, Bytes{1, 2, 3});
  Bytes truncated = buf.bytes();
  truncated.resize(truncated.size() - 2);
  EXPECT_FALSE(read_pcap(truncated).has_value());
  Bytes bad_magic = buf.bytes();
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(read_pcap(bad_magic).has_value());
}

TEST(PcapRead, EmptyCaptureIsValid) {
  PcapBuffer buf{PcapLinkType::User0};
  const auto file = read_pcap(buf.bytes());
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->link_type, PcapLinkType::User0);
  EXPECT_TRUE(file->records.empty());
}

TEST(PcapRead, FileRoundTripThroughDisk) {
  const std::string path = "/tmp/wile_test_roundtrip.pcap";
  {
    // Capture a real Wi-LE transmission to disk.
    sim::Scheduler scheduler;
    sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
    PcapWriter writer{path, PcapLinkType::Ieee80211};
    sim::CaptureTap tap{scheduler, medium, {1, 0}, writer};
    core::SenderConfig cfg;
    cfg.device_id = 0x1717;
    core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
    sender.send_now(Bytes{'1', '7'}, {});
    scheduler.run_until_idle();
    writer.flush();
  }

  const auto file = read_pcap_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(file.has_value());
  ASSERT_EQ(file->records.size(), 1u);

  // The captured frame decodes back to the original message.
  auto parsed = dot11::parse_mpdu(file->records[0].frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  auto beacon = dot11::Beacon::decode(parsed->body);
  ASSERT_TRUE(beacon.has_value());
  core::Codec codec;
  const auto fragments = codec.decode_all(beacon->ies);
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0].device_id, 0x1717u);
  EXPECT_EQ(fragments[0].data, (Bytes{'1', '7'}));
}

TEST(PcapRead, MissingFileReturnsNullopt) {
  EXPECT_FALSE(read_pcap_file("/tmp/does_not_exist_wile.pcap").has_value());
}

}  // namespace
}  // namespace wile
