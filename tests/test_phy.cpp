// Unit tests for src/phy: rate tables, airtime formulas, BLE PHY timing,
// the channel/PER model, and the energy-per-bit accounting behind E6.
#include <gtest/gtest.h>

#include "phy/airtime.hpp"
#include "phy/ble_phy.hpp"
#include "phy/channel.hpp"
#include "phy/energy.hpp"
#include "phy/rates.hpp"
#include "util/rng.hpp"

namespace wile::phy {
namespace {

// ---------------------------------------------------------------------------
// Rates
// ---------------------------------------------------------------------------

TEST(Rates, TableIsComplete) {
  EXPECT_EQ(all_rates().size(), 21u);
  for (const RateInfo& info : all_rates()) {
    EXPECT_GT(info.bits_per_us, 0.0);
    if (info.modulation != Modulation::Dsss) EXPECT_GT(info.n_dbps, 0);
  }
}

TEST(Rates, PaperRateIs72Mbps) {
  const RateInfo& info = rate_info(WifiRate::Mcs7Sgi);
  EXPECT_NEAR(info.bits_per_us, 72.2, 0.01);
  EXPECT_TRUE(info.short_gi);
  EXPECT_EQ(info.modulation, Modulation::HtMixed);
}

TEST(Rates, ParseByName) {
  EXPECT_EQ(parse_rate("72M"), WifiRate::Mcs7Sgi);
  EXPECT_EQ(parse_rate("6M"), WifiRate::G6);
  EXPECT_EQ(parse_rate("5.5M"), WifiRate::B5_5);
  EXPECT_EQ(parse_rate("mcs3"), WifiRate::Mcs3);
  EXPECT_FALSE(parse_rate("99M").has_value());
}

// ---------------------------------------------------------------------------
// Airtime
// ---------------------------------------------------------------------------

TEST(Airtime, DsssIsPreamblePlusPayload) {
  // 100 bytes at 1 Mbps: 192 us preamble + 800 us payload.
  EXPECT_EQ(frame_airtime(100, WifiRate::B1).count(), 992);
  // At 11 Mbps: 192 + ceil-ish 800/11 = 192 + 72.7 -> 264 (rounded).
  EXPECT_NEAR(frame_airtime(100, WifiRate::B11).count(), 265, 1.0);
}

TEST(Airtime, OfdmMatchesStandardFormula) {
  // 100 bytes at 6 Mbps: 20 + 4*ceil((16+6+800)/24) + 6 = 20 + 4*35 + 6.
  EXPECT_EQ(frame_airtime(100, WifiRate::G6).count(), 166);
  // 1500 bytes at 54 Mbps: 20 + 4*ceil(12022/216) + 6 = 20 + 4*56 + 6.
  EXPECT_EQ(frame_airtime(1500, WifiRate::G54).count(), 250);
}

TEST(Airtime, HtSgiSymbolsAre3_6us) {
  // 100 bytes MCS7 SGI: 36 + 3.6*ceil(822/260) + 6 = 36 + 3.6*4 + 6 = 56.4.
  const auto t = frame_airtime(100, WifiRate::Mcs7Sgi);
  EXPECT_NEAR(static_cast<double>(t.count()), 56.4, 1.0);
}

TEST(Airtime, MonotonicInFrameSize) {
  for (const RateInfo& info : all_rates()) {
    EXPECT_LE(frame_airtime(50, info.rate).count(), frame_airtime(500, info.rate).count())
        << info.name;
  }
}

TEST(Airtime, FasterRateNeverSlower) {
  EXPECT_LT(frame_airtime(500, WifiRate::Mcs7Sgi).count(),
            frame_airtime(500, WifiRate::G6).count());
  EXPECT_LT(frame_airtime(500, WifiRate::G54).count(),
            frame_airtime(500, WifiRate::G6).count());
}

TEST(Airtime, AckIsShort) {
  // 14-byte ACK at 24 Mbps: 20 + 4*ceil(134/96) + 6 = 34 us.
  EXPECT_EQ(ack_airtime().count(), 34);
}

TEST(Airtime, MacTimingConstants) {
  EXPECT_EQ(MacTiming::kSifs.count(), 10);
  EXPECT_EQ(MacTiming::kSlot.count(), 9);
  EXPECT_EQ(MacTiming::kDifs.count(), 28);
}

// ---------------------------------------------------------------------------
// BLE PHY
// ---------------------------------------------------------------------------

TEST(BlePhyTiming, PduAirtime) {
  // Empty data PDU: 10 bytes on air = 80 us at 1 Mbps.
  EXPECT_EQ(BlePhy::pdu_airtime(0).count(), 80);
  // Full advertising payload: 10 + 37 = 47 bytes = 376 us.
  EXPECT_EQ(BlePhy::pdu_airtime(37).count(), 376);
}

TEST(BlePhyTiming, TifsIs150us) { EXPECT_EQ(BlePhy::kTifs.count(), 150); }

// ---------------------------------------------------------------------------
// Channel model
// ---------------------------------------------------------------------------

TEST(Channel, RxPowerDecaysWithDistance) {
  Channel ch;
  EXPECT_GT(ch.rx_power_dbm(0.0, 1.0), ch.rx_power_dbm(0.0, 10.0));
  EXPECT_GT(ch.rx_power_dbm(0.0, 10.0), ch.rx_power_dbm(0.0, 100.0));
}

TEST(Channel, ReferenceLossAtOneMeter) {
  Channel ch;
  EXPECT_NEAR(ch.rx_power_dbm(0.0, 1.0), -40.0, 1e-9);
}

TEST(Channel, PerBoundsAndMonotonicity) {
  Channel ch;
  double last_per = 0.0;
  for (double snr = 40.0; snr >= 0.0; snr -= 5.0) {
    const double per = ch.packet_error_rate(snr, WifiRate::Mcs7Sgi, 200);
    EXPECT_GE(per, 0.0);
    EXPECT_LE(per, 1.0);
    EXPECT_GE(per, last_per - 1e-12);  // PER grows as SNR falls
    last_per = per;
  }
}

TEST(Channel, LongerFramesFailMore) {
  Channel ch;
  const double snr = 26.0;
  EXPECT_LT(ch.packet_error_rate(snr, WifiRate::Mcs7Sgi, 50),
            ch.packet_error_rate(snr, WifiRate::Mcs7Sgi, 1500));
}

TEST(Channel, RobustRatesReachFurther) {
  Channel ch;
  const double r6 = ch.max_range_m(0.0, WifiRate::G6, 100);
  const double r72 = ch.max_range_m(0.0, WifiRate::Mcs7Sgi, 100);
  EXPECT_GT(r6, r72);
}

TEST(Channel, PaperRangeClaim72MbpsAt0dBm) {
  // §5.4: 72 Mbps at 0 dBm has "a similar range as BLE ... (i.e., a few
  // meters)". Both links should land in the single-digit-meters regime
  // and within ~2x of each other.
  Channel ch;
  const double wifi_range = ch.max_range_m(0.0, WifiRate::Mcs7Sgi, 150);
  const double ble_range = ch.ble_max_range_m(0.0, 47);
  EXPECT_GT(wifi_range, 1.0);
  EXPECT_LT(wifi_range, 20.0);
  EXPECT_GT(ble_range / wifi_range, 0.5);
  EXPECT_LT(ble_range / wifi_range, 2.0);
}

TEST(Channel, FrameLostIsDeterministicGivenSeed) {
  Channel ch;
  Rng a{1}, b{1};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ch.frame_lost(a, 0.0, 8.0, WifiRate::Mcs7Sgi, 200),
              ch.frame_lost(b, 0.0, 8.0, WifiRate::Mcs7Sgi, 200));
  }
}

TEST(Channel, CloseRangeIsReliable) {
  Channel ch;
  Rng rng{2};
  int losses = 0;
  for (int i = 0; i < 1000; ++i) {
    if (ch.frame_lost(rng, 0.0, 1.0, WifiRate::Mcs7Sgi, 200)) ++losses;
  }
  EXPECT_LT(losses, 5);
}

// ---------------------------------------------------------------------------
// Energy per bit (E6 backing maths)
// ---------------------------------------------------------------------------

TEST(EnergyPerBit, WifiSpansPaperRange) {
  // "10-100 nJ/bit depending on the bitrate" across the OFDM/HT ladder.
  EXPECT_NEAR(in_nanojoules(wifi_energy_per_bit(WifiRate::G6)), 100.0, 1.0);
  EXPECT_LT(in_nanojoules(wifi_energy_per_bit(WifiRate::Mcs7Sgi)), 10.0);
  EXPECT_GT(in_nanojoules(wifi_energy_per_bit(WifiRate::Mcs7Sgi)), 5.0);
}

TEST(EnergyPerBit, BleEffectiveMatchesPaperRange) {
  const double nj = in_nanojoules(ble_effective_energy_per_bit());
  EXPECT_GT(nj, 260.0);
  EXPECT_LT(nj, 310.0);
}

TEST(EnergyPerBit, BleRawIsCheaperThanEffective) {
  EXPECT_LT(ble_raw_energy_per_bit().value, ble_effective_energy_per_bit().value);
}

TEST(EnergyPerBit, EffectiveWifiIncludesPreambleOverhead) {
  // Small frames pay proportionally more preamble.
  EXPECT_GT(wifi_effective_energy_per_bit(20, WifiRate::Mcs7Sgi).value,
            wifi_effective_energy_per_bit(1000, WifiRate::Mcs7Sgi).value);
  // And always at least the steady-state PHY cost.
  EXPECT_GE(wifi_effective_energy_per_bit(1000, WifiRate::Mcs7Sgi).value,
            wifi_energy_per_bit(WifiRate::Mcs7Sgi).value);
}

}  // namespace
}  // namespace wile::phy
