// Integration tests for the Wi-LE -> infrastructure gateway: Wi-LE
// sensors on one side, a real WPA2 association + UDP uplink on the other.
#include <gtest/gtest.h>

#include "ap/access_point.hpp"
#include "wile/gateway.hpp"
#include "wile/sender.hpp"

namespace wile::core {
namespace {

TEST(ForwardedReading, RoundTrip) {
  ForwardedReading r;
  r.device_id = 0xAABB;
  r.sequence = 17;
  r.type = MessageType::Telemetry;
  r.rssi_dbm = -55;
  r.data = {1, 2, 3};
  const auto back = ForwardedReading::decode(r.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, r);
}

TEST(ForwardedReading, RejectsLengthMismatch) {
  ForwardedReading r;
  r.data = {1, 2, 3};
  Bytes raw = r.encode();
  raw.pop_back();
  EXPECT_FALSE(ForwardedReading::decode(raw).has_value());
  EXPECT_FALSE(ForwardedReading::decode(Bytes{1, 2}).has_value());
}

class GatewayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ap::AccessPointConfig ap_cfg;
    ap_ = std::make_unique<ap::AccessPoint>(scheduler_, medium_, sim::Position{0, 0},
                                            ap_cfg, Rng{10});
    ap_->set_uplink_handler([this](const MacAddress&, const net::Ipv4Header&,
                                   const net::UdpDatagram& udp) {
      if (auto batch = ForwardedBatch::decode(udp.payload)) {
        ++server_batches_;
        for (ForwardedReading& r : batch->readings) {
          server_received_.push_back(std::move(r));
        }
      }
    });
    ap_->start();

    GatewayConfig gw_cfg;
    gw_cfg.station.mac = MacAddress::from_seed(0x6A7E);
    gateway_ = std::make_unique<Gateway>(scheduler_, medium_, sim::Position{3, 0}, gw_cfg,
                                         Rng{20});
  }

  bool start_gateway() {
    bool ready = false;
    gateway_->start([&](bool ok) { ready = ok; });
    scheduler_.run_until(scheduler_.now() + seconds(10));
    return ready;
  }

  sim::Scheduler scheduler_;
  sim::Medium medium_{scheduler_, phy::Channel{}, Rng{1}};
  std::unique_ptr<ap::AccessPoint> ap_;
  std::unique_ptr<Gateway> gateway_;
  std::vector<ForwardedReading> server_received_;
  std::size_t server_batches_ = 0;
};

TEST_F(GatewayTest, BridgesWiLeMessageToServer) {
  ASSERT_TRUE(start_gateway());

  SenderConfig sensor_cfg;
  sensor_cfg.device_id = 0x501;
  Sender sensor{scheduler_, medium_, {5, 0}, sensor_cfg, Rng{30}};
  sensor.send_now(Bytes{'1', '7', 'C'}, {});
  scheduler_.run_until(scheduler_.now() + seconds(5));

  ASSERT_EQ(server_received_.size(), 1u);
  EXPECT_EQ(server_received_[0].device_id, 0x501u);
  EXPECT_EQ(server_received_[0].data, (Bytes{'1', '7', 'C'}));
  EXPECT_LT(server_received_[0].rssi_dbm, 0);
  EXPECT_EQ(gateway_->stats().forwarded, 1u);
}

TEST_F(GatewayTest, QueuesBurstsAndDrainsInOrder) {
  ASSERT_TRUE(start_gateway());

  // Three sensors fire nearly simultaneously; the PS uplink (~155 ms per
  // send) forces queueing.
  std::vector<std::unique_ptr<Sender>> sensors;
  for (int i = 0; i < 3; ++i) {
    SenderConfig cfg;
    cfg.device_id = 0x600 + i;
    sensors.push_back(std::make_unique<Sender>(scheduler_, medium_,
                                               sim::Position{5.0 + i, 0}, cfg,
                                               Rng{40 + i}));
  }
  for (int i = 0; i < 3; ++i) {
    scheduler_.schedule_in(msec(i * 5), [&, i] {
      sensors[i]->send_now(Bytes{static_cast<std::uint8_t>(i)}, {});
    });
  }
  scheduler_.run_until(scheduler_.now() + seconds(10));

  ASSERT_EQ(server_received_.size(), 3u);
  EXPECT_EQ(gateway_->stats().forwarded, 3u);
  EXPECT_EQ(gateway_->stats().dropped_queue_full, 0u);
  std::vector<std::uint32_t> ids;
  for (const auto& r : server_received_) ids.push_back(r.device_id);
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{0x600, 0x601, 0x602}));
}

TEST_F(GatewayTest, QueueOverflowDropsOldest) {
  GatewayConfig tiny_cfg;
  tiny_cfg.station.mac = MacAddress::from_seed(0x6B7E);
  tiny_cfg.max_queue = 2;
  Gateway tiny{scheduler_, medium_, {3, 1}, tiny_cfg, Rng{50}};
  // Never started: the uplink stays down, so everything queues.
  SenderConfig cfg;
  cfg.device_id = 0x700;
  Sender sensor{scheduler_, medium_, {5, 1}, cfg, Rng{60}};
  for (int i = 0; i < 4; ++i) {
    sensor.send_now(Bytes{static_cast<std::uint8_t>(i)}, {});
    scheduler_.run_until(scheduler_.now() + seconds(1));
  }
  EXPECT_EQ(tiny.stats().received, 4u);
  EXPECT_EQ(tiny.stats().dropped_queue_full, 2u);
  EXPECT_EQ(tiny.stats().forwarded, 0u);
}

TEST_F(GatewayTest, EncryptedSensorsNeedMatchingMonitorKey) {
  GatewayConfig keyed_cfg;
  keyed_cfg.station.mac = MacAddress::from_seed(0x6C7E);
  keyed_cfg.monitor.key = Bytes(16, 0x77);
  Gateway keyed{scheduler_, medium_, {3, 2}, keyed_cfg, Rng{70}};
  bool ready = false;
  keyed.start([&](bool ok) { ready = ok; });
  scheduler_.run_until(scheduler_.now() + seconds(10));
  ASSERT_TRUE(ready);

  SenderConfig good;
  good.device_id = 1;
  good.key = Bytes(16, 0x77);
  SenderConfig bad;
  bad.device_id = 2;
  bad.key = Bytes(16, 0x78);
  Sender s_good{scheduler_, medium_, {5, 2}, good, Rng{71}};
  Sender s_bad{scheduler_, medium_, {6, 2}, bad, Rng{72}};
  s_good.send_now(Bytes{1}, {});
  scheduler_.run_until(scheduler_.now() + seconds(2));
  s_bad.send_now(Bytes{2}, {});
  scheduler_.run_until(scheduler_.now() + seconds(5));

  EXPECT_EQ(keyed.stats().received, 1u);   // only the matching key decodes
  EXPECT_EQ(keyed.stats().forwarded, 1u);
  ASSERT_EQ(server_received_.size(), 1u);
  EXPECT_EQ(server_received_[0].device_id, 1u);
}

TEST_F(GatewayTest, UplinkStallOverflowsQueueNewestFirst) {
  GatewayConfig cfg;
  cfg.station.mac = MacAddress::from_seed(0x6D7E);
  cfg.max_queue = 2;
  Gateway gw{scheduler_, medium_, {3, 3}, cfg, Rng{80}};
  bool ready = false;
  gw.start([&](bool ok) { ready = ok; });
  scheduler_.run_until(scheduler_.now() + seconds(10));
  ASSERT_TRUE(ready);

  ap_->stop();  // outage: the uplink stalls and readings pile up

  SenderConfig scfg;
  scfg.device_id = 0x800;
  Sender sensor{scheduler_, medium_, {5, 3}, scfg, Rng{81}};
  for (int i = 0; i < 6; ++i) {
    sensor.send_now(Bytes{static_cast<std::uint8_t>(i)}, {});
    scheduler_.run_until(scheduler_.now() + seconds(2));
  }

  EXPECT_EQ(gw.stats().received, 6u);
  EXPECT_EQ(gw.stats().forwarded, 0u);
  EXPECT_GE(gw.stats().uplink_losses, 1u);   // the stalled send killed the link
  EXPECT_GE(gw.stats().dropped_queue_full, 3u);  // cap 2, newest retained
}

TEST_F(GatewayTest, OutageRetriesKeepOriginalOrderAcrossBatches) {
  // Small batches so the post-recovery drain spans several send cycles:
  // retried readings must come back out in their original order even
  // across batch boundaries (push_front requeue, front-first refill).
  GatewayConfig cfg;
  cfg.station.mac = MacAddress::from_seed(0x6E7E);
  cfg.batch_max = 2;
  cfg.forward_retry_limit = 50;
  Gateway gw{scheduler_, medium_, {3, 5}, cfg, Rng{85}};
  bool ready = false;
  gw.start([&](bool ok) { ready = ok; });
  scheduler_.run_until(scheduler_.now() + seconds(10));
  ASSERT_TRUE(ready);

  ap_->stop();  // outage begins; the first send will die mid-pump

  SenderConfig scfg;
  scfg.device_id = 0xA00;
  Sender sensor{scheduler_, medium_, {5, 5}, scfg, Rng{86}};
  for (int i = 0; i < 5; ++i) {
    sensor.send_now(Bytes{static_cast<std::uint8_t>(i)}, {});
    scheduler_.run_until(scheduler_.now() + seconds(2));
  }

  ap_->start();  // recovery: everything drains in order, two per batch
  scheduler_.run_until(scheduler_.now() + seconds(60));

  EXPECT_GE(gw.stats().retries, 1u);
  EXPECT_EQ(gw.stats().dropped_total, 0u);
  EXPECT_EQ(gw.stats().forwarded, 5u);
  ASSERT_EQ(server_received_.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(server_received_[static_cast<std::size_t>(i)].data,
              Bytes{static_cast<std::uint8_t>(i)})
        << "reading " << i << " out of order";
  }
  // batch_max 2 and 5 readings: at least one batch carried more than one.
  EXPECT_LT(server_batches_, 5u);
}

TEST_F(GatewayTest, MidOutageEvictionKeepsNewestReadings) {
  // The queue fills during the outage; newest-first retention must hold
  // for requeued in-flight readings too, and the survivors must drain in
  // order after recovery.
  GatewayConfig cfg;
  cfg.station.mac = MacAddress::from_seed(0x6F7E);
  cfg.max_queue = 2;
  cfg.forward_retry_limit = 50;
  Gateway gw{scheduler_, medium_, {3, 6}, cfg, Rng{87}};
  bool ready = false;
  gw.start([&](bool ok) { ready = ok; });
  scheduler_.run_until(scheduler_.now() + seconds(10));
  ASSERT_TRUE(ready);

  ap_->stop();

  SenderConfig scfg;
  scfg.device_id = 0xB00;
  Sender sensor{scheduler_, medium_, {5, 6}, scfg, Rng{88}};
  for (int i = 0; i < 6; ++i) {
    sensor.send_now(Bytes{static_cast<std::uint8_t>(i)}, {});
    scheduler_.run_until(scheduler_.now() + seconds(2));
  }

  EXPECT_EQ(gw.stats().received, 6u);
  EXPECT_EQ(gw.stats().forwarded, 0u);
  EXPECT_GE(gw.stats().dropped_queue_full, 4u);
  EXPECT_EQ(gw.stats().dropped_total,
            gw.stats().dropped_queue_full + gw.stats().dropped_retry_budget);

  ap_->start();
  scheduler_.run_until(scheduler_.now() + seconds(60));

  // Only the two newest readings survived the cap-2 queue.
  EXPECT_EQ(gw.stats().forwarded, 2u);
  ASSERT_EQ(server_received_.size(), 2u);
  EXPECT_EQ(server_received_[0].data, Bytes{4});
  EXPECT_EQ(server_received_[1].data, Bytes{5});
}

TEST_F(GatewayTest, RecoversAndRetriesAfterMidPumpLinkLoss) {
  ASSERT_TRUE(start_gateway());
  ap_->stop();  // crash: the station still believes it is associated

  SenderConfig scfg;
  scfg.device_id = 0x900;
  Sender sensor{scheduler_, medium_, {5, 4}, scfg, Rng{90}};
  sensor.send_now(Bytes{0x42}, {});
  scheduler_.run_until(scheduler_.now() + seconds(3));

  // The PS send died mid-pump: failure counted, reading requeued, link
  // declared lost. Nothing reached the server.
  EXPECT_GE(gateway_->stats().forward_failures, 1u);
  EXPECT_GE(gateway_->stats().uplink_losses, 1u);
  EXPECT_TRUE(server_received_.empty());

  ap_->start();  // AP reboots; the gateway must heal itself and drain
  scheduler_.run_until(scheduler_.now() + seconds(30));

  EXPECT_GE(gateway_->stats().reassociations, 1u);
  EXPECT_GE(gateway_->stats().retries, 1u);
  EXPECT_EQ(gateway_->stats().forwarded, 1u);
  ASSERT_EQ(server_received_.size(), 1u);
  EXPECT_EQ(server_received_[0].device_id, 0x900u);
  EXPECT_EQ(server_received_[0].data, Bytes{0x42});
}

}  // namespace
}  // namespace wile::core
