// Unit tests for src/util: byte codec, units, MAC addresses, RNG, hex.
#include <gtest/gtest.h>

#include "util/byte_buffer.hpp"
#include "util/hex.hpp"
#include "util/mac_address.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace wile {
namespace {

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader
// ---------------------------------------------------------------------------

TEST(ByteBuffer, RoundTripsAllWidthsLittleEndian) {
  ByteWriter w;
  w.u8(0xab);
  w.u16le(0x1234);
  w.u24le(0x56789a);
  w.u32le(0xdeadbeef);
  w.u64le(0x0123456789abcdefULL);
  const Bytes buf = w.take();

  ByteReader r{buf};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16le(), 0x1234);
  EXPECT_EQ(r.u24le(), 0x56789au);
  EXPECT_EQ(r.u32le(), 0xdeadbeefu);
  EXPECT_EQ(r.u64le(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.empty());
}

TEST(ByteBuffer, RoundTripsAllWidthsBigEndian) {
  ByteWriter w;
  w.u16be(0x1234);
  w.u32be(0xdeadbeef);
  w.u64be(0x0123456789abcdefULL);
  const Bytes buf = w.take();

  ByteReader r{buf};
  EXPECT_EQ(r.u16be(), 0x1234);
  EXPECT_EQ(r.u32be(), 0xdeadbeefu);
  EXPECT_EQ(r.u64be(), 0x0123456789abcdefULL);
}

TEST(ByteBuffer, LittleEndianByteOrderOnWire) {
  ByteWriter w;
  w.u16le(0x1234);
  const Bytes buf = w.take();
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0x34);
  EXPECT_EQ(buf[1], 0x12);
}

TEST(ByteBuffer, BigEndianByteOrderOnWire) {
  ByteWriter w;
  w.u16be(0x1234);
  const Bytes buf = w.take();
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[1], 0x34);
}

TEST(ByteBuffer, ReaderThrowsOnUnderflow) {
  const Bytes buf = {0x01, 0x02};
  ByteReader r{buf};
  EXPECT_EQ(r.u16le(), 0x0201);
  EXPECT_THROW(r.u8(), BufferUnderflow);
}

TEST(ByteBuffer, ReaderThrowsOnOversizedBytesRequest) {
  const Bytes buf = {0x01, 0x02, 0x03};
  ByteReader r{buf};
  EXPECT_THROW(r.bytes(4), BufferUnderflow);
  // The failed read must not consume anything.
  EXPECT_EQ(r.remaining(), 3u);
}

TEST(ByteBuffer, PatchRewritesPreviouslyWrittenBytes) {
  ByteWriter w;
  w.u16be(0);
  w.u8(0xff);
  w.patch_u16be(0, 0xbeef);
  const Bytes buf = w.take();
  EXPECT_EQ(buf[0], 0xbe);
  EXPECT_EQ(buf[1], 0xef);
  EXPECT_EQ(buf[2], 0xff);
}

TEST(ByteBuffer, RestConsumesEverything) {
  const Bytes buf = {1, 2, 3, 4};
  ByteReader r{buf};
  r.skip(1);
  const BytesView rest = r.rest();
  EXPECT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], 2);
  EXPECT_TRUE(r.empty());
}

TEST(ByteBuffer, ZerosWritesZeroFill) {
  ByteWriter w;
  w.zeros(5);
  const Bytes buf = w.take();
  ASSERT_EQ(buf.size(), 5u);
  for (auto b : buf) EXPECT_EQ(b, 0);
}

// ---------------------------------------------------------------------------
// Units
// ---------------------------------------------------------------------------

TEST(Units, PowerIsVoltsTimesAmps) {
  const Watts p = volts(3.3) * milliamps(100.0);
  EXPECT_NEAR(p.value, 0.33, 1e-12);
}

TEST(Units, EnergyIsPowerTimesTime) {
  const Joules e = watts(0.6) * msec(140);
  EXPECT_NEAR(in_microjoules(e), 84'000.0, 1e-6);
}

TEST(Units, AveragePowerIsEnergyOverTime) {
  const Watts p = microjoules(84.0) / seconds(60);
  EXPECT_NEAR(in_microwatts(p), 1.4, 1e-9);
}

TEST(Units, UnitConversionsRoundTrip) {
  EXPECT_NEAR(in_microamps(microamps(2.5)), 2.5, 1e-12);
  EXPECT_NEAR(in_milliamps(milliamps(4.5)), 4.5, 1e-12);
  EXPECT_NEAR(in_millijoules(millijoules(238.2)), 238.2, 1e-12);
  EXPECT_NEAR(in_nanojoules(nanojoules(275.0)), 275.0, 1e-12);
}

TEST(Units, TimePointArithmetic) {
  const TimePoint t0{seconds(1)};
  const TimePoint t1 = t0 + msec(500);
  EXPECT_EQ((t1 - t0).count(), 500'000);
  EXPECT_LT(t0, t1);
}

TEST(Units, SecondsConversionsAreExact) {
  EXPECT_DOUBLE_EQ(to_seconds(msec(1500)), 1.5);
  EXPECT_EQ(from_seconds(1.5).count(), 1'500'000);
}

// ---------------------------------------------------------------------------
// MacAddress
// ---------------------------------------------------------------------------

TEST(MacAddress, ParsesAndFormats) {
  const auto mac = MacAddress::parse("aa:bb:cc:dd:ee:ff");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(MacAddress, ParseRejectsMalformedInput) {
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee").has_value());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee:fg").has_value());
  EXPECT_FALSE(MacAddress::parse("aabbccddeeff").has_value());
  EXPECT_FALSE(MacAddress::parse("aa-bb-cc-dd-ee-ff").has_value());
}

TEST(MacAddress, BroadcastProperties) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  EXPECT_FALSE(MacAddress::zero().is_broadcast());
  EXPECT_TRUE(MacAddress::zero().is_zero());
}

TEST(MacAddress, FromSeedIsLocalUnicastAndStable) {
  const MacAddress a = MacAddress::from_seed(7);
  const MacAddress b = MacAddress::from_seed(7);
  const MacAddress c = MacAddress::from_seed(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a.is_local());
  EXPECT_FALSE(a.is_multicast());
}

TEST(MacAddress, SerializationRoundTrip) {
  const MacAddress mac = MacAddress::from_seed(123);
  ByteWriter w;
  mac.write_to(w);
  const Bytes buf = w.take();
  ByteReader r{buf};
  EXPECT_EQ(MacAddress::read_from(r), mac);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a{99}, b{99};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{5};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng{6};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsInUnitIntervalWithSaneMean) {
  Rng rng{7};
  double sum = 0.0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng{8};
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, GaussianHasZeroMeanUnitVariance) {
  Rng rng{9};
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{10};
  Rng child = parent.fork();
  // The fork must not replay the parent's stream.
  EXPECT_NE(parent.next(), child.next());
}

// ---------------------------------------------------------------------------
// Hex
// ---------------------------------------------------------------------------

TEST(Hex, EncodesLowercase) {
  const Bytes data = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(to_hex(data), "deadbeef");
}

TEST(Hex, DecodesWithWhitespaceBetweenBytes) {
  const auto bytes = from_hex("de ad be ef");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(to_hex(*bytes), "deadbeef");
}

TEST(Hex, DecodeRejectsOddLengthAndJunk) {
  EXPECT_FALSE(from_hex("abc").has_value());
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("a b").has_value());  // whitespace inside a byte
}

TEST(Hex, RoundTripProperty) {
  Rng rng{11};
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data(rng.below(100));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
    const auto back = from_hex(to_hex(data));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
  }
}

TEST(Hex, HexdumpShowsAsciiGutter) {
  const std::string dump = hexdump(Bytes{'H', 'i', 0x00, 0xff});
  EXPECT_NE(dump.find("|Hi..|"), std::string::npos);
}

}  // namespace
}  // namespace wile
