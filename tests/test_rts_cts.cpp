// RTS/CTS tests, including the classic hidden-terminal scenario the
// handshake exists for.
#include <gtest/gtest.h>

#include "dot11/frame.hpp"
#include "sim/csma.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "sim/traffic.hpp"

namespace wile::sim {
namespace {

TEST(RtsCts, FrameCodecsRoundTrip) {
  const MacAddress ra = MacAddress::from_seed(1);
  const MacAddress ta = MacAddress::from_seed(2);

  const Bytes rts = dot11::build_rts(ra, ta, 300);
  EXPECT_EQ(rts.size(), 20u);
  EXPECT_TRUE(dot11::is_control_frame(rts));
  const auto rts_p = dot11::parse_rts(rts);
  ASSERT_TRUE(rts_p.has_value());
  EXPECT_TRUE(rts_p->fcs_ok);
  EXPECT_EQ(rts_p->receiver, ra);
  EXPECT_EQ(rts_p->transmitter, ta);
  EXPECT_EQ(rts_p->duration_us, 300);

  const Bytes cts = dot11::build_cts(ta, 250);
  EXPECT_EQ(cts.size(), 14u);
  const auto cts_p = dot11::parse_cts(cts);
  ASSERT_TRUE(cts_p.has_value());
  EXPECT_TRUE(cts_p->fcs_ok);
  EXPECT_EQ(cts_p->receiver, ta);
  EXPECT_EQ(cts_p->duration_us, 250);

  // The two 14-byte control frames must not cross-parse.
  EXPECT_FALSE(dot11::parse_ack(cts).has_value() &&
               dot11::parse_cts(dot11::build_ack(ta)).has_value());
}

TEST(RtsCts, ProtectedTransferCompletesOnCleanChannel) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  TrafficConfig cfg;
  cfg.use_rts = true;
  cfg.frames_per_second = 50;
  TrafficSink sink{scheduler, medium, {3, 0}, cfg.sink_mac};
  TrafficSource source{scheduler, medium, {0, 0}, cfg, Rng{2}};
  source.start();
  scheduler.run_until(TimePoint{seconds(5)});
  source.stop();

  EXPECT_GT(source.frames_delivered(), 200u);
  EXPECT_EQ(source.frames_failed(), 0u);
  EXPECT_EQ(sink.frames_received(), source.frames_delivered());
}

TEST(RtsCts, NoCtsResponderFailsCleanly) {
  // RTS into the void: CTS timeouts must exhaust retries and report
  // failure without wedging the queue.
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  struct Dummy : MediumClient {
    void on_frame(const RxFrame&) override {}
    [[nodiscard]] bool rx_enabled() const override { return true; }
  } dummy;
  const NodeId tx = medium.attach(&dummy, {0, 0});
  CsmaConfig cfg;
  cfg.rts_threshold = 0;
  cfg.retry_limit = 3;
  Csma csma{scheduler, medium, tx, Rng{2}, cfg};

  std::optional<Csma::Result> result;
  csma.send(Bytes(500, 1), phy::WifiRate::Mcs7, true,
            [&](const Csma::Result& r) { result = r; },
            RtsAddresses{MacAddress::from_seed(9), MacAddress::from_seed(2)});
  scheduler.run_until_idle();

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->success);
  EXPECT_EQ(result->transmissions, 4);
  // Only RTS frames went out; the 500-byte data frame never did.
  EXPECT_EQ(medium.stats().transmissions, 4u);
}

// --- the hidden-terminal experiment -----------------------------------------
//
// A and B are 30 m apart at 0 dBm: below the -82 dBm carrier-sense floor
// for each other, but both comfortably reach the sink midway at 15 m
// (robust 6 Mbps data frames). Without RTS/CTS their frames collide at
// the sink; with it, the sink's CTS sets the hidden station's NAV.

struct HiddenResult {
  std::uint64_t delivered = 0;
  std::uint64_t failed = 0;
  std::uint64_t collisions = 0;
};

HiddenResult run_hidden(bool use_rts, std::uint64_t seed) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{seed}};

  TrafficConfig cfg_a;
  cfg_a.source_mac = MacAddress::from_seed(0xA1);
  cfg_a.sink_mac = MacAddress::from_seed(0x51);
  cfg_a.rate = phy::WifiRate::G6;
  cfg_a.tx_power_dbm = 0.0;
  cfg_a.frame_bytes = 1000;
  cfg_a.frames_per_second = 60;
  cfg_a.use_rts = use_rts;
  TrafficConfig cfg_b = cfg_a;
  cfg_b.source_mac = MacAddress::from_seed(0xB1);

  TrafficSink sink{scheduler, medium, {15, 0}, cfg_a.sink_mac};
  TrafficSource a{scheduler, medium, {0, 0}, cfg_a, Rng{seed + 1}};
  TrafficSource b{scheduler, medium, {30, 0}, cfg_b, Rng{seed + 2}};

  a.start();
  b.start();
  scheduler.run_until(TimePoint{seconds(20)});
  a.stop();
  b.stop();
  scheduler.run_until(scheduler.now() + seconds(2));

  HiddenResult out;
  out.delivered = a.frames_delivered() + b.frames_delivered();
  out.failed = a.frames_failed() + b.frames_failed();
  out.collisions = medium.stats().collision_losses;
  return out;
}

TEST(RtsCts, HiddenTerminalsCollideWithoutProtection) {
  const HiddenResult plain = run_hidden(false, 100);
  // Carrier sense is blind between A and B: collisions at the sink are
  // frequent and many frames exhaust their retries.
  EXPECT_GT(plain.collisions, 100u);
  EXPECT_GT(plain.failed, 20u);
}

TEST(RtsCts, RtsCtsRecoversHiddenTerminalThroughput) {
  const HiddenResult plain = run_hidden(false, 100);
  const HiddenResult protected_run = run_hidden(true, 100);
  // The handshake can't stop RTS-RTS collisions (short, cheap) but must
  // slash data-frame losses and failures.
  EXPECT_LT(protected_run.failed, plain.failed / 4 + 1);
  EXPECT_GT(protected_run.delivered, plain.delivered);
}

}  // namespace
}  // namespace wile::sim
