// Intermittent-power senders (DESIGN.md §11): capacitor harvester,
// brown-out checkpointing, and energy starvation as a first-class fault.
//
// Pins the contracts the harvesting subsystem promises:
//  * Harvester arithmetic — exact integration, clamping, fade
//    stack/unwind, time_to_reach as the exact inverse of advance;
//  * a mid-cycle brown-out checkpoints the in-flight message and the
//    recharged device RESUMES it (same sequence, no duplicate at the
//    receiver, no lost sample) instead of restarting the cycle;
//  * bounded staleness — a checkpoint older than max_checkpoint_age is
//    discarded on recharge and its sequence stays consumed (receivers
//    see an honest gap, not a stale reading);
//  * the wake gate skips cycles the capacitor cannot fund, so devices
//    degrade to a lower report rate instead of browning out mid-flight;
//  * fleet-wide RF droughts (FaultInjector) degrade gracefully and
//    recover once the fade lifts;
//  * same-seed harvesting runs are bit-exact, and telemetry (whose
//    charge gauge reads projected_charge) never perturbs them;
//  * ScenarioBuilder fault wiring — configure_faults + automatic
//    energy-target registration — is bit-identical to hand wiring;
//  * satellites: the stale-report watchdog decays the redundancy tier
//    toward the open-loop fallback, and the gateway's reconnect backoff
//    adds a seeded one-shot desync spread after an uplink loss.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ap/access_point.hpp"
#include "power/harvester.hpp"
#include "sim/fault.hpp"
#include "wile/gateway.hpp"
#include "wile/receiver.hpp"
#include "wile/scenario.hpp"
#include "wile/sender.hpp"

namespace wile::core {
namespace {

// --- harvester arithmetic ---------------------------------------------------

power::HarvesterConfig small_cap() {
  power::HarvesterConfig cfg;
  cfg.capacitance_f = 1e-3;  // 5.445 mJ at 3.3 V
  cfg.initial_charge_fraction = 0.5;
  cfg.harvest_power = microwatts(100);
  cfg.leakage = microwatts(1);
  return cfg;
}

TEST(Harvester, IntegratesNetInputAndClamps) {
  power::Harvester h{small_cap()};
  const double cap_j = h.capacity().value;
  EXPECT_NEAR(cap_j, 0.5 * 1e-3 * 3.3 * 3.3, 1e-12);
  EXPECT_NEAR(h.charge().value, cap_j / 2, 1e-12);

  // 10 s of (100 - 1) uW net input.
  h.advance(seconds(10), Joules{0});
  EXPECT_NEAR(h.charge().value, cap_j / 2 + 99e-6 * 10, 1e-12);

  // Long idle clamps at capacity; a huge draw clamps at zero.
  h.advance(seconds(3600), Joules{0});
  EXPECT_DOUBLE_EQ(h.charge().value, cap_j);
  h.advance(seconds(1), Joules{1.0});
  EXPECT_DOUBLE_EQ(h.charge().value, 0.0);
  EXPECT_TRUE(h.empty());
}

TEST(Harvester, FadesStackMultiplicativelyAndUnwindExactly) {
  power::Harvester h{small_cap()};
  EXPECT_DOUBLE_EQ(h.fade_scale(), 1.0);
  h.push_fade(0.5);
  h.push_fade(0.2);
  EXPECT_DOUBLE_EQ(h.fade_scale(), 0.1);
  EXPECT_NEAR(h.net_input().value, 100e-6 * 0.1 - 1e-6, 1e-15);
  h.pop_fade(0.5);
  EXPECT_DOUBLE_EQ(h.fade_scale(), 0.2);
  h.pop_fade(0.2);
  // Exact, not approximate: the product is recomputed from survivors.
  EXPECT_DOUBLE_EQ(h.fade_scale(), 1.0);
  EXPECT_NEAR(h.net_input().value, 99e-6, 1e-15);
}

TEST(Harvester, TimeToReachInvertsAdvance) {
  power::HarvesterConfig cfg = small_cap();
  cfg.initial_charge_fraction = 0.0;
  power::Harvester h{cfg};
  const Joules target{h.capacity().value / 2};

  const Duration dt = h.time_to_reach(target);
  ASSERT_NE(dt, Duration::max());
  h.advance(dt, Joules{0});
  // Ceil-to-microsecond rounding can only overshoot.
  EXPECT_GE(h.charge().value, target.value);
  EXPECT_NEAR(h.charge().value, target.value, 99e-6 * 2e-6 + 1e-12);

  // A drought (fade to zero) leaves net input negative: never reaches.
  h.push_fade(0.0);
  EXPECT_LT(h.net_input().value, 0.0);
  EXPECT_EQ(h.time_to_reach(h.capacity()), Duration::max());
}

// --- brown-out checkpoint / resume ------------------------------------------

struct Delivery {
  std::uint32_t sequence;
  std::int64_t at_us;
};

struct HarvestRig {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{0xD37E12}};
  std::unique_ptr<Sender> sender;
  Receiver monitor{scheduler, medium, {2, 0}};
  std::vector<Delivery> deliveries;
  std::vector<SendReport> reports;

  explicit HarvestRig(const HarvestingConfig& harvesting) {
    SenderConfig cfg;
    cfg.device_id = 0x77;
    cfg.period = seconds(5);
    cfg.harvesting = harvesting;
    sender = std::make_unique<Sender>(scheduler, medium, sim::Position{0, 0}, cfg,
                                      Rng{0xBEEF});
    monitor.set_message_callback([this](const Message& m, const RxMeta& meta) {
      deliveries.push_back({m.sequence, meta.received_at.us()});
    });
    sender->start_duty_cycle([] { return Bytes{0x17, 0xC0}; },
                             [this](const SendReport& r) { reports.push_back(r); });
  }

  [[nodiscard]] std::map<std::uint32_t, int> sequence_counts() const {
    std::map<std::uint32_t, int> counts;
    for (const Delivery& d : deliveries) ++counts[d.sequence];
    return counts;
  }
};

TEST(BrownOut, MidCycleBrownOutResumesCheckpointAfterRecharge) {
  HarvestingConfig h;
  h.harvester.harvest_power = Watts{10e-3};
  h.max_checkpoint_age = seconds(30);
  HarvestRig rig{h};

  // First wake at t = 5 s; boot + injector init take 300 ms, so 150 ms
  // in the cycle is encoded-but-not-yet-transmitted: the checkpoint
  // holds the message with its sequence already assigned.
  sim::FaultInjector faults{rig.scheduler, rig.medium, Rng{0xFA11}};
  faults.attach_energy_target(rig.sender->energy_governor());
  faults.brown_out(TimePoint{msec(5150)}, *rig.sender->energy_governor());

  rig.scheduler.run_until(TimePoint{seconds(32)});

  EXPECT_EQ(rig.sender->brown_outs(), 1u);
  EXPECT_EQ(rig.sender->cycles_resumed(), 1u);
  EXPECT_EQ(rig.sender->cycles_aborted_stale(), 0u);
  EXPECT_FALSE(rig.sender->recovering());
  EXPECT_EQ(faults.stats().brown_outs_injected, 1u);

  // The interrupted sample arrived: exactly once (no duplicate from the
  // resumed retransmission), within the staleness bound, and later
  // cycles carry fresh sequences — nothing lost, nothing replayed.
  const auto counts = rig.sequence_counts();
  ASSERT_TRUE(counts.contains(0));
  for (const auto& [seq, n] : counts) EXPECT_EQ(n, 1) << "sequence " << seq;
  EXPECT_GE(counts.size(), 3u);
  for (const Delivery& d : rig.deliveries) {
    if (d.sequence == 0) {
      EXPECT_LT(d.at_us, (seconds(5) + h.max_checkpoint_age).count());
    }
  }

  // The resumed cycle reported as such, with the checkpointed sequence.
  int resumed_reports = 0;
  for (const SendReport& r : rig.reports) {
    if (!r.resumed) continue;
    ++resumed_reports;
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.sequence, 0u);
  }
  EXPECT_EQ(resumed_reports, 1);
}

TEST(BrownOut, StaleCheckpointIsDiscardedAndSequenceStaysConsumed) {
  HarvestingConfig h;
  // 5 mW refills the ~65 mJ resume target in ~13 s — well past the
  // 3 s staleness bound, so the checkpoint must be dropped on recharge.
  h.harvester.harvest_power = Watts{5e-3};
  h.max_checkpoint_age = seconds(3);
  HarvestRig rig{h};

  sim::FaultInjector faults{rig.scheduler, rig.medium, Rng{0xFA11}};
  faults.attach_energy_target(rig.sender->energy_governor());
  faults.brown_out(TimePoint{msec(5150)}, *rig.sender->energy_governor());

  rig.scheduler.run_until(TimePoint{seconds(32)});

  EXPECT_EQ(rig.sender->brown_outs(), 1u);
  EXPECT_EQ(rig.sender->cycles_resumed(), 0u);
  EXPECT_EQ(rig.sender->cycles_aborted_stale(), 1u);
  EXPECT_FALSE(rig.sender->recovering());

  // Sequence 0 was never delivered — the gap is the honest signal that
  // a reading was lost to power, not a silent stale retransmission.
  const auto counts = rig.sequence_counts();
  EXPECT_FALSE(counts.contains(0));
  ASSERT_GE(counts.size(), 1u);
  for (const auto& [seq, n] : counts) EXPECT_EQ(n, 1) << "sequence " << seq;

  // The abort surfaced as a failed report carrying the dead sequence.
  int failed = 0;
  for (const SendReport& r : rig.reports) {
    if (r.success) continue;
    ++failed;
    EXPECT_EQ(r.sequence, 0u);
  }
  EXPECT_EQ(failed, 1);
}

TEST(BrownOut, WakeGateSkipsUnfundableCyclesInsteadOfBrowningOut) {
  HarvestingConfig h;
  h.harvester.harvest_power = Watts{2e-3};
  h.harvester.initial_charge_fraction = 0.0;  // deployed flat
  HarvestRig rig{h};

  // Stop off the wake grid so no cycle is mid-flight at the cutoff.
  rig.scheduler.run_until(TimePoint{seconds(118)});

  // 2 mW against a ~43 mJ cycle: roughly one affordable wake per
  // half-minute. The gate absorbs the deficit as skipped wakes; the
  // device never runs itself into an organic brown-out.
  EXPECT_GE(rig.sender->cycles_run(), 2u);
  EXPECT_LE(rig.sender->cycles_run(), 10u);
  EXPECT_GE(rig.sender->cycles_skipped_energy(), 5u);
  EXPECT_EQ(rig.sender->brown_outs(), 0u);
  EXPECT_EQ(rig.deliveries.size(), rig.sender->cycles_run());
}

// --- fleet-wide faults through ScenarioBuilder ------------------------------

HarvestingConfig fleet_harvesting() {
  HarvestingConfig h;
  h.harvester.capacitance_f = 20e-3;  // ~109 mJ: about two cycles stored
  h.harvester.harvest_power = Watts{20e-3};
  return h;
}

TEST(EnergyFaults, FleetRfDroughtDegradesGracefullyAndRecovers) {
  std::vector<Delivery> deliveries;
  auto scenario =
      sim::ScenarioBuilder{}
          .devices(4)
          .grid_spacing_m(2)
          .duty_cycle(seconds(5))
          .harvesting(fleet_harvesting())
          .telemetry(false)
          .configure_faults([](sim::FaultInjector& f) {
            f.rf_drought(TimePoint{seconds(30)}, seconds(30));
            f.brown_out_all(TimePoint{seconds(45)});
          })
          .on_message([&deliveries](const Message& m, const RxMeta& meta) {
            deliveries.push_back({m.sequence, meta.received_at.us()});
          })
          .build();

  scenario->run_until(TimePoint{seconds(90)});

  int before = 0, during = 0, after = 0;
  for (const Delivery& d : deliveries) {
    if (d.at_us < seconds(30).count()) {
      ++before;
    } else if (d.at_us < seconds(60).count()) {
      ++during;
    } else {
      ++after;
    }
  }
  // Healthy cadence before; the drought throttles the fleet to its
  // stored charge; the fade lifting restores the cadence.
  EXPECT_GE(before, 12);
  EXPECT_LT(during, before / 2);
  EXPECT_GE(after, 12);

  EXPECT_EQ(scenario->faults().stats().harvest_fades, 1u);
  EXPECT_EQ(scenario->faults().stats().brown_outs_injected, 4u);
  EXPECT_EQ(scenario->faults().energy_targets(), 4u);
  for (const auto& s : scenario->devices()) {
    EXPECT_EQ(s->brown_outs(), 1u);
    EXPECT_FALSE(s->recovering());  // everyone recovered post-drought
    EXPECT_GT(s->cycles_skipped_energy(), 0u);
  }
}

// --- determinism ------------------------------------------------------------

class Digest {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

struct HarvestRun {
  std::uint64_t events = 0;
  sim::Medium::Stats medium_stats{};
  std::uint64_t messages = 0;
  std::uint64_t message_digest = 0;
  std::vector<std::uint64_t> brown_outs;
  std::vector<std::uint64_t> resumed;
  std::vector<double> charges;  // settled end-of-run charge, bit-exact
};

HarvestRun run_harvest_fleet(bool telemetry, bool sample) {
  Digest digest;
  auto builder = sim::ScenarioBuilder{}
                     .devices(4)
                     .grid_spacing_m(2)
                     .duty_cycle(seconds(5))
                     .harvesting(fleet_harvesting())
                     .telemetry(telemetry)
                     .configure_faults([](sim::FaultInjector& f) {
                       f.harvest_fade(TimePoint{seconds(20)}, seconds(15), 0.3);
                       f.brown_out_all(TimePoint{seconds(40)});
                       f.rf_drought(TimePoint{seconds(50)}, seconds(10));
                     })
                     .on_message([&digest](const Message& m, const RxMeta& meta) {
                       digest.add(m.device_id);
                       digest.add(m.sequence);
                       digest.add(static_cast<std::uint64_t>(meta.received_at.us()));
                     });
  if (sample) builder.sample_every(seconds(10));
  auto scenario = builder.build();
  scenario->run_until(TimePoint{seconds(80)});

  HarvestRun r;
  r.events = scenario->scheduler().events_run();
  r.medium_stats = scenario->medium().stats();
  r.messages = scenario->messages();
  r.message_digest = digest.value();
  for (const auto& s : scenario->devices()) {
    r.brown_outs.push_back(s->brown_outs());
    r.resumed.push_back(s->cycles_resumed());
    r.charges.push_back(s->energy_governor()->charge().value);
  }
  return r;
}

TEST(EnergyFaults, SameSeedHarvestingRunsAreBitExact) {
  const HarvestRun a = run_harvest_fleet(/*telemetry=*/false, /*sample=*/false);
  const HarvestRun b = run_harvest_fleet(/*telemetry=*/false, /*sample=*/false);

  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.medium_stats.transmissions, b.medium_stats.transmissions);
  EXPECT_EQ(a.medium_stats.deliveries, b.medium_stats.deliveries);
  EXPECT_EQ(a.medium_stats.collision_losses, b.medium_stats.collision_losses);
  EXPECT_EQ(a.medium_stats.channel_losses, b.medium_stats.channel_losses);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.message_digest, b.message_digest);
  EXPECT_EQ(a.brown_outs, b.brown_outs);
  EXPECT_EQ(a.resumed, b.resumed);
  EXPECT_EQ(a.charges, b.charges);  // bit-exact, not NEAR
  // The scenario actually exercised the energy machinery.
  std::uint64_t total_brown_outs = 0;
  for (std::uint64_t n : a.brown_outs) total_brown_outs += n;
  EXPECT_GE(total_brown_outs, 4u);
  EXPECT_GT(a.messages, 0u);
}

TEST(EnergyFaults, TelemetryChargeGaugeDoesNotPerturbTheRun) {
  // The periodic sampler reads the .energy.charge_j gauge, which goes
  // through projected_charge() — a pure projection. If it settled the
  // governor, the settlement sequence (and thus every subsequent drain)
  // would shift and this comparison would break.
  const HarvestRun off = run_harvest_fleet(/*telemetry=*/false, /*sample=*/false);
  const HarvestRun on = run_harvest_fleet(/*telemetry=*/true, /*sample=*/true);

  EXPECT_EQ(on.medium_stats.transmissions, off.medium_stats.transmissions);
  EXPECT_EQ(on.medium_stats.deliveries, off.medium_stats.deliveries);
  EXPECT_EQ(on.messages, off.messages);
  EXPECT_EQ(on.message_digest, off.message_digest);
  EXPECT_EQ(on.brown_outs, off.brown_outs);
  EXPECT_EQ(on.resumed, off.resumed);
  EXPECT_EQ(on.charges, off.charges);
}

// --- ScenarioBuilder fault wiring vs hand wiring ----------------------------

struct HandWired {
  std::uint64_t events = 0;
  sim::Medium::Stats medium_stats{};
  std::uint64_t messages = 0;
  std::vector<std::uint64_t> brown_outs;
  std::vector<std::uint64_t> skipped;
  std::vector<std::uint64_t> cycles;
  std::vector<std::uint64_t> resumed;
};

void schedule_fault_script(sim::FaultInjector& f) {
  f.rf_drought(TimePoint{seconds(20)}, seconds(20));
  f.brown_out_all(TimePoint{seconds(30)});
  f.harvest_fade(TimePoint{seconds(50)}, seconds(10), 0.5);
}

/// The ScenarioBuilder device/gateway/fault wiring, by hand, in the
/// exact historical order (see Scenario's constructor): devices with
/// master.fork() + staggered starts, then gateways, then the fault
/// injector with the derived seed and energy targets attached in
/// device order, then the user's fault script.
HandWired run_hand_wired_faults(int n, int sim_seconds) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{0xF1EE7}};

  constexpr double kSpacingM = 2.0;
  const int side = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  const double extent = side * kSpacingM;

  Rng master{0xF1EE7C0DE};
  std::vector<std::unique_ptr<Sender>> senders;
  for (int i = 0; i < n; ++i) {
    SenderConfig cfg;
    cfg.device_id = static_cast<std::uint32_t>(i + 1);
    cfg.period = seconds(5);
    cfg.wake_jitter = msec(500);     // the builder's defaults
    cfg.timeline_max_segments = 64;
    cfg.harvesting = fleet_harvesting();
    const sim::Position pos{(i % side) * kSpacingM, (i / side) * kSpacingM};
    senders.push_back(
        std::make_unique<Sender>(scheduler, medium, pos, cfg, master.fork()));
    const auto start_us = static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(i) * 5'000'000ull) / static_cast<std::uint64_t>(n));
    Sender* s = senders.back().get();
    scheduler.schedule_at(TimePoint{usec(start_us)}, [s] {
      s->start_duty_cycle([] { return Bytes(16, 0xA5); });
    });
  }

  std::uint64_t messages = 0;
  Receiver gateway{scheduler, medium, sim::Position{0.5 * extent, 0.5 * extent}};
  gateway.set_message_callback(
      [&messages](const Message&, const RxMeta&) { ++messages; });

  sim::FaultInjector faults{scheduler, medium, Rng{0xF1EE7C0DE ^ 0x0FA1'7000}};
  for (auto& s : senders) faults.attach_energy_target(s->energy_governor());
  schedule_fault_script(faults);

  scheduler.run_until(TimePoint{seconds(sim_seconds)});
  HandWired r;
  r.events = scheduler.events_run();
  r.medium_stats = medium.stats();
  r.messages = messages;
  for (const auto& s : senders) {
    r.brown_outs.push_back(s->brown_outs());
    r.skipped.push_back(s->cycles_skipped_energy());
    r.cycles.push_back(s->cycles_run());
    r.resumed.push_back(s->cycles_resumed());
  }
  return r;
}

TEST(Scenario, FaultWiringBitIdenticalToHandWiring) {
  constexpr int kN = 4;
  constexpr int kSimSeconds = 70;
  const HandWired legacy = run_hand_wired_faults(kN, kSimSeconds);

  auto scenario = sim::ScenarioBuilder{}
                      .devices(kN)
                      .grid_spacing_m(2)
                      .duty_cycle(seconds(5))
                      .harvesting(fleet_harvesting())
                      .telemetry(false)
                      .configure_faults(schedule_fault_script)
                      .build();
  scenario->run_until(TimePoint{seconds(kSimSeconds)});

  EXPECT_EQ(scenario->scheduler().events_run(), legacy.events);
  EXPECT_EQ(scenario->medium().stats().transmissions, legacy.medium_stats.transmissions);
  EXPECT_EQ(scenario->medium().stats().deliveries, legacy.medium_stats.deliveries);
  EXPECT_EQ(scenario->medium().stats().collision_losses,
            legacy.medium_stats.collision_losses);
  EXPECT_EQ(scenario->medium().stats().channel_losses,
            legacy.medium_stats.channel_losses);
  EXPECT_EQ(scenario->messages(), legacy.messages);
  ASSERT_EQ(scenario->devices().size(), legacy.brown_outs.size());
  for (std::size_t i = 0; i < legacy.brown_outs.size(); ++i) {
    EXPECT_EQ(scenario->devices()[i]->brown_outs(), legacy.brown_outs[i]) << i;
    EXPECT_EQ(scenario->devices()[i]->cycles_skipped_energy(), legacy.skipped[i]) << i;
    EXPECT_EQ(scenario->devices()[i]->cycles_run(), legacy.cycles[i]) << i;
    EXPECT_EQ(scenario->devices()[i]->cycles_resumed(), legacy.resumed[i]) << i;
  }
  // Guard against the scenario degenerating into silence.
  EXPECT_GT(scenario->messages(), 0u);
  EXPECT_GT(legacy.brown_outs[0], 0u);
}

// --- satellite: stale-report watchdog decays the tier -----------------------

TEST(Adaptation, StaleReportsDecayTierTowardFallback) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{0xD37E12}};
  Receiver monitor{scheduler, medium, {2, 0}};

  SenderConfig cfg;
  cfg.device_id = 0x90;
  cfg.period = seconds(2);
  cfg.rx_window = RxWindow{};
  AdaptationConfig adapt;
  adapt.tiers = {RedundancyTier{1, false, 0, 0}, RedundancyTier{2, false, 0, 0},
                 RedundancyTier{2, true, 4, 2}};
  adapt.fallback_tier = 2;
  adapt.decay_after_cycles = 2;
  adapt.decay_every = 2;
  cfg.adaptation = adapt;

  Sender sender{scheduler, medium, {0, 0}, cfg, Rng{0xBEEF}};
  sender.start_duty_cycle([] { return Bytes{0x01}; });
  scheduler.run_until(TimePoint{seconds(30)});

  // No controller ever speaks: the watchdog walks the tier up to the
  // open-loop fallback one step per decay_every cycles, rather than
  // leaving the sender at tier 0 forever (or jumping — fallback_after
  // is disabled here).
  EXPECT_EQ(sender.current_tier(), 2u);
  EXPECT_EQ(sender.tier_decays(), 2u);
  EXPECT_FALSE(sender.fallback_active());
}

// --- satellite: gateway reconnect desync ------------------------------------

/// Time of the first reassociation after an injected uplink kill, with
/// multiplicative jitter disabled so the desync spread is the only
/// random term in the backoff.
Duration reassociation_time(Duration desync_spread, std::uint64_t gw_seed) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{10}};
  ap.start();

  GatewayConfig cfg;
  cfg.station.mac = MacAddress::from_seed(0x6A7E);
  cfg.reconnect_jitter_fraction = 0.0;
  cfg.reconnect_desync_spread = desync_spread;
  Gateway gw{scheduler, medium, {3, 0}, cfg, Rng{gw_seed}};

  bool ready = false;
  gw.start([&ready](bool ok) { ready = ok; });
  scheduler.run_until(TimePoint{seconds(10)});
  EXPECT_TRUE(ready);

  gw.kill_uplink();
  while (gw.stats().reassociations < 1 &&
         scheduler.now() < TimePoint{seconds(60)}) {
    scheduler.run_until(scheduler.now() + msec(1));
  }
  EXPECT_EQ(gw.stats().reassociations, 1u);
  return scheduler.now().since_epoch();
}

TEST(Gateway, DesyncSpreadDelaysFirstReconnectAfterLoss) {
  const Duration base = reassociation_time(Duration{0}, 7);
  const Duration spread_a = reassociation_time(seconds(2), 7);
  const Duration spread_a2 = reassociation_time(seconds(2), 7);
  const Duration spread_b = reassociation_time(seconds(2), 8);

  // The spread only ever adds delay, stays within its window, is
  // deterministic per seed, and actually varies across seeds — that
  // variation is the whole point (a fleet stops stampeding the AP).
  EXPECT_GE(spread_a, base);
  EXPECT_LE(spread_a, base + seconds(2) + msec(5));
  EXPECT_EQ(spread_a, spread_a2);
  EXPECT_NE(spread_a, spread_b);
}

TEST(Gateway, BackoffJitterStaysBounded) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  GatewayConfig cfg;
  cfg.station.mac = MacAddress::from_seed(0x6B7E);
  Gateway gw{scheduler, medium, {3, 0}, cfg, Rng{0x1CE}};

  // No loss yet: failures = 0, desync unarmed. Every draw is
  // base * (1 +/- jitter_fraction).
  for (int i = 0; i < 32; ++i) {
    const Duration d = gw.backoff_delay();
    EXPECT_GE(d, msec(400));
    EXPECT_LE(d, msec(600));
  }
}

}  // namespace
}  // namespace wile::core
