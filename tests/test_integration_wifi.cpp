// Integration tests: the full 802.11 client/AP stack end to end.
//
// These exercise the paper's §3.1 sequence with real frames over the
// simulated medium: probe -> auth -> assoc -> WPA2-PSK 4-way handshake ->
// DHCP -> ARP -> CCMP-protected data, plus the §5.3 WiFi-PS and WiFi-DC
// operating modes and their energy accounting.
#include <gtest/gtest.h>

#include "ap/access_point.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "sta/station.hpp"

namespace wile {
namespace {

class WifiIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    ap::AccessPointConfig ap_cfg;
    ap_ = std::make_unique<ap::AccessPoint>(scheduler_, medium_, sim::Position{0, 0},
                                            ap_cfg, Rng{10});
    ap_->set_uplink_handler([this](const MacAddress& sta, const net::Ipv4Header& ip,
                                   const net::UdpDatagram& udp) {
      uplink_.push_back({sta, ip.destination, udp.dest_port, udp.payload});
    });
    ap_->start();

    sta::StationConfig sta_cfg;  // defaults match the AP's ssid/passphrase
    sta_ = std::make_unique<sta::Station>(scheduler_, medium_, sim::Position{3, 0},
                                          sta_cfg, Rng{20});
  }

  struct UplinkRecord {
    MacAddress sta;
    net::Ipv4Address dst_ip;
    std::uint16_t dst_port;
    Bytes payload;
  };

  sim::Scheduler scheduler_;
  sim::Medium medium_{scheduler_, phy::Channel{}, Rng{1}};
  std::unique_ptr<ap::AccessPoint> ap_;
  std::unique_ptr<sta::Station> sta_;
  std::vector<UplinkRecord> uplink_;
};

TEST_F(WifiIntegration, DutyCycleTransmissionDeliversPayload) {
  std::optional<sta::CycleReport> report;
  sta_->run_duty_cycle_transmission(Bytes{'1', '7', 'C'},
                                    [&](const sta::CycleReport& r) { report = r; });
  scheduler_.run_until(TimePoint{seconds(10)});

  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->success);
  ASSERT_EQ(uplink_.size(), 1u);
  EXPECT_EQ(uplink_[0].payload, (Bytes{'1', '7', 'C'}));
  EXPECT_EQ(uplink_[0].dst_port, sta_->config().server_port);
  EXPECT_EQ(uplink_[0].sta, sta_->config().mac);
  // The AP must have granted a lease and completed the handshake.
  EXPECT_TRUE(ap_->client_ready(sta_->config().mac));
  EXPECT_TRUE(ap_->client_ip(sta_->config().mac).has_value());
  EXPECT_EQ(ap_->stats().handshakes_completed, 1u);
}

TEST_F(WifiIntegration, ConnectionFrameCountsMatchPaperClaims) {
  // §3.1: ~20 MAC-layer frames plus 7 higher-layer frames before the
  // client can transmit its data.
  std::optional<sta::CycleReport> report;
  sta_->run_duty_cycle_transmission(Bytes{1}, [&](const sta::CycleReport& r) { report = r; });
  scheduler_.run_until(TimePoint{seconds(10)});
  ASSERT_TRUE(report && report->success);

  const auto& stats = sta_->stats();
  // Probe(1) + probe-resp+ack(2) + auth req/resp + 2 acks (4) +
  // assoc req/resp + 2 acks (4) + 4 EAPOL + 4 acks (8) = 19 frames; the
  // paper rounds to "at least 20" by counting the beacon that some
  // clients use instead of a probe. Accept 18-22 (retries can add).
  EXPECT_GE(stats.connect_mac_frames, 18u);
  EXPECT_LE(stats.connect_mac_frames, 24u);
  // DHCP DISCOVER/OFFER/REQUEST/ACK + ARP request/reply + gratuitous
  // ARP announcement = exactly the paper's 7.
  EXPECT_EQ(stats.connect_higher_layer_frames, 7u);
}

TEST_F(WifiIntegration, DutyCycleEnergyIsInWiFiDcRegime) {
  // Table 1: WiFi-DC 238.2 mJ/packet. The simulated cycle must land in
  // the same regime (hundreds of mJ, three orders above Wi-LE).
  std::optional<sta::CycleReport> report;
  sta_->run_duty_cycle_transmission(Bytes{1, 2}, [&](const sta::CycleReport& r) { report = r; });
  scheduler_.run_until(TimePoint{seconds(10)});
  ASSERT_TRUE(report && report->success);

  const double mj = in_millijoules(report->energy);
  EXPECT_GT(mj, 150.0);
  EXPECT_LT(mj, 350.0);
  // Fig. 3a: the whole awake period is roughly 1.2-1.8 s.
  EXPECT_GT(to_seconds(report->active_time), 0.9);
  EXPECT_LT(to_seconds(report->active_time), 2.5);
}

TEST_F(WifiIntegration, TraceShowsPaperPhasesInOrder) {
  std::optional<sta::CycleReport> report;
  sta_->run_duty_cycle_transmission(Bytes{1}, [&](const sta::CycleReport& r) { report = r; });
  scheduler_.run_until(TimePoint{seconds(10)});
  ASSERT_TRUE(report && report->success);

  const auto& tl = sta_->timeline();
  TimePoint init_s, assoc_s, dhcp_s, tx_s, dummy;
  ASSERT_TRUE(tl.find_phase("MC/WiFi init", report->wake_time, &init_s, &dummy));
  ASSERT_TRUE(tl.find_phase("Probe/Auth./Associate", report->wake_time, &assoc_s, &dummy));
  ASSERT_TRUE(tl.find_phase("DHCP/ARP", report->wake_time, &dhcp_s, &dummy));
  ASSERT_TRUE(tl.find_phase("Tx", report->wake_time, &tx_s, &dummy));
  EXPECT_LT(init_s, assoc_s);
  EXPECT_LT(assoc_s, dhcp_s);
  EXPECT_LT(dhcp_s, tx_s);
}

TEST_F(WifiIntegration, SecondCycleReassociatesFromScratch) {
  int cycles_done = 0;
  sta_->run_duty_cycle_transmission(Bytes{1}, [&](const sta::CycleReport& r) {
    EXPECT_TRUE(r.success);
    ++cycles_done;
  });
  scheduler_.run_until(TimePoint{seconds(10)});
  ASSERT_EQ(cycles_done, 1);

  sta_->run_duty_cycle_transmission(Bytes{2}, [&](const sta::CycleReport& r) {
    EXPECT_TRUE(r.success);
    ++cycles_done;
  });
  scheduler_.run_until(TimePoint{seconds(20)});
  EXPECT_EQ(cycles_done, 2);
  EXPECT_EQ(uplink_.size(), 2u);
  // Two full handshakes: the WiFi-DC scenario pays association each time.
  EXPECT_EQ(ap_->stats().handshakes_completed, 2u);
}

TEST_F(WifiIntegration, PowerSaveSendSkipsReassociation) {
  bool ready = false;
  sta_->connect_and_enter_power_save([&](bool ok) { ready = ok; });
  scheduler_.run_until(TimePoint{seconds(10)});
  ASSERT_TRUE(ready);
  EXPECT_TRUE(sta_->associated());
  const auto handshakes_before = ap_->stats().handshakes_completed;

  std::optional<sta::CycleReport> report;
  sta_->power_save_send(Bytes{'p', 's'}, [&](const sta::CycleReport& r) { report = r; });
  scheduler_.run_until(TimePoint{seconds(20)});

  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->success);
  ASSERT_EQ(uplink_.size(), 1u);
  EXPECT_EQ(uplink_[0].payload, (Bytes{'p', 's'}));
  EXPECT_EQ(ap_->stats().handshakes_completed, handshakes_before);  // no re-assoc

  // Table 1: WiFi-PS 19.8 mJ/packet — an order of magnitude below DC.
  const double mj = in_millijoules(report->energy);
  EXPECT_GT(mj, 8.0);
  EXPECT_LT(mj, 40.0);
}

TEST_F(WifiIntegration, PowerSaveIdleCurrentNearTable1) {
  bool ready = false;
  sta_->connect_and_enter_power_save([&](bool ok) { ready = ok; });
  scheduler_.run_until(TimePoint{seconds(10)});
  ASSERT_TRUE(ready);

  // Average the idle draw over a full minute of PS idling.
  const TimePoint from = scheduler_.now();
  scheduler_.run_until(from + minutes(1));
  const Watts avg = sta_->timeline().average_power(from, scheduler_.now());
  const double avg_ma = in_milliamps(avg / volts(3.3));
  // Table 1: 4500 uA idle for WiFi-PS. Accept 3.5-5.5 mA.
  EXPECT_GT(avg_ma, 3.5);
  EXPECT_LT(avg_ma, 5.5);
}

TEST_F(WifiIntegration, DownlinkBufferedForPsClientAndDeliveredViaPsPoll) {
  bool ready = false;
  sta_->connect_and_enter_power_save([&](bool ok) { ready = ok; });
  scheduler_.run_until(TimePoint{seconds(10)});
  ASSERT_TRUE(ready);

  std::vector<Bytes> downlinks;
  sta_->set_downlink_handler([&](const net::Ipv4Header&, const net::UdpDatagram& udp) {
    downlinks.push_back(udp.payload);
  });

  ASSERT_TRUE(ap_->send_downlink_udp(sta_->config().mac, ap_->config().ip, 9000, 5000,
                                     Bytes{'d', 'l'}));
  // The STA wakes for every 3rd beacon (~307 ms); give it a second.
  scheduler_.run_until(scheduler_.now() + seconds(2));

  ASSERT_EQ(downlinks.size(), 1u);
  EXPECT_EQ(downlinks[0], (Bytes{'d', 'l'}));
  EXPECT_GE(ap_->stats().ps_poll_received, 1u);
  EXPECT_GE(sta_->stats().ps_polls_sent, 1u);
  EXPECT_GE(ap_->stats().buffered_frames_delivered, 1u);
}

TEST_F(WifiIntegration, OpenNetworkSkipsHandshake) {
  // Rebuild both ends without a passphrase.
  ap::AccessPointConfig ap_cfg;
  ap_cfg.passphrase.clear();
  ap_cfg.bssid = MacAddress::from_seed(0xBB);
  auto open_ap = std::make_unique<ap::AccessPoint>(scheduler_, medium_,
                                                   sim::Position{0, 5}, ap_cfg, Rng{30});
  std::vector<Bytes> payloads;
  open_ap->set_uplink_handler(
      [&](const MacAddress&, const net::Ipv4Header&, const net::UdpDatagram& udp) {
        payloads.push_back(udp.payload);
      });
  open_ap->start();

  sta::StationConfig sta_cfg;
  sta_cfg.passphrase.clear();
  sta_cfg.mac = MacAddress::from_seed(0xCC);
  auto open_sta = std::make_unique<sta::Station>(scheduler_, medium_,
                                                 sim::Position{0, 8}, sta_cfg, Rng{40});

  // Shut down the default (protected) AP so only the open one answers.
  // (It is simply left un-started in this scenario: we built a fresh pair,
  // but the SetUp AP is beaconing too — distinct SSID matching keeps the
  // STA on the right network since both share the default SSID. To avoid
  // ambiguity the open pair lives further away but still in range; the
  // STA associates with whichever responds, both named "GoogleWifi".
  // The assertion below therefore only checks the open path end-to-end.)
  std::optional<sta::CycleReport> report;
  open_sta->run_duty_cycle_transmission(Bytes{7, 7},
                                        [&](const sta::CycleReport& r) { report = r; });
  scheduler_.run_until(TimePoint{seconds(10)});
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->success);
}

TEST_F(WifiIntegration, ApStatsCountProtocolActivity) {
  std::optional<sta::CycleReport> report;
  sta_->run_duty_cycle_transmission(Bytes{1}, [&](const sta::CycleReport& r) { report = r; });
  scheduler_.run_until(TimePoint{seconds(10)});
  ASSERT_TRUE(report && report->success);

  const auto& s = ap_->stats();
  EXPECT_GE(s.beacons_sent, 1u);
  EXPECT_EQ(s.probe_responses, 1u);
  EXPECT_EQ(s.auth_responses, 1u);
  EXPECT_EQ(s.assoc_responses, 1u);
  EXPECT_EQ(s.dhcp_acks_sent, 1u);
  EXPECT_EQ(s.arp_replies_sent, 1u);
  EXPECT_EQ(s.uplink_udp_datagrams, 1u);
  EXPECT_GT(s.acks_sent, 5u);
}

}  // namespace
}  // namespace wile
