// Unit tests for src/dot11: frame control, MAC headers, information
// elements, management frame bodies, MPDU assembly/FCS, control frames,
// EAPOL-Key handshake frames, and CCMP sessions.
#include <gtest/gtest.h>

#include "crypto/prf80211.hpp"
#include "dot11/ccmp.hpp"
#include "dot11/eapol.hpp"
#include "dot11/frame.hpp"
#include "dot11/ie.hpp"
#include "dot11/mgmt.hpp"
#include "util/rng.hpp"

namespace wile::dot11 {
namespace {

// ---------------------------------------------------------------------------
// FrameControl
// ---------------------------------------------------------------------------

TEST(FrameControl, EncodeDecodeRoundTripAllFlagCombinations) {
  for (int flags = 0; flags < 256; ++flags) {
    FrameControl fc;
    fc.type = FrameType::Data;
    fc.subtype = 8;
    fc.to_ds = flags & 1;
    fc.from_ds = flags & 2;
    fc.more_fragments = flags & 4;
    fc.retry = flags & 8;
    fc.power_management = flags & 16;
    fc.more_data = flags & 32;
    fc.protected_frame = flags & 64;
    fc.order = flags & 128;
    EXPECT_EQ(FrameControl::decode(fc.encode()), fc);
  }
}

TEST(FrameControl, BeaconEncoding) {
  // Beacon: version 0, type mgmt (00), subtype 8 (1000) -> 0x0080 LE.
  const auto fc = FrameControl::mgmt(MgmtSubtype::Beacon);
  EXPECT_EQ(fc.encode(), 0x0080);
}

TEST(FrameControl, AckEncoding) {
  const auto fc = FrameControl::ctrl(CtrlSubtype::Ack);
  EXPECT_EQ(fc.encode(), 0x00d4);
}

TEST(FrameControl, Describe) {
  EXPECT_EQ(FrameControl::mgmt(MgmtSubtype::Beacon).describe(), "mgmt/beacon");
  EXPECT_EQ(FrameControl::ctrl(CtrlSubtype::PsPoll).describe(), "ctrl/ps-poll");
  EXPECT_EQ(FrameControl::data(DataSubtype::QosData).describe(), "data/qos-data");
}

// ---------------------------------------------------------------------------
// MacHeader
// ---------------------------------------------------------------------------

TEST(MacHeader, RoundTrip) {
  MacHeader h;
  h.fc = FrameControl::mgmt(MgmtSubtype::ProbeRequest);
  h.duration_id = 0x1234;
  h.addr1 = MacAddress::broadcast();
  h.addr2 = MacAddress::from_seed(1);
  h.addr3 = MacAddress::from_seed(2);
  h.set_sequence(777, 3);

  ByteWriter w;
  h.write_to(w);
  const Bytes buf = w.take();
  EXPECT_EQ(buf.size(), MacHeader::kSize);
  ByteReader r{buf};
  EXPECT_EQ(MacHeader::read_from(r), h);
}

TEST(MacHeader, SequenceFieldPacking) {
  MacHeader h;
  h.set_sequence(0xabc, 0x5);
  EXPECT_EQ(h.sequence_number(), 0xabc);
  EXPECT_EQ(h.fragment_number(), 0x5);
}

// ---------------------------------------------------------------------------
// Information elements
// ---------------------------------------------------------------------------

TEST(Ie, ListRoundTrip) {
  IeList list;
  list.add(make_ssid_ie("TestNet"));
  list.add(make_ds_param_ie(6));
  list.add(make_erp_ie());

  ByteWriter w;
  list.write_to(w);
  const Bytes buf = w.take();
  EXPECT_EQ(buf.size(), list.encoded_size());

  ByteReader r{buf};
  const IeList back = IeList::read_from(r);
  EXPECT_EQ(back, list);
}

TEST(Ie, TruncatedElementThrows) {
  const Bytes bad = {0x00, 0x05, 'a', 'b'};  // claims 5 bytes, has 2
  ByteReader r{bad};
  EXPECT_THROW(IeList::read_from(r), BufferUnderflow);
}

TEST(Ie, SsidHelpers) {
  IeList list;
  list.add(make_ssid_ie("GoogleWifi"));
  EXPECT_EQ(parse_ssid_ie(list), "GoogleWifi");
  EXPECT_FALSE(has_hidden_ssid(list));

  IeList hidden;
  hidden.add(make_ssid_ie(""));
  EXPECT_TRUE(has_hidden_ssid(hidden));
  EXPECT_EQ(parse_ssid_ie(hidden), "");
}

TEST(Ie, SsidTooLongThrows) {
  EXPECT_THROW(make_ssid_ie(std::string(33, 'x')), std::invalid_argument);
}

TEST(Ie, SupportedRatesEncodeBasicBit) {
  SupportedRates rates;
  rates.add(1.0, true);
  rates.add(54.0, false);
  const InfoElement ie = make_supported_rates_ie(rates);
  EXPECT_EQ(ie.data[0], 0x82);  // 1 Mbps basic
  EXPECT_EQ(ie.data[1], 0x6c);  // 54 Mbps

  IeList list;
  list.add(ie);
  const auto parsed = parse_supported_rates_ie(list);
  ASSERT_TRUE(parsed.has_value());
  const auto mbps = parsed->mbps();
  EXPECT_DOUBLE_EQ(mbps[0], 1.0);
  EXPECT_DOUBLE_EQ(mbps[1], 54.0);
}

TEST(Ie, DefaultBgRatesFitOneElement) {
  const auto rates = default_bg_rates();
  EXPECT_LE(rates.rates_500kbps.size(), 8u);
}

TEST(Ie, TimRoundTripNoTraffic) {
  Tim tim;
  tim.dtim_count = 2;
  tim.dtim_period = 3;
  IeList list;
  list.add(make_tim_ie(tim));
  const auto back = parse_tim_ie(list);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dtim_count, 2);
  EXPECT_EQ(back->dtim_period, 3);
  EXPECT_TRUE(back->aids.empty());
  EXPECT_FALSE(back->multicast_buffered);
}

class TimAids : public ::testing::TestWithParam<std::vector<std::uint16_t>> {};

TEST_P(TimAids, RoundTripsAidSets) {
  Tim tim;
  tim.aids = GetParam();
  IeList list;
  list.add(make_tim_ie(tim));
  const auto back = parse_tim_ie(list);
  ASSERT_TRUE(back.has_value());
  auto expect = GetParam();
  std::sort(expect.begin(), expect.end());
  auto got = back->aids;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
  for (std::uint16_t aid : expect) EXPECT_TRUE(back->traffic_for(aid));
  EXPECT_FALSE(back->traffic_for(1999));
}

INSTANTIATE_TEST_SUITE_P(
    Sets, TimAids,
    ::testing::Values(std::vector<std::uint16_t>{1}, std::vector<std::uint16_t>{1, 2, 3},
                      std::vector<std::uint16_t>{7, 8, 9, 200},
                      std::vector<std::uint16_t>{2007},
                      std::vector<std::uint16_t>{1, 2007}));

TEST(Ie, TimRejectsOutOfRangeAid) {
  Tim tim;
  tim.aids = {0};
  EXPECT_THROW(make_tim_ie(tim), std::invalid_argument);
  tim.aids = {2008};
  EXPECT_THROW(make_tim_ie(tim), std::invalid_argument);
}

TEST(Ie, TimPartialBitmapIsCompact) {
  Tim tim;
  tim.aids = {1200};  // byte 150
  const InfoElement ie = make_tim_ie(tim);
  // 3 control bytes + a handful of bitmap bytes, not 150+.
  EXPECT_LT(ie.data.size(), 12u);
}

TEST(Ie, RsnPskDetected) {
  IeList list;
  list.add(make_rsn_psk_ccmp_ie());
  EXPECT_TRUE(has_rsn_psk(list));

  IeList empty;
  EXPECT_FALSE(has_rsn_psk(empty));
}

TEST(Ie, VendorIeRoundTrip) {
  const std::array<std::uint8_t, 3> oui = {0x57, 0x69, 0x4c};
  const Bytes payload = {1, 2, 3, 4, 5};
  const auto ie = make_vendor_ie(oui, 0x45, payload);
  ASSERT_TRUE(ie.has_value());

  IeList list;
  list.add(*ie);
  const auto found = parse_vendor_ies(list, oui);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].subtype, 0x45);
  EXPECT_EQ(found[0].payload, payload);
}

TEST(Ie, VendorIeRejectsOversizedPayload) {
  const std::array<std::uint8_t, 3> oui = {1, 2, 3};
  EXPECT_FALSE(make_vendor_ie(oui, 0, Bytes(vendor_payload_capacity() + 1, 0)).has_value());
  EXPECT_TRUE(make_vendor_ie(oui, 0, Bytes(vendor_payload_capacity(), 0)).has_value());
}

TEST(Ie, VendorIeFiltersByOui) {
  const std::array<std::uint8_t, 3> ours = {1, 2, 3};
  const std::array<std::uint8_t, 3> theirs = {4, 5, 6};
  IeList list;
  list.add(*make_vendor_ie(theirs, 9, Bytes{0xff}));
  EXPECT_TRUE(parse_vendor_ies(list, ours).empty());
}

TEST(Ie, HtCapsDetected) {
  IeList list;
  list.add(make_ht_caps_ie());
  EXPECT_TRUE(has_ht_caps(list));
}

// ---------------------------------------------------------------------------
// Management frame bodies
// ---------------------------------------------------------------------------

TEST(Mgmt, BeaconRoundTrip) {
  Beacon b;
  b.timestamp_us = 0x123456789abcdef0ULL;
  b.beacon_interval_tu = 100;
  b.capability = Capability::kEss | Capability::kPrivacy;
  b.ies.add(make_ssid_ie("Net"));
  b.ies.add(make_ds_param_ie(11));

  const auto back = Beacon::decode(b.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->timestamp_us, b.timestamp_us);
  EXPECT_EQ(back->beacon_interval_tu, 100);
  EXPECT_EQ(back->capability, b.capability);
  EXPECT_EQ(back->ies, b.ies);
}

TEST(Mgmt, BeaconDecodeRejectsTruncated) {
  EXPECT_FALSE(Beacon::decode(Bytes{1, 2, 3}).has_value());
}

TEST(Mgmt, ProbeRequestRoundTrip) {
  ProbeRequest p;
  p.ies.add(make_ssid_ie("Target"));
  const auto back = ProbeRequest::decode(p.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(parse_ssid_ie(back->ies), "Target");
}

TEST(Mgmt, AuthenticationRoundTrip) {
  Authentication a;
  a.algorithm = Authentication::Algorithm::OpenSystem;
  a.transaction_seq = 2;
  a.status = StatusCode::Success;
  const auto back = Authentication::decode(a.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->transaction_seq, 2);
  EXPECT_EQ(back->status, StatusCode::Success);
}

TEST(Mgmt, AssocRequestResponseRoundTrip) {
  AssocRequest req;
  req.listen_interval = 3;
  req.ies.add(make_ssid_ie("Net"));
  const auto req_back = AssocRequest::decode(req.encode());
  ASSERT_TRUE(req_back.has_value());
  EXPECT_EQ(req_back->listen_interval, 3);

  AssocResponse resp;
  resp.aid = 5;
  resp.status = StatusCode::Success;
  const auto resp_back = AssocResponse::decode(resp.encode());
  ASSERT_TRUE(resp_back.has_value());
  EXPECT_EQ(resp_back->aid, 5);  // the 0xc000 on-air bits must be stripped
}

TEST(Mgmt, DeauthDisassocRoundTrip) {
  Deauthentication d;
  d.reason = ReasonCode::DeauthLeaving;
  EXPECT_EQ(Deauthentication::decode(d.encode())->reason, ReasonCode::DeauthLeaving);

  Disassociation dis;
  dis.reason = ReasonCode::DisassocInactivity;
  EXPECT_EQ(Disassociation::decode(dis.encode())->reason, ReasonCode::DisassocInactivity);
}

// ---------------------------------------------------------------------------
// MPDU assembly / FCS / control frames
// ---------------------------------------------------------------------------

TEST(Frame, MpduRoundTripWithValidFcs) {
  const Bytes mpdu = build_mgmt_mpdu(MgmtSubtype::Beacon, MacAddress::broadcast(),
                                     MacAddress::from_seed(1), MacAddress::from_seed(1), 42,
                                     Bytes{1, 2, 3});
  const auto parsed = parse_mpdu(mpdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_TRUE(parsed->header.fc.is_mgmt(MgmtSubtype::Beacon));
  EXPECT_EQ(parsed->header.sequence_number(), 42);
  EXPECT_EQ(parsed->body.size(), 3u);
}

TEST(Frame, CorruptedMpduFailsFcs) {
  Bytes mpdu = build_mgmt_mpdu(MgmtSubtype::Beacon, MacAddress::broadcast(),
                               MacAddress::from_seed(1), MacAddress::from_seed(1), 1,
                               Bytes{1, 2, 3});
  mpdu[MacHeader::kSize] ^= 0xff;
  const auto parsed = parse_mpdu(mpdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->fcs_ok);
}

TEST(Frame, ParseRejectsTooShort) {
  EXPECT_FALSE(parse_mpdu(Bytes(10, 0)).has_value());
}

TEST(Frame, AckRoundTrip) {
  const MacAddress ra = MacAddress::from_seed(9);
  const Bytes ack = build_ack(ra);
  EXPECT_EQ(ack.size(), 14u);
  EXPECT_TRUE(is_control_frame(ack));
  const auto parsed = parse_ack(ack);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(parsed->receiver, ra);
  // A control frame must not parse as a regular MPDU.
  EXPECT_FALSE(parse_mpdu(ack).has_value());
}

TEST(Frame, PsPollRoundTrip) {
  const Bytes poll = build_ps_poll(7, MacAddress::from_seed(1), MacAddress::from_seed(2));
  const auto parsed = parse_ps_poll(poll);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(parsed->aid, 7);
  EXPECT_EQ(parsed->bssid, MacAddress::from_seed(1));
  EXPECT_EQ(parsed->transmitter, MacAddress::from_seed(2));
}

TEST(Frame, DataToFromDsAddressing) {
  const MacAddress bssid = MacAddress::from_seed(1);
  const MacAddress sta = MacAddress::from_seed(2);
  const Bytes up = build_data_to_ds(bssid, sta, bssid, 5, Bytes{9}, false);
  const auto up_p = parse_mpdu(up);
  ASSERT_TRUE(up_p.has_value());
  EXPECT_TRUE(up_p->header.fc.to_ds);
  EXPECT_FALSE(up_p->header.fc.from_ds);
  EXPECT_EQ(up_p->header.addr1, bssid);
  EXPECT_EQ(up_p->header.addr2, sta);

  const Bytes down = build_data_from_ds(sta, bssid, bssid, 6, Bytes{9}, true, true);
  const auto down_p = parse_mpdu(down);
  ASSERT_TRUE(down_p.has_value());
  EXPECT_TRUE(down_p->header.fc.from_ds);
  EXPECT_TRUE(down_p->header.fc.protected_frame);
  EXPECT_TRUE(down_p->header.fc.more_data);
  EXPECT_EQ(down_p->header.addr1, sta);
}

TEST(Frame, NullDataCarriesPowerManagement) {
  const Bytes null_frame =
      build_null_data(MacAddress::from_seed(1), MacAddress::from_seed(2), 7, true);
  const auto parsed = parse_mpdu(null_frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->header.fc.is_data(DataSubtype::Null));
  EXPECT_TRUE(parsed->header.fc.power_management);
  EXPECT_TRUE(parsed->body.empty());
}

// ---------------------------------------------------------------------------
// EAPOL-Key / 4-way handshake
// ---------------------------------------------------------------------------

class EapolFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng{77};
    for (auto& b : anonce_) b = static_cast<std::uint8_t>(rng.below(256));
    for (auto& b : snonce_) b = static_cast<std::uint8_t>(rng.below(256));
    for (auto& b : kck_) b = static_cast<std::uint8_t>(rng.below(256));
    for (auto& b : kek_) b = static_cast<std::uint8_t>(rng.below(256));
    for (auto& b : gtk_) b = static_cast<std::uint8_t>(rng.below(256));
    rsn_ie_ = {0x30, 0x02, 0x01, 0x00};  // minimal stand-in
  }

  std::array<std::uint8_t, 32> anonce_{}, snonce_{};
  std::array<std::uint8_t, 16> kck_{}, kek_{}, gtk_{};
  Bytes rsn_ie_;
};

TEST_F(EapolFixture, EncodeDecodeRoundTrip) {
  auto m1 = make_handshake_m1(1, anonce_);
  const auto back = EapolKeyFrame::decode(m1.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->key_info, m1.key_info);
  EXPECT_EQ(back->replay_counter, 1u);
  EXPECT_EQ(back->nonce, anonce_);
}

TEST_F(EapolFixture, MessageClassification) {
  EXPECT_EQ(handshake_message_number(make_handshake_m1(1, anonce_)), 1);
  EXPECT_EQ(handshake_message_number(make_handshake_m2(1, snonce_, rsn_ie_, kck_)), 2);
  EXPECT_EQ(handshake_message_number(
                make_handshake_m3(2, anonce_, rsn_ie_, gtk_, kck_, kek_)),
            3);
  EXPECT_EQ(handshake_message_number(make_handshake_m4(2, kck_)), 4);
}

TEST_F(EapolFixture, MicVerifiesAndRejectsTamper) {
  auto m2 = make_handshake_m2(1, snonce_, rsn_ie_, kck_);
  EXPECT_TRUE(m2.verify_mic(kck_));

  auto decoded = EapolKeyFrame::decode(m2.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->verify_mic(kck_));

  decoded->nonce[0] ^= 1;
  EXPECT_FALSE(decoded->verify_mic(kck_));

  std::array<std::uint8_t, 16> wrong_kck = kck_;
  wrong_kck[0] ^= 1;
  EXPECT_FALSE(m2.verify_mic(wrong_kck));
}

TEST_F(EapolFixture, M1HasNoMic) {
  EXPECT_FALSE(make_handshake_m1(1, anonce_).has(KeyInfo::kMic));
}

TEST_F(EapolFixture, GtkRoundTripsThroughM3) {
  const auto m3 = make_handshake_m3(2, anonce_, rsn_ie_, gtk_, kck_, kek_);
  EXPECT_TRUE(m3.verify_mic(kck_));
  const auto decoded = EapolKeyFrame::decode(m3.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto gtk = extract_gtk(*decoded, kek_);
  ASSERT_TRUE(gtk.has_value());
  EXPECT_TRUE(std::equal(gtk->begin(), gtk->end(), gtk_.begin(), gtk_.end()));
}

TEST_F(EapolFixture, GtkExtractFailsWithWrongKek) {
  const auto m3 = make_handshake_m3(2, anonce_, rsn_ie_, gtk_, kck_, kek_);
  std::array<std::uint8_t, 16> wrong = kek_;
  wrong[5] ^= 0xff;
  EXPECT_FALSE(extract_gtk(m3, wrong).has_value());
}

TEST_F(EapolFixture, DecodeRejectsGarbage) {
  EXPECT_FALSE(EapolKeyFrame::decode(Bytes{1, 2, 3}).has_value());
  Bytes not_key = make_handshake_m1(1, anonce_).encode();
  not_key[1] = 0;  // EAPOL type != Key
  EXPECT_FALSE(EapolKeyFrame::decode(not_key).has_value());
}

// ---------------------------------------------------------------------------
// CCMP session
// ---------------------------------------------------------------------------

TEST(Ccmp, SealOpenRoundTrip) {
  std::array<std::uint8_t, 16> tk{};
  for (std::size_t i = 0; i < tk.size(); ++i) tk[i] = static_cast<std::uint8_t>(i);
  CcmpSession tx{tk}, rx{tk};
  const MacAddress ta = MacAddress::from_seed(3);

  const Bytes plain = {1, 2, 3, 4, 5};
  const Bytes sealed = tx.seal(ta, plain);
  EXPECT_EQ(sealed.size(), plain.size() + CcmpSession::kOverhead);
  const auto opened = rx.open(ta, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plain);
}

TEST(Ccmp, ReplayRejected) {
  std::array<std::uint8_t, 16> tk{};
  CcmpSession tx{tk}, rx{tk};
  const MacAddress ta = MacAddress::from_seed(3);
  const Bytes sealed = tx.seal(ta, Bytes{1});
  EXPECT_TRUE(rx.open(ta, sealed).has_value());
  EXPECT_FALSE(rx.open(ta, sealed).has_value());  // same PN again
}

TEST(Ccmp, PnIncreasesPerFrame) {
  std::array<std::uint8_t, 16> tk{};
  CcmpSession tx{tk};
  const MacAddress ta = MacAddress::from_seed(3);
  tx.seal(ta, Bytes{1});
  tx.seal(ta, Bytes{2});
  EXPECT_EQ(tx.tx_pn(), 2u);
}

TEST(Ccmp, WrongTransmitterAddressRejected) {
  std::array<std::uint8_t, 16> tk{};
  CcmpSession tx{tk}, rx{tk};
  const Bytes sealed = tx.seal(MacAddress::from_seed(3), Bytes{1, 2});
  EXPECT_FALSE(rx.open(MacAddress::from_seed(4), sealed).has_value());
}

TEST(Ccmp, OutOfOrderWithinWindowRejected) {
  // Strictly-increasing PN: frame 1 cannot arrive after frame 2.
  std::array<std::uint8_t, 16> tk{};
  CcmpSession tx{tk}, rx{tk};
  const MacAddress ta = MacAddress::from_seed(3);
  const Bytes first = tx.seal(ta, Bytes{1});
  const Bytes second = tx.seal(ta, Bytes{2});
  EXPECT_TRUE(rx.open(ta, second).has_value());
  EXPECT_FALSE(rx.open(ta, first).has_value());
}

}  // namespace
}  // namespace wile::dot11
