// Tests for the BLE advertiser/scanner pair (the BLE-beacon mode that
// mirrors Wi-LE's interaction model).
#include <gtest/gtest.h>

#include "ble/advertiser.hpp"

namespace wile::ble {
namespace {

class AdvertiserTest : public ::testing::Test {
 protected:
  sim::Scheduler scheduler_;
  sim::Medium medium_{scheduler_, phy::Channel{}, Rng{1}};
};

TEST_F(AdvertiserTest, OneEventReachesScanner) {
  BleAdvertiserConfig cfg;
  BleAdvertiser adv{scheduler_, medium_, {0, 0}, cfg};
  BleScanner scanner{scheduler_, medium_, {2, 0}};

  std::vector<Bytes> seen;
  scanner.set_callback([&](const AdvertisingPdu& pdu, double) { seen.push_back(pdu.adv_data); });

  std::optional<AdvEventReport> report;
  adv.advertise_once(Bytes{0x02, 0x01, 0x06}, [&](const AdvEventReport& r) { report = r; });
  scheduler_.run_until_idle();

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->pdus_sent, 3);  // one per advertising channel
  // Our single-medium scanner hears all three copies.
  EXPECT_EQ(scanner.pdus_received(), 3u);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen[0], (Bytes{0x02, 0x01, 0x06}));
}

TEST_F(AdvertiserTest, EventEnergyExceedsWiLePerMessage) {
  // A standard 3-channel advertising event with a 31-byte payload costs
  // more than Wi-LE's 84 uJ single injection — the comparison
  // bench/ablate_beacon_modes quantifies.
  BleAdvertiserConfig cfg;
  BleAdvertiser adv{scheduler_, medium_, {0, 0}, cfg};
  std::optional<AdvEventReport> report;
  adv.advertise_once(Bytes(31, 0xaa), [&](const AdvEventReport& r) { report = r; });
  scheduler_.run_until_idle();

  ASSERT_TRUE(report.has_value());
  const double uj = in_microjoules(report->energy);
  EXPECT_GT(uj, 84.0);
  EXPECT_LT(uj, 200.0);  // still microjoule-class
}

TEST_F(AdvertiserTest, FewerChannelsCostLess) {
  BleAdvertiserConfig cfg3;
  cfg3.channels = 3;
  BleAdvertiserConfig cfg1;
  cfg1.channels = 1;
  BleAdvertiser adv3{scheduler_, medium_, {0, 0}, cfg3};
  BleAdvertiser adv1{scheduler_, medium_, {0, 1}, cfg1};

  std::optional<AdvEventReport> r3, r1;
  adv3.advertise_once(Bytes(20, 1), [&](const AdvEventReport& r) { r3 = r; });
  scheduler_.run_until_idle();
  adv1.advertise_once(Bytes(20, 1), [&](const AdvEventReport& r) { r1 = r; });
  scheduler_.run_until_idle();

  ASSERT_TRUE(r3 && r1);
  EXPECT_EQ(r3->pdus_sent, 3);
  EXPECT_EQ(r1->pdus_sent, 1);
  EXPECT_GT(r3->energy.value, r1->energy.value);
}

TEST_F(AdvertiserTest, PeriodicAdvertisingKeepsCadence) {
  BleAdvertiserConfig cfg;
  cfg.adv_interval = msec(500);
  BleAdvertiser adv{scheduler_, medium_, {0, 0}, cfg};
  BleScanner scanner{scheduler_, medium_, {2, 0}};

  int events = 0;
  adv.start([] { return Bytes{0x11}; },
            [&](const AdvEventReport&) { ++events; });
  scheduler_.run_until(TimePoint{seconds(5) + msec(100)});
  adv.stop();
  scheduler_.run_until(scheduler_.now() + seconds(1));

  EXPECT_EQ(events, 10);
  EXPECT_EQ(scanner.pdus_received(), 30u);  // 3 channels x 10 events
}

TEST_F(AdvertiserTest, RejectsOversizedAdvData) {
  BleAdvertiserConfig cfg;
  BleAdvertiser adv{scheduler_, medium_, {0, 0}, cfg};
  EXPECT_THROW(adv.advertise_once(Bytes(32, 0), {}), std::invalid_argument);
}

TEST_F(AdvertiserTest, RejectsBadChannelCount) {
  BleAdvertiserConfig cfg;
  cfg.channels = 0;
  EXPECT_THROW((BleAdvertiser{scheduler_, medium_, {0, 0}, cfg}),
               std::invalid_argument);
  cfg.channels = 4;
  EXPECT_THROW((BleAdvertiser{scheduler_, medium_, {0, 0}, cfg}),
               std::invalid_argument);
}

TEST_F(AdvertiserTest, SleepsBetweenEvents) {
  BleAdvertiserConfig cfg;
  cfg.adv_interval = seconds(1);
  BleAdvertiser adv{scheduler_, medium_, {0, 0}, cfg};
  adv.start([] { return Bytes{1}; });
  scheduler_.run_until(TimePoint{seconds(5)});
  adv.stop();

  // Mid-interval the device must be at sleep current.
  const TimePoint probe{seconds(2) + msec(500)};
  EXPECT_NEAR(in_microamps(adv.timeline().current_at(probe)), 1.1, 1e-6);
}

}  // namespace
}  // namespace wile::ble
