// Tests for the RadioPowerTracker's TX-overlay nesting and a property
// fuzz of the scheduler's ordering/cancellation invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "power/radio_tracker.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace wile {
namespace {

// ---------------------------------------------------------------------------
// RadioPowerTracker
// ---------------------------------------------------------------------------

class TrackerTest : public ::testing::Test {
 protected:
  sim::Scheduler scheduler_;
  power::PowerTimeline timeline_{volts(3.3)};
  power::RadioPowerTracker tracker_{scheduler_, timeline_, milliamps(180), usec(50)};
};

TEST_F(TrackerTest, TxOverlaysThenRestoresBaseline) {
  tracker_.set_phase(milliamps(40), "phase");
  scheduler_.run_until(TimePoint{usec(100)});
  tracker_.on_tx_start(usec(200));
  EXPECT_NEAR(in_milliamps(timeline_.current_at(TimePoint{usec(150)})), 180.0, 1e-9);
  scheduler_.run_until_idle();
  // airtime 200 + ramp 50 => baseline restored at t=350.
  EXPECT_NEAR(in_milliamps(timeline_.current_at(TimePoint{usec(349)})), 180.0, 1e-9);
  EXPECT_NEAR(in_milliamps(timeline_.current_at(TimePoint{usec(351)})), 40.0, 1e-9);
}

TEST_F(TrackerTest, NestedTxRestoresOnlyAfterLast) {
  tracker_.set_phase(milliamps(40), "phase");
  tracker_.on_tx_start(usec(100));
  scheduler_.run_until(TimePoint{usec(120)});
  tracker_.on_tx_start(usec(100));  // second TX while first ramp pending
  scheduler_.run_until_idle();
  // First restore at 150 must NOT drop to baseline (nesting = 1).
  EXPECT_NEAR(in_milliamps(timeline_.current_at(TimePoint{usec(160)})), 180.0, 1e-9);
  // Final restore at 120+100+50 = 270.
  EXPECT_NEAR(in_milliamps(timeline_.current_at(TimePoint{usec(275)})), 40.0, 1e-9);
}

TEST_F(TrackerTest, PhaseChangeDuringTxDefersToRestore) {
  tracker_.set_phase(milliamps(40), "a");
  tracker_.on_tx_start(usec(100));
  scheduler_.run_until(TimePoint{usec(50)});
  tracker_.set_phase(milliamps(25), "b");
  // Still at TX current while the radio is hot.
  EXPECT_NEAR(in_milliamps(timeline_.current_at(scheduler_.now())), 180.0, 1e-9);
  scheduler_.run_until_idle();
  // After restore, the *new* baseline applies.
  EXPECT_NEAR(in_milliamps(timeline_.current_at(TimePoint{usec(200)})), 25.0, 1e-9);
}

TEST_F(TrackerTest, CustomCurrentOverridesDefault) {
  tracker_.set_phase(milliamps(40), "phase");
  tracker_.on_tx_start(usec(100), milliamps(240));
  EXPECT_NEAR(in_milliamps(timeline_.current_at(scheduler_.now())), 240.0, 1e-9);
  scheduler_.run_until_idle();
}

// ---------------------------------------------------------------------------
// Scheduler property fuzz
// ---------------------------------------------------------------------------

TEST(SchedulerFuzz, RandomScheduleCancelStormKeepsInvariants) {
  // Invariants under a random storm of schedule/cancel operations:
  //  * events fire in non-decreasing time order,
  //  * cancelled events never fire,
  //  * every non-cancelled event fires exactly once.
  Rng rng{99};
  for (int trial = 0; trial < 20; ++trial) {
    sim::Scheduler scheduler;
    struct Entry {
      sim::EventId id;
      std::int64_t at;
      bool cancelled = false;
      int fired = 0;
    };
    std::vector<Entry> entries;
    entries.reserve(300);
    std::int64_t last_fired_at = -1;
    bool order_ok = true;

    for (int i = 0; i < 300; ++i) {
      const auto at = static_cast<std::int64_t>(rng.below(10'000));
      entries.push_back({0, at, false, 0});
      const std::size_t idx = entries.size() - 1;
      entries[idx].id = scheduler.schedule_at(
          TimePoint{usec(at)}, [&entries, idx, &last_fired_at, &order_ok] {
            ++entries[idx].fired;
            if (entries[idx].at < last_fired_at) order_ok = false;
            last_fired_at = entries[idx].at;
          });
      // Randomly cancel some previously scheduled event.
      if (rng.chance(0.3) && !entries.empty()) {
        Entry& victim = entries[rng.below(entries.size())];
        if (victim.fired == 0) {
          scheduler.cancel(victim.id);
          victim.cancelled = true;
        }
      }
    }
    scheduler.run_until_idle();

    EXPECT_TRUE(order_ok) << "trial " << trial;
    for (const Entry& e : entries) {
      if (e.cancelled) {
        EXPECT_EQ(e.fired, 0) << "cancelled event fired (trial " << trial << ")";
      } else {
        EXPECT_EQ(e.fired, 1) << "event fired " << e.fired << " times (trial " << trial
                              << ")";
      }
    }
  }
}

TEST(SchedulerFuzz, EventsScheduledFromHandlersPreserveOrder) {
  sim::Scheduler scheduler;
  std::vector<int> order;
  // A handler that schedules two more events, one of which lands at the
  // same timestamp (must run after already-queued same-time events).
  scheduler.schedule_at(TimePoint{usec(10)}, [&] {
    order.push_back(1);
    scheduler.schedule_at(TimePoint{usec(10)}, [&] { order.push_back(3); });
    scheduler.schedule_at(TimePoint{usec(20)}, [&] { order.push_back(4); });
  });
  scheduler.schedule_at(TimePoint{usec(10)}, [&] { order.push_back(2); });
  scheduler.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace wile
