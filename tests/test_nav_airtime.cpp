// Tests for NAV-based virtual carrier sense and the airtime monitor.
#include <gtest/gtest.h>

#include "dot11/frame.hpp"
#include "sim/airtime_monitor.hpp"
#include "sim/csma.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "sim/traffic.hpp"

namespace wile::sim {
namespace {

TEST(WithDuration, PatchesFieldAndKeepsFcsValid) {
  const Bytes original = dot11::build_mgmt_mpdu(
      dot11::MgmtSubtype::Beacon, MacAddress::broadcast(), MacAddress::from_seed(1),
      MacAddress::from_seed(1), 7, Bytes{1, 2, 3});
  const Bytes patched = dot11::with_duration(original, 44);

  const auto parsed = dot11::parse_mpdu(patched);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);  // FCS recomputed over the patched bytes
  EXPECT_EQ(parsed->header.duration_id, 44);
  // Everything else untouched.
  EXPECT_EQ(parsed->header.sequence_number(), 7);
  EXPECT_EQ(parsed->body.size(), 3u);
}

TEST(Nav, ObserveExtendsOnlyForward) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  struct Dummy : MediumClient {
    void on_frame(const RxFrame&) override {}
    [[nodiscard]] bool rx_enabled() const override { return true; }
  } dummy;
  const NodeId id = medium.attach(&dummy, {0, 0});
  Csma csma{scheduler, medium, id, Rng{2}};

  csma.observe_nav(100);
  EXPECT_EQ(csma.nav_until().us(), 100);
  csma.observe_nav(50);  // shorter reservation must not shrink the NAV
  EXPECT_EQ(csma.nav_until().us(), 100);
  csma.observe_nav(0x8000 | 7);  // AID encoding: ignored
  EXPECT_EQ(csma.nav_until().us(), 100);
  csma.observe_nav(200);
  EXPECT_EQ(csma.nav_until().us(), 200);
}

TEST(Nav, DefersTransmissionUntilNavExpiry) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  struct Recorder : MediumClient {
    void on_frame(const RxFrame& frame) override { arrivals.push_back(frame); }
    [[nodiscard]] bool rx_enabled() const override { return true; }
    std::vector<RxFrame> arrivals;
  } rx;
  struct Dummy : MediumClient {
    void on_frame(const RxFrame&) override {}
    [[nodiscard]] bool rx_enabled() const override { return true; }
  } dummy;
  const NodeId tx = medium.attach(&dummy, {0, 0});
  medium.attach(&rx, {2, 0});
  Csma csma{scheduler, medium, tx, Rng{2}};

  // A 5 ms NAV reservation: even though the physical channel is idle,
  // the MAC must hold off.
  csma.observe_nav(5000);
  csma.send(Bytes(50, 1), phy::WifiRate::G6, false, {});
  scheduler.run_until_idle();

  ASSERT_EQ(rx.arrivals.size(), 1u);
  // TX cannot have started before NAV expiry + DIFS.
  EXPECT_GE(scheduler.now().us(), 5000 + phy::MacTiming::kDifs.count());
}

TEST(Nav, UnicastDataCarriesSifsPlusAckReservation) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  struct Recorder : MediumClient {
    void on_frame(const RxFrame& frame) override {
      if (auto parsed = dot11::parse_mpdu(frame.mpdu)) durations.push_back(
          parsed->header.duration_id);
    }
    [[nodiscard]] bool rx_enabled() const override { return true; }
    std::vector<std::uint16_t> durations;
  } rx;
  struct Dummy : MediumClient {
    void on_frame(const RxFrame&) override {}
    [[nodiscard]] bool rx_enabled() const override { return true; }
  } dummy;
  const NodeId tx = medium.attach(&dummy, {0, 0});
  medium.attach(&rx, {2, 0});
  Csma csma{scheduler, medium, tx, Rng{2}};

  // Unicast (expects ACK): duration = SIFS + ACK = 10 + 34 = 44 us.
  csma.send(dot11::build_data_to_ds(MacAddress::from_seed(1), MacAddress::from_seed(2),
                                    MacAddress::from_seed(1), 1, Bytes{1}, false),
            phy::WifiRate::G6, /*expect_ack=*/true, {});
  scheduler.run_until(TimePoint{msec(50)});
  // Broadcast: duration 0.
  csma.send(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::Beacon, MacAddress::broadcast(),
                                   MacAddress::from_seed(2), MacAddress::from_seed(2), 2,
                                   Bytes{}),
            phy::WifiRate::G6, /*expect_ack=*/false, {});
  scheduler.run_until(TimePoint{seconds(2)});

  // The unacknowledged unicast retries (retry limit + 1 copies), all
  // carrying the SIFS+ACK reservation; the final broadcast carries none.
  ASSERT_GE(rx.durations.size(), 2u);
  for (std::size_t i = 0; i + 1 < rx.durations.size(); ++i) {
    EXPECT_EQ(rx.durations[i], 44);
  }
  EXPECT_EQ(rx.durations.back(), 0);
}

TEST(AirtimeMonitorTest, MeasuresOccupiedFraction) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  AirtimeMonitor monitor{scheduler, medium, {1, 0}};
  struct Dummy : MediumClient {
    void on_frame(const RxFrame&) override {}
    [[nodiscard]] bool rx_enabled() const override { return true; }
  } dummy;
  const NodeId tx = medium.attach(&dummy, {0, 0});

  // One 10 ms transmission in a 100 ms window = 10% busy.
  TxRequest req;
  req.mpdu = Bytes(100, 1);
  req.airtime = msec(10);
  medium.transmit(tx, std::move(req));
  scheduler.run_until(TimePoint{msec(100)});

  EXPECT_NEAR(monitor.busy_fraction(), 0.10, 0.001);
  EXPECT_EQ(monitor.frames_heard(), 1u);
}

TEST(AirtimeMonitorTest, CountsCorruptFramesAsBusy) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  AirtimeMonitor monitor{scheduler, medium, {0.5, 1}};
  struct Dummy : MediumClient {
    void on_frame(const RxFrame&) override {}
    [[nodiscard]] bool rx_enabled() const override { return true; }
  } a, b;
  const NodeId ta = medium.attach(&a, {0, 0});
  const NodeId tb = medium.attach(&b, {1, 0});

  // Two overlapping 10 ms transmissions: both corrupt at the monitor,
  // both counted as channel occupancy.
  TxRequest ra;
  ra.mpdu = Bytes(100, 1);
  ra.airtime = msec(10);
  medium.transmit(ta, std::move(ra));
  scheduler.schedule_in(msec(5), [&] {
    TxRequest rb;
    rb.mpdu = Bytes(100, 2);
    rb.airtime = msec(10);
    medium.transmit(tb, std::move(rb));
  });
  scheduler.run_until(TimePoint{msec(100)});

  EXPECT_EQ(monitor.frames_heard(), 2u);
  EXPECT_NEAR(monitor.busy_fraction(), 0.20, 0.01);
}

TEST(AirtimeMonitorTest, ResetClearsAccounting) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  AirtimeMonitor monitor{scheduler, medium, {1, 0}};
  struct Dummy : MediumClient {
    void on_frame(const RxFrame&) override {}
    [[nodiscard]] bool rx_enabled() const override { return true; }
  } dummy;
  const NodeId tx = medium.attach(&dummy, {0, 0});
  TxRequest req;
  req.mpdu = Bytes{1};
  req.airtime = msec(5);
  medium.transmit(tx, std::move(req));
  scheduler.run_until(TimePoint{msec(20)});
  monitor.reset();
  scheduler.run_until(TimePoint{msec(40)});
  EXPECT_EQ(monitor.frames_heard(), 0u);
  EXPECT_DOUBLE_EQ(monitor.busy_fraction(), 0.0);
}

}  // namespace
}  // namespace wile::sim
