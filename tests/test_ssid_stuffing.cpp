// Tests for the SSID-stuffing comparison arm (§2 related work) and the
// receiver's CSV export.
#include <gtest/gtest.h>

#include "wile/receiver.hpp"
#include "wile/scan_list.hpp"
#include "wile/sender.hpp"

namespace wile::core {
namespace {

TEST(SsidStuffing, CodecRoundTrip) {
  Message msg;
  msg.device_id = 0x1234;
  msg.sequence = 200;
  msg.data = {1, 2, 3, 4};
  const auto ssid = encode_ssid_stuffed(msg);
  ASSERT_TRUE(ssid.has_value());
  EXPECT_LE(ssid->size(), 32u);

  const auto back = decode_ssid_stuffed(*ssid);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->device_id, 0x1234u);
  EXPECT_EQ(back->sequence, 200u);
  EXPECT_EQ(back->data, msg.data);
}

TEST(SsidStuffing, CapacityLimits) {
  Message msg;
  msg.device_id = 1;
  msg.data = Bytes(kSsidStuffingCapacity, 0xaa);
  EXPECT_TRUE(encode_ssid_stuffed(msg).has_value());
  msg.data.push_back(0);
  EXPECT_FALSE(encode_ssid_stuffed(msg).has_value());

  Message wide_id;
  wide_id.device_id = 0x10000;  // needs more than 16 bits
  EXPECT_FALSE(encode_ssid_stuffed(wide_id).has_value());
}

TEST(SsidStuffing, OrdinarySsidsRejected) {
  EXPECT_FALSE(decode_ssid_stuffed("GoogleWifi").has_value());
  EXPECT_FALSE(decode_ssid_stuffed("").has_value());
  EXPECT_FALSE(decode_ssid_stuffed("W!").has_value());  // too short
}

TEST(SsidStuffing, EndToEndDelivery) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  SenderConfig cfg;
  cfg.device_id = 77;
  cfg.ssid_stuffing = true;
  Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
  Receiver monitor{scheduler, medium, {2, 0}};

  std::vector<Message> got;
  monitor.set_message_callback([&](const Message& m, const RxMeta&) { got.push_back(m); });
  std::optional<SendReport> report;
  sender.send_now(Bytes{'o', 'k'}, [&](const SendReport& r) { report = r; });
  scheduler.run_until_idle();

  ASSERT_TRUE(report && report->success);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].device_id, 77u);
  EXPECT_EQ(got[0].data, (Bytes{'o', 'k'}));
}

TEST(SsidStuffing, OversizedPayloadFailsTheCycle) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  SenderConfig cfg;
  cfg.ssid_stuffing = true;
  Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
  std::optional<SendReport> report;
  sender.send_now(Bytes(64, 1), [&](const SendReport& r) { report = r; });
  scheduler.run_until_idle();
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->success);  // 64 B does not fit the SSID field
}

TEST(SsidStuffing, SpamsTheScanListUnlikeHiddenMode) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ScanListModel phone{scheduler, medium, {0, 2}};

  SenderConfig stuffed_cfg;
  stuffed_cfg.device_id = 1;
  stuffed_cfg.ssid_stuffing = true;
  Sender stuffed{scheduler, medium, {0, 0}, stuffed_cfg, Rng{2}};

  SenderConfig hidden_cfg;
  hidden_cfg.device_id = 2;
  Sender hidden{scheduler, medium, {1, 0}, hidden_cfg, Rng{3}};

  stuffed.send_now(Bytes{1}, {});
  hidden.send_now(Bytes{1}, {});
  scheduler.run_until_idle();

  // Exactly one junk entry: the stuffed sender. The Wi-LE sender stays
  // invisible — the §4.1 trade in one assertion.
  EXPECT_EQ(phone.visible().size(), 1u);
  EXPECT_EQ(phone.hidden_networks(), 1u);
}

TEST(Receiver, DevicesCsvExport) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  SenderConfig cfg;
  cfg.device_id = 42;
  Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
  Receiver monitor{scheduler, medium, {2, 0}};

  sender.send_now(Bytes{1}, {});
  scheduler.run_until_idle();

  const std::string csv = monitor.devices_csv();
  EXPECT_NE(csv.find("device_id,messages"), std::string::npos);
  EXPECT_NE(csv.find("\n42,1,0,0.00,0,"), std::string::npos);
}

}  // namespace
}  // namespace wile::core
