// Chaos harness: campaign generation/serialization, invariant oracles,
// fault-script validation, minimal-repro shrinking and deterministic
// replay — plus the satellite coverage for NaN-hardened loss floors and
// the clock-drift step interacting with receiver scan windows.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "sim/chaos.hpp"
#include "sim/invariants.hpp"
#include "util/frame_buffer.hpp"
#include "wile/controller.hpp"
#include "wile/receiver.hpp"
#include "wile/scenario.hpp"

namespace wile::sim {
namespace {

// ---------------------------------------------------------------------------
// Campaign generation and JSON round-trip
// ---------------------------------------------------------------------------

TEST(ChaosCampaign, GenerationIsDeterministicAndBounded) {
  ChaosConfig config;
  config.min_actions = 4;
  config.max_actions = 12;
  config.horizon = seconds(60);
  config.n_devices = 8;

  const Campaign a = generate_campaign(42, config);
  const Campaign b = generate_campaign(42, config);
  EXPECT_EQ(a, b);  // pure function of (seed, config)
  EXPECT_NE(a, generate_campaign(43, config));

  EXPECT_GE(a.actions.size(), 4u);
  EXPECT_LE(a.actions.size(), 12u);
  for (const FaultAction& action : a.actions) {
    EXPECT_GE(action.start_us, 0);
    EXPECT_LE(action.start_us, a.horizon_us);
    if (action.target >= 0) {
      EXPECT_LT(action.target, 8);
    }
  }
  // Chronological order (stable for equal starts).
  for (std::size_t i = 1; i < a.actions.size(); ++i) {
    EXPECT_LE(a.actions[i - 1].start_us, a.actions[i].start_us);
  }
}

TEST(ChaosCampaign, JsonRoundTripIsExact) {
  ChaosConfig config;
  config.horizon = seconds(120);
  config.n_devices = 5;
  // Many seeds so every fault kind (and both drift signs) appears.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Campaign campaign = generate_campaign(seed, config);
    const auto parsed = campaign_from_json(campaign_to_json(campaign));
    ASSERT_TRUE(parsed.has_value()) << "seed " << seed;
    EXPECT_EQ(*parsed, campaign) << "seed " << seed;  // incl. bitwise doubles
  }
}

TEST(ChaosCampaign, MalformedJsonRejectedWithoutThrowing) {
  EXPECT_FALSE(campaign_from_json("").has_value());
  EXPECT_FALSE(campaign_from_json("{").has_value());
  EXPECT_FALSE(campaign_from_json("[1,2,3]").has_value());
  EXPECT_FALSE(campaign_from_json(R"({"schema": "wrong-schema"})").has_value());
  EXPECT_FALSE(campaign_from_json(
                   R"({"schema": "wile-chaos-campaign-v1", "seed": 1,
                       "horizon_us": 10, "actions": [{"kind": "no_such_fault",
                       "start_us": 0}]})")
                   .has_value());
}

TEST(ChaosCampaign, KindNamesRoundTrip) {
  for (const FaultKind kind :
       {FaultKind::kApOutage, FaultKind::kJammer, FaultKind::kNoiseRise,
        FaultKind::kPerMultiplier, FaultKind::kLossFloor,
        FaultKind::kNodeLossFloor, FaultKind::kRadioDeaf,
        FaultKind::kClockDriftStep, FaultKind::kBrownOut,
        FaultKind::kBrownOutAll, FaultKind::kHarvestFade,
        FaultKind::kRfDrought}) {
    const auto parsed = kind_from_name(kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(kind_from_name("warp_core_breach").has_value());
}

// Every generated campaign arms against a real fleet without throwing,
// across the full vocabulary.
TEST(ChaosCampaign, SchedulesAgainstScenarioWithoutThrowing) {
  ChaosConfig config;
  config.horizon = seconds(30);
  config.n_devices = 3;
  config.min_actions = 12;
  config.max_actions = 20;

  auto scenario = ScenarioBuilder{}.devices(3).gateways(1).build();
  const Campaign campaign = generate_campaign(7, config);
  const std::size_t armed =
      schedule_campaign(campaign, scenario->chaos_targets());
  // Mains-powered fleet: kBrownOut (needs a per-device energy target)
  // and kClockDriftStep/kRadioDeaf arm only when bound — but the bulk of
  // the script must arm.
  EXPECT_GT(armed, 0u);
  EXPECT_LE(armed, campaign.actions.size());
  scenario->run_until(TimePoint{seconds(31)});
}

// ---------------------------------------------------------------------------
// Fault-script validation (satellite)
// ---------------------------------------------------------------------------

TEST(FaultValidation, WindowEndMustFollowStart) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  FaultInjector fi{scheduler, medium, Rng{2}};
  EXPECT_THROW(fi.window(TimePoint{seconds(1)}, seconds(0), {}, {}),
               std::invalid_argument);
  EXPECT_THROW(fi.window(TimePoint{seconds(1)}, seconds(-1), {}, {}),
               std::invalid_argument);
  EXPECT_NO_THROW(fi.window(TimePoint{seconds(1)}, usec(1), {}, {}));
}

TEST(FaultValidation, NonFiniteParametersRejected) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  FaultInjector fi{scheduler, medium, Rng{2}};
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(fi.noise_floor_rise(TimePoint{}, seconds(1), nan),
               std::invalid_argument);
  EXPECT_THROW(fi.per_multiplier(TimePoint{}, seconds(1), nan),
               std::invalid_argument);
  EXPECT_THROW(fi.per_multiplier(TimePoint{}, seconds(1), inf),
               std::invalid_argument);
  EXPECT_THROW(fi.per_floor(TimePoint{}, seconds(1), nan), std::invalid_argument);
  EXPECT_THROW(fi.per_floor(TimePoint{}, seconds(1), 1.0), std::invalid_argument);
  EXPECT_THROW(fi.per_floor(TimePoint{}, seconds(1), nan, NodeId{0}),
               std::invalid_argument);
  EXPECT_THROW(fi.harvest_fade(TimePoint{}, seconds(1), nan),
               std::invalid_argument);
  EXPECT_THROW(fi.harvest_fade(TimePoint{}, seconds(1), -0.5),
               std::invalid_argument);
}

TEST(FaultValidation, OverlappingSameTargetWindowsCountedOnce) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  FaultInjector fi{scheduler, medium, Rng{2}};

  fi.noise_floor_rise(TimePoint{seconds(10)}, seconds(10), 3.0);
  EXPECT_EQ(fi.stats().windows_overlapping, 0u);
  // Overlaps the first noise window -> one warning.
  fi.noise_floor_rise(TimePoint{seconds(15)}, seconds(10), 3.0);
  EXPECT_EQ(fi.stats().windows_overlapping, 1u);
  // Same interval, different fault kind: no warning.
  fi.per_multiplier(TimePoint{seconds(15)}, seconds(10), 2.0);
  EXPECT_EQ(fi.stats().windows_overlapping, 1u);
  // Same kind, disjoint interval: no warning.
  fi.noise_floor_rise(TimePoint{seconds(30)}, seconds(5), 3.0);
  EXPECT_EQ(fi.stats().windows_overlapping, 1u);
  // Per-node faults only collide on the same node.
  fi.radio_deaf(TimePoint{seconds(0)}, seconds(10), NodeId{1});
  fi.radio_deaf(TimePoint{seconds(5)}, seconds(10), NodeId{2});
  EXPECT_EQ(fi.stats().windows_overlapping, 1u);
  fi.radio_deaf(TimePoint{seconds(8)}, seconds(10), NodeId{1});
  EXPECT_EQ(fi.stats().windows_overlapping, 2u);

  // The warning is published as a telemetry counter.
  telemetry::MetricsRegistry registry;
  fi.publish_metrics(registry);
  EXPECT_EQ(registry.counter_value("fault.windows_overlapping"), 2u);
}

// ---------------------------------------------------------------------------
// Loss-floor hardening (satellite)
// ---------------------------------------------------------------------------

TEST(LossFloorHardening, MediumClampsAndSurvivesNaN) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  core::Receiver rx{scheduler, medium, {1, 0}};  // attaches a node
  const NodeId node = rx.node_id();

  medium.set_loss_floor(1.7);
  EXPECT_EQ(medium.loss_floor(), 1.0);
  medium.set_loss_floor(-0.3);
  EXPECT_EQ(medium.loss_floor(), 0.0);
  medium.set_node_loss_floor(node, 2.5);
  EXPECT_EQ(medium.node_loss_floor(node), 1.0);

#ifdef NDEBUG
  // Release builds drop the poison instead of propagating it.
  medium.set_loss_floor(std::nan(""));
  EXPECT_EQ(medium.loss_floor(), 0.0);
  medium.set_node_loss_floor(node, std::nan(""));
  EXPECT_EQ(medium.node_loss_floor(node), 0.0);
#else
  EXPECT_DEATH(medium.set_loss_floor(std::nan("")), "");
  EXPECT_DEATH(medium.set_node_loss_floor(node, std::nan("")), "");
#endif
}

TEST(LossFloorHardening, PerNodeFloorStacksOnGlobal) {
  // A per-node floor must only affect its node: two receivers at the
  // same distance, one behind a 90% erasure floor, same seeded run.
  auto scenario = ScenarioBuilder{}
                      .devices(1)
                      .gateways(2)
                      .duty_cycle(seconds(1))
                      .stagger_starts(false)
                      .place_device([](int) { return Position{0, 0}; })
                      .place_gateway([](int k) {
                        return k == 0 ? Position{2, 0} : Position{-2, 0};
                      })
                      .build();
  const NodeId impaired = scenario->gateways()[1]->node_id();
  scenario->medium().set_node_loss_floor(impaired, 0.9);
  EXPECT_DOUBLE_EQ(scenario->medium().node_loss_floor(impaired), 0.9);

  scenario->run_until(TimePoint{seconds(60)});
  scenario->stop_all();
  scenario->run_for(seconds(1));

  const auto clean = scenario->gateways()[0]->stats().messages;
  const auto floored = scenario->gateways()[1]->stats().messages;
  EXPECT_GT(clean, 50u);       // ~1 msg/s, clean short link
  EXPECT_LT(floored, clean / 2);  // the 90% floor must bite
  EXPECT_GT(floored, 0u);      // but not black-hole the node
}

// ---------------------------------------------------------------------------
// InvariantMonitor mechanics
// ---------------------------------------------------------------------------

TEST(InvariantMonitor, MonotoneAndBoundedOracles) {
  Scheduler scheduler;
  InvariantMonitor monitor;
  std::uint64_t counter = 10;
  double gauge = 0.5;
  monitor.add_monotone_counter("test.counter", [&] { return counter; });
  monitor.add_bounded_gauge("test.gauge", [&] { return gauge; }, 0.0, 1.0, 7);

  monitor.run_checks(TimePoint{});
  EXPECT_TRUE(monitor.ok());

  counter = 5;  // backwards
  gauge = 1.5;  // out of bounds
  monitor.run_checks(TimePoint{seconds(1)});
  ASSERT_EQ(monitor.violations().size(), 2u);
  EXPECT_EQ(monitor.violations()[0].invariant, "test.counter");
  EXPECT_EQ(monitor.violations()[1].invariant, "test.gauge");
  EXPECT_EQ(monitor.violations()[1].node, 7u);
  EXPECT_EQ(monitor.violations()[1].at, TimePoint{seconds(1)});

  // NaN is out of every bound.
  gauge = std::nan("");
  counter = 5;  // not backwards anymore (last observed was 5)
  monitor.run_checks(TimePoint{seconds(2)});
  EXPECT_EQ(monitor.stats().violations, 3u);
}

TEST(InvariantMonitor, SequenceUniquenessFlagsDuplicates) {
  InvariantMonitor monitor;
  monitor.on_delivery(1, 9, 100, TimePoint{});
  monitor.on_delivery(1, 9, 101, TimePoint{});
  monitor.on_delivery(2, 9, 100, TimePoint{});  // other receiver: fine
  monitor.on_delivery(1, 8, 100, TimePoint{});  // other device: fine
  EXPECT_TRUE(monitor.ok());
  monitor.on_delivery(1, 9, 100, TimePoint{seconds(3)});  // duplicate
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations()[0].invariant, "receiver.sequence_unique");
  EXPECT_EQ(monitor.violations()[0].node, 9u);
}

TEST(InvariantMonitor, SweepsRideTheSchedulerAndStopCleanly) {
  Scheduler scheduler;
  InvariantMonitor monitor;
  std::uint64_t checks = 0;
  monitor.add_check("test.tick", [&]() -> std::optional<std::string> {
    ++checks;
    return std::nullopt;
  });
  monitor.start(scheduler, msec(100));
  scheduler.schedule_at(TimePoint{seconds(10)}, [] {});
  scheduler.run_until(TimePoint{seconds(1)});
  EXPECT_EQ(monitor.stats().sweeps, 10u);
  EXPECT_EQ(checks, 10u);
  monitor.stop();
  scheduler.run_until(TimePoint{seconds(2)});
  EXPECT_EQ(checks, 10u);  // no sweeps after stop
}

TEST(InvariantMonitor, ViolationRecordListIsBounded) {
  InvariantMonitor monitor;
  for (std::uint32_t i = 0; i < 3 * InvariantMonitor::kMaxViolations; ++i) {
    monitor.report("test.flood", "x", TimePoint{});
  }
  EXPECT_EQ(monitor.violations().size(), InvariantMonitor::kMaxViolations);
  EXPECT_EQ(monitor.stats().violations, 3 * InvariantMonitor::kMaxViolations);
}

TEST(FrameBufferAccounting, LiveBufferCountTracksAllocations) {
  const std::uint64_t before = FrameBuffer::live_buffers();
  {
    FrameBuffer a{Bytes(8, 0x11)};
    EXPECT_EQ(FrameBuffer::live_buffers(), before + 1);
    FrameBuffer b = a;  // shares the allocation
    EXPECT_EQ(FrameBuffer::live_buffers(), before + 1);
    EXPECT_EQ(b.owners(), 2);
    FrameBuffer c{Bytes(8, 0x22)};
    EXPECT_EQ(FrameBuffer::live_buffers(), before + 2);
    FrameBuffer empty;  // no allocation
    EXPECT_EQ(FrameBuffer::live_buffers(), before + 2);
  }
  EXPECT_EQ(FrameBuffer::live_buffers(), before);
}

// A healthy fleet under a multi-fault campaign trips nothing.
TEST(InvariantMonitor, CleanFleetUnderChaosHasNoViolations) {
  auto scenario = ScenarioBuilder{}
                      .devices(4)
                      .gateways(1)
                      .duty_cycle(seconds(2))
                      .build();
  InvariantMonitor monitor;
  scenario->attach_invariants(monitor);
  monitor.start(scenario->scheduler(), msec(200));

  ChaosConfig config;
  config.horizon = seconds(30);
  config.n_devices = 4;
  schedule_campaign(generate_campaign(3, config), scenario->chaos_targets());

  scenario->run_until(TimePoint{seconds(30)});
  scenario->stop_all();
  scenario->run_for(seconds(2));
  monitor.run_checks(scenario->scheduler().now());
  monitor.stop();

  EXPECT_TRUE(monitor.ok()) << monitor.violations().front().invariant << ": "
                            << monitor.violations().front().detail;
  EXPECT_GT(monitor.stats().sweeps, 100u);
  EXPECT_GT(monitor.stats().deliveries_checked, 0u);
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

TEST(Shrinker, FindsMinimalSubsetForSyntheticDependency) {
  // 12 actions; the failure needs exactly actions #3 and #8 together.
  Campaign campaign;
  campaign.seed = 1;
  campaign.horizon_us = 1'000'000;
  for (int i = 0; i < 12; ++i) {
    FaultAction a;
    a.kind = FaultKind::kNoiseRise;
    a.start_us = i * 1000;
    a.duration_us = 500;
    a.magnitude = static_cast<double>(i);  // identity survives shrinking
    campaign.actions.push_back(a);
  }
  const auto has = [](const Campaign& c, double magnitude) {
    for (const FaultAction& a : c.actions) {
      if (a.magnitude == magnitude) return true;
    }
    return false;
  };
  std::size_t probes = 0;
  const ShrinkResult result = shrink_campaign(
      campaign,
      [&](const Campaign& c) {
        ++probes;
        return has(c, 3.0) && has(c, 8.0);
      });

  EXPECT_TRUE(result.reproduced);
  EXPECT_EQ(result.original_actions, 12u);
  ASSERT_EQ(result.minimal.actions.size(), 2u);
  EXPECT_EQ(result.minimal.actions[0].magnitude, 3.0);
  EXPECT_EQ(result.minimal.actions[1].magnitude, 8.0);
  EXPECT_EQ(result.runs, probes);
  EXPECT_LT(probes, 60u);  // ddmin, not brute force
}

TEST(Shrinker, NonReproducingInputReportedNotShrunk) {
  Campaign campaign;
  campaign.actions.push_back({});
  const ShrinkResult result =
      shrink_campaign(campaign, [](const Campaign&) { return false; });
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.runs, 1u);
  EXPECT_EQ(result.minimal, campaign);
}

TEST(Shrinker, BaselineFailureShrinksToEmptyCampaign) {
  Campaign campaign;
  for (int i = 0; i < 5; ++i) campaign.actions.push_back({});
  const ShrinkResult result =
      shrink_campaign(campaign, [](const Campaign&) { return true; });
  EXPECT_TRUE(result.reproduced);
  EXPECT_TRUE(result.minimal.actions.empty());
}

// ---------------------------------------------------------------------------
// End-to-end: intentionally-broken oracle -> shrink -> repro file ->
// deterministic replay (the ISSUE's acceptance path).
// ---------------------------------------------------------------------------

struct BrokenOracleRun {
  std::uint64_t violations = 0;
  std::string first_invariant;
  std::uint64_t first_at_us = 0;
};

/// Fleet with a deliberately broken oracle: "no device ever browns
/// out". Brown-out faults in a campaign then violate it on purpose.
BrokenOracleRun run_with_broken_oracle(const Campaign& campaign) {
  core::HarvestingConfig harvesting;
  harvesting.harvester.capacitance_f = 1e-3;
  harvesting.harvester.initial_charge_fraction = 0.5;
  harvesting.harvester.harvest_power = microwatts(250);
  auto scenario = ScenarioBuilder{}
                      .devices(2)
                      .gateways(1)
                      .duty_cycle(seconds(2))
                      .harvesting(harvesting)
                      .seed(campaign.seed)
                      .build();
  InvariantMonitor monitor;
  scenario->attach_invariants(monitor);
  for (auto& device : scenario->devices()) {
    const core::Sender* dev = device.get();
    monitor.add_check("test.never_browns_out",
                      [dev]() -> std::optional<std::string> {
                        if (dev->brown_outs() > 0) {
                          return "device browned out " +
                                 std::to_string(dev->brown_outs()) + " times";
                        }
                        return std::nullopt;
                      },
                      dev->node_id());
  }
  monitor.start(scenario->scheduler(), msec(100));
  schedule_campaign(campaign, scenario->chaos_targets());
  scenario->run_until(TimePoint{Duration{campaign.horizon_us}});
  scenario->stop_all();
  scenario->run_for(seconds(1));
  monitor.run_checks(scenario->scheduler().now());
  monitor.stop();

  BrokenOracleRun result;
  result.violations = monitor.stats().violations;
  if (!monitor.violations().empty()) {
    result.first_invariant = monitor.violations().front().invariant;
    result.first_at_us =
        static_cast<std::uint64_t>(monitor.violations().front().at.us());
  }
  return result;
}

TEST(ChaosEndToEnd, BrokenOracleShrinksToMinimalReproAndReplays) {
  // Generate until a campaign trips the broken oracle (brown-out kinds
  // are in the vocabulary, so this converges fast).
  ChaosConfig config;
  config.horizon = seconds(30);
  config.n_devices = 2;
  config.min_actions = 8;
  config.max_actions = 14;

  std::optional<Campaign> failing;
  BrokenOracleRun original;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    const Campaign candidate = generate_campaign(seed, config);
    const BrokenOracleRun run = run_with_broken_oracle(candidate);
    if (run.violations > 0) {
      failing = candidate;
      original = run;
      break;
    }
  }
  ASSERT_TRUE(failing.has_value()) << "no campaign tripped the broken oracle";
  EXPECT_EQ(original.first_invariant, "test.never_browns_out");

  // Shrink: the same oracle must re-fire.
  const ShrinkResult shrunk = shrink_campaign(*failing, [](const Campaign& c) {
    return run_with_broken_oracle(c).violations > 0;
  });
  ASSERT_TRUE(shrunk.reproduced);
  // Only a brown-out-capable action can trip the oracle, and one is
  // enough: the minimal repro is a single action.
  ASSERT_EQ(shrunk.minimal.actions.size(), 1u);
  const FaultKind kind = shrunk.minimal.actions[0].kind;
  EXPECT_TRUE(kind == FaultKind::kBrownOut || kind == FaultKind::kBrownOutAll ||
              kind == FaultKind::kRfDrought || kind == FaultKind::kHarvestFade)
      << "minimal action kind: " << kind_name(kind);

  // Write the repro, reload it, and replay: byte-identical campaign,
  // same violation, same simulated timestamps, run after run.
  const std::string path =
      ::testing::TempDir() + "/chaos_repro_test.json";
  ReproFile repro;
  repro.campaign = shrunk.minimal;
  repro.scenario = "test-fleet";
  repro.scenario_seed = failing->seed;
  repro.invariant = original.first_invariant;
  ASSERT_TRUE(write_repro_file(path, repro));

  const auto loaded = load_repro_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->campaign, shrunk.minimal);
  EXPECT_EQ(loaded->scenario, "test-fleet");
  EXPECT_EQ(loaded->invariant, "test.never_browns_out");

  const BrokenOracleRun replay1 = run_with_broken_oracle(loaded->campaign);
  const BrokenOracleRun replay2 = run_with_broken_oracle(loaded->campaign);
  EXPECT_GT(replay1.violations, 0u);
  EXPECT_EQ(replay1.violations, replay2.violations);
  EXPECT_EQ(replay1.first_invariant, replay2.first_invariant);
  EXPECT_EQ(replay1.first_at_us, replay2.first_at_us);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Clock-drift step x receiver scan windows (satellite)
// ---------------------------------------------------------------------------

TEST(ClockDriftScanWindows, DownlinksSurviveDriftStep) {
  // A sender announcing RX windows, a controller with queued downlinks,
  // and a mid-run one-shot clock-drift step (temperature excursion). The
  // controller aims into windows *announced in beacons*, so downlink
  // delivery must keep working however far the device clock skews.
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  FaultInjector fi{scheduler, medium, Rng{2}};

  core::SenderConfig cfg;
  cfg.device_id = 9;
  cfg.period = seconds(2);
  cfg.rx_window = core::RxWindow{msec(2), msec(20)};
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{3}};
  core::Controller controller{scheduler, medium, {2, 0}, core::ControllerConfig{},
                              Rng{4}};

  std::vector<std::uint64_t> downlink_times_us;
  sender.set_downlink_callback([&](const core::Message&) {
    downlink_times_us.push_back(
        static_cast<std::uint64_t>(scheduler.now().us()));
  });
  for (int i = 0; i < 8; ++i) controller.queue_downlink(9, Bytes{std::uint8_t(i)});

  // +20% clock skew at t=7s, between cycles 4 and 5.
  fi.at(TimePoint{seconds(7)}, [&] { sender.apply_clock_drift_ppm(200000.0); });

  sender.start_duty_cycle([] { return Bytes{1}; });
  scheduler.run_until(TimePoint{seconds(30)});
  sender.stop_duty_cycle();
  scheduler.run_until(TimePoint{seconds(32)});

  // All eight downlinks landed, both before and after the step.
  EXPECT_EQ(downlink_times_us.size(), 8u);
  EXPECT_EQ(controller.stats().downlinks_sent, 8u);
  std::size_t after_step = 0;
  for (const std::uint64_t t : downlink_times_us) {
    if (t > 7'000'000) ++after_step;
  }
  EXPECT_GE(after_step, 3u) << "no downlinks delivered after the drift step";
  // And the drifted duty cycle actually stretched: post-step windows are
  // spaced ~2.4 s apart, not 2 s.
  ASSERT_GE(downlink_times_us.size(), 8u);
  const std::uint64_t last_gap =
      downlink_times_us[7] - downlink_times_us[6];
  EXPECT_GT(last_gap, 2'200'000u);
}

TEST(ClockDriftScanWindows, CampaignDriftStepsArmThroughChaosTargets) {
  auto scenario = ScenarioBuilder{}
                      .devices(2)
                      .gateways(1)
                      .duty_cycle(seconds(2))
                      .build();
  Campaign campaign;
  campaign.seed = 5;
  campaign.horizon_us = seconds(20).count();
  FaultAction drift;
  drift.kind = FaultKind::kClockDriftStep;
  drift.start_us = seconds(5).count();
  drift.magnitude = 150000.0;
  drift.target = 0;
  campaign.actions.push_back(drift);

  ASSERT_EQ(schedule_campaign(campaign, scenario->chaos_targets()), 1u);
  scenario->run_until(TimePoint{seconds(20)});
  EXPECT_DOUBLE_EQ(scenario->devices()[0]->config().clock_ppm_error, 150000.0);
  EXPECT_DOUBLE_EQ(scenario->devices()[1]->config().clock_ppm_error, 0.0);
  scenario->stop_all();
  scenario->run_for(seconds(1));
  EXPECT_GT(scenario->messages(), 0u);  // fleet kept reporting through it
}

}  // namespace
}  // namespace wile::sim
