// Unit-level tests for the access point: beaconing, responder state
// machines, the WPA2 authenticator's gatekeeping, the DHCP server, and
// power-save buffering — exercised with hand-built frames rather than a
// full Station, so each behaviour is pinned down in isolation.
#include <gtest/gtest.h>

#include "ap/access_point.hpp"
#include "net/llc.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"

namespace wile::ap {
namespace {

/// A scripted peer: collects every frame and can transmit raw MPDUs.
class FakeSta : public sim::MediumClient {
 public:
  FakeSta(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position pos,
          MacAddress mac)
      : scheduler_(scheduler), medium_(medium), mac_(mac) {
    node_id_ = medium_.attach(this, pos);
  }

  void transmit(Bytes mpdu, phy::WifiRate rate = phy::WifiRate::G6) {
    sim::TxRequest req;
    req.mpdu = std::move(mpdu);
    req.airtime = phy::frame_airtime(req.mpdu.size(), rate);
    req.rate = rate;
    medium_.transmit(node_id_, std::move(req));
  }

  void on_frame(const sim::RxFrame& frame) override {
    if (dot11::is_control_frame(frame.mpdu)) {
      if (auto ack = dot11::parse_ack(frame.mpdu); ack && ack->receiver == mac_) {
        ++acks;
      }
      return;
    }
    auto parsed = dot11::parse_mpdu(frame.mpdu);
    if (!parsed || !parsed->fcs_ok) return;
    frames.push_back(Bytes(frame.mpdu.begin(), frame.mpdu.end()));
    // ACK unicast frames addressed to us so the AP's CSMA can progress.
    if (parsed->header.addr1 == mac_) {
      scheduler_.schedule_in(phy::MacTiming::kSifs, [this] {
        if (!medium_.transmitting(node_id_)) transmit(dot11::build_ack(last_ta()), phy::kControlResponseRate);
      });
      last_ta_ = parsed->header.addr2;
    }
  }
  [[nodiscard]] bool rx_enabled() const override { return !medium_.transmitting(node_id_); }
  [[nodiscard]] MacAddress last_ta() const { return last_ta_; }

  /// Frames of a given management subtype addressed to us (or broadcast).
  std::vector<dot11::ParsedMpdu> mgmt(dot11::MgmtSubtype subtype) {
    std::vector<dot11::ParsedMpdu> out;
    for (const auto& mpdu : frames) {
      auto parsed = dot11::parse_mpdu(mpdu);
      if (parsed && parsed->header.fc.is_mgmt(subtype)) out.push_back(*parsed);
    }
    return out;
  }

  sim::Scheduler& scheduler_;
  sim::Medium& medium_;
  MacAddress mac_;
  sim::NodeId node_id_{};
  std::vector<Bytes> frames;
  int acks = 0;

 private:
  MacAddress last_ta_;
};

class ApTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ap_ = std::make_unique<AccessPoint>(scheduler_, medium_, sim::Position{0, 0}, cfg_,
                                        Rng{10});
    sta_ = std::make_unique<FakeSta>(scheduler_, medium_, sim::Position{2, 0},
                                     MacAddress::from_seed(0xFA));
  }

  void run_for(Duration d) { scheduler_.run_until(scheduler_.now() + d); }

  sim::Scheduler scheduler_;
  sim::Medium medium_{scheduler_, phy::Channel{}, Rng{1}};
  AccessPointConfig cfg_;
  std::unique_ptr<AccessPoint> ap_;
  std::unique_ptr<FakeSta> sta_;
};

TEST_F(ApTest, BeaconsAtConfiguredInterval) {
  ap_->start();
  run_for(seconds(2));
  const auto beacons = sta_->mgmt(dot11::MgmtSubtype::Beacon);
  // 2 s / 102.4 ms ≈ 19 beacons.
  EXPECT_GE(beacons.size(), 18u);
  EXPECT_LE(beacons.size(), 20u);

  const auto body = dot11::Beacon::decode(beacons[0].body);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(dot11::parse_ssid_ie(body->ies), cfg_.ssid);
  EXPECT_TRUE(dot11::parse_tim_ie(body->ies).has_value());
  EXPECT_TRUE(dot11::has_rsn_psk(body->ies));  // WPA2 network
  EXPECT_TRUE(body->capability & dot11::Capability::kPrivacy);
  EXPECT_EQ(beacons[0].header.addr3, cfg_.bssid);
}

TEST_F(ApTest, RespondsToWildcardAndMatchingProbes) {
  dot11::ProbeRequest wildcard;
  wildcard.ies.add(dot11::make_ssid_ie(""));
  sta_->transmit(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::ProbeRequest,
                                        MacAddress::broadcast(), sta_->mac_,
                                        MacAddress::broadcast(), 1, wildcard.encode()));
  run_for(msec(50));
  EXPECT_EQ(sta_->mgmt(dot11::MgmtSubtype::ProbeResponse).size(), 1u);

  dot11::ProbeRequest named;
  named.ies.add(dot11::make_ssid_ie(cfg_.ssid));
  sta_->transmit(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::ProbeRequest,
                                        MacAddress::broadcast(), sta_->mac_,
                                        MacAddress::broadcast(), 2, named.encode()));
  run_for(msec(50));
  EXPECT_EQ(sta_->mgmt(dot11::MgmtSubtype::ProbeResponse).size(), 2u);
}

TEST_F(ApTest, IgnoresProbesForOtherSsids) {
  dot11::ProbeRequest other;
  other.ies.add(dot11::make_ssid_ie("SomeOtherNet"));
  sta_->transmit(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::ProbeRequest,
                                        MacAddress::broadcast(), sta_->mac_,
                                        MacAddress::broadcast(), 1, other.encode()));
  run_for(msec(50));
  EXPECT_TRUE(sta_->mgmt(dot11::MgmtSubtype::ProbeResponse).empty());
}

TEST_F(ApTest, OpenAuthAcceptedSharedKeyRejected) {
  dot11::Authentication open;
  open.algorithm = dot11::Authentication::Algorithm::OpenSystem;
  sta_->transmit(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::Authentication, cfg_.bssid,
                                        sta_->mac_, cfg_.bssid, 1, open.encode()));
  run_for(msec(50));
  auto responses = sta_->mgmt(dot11::MgmtSubtype::Authentication);
  ASSERT_EQ(responses.size(), 1u);
  auto body = dot11::Authentication::decode(responses[0].body);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->status, dot11::StatusCode::Success);
  EXPECT_EQ(body->transaction_seq, 2);

  dot11::Authentication shared;
  shared.algorithm = dot11::Authentication::Algorithm::SharedKey;
  sta_->frames.clear();
  sta_->transmit(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::Authentication, cfg_.bssid,
                                        sta_->mac_, cfg_.bssid, 2, shared.encode()));
  run_for(msec(50));
  responses = sta_->mgmt(dot11::MgmtSubtype::Authentication);
  ASSERT_EQ(responses.size(), 1u);
  body = dot11::Authentication::decode(responses[0].body);
  EXPECT_EQ(body->status, dot11::StatusCode::AuthAlgoUnsupported);
}

TEST_F(ApTest, AssociationRequiresAuthenticationFirst) {
  dot11::AssocRequest req;
  req.ies.add(dot11::make_ssid_ie(cfg_.ssid));
  sta_->transmit(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::AssocRequest, cfg_.bssid,
                                        sta_->mac_, cfg_.bssid, 1, req.encode()));
  run_for(msec(50));
  EXPECT_TRUE(sta_->mgmt(dot11::MgmtSubtype::AssocResponse).empty());
}

TEST_F(ApTest, AssociationAfterAuthGetsAidAndM1) {
  dot11::Authentication auth;
  sta_->transmit(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::Authentication, cfg_.bssid,
                                        sta_->mac_, cfg_.bssid, 1, auth.encode()));
  run_for(msec(50));

  dot11::AssocRequest req;
  req.ies.add(dot11::make_ssid_ie(cfg_.ssid));
  sta_->transmit(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::AssocRequest, cfg_.bssid,
                                        sta_->mac_, cfg_.bssid, 2, req.encode()));
  run_for(msec(200));

  const auto responses = sta_->mgmt(dot11::MgmtSubtype::AssocResponse);
  ASSERT_EQ(responses.size(), 1u);
  const auto body = dot11::AssocResponse::decode(responses[0].body);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->status, dot11::StatusCode::Success);
  EXPECT_EQ(body->aid, 1);

  // A protected network must kick off the handshake: an EAPOL M1 data
  // frame should have arrived.
  bool got_m1 = false;
  for (const auto& mpdu : sta_->frames) {
    auto parsed = dot11::parse_mpdu(mpdu);
    if (!parsed || parsed->header.fc.type != dot11::FrameType::Data) continue;
    auto llc = net::LlcSnap::decode(parsed->body);
    if (!llc || llc->ethertype != net::EtherType::Eapol) continue;
    auto frame = dot11::EapolKeyFrame::decode(llc->payload);
    if (frame && dot11::handshake_message_number(*frame) == 1) got_m1 = true;
  }
  EXPECT_TRUE(got_m1);
}

TEST_F(ApTest, DeauthDropsClientState) {
  dot11::Authentication auth;
  sta_->transmit(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::Authentication, cfg_.bssid,
                                        sta_->mac_, cfg_.bssid, 1, auth.encode()));
  run_for(msec(50));

  dot11::Deauthentication deauth;
  sta_->transmit(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::Deauthentication, cfg_.bssid,
                                        sta_->mac_, cfg_.bssid, 2, deauth.encode()));
  run_for(msec(50));

  // Association must now be refused again (client was erased).
  dot11::AssocRequest req;
  sta_->transmit(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::AssocRequest, cfg_.bssid,
                                        sta_->mac_, cfg_.bssid, 3, req.encode()));
  run_for(msec(100));
  EXPECT_TRUE(sta_->mgmt(dot11::MgmtSubtype::AssocResponse).empty());
}

TEST_F(ApTest, UnicastFramesGetAcked) {
  dot11::Authentication auth;
  sta_->transmit(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::Authentication, cfg_.bssid,
                                        sta_->mac_, cfg_.bssid, 1, auth.encode()));
  run_for(msec(50));
  EXPECT_GE(sta_->acks, 1);
}

TEST_F(ApTest, IgnoresFramesForOtherBssids) {
  dot11::Authentication auth;
  sta_->transmit(dot11::build_mgmt_mpdu(dot11::MgmtSubtype::Authentication,
                                        MacAddress::from_seed(0xEE), sta_->mac_,
                                        MacAddress::from_seed(0xEE), 1, auth.encode()));
  run_for(msec(50));
  EXPECT_TRUE(sta_->mgmt(dot11::MgmtSubtype::Authentication).empty());
  EXPECT_EQ(sta_->acks, 0);
}

TEST_F(ApTest, CorruptFcsFramesIgnored) {
  dot11::Authentication auth;
  Bytes mpdu = dot11::build_mgmt_mpdu(dot11::MgmtSubtype::Authentication, cfg_.bssid,
                                      sta_->mac_, cfg_.bssid, 1, auth.encode());
  mpdu[5] ^= 0xff;  // break the FCS
  sta_->transmit(std::move(mpdu));
  run_for(msec(50));
  EXPECT_TRUE(sta_->mgmt(dot11::MgmtSubtype::Authentication).empty());
}

TEST_F(ApTest, OpenNetworkBeaconsWithoutRsn) {
  AccessPointConfig open_cfg;
  open_cfg.passphrase.clear();
  open_cfg.bssid = MacAddress::from_seed(0xBB);
  AccessPoint open_ap{scheduler_, medium_, {0, 2}, open_cfg, Rng{11}};
  open_ap.start();
  run_for(msec(300));

  bool found = false;
  for (const auto& mpdu : sta_->frames) {
    auto parsed = dot11::parse_mpdu(mpdu);
    if (!parsed || !parsed->header.fc.is_mgmt(dot11::MgmtSubtype::Beacon)) continue;
    if (parsed->header.addr3 != open_cfg.bssid) continue;
    auto body = dot11::Beacon::decode(parsed->body);
    ASSERT_TRUE(body.has_value());
    EXPECT_FALSE(dot11::has_rsn_psk(body->ies));
    EXPECT_FALSE(body->capability & dot11::Capability::kPrivacy);
    found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace wile::ap
