// Unit-level behaviour tests for the Wi-LE nodes (Sender / Receiver /
// Controller) beyond the end-to-end integration suite: lifecycle,
// scheduling, configuration knobs, and edge cases.
#include <gtest/gtest.h>

#include "wile/controller.hpp"
#include "wile/receiver.hpp"
#include "wile/sender.hpp"

namespace wile::core {
namespace {

class WileNodes : public ::testing::Test {
 protected:
  sim::Scheduler scheduler_;
  sim::Medium medium_{scheduler_, phy::Channel{}, Rng{1}};
};

// ---------------------------------------------------------------------------
// Sender lifecycle
// ---------------------------------------------------------------------------

TEST_F(WileNodes, StopDutyCycleStopsPromptly) {
  SenderConfig cfg;
  cfg.period = seconds(1);
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  Receiver monitor{scheduler_, medium_, {2, 0}};

  sender.start_duty_cycle([] { return Bytes{1}; });
  scheduler_.run_until(TimePoint{seconds(3) + msec(500)});
  sender.stop_duty_cycle();
  const auto at_stop = monitor.stats().messages;
  scheduler_.run_until(TimePoint{seconds(10)});
  EXPECT_EQ(monitor.stats().messages, at_stop);
  EXPECT_EQ(sender.cycles_run(), at_stop);
}

TEST_F(WileNodes, SendNowWhileBusyThrows) {
  SenderConfig cfg;
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  sender.send_now(Bytes{1}, {});
  EXPECT_THROW(sender.send_now(Bytes{2}, {}), std::logic_error);
  scheduler_.run_until_idle();
  // After the cycle completes, sending works again.
  EXPECT_NO_THROW(sender.send_now(Bytes{3}, {}));
  scheduler_.run_until_idle();
}

TEST_F(WileNodes, NullProviderRejected) {
  SenderConfig cfg;
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  EXPECT_THROW(sender.start_duty_cycle(nullptr), std::invalid_argument);
}

TEST_F(WileNodes, SequenceNumbersIncrementPerCycle) {
  SenderConfig cfg;
  cfg.period = seconds(1);
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  Receiver monitor{scheduler_, medium_, {2, 0}};
  std::vector<std::uint32_t> seqs;
  monitor.set_message_callback(
      [&](const Message& m, const RxMeta&) { seqs.push_back(m.sequence); });

  sender.start_duty_cycle([] { return Bytes{1}; });
  scheduler_.run_until(TimePoint{seconds(5) + msec(500)});
  sender.stop_duty_cycle();
  ASSERT_EQ(seqs.size(), 5u);
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);
}

TEST_F(WileNodes, ClockPpmErrorSkewsThePeriod) {
  // +40 ppm on a 1 s period = +40 us per cycle; over 100 cycles the
  // fast and slow devices drift ~8 ms apart — measurable, tiny, and
  // exactly what §6 relies on.
  auto last_arrival = [&](double ppm) {
    sim::Scheduler scheduler;
    sim::Medium medium{scheduler, phy::Channel{}, Rng{3}};
    SenderConfig cfg;
    cfg.period = seconds(1);
    cfg.clock_ppm_error = ppm;
    Sender sender{scheduler, medium, {0, 0}, cfg, Rng{4}};
    Receiver monitor{scheduler, medium, {2, 0}};
    TimePoint last{};
    monitor.set_message_callback(
        [&](const Message&, const RxMeta& meta) { last = meta.received_at; });
    sender.start_duty_cycle([] { return Bytes{1}; });
    scheduler.run_until(TimePoint{seconds(101)});
    sender.stop_duty_cycle();
    return last;
  };
  const TimePoint fast = last_arrival(-40.0);
  const TimePoint slow = last_arrival(+40.0);
  const double drift_us = static_cast<double>((slow - fast).count());
  EXPECT_NEAR(drift_us, 8000.0, 200.0);  // 100 cycles x 80 us differential
}

TEST_F(WileNodes, PowerDrawAccessorsMatchProfile) {
  SenderConfig cfg;
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  EXPECT_NEAR(sender.tx_power_draw().value, 0.6, 0.01);
  EXPECT_NEAR(in_microwatts(sender.idle_power_draw()), 8.25, 0.01);
}

TEST_F(WileNodes, DerivedMacIsStablePerDevice) {
  SenderConfig a;
  a.device_id = 5;
  SenderConfig b;
  b.device_id = 5;
  SenderConfig c;
  c.device_id = 6;
  Sender sa{scheduler_, medium_, {0, 0}, a, Rng{1}};
  Sender sb{scheduler_, medium_, {0, 1}, b, Rng{2}};
  Sender sc{scheduler_, medium_, {0, 2}, c, Rng{3}};
  EXPECT_EQ(sa.config().mac, sb.config().mac);
  EXPECT_NE(sa.config().mac, sc.config().mac);
  EXPECT_TRUE(sa.config().mac.is_local());
}

// ---------------------------------------------------------------------------
// Receiver details
// ---------------------------------------------------------------------------

TEST_F(WileNodes, RssiFallsWithDistance) {
  SenderConfig cfg;
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  Receiver near{scheduler_, medium_, {1, 0}};
  Receiver far{scheduler_, medium_, {6, 0}};

  sender.send_now(Bytes{1}, {});
  scheduler_.run_until_idle();

  ASSERT_EQ(near.devices().size(), 1u);
  ASSERT_EQ(far.devices().size(), 1u);
  EXPECT_GT(near.devices().begin()->second.last_rssi_dbm,
            far.devices().begin()->second.last_rssi_dbm);
}

TEST_F(WileNodes, NonBeaconFramesIgnored) {
  Receiver monitor{scheduler_, medium_, {1, 0}};
  // Inject a raw data frame: the receiver must not count it as a beacon.
  struct Injector : sim::MediumClient {
    void on_frame(const sim::RxFrame&) override {}
    [[nodiscard]] bool rx_enabled() const override { return false; }
  } injector;
  const auto id = medium_.attach(&injector, {0, 0});
  sim::TxRequest req;
  req.mpdu = dot11::build_data_to_ds(MacAddress::from_seed(1), MacAddress::from_seed(2),
                                     MacAddress::from_seed(1), 1, Bytes{1, 2}, false);
  req.airtime = usec(100);
  req.rate = phy::WifiRate::G6;
  medium_.transmit(id, std::move(req));
  scheduler_.run_until_idle();

  EXPECT_EQ(monitor.stats().beacons_seen, 0u);
  EXPECT_EQ(monitor.stats().messages, 0u);
}

TEST_F(WileNodes, ForeignVendorBeaconCountsAsBeaconOnly) {
  Receiver monitor{scheduler_, medium_, {1, 0}};
  struct Injector : sim::MediumClient {
    void on_frame(const sim::RxFrame&) override {}
    [[nodiscard]] bool rx_enabled() const override { return false; }
  } injector;
  const auto id = medium_.attach(&injector, {0, 0});

  dot11::Beacon beacon;
  beacon.ies.add(dot11::make_ssid_ie("SomeNet"));
  beacon.ies.add(*dot11::make_vendor_ie({0x00, 0x50, 0xf2}, 1, Bytes{1, 2, 3}));
  sim::TxRequest req;
  req.mpdu = dot11::build_mgmt_mpdu(dot11::MgmtSubtype::Beacon, MacAddress::broadcast(),
                                    MacAddress::from_seed(9), MacAddress::from_seed(9), 1,
                                    beacon.encode());
  req.airtime = usec(200);
  req.rate = phy::WifiRate::G6;
  medium_.transmit(id, std::move(req));
  scheduler_.run_until_idle();

  EXPECT_EQ(monitor.stats().beacons_seen, 1u);
  EXPECT_EQ(monitor.stats().wile_beacons, 0u);
  EXPECT_EQ(monitor.stats().messages, 0u);
}

// ---------------------------------------------------------------------------
// Controller details
// ---------------------------------------------------------------------------

TEST_F(WileNodes, ControllerIdleWithoutQueuedDownlinks) {
  SenderConfig cfg;
  cfg.device_id = 9;
  cfg.rx_window = RxWindow{msec(2), msec(20)};
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  ControllerConfig ctl_cfg;
  Controller controller{scheduler_, medium_, {2, 0}, ctl_cfg, Rng{3}};

  std::optional<SendReport> report;
  sender.send_now(Bytes{1}, [&](const SendReport& r) { report = r; });
  scheduler_.run_until_idle();

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(controller.stats().windows_seen, 1u);
  EXPECT_EQ(controller.stats().downlinks_sent, 0u);
  EXPECT_EQ(report->downlinks_received, 0u);
}

TEST_F(WileNodes, ControllerDrainsQueueAcrossWindows) {
  SenderConfig cfg;
  cfg.device_id = 9;
  cfg.period = seconds(2);
  cfg.rx_window = RxWindow{msec(2), msec(20)};
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  ControllerConfig ctl_cfg;
  Controller controller{scheduler_, medium_, {2, 0}, ctl_cfg, Rng{3}};

  controller.queue_downlink(9, Bytes{'a'});
  controller.queue_downlink(9, Bytes{'b'});
  controller.queue_downlink(9, Bytes{'c'});

  std::vector<Bytes> got;
  sender.set_downlink_callback([&](const Message& m) { got.push_back(m.data); });
  sender.start_duty_cycle([] { return Bytes{1}; });
  scheduler_.run_until(TimePoint{seconds(10)});
  sender.stop_duty_cycle();

  // One downlink rides each window, in order.
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (Bytes{'a'}));
  EXPECT_EQ(got[1], (Bytes{'b'}));
  EXPECT_EQ(got[2], (Bytes{'c'}));
  EXPECT_EQ(controller.stats().downlinks_sent, 3u);
}

TEST_F(WileNodes, DownlinkForOtherDeviceIgnored) {
  SenderConfig cfg;
  cfg.device_id = 9;
  cfg.rx_window = RxWindow{msec(2), msec(20)};
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  ControllerConfig ctl_cfg;
  Controller controller{scheduler_, medium_, {2, 0}, ctl_cfg, Rng{3}};
  controller.queue_downlink(10, Bytes{'x'});  // not our device

  std::optional<SendReport> report;
  sender.send_now(Bytes{1}, [&](const SendReport& r) { report = r; });
  scheduler_.run_until_idle();

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->downlinks_received, 0u);
  EXPECT_EQ(controller.stats().downlinks_sent, 0u);  // no window from device 10
}

}  // namespace
}  // namespace wile::core
