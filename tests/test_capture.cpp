// Tests for the pcap writer and the monitor-mode capture tap.
#include <gtest/gtest.h>

#include <cstdio>

#include "dot11/frame.hpp"
#include "sim/tap.hpp"
#include "util/pcap.hpp"
#include "wile/sender.hpp"

namespace wile {
namespace {

TEST(Pcap, GlobalHeaderLayout) {
  PcapBuffer buf{PcapLinkType::Ieee80211};
  const Bytes& bytes = buf.bytes();
  ASSERT_EQ(bytes.size(), 24u);
  ByteReader r{bytes};
  EXPECT_EQ(r.u32le(), 0xa1b2c3d4u);  // magic
  EXPECT_EQ(r.u16le(), 2u);           // version major
  EXPECT_EQ(r.u16le(), 4u);           // version minor
  r.skip(8);                          // thiszone + sigfigs
  EXPECT_EQ(r.u32le(), 65535u);       // snaplen
  EXPECT_EQ(r.u32le(), 105u);         // LINKTYPE_IEEE802_11
}

TEST(Pcap, RecordHeaderCarriesTimestampAndLengths) {
  PcapBuffer buf{PcapLinkType::Ieee80211};
  const Bytes frame = {1, 2, 3, 4, 5};
  buf.write(TimePoint{seconds(3) + usec(250)}, frame);
  ASSERT_EQ(buf.frames_written(), 1u);

  ByteReader r{buf.bytes()};
  r.skip(24);
  EXPECT_EQ(r.u32le(), 3u);    // seconds
  EXPECT_EQ(r.u32le(), 250u);  // microseconds
  EXPECT_EQ(r.u32le(), 5u);    // captured length
  EXPECT_EQ(r.u32le(), 5u);    // original length
  EXPECT_EQ(r.bytes_copy(5), frame);
  EXPECT_TRUE(r.empty());
}

TEST(Pcap, MultipleRecordsAppend) {
  PcapBuffer buf{PcapLinkType::BluetoothLeLl};
  buf.write(TimePoint{usec(1)}, Bytes{1});
  buf.write(TimePoint{usec(2)}, Bytes{2, 3});
  EXPECT_EQ(buf.frames_written(), 2u);
  EXPECT_EQ(buf.bytes().size(), 24u + (16 + 1) + (16 + 2));
}

TEST(Pcap, FileWriterProducesIdenticalBytes) {
  const std::string path = "/tmp/wile_test_capture.pcap";
  {
    PcapWriter file{path, PcapLinkType::Ieee80211};
    file.write(TimePoint{usec(42)}, Bytes{0xaa, 0xbb});
    file.flush();
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  Bytes contents(1024);
  const std::size_t n = std::fread(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  contents.resize(n);
  std::remove(path.c_str());

  PcapBuffer buf{PcapLinkType::Ieee80211};
  buf.write(TimePoint{usec(42)}, Bytes{0xaa, 0xbb});
  EXPECT_EQ(contents, buf.bytes());
}

TEST(CaptureTap, RecordsEveryAudibleFrame) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  PcapBuffer pcap{PcapLinkType::Ieee80211};
  sim::CaptureTap tap{scheduler, medium, {1, 0}, pcap};

  core::SenderConfig cfg;
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
  sender.send_now(Bytes{1, 2, 3}, {});
  scheduler.run_until_idle();

  EXPECT_EQ(tap.frames_captured(), 1u);
  EXPECT_EQ(pcap.frames_written(), 1u);

  // The captured bytes must be a valid beacon MPDU with intact FCS.
  ByteReader r{pcap.bytes()};
  r.skip(24 + 16);
  const Bytes mpdu = r.bytes_copy(r.remaining());
  const auto parsed = dot11::parse_mpdu(mpdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_TRUE(parsed->header.fc.is_mgmt(dot11::MgmtSubtype::Beacon));
}

TEST(CaptureTap, CorruptFramesOptIn) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  PcapBuffer clean_pcap{PcapLinkType::Ieee80211};
  PcapBuffer all_pcap{PcapLinkType::Ieee80211};
  sim::CaptureTap clean_tap{scheduler, medium, {0.5, 1}, clean_pcap, false};
  sim::CaptureTap all_tap{scheduler, medium, {0.5, 1.1}, all_pcap, true};

  // Two raw injectors colliding.
  core::SenderConfig cfg;
  cfg.use_csma = false;
  core::Sender a{scheduler, medium, {0, 0}, cfg, Rng{2}};
  cfg.device_id = 2;
  core::Sender b{scheduler, medium, {1, 0}, cfg, Rng{3}};
  a.send_now(Bytes{1}, {});
  b.send_now(Bytes{2}, {});
  scheduler.run_until_idle();

  EXPECT_EQ(clean_tap.frames_captured(), 0u);
  EXPECT_EQ(clean_tap.corrupt_seen(), 2u);
  EXPECT_EQ(all_tap.frames_captured(), 2u);
}

}  // namespace
}  // namespace wile
