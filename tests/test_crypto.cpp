// Unit tests for src/crypto against published known-answer vectors:
// CRC-32 (IEEE), SHA-1 (FIPS 180), HMAC-SHA1 (RFC 2202), PBKDF2
// (RFC 6070), WPA2 PSK (IEEE 802.11i Annex H), AES-128 (FIPS 197 /
// SP 800-38A), AES-CMAC (RFC 4493), AES Key Wrap (RFC 3394), plus
// property tests on the AEAD and CRC-24.
#include <gtest/gtest.h>

#include "crypto/aead.hpp"
#include "crypto/aes128.hpp"
#include "crypto/aes_modes.hpp"
#include "crypto/crc.hpp"
#include "crypto/hmac_sha1.hpp"
#include "crypto/pbkdf2.hpp"
#include "crypto/prf80211.hpp"
#include "crypto/sha1.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace wile::crypto {
namespace {

Bytes str_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

template <std::size_t N>
std::string digest_hex(const std::array<std::uint8_t, N>& digest) {
  return to_hex(BytesView{digest.data(), digest.size()});
}

// ---------------------------------------------------------------------------
// CRC
// ---------------------------------------------------------------------------

TEST(Crc32, StandardCheckValue) {
  // The canonical CRC-32 check: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32(str_bytes("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) { EXPECT_EQ(crc32({}), 0x00000000u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  const Bytes all = str_bytes("the quick brown fox jumps over the lazy dog");
  Crc32 inc;
  inc.update(BytesView{all.data(), 10});
  inc.update(BytesView{all.data() + 10, all.size() - 10});
  EXPECT_EQ(inc.value(), crc32(all));
}

TEST(Crc32, DetectsSingleBitFlips) {
  Rng rng{1};
  Bytes data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  const std::uint32_t good = crc32(data);
  for (int i = 0; i < 20; ++i) {
    Bytes bad = data;
    bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    if (bad == data) continue;
    EXPECT_NE(crc32(bad), good);
  }
}

TEST(Crc24Ble, DeterministicAndInitDependent) {
  const Bytes pdu = str_bytes("BLE pdu body");
  EXPECT_EQ(crc24_ble(pdu), crc24_ble(pdu));
  EXPECT_NE(crc24_ble(pdu, 0x555555), crc24_ble(pdu, 0x123456));
  EXPECT_LE(crc24_ble(pdu), 0xffffffu);
}

TEST(Crc24Ble, DetectsCorruption) {
  Bytes pdu = str_bytes("advertising payload");
  const std::uint32_t good = crc24_ble(pdu);
  pdu[3] ^= 0x10;
  EXPECT_NE(crc24_ble(pdu), good);
}

// ---------------------------------------------------------------------------
// SHA-1 (FIPS 180-4 examples)
// ---------------------------------------------------------------------------

TEST(Sha1, EmptyString) {
  EXPECT_EQ(digest_hex(Sha1::hash({})), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(digest_hex(Sha1::hash(str_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha1::hash(
                str_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 s;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) s.update(chunk);
  EXPECT_EQ(digest_hex(s.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, StreamingSplitAgnostic) {
  const Bytes msg = str_bytes("a message that will be split at several odd boundaries!!");
  const auto expect = Sha1::hash(msg);
  for (std::size_t split = 1; split < msg.size(); split += 7) {
    Sha1 s;
    s.update(BytesView{msg.data(), split});
    s.update(BytesView{msg.data() + split, msg.size() - split});
    EXPECT_EQ(s.finish(), expect) << "split at " << split;
  }
}

TEST(Sha1, BoundaryLengthsAroundBlockSize) {
  // 55/56/63/64/65 bytes exercise every padding branch.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u}) {
    const Bytes msg(len, 'x');
    Sha1 a;
    a.update(msg);
    const auto one = a.finish();
    Sha1 b;
    for (std::size_t i = 0; i < len; ++i) b.update(BytesView{&msg[i], 1});
    EXPECT_EQ(b.finish(), one) << "len " << len;
  }
}

// ---------------------------------------------------------------------------
// HMAC-SHA1 (RFC 2202)
// ---------------------------------------------------------------------------

TEST(HmacSha1, Rfc2202Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(digest_hex(hmac_sha1(key, str_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
  EXPECT_EQ(digest_hex(hmac_sha1(str_bytes("Jefe"),
                                 str_bytes("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1, Rfc2202Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha1(key, data)), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1, Rfc2202LongKey) {
  // Case 6: 80-byte key forces the hash-the-key path.
  const Bytes key(80, 0xaa);
  EXPECT_EQ(digest_hex(hmac_sha1(
                key, str_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha1, StreamingMatchesOneShot) {
  const Bytes key = str_bytes("streaming-key");
  HmacSha1 mac(key);
  mac.update(str_bytes("part one|"));
  mac.update(str_bytes("part two"));
  EXPECT_EQ(mac.finish(), hmac_sha1(key, str_bytes("part one|part two")));
}

// ---------------------------------------------------------------------------
// PBKDF2 (RFC 6070) and WPA2 PSK (IEEE 802.11i Annex H)
// ---------------------------------------------------------------------------

TEST(Pbkdf2, Rfc6070Iter1) {
  const Bytes dk = pbkdf2_hmac_sha1(str_bytes("password"), str_bytes("salt"), 1, 20);
  EXPECT_EQ(to_hex(dk), "0c60c80f961f0e71f3a9b524af6012062fe037a6");
}

TEST(Pbkdf2, Rfc6070Iter2) {
  const Bytes dk = pbkdf2_hmac_sha1(str_bytes("password"), str_bytes("salt"), 2, 20);
  EXPECT_EQ(to_hex(dk), "ea6c014dc72d6f8ccd1ed92ace1d41f0d8de8957");
}

TEST(Pbkdf2, Rfc6070Iter4096) {
  const Bytes dk = pbkdf2_hmac_sha1(str_bytes("password"), str_bytes("salt"), 4096, 20);
  EXPECT_EQ(to_hex(dk), "4b007901b765489abead49d926f721d065a429c1");
}

TEST(Pbkdf2, Rfc6070MultiBlockOutput) {
  const Bytes dk = pbkdf2_hmac_sha1(str_bytes("passwordPASSWORDpassword"),
                                    str_bytes("saltSALTsaltSALTsaltSALTsaltSALTsalt"),
                                    4096, 25);
  EXPECT_EQ(to_hex(dk), "3d2eec4fe41c849b80c8d83662c0e44a8b291a964cf2f07038");
}

TEST(Wpa2Psk, Ieee80211iAnnexHVector) {
  // Annex H.4.1: passphrase "password", SSID "IEEE".
  EXPECT_EQ(to_hex(wpa2_psk("password", "IEEE")),
            "f42c6fc52df0ebef9ebb4b90b38a5f902e83fe1b135a70e23aed762e9710a12e");
}

TEST(Wpa2Psk, Ieee80211iAnnexHVector2) {
  EXPECT_EQ(to_hex(wpa2_psk("ThisIsAPassword", "ThisIsASSID")),
            "0dc0d6eb90555ed6419756b9a15ec3e3209b63df707dd508d14581f8982721af");
}

// ---------------------------------------------------------------------------
// 802.11i PRF / PTK derivation
// ---------------------------------------------------------------------------

TEST(Prf80211, OutputLengthAndDeterminism) {
  const Bytes key(32, 0x11);
  const Bytes data = str_bytes("prf seed");
  const Bytes a = prf80211(key, "Pairwise key expansion", data, 48);
  const Bytes b = prf80211(key, "Pairwise key expansion", data, 48);
  EXPECT_EQ(a.size(), 48u);
  EXPECT_EQ(a, b);
}

TEST(Prf80211, LabelSeparatesOutputs) {
  const Bytes key(32, 0x22);
  const Bytes data = str_bytes("seed");
  EXPECT_NE(prf80211(key, "label one", data, 16), prf80211(key, "label two", data, 16));
}

TEST(DerivePtk, SymmetricInArgumentOrder) {
  const Bytes pmk(32, 0x42);
  const MacAddress aa = MacAddress::from_seed(1);
  const MacAddress spa = MacAddress::from_seed(2);
  Bytes anonce(32), snonce(32);
  Rng rng{3};
  for (auto& b : anonce) b = static_cast<std::uint8_t>(rng.below(256));
  for (auto& b : snonce) b = static_cast<std::uint8_t>(rng.below(256));

  const auto ptk_ap = derive_ptk(pmk, aa, spa, anonce, snonce);
  const auto ptk_sta = derive_ptk(pmk, spa, aa, snonce, anonce);
  EXPECT_EQ(ptk_ap.kck, ptk_sta.kck);
  EXPECT_EQ(ptk_ap.kek, ptk_sta.kek);
  EXPECT_EQ(ptk_ap.tk, ptk_sta.tk);
}

TEST(DerivePtk, NonceChangesKeys) {
  const Bytes pmk(32, 0x42);
  const MacAddress aa = MacAddress::from_seed(1);
  const MacAddress spa = MacAddress::from_seed(2);
  Bytes anonce(32, 0x01), snonce(32, 0x02), other(32, 0x03);
  const auto a = derive_ptk(pmk, aa, spa, anonce, snonce);
  const auto b = derive_ptk(pmk, aa, spa, other, snonce);
  EXPECT_NE(a.tk, b.tk);
}

TEST(DerivePtk, RejectsBadNonceSize) {
  const Bytes pmk(32, 0x42);
  const Bytes short_nonce(16, 0);
  const Bytes nonce(32, 0);
  EXPECT_THROW(derive_ptk(pmk, MacAddress::from_seed(1), MacAddress::from_seed(2),
                          short_nonce, nonce),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// AES-128 (FIPS 197 / SP 800-38A)
// ---------------------------------------------------------------------------

TEST(Aes128, Fips197Vector) {
  const auto key = *from_hex("000102030405060708090a0b0c0d0e0f");
  const auto pt = *from_hex("00112233445566778899aabbccddeeff");
  Aes128 aes{key};
  Aes128::Block block{};
  std::copy(pt.begin(), pt.end(), block.begin());
  const auto ct = aes.encrypt_block(block);
  EXPECT_EQ(digest_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(aes.decrypt_block(ct), block);
}

TEST(Aes128, Sp80038aEcbVector) {
  const auto key = *from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto pt = *from_hex("6bc1bee22e409f96e93d7e117393172a");
  Aes128 aes{key};
  Aes128::Block block{};
  std::copy(pt.begin(), pt.end(), block.begin());
  EXPECT_EQ(digest_hex(aes.encrypt_block(block)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128, EncryptDecryptRoundTripProperty) {
  Rng rng{12};
  for (int trial = 0; trial < 50; ++trial) {
    Aes128::Key key{};
    Aes128::Block block{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(256));
    for (auto& b : block) b = static_cast<std::uint8_t>(rng.below(256));
    Aes128 aes{key};
    EXPECT_EQ(aes.decrypt_block(aes.encrypt_block(block)), block);
  }
}

TEST(Aes128, RejectsWrongKeySize) {
  const Bytes short_key(8, 0);
  EXPECT_THROW(Aes128{BytesView{short_key}}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// AES-CTR
// ---------------------------------------------------------------------------

TEST(AesCtr, RoundTripIsIdentity) {
  const Bytes key(16, 0x7e);
  Aes128 aes{key};
  std::array<std::uint8_t, 12> nonce{};
  nonce[0] = 0x99;
  const Bytes msg = str_bytes("counter mode round trip across blocks: 0123456789");
  const Bytes ct = aes_ctr(aes, nonce, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(aes_ctr(aes, nonce, ct), msg);
}

TEST(AesCtr, InitialCounterOffsetsKeystream) {
  const Bytes key(16, 0x31);
  Aes128 aes{key};
  std::array<std::uint8_t, 12> nonce{};
  const Bytes msg(32, 0x00);  // keystream itself
  const Bytes ks0 = aes_ctr(aes, nonce, msg, 0);
  const Bytes ks1 = aes_ctr(aes, nonce, msg, 1);
  // Block 1 of ks0 equals block 0 of ks1.
  EXPECT_TRUE(std::equal(ks0.begin() + 16, ks0.end(), ks1.begin(), ks1.begin() + 16));
}

// ---------------------------------------------------------------------------
// AES-CMAC (RFC 4493)
// ---------------------------------------------------------------------------

TEST(AesCmac, Rfc4493EmptyMessage) {
  Aes128 aes{*from_hex("2b7e151628aed2a6abf7158809cf4f3c")};
  EXPECT_EQ(digest_hex(aes_cmac(aes, {})), "bb1d6929e95937287fa37d129b756746");
}

TEST(AesCmac, Rfc4493SingleBlock) {
  Aes128 aes{*from_hex("2b7e151628aed2a6abf7158809cf4f3c")};
  const auto msg = *from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(digest_hex(aes_cmac(aes, msg)), "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST(AesCmac, Rfc4493FortyBytes) {
  Aes128 aes{*from_hex("2b7e151628aed2a6abf7158809cf4f3c")};
  const auto msg = *from_hex(
      "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411");
  EXPECT_EQ(digest_hex(aes_cmac(aes, msg)), "dfa66747de9ae63030ca32611497c827");
}

TEST(AesCmac, Rfc4493FourBlocks) {
  Aes128 aes{*from_hex("2b7e151628aed2a6abf7158809cf4f3c")};
  const auto msg = *from_hex(
      "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710");
  EXPECT_EQ(digest_hex(aes_cmac(aes, msg)), "51f0bebf7e3b9d92fc49741779363cfe");
}

// ---------------------------------------------------------------------------
// AES Key Wrap (RFC 3394)
// ---------------------------------------------------------------------------

TEST(AesKeyWrap, Rfc3394Vector) {
  Aes128 kek{*from_hex("000102030405060708090a0b0c0d0e0f")};
  const auto key_data = *from_hex("00112233445566778899aabbccddeeff");
  const Bytes wrapped = aes_key_wrap(kek, key_data);
  EXPECT_EQ(to_hex(wrapped), "1fa68b0a8112b447aef34bd8fb5a7b829d3e862371d2cfe5");
  const auto unwrapped = aes_key_unwrap(kek, wrapped);
  ASSERT_TRUE(unwrapped.has_value());
  EXPECT_EQ(*unwrapped, key_data);
}

TEST(AesKeyWrap, UnwrapDetectsTampering) {
  Aes128 kek{*from_hex("000102030405060708090a0b0c0d0e0f")};
  Bytes wrapped = aes_key_wrap(kek, Bytes(24, 0x5a));
  wrapped[3] ^= 0x01;
  EXPECT_FALSE(aes_key_unwrap(kek, wrapped).has_value());
}

TEST(AesKeyWrap, UnwrapRejectsWrongKey) {
  Aes128 kek{*from_hex("000102030405060708090a0b0c0d0e0f")};
  Aes128 other{*from_hex("ffeeddccbbaa99887766554433221100")};
  const Bytes wrapped = aes_key_wrap(kek, Bytes(16, 0x77));
  EXPECT_FALSE(aes_key_unwrap(other, wrapped).has_value());
}

TEST(AesKeyWrap, RejectsBadLength) {
  Aes128 kek{*from_hex("000102030405060708090a0b0c0d0e0f")};
  EXPECT_THROW(aes_key_wrap(kek, Bytes(12, 0)), std::invalid_argument);
  EXPECT_FALSE(aes_key_unwrap(kek, Bytes(20, 0)).has_value());
}

// ---------------------------------------------------------------------------
// AEAD
// ---------------------------------------------------------------------------

class AeadRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AeadRoundTrip, SealOpenIdentity) {
  const Bytes key(16, 0xa5);
  Aead aead{key};
  Aead::Nonce nonce{};
  nonce[0] = 7;
  Rng rng{GetParam() + 1};
  Bytes msg(GetParam());
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.below(256));
  const Bytes ad = str_bytes("header");

  const Bytes sealed = aead.seal(nonce, ad, msg);
  EXPECT_EQ(sealed.size(), msg.size() + Aead::kTagSize);
  const auto opened = aead.open(nonce, ad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AeadRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 64, 227, 1000));

TEST(Aead, TamperedCiphertextRejected) {
  const Bytes key(16, 0x11);
  Aead aead{key};
  Aead::Nonce nonce{};
  Bytes sealed = aead.seal(nonce, {}, str_bytes("attack at dawn"));
  sealed[2] ^= 0x80;
  EXPECT_FALSE(aead.open(nonce, {}, sealed).has_value());
}

TEST(Aead, TamperedTagRejected) {
  const Bytes key(16, 0x11);
  Aead aead{key};
  Aead::Nonce nonce{};
  Bytes sealed = aead.seal(nonce, {}, str_bytes("attack at dawn"));
  sealed.back() ^= 0x01;
  EXPECT_FALSE(aead.open(nonce, {}, sealed).has_value());
}

TEST(Aead, WrongAssociatedDataRejected) {
  const Bytes key(16, 0x11);
  Aead aead{key};
  Aead::Nonce nonce{};
  const Bytes sealed = aead.seal(nonce, str_bytes("ad-1"), str_bytes("payload"));
  EXPECT_FALSE(aead.open(nonce, str_bytes("ad-2"), sealed).has_value());
}

TEST(Aead, WrongNonceRejected) {
  const Bytes key(16, 0x11);
  Aead aead{key};
  Aead::Nonce n1{}, n2{};
  n2[11] = 1;
  const Bytes sealed = aead.seal(n1, {}, str_bytes("payload"));
  EXPECT_FALSE(aead.open(n2, {}, sealed).has_value());
}

TEST(Aead, WrongKeyRejected) {
  Aead a{Bytes(16, 0x11)};
  Aead b{Bytes(16, 0x22)};
  Aead::Nonce nonce{};
  const Bytes sealed = a.seal(nonce, {}, str_bytes("payload"));
  EXPECT_FALSE(b.open(nonce, {}, sealed).has_value());
}

TEST(Aead, TooShortInputRejected) {
  Aead aead{Bytes(16, 0x33)};
  Aead::Nonce nonce{};
  EXPECT_FALSE(aead.open(nonce, {}, Bytes(Aead::kTagSize - 1, 0)).has_value());
}

}  // namespace
}  // namespace wile::crypto
