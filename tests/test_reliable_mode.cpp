// Tests for reliable Wi-LE: controller auto-acks over the two-way
// channel; senders retransmit unacknowledged messages.
#include <gtest/gtest.h>

#include "wile/controller.hpp"
#include "wile/receiver.hpp"
#include "wile/sender.hpp"

namespace wile::core {
namespace {

SenderConfig reliable_sender_config(std::uint32_t device_id) {
  SenderConfig cfg;
  cfg.device_id = device_id;
  cfg.period = seconds(1);
  cfg.rx_window = RxWindow{msec(2), msec(20)};
  cfg.reliable = true;
  return cfg;
}

ControllerConfig acking_controller_config() {
  ControllerConfig cfg;
  cfg.auto_ack = true;
  return cfg;
}

TEST(ReliableMode, CleanChannelAcksEveryCycle) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  Sender sender{scheduler, medium, {0, 0}, reliable_sender_config(1), Rng{2}};
  Controller controller{scheduler, medium, {2, 0}, acking_controller_config(), Rng{3}};

  int acked = 0, retransmissions = 0, cycles = 0;
  sender.start_duty_cycle([] { return Bytes{0x11}; },
                          [&](const SendReport& r) {
                            ++cycles;
                            if (r.acked) ++acked;
                            if (r.retransmission) ++retransmissions;
                          });
  scheduler.run_until(TimePoint{seconds(10) + msec(500)});
  sender.stop_duty_cycle();

  EXPECT_EQ(cycles, 10);
  EXPECT_EQ(acked, 10);
  EXPECT_EQ(retransmissions, 0);
  EXPECT_EQ(sender.messages_dropped_unacked(), 0u);
  EXPECT_EQ(controller.stats().acks_sent, 10u);
}

TEST(ReliableMode, NoControllerRetriesThenDrops) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  auto cfg = reliable_sender_config(1);
  cfg.reliable_max_attempts = 3;
  Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
  Receiver monitor{scheduler, medium, {2, 0}};  // passive, never acks

  std::vector<std::uint32_t> seqs;
  monitor.set_message_callback(
      [&](const Message& m, const RxMeta&) { seqs.push_back(m.sequence); });

  int retransmissions = 0;
  sender.start_duty_cycle([] { return Bytes{0x22}; },
                          [&](const SendReport& r) {
                            if (r.retransmission) ++retransmissions;
                          });
  scheduler.run_until(TimePoint{seconds(9) + msec(500)});
  sender.stop_duty_cycle();

  // 9 cycles = 3 messages x 3 attempts each. The monitor's dedup
  // delivers each sequence once and counts the 6 repeats as duplicates.
  EXPECT_EQ(seqs, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(retransmissions, 6);
  // Drops are counted lazily when the next message displaces the stale
  // one; message 2 is still pending when the duty cycle stops.
  EXPECT_EQ(sender.messages_dropped_unacked(), 2u);
  EXPECT_EQ(monitor.stats().duplicates, 6u);
  EXPECT_EQ(monitor.stats().messages, 3u);
}

TEST(ReliableMode, LossyWindowRecoversViaRetransmission) {
  // Put the controller at the edge so some beacons (or acks) drop; the
  // retransmission loop must still get every message through
  // eventually, with zero drops.
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{7}};
  auto cfg = reliable_sender_config(1);
  cfg.reliable_max_attempts = 6;
  Sender sender{scheduler, medium, {0, 0}, cfg, Rng{8}};
  Controller controller{scheduler, medium, {10.8, 0}, acking_controller_config(), Rng{9}};

  std::set<std::uint32_t> delivered;
  controller.set_message_callback(
      [&](const Message& m, const RxMeta&) { delivered.insert(m.sequence); });

  int acked = 0, retransmissions = 0, cycles = 0;
  sender.start_duty_cycle([] { return Bytes{0x33}; },
                          [&](const SendReport& r) {
                            ++cycles;
                            if (r.acked) ++acked;
                            if (r.retransmission) ++retransmissions;
                          });
  scheduler.run_until(TimePoint{seconds(120)});
  sender.stop_duty_cycle();

  EXPECT_GT(retransmissions, 5);                     // the link is lossy
  EXPECT_EQ(sender.messages_dropped_unacked(), 0u);  // but nothing was lost
  EXPECT_EQ(delivered.size(), static_cast<std::size_t>(cycles - retransmissions));
  EXPECT_EQ(acked, cycles - retransmissions);
}

TEST(ReliableMode, AckForWrongSequenceIgnored) {
  // A (stale) ack naming a different sequence must not clear the pending
  // message. Drive the codec path directly.
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  auto cfg = reliable_sender_config(1);
  Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};

  // Craft a controller that acks sequence 999 instead of the real one.
  struct BogusAcker : sim::MediumClient {
    BogusAcker(sim::Scheduler& s, sim::Medium& m) : scheduler(s), medium(m) {
      id = m.attach(this, {2, 0});
    }
    void on_frame(const sim::RxFrame& frame) override {
      auto parsed = dot11::parse_mpdu(frame.mpdu);
      if (!parsed || !parsed->header.fc.is_mgmt(dot11::MgmtSubtype::Beacon)) return;
      auto beacon = dot11::Beacon::decode(parsed->body);
      if (!beacon) return;
      Codec codec;
      for (const Fragment& f : codec.decode_all(beacon->ies)) {
        if (!f.rx_window) continue;
        scheduler.schedule_in(f.rx_window->offset + msec(1), [this, dev = f.device_id] {
          Message ack;
          ack.device_id = dev;
          ack.type = MessageType::Ack;
          ByteWriter w(4);
          w.u32le(999);  // wrong sequence
          ack.data = w.take();
          Codec c;
          dot11::Beacon b;
          b.ies.add(dot11::make_ssid_ie(""));
          for (const auto& ie : c.encode(ack)) b.ies.add(ie);
          dot11::MacHeader h;
          h.fc = dot11::FrameControl::mgmt(dot11::MgmtSubtype::Beacon);
          h.addr1 = MacAddress::broadcast();
          h.addr2 = MacAddress::from_seed(0xBAD);
          h.addr3 = MacAddress::from_seed(0xBAD);
          sim::TxRequest req;
          req.mpdu = dot11::assemble_mpdu(h, b.encode());
          req.airtime = phy::frame_airtime(req.mpdu.size(), phy::WifiRate::Mcs7Sgi);
          req.rate = phy::WifiRate::Mcs7Sgi;
          if (!medium.transmitting(id)) medium.transmit(id, std::move(req));
        });
      }
    }
    [[nodiscard]] bool rx_enabled() const override { return !medium.transmitting(id); }
    sim::Scheduler& scheduler;
    sim::Medium& medium;
    sim::NodeId id{};
  } bogus{scheduler, medium};

  std::optional<SendReport> report;
  sender.send_now(Bytes{1}, [&](const SendReport& r) { report = r; });
  scheduler.run_until_idle();

  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->acked);  // the bogus ack must not count
}

}  // namespace
}  // namespace wile::core
