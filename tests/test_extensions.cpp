// Tests for the library extensions beyond the paper's prototype:
// 5 GHz band support, beacon repetition, graceful disconnect, and the
// battery-lifetime model.
#include <gtest/gtest.h>

#include "ap/access_point.hpp"
#include "phy/airtime.hpp"
#include "phy/channel.hpp"
#include "power/battery.hpp"
#include "sta/station.hpp"
#include "wile/receiver.hpp"
#include "wile/sender.hpp"

namespace wile {
namespace {

// ---------------------------------------------------------------------------
// 5 GHz band
// ---------------------------------------------------------------------------

TEST(Band5GHz, NoSignalExtensionShortensFrames) {
  const auto t24 = phy::frame_airtime(100, phy::WifiRate::Mcs7Sgi, phy::Band::G2_4);
  const auto t5 = phy::frame_airtime(100, phy::WifiRate::Mcs7Sgi, phy::Band::G5);
  EXPECT_EQ(t24.count() - t5.count(), 6);
}

TEST(Band5GHz, DsssRejected) {
  EXPECT_THROW(phy::frame_airtime(100, phy::WifiRate::B1, phy::Band::G5),
               std::invalid_argument);
  EXPECT_NO_THROW(phy::frame_airtime(100, phy::WifiRate::G6, phy::Band::G5));
}

TEST(Band5GHz, HigherPathLossShortensRange) {
  const phy::Channel ch24{phy::ChannelConfig::for_band(phy::Band::G2_4)};
  const phy::Channel ch5{phy::ChannelConfig::for_band(phy::Band::G5)};
  const double r24 = ch24.max_range_m(0.0, phy::WifiRate::Mcs7Sgi, 150);
  const double r5 = ch5.max_range_m(0.0, phy::WifiRate::Mcs7Sgi, 150);
  EXPECT_LT(r5, r24);
  EXPECT_GT(r5, 0.3 * r24);  // ~6.4 dB over exponent 3 => ~0.6x range
}

TEST(Band5GHz, WiLeWorksEndToEndAt5GHz) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{phy::ChannelConfig::for_band(phy::Band::G5)},
                     Rng{1}};
  core::SenderConfig cfg;
  cfg.band = phy::Band::G5;
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
  core::Receiver monitor{scheduler, medium, {2, 0}};

  std::optional<core::SendReport> report;
  sender.send_now(Bytes(16, 0x42), [&](const core::SendReport& r) { report = r; });
  scheduler.run_until_idle();

  ASSERT_TRUE(report && report->success);
  EXPECT_EQ(monitor.stats().messages, 1u);
  // 6 us less airtime than the 2.4 GHz transmission of the same frame.
  const double uj = in_microjoules(report->tx_only_energy);
  EXPECT_GT(uj, 70.0);
  EXPECT_LT(uj, 84.0);
}

// ---------------------------------------------------------------------------
// Beacon repetition
// ---------------------------------------------------------------------------

TEST(Repeats, DuplicatesAreDeduplicated) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  core::SenderConfig cfg;
  cfg.repeats = 3;
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
  core::Receiver monitor{scheduler, medium, {2, 0}};

  std::optional<core::SendReport> report;
  sender.send_now(Bytes{1, 2}, [&](const core::SendReport& r) { report = r; });
  scheduler.run_until_idle();

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->beacons_sent, 3);
  EXPECT_EQ(monitor.stats().messages, 1u);     // delivered once
  EXPECT_EQ(monitor.stats().duplicates, 2u);   // two copies dropped
  // Energy scales with the repeats.
  EXPECT_GT(in_microjoules(report->tx_only_energy), 3 * 75.0);
}

TEST(Repeats, ImproveDeliveryOnLossyLink) {
  auto run = [](int repeats) {
    sim::Scheduler scheduler;
    sim::Medium medium{scheduler, phy::Channel{}, Rng{5}};
    core::SenderConfig cfg;
    cfg.repeats = repeats;
    cfg.period = seconds(1);
    core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{6}};
    core::Receiver monitor{scheduler, medium, {10.8, 0}};  // lossy edge
    sender.start_duty_cycle([] { return Bytes{7}; });
    scheduler.run_until(TimePoint{seconds(200)});
    sender.stop_duty_cycle();
    return monitor.stats().messages;
  };
  const auto once = run(1);
  const auto thrice = run(3);
  EXPECT_GT(thrice, once + 10);
}

TEST(Repeats, FragmentedMessagesRepeatTheWholeTrain) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  core::SenderConfig cfg;
  cfg.repeats = 2;
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
  core::Receiver monitor{scheduler, medium, {2, 0}};

  std::optional<core::SendReport> report;
  sender.send_now(Bytes(500, 0x33), [&](const core::SendReport& r) { report = r; });
  scheduler.run_until_idle();

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->beacons_sent, 6);  // 3 fragments x 2
  EXPECT_EQ(monitor.stats().messages, 1u);
}

// ---------------------------------------------------------------------------
// Disconnect
// ---------------------------------------------------------------------------

TEST(Disconnect, DeauthDropsApStateAndStationSleeps) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{2}};
  ap.start();
  sta::StationConfig sta_cfg;
  sta::Station sta{scheduler, medium, {2, 0}, sta_cfg, Rng{3}};

  bool ready = false;
  sta.connect_and_enter_power_save([&](bool ok) { ready = ok; });
  scheduler.run_until(TimePoint{seconds(10)});
  ASSERT_TRUE(ready);
  ASSERT_TRUE(ap.client_ready(sta_cfg.mac));

  bool disconnected = false;
  sta.disconnect([&] { disconnected = true; });
  scheduler.run_until(scheduler.now() + seconds(2));

  EXPECT_TRUE(disconnected);
  EXPECT_FALSE(ap.client_ready(sta_cfg.mac));
  EXPECT_NEAR(in_microamps(sta.timeline().current_at(scheduler.now())), 2.5, 1e-6);

  // And the station is reusable: a fresh duty cycle succeeds.
  std::optional<sta::CycleReport> report;
  sta.run_duty_cycle_transmission(Bytes{1}, [&](const sta::CycleReport& r) { report = r; });
  scheduler.run_until(scheduler.now() + seconds(10));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->success);
}

TEST(Disconnect, RequiresPsMode) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  sta::StationConfig cfg;
  sta::Station sta{scheduler, medium, {0, 0}, cfg, Rng{2}};
  EXPECT_THROW(sta.disconnect(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Battery model
// ---------------------------------------------------------------------------

TEST(Battery, UsableEnergyArithmetic) {
  const auto cell = power::BatteryModel::cr2032();
  // 225 mAh * 3 V * 0.85 = 2065.5 J.
  EXPECT_NEAR(cell.usable_energy().value, 2065.5, 0.1);
}

TEST(Battery, PaperClaimButtonCellOverAYearForBle) {
  // §5.4: "This is why BLE modules can run on a small button battery for
  // over a year." BLE at a 1-minute reporting interval:
  const Watts ble_avg = power::duty_cycle_average_power(
      microjoules(71.1) / msec(3), msec(3), volts(3.0) * microamps(1.1), minutes(1));
  const auto cell = power::BatteryModel::cr2032();
  EXPECT_GT(cell.lifetime_years(ble_avg), 1.0);
  // Wi-LE on the same cell also clears a year.
  const Watts wile_avg = power::duty_cycle_average_power(
      microjoules(84.0) / usec(140), usec(140), volts(3.3) * microamps(2.5), minutes(1));
  EXPECT_GT(cell.lifetime_years(wile_avg), 1.0);
  // WiFi-PS does not come close.
  const Watts ps_avg = power::duty_cycle_average_power(
      millijoules(19.9) / msec(150), msec(150), volts(3.3) * milliamps(4.5), minutes(1));
  EXPECT_LT(cell.lifetime_years(ps_avg), 0.1);
}

TEST(Battery, SelfDischargeBoundsIdleLifetime) {
  const auto cell = power::BatteryModel::cr2032();
  // Even at zero load, self-discharge caps life near
  // usable_fraction/self_discharge_per_year = 85 years.
  EXPECT_NEAR(cell.lifetime_years(Watts{0.0}), 85.0, 1.0);
}

TEST(Battery, BiggerCellLastsLonger) {
  const Watts load = microwatts(10.0);
  EXPECT_GT(power::BatteryModel::aa_pair().lifetime_years(load),
            power::BatteryModel::cr2032().lifetime_years(load));
}

}  // namespace
}  // namespace wile
