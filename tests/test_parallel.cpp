// Sharded parallel engine: partition edge cases, cross-shard frame
// exchange, and the lock-free plumbing under genuine thread contention.
//
// The determinism story (threads={1,2,4} bit-exact at a fixed shard
// count) lives in test_determinism.cpp; this file covers the pieces it
// stands on — stripe assignment at exact boundaries, audible circles
// spanning 3+ stripes, degenerate shard layouts with empty stripes,
// phantom (remote) transmissions delivering without perturbing local
// bookkeeping, and the SPSC queue / atomic FrameBuffer refcount under
// real concurrent producers and consumers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/medium.hpp"
#include "sim/parallel.hpp"
#include "sim/spsc_queue.hpp"
#include "util/frame_buffer.hpp"
#include "wile/scenario.hpp"

namespace wile::sim {
namespace {

struct RecordingClient : MediumClient {
  int frames = 0;
  int corrupt = 0;
  bool rx_on = true;
  void on_frame(const RxFrame&) override { ++frames; }
  void on_corrupt_frame(const RxFrame&, bool) override { ++corrupt; }
  [[nodiscard]] bool rx_enabled() const override { return rx_on; }
};

// --- stripe partition edge cases --------------------------------------------

TEST(ShardRouter, NodeExactlyOnBoundaryGoesToTheRightStripe) {
  ShardRouter router{8, 0.0, 80.0};  // stripe width 10 m
  EXPECT_EQ(router.shard_of(0.0), 0u);
  EXPECT_EQ(router.shard_of(9.999), 0u);
  // x == a stripe edge belongs to the stripe starting there, matching
  // the half-open [x0, x1) span contract.
  EXPECT_EQ(router.shard_of(10.0), 1u);
  EXPECT_EQ(router.shard_of(70.0), 7u);
  // The extent's right edge and anything beyond clamp into the last
  // stripe; anything left of the extent clamps into the first.
  EXPECT_EQ(router.shard_of(80.0), 7u);
  EXPECT_EQ(router.shard_of(1e9), 7u);
  EXPECT_EQ(router.shard_of(-5.0), 0u);

  const auto [s0, s1] = router.span(3);
  EXPECT_DOUBLE_EQ(s0, 30.0);
  EXPECT_DOUBLE_EQ(s1, 40.0);
  // A node sitting exactly at span(3).second is owned by shard 4.
  EXPECT_EQ(router.shard_of(s1), 4u);
}

TEST(ShardRouter, AudibleRadiusSpanningManyStripesReachesEveryOne) {
  ShardRouter router{8, 0.0, 80.0};  // stripe width 10 m
  RemoteTx tx;
  tx.origin_node = 1;
  tx.origin = Position{35.0, 0.0};  // inside stripe 3
  tx.audible_range_m = 25.0;        // circle covers [10, 60] -> stripes 1..6
  tx.mpdu = FrameBuffer{Bytes{0xAB}};
  router.route(3, tx);

  std::vector<BoundaryTx> inbox;
  for (std::size_t dst = 0; dst < 8; ++dst) {
    inbox.clear();
    router.drain(dst, inbox);
    const bool expect_copy = dst >= 1 && dst <= 6 && dst != 3;
    EXPECT_EQ(inbox.size(), expect_copy ? 1u : 0u) << "stripe " << dst;
    if (expect_copy) {
      EXPECT_EQ(inbox[0].origin_shard, 3u);
      EXPECT_EQ(inbox[0].tx.origin_node, 1u);
    }
  }
  EXPECT_EQ(router.routed_from(3), 5u);
}

TEST(ShardRouter, DrainMergesIntoCanonicalOrder) {
  ShardRouter router{4, 0.0, 40.0};
  auto make = [](double x, std::int64_t start_us) {
    RemoteTx tx;
    tx.origin = Position{x, 0.0};
    tx.audible_range_m = 50.0;  // reaches every stripe
    tx.start = TimePoint{usec(start_us)};
    return tx;
  };
  // Push out of order from two origins; drain must sort by (start,
  // origin_shard, seq) regardless of arrival interleaving.
  router.route(2, make(25.0, 700));
  router.route(0, make(5.0, 300));
  router.route(2, make(25.0, 300));
  router.route(0, make(5.0, 900));

  std::vector<BoundaryTx> inbox;
  router.drain(1, inbox);
  ASSERT_EQ(inbox.size(), 4u);
  EXPECT_EQ(inbox[0].tx.start.us(), 300);
  EXPECT_EQ(inbox[0].origin_shard, 0u);  // start tie: lower origin first
  EXPECT_EQ(inbox[1].tx.start.us(), 300);
  EXPECT_EQ(inbox[1].origin_shard, 2u);
  EXPECT_EQ(inbox[2].tx.start.us(), 700);
  EXPECT_EQ(inbox[3].tx.start.us(), 900);
}

// --- boundary hook + phantom injection --------------------------------------

TEST(MediumSharding, BoundaryHookFiresOnlyWhenTheCircleEscapesTheSpan) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{7}};
  RecordingClient inner_client;
  RecordingClient edge_client;
  // A 0 dBm transmission is audible ~25 m; give the span enough width
  // that a centered node stays inside and an edge node escapes.
  const NodeId inner = medium.attach(&inner_client, Position{500.0, 0.0});
  const NodeId edge = medium.attach(&edge_client, Position{995.0, 0.0});
  medium.set_owned_span(0.0, 1000.0);
  std::vector<RemoteTx> crossed;
  medium.set_boundary_hook([&](const RemoteTx& tx) { crossed.push_back(tx); });

  TxRequest req;
  req.mpdu = Bytes{1, 2, 3};
  req.airtime = usec(500);
  req.tx_power_dbm = 0.0;
  medium.transmit(inner, std::move(req));
  scheduler.run_until(TimePoint{usec(1000)});
  EXPECT_TRUE(crossed.empty()) << "interior transmission should not cross";

  TxRequest req2;
  req2.mpdu = Bytes{4, 5, 6};
  req2.airtime = usec(500);
  req2.tx_power_dbm = 0.0;
  medium.transmit(edge, std::move(req2));
  scheduler.run_until(TimePoint{usec(2000)});
  ASSERT_EQ(crossed.size(), 1u);
  EXPECT_EQ(crossed[0].origin_node, edge);
  EXPECT_DOUBLE_EQ(crossed[0].origin.x_m, 995.0);
  EXPECT_GT(crossed[0].audible_range_m, 5.0);
}

TEST(MediumSharding, InjectedRemoteDeliversWithoutLocalBookkeeping) {
  Scheduler sched_a;
  Scheduler sched_b;
  Medium med_a{sched_a, phy::Channel{}, Rng{1}};
  Medium med_b{sched_b, phy::Channel{}, Rng{2}};
  RecordingClient tx_client;
  RecordingClient rx_client;
  const NodeId a = med_a.attach(&tx_client, Position{9.5, 0.0});
  med_b.attach(&rx_client, Position{10.5, 0.0});
  med_a.set_owned_span(0.0, 10.0);
  std::vector<RemoteTx> crossed;
  med_a.set_boundary_hook([&](const RemoteTx& tx) { crossed.push_back(tx); });

  TxRequest req;
  req.mpdu = Bytes{0xDE, 0xAD};
  req.airtime = usec(400);
  req.tx_power_dbm = 0.0;
  med_a.transmit(a, std::move(req));
  ASSERT_EQ(crossed.size(), 1u);

  med_b.inject_remote(crossed[0]);
  EXPECT_EQ(med_b.active_transmissions(), 1u);
  // Phantom occupies the channel for carrier sense at the local node.
  EXPECT_TRUE(med_b.carrier_busy(0));

  sched_b.run_until(TimePoint{usec(1000)});
  // 1 m link, huge SNR: the frame arrives (as a decode or, at worst, a
  // channel-loss draw) exactly once.
  EXPECT_EQ(rx_client.frames + rx_client.corrupt, 1);
  EXPECT_EQ(rx_client.frames, 1);
  // The phantom is not a local transmission: the origin shard counted
  // it, the receiving shard only counts the delivery.
  EXPECT_EQ(med_b.stats().transmissions, 0u);
  EXPECT_EQ(med_b.stats().deliveries, 1u);
  EXPECT_EQ(med_b.active_transmissions(), 0u);

  sched_a.run_until(TimePoint{usec(1000)});
  EXPECT_EQ(med_a.stats().transmissions, 1u);
}

TEST(MediumSharding, LateInjectedRemoteDeliversAtInjectionTime) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{3}};
  RecordingClient rx_client;
  medium.attach(&rx_client, Position{1.0, 0.0});
  scheduler.run_until(TimePoint{msec(10)});  // barrier time: frame already over

  RemoteTx tx;
  tx.origin_node = 42;
  tx.origin = Position{0.0, 0.0};
  tx.start = TimePoint{usec(100)};
  tx.end = TimePoint{usec(600)};  // ended 9.4 ms ago
  tx.tx_power_dbm = 0.0;
  tx.audible_range_m = 25.0;
  tx.mpdu = FrameBuffer{Bytes{0x01}};
  tx.airtime = usec(500);
  medium.inject_remote(tx);  // must not throw "scheduled in the past"
  scheduler.run_until(TimePoint{msec(11)});
  EXPECT_EQ(rx_client.frames + rx_client.corrupt, 1);
}

// --- degenerate shard layouts ------------------------------------------------

TEST(ParallelScenario, ShardCountExceedingOccupiedStripesStillRuns) {
  // Nine devices clustered in the leftmost stripes of a 6-shard layout:
  // most shards own nothing and must still advance through every window
  // without wedging the barrier.
  auto scenario = ScenarioBuilder{}
                      .devices(9)
                      .grid_spacing_m(1.5)
                      .duty_cycle(seconds(5))
                      .threads(2)
                      .shards(6)
                      .window(msec(10))
                      .per_node_metrics(false)
                      .build();
  scenario->run_for(seconds(20));
  scenario->stop_all();

  ASSERT_TRUE(scenario->parallel());
  const auto& stats = scenario->parallel_engine()->shard_stats();
  ASSERT_EQ(stats.size(), 6u);
  for (std::size_t s = 0; s < stats.size(); ++s) {
    EXPECT_EQ(stats[s].windows, 2000u) << "shard " << s;  // 20 s / 10 ms
  }
  EXPECT_GT(scenario->medium_stats().transmissions, 0u);
  EXPECT_GT(scenario->messages(), 0u);
  EXPECT_EQ(scenario->now(), TimePoint{seconds(20)});
}

TEST(ParallelScenario, SerialOnlySubsystemsAreRejected) {
  auto scenario = ScenarioBuilder{}
                      .devices(4)
                      .threads(1)
                      .shards(4)
                      .per_node_metrics(false)
                      .build();
  EXPECT_THROW((void)scenario->scheduler(), std::logic_error);
  EXPECT_THROW((void)scenario->medium(), std::logic_error);
  EXPECT_THROW((void)scenario->faults(), std::logic_error);
  EXPECT_THROW((void)scenario->chaos_targets(), std::logic_error);

  EXPECT_THROW(ScenarioBuilder{}.devices(4).threads(2).trace(true).build(),
               std::invalid_argument);
  EXPECT_THROW(
      ScenarioBuilder{}.devices(4).threads(2).sample_every(seconds(1)).build(),
      std::invalid_argument);
}

// --- lock-free plumbing under contention ------------------------------------

TEST(SpscQueue, OrderedDeliveryAcrossOverflowSegments) {
  SpscQueue<std::uint64_t> queue{64};  // tiny segments force overflow
  constexpr std::uint64_t kCount = 200'000;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) queue.push(i);
  });
  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  while (expected < kCount) {
    if (queue.try_pop(out)) {
      ASSERT_EQ(out, expected);  // FIFO survives segment hops
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_EQ(queue.pushed(), kCount);
  EXPECT_EQ(queue.popped(), kCount);
  EXPECT_GT(queue.overflow_segments(), 0u);
}

TEST(FrameBuffer, RefcountSurvivesThreadedCopyChurn) {
  const std::uint64_t live_before = FrameBuffer::live_buffers();
  {
    FrameBuffer shared{Bytes(64, 0x5A)};
    constexpr int kThreads = 4;
    constexpr int kIterations = 50'000;
    std::atomic<bool> start{false};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int i = 0; i < kIterations; ++i) {
          FrameBuffer copy = shared;          // relaxed increment
          FrameBuffer second = copy;           // and again
          ASSERT_EQ(second.size(), 64u);
          ASSERT_EQ(second[0], 0x5A);
          // both copies release on scope exit (acq-rel decrement)
        }
      });
    }
    start.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    EXPECT_EQ(shared.owners(), 1);
    EXPECT_EQ(FrameBuffer::live_buffers(), live_before + 1);
  }
  EXPECT_EQ(FrameBuffer::live_buffers(), live_before);
}

}  // namespace
}  // namespace wile::sim
