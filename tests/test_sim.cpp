// Unit tests for src/sim: the event scheduler, the broadcast medium with
// collisions and carrier sense, and the CSMA/CA machine.
#include <gtest/gtest.h>

#include <array>
#include <functional>

#include "dot11/frame.hpp"
#include "sim/csma.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"

namespace wile::sim {
namespace {

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(TimePoint{usec(30)}, [&] { order.push_back(3); });
  s.schedule_at(TimePoint{usec(10)}, [&] { order.push_back(1); });
  s.schedule_at(TimePoint{usec(20)}, [&] { order.push_back(2); });
  s.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now().us(), 30);
}

TEST(Scheduler, EqualTimesFireInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(TimePoint{usec(100)}, [&order, i] { order.push_back(i); });
  }
  s.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.schedule_in(usec(10), [&] { fired = true; });
  s.cancel(id);
  s.run_until_idle();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelUnknownIdIsNoOp) {
  Scheduler s;
  s.cancel(12345);  // must not throw
  SUCCEED();
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) s.schedule_in(usec(5), tick);
  };
  s.schedule_in(usec(5), tick);
  s.run_until_idle();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(s.now().us(), 50);
}

TEST(Scheduler, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(TimePoint{usec(10)}, [&] { ++fired; });
  s.schedule_at(TimePoint{usec(100)}, [&] { ++fired; });
  s.run_until(TimePoint{usec(50)});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now().us(), 50);
  s.run_until(TimePoint{usec(200)});
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, ThrowsOnPastEvent) {
  Scheduler s;
  s.schedule_at(TimePoint{usec(10)}, [] {});
  s.run_until_idle();
  EXPECT_THROW(s.schedule_at(TimePoint{usec(5)}, [] {}), std::logic_error);
}

TEST(Scheduler, RunawayLoopGuard) {
  Scheduler s;
  std::function<void()> forever = [&] { s.schedule_in(usec(1), forever); };
  s.schedule_in(usec(1), forever);
  EXPECT_THROW(s.run_until_idle(1000), std::runtime_error);
}

TEST(Scheduler, StaleIdCannotCancelRecycledSlot) {
  Scheduler s;
  bool a_fired = false;
  bool b_fired = false;
  const EventId a = s.schedule_in(usec(10), [&] { a_fired = true; });
  s.cancel(a);  // frees the slot
  const EventId b = s.schedule_in(usec(20), [&] { b_fired = true; });
  EXPECT_NE(a, b);  // generation tag differs even if the slot is reused
  s.cancel(a);      // stale id: must not touch b's slot
  s.run_until_idle();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
}

TEST(Scheduler, CancellingOwnIdInsideHandlerIsNoOp) {
  Scheduler s;
  EventId id = 0;
  int fired = 0;
  id = s.schedule_in(usec(5), [&] {
    ++fired;
    s.cancel(id);  // already consumed; must not corrupt the slab
  });
  s.schedule_in(usec(6), [&fired] { ++fired; });
  s.run_until_idle();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, PendingEventsTracksCancellation) {
  Scheduler s;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(s.schedule_in(usec(i + 1), [] {}));
  EXPECT_EQ(s.pending_events(), 10u);
  for (int i = 0; i < 10; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(s.pending_events(), 5u);
  s.run_until_idle();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.events_run(), 5u);
}

TEST(Scheduler, HeavyChurnWithInterleavedCancels) {
  // Schedule/cancel storms must preserve time-then-insertion ordering.
  Scheduler s;
  std::vector<int> order;
  std::vector<EventId> cancels;
  for (int i = 0; i < 1000; ++i) {
    const EventId id =
        s.schedule_at(TimePoint{usec(1000 - (i % 100))}, [&order, i] { order.push_back(i); });
    if (i % 3 == 0) cancels.push_back(id);
  }
  for (const EventId id : cancels) s.cancel(id);
  s.run_until_idle();
  ASSERT_FALSE(order.empty());
  // Verify global (time, insertion-seq) ordering of what fired.
  for (std::size_t k = 1; k < order.size(); ++k) {
    const int prev_t = 1000 - (order[k - 1] % 100);
    const int cur_t = 1000 - (order[k] % 100);
    EXPECT_TRUE(prev_t < cur_t || (prev_t == cur_t && order[k - 1] < order[k]));
  }
  EXPECT_EQ(order.size(), 1000u - cancels.size());
}

TEST(Scheduler, InlineStorageAvoidsHeapForSmallCaptures) {
  // The medium's completion lambda ({this, tx_id}) and every timer that
  // captures `this` plus a couple of words must stay inline.
  struct Small {
    void* a;
    std::uint64_t b;
    void operator()() {}
  };
  struct Big {
    std::array<std::uint8_t, 128> blob;
    void operator()() {}
  };
  static_assert(Scheduler::EventFn::fits_inline<Small>());
  static_assert(!Scheduler::EventFn::fits_inline<Big>());
  // Oversized callables still work via the heap fallback.
  Scheduler s;
  Big big{};
  big.blob[0] = 7;
  int seen = -1;
  s.schedule_in(usec(1), [big, &seen] { seen = big.blob[0]; });
  s.run_until_idle();
  EXPECT_EQ(seen, 7);
}

// ---------------------------------------------------------------------------
// Medium
// ---------------------------------------------------------------------------

class RecordingClient : public MediumClient {
 public:
  void on_frame(const RxFrame& frame) override { frames.push_back(frame); }
  void on_corrupt_frame(const RxFrame&, bool collision) override {
    if (collision) {
      ++collisions;
    } else {
      ++channel_losses;
    }
  }
  [[nodiscard]] bool rx_enabled() const override { return listening; }

  bool listening = true;
  std::vector<RxFrame> frames;
  int collisions = 0;
  int channel_losses = 0;
};

class MediumTest : public ::testing::Test {
 protected:
  Scheduler scheduler;
  phy::Channel channel{};
  Medium medium{scheduler, channel, Rng{1}};
};

TEST_F(MediumTest, DeliversToNearbyListener) {
  RecordingClient tx_client, rx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  medium.attach(&rx_client, {2, 0});

  TxRequest req;
  req.mpdu = Bytes{1, 2, 3};
  req.airtime = usec(100);
  req.rate = phy::WifiRate::G6;
  bool completed = false;
  req.on_complete = [&] { completed = true; };
  medium.transmit(tx, std::move(req));
  scheduler.run_until_idle();

  EXPECT_TRUE(completed);
  ASSERT_EQ(rx_client.frames.size(), 1u);
  EXPECT_EQ(rx_client.frames[0].mpdu, (Bytes{1, 2, 3}));
  EXPECT_EQ(rx_client.frames[0].transmitter, tx);
  EXPECT_LT(rx_client.frames[0].rx_power_dbm, 0.0);
  EXPECT_TRUE(tx_client.frames.empty());  // no self-reception
}

TEST_F(MediumTest, OutOfRangeHearsNothing) {
  RecordingClient tx_client, far_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  medium.attach(&far_client, {100'000, 0});

  TxRequest req;
  req.mpdu = Bytes{1};
  req.airtime = usec(50);
  medium.transmit(tx, std::move(req));
  scheduler.run_until_idle();
  EXPECT_TRUE(far_client.frames.empty());
  EXPECT_EQ(far_client.collisions, 0);
}

TEST_F(MediumTest, SleepingRadioMissesFrames) {
  RecordingClient tx_client, rx_client;
  rx_client.listening = false;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  medium.attach(&rx_client, {2, 0});

  TxRequest req;
  req.mpdu = Bytes{1};
  req.airtime = usec(50);
  medium.transmit(tx, std::move(req));
  scheduler.run_until_idle();
  EXPECT_TRUE(rx_client.frames.empty());
}

TEST_F(MediumTest, OverlappingTransmissionsCollideAtReceiver) {
  RecordingClient a_client, b_client, rx_client;
  const NodeId a = medium.attach(&a_client, {0, 0});
  const NodeId b = medium.attach(&b_client, {1, 0});
  medium.attach(&rx_client, {0.5, 1});

  TxRequest ra;
  ra.mpdu = Bytes{1};
  ra.airtime = usec(100);
  medium.transmit(a, std::move(ra));

  scheduler.schedule_in(usec(50), [&] {
    TxRequest rb;
    rb.mpdu = Bytes{2};
    rb.airtime = usec(100);
    medium.transmit(b, std::move(rb));
  });
  scheduler.run_until_idle();

  EXPECT_TRUE(rx_client.frames.empty());
  EXPECT_EQ(rx_client.collisions, 2);
  EXPECT_EQ(medium.stats().collision_losses, 2u + 2u);  // a/b also hear each other
}

TEST_F(MediumTest, NonOverlappingTransmissionsBothArrive) {
  RecordingClient a_client, rx_client;
  const NodeId a = medium.attach(&a_client, {0, 0});
  medium.attach(&rx_client, {1, 0});

  TxRequest r1;
  r1.mpdu = Bytes{1};
  r1.airtime = usec(100);
  medium.transmit(a, std::move(r1));
  scheduler.schedule_in(usec(200), [&] {
    TxRequest r2;
    r2.mpdu = Bytes{2};
    r2.airtime = usec(100);
    medium.transmit(a, std::move(r2));
  });
  scheduler.run_until_idle();
  EXPECT_EQ(rx_client.frames.size(), 2u);
}

TEST_F(MediumTest, CarrierBusyDuringTransmission) {
  RecordingClient a_client, b_client;
  const NodeId a = medium.attach(&a_client, {0, 0});
  const NodeId b = medium.attach(&b_client, {2, 0});

  TxRequest req;
  req.mpdu = Bytes{1};
  req.airtime = usec(100);
  medium.transmit(a, std::move(req));

  EXPECT_TRUE(medium.carrier_busy(a));  // own TX
  EXPECT_TRUE(medium.carrier_busy(b));  // audible neighbour
  scheduler.run_until_idle();
  EXPECT_FALSE(medium.carrier_busy(a));
  EXPECT_FALSE(medium.carrier_busy(b));
}

TEST_F(MediumTest, DoubleTransmitThrows) {
  RecordingClient client;
  const NodeId a = medium.attach(&client, {0, 0});
  TxRequest r1;
  r1.mpdu = Bytes{1};
  r1.airtime = usec(100);
  medium.transmit(a, std::move(r1));
  TxRequest r2;
  r2.mpdu = Bytes{2};
  r2.airtime = usec(100);
  EXPECT_THROW(medium.transmit(a, std::move(r2)), std::logic_error);
}

// Pins the documented carrier-sense semantics (see Medium::carrier_busy):
// energy detection at the antenna ignores rx_blocked and noise_offset_db,
// while frame delivery honours both.
TEST_F(MediumTest, CarrierSenseIgnoresRxBlockedAndNoiseOffset) {
  RecordingClient tx_client, rx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  const NodeId rx = medium.attach(&rx_client, {2, 0});

  medium.set_rx_blocked(rx, true);
  medium.set_noise_offset_db(60.0);  // drowns any SNR, not the CS floor

  TxRequest req;
  req.mpdu = Bytes{1, 2, 3};
  req.airtime = usec(100);
  medium.transmit(tx, std::move(req));

  // A deaf radio's antenna still senses energy; noise does not raise the
  // absolute detection threshold.
  EXPECT_TRUE(medium.carrier_busy(rx));
  scheduler.run_until_idle();

  // ...but delivery honours the blackout: nothing decodable arrived.
  EXPECT_TRUE(rx_client.frames.empty());
  EXPECT_EQ(rx_client.collisions + rx_client.channel_losses, 0);
  EXPECT_FALSE(medium.carrier_busy(rx));

  // Unblocked, the same noise offset degrades SNR at delivery time: a
  // long frame at 2 m that would decode cleanly without the offset is
  // lost to channel error instead (PER ~ 1 at -15 dB SNR for 1000 B).
  medium.set_rx_blocked(rx, false);
  TxRequest again;
  again.mpdu = Bytes(1000, 0x5A);
  again.airtime = usec(100);
  again.rate = phy::WifiRate::G6;
  medium.transmit(tx, std::move(again));
  scheduler.run_until_idle();
  EXPECT_TRUE(rx_client.frames.empty());
  EXPECT_EQ(rx_client.channel_losses, 1);
}

TEST_F(MediumTest, ReceiversShareOneFrameBuffer) {
  RecordingClient tx_client;
  std::array<RecordingClient, 3> rx_clients;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  for (auto& c : rx_clients) medium.attach(&c, {1, 0});

  TxRequest req;
  req.mpdu = Bytes(1000, 0xEE);
  req.airtime = usec(100);
  medium.transmit(tx, std::move(req));
  scheduler.run_until_idle();

  ASSERT_EQ(rx_clients[0].frames.size(), 1u);
  const std::uint8_t* payload = rx_clients[0].frames[0].mpdu.data();
  for (auto& c : rx_clients) {
    ASSERT_EQ(c.frames.size(), 1u);
    // Zero-copy fan-out: every receiver sees the very same bytes.
    EXPECT_EQ(c.frames[0].mpdu.data(), payload);
  }
  EXPECT_GE(rx_clients[0].frames[0].mpdu.owners(), 3L);
}

TEST_F(MediumTest, SetPositionUpdatesSpatialIndex) {
  RecordingClient tx_client, rx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  const NodeId rx = medium.attach(&rx_client, {100'000, 0});  // far cell

  TxRequest r1;
  r1.mpdu = Bytes{1};
  r1.airtime = usec(50);
  medium.transmit(tx, std::move(r1));
  scheduler.run_until_idle();
  EXPECT_TRUE(rx_client.frames.empty());

  medium.set_position(rx, {2, 0});  // moves into the transmitter's cell
  TxRequest r2;
  r2.mpdu = Bytes{2};
  r2.airtime = usec(50);
  medium.transmit(tx, std::move(r2));
  scheduler.run_until_idle();
  ASSERT_EQ(rx_client.frames.size(), 1u);
  EXPECT_EQ(rx_client.frames[0].mpdu, (Bytes{2}));

  medium.set_position(rx, {-30'000, -40'000});  // negative-coordinate cell
  EXPECT_EQ(distance_m(medium.position(tx), medium.position(rx)), 50'000.0);
  TxRequest r3;
  r3.mpdu = Bytes{3};
  r3.airtime = usec(50);
  medium.transmit(tx, std::move(r3));
  scheduler.run_until_idle();
  EXPECT_EQ(rx_client.frames.size(), 1u);  // out of earshot again
}

// ---------------------------------------------------------------------------
// CSMA
// ---------------------------------------------------------------------------

class CsmaTest : public ::testing::Test {
 protected:
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
};

TEST_F(CsmaTest, BroadcastCompletesWithoutAck) {
  RecordingClient tx_client, rx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  medium.attach(&rx_client, {2, 0});
  Csma csma{scheduler, medium, tx, Rng{2}};

  std::optional<Csma::Result> result;
  csma.send(Bytes(100, 0xab), phy::WifiRate::G6, /*expect_ack=*/false,
            [&](const Csma::Result& r) { result = r; });
  scheduler.run_until_idle();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->success);
  EXPECT_EQ(result->transmissions, 1);
  EXPECT_EQ(rx_client.frames.size(), 1u);
}

TEST_F(CsmaTest, WaitsAtLeastDifsBeforeTransmitting) {
  RecordingClient tx_client, rx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  medium.attach(&rx_client, {2, 0});
  Csma csma{scheduler, medium, tx, Rng{2}};

  csma.send(Bytes{1}, phy::WifiRate::G6, false, {});
  scheduler.run_until_idle();
  ASSERT_EQ(medium.stats().transmissions, 1u);
  // First possible TX start is after DIFS (28 us) of observed idle.
  EXPECT_GE(scheduler.now().us(), phy::MacTiming::kDifs.count());
}

TEST_F(CsmaTest, RetriesWithoutAckUntilLimit) {
  RecordingClient tx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  CsmaConfig cfg;
  cfg.retry_limit = 4;
  Csma csma{scheduler, medium, tx, Rng{2}, cfg};

  std::optional<Csma::Result> result;
  csma.send(Bytes(50, 1), phy::WifiRate::G6, /*expect_ack=*/true,
            [&](const Csma::Result& r) { result = r; });
  scheduler.run_until_idle();

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->success);
  EXPECT_EQ(result->transmissions, 5);  // initial + limit reached
  EXPECT_EQ(medium.stats().transmissions, 5u);
}

/// A peer that acknowledges every received frame immediately (an ideal
/// responder well inside the SIFS+ACK timeout).
class AckingClient : public MediumClient {
 public:
  explicit AckingClient(Csma& csma) : csma_(csma) {}
  void on_frame(const RxFrame&) override { csma_.notify_ack(); }
  [[nodiscard]] bool rx_enabled() const override { return true; }

 private:
  Csma& csma_;
};

TEST_F(CsmaTest, AckStopsRetries) {
  RecordingClient tx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  Csma csma{scheduler, medium, tx, Rng{2}};
  AckingClient peer{csma};
  medium.attach(&peer, {2, 0});

  std::optional<Csma::Result> result;
  csma.send(Bytes(50, 1), phy::WifiRate::G6, /*expect_ack=*/true,
            [&](const Csma::Result& r) { result = r; });
  scheduler.run_until_idle();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->success);
  EXPECT_EQ(result->transmissions, 1);
}

TEST_F(CsmaTest, QueuedSendsGoOutInOrder) {
  RecordingClient tx_client, rx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  medium.attach(&rx_client, {2, 0});
  Csma csma{scheduler, medium, tx, Rng{2}};

  csma.send(Bytes{1}, phy::WifiRate::G6, false, {});
  csma.send(Bytes{2}, phy::WifiRate::G6, false, {});
  csma.send(Bytes{3}, phy::WifiRate::G6, false, {});
  scheduler.run_until_idle();

  ASSERT_EQ(rx_client.frames.size(), 3u);
  EXPECT_EQ(rx_client.frames[0].mpdu[0], 1);
  EXPECT_EQ(rx_client.frames[1].mpdu[0], 2);
  EXPECT_EQ(rx_client.frames[2].mpdu[0], 3);
}

TEST_F(CsmaTest, DefersWhileNeighbourTransmits) {
  RecordingClient a_client, b_client, rx_client;
  const NodeId a = medium.attach(&a_client, {0, 0});
  const NodeId b = medium.attach(&b_client, {1, 0});
  medium.attach(&rx_client, {0.5, 1});

  // Long transmission from A occupies the channel.
  TxRequest busy;
  busy.mpdu = Bytes(1000, 9);
  busy.airtime = msec(2);
  medium.transmit(a, std::move(busy));

  Csma csma{scheduler, medium, b, Rng{3}};
  csma.send(Bytes{7}, phy::WifiRate::G6, false, {});
  scheduler.run_until_idle();

  // Both frames must arrive intact: CSMA deferred past A's airtime.
  EXPECT_EQ(rx_client.frames.size(), 2u);
  EXPECT_EQ(rx_client.collisions, 0);
}

}  // namespace
}  // namespace wile::sim
