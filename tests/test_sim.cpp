// Unit tests for src/sim: the event scheduler, the broadcast medium with
// collisions and carrier sense, and the CSMA/CA machine.
#include <gtest/gtest.h>

#include "dot11/frame.hpp"
#include "sim/csma.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"

namespace wile::sim {
namespace {

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(TimePoint{usec(30)}, [&] { order.push_back(3); });
  s.schedule_at(TimePoint{usec(10)}, [&] { order.push_back(1); });
  s.schedule_at(TimePoint{usec(20)}, [&] { order.push_back(2); });
  s.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now().us(), 30);
}

TEST(Scheduler, EqualTimesFireInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(TimePoint{usec(100)}, [&order, i] { order.push_back(i); });
  }
  s.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.schedule_in(usec(10), [&] { fired = true; });
  s.cancel(id);
  s.run_until_idle();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelUnknownIdIsNoOp) {
  Scheduler s;
  s.cancel(12345);  // must not throw
  SUCCEED();
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) s.schedule_in(usec(5), tick);
  };
  s.schedule_in(usec(5), tick);
  s.run_until_idle();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(s.now().us(), 50);
}

TEST(Scheduler, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(TimePoint{usec(10)}, [&] { ++fired; });
  s.schedule_at(TimePoint{usec(100)}, [&] { ++fired; });
  s.run_until(TimePoint{usec(50)});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now().us(), 50);
  s.run_until(TimePoint{usec(200)});
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, ThrowsOnPastEvent) {
  Scheduler s;
  s.schedule_at(TimePoint{usec(10)}, [] {});
  s.run_until_idle();
  EXPECT_THROW(s.schedule_at(TimePoint{usec(5)}, [] {}), std::logic_error);
}

TEST(Scheduler, RunawayLoopGuard) {
  Scheduler s;
  std::function<void()> forever = [&] { s.schedule_in(usec(1), forever); };
  s.schedule_in(usec(1), forever);
  EXPECT_THROW(s.run_until_idle(1000), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Medium
// ---------------------------------------------------------------------------

class RecordingClient : public MediumClient {
 public:
  void on_frame(const RxFrame& frame) override { frames.push_back(frame); }
  void on_corrupt_frame(const RxFrame&, bool collision) override {
    if (collision) {
      ++collisions;
    } else {
      ++channel_losses;
    }
  }
  [[nodiscard]] bool rx_enabled() const override { return listening; }

  bool listening = true;
  std::vector<RxFrame> frames;
  int collisions = 0;
  int channel_losses = 0;
};

class MediumTest : public ::testing::Test {
 protected:
  Scheduler scheduler;
  phy::Channel channel{};
  Medium medium{scheduler, channel, Rng{1}};
};

TEST_F(MediumTest, DeliversToNearbyListener) {
  RecordingClient tx_client, rx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  medium.attach(&rx_client, {2, 0});

  TxRequest req;
  req.mpdu = Bytes{1, 2, 3};
  req.airtime = usec(100);
  req.rate = phy::WifiRate::G6;
  bool completed = false;
  req.on_complete = [&] { completed = true; };
  medium.transmit(tx, std::move(req));
  scheduler.run_until_idle();

  EXPECT_TRUE(completed);
  ASSERT_EQ(rx_client.frames.size(), 1u);
  EXPECT_EQ(rx_client.frames[0].mpdu, (Bytes{1, 2, 3}));
  EXPECT_EQ(rx_client.frames[0].transmitter, tx);
  EXPECT_LT(rx_client.frames[0].rx_power_dbm, 0.0);
  EXPECT_TRUE(tx_client.frames.empty());  // no self-reception
}

TEST_F(MediumTest, OutOfRangeHearsNothing) {
  RecordingClient tx_client, far_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  medium.attach(&far_client, {100'000, 0});

  TxRequest req;
  req.mpdu = Bytes{1};
  req.airtime = usec(50);
  medium.transmit(tx, std::move(req));
  scheduler.run_until_idle();
  EXPECT_TRUE(far_client.frames.empty());
  EXPECT_EQ(far_client.collisions, 0);
}

TEST_F(MediumTest, SleepingRadioMissesFrames) {
  RecordingClient tx_client, rx_client;
  rx_client.listening = false;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  medium.attach(&rx_client, {2, 0});

  TxRequest req;
  req.mpdu = Bytes{1};
  req.airtime = usec(50);
  medium.transmit(tx, std::move(req));
  scheduler.run_until_idle();
  EXPECT_TRUE(rx_client.frames.empty());
}

TEST_F(MediumTest, OverlappingTransmissionsCollideAtReceiver) {
  RecordingClient a_client, b_client, rx_client;
  const NodeId a = medium.attach(&a_client, {0, 0});
  const NodeId b = medium.attach(&b_client, {1, 0});
  medium.attach(&rx_client, {0.5, 1});

  TxRequest ra;
  ra.mpdu = Bytes{1};
  ra.airtime = usec(100);
  medium.transmit(a, std::move(ra));

  scheduler.schedule_in(usec(50), [&] {
    TxRequest rb;
    rb.mpdu = Bytes{2};
    rb.airtime = usec(100);
    medium.transmit(b, std::move(rb));
  });
  scheduler.run_until_idle();

  EXPECT_TRUE(rx_client.frames.empty());
  EXPECT_EQ(rx_client.collisions, 2);
  EXPECT_EQ(medium.stats().collision_losses, 2u + 2u);  // a/b also hear each other
}

TEST_F(MediumTest, NonOverlappingTransmissionsBothArrive) {
  RecordingClient a_client, rx_client;
  const NodeId a = medium.attach(&a_client, {0, 0});
  medium.attach(&rx_client, {1, 0});

  TxRequest r1;
  r1.mpdu = Bytes{1};
  r1.airtime = usec(100);
  medium.transmit(a, std::move(r1));
  scheduler.schedule_in(usec(200), [&] {
    TxRequest r2;
    r2.mpdu = Bytes{2};
    r2.airtime = usec(100);
    medium.transmit(a, std::move(r2));
  });
  scheduler.run_until_idle();
  EXPECT_EQ(rx_client.frames.size(), 2u);
}

TEST_F(MediumTest, CarrierBusyDuringTransmission) {
  RecordingClient a_client, b_client;
  const NodeId a = medium.attach(&a_client, {0, 0});
  const NodeId b = medium.attach(&b_client, {2, 0});

  TxRequest req;
  req.mpdu = Bytes{1};
  req.airtime = usec(100);
  medium.transmit(a, std::move(req));

  EXPECT_TRUE(medium.carrier_busy(a));  // own TX
  EXPECT_TRUE(medium.carrier_busy(b));  // audible neighbour
  scheduler.run_until_idle();
  EXPECT_FALSE(medium.carrier_busy(a));
  EXPECT_FALSE(medium.carrier_busy(b));
}

TEST_F(MediumTest, DoubleTransmitThrows) {
  RecordingClient client;
  const NodeId a = medium.attach(&client, {0, 0});
  TxRequest r1;
  r1.mpdu = Bytes{1};
  r1.airtime = usec(100);
  medium.transmit(a, std::move(r1));
  TxRequest r2;
  r2.mpdu = Bytes{2};
  r2.airtime = usec(100);
  EXPECT_THROW(medium.transmit(a, std::move(r2)), std::logic_error);
}

// ---------------------------------------------------------------------------
// CSMA
// ---------------------------------------------------------------------------

class CsmaTest : public ::testing::Test {
 protected:
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
};

TEST_F(CsmaTest, BroadcastCompletesWithoutAck) {
  RecordingClient tx_client, rx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  medium.attach(&rx_client, {2, 0});
  Csma csma{scheduler, medium, tx, Rng{2}};

  std::optional<Csma::Result> result;
  csma.send(Bytes(100, 0xab), phy::WifiRate::G6, /*expect_ack=*/false,
            [&](const Csma::Result& r) { result = r; });
  scheduler.run_until_idle();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->success);
  EXPECT_EQ(result->transmissions, 1);
  EXPECT_EQ(rx_client.frames.size(), 1u);
}

TEST_F(CsmaTest, WaitsAtLeastDifsBeforeTransmitting) {
  RecordingClient tx_client, rx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  medium.attach(&rx_client, {2, 0});
  Csma csma{scheduler, medium, tx, Rng{2}};

  csma.send(Bytes{1}, phy::WifiRate::G6, false, {});
  scheduler.run_until_idle();
  ASSERT_EQ(medium.stats().transmissions, 1u);
  // First possible TX start is after DIFS (28 us) of observed idle.
  EXPECT_GE(scheduler.now().us(), phy::MacTiming::kDifs.count());
}

TEST_F(CsmaTest, RetriesWithoutAckUntilLimit) {
  RecordingClient tx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  CsmaConfig cfg;
  cfg.retry_limit = 4;
  Csma csma{scheduler, medium, tx, Rng{2}, cfg};

  std::optional<Csma::Result> result;
  csma.send(Bytes(50, 1), phy::WifiRate::G6, /*expect_ack=*/true,
            [&](const Csma::Result& r) { result = r; });
  scheduler.run_until_idle();

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->success);
  EXPECT_EQ(result->transmissions, 5);  // initial + limit reached
  EXPECT_EQ(medium.stats().transmissions, 5u);
}

/// A peer that acknowledges every received frame immediately (an ideal
/// responder well inside the SIFS+ACK timeout).
class AckingClient : public MediumClient {
 public:
  explicit AckingClient(Csma& csma) : csma_(csma) {}
  void on_frame(const RxFrame&) override { csma_.notify_ack(); }
  [[nodiscard]] bool rx_enabled() const override { return true; }

 private:
  Csma& csma_;
};

TEST_F(CsmaTest, AckStopsRetries) {
  RecordingClient tx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  Csma csma{scheduler, medium, tx, Rng{2}};
  AckingClient peer{csma};
  medium.attach(&peer, {2, 0});

  std::optional<Csma::Result> result;
  csma.send(Bytes(50, 1), phy::WifiRate::G6, /*expect_ack=*/true,
            [&](const Csma::Result& r) { result = r; });
  scheduler.run_until_idle();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->success);
  EXPECT_EQ(result->transmissions, 1);
}

TEST_F(CsmaTest, QueuedSendsGoOutInOrder) {
  RecordingClient tx_client, rx_client;
  const NodeId tx = medium.attach(&tx_client, {0, 0});
  medium.attach(&rx_client, {2, 0});
  Csma csma{scheduler, medium, tx, Rng{2}};

  csma.send(Bytes{1}, phy::WifiRate::G6, false, {});
  csma.send(Bytes{2}, phy::WifiRate::G6, false, {});
  csma.send(Bytes{3}, phy::WifiRate::G6, false, {});
  scheduler.run_until_idle();

  ASSERT_EQ(rx_client.frames.size(), 3u);
  EXPECT_EQ(rx_client.frames[0].mpdu[0], 1);
  EXPECT_EQ(rx_client.frames[1].mpdu[0], 2);
  EXPECT_EQ(rx_client.frames[2].mpdu[0], 3);
}

TEST_F(CsmaTest, DefersWhileNeighbourTransmits) {
  RecordingClient a_client, b_client, rx_client;
  const NodeId a = medium.attach(&a_client, {0, 0});
  const NodeId b = medium.attach(&b_client, {1, 0});
  medium.attach(&rx_client, {0.5, 1});

  // Long transmission from A occupies the channel.
  TxRequest busy;
  busy.mpdu = Bytes(1000, 9);
  busy.airtime = msec(2);
  medium.transmit(a, std::move(busy));

  Csma csma{scheduler, medium, b, Rng{3}};
  csma.send(Bytes{7}, phy::WifiRate::G6, false, {});
  scheduler.run_until_idle();

  // Both frames must arrive intact: CSMA deferred past A's airtime.
  EXPECT_EQ(rx_client.frames.size(), 2u);
  EXPECT_EQ(rx_client.collisions, 0);
}

}  // namespace
}  // namespace wile::sim
