// Unit tests for src/power: timelines, energy integration, Eq. (1), and
// the simulated multimeter.
#include <gtest/gtest.h>

#include <cmath>

#include "power/battery.hpp"
#include "power/devices.hpp"
#include "power/timeline.hpp"
#include "power/trace_recorder.hpp"

namespace wile::power {
namespace {

TEST(Timeline, CurrentAtFollowsSegments) {
  PowerTimeline tl{volts(3.3)};
  tl.set_current(TimePoint{usec(0)}, milliamps(10), "a");
  tl.set_current(TimePoint{usec(100)}, milliamps(20), "b");
  EXPECT_NEAR(in_milliamps(tl.current_at(TimePoint{usec(0)})), 10.0, 1e-12);
  EXPECT_NEAR(in_milliamps(tl.current_at(TimePoint{usec(99)})), 10.0, 1e-12);
  EXPECT_NEAR(in_milliamps(tl.current_at(TimePoint{usec(100)})), 20.0, 1e-12);
  EXPECT_NEAR(in_milliamps(tl.current_at(TimePoint{usec(10'000)})), 20.0, 1e-12);
}

TEST(Timeline, BeforeFirstSegmentIsZero) {
  PowerTimeline tl{volts(3.3)};
  tl.set_current(TimePoint{usec(50)}, milliamps(10), "a");
  EXPECT_EQ(tl.current_at(TimePoint{usec(10)}).value, 0.0);
}

TEST(Timeline, EnergyIntegratesPiecewise) {
  PowerTimeline tl{volts(2.0)};
  tl.set_current(TimePoint{usec(0)}, amps(1.0), "a");     // 2 W
  tl.set_current(TimePoint{usec(100)}, amps(0.5), "b");   // 1 W
  // 100 us at 2 W + 100 us at 1 W = 200 uJ + 100 uJ.
  const Joules e = tl.energy_between(TimePoint{usec(0)}, TimePoint{usec(200)});
  EXPECT_NEAR(in_microjoules(e), 300.0, 1e-9);
}

TEST(Timeline, EnergySubrange) {
  PowerTimeline tl{volts(1.0)};
  tl.set_current(TimePoint{usec(0)}, amps(1.0), "a");
  const Joules e = tl.energy_between(TimePoint{usec(40)}, TimePoint{usec(60)});
  EXPECT_NEAR(in_microjoules(e), 20.0, 1e-9);
}

TEST(Timeline, LastSegmentExtendsForever) {
  PowerTimeline tl{volts(1.0)};
  tl.set_current(TimePoint{usec(0)}, amps(2.0), "a");
  const Joules e = tl.energy_between(TimePoint{seconds(10)}, TimePoint{seconds(11)});
  EXPECT_NEAR(e.value, 2.0, 1e-9);
}

TEST(Timeline, MergesIdenticalConsecutiveStates) {
  PowerTimeline tl{volts(3.3)};
  tl.set_current(TimePoint{usec(0)}, milliamps(10), "a");
  tl.set_current(TimePoint{usec(50)}, milliamps(10), "a");
  EXPECT_EQ(tl.segments().size(), 1u);
}

TEST(Timeline, ZeroLengthSegmentReplaced) {
  PowerTimeline tl{volts(3.3)};
  tl.set_current(TimePoint{usec(10)}, milliamps(10), "a");
  tl.set_current(TimePoint{usec(10)}, milliamps(20), "b");
  ASSERT_EQ(tl.segments().size(), 1u);
  EXPECT_NEAR(in_milliamps(tl.segments()[0].current), 20.0, 1e-12);
}

TEST(Timeline, RejectsNonMonotonicUpdates) {
  PowerTimeline tl{volts(3.3)};
  tl.set_current(TimePoint{usec(100)}, milliamps(10), "a");
  EXPECT_THROW(tl.set_current(TimePoint{usec(50)}, milliamps(5), "b"), std::logic_error);
}

TEST(Timeline, AveragePower) {
  PowerTimeline tl{volts(1.0)};
  tl.set_current(TimePoint{usec(0)}, amps(1.0), "a");
  tl.set_current(TimePoint{usec(100)}, amps(3.0), "b");
  const Watts avg = tl.average_power(TimePoint{usec(0)}, TimePoint{usec(200)});
  EXPECT_NEAR(avg.value, 2.0, 1e-9);
}

TEST(Timeline, FindPhaseLocatesRange) {
  PowerTimeline tl{volts(3.3)};
  tl.set_current(TimePoint{usec(0)}, milliamps(1), "Sleep");
  tl.set_current(TimePoint{usec(100)}, milliamps(40), "MC/WiFi init");
  tl.set_current(TimePoint{usec(300)}, milliamps(100), "Tx");
  tl.set_current(TimePoint{usec(400)}, milliamps(1), "Sleep");

  TimePoint start, end;
  ASSERT_TRUE(tl.find_phase("Tx", TimePoint{usec(0)}, &start, &end));
  EXPECT_EQ(start.us(), 300);
  EXPECT_EQ(end.us(), 400);
  EXPECT_FALSE(tl.find_phase("DHCP/ARP", TimePoint{usec(0)}, nullptr, nullptr));
}

// ---------------------------------------------------------------------------
// Equation (1) of the paper
// ---------------------------------------------------------------------------

TEST(Eq1, MatchesHandComputation) {
  // Ptx=0.6 W for 140 us, Pidle=8.25 uW, INT=60 s.
  const Watts p = duty_cycle_average_power(watts(0.6), usec(140), microwatts(8.25),
                                           seconds(60));
  // (0.6*140e-6 + 8.25e-6*(60-0.00014)) / 60 = (84e-6 + 495e-6)/60.
  EXPECT_NEAR(in_microwatts(p), 9.65, 0.01);
}

TEST(Eq1, ShortIntervalApproachesTxPower) {
  const Watts p = duty_cycle_average_power(watts(0.5), msec(100), microwatts(1),
                                           msec(100));
  EXPECT_NEAR(p.value, 0.5, 1e-9);
}

TEST(Eq1, LongIntervalApproachesIdlePower) {
  const Watts p = duty_cycle_average_power(watts(0.5), usec(100), microwatts(10),
                                           minutes(60));
  EXPECT_NEAR(in_microwatts(p), 10.0, 0.2);
}

TEST(Eq1, MonotoneDecreasingInInterval) {
  double last = 1e9;
  for (int s = 10; s <= 300; s += 10) {
    const Watts p = duty_cycle_average_power(watts(0.6), msec(200), microwatts(8.25),
                                             seconds(s));
    EXPECT_LT(p.value, last);
    last = p.value;
  }
}

// ---------------------------------------------------------------------------
// TraceRecorder (the simulated Keysight 34465A)
// ---------------------------------------------------------------------------

TEST(TraceRecorder, SamplesAtConfiguredRate) {
  PowerTimeline tl{volts(3.3)};
  tl.set_current(TimePoint{usec(0)}, milliamps(10), "a");
  TraceRecorder rec;  // 50 kS/s => 20 us period
  const auto trace = rec.record(tl, TimePoint{usec(0)}, TimePoint{msec(1)});
  EXPECT_EQ(trace.size(), 50u);
  EXPECT_NEAR(trace[1].time_s - trace[0].time_s, 20e-6, 1e-9);
  EXPECT_NEAR(trace[0].current_ma, 10.0, 1e-9);
}

TEST(TraceRecorder, CapturesSpikes) {
  PowerTimeline tl{volts(3.3)};
  tl.set_current(TimePoint{usec(0)}, milliamps(1), "idle");
  tl.set_current(TimePoint{usec(500)}, milliamps(200), "tx");
  tl.set_current(TimePoint{usec(640)}, milliamps(1), "idle");
  TraceRecorder rec;
  const auto trace = rec.record(tl, TimePoint{usec(0)}, TimePoint{msec(2)});
  EXPECT_NEAR(TraceRecorder::peak_ma(trace), 200.0, 1e-9);
}

TEST(TraceRecorder, DecimationPreservesPeaks) {
  PowerTimeline tl{volts(3.3)};
  tl.set_current(TimePoint{usec(0)}, milliamps(1), "idle");
  tl.set_current(TimePoint{msec(500)}, milliamps(250), "tx");
  tl.set_current(TimePoint{msec(500) + usec(100)}, milliamps(1), "idle");
  TraceRecorder rec;
  const auto dense = rec.record(tl, TimePoint{usec(0)}, TimePoint{seconds(1)});
  const auto sparse = TraceRecorder::decimate(dense, 200);
  EXPECT_LE(sparse.size(), 200u);
  EXPECT_NEAR(TraceRecorder::peak_ma(sparse), 250.0, 1e-9);
}

TEST(TraceRecorder, CsvHasHeaderAndRows) {
  const std::vector<TraceSample> trace = {{0.0, 1.5}, {0.001, 2.5}};
  const std::string csv = TraceRecorder::to_csv(trace);
  EXPECT_NE(csv.find("time_s,current_mA"), std::string::npos);
  EXPECT_NE(csv.find("0.001000,2.5000"), std::string::npos);
}

TEST(TraceRecorder, MeanOfConstantTrace) {
  PowerTimeline tl{volts(3.3)};
  tl.set_current(TimePoint{usec(0)}, milliamps(42), "x");
  TraceRecorder rec;
  const auto trace = rec.record(tl, TimePoint{usec(0)}, TimePoint{msec(10)});
  EXPECT_NEAR(TraceRecorder::mean_ma(trace), 42.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Device profiles (paper constants)
// ---------------------------------------------------------------------------

TEST(DeviceProfiles, PaperQuotedCurrents) {
  const Esp32PowerProfile esp;
  EXPECT_NEAR(in_microamps(esp.deep_sleep), 2.5, 1e-9);       // §5.1 / Table 1
  EXPECT_NEAR(in_milliamps(esp.light_sleep), 0.8, 1e-9);      // §5.1
  EXPECT_NEAR(in_milliamps(esp.auto_light_sleep_assoc), 4.5, 1e-9);  // Table 1
  EXPECT_NEAR(esp.supply.value, 3.3, 1e-12);

  const Cc2541PowerProfile ble;
  EXPECT_NEAR(in_microamps(ble.sleep), 1.1, 1e-9);  // Table 1
  EXPECT_NEAR(ble.supply.value, 3.0, 1e-12);
}

TEST(DeviceProfiles, WiLeTxEnergyTargetsTable1) {
  // (airtime of a ~90-byte beacon at 72 Mbps + PA ramp) x 0.6 W should
  // land close to the paper's 84 uJ per message.
  const Esp32PowerProfile esp;
  const Watts p_tx = esp.supply * esp.radio_tx;
  EXPECT_NEAR(p_tx.value, 0.6, 0.01);
}

TEST(Battery, LifetimeFiniteUnderPositiveLoad) {
  const BatteryModel cell = BatteryModel::cr2032();
  const double secs = cell.lifetime_seconds(Watts{1e-3});
  EXPECT_TRUE(std::isfinite(secs));
  EXPECT_GT(secs, 0.0);
  // Sanity: ~2 kJ usable at ~1 mW net drain is on the order of weeks.
  EXPECT_NEAR(secs, cell.usable_energy().value /
                        (1e-3 + cell.self_discharge_power().value),
              1e-6);
}

TEST(Battery, LifetimeInfiniteWhenNetDrainNonPositive) {
  // A cell with no self-discharge and no load never empties; same for a
  // net-harvesting (negative) load. Both must report +infinity, not 0.
  BatteryModel ideal = BatteryModel::cr2032();
  ideal.self_discharge_per_year = 0.0;
  EXPECT_TRUE(std::isinf(ideal.lifetime_seconds(Watts{0.0})));
  EXPECT_GT(ideal.lifetime_seconds(Watts{0.0}), 0.0);  // +inf, not -inf

  const BatteryModel real = BatteryModel::cr2032();
  const Watts harvesting{-2.0 * real.self_discharge_power().value};
  EXPECT_TRUE(std::isinf(real.lifetime_seconds(harvesting)));
  // Zero load with real self-discharge stays finite (the cell still dies).
  EXPECT_TRUE(std::isfinite(real.lifetime_seconds(Watts{0.0})));
}

}  // namespace
}  // namespace wile::power
