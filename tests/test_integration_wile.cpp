// Integration tests: Wi-LE end to end over the simulated medium — the
// paper's §4 system (beacon injection, hidden SSID, vendor IE payloads),
// its §5.4 energy accounting, and the §6 extensions (multi-device
// collisions + jitter, two-way RX windows, encryption).
#include <gtest/gtest.h>

#include "wile/controller.hpp"
#include "wile/receiver.hpp"
#include "wile/sender.hpp"

namespace wile::core {
namespace {

class WileIntegration : public ::testing::Test {
 protected:
  sim::Scheduler scheduler_;
  sim::Medium medium_{scheduler_, phy::Channel{}, Rng{1}};
};

TEST_F(WileIntegration, SendNowDeliversToMonitor) {
  SenderConfig cfg;
  cfg.device_id = 0xAA01;
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  Receiver monitor{scheduler_, medium_, {2, 0}};

  std::vector<Message> got;
  monitor.set_message_callback([&](const Message& m, const RxMeta&) { got.push_back(m); });

  std::optional<SendReport> report;
  sender.send_now(Bytes{'1', '7', 'C'}, [&](const SendReport& r) { report = r; });
  scheduler_.run_until_idle();

  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->success);
  EXPECT_EQ(report->beacons_sent, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].device_id, 0xAA01u);
  EXPECT_EQ(got[0].data, (Bytes{'1', '7', 'C'}));
  EXPECT_EQ(monitor.stats().wile_beacons, 1u);
}

TEST_F(WileIntegration, InjectedBeaconUsesHiddenSsid) {
  // A plain 802.11 parser must see a beacon with a zero-length SSID —
  // the §4.1 spam-avoidance property.
  struct BeaconSniffer : sim::MediumClient {
    void on_frame(const sim::RxFrame& frame) override {
      auto parsed = dot11::parse_mpdu(frame.mpdu);
      if (!parsed || !parsed->fcs_ok) return;
      if (!parsed->header.fc.is_mgmt(dot11::MgmtSubtype::Beacon)) return;
      auto beacon = dot11::Beacon::decode(parsed->body);
      if (!beacon) return;
      ++beacons;
      hidden = dot11::has_hidden_ssid(beacon->ies);
      vendor_elements = beacon->ies.find_all(dot11::IeId::VendorSpecific).size();
    }
    [[nodiscard]] bool rx_enabled() const override { return true; }
    int beacons = 0;
    bool hidden = false;
    std::size_t vendor_elements = 0;
  } sniffer;
  medium_.attach(&sniffer, {1, 0});

  SenderConfig cfg;
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  sender.send_now(Bytes{1, 2, 3}, {});
  scheduler_.run_until_idle();

  EXPECT_EQ(sniffer.beacons, 1);
  EXPECT_TRUE(sniffer.hidden);
  EXPECT_EQ(sniffer.vendor_elements, 1u);
}

TEST_F(WileIntegration, SpoofedSsidModeIsVisible) {
  // The ablation arm: advertising an SSID would spam nearby devices'
  // AP lists (what hidden SSID avoids).
  SenderConfig cfg;
  cfg.spoofed_ssid = "IoT-Sensor-17";
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};

  ReceiverConfig strict;
  strict.require_hidden_ssid = true;
  Receiver strict_monitor{scheduler_, medium_, {2, 0}, strict};
  Receiver lax_monitor{scheduler_, medium_, {2, 1}};

  sender.send_now(Bytes{1}, {});
  scheduler_.run_until_idle();

  EXPECT_EQ(strict_monitor.stats().messages, 0u);  // rejected: SSID visible
  EXPECT_EQ(lax_monitor.stats().messages, 1u);
}

TEST_F(WileIntegration, TxOnlyEnergyMatchesTable1) {
  // Table 1: Wi-LE 84 uJ/packet at 72 Mbps, counting only TX time.
  SenderConfig cfg;
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  std::optional<SendReport> report;
  sender.send_now(Bytes(16, 0xab), [&](const SendReport& r) { report = r; });
  scheduler_.run_until_idle();

  ASSERT_TRUE(report.has_value());
  const double uj = in_microjoules(report->tx_only_energy);
  EXPECT_GT(uj, 75.0);
  EXPECT_LT(uj, 95.0);
  // The full cycle (init + shutdown) costs more, but still orders of
  // magnitude below WiFi-DC's ~238 mJ.
  EXPECT_GT(report->cycle_energy.value, report->tx_only_energy.value);
  EXPECT_LT(in_millijoules(report->cycle_energy), 50.0);
}

TEST_F(WileIntegration, DutyCycleDeliversPeriodically) {
  SenderConfig cfg;
  cfg.device_id = 3;
  cfg.period = seconds(10);
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  Receiver monitor{scheduler_, medium_, {2, 0}};

  int counter = 0;
  sender.start_duty_cycle([&] { return Bytes{static_cast<std::uint8_t>(counter++)}; });
  scheduler_.run_until(TimePoint{seconds(61)});
  sender.stop_duty_cycle();

  EXPECT_EQ(monitor.stats().messages, 6u);
  const auto& dev = monitor.devices().at(3);
  EXPECT_EQ(dev.messages, 6u);
  EXPECT_EQ(dev.estimated_losses, 0u);
}

TEST_F(WileIntegration, EncryptedPayloadOnlyReadableWithKey) {
  const Bytes key(16, 0x5c);
  SenderConfig cfg;
  cfg.key = key;
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};

  ReceiverConfig with_key;
  with_key.key = key;
  Receiver keyed{scheduler_, medium_, {2, 0}, with_key};
  Receiver keyless{scheduler_, medium_, {2, 1}};

  sender.send_now(Bytes{'s', 'e', 'c', 'r', 'e', 't'}, {});
  scheduler_.run_until_idle();

  EXPECT_EQ(keyed.stats().messages, 1u);
  EXPECT_EQ(keyless.stats().messages, 0u);
}

TEST_F(WileIntegration, LargePayloadFragmentsAcrossBeacons) {
  SenderConfig cfg;
  cfg.device_id = 9;
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  Receiver monitor{scheduler_, medium_, {2, 0}};

  Rng data_rng{7};
  Bytes big(600);
  for (auto& b : big) b = static_cast<std::uint8_t>(data_rng.below(256));

  std::vector<Message> got;
  monitor.set_message_callback([&](const Message& m, const RxMeta&) { got.push_back(m); });
  std::optional<SendReport> report;
  sender.send_now(big, [&](const SendReport& r) { report = r; });
  scheduler_.run_until_idle();

  ASSERT_TRUE(report.has_value());
  EXPECT_GE(report->beacons_sent, 3);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].data, big);
}

TEST_F(WileIntegration, SequenceGapsEstimateLosses) {
  // Move the receiver to the edge of range so some beacons drop.
  SenderConfig cfg;
  cfg.device_id = 4;
  cfg.period = seconds(1);
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};
  Receiver monitor{scheduler_, medium_, {10.5, 0}};  // at the PER cliff for 72 Mbps

  sender.start_duty_cycle([] { return Bytes{1}; });
  scheduler_.run_until(TimePoint{seconds(120)});
  sender.stop_duty_cycle();

  const auto it = monitor.devices().find(4);
  ASSERT_NE(it, monitor.devices().end());
  const auto& dev = it->second;
  EXPECT_GT(dev.messages, 10u);          // link is lossy but alive
  EXPECT_GT(dev.estimated_losses, 0u);   // and gaps were noticed
  EXPECT_EQ(dev.messages + dev.estimated_losses, dev.last_sequence + 1);
}

TEST_F(WileIntegration, TwoWayDownlinkThroughRxWindow) {
  SenderConfig cfg;
  cfg.device_id = 0xD1;
  cfg.rx_window = RxWindow{msec(2), msec(20)};
  Sender sender{scheduler_, medium_, {0, 0}, cfg, Rng{2}};

  ControllerConfig ctl_cfg;
  Controller controller{scheduler_, medium_, {2, 0}, ctl_cfg, Rng{3}};
  controller.queue_downlink(0xD1, Bytes{'c', 'f', 'g'});

  std::vector<Message> downlinks;
  sender.set_downlink_callback([&](const Message& m) { downlinks.push_back(m); });

  std::optional<SendReport> report;
  sender.send_now(Bytes{1}, [&](const SendReport& r) { report = r; });
  scheduler_.run_until_idle();

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->downlinks_received, 1u);
  ASSERT_EQ(downlinks.size(), 1u);
  EXPECT_EQ(downlinks[0].data, (Bytes{'c', 'f', 'g'}));
  EXPECT_EQ(downlinks[0].type, MessageType::Downlink);
  EXPECT_EQ(controller.stats().downlinks_sent, 1u);
}

TEST_F(WileIntegration, RxWindowCostsEnergyButOnlyWhenEnabled) {
  SenderConfig plain;
  Sender s1{scheduler_, medium_, {0, 0}, plain, Rng{2}};
  std::optional<SendReport> r1;
  s1.send_now(Bytes{1}, [&](const SendReport& r) { r1 = r; });
  scheduler_.run_until_idle();

  SenderConfig windowed;
  windowed.rx_window = RxWindow{msec(2), msec(20)};
  Sender s2{scheduler_, medium_, {0, 1}, windowed, Rng{3}};
  std::optional<SendReport> r2;
  s2.send_now(Bytes{1}, [&](const SendReport& r) { r2 = r; });
  scheduler_.run_until_idle();

  ASSERT_TRUE(r1 && r2);
  EXPECT_GT(r2->cycle_energy.value, r1->cycle_energy.value);
  // TX-only accounting is identical: the window is an RX cost.
  EXPECT_NEAR(in_microjoules(r2->tx_only_energy), in_microjoules(r1->tx_only_energy), 1.0);
}

TEST_F(WileIntegration, CoPeriodicSendersCollideWithoutCsmaOrJitter) {
  // §6: two devices with identical periods and no carrier sense collide
  // persistently; clock jitter disperses them.
  auto run_scenario = [&](bool jitter, Rng seed) {
    sim::Scheduler scheduler;
    sim::Medium medium{scheduler, phy::Channel{}, seed.fork()};
    Receiver monitor{scheduler, medium, {0, 2}};

    std::vector<std::unique_ptr<Sender>> senders;
    for (std::uint32_t i = 0; i < 2; ++i) {
      SenderConfig cfg;
      cfg.device_id = 100 + i;
      cfg.period = seconds(2);
      cfg.use_csma = false;  // raw injection, worst case
      if (jitter) cfg.wake_jitter = msec(5);
      senders.push_back(std::make_unique<Sender>(scheduler, medium,
                                                 sim::Position{static_cast<double>(i), 0},
                                                 cfg, seed.fork()));
      senders.back()->start_duty_cycle([] { return Bytes{0xee}; });
    }
    scheduler.run_until(TimePoint{seconds(121)});
    for (auto& s : senders) s->stop_duty_cycle();
    return monitor.stats().messages;
  };

  const auto without_jitter = run_scenario(false, Rng{50});
  const auto with_jitter = run_scenario(true, Rng{50});
  // 2 senders x 60 cycles = 120 messages possible.
  EXPECT_EQ(without_jitter, 0u);      // perfectly synchronised: all collide
  EXPECT_GT(with_jitter, 100u);       // jitter disperses the overlap
}

TEST_F(WileIntegration, CsmaAvoidsCollisionsEvenWhenSynchronised) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{60}};
  Receiver monitor{scheduler, medium, {0, 2}};

  std::vector<std::unique_ptr<Sender>> senders;
  Rng seed{61};
  for (std::uint32_t i = 0; i < 2; ++i) {
    SenderConfig cfg;
    cfg.device_id = 200 + i;
    cfg.period = seconds(2);
    cfg.use_csma = true;  // carrier sense defers the second injector
    senders.push_back(std::make_unique<Sender>(scheduler, medium,
                                               sim::Position{static_cast<double>(i), 0},
                                               cfg, seed.fork()));
    senders.back()->start_duty_cycle([] { return Bytes{0xcc}; });
  }
  scheduler.run_until(TimePoint{seconds(121)});
  for (auto& s : senders) s->stop_duty_cycle();

  // CSMA cannot fully serialise perfectly-synchronised senders (equal
  // backoff draws still collide, ~1/16 per attempt with CW_min=15), but
  // it must recover most of the traffic the raw injectors lost entirely.
  EXPECT_GT(monitor.stats().messages, 95u);
}

TEST_F(WileIntegration, ManyDevicesRegistryTracksAll) {
  Receiver monitor{scheduler_, medium_, {0, 0}};
  std::vector<std::unique_ptr<Sender>> senders;
  Rng seed{70};
  constexpr int kDevices = 10;
  for (int i = 0; i < kDevices; ++i) {
    SenderConfig cfg;
    cfg.device_id = 1000 + i;
    cfg.period = seconds(5);
    cfg.wake_jitter = msec(50);
    senders.push_back(std::make_unique<Sender>(
        scheduler_, medium_, sim::Position{static_cast<double>(i % 3), i * 0.5}, cfg,
        seed.fork()));
    senders.back()->start_duty_cycle(
        [i] { return Bytes{static_cast<std::uint8_t>(i)}; });
  }
  scheduler_.run_until(TimePoint{seconds(60)});
  for (auto& s : senders) s->stop_duty_cycle();

  EXPECT_EQ(monitor.devices().size(), static_cast<std::size_t>(kDevices));
  for (const auto& [id, dev] : monitor.devices()) {
    EXPECT_GE(dev.messages, 10u) << "device " << id;
  }
}

}  // namespace
}  // namespace wile::core
