// Integration tests: the BLE baseline — link-layer codec plus the
// master/slave connection-event exchange and its CC2541 energy model
// (paper §5.3 "Bluetooth Low Energy (BLE)" scenario).
#include <gtest/gtest.h>

#include "ble/link.hpp"
#include "ble/pdu.hpp"

namespace wile::ble {
namespace {

// ---------------------------------------------------------------------------
// PDU codec
// ---------------------------------------------------------------------------

TEST(BlePdu, AdvertisingRoundTrip) {
  AdvertisingPdu pdu;
  pdu.type = AdvPduType::AdvNonconnInd;
  pdu.advertiser = MacAddress::from_seed(5);
  pdu.adv_data = {0x02, 0x01, 0x06};  // flags AD structure
  const auto back = AdvertisingPdu::decode(pdu.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, AdvPduType::AdvNonconnInd);
  EXPECT_EQ(back->advertiser, pdu.advertiser);
  EXPECT_EQ(back->adv_data, pdu.adv_data);
}

TEST(BlePdu, AdvertisingRejectsOversizedData) {
  AdvertisingPdu pdu;
  pdu.adv_data.resize(32);
  EXPECT_THROW(pdu.encode(), std::invalid_argument);
}

TEST(BlePdu, DataPduRoundTrip) {
  DataPdu pdu;
  pdu.llid = DataPdu::Llid::Start;
  pdu.sn = true;
  pdu.nesn = false;
  pdu.more_data = true;
  pdu.payload = {1, 2, 3};
  const auto back = DataPdu::decode(pdu.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->llid, DataPdu::Llid::Start);
  EXPECT_TRUE(back->sn);
  EXPECT_FALSE(back->nesn);
  EXPECT_TRUE(back->more_data);
  EXPECT_EQ(back->payload, (Bytes{1, 2, 3}));
}

TEST(BlePdu, WhiteningIsSelfInverse) {
  Bytes data = {0x00, 0xff, 0x55, 0xaa, 0x13, 0x37};
  const Bytes original = data;
  whiten(37, data.data(), data.size());
  EXPECT_NE(data, original);  // whitening actually does something
  whiten(37, data.data(), data.size());
  EXPECT_EQ(data, original);
}

TEST(BlePdu, WhiteningDependsOnChannel) {
  Bytes a = {1, 2, 3, 4};
  Bytes b = a;
  whiten(37, a.data(), a.size());
  whiten(38, b.data(), b.size());
  EXPECT_NE(a, b);
}

TEST(BlePdu, AirPacketRoundTripWithCrc) {
  DataPdu pdu;
  pdu.payload = {9, 8, 7};
  const Bytes air = assemble_air_packet(0x50123456, pdu.encode(), 11, 0x0BAD5E);
  const auto back = parse_air_packet(air, 11, 0x0BAD5E);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->crc_ok);
  EXPECT_EQ(back->access_address, 0x50123456u);
  const auto pdu_back = DataPdu::decode(back->pdu);
  ASSERT_TRUE(pdu_back.has_value());
  EXPECT_EQ(pdu_back->payload, (Bytes{9, 8, 7}));
}

TEST(BlePdu, AirPacketCorruptionCaughtByCrc) {
  DataPdu pdu;
  pdu.payload = {9, 8, 7};
  Bytes air = assemble_air_packet(0x50123456, pdu.encode(), 11);
  air[7] ^= 0x40;
  const auto back = parse_air_packet(air, 11);
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->crc_ok);
}

TEST(BlePdu, WrongChannelWhiteningBreaksCrc) {
  DataPdu pdu;
  pdu.payload = {1, 2};
  const Bytes air = assemble_air_packet(0x50123456, pdu.encode(), 11);
  const auto back = parse_air_packet(air, 12);
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->crc_ok);
}

// ---------------------------------------------------------------------------
// Connection events
// ---------------------------------------------------------------------------

class BleLink : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.connection_interval = seconds(1);
    master_ = std::make_unique<BleMaster>(scheduler_, medium_, sim::Position{0, 0}, config_);
    slave_ = std::make_unique<BleSlave>(scheduler_, medium_, sim::Position{2, 0}, config_);
  }

  void start_both() {
    master_->start();
    slave_->start();
  }

  sim::Scheduler scheduler_;
  sim::Medium medium_{scheduler_, phy::Channel{}, Rng{1}};
  BleLinkConfig config_;
  std::unique_ptr<BleMaster> master_;
  std::unique_ptr<BleSlave> slave_;
};

TEST_F(BleLink, SlaveDataReachesMaster) {
  slave_->queue_payload(Bytes{'t', 'e', 'm', 'p'});
  start_both();
  scheduler_.run_until(TimePoint{seconds(2)});

  ASSERT_EQ(master_->received_payloads().size(), 1u);
  EXPECT_EQ(master_->received_payloads()[0], (Bytes{'t', 'e', 'm', 'p'}));
  EXPECT_EQ(slave_->polls_missed(), 0u);
}

TEST_F(BleLink, PeriodicEventsDeliverQueuedPayloads) {
  start_both();
  for (int i = 0; i < 10; ++i) slave_->queue_payload(Bytes{static_cast<std::uint8_t>(i)});
  scheduler_.run_until(TimePoint{seconds(11)});

  ASSERT_EQ(master_->received_payloads().size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(master_->received_payloads()[i][0], i);
  }
  EXPECT_GE(slave_->events_attended(), 10u);
}

TEST_F(BleLink, EventEnergyMatchesTable1) {
  // Table 1: BLE 71 uJ per message (CC2541, TI SWRA347a phases).
  std::vector<BleEventReport> reports;
  slave_->set_event_callback([&](const BleEventReport& r) { reports.push_back(r); });
  for (int i = 0; i < 5; ++i) slave_->queue_payload(Bytes(20, 0x11));
  start_both();
  scheduler_.run_until(TimePoint{seconds(6)});

  ASSERT_GE(reports.size(), 5u);
  for (const auto& r : reports) {
    if (!r.data_sent) continue;
    const double uj = in_microjoules(r.energy);
    EXPECT_GT(uj, 60.0);
    EXPECT_LT(uj, 85.0);
    // TI report: a connection event is a few milliseconds.
    EXPECT_LT(to_seconds(r.active_time), 0.01);
  }
}

TEST_F(BleLink, IdleCurrentIsSleepCurrent) {
  start_both();
  scheduler_.run_until(TimePoint{seconds(10)});
  // Average over a window between events: pick the middle of an interval.
  const TimePoint from = scheduler_.now() + msec(200);
  const TimePoint to = from + msec(500);
  scheduler_.run_until(to);
  const Watts avg = slave_->timeline().average_power(from, to);
  const double ua = in_microamps(avg / volts(3.0));
  EXPECT_NEAR(ua, 1.1, 0.2);
}

TEST_F(BleLink, EmptyQueueSendsEmptyPdu) {
  std::vector<BleEventReport> reports;
  slave_->set_event_callback([&](const BleEventReport& r) { reports.push_back(r); });
  start_both();
  scheduler_.run_until(TimePoint{seconds(3)});

  ASSERT_GE(reports.size(), 2u);
  for (const auto& r : reports) EXPECT_FALSE(r.data_sent);
  EXPECT_TRUE(master_->received_payloads().empty());
  EXPECT_EQ(slave_->polls_missed(), 0u);
}

TEST_F(BleLink, SlaveSleepsThroughMissingMaster) {
  // Master never starts: the slave's RX windows time out and it returns
  // to sleep each time.
  slave_->queue_payload(Bytes{1});
  slave_->start();
  scheduler_.run_until(TimePoint{seconds(5)});
  EXPECT_GE(slave_->polls_missed(), 4u);
  EXPECT_TRUE(master_->received_payloads().empty());
}

TEST_F(BleLink, RejectsOversizedPayload) {
  EXPECT_THROW(slave_->queue_payload(Bytes(28, 0)), std::invalid_argument);
}

TEST_F(BleLink, SlaveLatencySkipsEmptyEvents) {
  BleLinkConfig cfg;
  cfg.connection_interval = seconds(1);
  cfg.slave_latency = 3;
  BleMaster master{scheduler_, medium_, {0, 1}, cfg};
  BleSlave slave{scheduler_, medium_, {2, 1}, cfg};
  master.start();
  slave.start();
  scheduler_.run_until(TimePoint{seconds(12) + msec(500)});

  // With nothing to send, the slave attends only every 4th event.
  EXPECT_GE(slave.events_skipped(), 8u);
  EXPECT_LE(slave.events_attended(), 4u);
  EXPECT_GT(slave.events_attended(), 1u);
}

TEST_F(BleLink, SlaveLatencyStillDeliversQueuedData) {
  BleLinkConfig cfg;
  cfg.connection_interval = seconds(1);
  cfg.slave_latency = 5;
  BleMaster master{scheduler_, medium_, {0, 1}, cfg};
  BleSlave slave{scheduler_, medium_, {2, 1}, cfg};
  master.start();
  slave.start();
  // Queue a payload mid-stream: the slave must attend the next event
  // instead of sleeping through its latency budget.
  scheduler_.schedule_at(TimePoint{seconds(4) + msec(500)},
                         [&] { slave.queue_payload(Bytes{'h', 'i'}); });
  scheduler_.run_until(TimePoint{seconds(7)});

  ASSERT_EQ(master.received_payloads().size(), 1u);
  EXPECT_EQ(master.received_payloads()[0], (Bytes{'h', 'i'}));
}

}  // namespace
}  // namespace wile::ble
