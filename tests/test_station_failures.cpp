// Failure injection for the WiFi client: absent APs, wrong credentials,
// lossy channels, SSID mismatches, and API misuse. The paper's energy
// story assumes the happy path; a production firmware must fail cleanly
// (and go back to sleep!) on all of these.
#include <gtest/gtest.h>

#include "ap/access_point.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "sta/station.hpp"

namespace wile::sta {
namespace {

TEST(StationFailure, NoApGivesUpAndSleeps) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  StationConfig cfg;
  Station sta{scheduler, medium, {0, 0}, cfg, Rng{2}};

  std::optional<CycleReport> report;
  sta.run_duty_cycle_transmission(Bytes{1}, [&](const CycleReport& r) { report = r; });
  scheduler.run_until(TimePoint{seconds(30)});

  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->success);
  // Probe retries happened (retry limit + 1 transmissions of the probe).
  EXPECT_GE(sta.stats().mac_frames_sent, 4u);
  // Crucially the firmware went back to deep sleep: current is 2.5 uA.
  EXPECT_NEAR(in_microamps(sta.timeline().current_at(scheduler.now())), 2.5, 1e-6);
}

TEST(StationFailure, WrongSsidNeverAssociates) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{3}};
  ap.start();

  StationConfig cfg;
  cfg.ssid = "NotThisNetwork";
  Station sta{scheduler, medium, {2, 0}, cfg, Rng{4}};
  std::optional<CycleReport> report;
  sta.run_duty_cycle_transmission(Bytes{1}, [&](const CycleReport& r) { report = r; });
  scheduler.run_until(TimePoint{seconds(30)});

  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->success);
  EXPECT_EQ(ap.stats().probe_responses, 0u);
  EXPECT_EQ(ap.stats().assoc_responses, 0u);
}

TEST(StationFailure, WrongPassphraseFailsHandshake) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ap::AccessPointConfig ap_cfg;  // passphrase "hotnets2019"
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{5}};
  ap.start();

  StationConfig cfg;
  cfg.passphrase = "wrong-password";
  Station sta{scheduler, medium, {2, 0}, cfg, Rng{6}};
  std::optional<CycleReport> report;
  sta.run_duty_cycle_transmission(Bytes{1}, [&](const CycleReport& r) { report = r; });
  scheduler.run_until(TimePoint{seconds(30)});

  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->success);
  // Association itself succeeded (open auth), but the authenticator must
  // have rejected M2's MIC, so the handshake never completed.
  EXPECT_EQ(ap.stats().assoc_responses, 1u);
  EXPECT_EQ(ap.stats().handshakes_completed, 0u);
  EXPECT_FALSE(ap.client_ready(cfg.mac));
}

TEST(StationFailure, LossyChannelRetriesAndStillSucceeds) {
  // Put the STA near the PER cliff for the 6 Mbps management frames'
  // data-rate frames: retransmissions must kick in yet the cycle completes.
  sim::Scheduler scheduler;
  phy::ChannelConfig ch;
  ch.shadowing_sigma_db = 3.0;  // fading: occasional frame losses
  sim::Medium medium{scheduler, phy::Channel{ch}, Rng{17}};
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{8}};
  ap.set_uplink_handler([](const MacAddress&, const net::Ipv4Header&,
                           const net::UdpDatagram&) {});
  ap.start();

  StationConfig cfg;
  cfg.data_rate = phy::WifiRate::Mcs7Sgi;
  Station sta{scheduler, medium, {12.0, 0}, cfg, Rng{9}};
  std::optional<CycleReport> report;
  sta.run_duty_cycle_transmission(Bytes{1}, [&](const CycleReport& r) { report = r; });
  scheduler.run_until(TimePoint{seconds(30)});

  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->success);
  // Shadowed fades at 9 m force some retries over a clean run's count.
  EXPECT_GT(sta.stats().mac_frames_sent, 16u);
}

TEST(StationFailure, ApiMisuseThrows) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  StationConfig cfg;
  Station sta{scheduler, medium, {0, 0}, cfg, Rng{2}};

  // PS send without being associated.
  EXPECT_THROW(sta.power_save_send(Bytes{1}, {}), std::logic_error);

  // Starting a second cycle while one is in flight.
  sta.run_duty_cycle_transmission(Bytes{1}, {});
  EXPECT_THROW(sta.run_duty_cycle_transmission(Bytes{2}, {}), std::logic_error);
  EXPECT_THROW(sta.connect_and_enter_power_save({}), std::logic_error);
}

TEST(StationFailure, FailedCycleEnergyStillAccounted) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  StationConfig cfg;
  Station sta{scheduler, medium, {0, 0}, cfg, Rng{2}};

  std::optional<CycleReport> report;
  sta.run_duty_cycle_transmission(Bytes{1}, [&](const CycleReport& r) { report = r; });
  scheduler.run_until(TimePoint{seconds(30)});

  ASSERT_TRUE(report.has_value());
  // Even a failed attempt burnt init + probe-retry energy; a deployment
  // planning on WiFi-DC must budget for AP outages.
  EXPECT_GT(in_millijoules(report->energy), 50.0);
  EXPECT_GT(to_seconds(report->active_time), 0.5);
}

TEST(StationFailure, SucceedsAfterApComesBack) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  StationConfig cfg;
  Station sta{scheduler, medium, {2, 0}, cfg, Rng{2}};

  // First attempt: no AP.
  std::optional<CycleReport> first;
  sta.run_duty_cycle_transmission(Bytes{1}, [&](const CycleReport& r) { first = r; });
  scheduler.run_until(TimePoint{seconds(30)});
  ASSERT_TRUE(first && !first->success);

  // AP appears; second attempt succeeds.
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{3}};
  ap.set_uplink_handler([](const MacAddress&, const net::Ipv4Header&,
                           const net::UdpDatagram&) {});
  ap.start();
  std::optional<CycleReport> second;
  sta.run_duty_cycle_transmission(Bytes{2}, [&](const CycleReport& r) { second = r; });
  scheduler.run_until(scheduler.now() + seconds(30));
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->success);
}

}  // namespace
}  // namespace wile::sta
