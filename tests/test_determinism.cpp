// Bit-for-bit determinism of the event core, pinned across data-structure
// changes. The simulator's contract (DESIGN.md §9) is that identical seeds
// produce identical runs: same Medium::Stats, same delivered messages in
// the same order with the same timestamps, same energy totals, same event
// count. Two properties are checked over a contended multi-sender scenario:
//
//  1. Repeatability — two runs with the same seeds digest identically.
//  2. Data-structure independence — the spatially-indexed delivery path
//     and the exhaustive dense scan it replaced produce identical runs.
//     The grid must only skip nodes that are provably below the
//     carrier-sense floor (which never consume RNG draws), so switching
//     it on is invisible to the simulation.
//  3. Thread-count independence — the sharded parallel engine at a
//     fixed shard count produces identical runs for threads={1,2,4}.
//     Shard assignment, per-shard RNG streams and the cross-shard merge
//     order are functions of the shard layout alone; threads only pick
//     which worker executes which shard (sim/parallel.hpp). Because a
//     global delivery order does not exist across concurrent shards,
//     the digest is per-gateway (deterministic within a shard) and
//     combined in gateway order.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "wile/receiver.hpp"
#include "wile/scenario.hpp"
#include "wile/sender.hpp"

namespace wile::core {
namespace {

// FNV-1a over everything an application could observe about a delivery.
class Digest {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001b3ULL;
    }
  }
  void add_bytes(const Bytes& data) {
    add(data.size());
    for (std::uint8_t b : data) {
      hash_ ^= b;
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

struct RunResult {
  sim::Medium::Stats medium_stats;
  std::uint64_t message_digest = 0;
  std::uint64_t messages = 0;
  std::uint64_t events_run = 0;
  double total_energy_j = 0.0;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

// A contended neighbourhood: 25 duty-cycled senders 4 m apart (all well
// within carrier-sense range of each other), CSMA on, jittered wakeups,
// one monitor. Thirty simulated seconds of overlapping cycles exercises
// scheduler churn (CSMA defers/cancels), collisions, and the PER draw
// order — everything that could diverge if event or RNG ordering drifted.
RunResult run_reference_scenario(bool grid_enabled) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{0xD37E12}};
  medium.set_spatial_grid_enabled(grid_enabled);

  Receiver monitor{scheduler, medium, {10, 10}};
  Digest digest;
  monitor.set_message_callback([&](const Message& m, const RxMeta& meta) {
    digest.add(m.device_id);
    digest.add(m.sequence);
    digest.add_bytes(m.data);
    digest.add(static_cast<std::uint64_t>(meta.received_at.us()));
  });

  Rng master{0xD7E7E241ULL};
  std::vector<std::unique_ptr<Sender>> senders;
  constexpr int kSide = 5;
  for (int i = 0; i < kSide * kSide; ++i) {
    SenderConfig cfg;
    cfg.device_id = 0x500 + static_cast<std::uint32_t>(i);
    cfg.period = seconds(5);
    cfg.use_csma = true;
    cfg.wake_jitter = msec(200);
    senders.push_back(std::make_unique<Sender>(
        scheduler, medium,
        sim::Position{static_cast<double>(i % kSide) * 4.0,
                      static_cast<double>(i / kSide) * 4.0},
        cfg, master.fork()));
    senders.back()->start_duty_cycle(
        [i] { return Bytes{static_cast<std::uint8_t>(i), 0xA5, 0x17}; });
  }

  scheduler.run_until(TimePoint{seconds(30)});
  for (auto& s : senders) s->stop_duty_cycle();

  RunResult result;
  result.medium_stats = medium.stats();
  result.message_digest = digest.value();
  result.messages = monitor.stats().messages;
  result.events_run = scheduler.events_run();
  for (const auto& s : senders) {
    result.total_energy_j +=
        s->timeline().energy_between(TimePoint{}, TimePoint{seconds(30)}).value;
  }
  return result;
}

TEST(Determinism, IdenticalSeedsProduceIdenticalRuns) {
  const RunResult a = run_reference_scenario(/*grid_enabled=*/true);
  const RunResult b = run_reference_scenario(/*grid_enabled=*/true);

  EXPECT_EQ(a.medium_stats.transmissions, b.medium_stats.transmissions);
  EXPECT_EQ(a.medium_stats.deliveries, b.medium_stats.deliveries);
  EXPECT_EQ(a.medium_stats.collision_losses, b.medium_stats.collision_losses);
  EXPECT_EQ(a.medium_stats.channel_losses, b.medium_stats.channel_losses);
  EXPECT_EQ(a.message_digest, b.message_digest);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.events_run, b.events_run);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);  // bit-exact, not NEAR
}

TEST(Determinism, SpatialGridMatchesDenseScanExactly) {
  const RunResult grid = run_reference_scenario(/*grid_enabled=*/true);
  const RunResult dense = run_reference_scenario(/*grid_enabled=*/false);

  EXPECT_EQ(grid.medium_stats.transmissions, dense.medium_stats.transmissions);
  EXPECT_EQ(grid.medium_stats.deliveries, dense.medium_stats.deliveries);
  EXPECT_EQ(grid.medium_stats.collision_losses, dense.medium_stats.collision_losses);
  EXPECT_EQ(grid.medium_stats.channel_losses, dense.medium_stats.channel_losses);
  EXPECT_EQ(grid.message_digest, dense.message_digest);
  EXPECT_EQ(grid.messages, dense.messages);
  EXPECT_EQ(grid.events_run, dense.events_run);
  EXPECT_EQ(grid.total_energy_j, dense.total_energy_j);
}

// Same contended-neighbourhood shape as run_reference_scenario, but on
// the sharded engine: 100 CSMA senders 4 m apart striped over 8 shards
// (stripe width 5 m, audible radius ~25 m — nearly every transmission
// crosses multiple stripes, the worst case for cross-shard commit).
RunResult run_sharded_scenario(unsigned threads) {
  auto scenario =
      sim::ScenarioBuilder{}
          .devices(100)
          .grid_spacing_m(4.0)
          .gateways(4)
          .duty_cycle(seconds(5))
          .wake_jitter(msec(200))
          .seed(0xD7E7E241ULL)
          .medium_seed(0xD37E12)
          .configure_sender([](SenderConfig& cfg, int) { cfg.use_csma = true; })
          .threads(threads)
          .shards(8)
          .window(msec(10))
          .telemetry(false)
          .build();

  // Per-gateway digests: each gateway fires only on its owning shard's
  // thread, and each writes its own preallocated slot — no shared
  // mutable state between workers.
  auto& gateways = scenario->gateways();
  std::vector<Digest> digests(gateways.size());
  for (std::size_t k = 0; k < gateways.size(); ++k) {
    gateways[k]->set_message_callback(
        [slot = &digests[k]](const Message& m, const RxMeta& meta) {
          slot->add(m.device_id);
          slot->add(m.sequence);
          slot->add_bytes(m.data);
          slot->add(static_cast<std::uint64_t>(meta.received_at.us()));
        });
  }

  scenario->run_for(seconds(30));
  scenario->stop_all();

  RunResult result;
  result.medium_stats = scenario->medium_stats();
  Digest combined;
  for (const Digest& d : digests) combined.add(d.value());
  result.message_digest = combined.value();
  for (const auto& gw : gateways) result.messages += gw->stats().messages;
  result.events_run = scenario->events_run();
  for (const auto& s : scenario->devices()) {
    result.total_energy_j +=
        s->timeline().energy_between(TimePoint{}, TimePoint{seconds(30)}).value;
  }
  return result;
}

TEST(Determinism, ShardedEngineIsThreadCountIndependent) {
  const RunResult one = run_sharded_scenario(1);
  const RunResult two = run_sharded_scenario(2);
  const RunResult four = run_sharded_scenario(4);

  // Traffic sanity first: digests of a dead fleet prove nothing.
  EXPECT_GT(one.medium_stats.transmissions, 100u);
  EXPECT_GT(one.messages, 50u);

  for (const RunResult* other : {&two, &four}) {
    EXPECT_EQ(one.medium_stats.transmissions, other->medium_stats.transmissions);
    EXPECT_EQ(one.medium_stats.deliveries, other->medium_stats.deliveries);
    EXPECT_EQ(one.medium_stats.collision_losses,
              other->medium_stats.collision_losses);
    EXPECT_EQ(one.medium_stats.channel_losses, other->medium_stats.channel_losses);
    EXPECT_EQ(one.message_digest, other->message_digest);
    EXPECT_EQ(one.messages, other->messages);
    EXPECT_EQ(one.events_run, other->events_run);
    EXPECT_EQ(one.total_energy_j, other->total_energy_j);  // bit-exact, not NEAR
  }
}

TEST(Determinism, ShardedEngineIsRepeatable) {
  const RunResult a = run_sharded_scenario(2);
  const RunResult b = run_sharded_scenario(2);
  EXPECT_EQ(a, b);
}

// The WUR mode on the sharded engine: the AP lives on one shard and its
// wake frames reach companions on every other shard through the same
// boundary-phantom path data frames use (RemoteTx carries the rate-less
// OOK waveform's explicit airtime). Wake order, companion RNG streams
// and the woken devices' uplinks must all be functions of the shard
// layout alone, never of the thread count.
RunResult run_sharded_wur_scenario(unsigned threads) {
  auto scenario = sim::ScenarioBuilder{}
                      .devices(100)
                      .grid_spacing_m(4.0)
                      .gateways(4)
                      .duty_cycle(seconds(5))
                      .wake_jitter(msec(200))
                      .seed(0xD7E7E241ULL)
                      .medium_seed(0xD37E12)
                      .wur(sim::WurFleetOptions{})
                      .threads(threads)
                      .shards(8)
                      .window(msec(10))
                      .telemetry(false)
                      .build();

  auto& gateways = scenario->gateways();
  std::vector<Digest> digests(gateways.size());
  for (std::size_t k = 0; k < gateways.size(); ++k) {
    gateways[k]->set_message_callback(
        [slot = &digests[k]](const Message& m, const RxMeta& meta) {
          slot->add(m.device_id);
          slot->add(m.sequence);
          slot->add_bytes(m.data);
          slot->add(static_cast<std::uint64_t>(meta.received_at.us()));
        });
  }

  scenario->run_for(seconds(30));
  scenario->stop_all();

  RunResult result;
  result.medium_stats = scenario->medium_stats();
  Digest combined;
  for (const Digest& d : digests) combined.add(d.value());
  combined.add(scenario->wur_ap()->wakes_sent());
  for (const auto& s : scenario->devices()) combined.add(s->wur_wakes());
  result.message_digest = combined.value();
  for (const auto& gw : gateways) result.messages += gw->stats().messages;
  result.events_run = scenario->events_run();
  for (const auto& s : scenario->devices()) {
    result.total_energy_j +=
        s->timeline().energy_between(TimePoint{}, TimePoint{seconds(30)}).value;
  }
  return result;
}

TEST(Determinism, WurShardedEngineIsThreadCountIndependent) {
  const RunResult one = run_sharded_wur_scenario(1);
  const RunResult two = run_sharded_wur_scenario(2);
  const RunResult four = run_sharded_wur_scenario(4);

  // Traffic sanity first: the AP must actually be waking companions.
  EXPECT_GT(one.medium_stats.transmissions, 100u);
  EXPECT_GT(one.messages, 50u);

  for (const RunResult* other : {&two, &four}) {
    EXPECT_EQ(one.medium_stats.transmissions, other->medium_stats.transmissions);
    EXPECT_EQ(one.medium_stats.deliveries, other->medium_stats.deliveries);
    EXPECT_EQ(one.medium_stats.collision_losses,
              other->medium_stats.collision_losses);
    EXPECT_EQ(one.medium_stats.channel_losses, other->medium_stats.channel_losses);
    EXPECT_EQ(one.message_digest, other->message_digest);
    EXPECT_EQ(one.messages, other->messages);
    EXPECT_EQ(one.events_run, other->events_run);
    EXPECT_EQ(one.total_energy_j, other->total_energy_j);  // bit-exact, not NEAR
  }
}

TEST(Determinism, WurShardedEngineIsRepeatable) {
  const RunResult a = run_sharded_wur_scenario(2);
  const RunResult b = run_sharded_wur_scenario(2);
  EXPECT_EQ(a, b);
}

TEST(Determinism, ScenarioActuallyExercisesTheMedium) {
  // Guard against the scenario silently degenerating (e.g. everyone out
  // of range): the digests above are only meaningful if traffic flowed
  // and contention happened.
  const RunResult r = run_reference_scenario(/*grid_enabled=*/true);
  EXPECT_GT(r.medium_stats.transmissions, 100u);
  EXPECT_GT(r.messages, 100u);
  EXPECT_GT(r.events_run, 1000u);
  EXPECT_GT(r.total_energy_j, 0.0);
}

}  // namespace
}  // namespace wile::core
