// 802.11ba wake-up radio (DESIGN.md §15): the third transmission mode.
//
// Pins the WUR contracts:
//  * WurPhy timing — the 48-bit wake-up frame occupies exactly 920 us at
//    the low rate and 280 us at the high rate, decomposed per 802.11ba;
//  * the wake-frame codec round-trips, masks addresses to 12 bits, and
//    rejects every corruption class (length, frame control, reserved
//    flag bits, 12-bit address overflow, FCS);
//  * wake behaviour end-to-end through a real Scheduler + Medium: a
//    unicast wake runs exactly one cycle, reliability repeats dedupe on
//    the sequence counter, wrong-ID and wrong-group frames are ignored,
//    group wakes fire members, and a disarmed companion stays asleep;
//  * companion-receiver energy settlement across brown-outs — the uW
//    listen overlay rides every parked segment, dies with the board
//    during the dark window (it must not keep integrating), and is
//    restored on recharge; energy integration stays exact across the
//    brown-out boundary and the companion wakes again after recovery;
//  * ScenarioBuilder mode presets (the unified transmission-mode API):
//    an explicit .mode(TxMode::WiLeBeacon) is bit-identical to the
//    historical default path, .mode(TxMode::Ble) is bit-identical to
//    hand-wiring the BLE fleet, and a .wur() fleet delivers samples via
//    AP group wakes with the wake ledger consistent end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ap/wur_scheduler.hpp"
#include "ble/advertiser.hpp"
#include "phy/wur_phy.hpp"
#include "sim/fault.hpp"
#include "wile/receiver.hpp"
#include "wile/scenario.hpp"
#include "wile/sender.hpp"

namespace wile::core {
namespace {

// --- WurPhy timing ----------------------------------------------------------

TEST(WurPhy, FrameAirtimeMatchesStandardTimings) {
  using phy::WurPhy;
  using phy::WurRate;

  EXPECT_EQ(WurPhy::bit_time(WurRate::kLow), usec(16));
  EXPECT_EQ(WurPhy::bit_time(WurRate::kHigh), usec(4));
  EXPECT_EQ(WurPhy::sync_time(WurRate::kLow), usec(128));
  EXPECT_EQ(WurPhy::sync_time(WurRate::kHigh), usec(64));

  // 20 (legacy preamble) + 4 (BPSK-Mark) + sync + 48 bits of OOK body.
  EXPECT_EQ(WurPhy::frame_airtime(WurRate::kLow), usec(20 + 4 + 128 + 48 * 16));
  EXPECT_EQ(WurPhy::frame_airtime(WurRate::kLow), usec(920));
  EXPECT_EQ(WurPhy::frame_airtime(WurRate::kHigh), usec(20 + 4 + 64 + 48 * 4));
  EXPECT_EQ(WurPhy::frame_airtime(WurRate::kHigh), usec(280));

  // The generic PPDU airtime underlying it.
  EXPECT_EQ(WurPhy::ppdu_airtime(0, WurRate::kHigh), usec(88));
  EXPECT_EQ(WurPhy::ppdu_airtime(8, WurRate::kLow), usec(280));
}

// --- wake-frame codec -------------------------------------------------------

TEST(WurCodec, RoundTripsUnicastAndGroupFrames) {
  const phy::WakeUpFrame unicast{/*group_addressed=*/false, /*address=*/0x123,
                                 /*seq=*/7};
  const Bytes body = phy::encode_wakeup_frame(unicast);
  ASSERT_EQ(body.size(), phy::WurPhy::kFrameBytes);
  const auto decoded = phy::decode_wakeup_frame(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, unicast);

  const phy::WakeUpFrame group{/*group_addressed=*/true, /*address=*/0xABC,
                               /*seq=*/255};
  const auto decoded_group = phy::decode_wakeup_frame(phy::encode_wakeup_frame(group));
  ASSERT_TRUE(decoded_group.has_value());
  EXPECT_EQ(*decoded_group, group);
}

TEST(WurCodec, MasksAddressesToTwelveBits) {
  const auto decoded = phy::decode_wakeup_frame(
      phy::encode_wakeup_frame({false, /*address=*/0xFFFF, /*seq=*/1}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->address, phy::WurPhy::kMaxId);
}

TEST(WurCodec, RejectsEveryCorruptionClass) {
  const Bytes good = phy::encode_wakeup_frame({false, 0x123, 7});
  ASSERT_TRUE(phy::decode_wakeup_frame(good).has_value());

  // Wrong length: truncated and padded bodies are not WUR frames.
  EXPECT_FALSE(phy::decode_wakeup_frame(BytesView{good.data(), good.size() - 1}));
  Bytes padded = good;
  padded.push_back(0x00);
  EXPECT_FALSE(phy::decode_wakeup_frame(padded).has_value());

  // Wrong frame control: Wi-LE beacons / 802.11 MPDUs never alias.
  Bytes bad_fc = good;
  bad_fc[0] = 0x80;  // a beacon's first byte
  EXPECT_FALSE(phy::decode_wakeup_frame(bad_fc).has_value());

  // Reserved flag bits set.
  Bytes bad_flags = good;
  bad_flags[1] |= 0x02;
  EXPECT_FALSE(phy::decode_wakeup_frame(bad_flags).has_value());

  // Address overflows 12 bits on the wire.
  Bytes bad_addr = good;
  bad_addr[3] |= 0x10;
  EXPECT_FALSE(phy::decode_wakeup_frame(bad_addr).has_value());

  // FCS: a single flipped payload bit is caught.
  Bytes bad_crc = good;
  bad_crc[4] ^= 0x01;
  EXPECT_FALSE(phy::decode_wakeup_frame(bad_crc).has_value());
}

// --- wake behaviour through the medium --------------------------------------

struct WurRig {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{0xD37E12}};
  std::unique_ptr<Sender> sender;
  std::unique_ptr<ap::WurScheduler> ap;
  Receiver monitor{scheduler, medium, {2, 0}};
  std::uint64_t deliveries = 0;

  explicit WurRig(WurCompanionConfig wur, ap::WurSchedulerConfig ap_cfg = {}) {
    SenderConfig cfg;
    cfg.device_id = 0x42;
    cfg.wur = wur;
    sender = std::make_unique<Sender>(scheduler, medium, sim::Position{0, 0}, cfg,
                                      Rng{0xBEEF});
    ap = std::make_unique<ap::WurScheduler>(scheduler, medium, sim::Position{0, 1},
                                            Rng{0x11BA}, ap_cfg);
    monitor.set_message_callback(
        [this](const Message&, const RxMeta&) { ++deliveries; });
    sender->arm_wur([] { return Bytes{0x17, 0xC0}; });
  }
};

TEST(WurWake, UnicastWakeRunsExactlyOneCycle) {
  WurRig rig{WurCompanionConfig{}};
  // Unset WUR ID derives from the device ID, masked to 12 bits.
  EXPECT_EQ(rig.sender->wur_id(), 0x42);

  rig.ap->wake(rig.sender->wur_id());
  rig.scheduler.run_until_idle();

  EXPECT_EQ(rig.ap->wakes_sent(), 1u);
  EXPECT_EQ(rig.sender->wur_wakes(), 1u);
  EXPECT_EQ(rig.sender->cycles_run(), 1u);
  EXPECT_EQ(rig.sender->wur_frames_ignored(), 0u);
  EXPECT_EQ(rig.deliveries, 1u);
  // The AP's airtime ledger counted one high-rate wake frame.
  EXPECT_EQ(rig.ap->tx_airtime_total(),
            phy::WurPhy::frame_airtime(phy::WurRate::kHigh));
}

TEST(WurWake, ReliabilityRepeatsDedupeOnSequence) {
  // Two back-to-back copies of the same wake frame; stretch the decode
  // latency so the repeat still finds the main radio in deep sleep.
  WurCompanionConfig wur;
  wur.receiver.wake_latency = msec(5);
  ap::WurSchedulerConfig ap_cfg;
  ap_cfg.repeats = 2;
  WurRig rig{wur, ap_cfg};

  rig.ap->wake(rig.sender->wur_id());
  rig.scheduler.run_until_idle();

  EXPECT_EQ(rig.ap->wakes_sent(), 2u);  // two frames on the air...
  EXPECT_EQ(rig.sender->wur_wakes(), 1u);
  EXPECT_EQ(rig.sender->cycles_run(), 1u);
  EXPECT_EQ(rig.sender->wur_frames_ignored(), 1u);  // ...second one deduped
  EXPECT_EQ(rig.deliveries, 1u);
}

TEST(WurWake, WrongIdAndWrongGroupAreIgnored) {
  WurCompanionConfig wur;
  wur.group_id = 7;
  WurRig rig{wur};

  rig.ap->wake(rig.sender->wur_id() + 1);  // someone else's companion
  rig.scheduler.run_until_idle();
  rig.ap->wake_group(8);  // a group this device is not a member of
  rig.scheduler.run_until_idle();

  EXPECT_EQ(rig.sender->wur_wakes(), 0u);
  EXPECT_EQ(rig.sender->cycles_run(), 0u);
  EXPECT_EQ(rig.sender->wur_frames_ignored(), 2u);
  EXPECT_EQ(rig.deliveries, 0u);
}

TEST(WurWake, GroupWakeFiresMembers) {
  WurCompanionConfig wur;
  wur.group_id = 7;
  WurRig rig{wur};

  rig.ap->wake_group(7);
  rig.scheduler.run_until_idle();

  EXPECT_EQ(rig.sender->wur_wakes(), 1u);
  EXPECT_EQ(rig.sender->cycles_run(), 1u);
  EXPECT_EQ(rig.deliveries, 1u);
}

TEST(WurWake, DisarmedCompanionStaysAsleep) {
  WurRig rig{WurCompanionConfig{}};
  rig.sender->disarm_wur();

  rig.ap->wake(rig.sender->wur_id());
  rig.scheduler.run_until_idle();

  EXPECT_EQ(rig.sender->wur_wakes(), 0u);
  EXPECT_EQ(rig.sender->cycles_run(), 0u);
  EXPECT_EQ(rig.sender->wur_frames_ignored(), 1u);
}

// --- companion energy settlement across brown-outs --------------------------

Amps current_at(const power::PowerTimeline& timeline, TimePoint t) {
  Amps current{0.0};
  for (const power::Segment& seg : timeline.segments()) {
    if (seg.start > t) break;
    current = seg.current;
  }
  return current;
}

TEST(WurPower, ListenOverlayDiesInBrownOutAndReturnsOnRecharge) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{0xD37E12}};

  SenderConfig cfg;
  cfg.device_id = 0x77;
  cfg.wur = WurCompanionConfig{};
  HarvestingConfig h;
  h.harvester.harvest_power = Watts{10e-3};
  cfg.harvesting = h;
  Sender sender{scheduler, medium, sim::Position{0, 0}, cfg, Rng{0xBEEF}};
  sender.arm_wur([] { return Bytes{0x17}; });

  const Amps listen = cfg.wur->receiver.listen;
  const Amps parked = cfg.power.deep_sleep + listen;

  // Armed and parked: the uW listen draw rides on top of deep sleep.
  scheduler.run_until(TimePoint{seconds(2)});
  EXPECT_EQ(current_at(sender.timeline(), TimePoint{seconds(1)}).value, parked.value);
  ASSERT_FALSE(sender.timeline().segments().empty());
  EXPECT_EQ(sender.timeline().segments().back().phase, "WurListen");

  // Brown out the idle board at t = 2 s: dark means *zero* draw — the
  // companion receiver must not keep integrating its overlay.
  sim::FaultInjector faults{scheduler, medium, Rng{0xFA11}};
  faults.attach_energy_target(sender.energy_governor());
  faults.brown_out(TimePoint{seconds(2)}, *sender.energy_governor());
  scheduler.run_until(TimePoint{msec(2100)});
  EXPECT_EQ(sender.brown_outs(), 1u);
  EXPECT_TRUE(sender.recovering());
  EXPECT_EQ(current_at(sender.timeline(), TimePoint{msec(2050)}).value, 0.0);

  // Recharge restores the overlay and the WurListen phase.
  scheduler.run_until(TimePoint{seconds(30)});
  EXPECT_FALSE(sender.recovering());
  EXPECT_EQ(sender.timeline().segments().back().phase, "WurListen");
  EXPECT_EQ(sender.timeline().segments().back().current.value, parked.value);

  // Energy settlement is exact across the brown-out boundary: splitting
  // the integral at the dark window loses nothing.
  const TimePoint end{seconds(30)};
  const Joules whole = sender.timeline().energy_between(TimePoint{}, end);
  const Joules split =
      sender.timeline().energy_between(TimePoint{}, TimePoint{msec(2050)}) +
      sender.timeline().energy_between(TimePoint{msec(2050)}, end);
  EXPECT_EQ(whole.value, split.value);
  // And the dark stretch right after the cutoff integrates to zero.
  EXPECT_EQ(sender.timeline()
                .energy_between(TimePoint{msec(2001)}, TimePoint{msec(2050)})
                .value,
            0.0);

  // The companion is functional again after recovery.
  ap::WurScheduler ap{scheduler, medium, sim::Position{0, 1}, Rng{0x11BA}};
  ap.wake(sender.wur_id());
  scheduler.run_until(TimePoint{seconds(35)});
  EXPECT_EQ(sender.wur_wakes(), 1u);
  EXPECT_EQ(sender.cycles_run(), 1u);
}

// --- ScenarioBuilder mode presets -------------------------------------------

struct FleetDigest {
  std::uint64_t events = 0;
  sim::Medium::Stats medium{};
  std::uint64_t messages = 0;

  friend bool operator==(const FleetDigest& a, const FleetDigest& b) {
    return a.events == b.events && a.messages == b.messages &&
           a.medium.transmissions == b.medium.transmissions &&
           a.medium.deliveries == b.medium.deliveries &&
           a.medium.collision_losses == b.medium.collision_losses &&
           a.medium.channel_losses == b.medium.channel_losses;
  }
};

FleetDigest run_wile_fleet(bool explicit_mode) {
  sim::ScenarioBuilder b;
  if (explicit_mode) b.mode(TxMode::WiLeBeacon);
  auto scenario =
      b.devices(6).duty_cycle(seconds(2)).telemetry(false).build();
  scenario->run_until(TimePoint{seconds(10)});
  return {scenario->scheduler().events_run(), scenario->medium().stats(),
          scenario->messages()};
}

TEST(TxModePreset, ExplicitWiLeBeaconIsBitIdenticalToDefaultPath) {
  const FleetDigest implicit = run_wile_fleet(false);
  const FleetDigest explicit_mode = run_wile_fleet(true);
  EXPECT_TRUE(implicit == explicit_mode);
  EXPECT_GT(implicit.messages, 0u);
}

/// The BLE fleet the mode preset assembles, by hand, in the exact
/// historical order (see Scenario::build_ble): advertisers with
/// master.fork() + staggered starts, then the scanner on the diagonal.
FleetDigest run_hand_wired_ble(int n, int sim_seconds) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{0xF1EE7}};

  constexpr double kSpacingM = 5.0;  // the builder's default grid
  const int side = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  const double extent = side * kSpacingM;
  constexpr std::uint64_t kPeriodUs = 2'000'000;

  Rng master{0xF1EE7C0DE};
  std::vector<std::unique_ptr<ble::BleAdvertiser>> advertisers;
  for (int i = 0; i < n; ++i) {
    ble::BleAdvertiserConfig cfg;
    cfg.address =
        MacAddress::from_seed(0xB1E0'0000u + static_cast<std::uint64_t>(i) + 1);
    cfg.adv_interval = seconds(2);
    cfg.adv_delay_max = msec(10);  // the preset's default advDelay
    const sim::Position pos{(i % side) * kSpacingM, (i / side) * kSpacingM};
    advertisers.push_back(std::make_unique<ble::BleAdvertiser>(
        scheduler, medium, pos, cfg, master.fork()));
    ble::BleAdvertiser* a = advertisers.back().get();
    const auto start_us = static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(i) * kPeriodUs) / static_cast<std::uint64_t>(n));
    scheduler.schedule_at(TimePoint{usec(start_us)},
                          [a] { a->start([] { return Bytes(16, 0xA5); }); });
  }

  std::uint64_t pdus = 0;
  ble::BleScanner scanner{scheduler, medium,
                          sim::Position{0.5 * extent, 0.5 * extent}};
  scanner.set_callback([&pdus](const ble::AdvertisingPdu&, double) { ++pdus; });

  scheduler.run_until(TimePoint{seconds(sim_seconds)});
  return {scheduler.events_run(), medium.stats(), pdus};
}

TEST(TxModePreset, BleModeIsBitIdenticalToHandWiring) {
  constexpr int kN = 6;
  constexpr int kSimSeconds = 10;
  const FleetDigest legacy = run_hand_wired_ble(kN, kSimSeconds);

  auto scenario = sim::ScenarioBuilder{}
                      .mode(TxMode::Ble)
                      .devices(kN)
                      .duty_cycle(seconds(2))
                      .telemetry(false)
                      .build();
  EXPECT_EQ(scenario->tx_mode(), TxMode::Ble);
  EXPECT_EQ(scenario->ble_devices().size(), static_cast<std::size_t>(kN));
  scenario->run_until(TimePoint{seconds(kSimSeconds)});

  EXPECT_EQ(scenario->scheduler().events_run(), legacy.events);
  EXPECT_EQ(scenario->medium().stats().transmissions, legacy.medium.transmissions);
  EXPECT_EQ(scenario->medium().stats().deliveries, legacy.medium.deliveries);
  EXPECT_EQ(scenario->medium().stats().collision_losses,
            legacy.medium.collision_losses);
  EXPECT_EQ(scenario->medium().stats().channel_losses, legacy.medium.channel_losses);
  EXPECT_EQ(scenario->messages(), legacy.messages);
  EXPECT_GT(scenario->messages(), 0u);  // guard against silent fleets
}

TEST(TxModePreset, WurFleetDeliversViaGroupWakes) {
  sim::WurFleetOptions wur;
  wur.group_id = 9;
  wur.cadence = seconds(2);
  auto scenario = sim::ScenarioBuilder{}
                      .devices(8)
                      .duty_cycle(seconds(2))
                      .wur(wur)
                      .telemetry(false)
                      .gateways(1)
                      .build();
  EXPECT_EQ(scenario->tx_mode(), TxMode::Wur);
  ASSERT_NE(scenario->wur_ap(), nullptr);

  scenario->run_until(TimePoint{seconds(11)});

  // Group wakes at 2,4,6,8,10 s; every member woke on every sweep.
  EXPECT_EQ(scenario->wur_ap()->wakes_sent(), 5u);
  std::uint64_t total_wakes = 0;
  for (const auto& s : scenario->devices()) {
    EXPECT_GT(s->wur_wakes(), 0u);
    total_wakes += s->wur_wakes();
  }
  EXPECT_EQ(total_wakes, 8u * 5u);
  EXPECT_GT(scenario->messages(), 0u);
}

}  // namespace
}  // namespace wile::core
