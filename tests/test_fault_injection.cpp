// Fault-injection subsystem + self-healing recovery, end to end.
//
// The headline scenario is the ISSUE's acceptance criterion: with the AP
// down for 30 s mid-run and a 10 % duty-cycle jammer on the air, the
// gateway must detect the dead uplink, re-associate once the AP returns,
// and keep forwarding — with a recovery latency that is a deterministic
// function of the seeds.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "ap/access_point.hpp"
#include "sim/fault.hpp"
#include "wile/gateway.hpp"
#include "wile/receiver.hpp"
#include "wile/sender.hpp"

namespace wile {
namespace {

using sim::FaultInjector;
using sim::JammerConfig;
using sim::Medium;
using sim::Scheduler;

TEST(FaultInjector, WindowsTrackGaugeAndRestoreNoise) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  FaultInjector fi{scheduler, medium, Rng{2}};

  fi.noise_floor_rise(TimePoint{seconds(1)}, seconds(2), 6.0);
  fi.noise_floor_rise(TimePoint{seconds(2)}, seconds(2), 4.0);  // overlaps

  std::vector<double> offsets;
  std::vector<std::uint64_t> active;
  for (int t = 0; t < 5; ++t) {
    scheduler.schedule_at(TimePoint{seconds(t) + msec(500)}, [&] {
      offsets.push_back(medium.noise_offset_db());
      active.push_back(fi.stats().fault_windows_active);
    });
  }
  scheduler.run_until(TimePoint{seconds(5)});

  EXPECT_EQ(offsets, (std::vector<double>{0.0, 6.0, 10.0, 4.0, 0.0}));
  EXPECT_EQ(active, (std::vector<std::uint64_t>{0, 1, 2, 1, 0}));
  EXPECT_EQ(fi.stats().windows_scheduled, 2u);
  EXPECT_EQ(fi.stats().windows_started, 2u);
  EXPECT_EQ(fi.stats().windows_ended, 2u);
  EXPECT_FALSE(fi.any_active());
}

TEST(FaultInjector, PerMultiplierStacksAndValidates) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  FaultInjector fi{scheduler, medium, Rng{2}};

  EXPECT_THROW(fi.per_multiplier(TimePoint{}, seconds(1), 0.0), std::invalid_argument);
  EXPECT_THROW(fi.window(TimePoint{}, seconds(-1), {}, {}), std::invalid_argument);

  fi.per_multiplier(TimePoint{seconds(1)}, seconds(2), 4.0);
  fi.per_multiplier(TimePoint{seconds(2)}, seconds(2), 2.0);
  std::vector<double> probes;
  for (int t = 0; t < 5; ++t) {
    scheduler.schedule_at(TimePoint{seconds(t) + msec(500)},
                          [&] { probes.push_back(medium.per_multiplier()); });
  }
  scheduler.run_until(TimePoint{seconds(5)});
  EXPECT_EQ(probes, (std::vector<double>{1.0, 4.0, 8.0, 2.0, 1.0}));
}

TEST(FaultInjector, RadioDeafnessBlanksAReceiver) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  core::Receiver rx{scheduler, medium, {1, 0}};
  core::SenderConfig cfg;
  cfg.device_id = 7;
  cfg.period = seconds(1);
  core::Sender sensor{scheduler, medium, {0, 0}, cfg, Rng{3}};

  FaultInjector fi{scheduler, medium, Rng{4}};
  // Deaf from t=10 s to t=20 s: roughly ten duty cycles vanish.
  fi.radio_deaf(TimePoint{seconds(10)}, seconds(10), rx.node_id());

  sensor.start_duty_cycle([] { return Bytes{0xAB}; });
  std::uint64_t before_deaf = 0;
  std::uint64_t during_deaf = 0;
  scheduler.schedule_at(TimePoint{seconds(10)}, [&] { before_deaf = rx.stats().messages; });
  scheduler.schedule_at(TimePoint{seconds(20)}, [&] { during_deaf = rx.stats().messages; });
  scheduler.run_until(TimePoint{seconds(30)});
  sensor.stop_duty_cycle();

  EXPECT_GE(before_deaf, 8u);
  EXPECT_EQ(during_deaf, before_deaf);  // nothing heard while deaf
  EXPECT_GT(rx.stats().messages, during_deaf);  // hearing resumes
  // The receiver's own loss estimator should notice the sequence gap.
  ASSERT_EQ(rx.devices().count(7u), 1u);
  EXPECT_GE(rx.devices().at(7u).estimated_losses, 8u);
}

TEST(FaultInjector, JammerDegradesDeliveryOnlyWhileActive) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  core::Receiver rx{scheduler, medium, {1, 0}};
  core::SenderConfig cfg;
  cfg.device_id = 9;
  cfg.period = msec(500);
  cfg.use_csma = false;  // cheapest injector: no deference, pure collisions
  core::Sender sensor{scheduler, medium, {0, 0}, cfg, Rng{3}};

  FaultInjector fi{scheduler, medium, Rng{4}};
  JammerConfig jam;
  jam.position = {0.5, 0};
  jam.duty_cycle = 0.9;  // near-continuous: most frames must die
  jam.period = msec(2);
  fi.jammer(TimePoint{seconds(10)}, seconds(10), jam);

  sensor.start_duty_cycle([] { return Bytes{0x01}; });
  std::uint64_t clean = 0;
  std::uint64_t jammed = 0;
  scheduler.schedule_at(TimePoint{seconds(10)}, [&] { clean = rx.stats().messages; });
  scheduler.schedule_at(TimePoint{seconds(20)}, [&] { jammed = rx.stats().messages; });
  scheduler.run_until(TimePoint{seconds(30)});
  sensor.stop_duty_cycle();

  const std::uint64_t during = jammed - clean;
  const std::uint64_t after = rx.stats().messages - jammed;
  EXPECT_GE(clean, 15u);                    // ~20 cycles clean
  EXPECT_LT(during, clean / 2);             // jammer shreds the window
  EXPECT_GE(after, clean / 2);              // and releases it afterwards
  EXPECT_GT(fi.stats().jammer_bursts, 1000u);
  EXPECT_GT(rx.stats().collisions_observed, 0u);
}

TEST(FaultInjector, ClockDriftStepStretchesThePeriod) {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};
  core::SenderConfig cfg;
  cfg.device_id = 11;
  cfg.period = seconds(1);
  core::Sender sensor{scheduler, medium, {0, 0}, cfg, Rng{3}};

  FaultInjector fi{scheduler, medium, Rng{4}};
  // +500000 ppm = +50 % period from t=30 s: a gross step, sized so the
  // cycle-count change is unmistakable over a 30 s half-window.
  fi.at(TimePoint{seconds(30)}, [&] { sensor.apply_clock_drift_ppm(500000.0); });

  sensor.start_duty_cycle([] { return Bytes{0x02}; });
  std::uint64_t at_30 = 0;
  scheduler.schedule_at(TimePoint{seconds(30)}, [&] { at_30 = sensor.cycles_run(); });
  scheduler.run_until(TimePoint{seconds(60)});
  sensor.stop_duty_cycle();

  EXPECT_EQ(fi.stats().events_fired, 1u);
  const std::uint64_t first_half = at_30;
  const std::uint64_t second_half = sensor.cycles_run() - at_30;
  EXPECT_GE(first_half, 28u);
  // 1.5 s wake-to-wake: ~20 cycles instead of ~30.
  EXPECT_LT(second_half, first_half - 5);
  EXPECT_GT(second_half, 15u);
}

// ---------------------------------------------------------------------------
// The headline scenario.
// ---------------------------------------------------------------------------

struct ScenarioResult {
  bool uplink_ready_at_end = false;
  std::uint64_t forwarded_mid = 0;   // at t=95 s, just after the AP returns
  std::uint64_t forwarded_end = 0;
  std::uint64_t uplink_losses = 0;
  std::uint64_t reassociations = 0;
  std::optional<TimePoint> recovered_at;  // first uplink_ready() after t=90 s
};

ScenarioResult run_outage_scenario() {
  Scheduler scheduler;
  Medium medium{scheduler, phy::Channel{}, Rng{1}};

  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{10}};
  std::uint64_t server_datagrams = 0;
  ap.set_uplink_handler(
      [&](const MacAddress&, const net::Ipv4Header&, const net::UdpDatagram&) {
        ++server_datagrams;
      });
  ap.start();

  core::GatewayConfig gw_cfg;
  gw_cfg.station.mac = MacAddress::from_seed(0x6A7E);
  core::Gateway gateway{scheduler, medium, {3, 0}, gw_cfg, Rng{20}};
  bool ready = false;
  gateway.start([&](bool ok) { ready = ok; });
  scheduler.run_until(TimePoint{seconds(10)});
  EXPECT_TRUE(ready);

  core::SenderConfig sensor_cfg;
  sensor_cfg.device_id = 0x501;
  sensor_cfg.period = seconds(2);
  core::Sender sensor{scheduler, medium, {5, 0}, sensor_cfg, Rng{30}};
  sensor.start_duty_cycle([] { return Bytes{'o', 'k'}; });

  FaultInjector fi{scheduler, medium, Rng{7}};
  // AP hard-down for 30 s in the middle of the run...
  fi.window(TimePoint{seconds(60)}, seconds(30), [&] { ap.stop(); }, [&] { ap.start(); });
  // ...under a 10 % duty-cycle jammer covering the outage and recovery.
  JammerConfig jam;
  jam.position = {4, 1};
  jam.duty_cycle = 0.10;
  fi.jammer(TimePoint{seconds(40)}, seconds(80), jam);

  ScenarioResult result;
  // Recovery probe: 100 ms resolution, deterministic for fixed seeds.
  for (int i = 0; i < 600; ++i) {
    scheduler.schedule_at(TimePoint{seconds(90) + msec(100 * i)}, [&, now = TimePoint{seconds(90) + msec(100 * i)}] {
      if (!result.recovered_at && gateway.uplink_ready()) result.recovered_at = now;
    });
  }
  scheduler.schedule_at(TimePoint{seconds(95)},
                        [&] { result.forwarded_mid = gateway.stats().forwarded; });

  scheduler.run_until(TimePoint{seconds(180)});
  sensor.stop_duty_cycle();

  result.uplink_ready_at_end = gateway.uplink_ready();
  result.forwarded_end = gateway.stats().forwarded;
  result.uplink_losses = gateway.stats().uplink_losses;
  result.reassociations = gateway.stats().reassociations;
  EXPECT_EQ(fi.stats().windows_scheduled, 2u);
  EXPECT_EQ(fi.stats().windows_ended, 2u);
  EXPECT_FALSE(fi.any_active());
  return result;
}

TEST(FaultScenario, GatewaySurvivesApOutageUnderJamming) {
  const ScenarioResult r = run_outage_scenario();

  // The outage was noticed and healed.
  EXPECT_GE(r.uplink_losses, 1u);
  EXPECT_GE(r.reassociations, 1u);
  EXPECT_TRUE(r.uplink_ready_at_end);

  // Forwarding resumed after the AP returned and kept increasing.
  EXPECT_GT(r.forwarded_end, r.forwarded_mid);
  EXPECT_GT(r.forwarded_end, 30u);  // ~85 cycles total, most must land

  // Recovery happened, and promptly: backoff is capped at 8 s, so the
  // gateway must be back well inside 20 s of the AP's return.
  ASSERT_TRUE(r.recovered_at.has_value());
  EXPECT_LT(*r.recovered_at, TimePoint{seconds(110)});
}

TEST(FaultScenario, RecoveryLatencyIsDeterministic) {
  const ScenarioResult a = run_outage_scenario();
  const ScenarioResult b = run_outage_scenario();
  ASSERT_TRUE(a.recovered_at.has_value());
  ASSERT_TRUE(b.recovered_at.has_value());
  EXPECT_EQ(*a.recovered_at, *b.recovered_at);
  EXPECT_EQ(a.forwarded_end, b.forwarded_end);
  EXPECT_EQ(a.uplink_losses, b.uplink_losses);
  EXPECT_EQ(a.reassociations, b.reassociations);
}

}  // namespace
}  // namespace wile
