// Forward erasure correction on the ack-less uplink: group parity
// inside fragmented messages, cross-cycle XOR recovery beacons, the
// ChannelReport downlink, and the loss-adaptive redundancy state
// machine. Everything here is deterministic for the pinned seeds.
#include <gtest/gtest.h>

#include <set>

#include "sim/fault.hpp"
#include "wile/controller.hpp"
#include "wile/receiver.hpp"
#include "wile/sender.hpp"

namespace wile::core {
namespace {

// ---------------------------------------------------------------------------
// Codec level: parity element encode/decode and XOR reconstruction.
// ---------------------------------------------------------------------------

Message fragmented_message(const Codec& codec, std::size_t fragments) {
  // Size the payload so it needs exactly `fragments` parity-mode
  // fragments (parity costs one data byte per fragment).
  const std::size_t per_frag = codec.max_fragment_data(true, false) - 1;
  Message msg;
  msg.device_id = 42;
  msg.sequence = 7;
  msg.data.resize(per_frag * (fragments - 1) + per_frag / 2);
  for (std::size_t i = 0; i < msg.data.size(); ++i) {
    msg.data[i] = static_cast<std::uint8_t>(i * 31 + 5);
  }
  return msg;
}

std::vector<Fragment> decode_elements(const Codec& codec,
                                      const std::vector<dot11::InfoElement>& ies) {
  std::vector<Fragment> out;
  for (const auto& ie : ies) {
    auto f = codec.decode(ie);
    EXPECT_TRUE(f.has_value());
    if (f) out.push_back(*f);
  }
  return out;
}

TEST(FecCodec, ParityAppendsOneElementAndFlagsIt) {
  Codec codec;
  const Message msg = fragmented_message(codec, 3);
  const auto plain = codec.encode(msg, /*parity=*/false);
  const auto with_parity = codec.encode(msg, /*parity=*/true);
  EXPECT_EQ(plain.size(), 3u);
  EXPECT_EQ(with_parity.size(), 4u);

  const auto frags = decode_elements(codec, with_parity);
  ASSERT_EQ(frags.size(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(frags[i].parity);
    EXPECT_EQ(frags[i].frag_index, i);
    EXPECT_EQ(frags[i].frag_count, 3);
  }
  EXPECT_TRUE(frags[3].parity);
  EXPECT_EQ(frags[3].frag_index, 3);  // parity slot: index == count
  EXPECT_EQ(frags[3].frag_count, 3);
}

TEST(FecCodec, UnfragmentedMessageGetsNoParity) {
  Codec codec;
  Message msg;
  msg.device_id = 1;
  msg.data = Bytes(10, 0xaa);
  EXPECT_EQ(codec.encode(msg, /*parity=*/true).size(), 1u);
}

TEST(FecCodec, AnySingleLostFragmentIsRecoveredFromParity) {
  Codec codec;
  const Message msg = fragmented_message(codec, 3);
  const auto frags = decode_elements(codec, codec.encode(msg, /*parity=*/true));
  ASSERT_EQ(frags.size(), 4u);

  for (std::size_t lost = 0; lost < 3; ++lost) {
    Reassembler reassembler;
    std::optional<Message> completed;
    for (std::size_t i = 0; i < frags.size(); ++i) {
      if (i == lost) continue;
      auto m = reassembler.add(frags[i]);
      if (m) completed = m;
    }
    ASSERT_TRUE(completed.has_value()) << "lost fragment " << lost;
    EXPECT_EQ(completed->data, msg.data);
    EXPECT_EQ(completed->sequence, msg.sequence);
    EXPECT_EQ(reassembler.parity_recoveries(), 1u);
  }
}

TEST(FecCodec, ParityFirstOrderingStillRecovers) {
  // The parity element may arrive before the data fragments (reordered
  // across repeats); reconstruction happens when the group becomes
  // one-short-plus-parity, whichever element lands last.
  Codec codec;
  const Message msg = fragmented_message(codec, 3);
  const auto frags = decode_elements(codec, codec.encode(msg, /*parity=*/true));

  Reassembler reassembler;
  EXPECT_FALSE(reassembler.add(frags[3]).has_value());  // parity first
  EXPECT_FALSE(reassembler.add(frags[0]).has_value());
  auto completed = reassembler.add(frags[2]);  // frag 1 never arrives
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(completed->data, msg.data);
  EXPECT_EQ(reassembler.parity_recoveries(), 1u);
}

TEST(FecCodec, LostParityElementCostsNothing) {
  Codec codec;
  const Message msg = fragmented_message(codec, 3);
  const auto frags = decode_elements(codec, codec.encode(msg, /*parity=*/true));

  Reassembler reassembler;
  std::optional<Message> completed;
  for (std::size_t i = 0; i < 3; ++i) completed = reassembler.add(frags[i]);
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(completed->data, msg.data);
  EXPECT_EQ(reassembler.parity_recoveries(), 0u);
}

TEST(FecCodec, EncryptedParityRecovers) {
  // Parity is computed over plaintext and each element is sealed
  // independently, so XOR reconstruction works on decrypted fragments.
  Codec codec{Bytes(16, 0x5a)};
  const Message msg = fragmented_message(codec, 3);
  const auto frags = decode_elements(codec, codec.encode(msg, /*parity=*/true));
  ASSERT_EQ(frags.size(), 4u);

  Reassembler reassembler;
  std::optional<Message> completed;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    if (i == 1) continue;  // lose a middle fragment
    auto m = reassembler.add(frags[i]);
    if (m) completed = m;
  }
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(completed->data, msg.data);
  EXPECT_EQ(reassembler.parity_recoveries(), 1u);
}

// ---------------------------------------------------------------------------
// Recovery / ChannelReport payload containers.
// ---------------------------------------------------------------------------

RecoveryPayload sample_recovery(std::size_t k, std::uint32_t base) {
  RecoveryPayload p;
  p.base_sequence = base;
  std::size_t max_len = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto len = static_cast<std::uint16_t>(3 + i);
    p.entries.push_back({MessageType::Telemetry, len});
    max_len = std::max<std::size_t>(max_len, len);
  }
  p.xor_block.resize(max_len);
  for (std::size_t i = 0; i < max_len; ++i) {
    p.xor_block[i] = static_cast<std::uint8_t>(0xc0 + i);
  }
  return p;
}

TEST(FecPayloads, RecoveryRoundTripsAtGroupBounds) {
  for (const std::size_t k : {std::size_t{1}, std::size_t{4}, kMaxRecoveryGroup}) {
    const RecoveryPayload payload = sample_recovery(k, 0x12345678);
    const auto decoded = decode_recovery_payload(encode_recovery_payload(payload));
    ASSERT_TRUE(decoded.has_value()) << "k=" << k;
    EXPECT_EQ(*decoded, payload);
  }
  // Wrap-adjacent base sequence survives the trip untouched.
  const RecoveryPayload wrap = sample_recovery(4, 0xfffffffe);
  EXPECT_EQ(decode_recovery_payload(encode_recovery_payload(wrap)), wrap);
}

TEST(FecPayloads, RecoveryEncodeRejectsBadGroups) {
  RecoveryPayload empty;
  EXPECT_THROW((void)encode_recovery_payload(empty), std::invalid_argument);

  RecoveryPayload oversized = sample_recovery(kMaxRecoveryGroup, 0);
  oversized.entries.push_back({MessageType::Telemetry, 1});
  EXPECT_THROW((void)encode_recovery_payload(oversized), std::invalid_argument);

  RecoveryPayload short_block = sample_recovery(4, 0);
  short_block.xor_block.pop_back();
  EXPECT_THROW((void)encode_recovery_payload(short_block), std::invalid_argument);
}

TEST(FecPayloads, RecoveryDecodeRejectsMalformedInput) {
  const Bytes valid = encode_recovery_payload(sample_recovery(4, 100));
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_FALSE(decode_recovery_payload(BytesView{valid.data(), len}).has_value());
  }
  Bytes trailing = valid;
  trailing.push_back(0);
  EXPECT_FALSE(decode_recovery_payload(trailing).has_value());
  Bytes zero_k = valid;
  zero_k[4] = 0;
  EXPECT_FALSE(decode_recovery_payload(zero_k).has_value());
  Bytes huge_k = valid;
  huge_k[4] = static_cast<std::uint8_t>(kMaxRecoveryGroup + 1);
  EXPECT_FALSE(decode_recovery_payload(huge_k).has_value());
}

TEST(FecPayloads, ChannelReportRoundTripsAndValidates) {
  const ChannelReport report{0xdeadbeef, 437, 16};
  EXPECT_EQ(decode_channel_report(encode_channel_report(report)), report);

  const Bytes valid = encode_channel_report(report);
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_FALSE(decode_channel_report(BytesView{valid.data(), len}).has_value());
  }
  EXPECT_FALSE(
      decode_channel_report(encode_channel_report({1, 1001, 16})).has_value());
  EXPECT_FALSE(decode_channel_report(encode_channel_report({1, 0, 0})).has_value());
}

// ---------------------------------------------------------------------------
// Reassembler memory bound.
// ---------------------------------------------------------------------------

TEST(FecReassembler, PartialTableEvictsOldestFirst) {
  Codec codec;
  Reassembler reassembler{2};

  auto first_fragment_of = [&](std::uint32_t device) {
    Message msg = fragmented_message(codec, 2);
    msg.device_id = device;
    auto f = codec.decode(codec.encode(msg).front());
    EXPECT_TRUE(f && f->frag_count == 2);
    return *f;
  };

  EXPECT_FALSE(reassembler.add(first_fragment_of(1)).has_value());
  EXPECT_FALSE(reassembler.add(first_fragment_of(2)).has_value());
  EXPECT_EQ(reassembler.partials(), 2u);
  EXPECT_EQ(reassembler.partials_evicted(), 0u);

  // Third in-progress device: device 1 (stalest) is evicted.
  EXPECT_FALSE(reassembler.add(first_fragment_of(3)).has_value());
  EXPECT_EQ(reassembler.partials(), 2u);
  EXPECT_EQ(reassembler.partials_evicted(), 1u);

  // Devices 2 and 3 still complete normally.
  for (const std::uint32_t device : {2u, 3u}) {
    Message msg = fragmented_message(codec, 2);
    msg.device_id = device;
    const auto ies = codec.encode(msg);
    auto f = codec.decode(ies.back());
    ASSERT_TRUE(f.has_value());
    auto completed = reassembler.add(*f);
    ASSERT_TRUE(completed.has_value()) << "device " << device;
    EXPECT_EQ(completed->data, msg.data);
  }
  EXPECT_EQ(reassembler.partials(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: sequence wraparound, cross-cycle recovery, adaptation.
// ---------------------------------------------------------------------------

SenderConfig fec_sender_config(std::uint32_t device_id) {
  SenderConfig cfg;
  cfg.device_id = device_id;
  cfg.period = seconds(1);
  return cfg;
}

TEST(FecEndToEnd, SequenceWraparoundCountsNoPhantomLosses) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  auto cfg = fec_sender_config(1);
  cfg.initial_sequence = 0xfffffffe;  // wraps on the third cycle
  Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
  Receiver monitor{scheduler, medium, {2, 0}};

  std::vector<std::uint32_t> seqs;
  monitor.set_message_callback(
      [&](const Message& m, const RxMeta&) { seqs.push_back(m.sequence); });

  sender.start_duty_cycle([] { return Bytes{0x01}; });
  scheduler.run_until(TimePoint{seconds(6) + msec(500)});
  sender.stop_duty_cycle();

  EXPECT_EQ(seqs, (std::vector<std::uint32_t>{0xfffffffe, 0xffffffff, 0, 1, 2, 3}));
  ASSERT_EQ(monitor.devices().size(), 1u);
  const DeviceInfo& dev = monitor.devices().begin()->second;
  EXPECT_EQ(dev.messages, 6u);
  EXPECT_EQ(dev.estimated_losses, 0u);  // the wrap is not a 4-billion gap
  EXPECT_EQ(dev.last_sequence, 3u);
  EXPECT_EQ(monitor.stats().duplicates, 0u);
}

TEST(FecEndToEnd, RecoveryBeaconRestoresMessageLostInDeafCycle) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{3}};
  auto cfg = fec_sender_config(1);
  cfg.recovery_k = 4;  // default stride 2: overlapping groups
  Sender sender{scheduler, medium, {0, 0}, cfg, Rng{4}};
  Receiver monitor{scheduler, medium, {2, 0}};

  std::set<std::uint32_t> delivered;
  monitor.set_message_callback(
      [&](const Message& m, const RxMeta&) { delivered.insert(m.sequence); });

  // Deafen the monitor for exactly the cycle that transmits sequence 3 —
  // which also carries the recovery beacon covering 0..3, so both are
  // lost and only the next overlapping beacon (2..5) can bring 3 back.
  sender.start_duty_cycle([] { return Bytes{0x10, 0x20, 0x30}; },
                          [&](const SendReport& r) {
                            if (r.sequence == 2) {
                              medium.set_rx_blocked(monitor.node_id(), true);
                            } else if (r.sequence == 3) {
                              medium.set_rx_blocked(monitor.node_id(), false);
                            }
                          });
  scheduler.run_until(TimePoint{seconds(10) + msec(500)});
  sender.stop_duty_cycle();

  EXPECT_GE(sender.recovery_beacons_sent(), 3u);
  for (std::uint32_t s = 0; s < 10; ++s) EXPECT_TRUE(delivered.count(s)) << "seq " << s;
  EXPECT_EQ(monitor.stats().recovered, 1u);
  ASSERT_EQ(monitor.devices().size(), 1u);
  // The gap charged when sequence 4 arrived is walked back on recovery.
  EXPECT_EQ(monitor.devices().begin()->second.estimated_losses, 0u);
}

TEST(FecEndToEnd, RecoveryWorksAcrossSequenceWrap) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{5}};
  auto cfg = fec_sender_config(1);
  cfg.initial_sequence = 0xfffffffd;  // the lost message is sequence 0
  cfg.recovery_k = 4;
  Sender sender{scheduler, medium, {0, 0}, cfg, Rng{6}};
  Receiver monitor{scheduler, medium, {2, 0}};

  std::set<std::uint32_t> delivered;
  monitor.set_message_callback(
      [&](const Message& m, const RxMeta&) { delivered.insert(m.sequence); });

  sender.start_duty_cycle([] { return Bytes{0x44, 0x55}; },
                          [&](const SendReport& r) {
                            if (r.sequence == 0xffffffff) {
                              medium.set_rx_blocked(monitor.node_id(), true);
                            } else if (r.sequence == 0) {
                              medium.set_rx_blocked(monitor.node_id(), false);
                            }
                          });
  scheduler.run_until(TimePoint{seconds(8) + msec(500)});
  sender.stop_duty_cycle();

  // Sequence 0 was lost in the deaf cycle; the beacon covering
  // 0xffffffff..2 spans the wrap and still reconstructs it.
  EXPECT_TRUE(delivered.count(0u));
  EXPECT_EQ(monitor.stats().recovered, 1u);
  EXPECT_EQ(monitor.devices().begin()->second.estimated_losses, 0u);
}

AdaptationConfig two_tier_adaptation() {
  AdaptationConfig a;
  a.tiers.push_back({/*repeats=*/1, /*fec_parity=*/false, /*recovery_k=*/0, 0});
  a.tiers.push_back({/*repeats=*/2, /*fec_parity=*/true, /*recovery_k=*/4, 0});
  a.raise_loss_pct = 15.0;  // 2+ losses in an 8-report window
  a.clear_loss_pct = 2.0;   // a fully clean window
  a.raise_after = 1;
  a.clear_after = 2;
  return a;
}

TEST(FecAdaptation, RaisesUnderLossWindowAndClearsAfterWithoutOscillating) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{7}};
  sim::FaultInjector faults{scheduler, medium, Rng{8}};

  auto cfg = fec_sender_config(1);
  cfg.rx_window = RxWindow{msec(2), msec(20)};
  cfg.adaptation = two_tier_adaptation();
  Sender sender{scheduler, medium, {0, 0}, cfg, Rng{9}};

  ControllerConfig ctrl_cfg;
  ctrl_cfg.channel_reports = true;
  ctrl_cfg.report_window = 8;
  Controller controller{scheduler, medium, {2, 0}, ctrl_cfg, Rng{10}};

  // 40% blanket loss for 6 of 30 cycles.
  const TimePoint window_start{seconds(5) + msec(500)};
  faults.per_floor(window_start, seconds(6), 0.40);

  std::uint64_t first_lossy_report_cycle = 0, first_raised_cycle = 0, cycle = 0;
  std::uint64_t prev_reports = 0;
  sender.start_duty_cycle([] { return Bytes{0x77}; },
                          [&](const SendReport& r) {
                            ++cycle;
                            const bool got_report = sender.reports_received() > prev_reports;
                            prev_reports = sender.reports_received();
                            if (first_lossy_report_cycle == 0 && got_report &&
                                scheduler.now() >= window_start) {
                              first_lossy_report_cycle = cycle;
                            }
                            if (first_raised_cycle == 0 && r.tier > 0) {
                              first_raised_cycle = cycle;
                            }
                          });
  scheduler.run_until(TimePoint{seconds(30) + msec(500)});
  sender.stop_duty_cycle();

  EXPECT_GT(sender.reports_received(), 0u);
  EXPECT_GT(controller.stats().reports_sent, 0u);

  // The bound from the acceptance criteria: the tier rises within five
  // cycles of the first ChannelReport received under the loss window
  // (reports themselves ride the lossy channel, so the clock starts at
  // the first one that gets through).
  ASSERT_GT(first_lossy_report_cycle, 0u);
  ASSERT_GT(first_raised_cycle, 0u);
  EXPECT_LE(first_raised_cycle, first_lossy_report_cycle + 5);

  // Exactly one raise and one clear: the hysteresis dead zone between
  // 2% and 15% absorbs the estimate's decay without flapping.
  EXPECT_EQ(sender.tier_raises(), 1u);
  EXPECT_EQ(sender.tier_clears(), 1u);
  EXPECT_EQ(sender.current_tier(), 0u);
  EXPECT_FALSE(sender.fallback_active());
}

TEST(FecAdaptation, FallsBackToOpenLoopScheduleWithoutController) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{11}};
  auto cfg = fec_sender_config(1);
  cfg.rx_window = RxWindow{msec(2), msec(20)};
  auto adaptation = two_tier_adaptation();
  adaptation.fallback_after_cycles = 3;
  adaptation.fallback_tier = 1;
  cfg.adaptation = adaptation;
  Sender sender{scheduler, medium, {0, 0}, cfg, Rng{12}};
  Receiver monitor{scheduler, medium, {2, 0}};  // passive: never reports

  sender.start_duty_cycle([] { return Bytes{0x88}; });
  scheduler.run_until(TimePoint{seconds(10) + msec(500)});
  sender.stop_duty_cycle();

  // No ChannelReport ever arrived: after three silent cycles the sender
  // runs the scheduled open-loop redundancy (tier 1: repeats + recovery).
  EXPECT_TRUE(sender.fallback_active());
  EXPECT_EQ(sender.current_tier(), 1u);
  EXPECT_EQ(sender.reports_received(), 0u);
  EXPECT_GE(sender.recovery_beacons_sent(), 1u);
  EXPECT_EQ(sender.tier_raises(), 0u);  // fallback is not a raise
  EXPECT_GT(monitor.stats().duplicates, 0u);  // tier-1 repeats are visible
}

}  // namespace
}  // namespace wile::core
