// Conformance suite: every *quantitative claim* in the paper, pinned as
// a ctest assertion so regressions in the protocol stacks or power
// models are caught immediately. The benches print these side by side;
// this file makes them gates.
#include <gtest/gtest.h>

#include "ap/access_point.hpp"
#include "ble/link.hpp"
#include "phy/energy.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "sta/station.hpp"
#include "wile/sender.hpp"

namespace wile {
namespace {

// --- shared measurement helpers (the Table-1 pipeline) ----------------------

double measure_wile_uj() {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  core::SenderConfig cfg;
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
  double uj = 0;
  sender.send_now(Bytes(16, 0x42),
                  [&](const core::SendReport& r) { uj = in_microjoules(r.tx_only_energy); });
  scheduler.run_until_idle();
  return uj;
}

double measure_ble_uj() {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ble::BleLinkConfig cfg;
  ble::BleMaster master{scheduler, medium, {0, 0}, cfg};
  ble::BleSlave slave{scheduler, medium, {2, 0}, cfg};
  double uj = 0;
  slave.set_event_callback([&](const ble::BleEventReport& r) {
    if (r.data_sent && uj == 0) uj = in_microjoules(r.energy);
  });
  slave.queue_payload(Bytes(20, 0x42));
  master.start();
  slave.start();
  scheduler.run_until(TimePoint{seconds(3)});
  return uj;
}

struct WifiMeasurement {
  double dc_mj = 0;
  double ps_mj = 0;
  double ps_idle_ua = 0;
};

WifiMeasurement measure_wifi() {
  WifiMeasurement out;
  {
    sim::Scheduler scheduler;
    sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
    ap::AccessPointConfig ap_cfg;
    ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{10}};
    ap.start();
    sta::StationConfig sta_cfg;
    sta::Station sta{scheduler, medium, {3, 0}, sta_cfg, Rng{20}};
    sta.run_duty_cycle_transmission(Bytes(16, 0x42), [&](const sta::CycleReport& r) {
      out.dc_mj = in_millijoules(r.energy);
    });
    scheduler.run_until(TimePoint{seconds(10)});
  }
  {
    sim::Scheduler scheduler;
    sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
    ap::AccessPointConfig ap_cfg;
    ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{10}};
    ap.start();
    sta::StationConfig sta_cfg;
    sta::Station sta{scheduler, medium, {3, 0}, sta_cfg, Rng{20}};
    bool ready = false;
    sta.connect_and_enter_power_save([&](bool ok) { ready = ok; });
    scheduler.run_until(TimePoint{seconds(10)});
    if (!ready) return out;
    const TimePoint from = scheduler.now();
    scheduler.run_until(from + minutes(1));
    out.ps_idle_ua =
        in_microamps(sta.timeline().average_power(from, scheduler.now()) / volts(3.3));
    sta.power_save_send(Bytes(16, 0x42), [&](const sta::CycleReport& r) {
      out.ps_mj = in_millijoules(r.energy);
    });
    scheduler.run_until(scheduler.now() + seconds(5));
  }
  return out;
}

// --- Table 1 ----------------------------------------------------------------

TEST(PaperClaims, Table1WiLeEnergy84uJ) {
  EXPECT_NEAR(measure_wile_uj(), 84.0, 84.0 * 0.05);
}

TEST(PaperClaims, Table1BleEnergy71uJ) {
  EXPECT_NEAR(measure_ble_uj(), 71.0, 71.0 * 0.05);
}

TEST(PaperClaims, Table1WifiEnergies) {
  const WifiMeasurement m = measure_wifi();
  EXPECT_NEAR(m.dc_mj, 238.2, 238.2 * 0.05);
  EXPECT_NEAR(m.ps_mj, 19.8, 19.8 * 0.07);
  EXPECT_NEAR(m.ps_idle_ua, 4500.0, 4500.0 * 0.07);
}

TEST(PaperClaims, Section1EnergyPerBitRatios) {
  // "Bluetooth ... 275-300 nJ/bit while with WiFi it is 10-100".
  const double ble = in_nanojoules(phy::ble_effective_energy_per_bit());
  EXPECT_GE(ble, 260.0);
  EXPECT_LE(ble, 310.0);
  const double wifi_hi = in_nanojoules(phy::wifi_energy_per_bit(phy::WifiRate::G6));
  const double wifi_lo = in_nanojoules(phy::wifi_energy_per_bit(phy::WifiRate::Mcs7Sgi));
  EXPECT_NEAR(wifi_hi, 100.0, 5.0);
  EXPECT_LT(wifi_lo, 12.0);
  // "nearly three times as much energy" at the comparable (low-rate) end.
  EXPECT_NEAR(ble / wifi_hi, 3.0, 0.5);
}

TEST(PaperClaims, AbstractWiLeRivalsBle) {
  // "power consumption similar to that of Bluetooth Low Energy":
  // energy/message within 1.5x at equal payloads + idle currents within
  // ~2.3x (2.5 vs 1.1 uA).
  const double wile = measure_wile_uj();
  const double ble = measure_ble_uj();
  EXPECT_LT(wile / ble, 1.5);
  EXPECT_GT(wile / ble, 0.7);
}

TEST(PaperClaims, Section52WiLeAwakeFractionOfWifi) {
  // Fig. 3: the Wi-LE cycle is several times shorter than the WiFi one
  // ("significantly reduces the total time and energy").
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  core::SenderConfig cfg;
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
  Duration wile_active{};
  sender.send_now(Bytes(16, 1),
                  [&](const core::SendReport& r) { wile_active = r.active_time; });
  scheduler.run_until_idle();

  // WiFi-DC active time from the paper's Fig. 3a is ~1.4 s; ours is
  // calibrated to it (asserted in the integration suite). Compare:
  EXPECT_LT(to_seconds(wile_active), 0.4);
  EXPECT_GT(1.4 / to_seconds(wile_active), 4.0);
}

TEST(PaperClaims, BestAlternativeWifiApproachIs19_8mJ) {
  // §1: "Wi-LE achieves energy efficiency of 84 uJ per message while the
  // best alternative WiFi approach achieves 19.8 mJ per message" — i.e.
  // a ~236x gap.
  const WifiMeasurement m = measure_wifi();
  const double gap = m.ps_mj * 1000.0 / measure_wile_uj();
  EXPECT_GT(gap, 180.0);
  EXPECT_LT(gap, 300.0);
}

}  // namespace
}  // namespace wile
