// Unit tests for src/net: LLC/SNAP, ARP, IPv4, UDP, DHCP.
#include <gtest/gtest.h>

#include "net/arp.hpp"
#include "net/dhcp.hpp"
#include "net/ipv4.hpp"
#include "net/llc.hpp"
#include "net/udp.hpp"

namespace wile::net {
namespace {

// ---------------------------------------------------------------------------
// LLC/SNAP
// ---------------------------------------------------------------------------

TEST(Llc, WrapDecodeRoundTrip) {
  const Bytes payload = {0xde, 0xad};
  const Bytes wrapped = llc_wrap(EtherType::Eapol, payload);
  EXPECT_EQ(wrapped.size(), LlcSnap::kHeaderSize + payload.size());
  const auto back = LlcSnap::decode(wrapped);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ethertype, EtherType::Eapol);
  EXPECT_EQ(back->payload, payload);
}

TEST(Llc, RejectsNonSnapHeader) {
  Bytes bad = llc_wrap(EtherType::Ipv4, Bytes{1});
  bad[0] = 0x00;
  EXPECT_FALSE(LlcSnap::decode(bad).has_value());
  EXPECT_FALSE(LlcSnap::decode(Bytes{0xaa, 0xaa}).has_value());
}

// ---------------------------------------------------------------------------
// Ipv4Address
// ---------------------------------------------------------------------------

TEST(Ipv4Address, ParseAndFormat) {
  const auto ip = Ipv4Address::parse("192.168.86.1");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "192.168.86.1");
  EXPECT_EQ(ip->value(), 0xc0a85601u);
}

TEST(Ipv4Address, ParseRejectsBadInput) {
  EXPECT_FALSE(Ipv4Address::parse("192.168.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("192.168.1.256").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1..2.3").has_value());
}

TEST(Ipv4Address, Constants) {
  EXPECT_TRUE(Ipv4Address::any().is_any());
  EXPECT_EQ(Ipv4Address::broadcast().to_string(), "255.255.255.255");
}

// ---------------------------------------------------------------------------
// Inet checksum + IPv4 header
// ---------------------------------------------------------------------------

TEST(InetChecksum, Rfc1071Example) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const Bytes data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(inet_checksum(data), 0x220d);
}

TEST(InetChecksum, ValidatesToZero) {
  Ipv4Header h;
  h.source = *Ipv4Address::parse("10.0.0.1");
  h.destination = *Ipv4Address::parse("10.0.0.2");
  const Bytes packet = h.encode(Bytes{1, 2, 3});
  EXPECT_EQ(inet_checksum(BytesView{packet.data(), Ipv4Header::kSize}), 0);
}

TEST(Ipv4, EncodeDecodeRoundTrip) {
  Ipv4Header h;
  h.ttl = 32;
  h.identification = 99;
  h.protocol = IpProto::Udp;
  h.source = *Ipv4Address::parse("192.168.86.20");
  h.destination = *Ipv4Address::parse("192.168.86.2");
  const Bytes payload = {9, 8, 7, 6};
  const Bytes packet = h.encode(payload);

  const auto parsed = Ipv4Header::decode(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->checksum_ok);
  EXPECT_EQ(parsed->header.source, h.source);
  EXPECT_EQ(parsed->header.destination, h.destination);
  EXPECT_EQ(parsed->header.ttl, 32);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(Ipv4, CorruptionDetected) {
  Ipv4Header h;
  h.source = *Ipv4Address::parse("10.0.0.1");
  h.destination = *Ipv4Address::parse("10.0.0.2");
  Bytes packet = h.encode(Bytes{});
  packet[8] ^= 0x01;  // ttl
  const auto parsed = Ipv4Header::decode(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->checksum_ok);
}

TEST(Ipv4, DecodeRejectsGarbage) {
  EXPECT_FALSE(Ipv4Header::decode(Bytes(10, 0)).has_value());
  Bytes not_v4(20, 0);
  not_v4[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::decode(not_v4).has_value());
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

TEST(Udp, EncodeDecodeRoundTripWithChecksum) {
  const auto src = *Ipv4Address::parse("192.168.86.20");
  const auto dst = *Ipv4Address::parse("192.168.86.2");
  UdpDatagram d;
  d.source_port = 40000;
  d.dest_port = 9000;
  d.payload = {1, 2, 3, 4, 5};
  const Bytes segment = d.encode(src, dst);

  const auto parsed = UdpDatagram::decode(segment, src, dst);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->checksum_ok);
  EXPECT_EQ(parsed->datagram.source_port, 40000);
  EXPECT_EQ(parsed->datagram.dest_port, 9000);
  EXPECT_EQ(parsed->datagram.payload, d.payload);
}

TEST(Udp, ChecksumBindsPseudoHeader) {
  const auto src = *Ipv4Address::parse("192.168.86.20");
  const auto dst = *Ipv4Address::parse("192.168.86.2");
  const auto other = *Ipv4Address::parse("192.168.86.3");
  UdpDatagram d;
  d.payload = {1};
  const Bytes segment = d.encode(src, dst);
  const auto parsed = UdpDatagram::decode(segment, src, other);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->checksum_ok);
}

TEST(Udp, FullPacketHelper) {
  const auto src = *Ipv4Address::parse("0.0.0.0");
  const Bytes packet = udp_packet(src, 68, Ipv4Address::broadcast(), 67, Bytes{0xaa});
  const auto ip = Ipv4Header::decode(packet);
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(ip->checksum_ok);
  EXPECT_EQ(ip->header.protocol, IpProto::Udp);
  const auto udp = UdpDatagram::decode(ip->payload, ip->header.source,
                                       ip->header.destination);
  ASSERT_TRUE(udp.has_value());
  EXPECT_TRUE(udp->checksum_ok);
  EXPECT_EQ(udp->datagram.dest_port, 67);
}

// ---------------------------------------------------------------------------
// DHCP
// ---------------------------------------------------------------------------

TEST(Dhcp, DiscoverRoundTrip) {
  const MacAddress client = MacAddress::from_seed(5);
  const auto d = DhcpMessage::discover(0xdeadbeef, client);
  const auto back = DhcpMessage::decode(d.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, DhcpMessageType::Discover);
  EXPECT_EQ(back->xid, 0xdeadbeefu);
  EXPECT_EQ(back->chaddr, client);
  EXPECT_TRUE(back->broadcast_flag);
}

TEST(Dhcp, FullExchangeCarriesAddressing) {
  const MacAddress client = MacAddress::from_seed(5);
  const auto server_ip = *Ipv4Address::parse("192.168.86.1");
  const auto offered = *Ipv4Address::parse("192.168.86.20");

  const auto discover = DhcpMessage::discover(7, client);
  const auto offer = DhcpMessage::offer(discover, offered, server_ip, 86'400);
  EXPECT_EQ(offer.yiaddr, offered);
  EXPECT_EQ(offer.xid, 7u);
  EXPECT_EQ(offer.ip_option(DhcpOption::kServerId), server_ip);
  EXPECT_EQ(offer.ip_option(DhcpOption::kRouter), server_ip);

  const auto request = DhcpMessage::request(offer, client);
  EXPECT_EQ(request.ip_option(DhcpOption::kRequestedIp), offered);
  EXPECT_EQ(request.ip_option(DhcpOption::kServerId), server_ip);

  const auto ack = DhcpMessage::ack(request, offered, server_ip, 86'400);
  EXPECT_EQ(ack.type, DhcpMessageType::Ack);
  EXPECT_EQ(ack.yiaddr, offered);

  // Every message must survive the wire.
  for (const auto& msg : {discover, offer, request, ack}) {
    const auto back = DhcpMessage::decode(msg.encode());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, msg.type);
    EXPECT_EQ(back->xid, msg.xid);
    EXPECT_EQ(back->yiaddr, msg.yiaddr);
  }
}

TEST(Dhcp, DecodeRejectsBadMagicAndShortInput) {
  const auto d = DhcpMessage::discover(1, MacAddress::from_seed(1));
  Bytes raw = d.encode();
  raw[236] ^= 0xff;  // magic cookie
  EXPECT_FALSE(DhcpMessage::decode(raw).has_value());
  EXPECT_FALSE(DhcpMessage::decode(Bytes(100, 0)).has_value());
}

TEST(Dhcp, LeaseTimeOptionEncoded) {
  const auto discover = DhcpMessage::discover(1, MacAddress::from_seed(1));
  const auto offer = DhcpMessage::offer(discover, *Ipv4Address::parse("10.0.0.9"),
                                        *Ipv4Address::parse("10.0.0.1"), 3600);
  const auto back = DhcpMessage::decode(offer.encode());
  ASSERT_TRUE(back.has_value());
  const DhcpOption* lease = back->find_option(DhcpOption::kLeaseTime);
  ASSERT_NE(lease, nullptr);
  ASSERT_EQ(lease->data.size(), 4u);
  ByteReader r{lease->data};
  EXPECT_EQ(r.u32be(), 3600u);
}

// ---------------------------------------------------------------------------
// ARP
// ---------------------------------------------------------------------------

TEST(Arp, RequestReplyRoundTrip) {
  const MacAddress sta = MacAddress::from_seed(1);
  const MacAddress gw = MacAddress::from_seed(2);
  const auto sta_ip = *Ipv4Address::parse("192.168.86.20");
  const auto gw_ip = *Ipv4Address::parse("192.168.86.1");

  const auto req = ArpPacket::request(sta, sta_ip, gw_ip);
  const auto req_back = ArpPacket::decode(req.encode());
  ASSERT_TRUE(req_back.has_value());
  EXPECT_EQ(req_back->op, ArpPacket::Op::Request);
  EXPECT_EQ(req_back->sender_mac, sta);
  EXPECT_EQ(req_back->target_ip, gw_ip);
  EXPECT_TRUE(req_back->target_mac.is_zero());

  const auto reply = ArpPacket::reply(gw, gw_ip, sta, sta_ip);
  const auto reply_back = ArpPacket::decode(reply.encode());
  ASSERT_TRUE(reply_back.has_value());
  EXPECT_EQ(reply_back->op, ArpPacket::Op::Reply);
  EXPECT_EQ(reply_back->sender_mac, gw);
  EXPECT_EQ(reply_back->target_mac, sta);
}

TEST(Arp, DecodeRejectsWrongTypes) {
  auto req = ArpPacket::request(MacAddress::from_seed(1), Ipv4Address{10, 0, 0, 1},
                                Ipv4Address{10, 0, 0, 2});
  Bytes raw = req.encode();
  raw[0] = 9;  // hardware type
  EXPECT_FALSE(ArpPacket::decode(raw).has_value());
  EXPECT_FALSE(ArpPacket::decode(Bytes(10, 0)).has_value());
}

}  // namespace
}  // namespace wile::net
