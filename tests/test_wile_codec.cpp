// Unit + property tests for the Wi-LE payload container (src/wile/codec)
// and fragment reassembly.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "wile/codec.hpp"

namespace wile::core {
namespace {

Message make_message(std::size_t data_size, Rng& rng, std::uint32_t device = 7,
                     std::uint32_t seq = 1) {
  Message m;
  m.device_id = device;
  m.sequence = seq;
  m.type = MessageType::Telemetry;
  m.data.resize(data_size);
  for (auto& b : m.data) b = static_cast<std::uint8_t>(rng.below(256));
  return m;
}

Message must_decode(const Codec& codec, const std::vector<dot11::InfoElement>& ies) {
  Reassembler reassembler;
  for (const auto& ie : ies) {
    auto fragment = codec.decode(ie);
    EXPECT_TRUE(fragment.has_value());
    if (auto msg = reassembler.add(*fragment)) return *msg;
  }
  ADD_FAILURE() << "message never completed";
  return {};
}

// ---------------------------------------------------------------------------
// Round trips, plaintext and encrypted, across the size range.
// ---------------------------------------------------------------------------

class CodecRoundTrip : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(CodecRoundTrip, EncodeDecodeIdentity) {
  const auto [size, encrypted] = GetParam();
  const Bytes key(16, 0x42);
  const Codec codec = encrypted ? Codec{key} : Codec{};

  Rng rng{size * 2 + encrypted};
  const Message msg = make_message(size, rng);
  const auto ies = codec.encode(msg);
  ASSERT_FALSE(ies.empty());

  // Every element must fit the vendor IE limit.
  for (const auto& ie : ies) {
    EXPECT_EQ(ie.id, dot11::IeId::VendorSpecific);
    EXPECT_LE(ie.data.size(), dot11::IeList::kMaxIeData);
  }

  const Message back = must_decode(codec, ies);
  EXPECT_EQ(back.device_id, msg.device_id);
  EXPECT_EQ(back.sequence, msg.sequence);
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.data, msg.data);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndKeys, CodecRoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 16, 100, 231, 232, 240, 463, 500, 1000,
                                         2000),
                       ::testing::Bool()));

TEST(Codec, SingleElementForSmallPayload) {
  Codec codec;
  Rng rng{1};
  const auto ies = codec.encode(make_message(codec.max_fragment_data(false, false), rng));
  EXPECT_EQ(ies.size(), 1u);
}

TEST(Codec, FragmentsLargePayload) {
  Codec codec;
  Rng rng{2};
  const std::size_t single = codec.max_fragment_data(false, false);
  const auto ies = codec.encode(make_message(single + 1, rng));
  EXPECT_EQ(ies.size(), 2u);
}

TEST(Codec, EncryptionShrinksCapacity) {
  Codec plain;
  Codec enc{Bytes(16, 1)};
  EXPECT_GT(plain.max_fragment_data(false, false), enc.max_fragment_data(false, false));
  EXPECT_EQ(plain.max_fragment_data(false, false) - enc.max_fragment_data(false, false),
            crypto::Aead::kTagSize);
}

TEST(Codec, RxWindowSurvivesRoundTrip) {
  Codec codec;
  Rng rng{3};
  Message msg = make_message(10, rng);
  msg.rx_window = RxWindow{msec(4), msec(32)};
  const Message back = must_decode(codec, codec.encode(msg));
  ASSERT_TRUE(back.rx_window.has_value());
  EXPECT_EQ(back.rx_window->offset, msec(4));
  EXPECT_EQ(back.rx_window->duration, msec(32));
}

TEST(Codec, CiphertextDiffersFromPlaintext) {
  const Bytes key(16, 0x42);
  Codec enc{key};
  Rng rng{4};
  const Message msg = make_message(32, rng);
  const auto ies = enc.encode(msg);
  ASSERT_EQ(ies.size(), 1u);
  // The raw element must not contain the plaintext data bytes.
  const auto& raw = ies[0].data;
  auto it = std::search(raw.begin(), raw.end(), msg.data.begin(), msg.data.end());
  EXPECT_EQ(it, raw.end());
}

// ---------------------------------------------------------------------------
// Decode failure modes.
// ---------------------------------------------------------------------------

TEST(Codec, RejectsForeignVendorIe) {
  Codec codec;
  const std::array<std::uint8_t, 3> other_oui = {0x00, 0x50, 0xf2};
  const auto ie = dot11::make_vendor_ie(other_oui, 1, Bytes{1, 2, 3});
  ASSERT_TRUE(ie.has_value());
  DecodeError error{};
  EXPECT_FALSE(codec.decode(*ie, &error).has_value());
  EXPECT_EQ(error, DecodeError::NotWile);
}

TEST(Codec, DetectsCorruptionViaCrc) {
  Codec codec;
  Rng rng{5};
  auto ies = codec.encode(make_message(50, rng));
  ASSERT_EQ(ies.size(), 1u);
  ies[0].data[10] ^= 0x01;
  DecodeError error{};
  EXPECT_FALSE(codec.decode(ies[0], &error).has_value());
  EXPECT_EQ(error, DecodeError::BadCrc);
}

TEST(Codec, WrongKeyFailsDecrypt) {
  Codec enc{Bytes(16, 0x42)};
  Codec wrong{Bytes(16, 0x43)};
  Rng rng{6};
  const auto ies = enc.encode(make_message(50, rng));
  DecodeError error{};
  EXPECT_FALSE(wrong.decode(ies[0], &error).has_value());
  EXPECT_EQ(error, DecodeError::DecryptFailed);
}

TEST(Codec, EncryptedElementNeedsKey) {
  Codec enc{Bytes(16, 0x42)};
  Codec plain;
  Rng rng{7};
  const auto ies = enc.encode(make_message(50, rng));
  DecodeError error{};
  EXPECT_FALSE(plain.decode(ies[0], &error).has_value());
  EXPECT_EQ(error, DecodeError::KeyRequired);
}

TEST(Codec, PlainCodecReadsPlainElements) {
  // And the reverse: a keyed codec must still read unencrypted elements.
  Codec plain;
  Codec keyed{Bytes(16, 0x42)};
  Rng rng{8};
  const Message msg = make_message(20, rng);
  const auto ies = plain.encode(msg);
  const auto fragment = keyed.decode(ies[0]);
  ASSERT_TRUE(fragment.has_value());
  EXPECT_EQ(fragment->data, msg.data);
}

TEST(Codec, RejectsTruncatedContainer) {
  Codec codec;
  Rng rng{9};
  auto ies = codec.encode(make_message(50, rng));
  ies[0].data.resize(10);
  DecodeError error{};
  EXPECT_FALSE(codec.decode(ies[0], &error).has_value());
  EXPECT_EQ(error, DecodeError::Malformed);
}

TEST(Codec, CapacityArithmetic) {
  Codec codec;
  // vendor payload (251) - fixed overhead (16) = 235 plaintext bytes.
  EXPECT_EQ(codec.max_fragment_data(false, false),
            dot11::vendor_payload_capacity() - 16);
  EXPECT_EQ(codec.capacity(1, false), codec.max_fragment_data(false, false));
  EXPECT_EQ(codec.capacity(3, false), 3 * codec.max_fragment_data(true, false));
}

// ---------------------------------------------------------------------------
// Reassembler behaviour under interleaving and loss.
// ---------------------------------------------------------------------------

TEST(Reassembler, InterleavedDevicesReassembleIndependently) {
  Codec codec;
  Rng rng{10};
  const Message a = make_message(500, rng, /*device=*/1, /*seq=*/5);
  const Message b = make_message(500, rng, /*device=*/2, /*seq=*/9);
  const auto ies_a = codec.encode(a);
  const auto ies_b = codec.encode(b);
  ASSERT_GT(ies_a.size(), 1u);

  Reassembler r;
  std::vector<Message> complete;
  for (std::size_t i = 0; i < std::max(ies_a.size(), ies_b.size()); ++i) {
    if (i < ies_a.size()) {
      if (auto m = r.add(*codec.decode(ies_a[i]))) complete.push_back(*m);
    }
    if (i < ies_b.size()) {
      if (auto m = r.add(*codec.decode(ies_b[i]))) complete.push_back(*m);
    }
  }
  ASSERT_EQ(complete.size(), 2u);
  EXPECT_EQ(complete[0].data, a.data);
  EXPECT_EQ(complete[1].data, b.data);
}

TEST(Reassembler, LostFragmentDropsMessageButNotNext) {
  Codec codec;
  Rng rng{11};
  const Message first = make_message(500, rng, 1, 5);
  const Message second = make_message(500, rng, 1, 6);
  const auto ies_first = codec.encode(first);
  const auto ies_second = codec.encode(second);

  Reassembler r;
  // Drop fragment 0 of `first`; feed the rest.
  for (std::size_t i = 1; i < ies_first.size(); ++i) {
    EXPECT_FALSE(r.add(*codec.decode(ies_first[i])).has_value());
  }
  // `second` arrives complete and must reassemble despite the stale partial.
  std::optional<Message> got;
  for (const auto& ie : ies_second) {
    if (auto m = r.add(*codec.decode(ie))) got = m;
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data, second.data);
}

TEST(Reassembler, DuplicateFragmentIsIdempotent) {
  Codec codec;
  Rng rng{12};
  const Message msg = make_message(500, rng, 1, 5);
  const auto ies = codec.encode(msg);
  ASSERT_GE(ies.size(), 2u);

  Reassembler r;
  EXPECT_FALSE(r.add(*codec.decode(ies[0])).has_value());
  EXPECT_FALSE(r.add(*codec.decode(ies[0])).has_value());  // duplicate
  std::optional<Message> got;
  for (std::size_t i = 1; i < ies.size(); ++i) {
    if (auto m = r.add(*codec.decode(ies[i]))) got = m;
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data, msg.data);
}

TEST(Codec, TooManyFragmentsThrows) {
  Codec codec;
  Message huge;
  huge.data.resize(256 * codec.max_fragment_data(true, false) + 1);
  EXPECT_THROW(codec.encode(huge), std::invalid_argument);
}

}  // namespace
}  // namespace wile::core
