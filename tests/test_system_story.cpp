// Full-system story test: everything the paper describes, in one world.
//
//  * A building WPA2 AP with a collector server behind it.
//  * A Wi-LE -> infrastructure gateway (monitor radio + associated PS
//    client) bridging sensor readings to the server.
//  * A fleet of Wi-LE sensors — some plaintext, some encrypted, one with
//    an RX window served by a two-way controller.
//  * A legacy WiFi-DC sensor doing the full re-association dance.
//  * A BLE pair running the paper's baseline alongside.
//  * A phone model verifying the scan list stays clean throughout.
//
// One deterministic 5-minute simulation; every subsystem must do its job
// simultaneously on the same medium.
#include <gtest/gtest.h>

#include "ap/access_point.hpp"
#include "ble/link.hpp"
#include "sta/station.hpp"
#include "wile/controller.hpp"
#include "wile/gateway.hpp"
#include "wile/scan_list.hpp"
#include "wile/sender.hpp"

namespace wile {
namespace {

TEST(SystemStory, EverythingCoexistsOnOneMedium) {
  sim::Scheduler scheduler;
  sim::Medium wifi_medium{scheduler, phy::Channel{}, Rng{1000}};
  sim::Medium ble_medium{scheduler, phy::Channel{}, Rng{1001}};

  // --- infrastructure ---------------------------------------------------
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, wifi_medium, {0, 0}, ap_cfg, Rng{1}};
  std::vector<core::ForwardedReading> server_rows;
  std::vector<Bytes> direct_uplinks;
  ap.set_uplink_handler([&](const MacAddress&, const net::Ipv4Header&,
                            const net::UdpDatagram& udp) {
    if (auto batch = core::ForwardedBatch::decode(udp.payload)) {
      for (core::ForwardedReading& r : batch->readings) {
        server_rows.push_back(std::move(r));
      }
    } else {
      direct_uplinks.push_back(udp.payload);
    }
  });
  ap.start();

  core::GatewayConfig gw_cfg;
  gw_cfg.station.mac = MacAddress::from_seed(0x6A7E);
  gw_cfg.monitor.key = std::nullopt;  // receives plaintext devices
  core::Gateway gateway{scheduler, wifi_medium, {3, 0}, gw_cfg, Rng{2}};
  bool gw_ready = false;
  gateway.start([&](bool ok) { gw_ready = ok; });

  // --- Wi-LE sensor fleet -------------------------------------------------
  Rng seeder{3};
  std::vector<std::unique_ptr<core::Sender>> sensors;
  for (int i = 0; i < 3; ++i) {
    core::SenderConfig cfg;
    cfg.device_id = 0x900 + i;
    cfg.period = seconds(20);
    cfg.wake_jitter = msec(250);
    sensors.push_back(std::make_unique<core::Sender>(
        scheduler, wifi_medium, sim::Position{5.0 + i, 1.0}, cfg, seeder.fork()));
    sensors.back()->start_duty_cycle([i] { return Bytes{static_cast<std::uint8_t>(i)}; });
  }

  // Two-way device + controller.
  core::SenderConfig twoway_cfg;
  twoway_cfg.device_id = 0xA00;
  twoway_cfg.period = seconds(30);
  twoway_cfg.rx_window = core::RxWindow{msec(2), msec(20)};
  core::Sender twoway{scheduler, wifi_medium, {6, 2}, twoway_cfg, seeder.fork()};
  std::vector<core::Message> downlinks;
  twoway.set_downlink_callback([&](const core::Message& m) { downlinks.push_back(m); });
  twoway.start_duty_cycle([] { return Bytes{0xA0}; });

  core::ControllerConfig ctl_cfg;
  core::Controller controller{scheduler, wifi_medium, {4, 2}, ctl_cfg, seeder.fork()};
  scheduler.schedule_at(TimePoint{seconds(45)}, [&] {
    controller.queue_downlink(0xA00, Bytes{'g', 'o'});
  });

  // --- legacy WiFi-DC sensor ----------------------------------------------
  sta::StationConfig dc_cfg;
  dc_cfg.mac = MacAddress::from_seed(0xDC);
  sta::Station dc_sensor{scheduler, wifi_medium, {2, 3}, dc_cfg, seeder.fork()};
  int dc_cycles = 0;
  std::function<void()> dc_loop = [&] {
    dc_sensor.run_duty_cycle_transmission(Bytes{'d', 'c'},
                                          [&](const sta::CycleReport& r) {
                                            if (r.success) ++dc_cycles;
                                          });
  };
  scheduler.schedule_at(TimePoint{seconds(10)}, dc_loop);
  scheduler.schedule_at(TimePoint{seconds(130)}, dc_loop);

  // --- BLE baseline (own band) ----------------------------------------------
  ble::BleLinkConfig ble_cfg;
  ble_cfg.connection_interval = seconds(10);
  ble::BleMaster ble_master{scheduler, ble_medium, {0, 0}, ble_cfg};
  ble::BleSlave ble_slave{scheduler, ble_medium, {2, 0}, ble_cfg};
  for (int i = 0; i < 30; ++i) ble_slave.queue_payload(Bytes{static_cast<std::uint8_t>(i)});
  ble_master.start();
  ble_slave.start();

  // --- the user's phone -------------------------------------------------------
  core::ScanListModel phone{scheduler, wifi_medium, {1, 4}};

  // --- run ---------------------------------------------------------------------
  scheduler.run_until(TimePoint{minutes(5)});
  for (auto& s : sensors) s->stop_duty_cycle();
  twoway.stop_duty_cycle();

  // --- assertions ---------------------------------------------------------------
  ASSERT_TRUE(gw_ready);

  // The gateway bridged the fleet: 3 sensors x ~15 cycles + two-way device.
  EXPECT_GE(server_rows.size(), 40u);
  EXPECT_EQ(gateway.stats().forward_failures, 0u);
  std::set<std::uint32_t> bridged_ids;
  for (const auto& row : server_rows) bridged_ids.insert(row.device_id);
  EXPECT_TRUE(bridged_ids.count(0x900));
  EXPECT_TRUE(bridged_ids.count(0x901));
  EXPECT_TRUE(bridged_ids.count(0x902));
  EXPECT_TRUE(bridged_ids.count(0xA00));

  // The two-way downlink landed in an RX window.
  ASSERT_EQ(downlinks.size(), 1u);
  EXPECT_EQ(downlinks[0].data, (Bytes{'g', 'o'}));

  // The legacy sensor completed both of its expensive cycles.
  EXPECT_EQ(dc_cycles, 2);
  EXPECT_EQ(direct_uplinks.size(), 2u);

  // BLE ran unbothered on its own band.
  EXPECT_GE(ble_master.received_payloads().size(), 25u);
  EXPECT_EQ(ble_slave.polls_missed(), 0u);

  // And through all of it, the user's network list shows exactly one
  // network: the real AP.
  const auto visible = phone.visible();
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_EQ(visible[0].ssid, ap_cfg.ssid);
  EXPECT_GE(phone.hidden_networks(), 4u);  // the Wi-LE fleet, unseen
}

}  // namespace
}  // namespace wile
