// Ingest pipeline units: the flat open-addressing table, the
// controller's consolidated DeviceState bookkeeping, the wile-batch-v1
// uplink codec, and the gateway rules engine — plus the scenario wiring
// that feeds the engine from gateway deliveries.
#include <gtest/gtest.h>

#include <stdexcept>

#include "util/flat_table.hpp"
#include "wile/gateway.hpp"
#include "wile/ingest.hpp"
#include "wile/rules/engine.hpp"
#include "wile/scenario.hpp"

namespace wile {
namespace {

// --- util::FlatTable ---------------------------------------------------------

TEST(FlatTable, InsertFindRoundTripIncludingKeyZero) {
  util::FlatTable<int> table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find(0), nullptr);

  table.find_or_insert(0) = 41;    // device id 0 is a legal key
  table.find_or_insert(7) = 42;
  EXPECT_EQ(table.size(), 2u);
  ASSERT_NE(table.find(0), nullptr);
  EXPECT_EQ(*table.find(0), 41);
  ASSERT_NE(table.find(7), nullptr);
  EXPECT_EQ(*table.find(7), 42);
  EXPECT_EQ(table.find(8), nullptr);

  // find_or_insert on an existing key returns the same value.
  EXPECT_EQ(table.find_or_insert(7), 42);
  EXPECT_EQ(table.size(), 2u);
}

TEST(FlatTable, GrowthPreservesEveryEntry) {
  util::FlatTable<std::uint32_t> table;
  constexpr std::uint32_t kN = 1000;
  for (std::uint32_t k = 0; k < kN; ++k) {
    table.find_or_insert(k * 2654435761u) = k;  // scattered keys
  }
  EXPECT_EQ(table.size(), kN);
  // Load factor stays <= 1/2 through doubling growth.
  EXPECT_GE(table.capacity(), 2 * kN);
  for (std::uint32_t k = 0; k < kN; ++k) {
    auto* v = table.find(k * 2654435761u);
    ASSERT_NE(v, nullptr) << "key " << k;
    EXPECT_EQ(*v, k);
  }
}

TEST(FlatTable, IterationOrderIsAPureFunctionOfInsertions) {
  auto fill = [] {
    util::FlatTable<int> t;
    for (std::uint32_t k = 0; k < 300; ++k) t.find_or_insert(k * 7919u) = 1;
    return t;
  };
  util::FlatTable<int> a = fill();
  util::FlatTable<int> b = fill();
  std::vector<std::uint32_t> ka, kb;
  a.for_each([&](std::uint32_t k, int&) { ka.push_back(k); });
  b.for_each([&](std::uint32_t k, int&) { kb.push_back(k); });
  EXPECT_EQ(ka, kb);
  EXPECT_EQ(ka.size(), 300u);
}

// --- core::IngestTable -------------------------------------------------------

TEST(IngestTable, NoteUplinkTracksGapsAndReorderedArrivals) {
  core::DeviceState dev;
  core::IngestTable::note_uplink(dev, 10);  // first fragment: starts the track
  EXPECT_TRUE(dev.track_started);
  EXPECT_EQ(dev.last_sequence, 10u);
  EXPECT_EQ(dev.recent_seen, 1u);

  core::IngestTable::note_uplink(dev, 11);  // in order
  EXPECT_EQ(dev.last_sequence, 11u);
  EXPECT_EQ(dev.recent_seen, 0b11u);
  EXPECT_EQ(dev.span, 2u);

  core::IngestTable::note_uplink(dev, 14);  // gap of 3: 12, 13 missing
  EXPECT_EQ(dev.last_sequence, 14u);
  EXPECT_EQ(dev.recent_seen, 0b011001u);
  EXPECT_EQ(dev.span, 5u);

  core::IngestTable::note_uplink(dev, 12);  // late arrival fills its bit
  EXPECT_EQ(dev.last_sequence, 14u);
  EXPECT_EQ(dev.recent_seen, 0b011101u);
}

TEST(IngestTable, NoteUplinkSurvivesSequenceWrap) {
  core::DeviceState dev;
  core::IngestTable::note_uplink(dev, 0xFFFFFFFEu);
  core::IngestTable::note_uplink(dev, 0xFFFFFFFFu);
  core::IngestTable::note_uplink(dev, 0u);  // serial arithmetic: still "ahead"
  core::IngestTable::note_uplink(dev, 1u);
  EXPECT_EQ(dev.last_sequence, 1u);
  EXPECT_EQ(dev.recent_seen, 0b1111u);
  EXPECT_EQ(dev.span, 4u);
}

TEST(IngestTable, ShouldReportFiresOncePerAnnouncedSequence) {
  core::DeviceState dev;
  EXPECT_TRUE(core::IngestTable::should_report(dev, 5));
  EXPECT_FALSE(core::IngestTable::should_report(dev, 5));  // repeat beacon
  EXPECT_TRUE(core::IngestTable::should_report(dev, 6));   // new announce
  EXPECT_FALSE(core::IngestTable::should_report(dev, 6));
}

TEST(IngestTable, RecordCreatedByDownlinkStartsTrackOnFirstUplink) {
  // queue_downlink creates the record before any uplink is heard; the
  // first uplink must initialize the track instead of counting a
  // phantom gap from sequence 0.
  core::IngestTable table;
  core::DeviceState& dev = table.state(0xA00);
  EXPECT_FALSE(dev.has_queued());  // queue pointer starts unallocated
  dev.queue().push_back(Bytes{'g', 'o'});
  EXPECT_TRUE(dev.has_queued());
  EXPECT_FALSE(dev.track_started);

  core::IngestTable::note_uplink(dev, 500);
  EXPECT_TRUE(dev.track_started);
  EXPECT_EQ(dev.last_sequence, 500u);
  EXPECT_EQ(dev.recent_seen, 1u);
  EXPECT_EQ(dev.span, 1u);
  EXPECT_EQ(table.devices(), 1u);
}

// --- core::ForwardedBatch ----------------------------------------------------

core::ForwardedReading make_reading(std::uint32_t id, std::uint32_t seq,
                                    std::size_t len) {
  core::ForwardedReading r;
  r.device_id = id;
  r.sequence = seq;
  r.rssi_dbm = -60;
  r.data = Bytes(len, static_cast<std::uint8_t>(seq));
  return r;
}

TEST(ForwardedBatch, RoundTripsMultipleReadings) {
  core::ForwardedBatch batch;
  for (std::uint32_t i = 0; i < 5; ++i) {
    batch.readings.push_back(make_reading(0x100 + i, i, 10 + i));
  }
  const auto decoded = core::ForwardedBatch::decode(batch.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->readings, batch.readings);
}

TEST(ForwardedBatch, EmptyBatchRoundTrips) {
  core::ForwardedBatch batch;
  const Bytes wire = batch.encode();
  EXPECT_EQ(wire.size(), core::ForwardedBatch::kHeaderSize);
  const auto decoded = core::ForwardedBatch::decode(wire);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->readings.empty());
}

TEST(ForwardedBatch, IncrementalArenaEncodeMatchesEncode) {
  core::ForwardedBatch batch;
  for (std::uint32_t i = 0; i < 3; ++i) {
    batch.readings.push_back(make_reading(0x200 + i, 40 + i, 8));
  }
  Bytes arena{0xDE, 0xAD};  // stale contents must be cleared by begin()
  core::ForwardedBatch::begin(arena);
  for (const auto& r : batch.readings) core::ForwardedBatch::append(arena, r);
  core::ForwardedBatch::finish(arena, batch.readings.size());
  EXPECT_EQ(arena, batch.encode());
}

TEST(ForwardedBatch, BatchAndLegacyEncodingsRejectEachOther) {
  // A batch of one can never be mis-decoded as a bare ForwardedReading
  // (its trailing-length check fails), and vice versa.
  core::ForwardedBatch batch;
  batch.readings.push_back(make_reading(0x300, 9, 12));
  EXPECT_FALSE(core::ForwardedReading::decode(batch.encode()));
  EXPECT_FALSE(core::ForwardedBatch::decode(batch.readings[0].encode()));
}

TEST(ForwardedBatch, RejectsMalformedPayloads) {
  core::ForwardedBatch batch;
  batch.readings.push_back(make_reading(0x400, 1, 6));
  Bytes wire = batch.encode();

  Bytes wrong_version = wire;
  wrong_version[0] = 2;
  EXPECT_FALSE(core::ForwardedBatch::decode(wrong_version));

  Bytes wrong_flags = wire;
  wrong_flags[1] = 1;
  EXPECT_FALSE(core::ForwardedBatch::decode(wrong_flags));

  Bytes trailing = wire;
  trailing.push_back(0x00);
  EXPECT_FALSE(core::ForwardedBatch::decode(trailing));

  Bytes truncated{wire.begin(), wire.end() - 1};
  EXPECT_FALSE(core::ForwardedBatch::decode(truncated));

  Bytes count_lies = wire;  // count says 2, only 1 record present
  count_lies[2] = 2;
  EXPECT_FALSE(core::ForwardedBatch::decode(count_lies));
}

TEST(ForwardedBatch, LengthPrefixedRecordsAreWholeUnits) {
  // Every record in the stream is independently decodable from its
  // length prefix — a batch boundary can never split a record.
  core::ForwardedBatch batch;
  for (std::uint32_t i = 0; i < 4; ++i) {
    batch.readings.push_back(make_reading(0x500 + i, i, 3 * i));
  }
  const Bytes wire = batch.encode();
  std::size_t off = core::ForwardedBatch::kHeaderSize;
  for (const auto& expected : batch.readings) {
    const std::size_t len = wire[off] | (wire[off + 1] << 8);
    const auto record = core::ForwardedReading::decode(
        BytesView{wire.data() + off + 2, len});
    ASSERT_TRUE(record);
    EXPECT_EQ(*record, expected);
    off += 2 + len;
  }
  EXPECT_EQ(off, wire.size());
}

// --- rules::Engine -----------------------------------------------------------

rules::Reading reading_at(double t_sec, std::uint32_t device, double value) {
  rules::Reading r;
  r.device_id = device;
  r.value = value;
  r.at = TimePoint{seconds(0)} + Duration{static_cast<std::int64_t>(t_sec * 1e6)};
  return r;
}

TEST(RulesEngine, ConditionNodeFiresAndCounts) {
  rules::RuleSpec spec;
  spec.name = "hot";
  spec.when = rules::ConditionSpec{rules::Field::Value, rules::Cmp::Gt, 30.0};
  rules::Engine engine{{spec}};

  std::vector<rules::Fire> fires;
  engine.set_fire_callback([&](const rules::Fire& f) { fires.push_back(f); });

  engine.on_reading(reading_at(1, 7, 25.0));  // below threshold
  engine.on_reading(reading_at(2, 7, 35.0));  // fires
  engine.on_reading(reading_at(3, 8, 31.0));  // other device fires too

  EXPECT_EQ(engine.fired_total(), 2u);
  EXPECT_EQ(engine.fired("hot"), 2u);
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_EQ(fires[0].device_id, 7u);
  EXPECT_DOUBLE_EQ(fires[0].observed, 35.0);
  EXPECT_FALSE(fires[0].stale);

  const auto& nodes = engine.nodes("hot");
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].kind, rules::NodeKind::Condition);
  EXPECT_EQ(nodes[0].evaluated, 3u);
  EXPECT_EQ(nodes[0].passed, 2u);
  EXPECT_THROW((void)engine.nodes("no-such-rule"), std::out_of_range);
  EXPECT_THROW((void)engine.fired("no-such-rule"), std::out_of_range);
}

TEST(RulesEngine, ReadingsWithoutValueFailValueConditions) {
  rules::RuleSpec spec;
  spec.name = "v";
  spec.when = rules::ConditionSpec{rules::Field::Value, rules::Cmp::Ge, 0.0};
  rules::Engine engine{{spec}};
  rules::Reading r;
  r.device_id = 1;
  r.at = TimePoint{seconds(1)};
  r.value = std::nullopt;
  engine.on_reading(r);
  EXPECT_EQ(engine.fired_total(), 0u);
}

TEST(RulesEngine, HoldNodeRequiresSustainedCondition) {
  rules::RuleSpec spec;
  spec.name = "sustained";
  spec.when = rules::ConditionSpec{rules::Field::Value, rules::Cmp::Gt, 10.0};
  spec.hold = seconds(5);
  rules::Engine engine{{spec}};

  engine.on_reading(reading_at(0, 1, 20.0));  // streak starts, 0s < 5s
  engine.on_reading(reading_at(3, 1, 20.0));  // 3s < 5s
  EXPECT_EQ(engine.fired_total(), 0u);
  engine.on_reading(reading_at(6, 1, 20.0));  // 6s >= 5s: fires
  EXPECT_EQ(engine.fired_total(), 1u);

  // A failing reading resets the streak.
  engine.on_reading(reading_at(7, 1, 5.0));
  engine.on_reading(reading_at(8, 1, 20.0));   // new streak starts at 8s
  engine.on_reading(reading_at(11, 1, 20.0));  // 3s < 5s
  EXPECT_EQ(engine.fired_total(), 1u);
  engine.on_reading(reading_at(13, 1, 20.0));  // 5s >= 5s: fires again
  EXPECT_EQ(engine.fired_total(), 2u);
}

TEST(RulesEngine, CooldownNodeSpacesFiresPerDevice) {
  rules::RuleSpec spec;
  spec.name = "alert";
  spec.when = rules::ConditionSpec{rules::Field::Value, rules::Cmp::Gt, 0.0};
  spec.cooldown = seconds(10);
  rules::Engine engine{{spec}};

  engine.on_reading(reading_at(0, 1, 1.0));   // fires (first)
  engine.on_reading(reading_at(4, 1, 1.0));   // suppressed
  engine.on_reading(reading_at(9, 1, 1.0));   // suppressed
  engine.on_reading(reading_at(5, 2, 1.0));   // other device: its own cooldown
  engine.on_reading(reading_at(10, 1, 1.0));  // 10s >= 10s: fires
  EXPECT_EQ(engine.fired("alert"), 3u);

  const auto& nodes = engine.nodes("alert");
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[1].kind, rules::NodeKind::Cooldown);
  EXPECT_EQ(nodes[1].evaluated, 5u);  // every condition pass reached it
  EXPECT_EQ(nodes[1].passed, 3u);
}

TEST(RulesEngine, AggregateWindowCountsAndEvicts) {
  rules::RuleSpec spec;
  spec.name = "burst";
  spec.aggregate =
      rules::AggregateSpec{rules::AggOp::Count, seconds(10), rules::Cmp::Ge, 3.0};
  rules::Engine engine{{spec}};

  engine.on_reading(reading_at(0, 1, 1.0));
  engine.on_reading(reading_at(1, 1, 1.0));
  EXPECT_EQ(engine.fired_total(), 0u);
  engine.on_reading(reading_at(2, 1, 1.0));  // 3 in window: fires
  EXPECT_EQ(engine.fired_total(), 1u);
  // 30s later the window has drained; two readings are not enough.
  engine.on_reading(reading_at(32, 1, 1.0));
  engine.on_reading(reading_at(33, 1, 1.0));
  EXPECT_EQ(engine.fired_total(), 1u);
  engine.on_reading(reading_at(34, 1, 1.0));
  EXPECT_EQ(engine.fired_total(), 2u);
}

TEST(RulesEngine, AggregateMeanOverConditionPassingReadings) {
  // The aggregate only accumulates readings that passed the condition.
  rules::RuleSpec spec;
  spec.name = "hot-mean";
  spec.when = rules::ConditionSpec{rules::Field::Value, rules::Cmp::Gt, 0.0};
  spec.aggregate =
      rules::AggregateSpec{rules::AggOp::Mean, seconds(60), rules::Cmp::Gt, 20.0};
  rules::Engine engine{{spec}};

  std::vector<rules::Fire> fires;
  engine.set_fire_callback([&](const rules::Fire& f) { fires.push_back(f); });

  engine.on_reading(reading_at(0, 1, -5.0));  // fails condition: not accumulated
  engine.on_reading(reading_at(1, 1, 10.0));  // mean 10: no fire
  engine.on_reading(reading_at(2, 1, 40.0));  // mean 25: fires
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_DOUBLE_EQ(fires[0].observed, 25.0);  // aggregate result, not the raw value
}

TEST(RulesEngine, StaleWatchdogFiresOncePerSilence) {
  rules::RuleSpec spec;
  spec.name = "quiet";
  spec.stale_after = seconds(30);
  rules::Engine engine{{spec}};

  std::vector<rules::Fire> fires;
  engine.set_fire_callback([&](const rules::Fire& f) { fires.push_back(f); });

  engine.on_reading(reading_at(0, 9, 1.0));
  engine.poll(TimePoint{seconds(20)});  // not yet stale
  EXPECT_TRUE(fires.empty());
  engine.poll(TimePoint{seconds(31)});  // stale: fires
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_TRUE(fires[0].stale);
  EXPECT_EQ(fires[0].device_id, 9u);
  EXPECT_DOUBLE_EQ(fires[0].observed, 31.0);  // silence duration in seconds
  engine.poll(TimePoint{seconds(60)});  // same silence: no re-fire
  EXPECT_EQ(fires.size(), 1u);

  // A new reading re-arms the watchdog.
  engine.on_reading(reading_at(70, 9, 1.0));
  engine.poll(TimePoint{seconds(101)});
  EXPECT_EQ(fires.size(), 2u);
}

TEST(RulesEngine, DefaultValueExtractorDecodesLittleEndian) {
  rules::RuleSpec spec;
  spec.name = "le";
  spec.when = rules::ConditionSpec{rules::Field::Value, rules::Cmp::Eq, 0x1234};
  rules::Engine engine{{spec}};

  core::Message msg;
  msg.device_id = 1;
  msg.data = Bytes{0x34, 0x12, 0xFF};  // u16le from the first two bytes
  engine.on_message(msg, -70.0, TimePoint{seconds(1)});
  EXPECT_EQ(engine.fired_total(), 1u);

  msg.data = Bytes{0x34};  // single byte
  rules::RuleSpec single;
  single.name = "b";
  single.when = rules::ConditionSpec{rules::Field::Value, rules::Cmp::Eq, 0x34};
  rules::Engine engine2{{single}};
  engine2.on_message(msg, -70.0, TimePoint{seconds(1)});
  EXPECT_EQ(engine2.fired_total(), 1u);

  msg.data.clear();  // empty payload: no value, condition fails
  rules::Engine engine3{{single}};
  engine3.on_message(msg, -70.0, TimePoint{seconds(1)});
  EXPECT_EQ(engine3.fired_total(), 0u);
}

TEST(RulesEngine, PublishMetricsExposesPerNodeCounters) {
  rules::RuleSpec spec;
  spec.name = "hot";
  spec.when = rules::ConditionSpec{rules::Field::Value, rules::Cmp::Gt, 30.0};
  spec.cooldown = seconds(1);
  rules::Engine engine{{spec}};
  telemetry::MetricsRegistry registry;
  engine.publish_metrics(registry, "rules");

  engine.on_reading(reading_at(1, 7, 35.0));
  engine.on_reading(reading_at(2, 7, 25.0));

  EXPECT_EQ(registry.counter_value("rules.fired"), 1u);
  EXPECT_EQ(registry.counter_value("rules.hot.fired"), 1u);
  EXPECT_EQ(registry.counter_value("rules.hot.condition.evaluated"), 2u);
  EXPECT_EQ(registry.counter_value("rules.hot.condition.passed"), 1u);
  EXPECT_EQ(registry.counter_value("rules.hot.cooldown.passed"), 1u);
}

// --- scenario wiring ---------------------------------------------------------

TEST(ScenarioRules, EngineSeesEveryGatewayDelivery) {
  rules::RuleSpec every;
  every.name = "any-reading";
  every.when = rules::ConditionSpec{rules::Field::Sequence, rules::Cmp::Ge, 0.0};

  auto scenario = sim::ScenarioBuilder{}
                      .devices(4)
                      .gateways(1)
                      .duty_cycle(seconds(30))
                      .seed(0xF1EE)
                      .medium_seed(0xF1EE)
                      .rules({every})
                      .build();
  scenario->run_until(TimePoint{minutes(5)});

  ASSERT_NE(scenario->rules(), nullptr);
  EXPECT_GT(scenario->messages(), 0u);
  EXPECT_EQ(scenario->rules()->fired_total(), scenario->messages());
  EXPECT_EQ(scenario->metrics().counter_value("rules.fired"),
            scenario->rules()->fired_total());
}

TEST(ScenarioRules, StalePollCatchesSilencedFleet) {
  rules::RuleSpec quiet;
  quiet.name = "gone-quiet";
  quiet.stale_after = seconds(60);

  auto scenario = sim::ScenarioBuilder{}
                      .devices(2)
                      .gateways(1)
                      .duty_cycle(seconds(20))
                      .seed(0xF1EF)
                      .medium_seed(0xF1EF)
                      .rules({quiet})
                      .rules_poll_every(seconds(5))
                      .build();
  scenario->run_until(TimePoint{minutes(2)});
  EXPECT_EQ(scenario->rules()->fired("gone-quiet"), 0u);

  scenario->stop_all();
  scenario->run_for(minutes(2));  // fleet silent well past stale_after
  EXPECT_EQ(scenario->rules()->fired("gone-quiet"), 2u);  // once per device
}

TEST(ScenarioRules, ParallelModeRejectsRules) {
  rules::RuleSpec spec;
  spec.name = "r";
  spec.when = rules::ConditionSpec{};
  EXPECT_THROW(sim::ScenarioBuilder{}.devices(4).threads(2).rules({spec}).build(),
               std::invalid_argument);
}

}  // namespace
}  // namespace wile
