// Telemetry subsystem + ScenarioBuilder facade (DESIGN.md §10).
//
// Pins the contracts the rest of the repo builds on:
//  * registry register/lookup/snapshot semantics, including the
//    registration-order determinism exporters rely on;
//  * disabled-mode zero side effects — a telemetry-off scenario runs the
//    exact same simulation as a pre-telemetry build;
//  * ScenarioBuilder bit-identity with the historical hand-wired
//    scale_fleet setup (construction order, RNG forks, staggered starts);
//  * exported aggregates equal to the legacy Stats accessors, per-node
//    metrics present for every device;
//  * byte-identical JSON export and trace for same-seed runs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/sampler.hpp"
#include "wile/scenario.hpp"

namespace wile::telemetry {
namespace {

// --- registry ---------------------------------------------------------------

TEST(MetricsRegistry, BindLookupSnapshot) {
  MetricsRegistry reg;
  std::uint64_t tx = 0;
  double temp = 21.5;
  reg.bind_counter("medium.transmissions", &tx);
  reg.bind_gauge("env.temperature_c", &temp);
  reg.bind_counter_fn("derived.twice_tx", [&tx] { return 2 * tx; });

  EXPECT_EQ(reg.size(), 3u);
  EXPECT_TRUE(reg.contains("medium.transmissions"));
  EXPECT_FALSE(reg.contains("medium.nope"));

  tx = 41;
  temp = -3.25;
  EXPECT_EQ(reg.counter_value("medium.transmissions"), 41u);
  EXPECT_EQ(reg.counter_value("derived.twice_tx"), 82u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("env.temperature_c"), -3.25);

  const Snapshot snap = reg.snapshot(TimePoint{seconds(7)});
  EXPECT_EQ(snap.at, TimePoint{seconds(7)});
  ASSERT_EQ(snap.values.size(), 3u);
  // Registration order, not name order.
  EXPECT_EQ(snap.values[0].name, "medium.transmissions");
  EXPECT_EQ(snap.values[1].name, "env.temperature_c");
  EXPECT_EQ(snap.values[2].name, "derived.twice_tx");
  const MetricValue* v = snap.find("medium.transmissions");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, 41u);
  EXPECT_EQ(snap.find("missing"), nullptr);

  // A snapshot is a copy: later increments don't alter it.
  tx = 1000;
  EXPECT_EQ(snap.find("medium.transmissions")->count, 41u);
}

TEST(MetricsRegistry, DuplicateNameThrows) {
  MetricsRegistry reg;
  std::uint64_t a = 0, b = 0;
  reg.bind_counter("x.y", &a);
  EXPECT_THROW(reg.bind_counter("x.y", &b), std::logic_error);
  // histogram() is get-or-create, not a duplicate registration.
  Histogram* h1 = reg.histogram("x.h");
  Histogram* h2 = reg.histogram("x.h");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistry, UnbindPrefix) {
  MetricsRegistry reg;
  std::uint64_t a = 0, b = 0, c = 0;
  reg.bind_counter("node.7.sender.cycles", &a);
  reg.bind_counter("node.7.sender.tx.beacons", &b);
  reg.bind_counter("node.8.sender.cycles", &c);
  reg.unbind_prefix("node.7.");
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_FALSE(reg.contains("node.7.sender.cycles"));
  EXPECT_TRUE(reg.contains("node.8.sender.cycles"));
  // The index is rebuilt, so survivors stay readable.
  c = 5;
  EXPECT_EQ(reg.counter_value("node.8.sender.cycles"), 5u);
}

TEST(Histogram, BucketsAndMoments) {
  Histogram h;
  h.record(0);    // bucket 0
  h.record(1);    // bucket 1
  h.record(7);    // bucket 3: [4, 8)
  h.record(8);    // bucket 4: [8, 16)
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 16u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 8u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.buckets[4], 1u);
}

// --- tracer -----------------------------------------------------------------

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.begin(TimePoint{seconds(1)}, 3, Phase::Tx);
  t.instant(TimePoint{seconds(1)}, 3, Phase::Sample);
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, BoundedBufferCountsDrops) {
  Tracer t;
  t.set_enabled(true);
  t.set_max_events(3);
  for (int i = 0; i < 5; ++i) t.instant(TimePoint{usec(i)}, 1, Phase::Csma);
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.dropped(), 2u);
  t.clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

// --- periodic sampler -------------------------------------------------------

TEST(Sampler, AggregatesOnSchedulerTimer) {
  sim::Scheduler scheduler;
  MetricsRegistry reg;
  std::uint64_t ticks = 0;
  reg.bind_counter("agg.ticks", &ticks);
  reg.bind_counter("node.3.sender.cycles", &ticks);  // filtered out by default

  PeriodicSampler<sim::Scheduler> sampler{scheduler, reg, seconds(1)};
  sampler.start();
  scheduler.schedule_at(TimePoint{msec(2500)}, [&ticks] { ticks = 9; });
  scheduler.run_until(TimePoint{msec(4500)});

  // Samples at t=1,2,3,4 s.
  ASSERT_EQ(sampler.samples().size(), 4u);
  EXPECT_EQ(sampler.samples()[1].at, TimePoint{seconds(2)});
  EXPECT_EQ(sampler.samples()[1].find("agg.ticks")->count, 0u);
  EXPECT_EQ(sampler.samples()[3].find("agg.ticks")->count, 9u);
  // Default filter keeps aggregates only.
  EXPECT_EQ(sampler.samples()[0].find("node.3.sender.cycles"), nullptr);
  sampler.stop();
}

// --- scenario ---------------------------------------------------------------

constexpr int kFleetN = 200;
constexpr int kFleetSimSeconds = 150;

/// The pre-ScenarioBuilder scale_fleet wiring, verbatim (same seeds,
/// same construction order, same staggered starts). The facade must be
/// indistinguishable from this.
struct HandWired {
  std::uint64_t events = 0;
  sim::Medium::Stats medium_stats{};
  std::uint64_t messages = 0;
};

HandWired run_hand_wired(int n, int sim_seconds) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{0xF1EE7}};

  constexpr double kSpacingM = 5.0;
  const int side = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  const double extent = side * kSpacingM;

  Rng master{0xF1EE7C0DE};
  std::vector<std::unique_ptr<core::Sender>> senders;
  senders.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    core::SenderConfig cfg;
    cfg.device_id = static_cast<std::uint32_t>(i + 1);
    cfg.period = seconds(60);
    cfg.wake_jitter = msec(500);
    cfg.timeline_max_segments = 64;
    const sim::Position pos{(i % side) * kSpacingM, (i / side) * kSpacingM};
    senders.push_back(
        std::make_unique<core::Sender>(scheduler, medium, pos, cfg, master.fork()));
    const auto start_us = static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(i) * 60'000'000ull) / static_cast<std::uint64_t>(n));
    core::Sender* s = senders.back().get();
    scheduler.schedule_at(TimePoint{usec(start_us)}, [s] {
      s->start_duty_cycle([] { return Bytes(16, 0xA5); });
    });
  }

  const int n_gw = std::max(1, n / 2500);
  std::vector<std::unique_ptr<core::Receiver>> gateways;
  std::uint64_t messages = 0;
  for (int k = 0; k < n_gw; ++k) {
    const double c = (k + 0.5) * extent / n_gw;
    gateways.push_back(
        std::make_unique<core::Receiver>(scheduler, medium, sim::Position{c, c}));
    gateways.back()->set_message_callback(
        [&messages](const core::Message&, const core::RxMeta&) { ++messages; });
  }

  scheduler.run_until(TimePoint{seconds(sim_seconds)});
  return {scheduler.events_run(), medium.stats(), messages};
}

std::unique_ptr<sim::Scenario> build_fleet(bool telemetry) {
  return sim::ScenarioBuilder{}
      .devices(kFleetN)
      .grid_spacing_m(5)
      .gateway_every(2500)
      .duty_cycle(seconds(60))
      .seed(0xF1EE7C0DE)
      .medium_seed(0xF1EE7)
      .telemetry(telemetry)
      .build();
}

TEST(Scenario, BitIdenticalToHandWiredFleet) {
  const HandWired legacy = run_hand_wired(kFleetN, kFleetSimSeconds);

  auto scenario = build_fleet(/*telemetry=*/true);
  scenario->run_until(TimePoint{seconds(kFleetSimSeconds)});

  // Same event count means the whole schedule unfolded identically; the
  // medium counters and delivered-message count pin the radio side.
  EXPECT_EQ(scenario->scheduler().events_run(), legacy.events);
  EXPECT_EQ(scenario->medium().stats().transmissions, legacy.medium_stats.transmissions);
  EXPECT_EQ(scenario->medium().stats().deliveries, legacy.medium_stats.deliveries);
  EXPECT_EQ(scenario->medium().stats().collision_losses,
            legacy.medium_stats.collision_losses);
  EXPECT_EQ(scenario->medium().stats().channel_losses,
            legacy.medium_stats.channel_losses);
  EXPECT_EQ(scenario->messages(), legacy.messages);
  EXPECT_GT(scenario->messages(), 0u);
}

TEST(Scenario, DisabledTelemetryHasZeroSideEffects) {
  auto on = build_fleet(true);
  auto off = build_fleet(false);
  on->run_until(TimePoint{seconds(kFleetSimSeconds)});
  off->run_until(TimePoint{seconds(kFleetSimSeconds)});

  EXPECT_FALSE(off->telemetry_enabled());
  EXPECT_EQ(off->metrics().size(), 0u);
  EXPECT_GT(on->metrics().size(), 0u);

  // The simulation itself is untouched by registration.
  EXPECT_EQ(on->scheduler().events_run(), off->scheduler().events_run());
  EXPECT_EQ(on->medium().stats().transmissions, off->medium().stats().transmissions);
  EXPECT_EQ(on->medium().stats().deliveries, off->medium().stats().deliveries);
  EXPECT_EQ(on->messages(), off->messages());
}

TEST(Scenario, AggregatesMatchLegacyStatsExactly) {
  auto scenario = build_fleet(true);
  scenario->run_until(TimePoint{seconds(kFleetSimSeconds)});

  const Snapshot snap = scenario->snapshot();
  const sim::Medium::Stats& m = scenario->medium().stats();
  EXPECT_EQ(snap.find("medium.transmissions")->count, m.transmissions);
  EXPECT_EQ(snap.find("medium.deliveries")->count, m.deliveries);
  EXPECT_EQ(snap.find("medium.collision_losses")->count, m.collision_losses);
  EXPECT_EQ(snap.find("medium.channel_losses")->count, m.channel_losses);
  EXPECT_EQ(snap.find("scheduler.events_run")->count,
            scenario->scheduler().events_run());
  EXPECT_EQ(snap.find("fleet.messages")->count, scenario->messages());
  EXPECT_DOUBLE_EQ(snap.find("fleet.devices")->value, kFleetN);
}

TEST(Scenario, PerNodeMetricsForEveryDevice) {
  auto scenario = build_fleet(true);
  scenario->run_until(TimePoint{seconds(kFleetSimSeconds)});

  MetricsRegistry& reg = scenario->metrics();
  std::uint64_t tx_total = 0;
  for (const auto& s : scenario->devices()) {
    const std::string p = "node." + std::to_string(s->node_id()) + ".sender";
    ASSERT_TRUE(reg.contains(p + ".cycles")) << p;
    EXPECT_EQ(reg.counter_value(p + ".cycles"), s->cycles_run());
    EXPECT_EQ(reg.counter_value(p + ".tx.beacons"), s->beacons_sent());
    EXPECT_EQ(reg.counter_value(p + ".tx.airtime_us"),
              static_cast<std::uint64_t>(s->tx_airtime_total().count()));
    // Integrated energy over the whole run: every device slept if nothing
    // else, so the gauge is strictly positive.
    EXPECT_GT(reg.gauge_value(p + ".energy_j"), 0.0);
    tx_total += s->beacons_sent();
  }
  EXPECT_EQ(tx_total, scenario->medium().stats().transmissions);

  for (const auto& r : scenario->gateways()) {
    const std::string p = "node." + std::to_string(r->node_id()) + ".receiver";
    ASSERT_TRUE(reg.contains(p + ".messages"));
    EXPECT_EQ(reg.counter_value(p + ".messages"), r->stats().messages);
    EXPECT_EQ(reg.counter_value(p + ".beacons_seen"), r->stats().beacons_seen);
  }
}

TEST(Scenario, ExportedJsonIsDeterministicAcrossRuns) {
  ExportMeta meta;
  meta.bench = "test_fleet";
  meta.ints = {{"n", kFleetN}};

  auto a = build_fleet(true);
  a->run_until(TimePoint{seconds(kFleetSimSeconds)});
  const std::string json_a = a->export_json(meta);

  auto b = build_fleet(true);
  b->run_until(TimePoint{seconds(kFleetSimSeconds)});
  const std::string json_b = b->export_json(meta);

  EXPECT_EQ(json_a, json_b);
  EXPECT_NE(json_a.find("\"schema\": \"wile-telemetry-v1\""), std::string::npos);
  EXPECT_NE(json_a.find("\"bench\": \"test_fleet\""), std::string::npos);
  EXPECT_NE(json_a.find("\"nodes\": ["), std::string::npos);
  EXPECT_NE(json_a.find("\"aggregates\""), std::string::npos);
}

TEST(Scenario, PeriodicSamplesAndCsv) {
  auto scenario = sim::ScenarioBuilder{}
                      .devices(20)
                      .duty_cycle(seconds(10))
                      .sample_every(seconds(30))
                      .build();
  scenario->run_until(TimePoint{seconds(100)});

  ASSERT_EQ(scenario->samples().size(), 3u);  // t = 30, 60, 90 s
  EXPECT_EQ(scenario->samples()[0].at, TimePoint{seconds(30)});
  // Sampler keeps aggregates only.
  for (const MetricValue& v : scenario->samples()[0].values) {
    EXPECT_NE(v.name.substr(0, 5), "node.") << v.name;
  }
  // Counters are non-decreasing across samples.
  EXPECT_LE(scenario->samples()[0].find("medium.transmissions")->count,
            scenario->samples()[2].find("medium.transmissions")->count);

  const std::string csv = to_csv(scenario->snapshot());
  EXPECT_EQ(csv.substr(0, 16), "name,kind,value\n");
  EXPECT_NE(csv.find("medium.transmissions,counter,"), std::string::npos);
  const std::string series = samples_csv(scenario->samples());
  EXPECT_NE(series.find("t_us"), std::string::npos);
}

TEST(Scenario, TraceIsDeterministicAndPhased) {
  auto run = [] {
    auto scenario = sim::ScenarioBuilder{}
                        .devices(3)
                        .duty_cycle(seconds(10))
                        .trace(true)
                        .build();
    scenario->run_until(TimePoint{seconds(35)});
    return scenario;
  };
  auto a = run();
  auto b = run();

  const auto& ea = a->tracer().events();
  const auto& eb = b->tracer().events();
  ASSERT_FALSE(ea.empty());
  ASSERT_EQ(ea.size(), eb.size());
  bool saw_cycle = false, saw_tx = false;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].at_us, eb[i].at_us);
    EXPECT_EQ(ea[i].node, eb[i].node);
    EXPECT_EQ(ea[i].phase, eb[i].phase);
    EXPECT_EQ(ea[i].kind, eb[i].kind);
    saw_cycle |= ea[i].phase == Phase::Cycle;
    saw_tx |= ea[i].phase == Phase::Tx;
  }
  EXPECT_TRUE(saw_cycle);
  EXPECT_TRUE(saw_tx);
}

}  // namespace
}  // namespace wile::telemetry
