// Experiment E9 — §4.1 payload capacity and §5.4 rate choice:
//   the vendor-specific element carries up to ~253 bytes, larger
//   messages fragment across beacons, and the 72 Mbps HT rate minimises
//   on-air time (hence TX energy) at BLE-class range.
//
// Part 1 sweeps the message size (1 B .. 2 KiB) at 72 Mbps and reports
// beacons used, total airtime, TX-only energy and energy per payload
// byte. Part 2 fixes a 64-byte message and sweeps the PHY rate, showing
// why the paper transmits at 72 Mbps.
#include <cstdio>
#include <optional>

#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "wile/receiver.hpp"
#include "wile/sender.hpp"

using namespace wile;

namespace {

struct SweepResult {
  int beacons = 0;
  double airtime_us = 0.0;
  double tx_energy_uj = 0.0;
  bool delivered = false;
};

SweepResult run(std::size_t payload_bytes, phy::WifiRate rate) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  core::SenderConfig cfg;
  cfg.rate = rate;
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
  core::Receiver monitor{scheduler, medium, {2, 0}};

  Rng data_rng{payload_bytes};
  Bytes payload(payload_bytes);
  for (auto& b : payload) b = static_cast<std::uint8_t>(data_rng.below(256));

  bool delivered = false;
  monitor.set_message_callback([&](const core::Message& m, const core::RxMeta&) {
    delivered = m.data == payload;
  });

  std::optional<core::SendReport> report;
  sender.send_now(payload, [&](const core::SendReport& r) { report = r; });
  scheduler.run_until_idle();

  SweepResult out;
  out.beacons = report->beacons_sent;
  out.airtime_us = to_seconds(report->tx_airtime) * 1e6;
  out.tx_energy_uj = in_microjoules(report->tx_only_energy);
  out.delivered = delivered;
  return out;
}

}  // namespace

int main() {
  std::printf("=== E9: payload size and bitrate ablations ===\n\n");

  std::printf("-- message size sweep at 72 Mbps --\n");
  std::printf("  %-8s %8s %12s %12s %14s %10s\n", "bytes", "beacons", "airtime_us",
              "tx_uJ", "nJ_per_byte", "delivered");
  bool all_ok = true;
  for (std::size_t size : {1u, 16u, 64u, 128u, 235u, 236u, 500u, 1024u, 2048u}) {
    const SweepResult r = run(size, phy::WifiRate::Mcs7Sgi);
    std::printf("  %-8zu %8d %12.1f %12.1f %14.1f %10s\n", size, r.beacons, r.airtime_us,
                r.tx_energy_uj, 1000.0 * r.tx_energy_uj / static_cast<double>(size),
                r.delivered ? "yes" : "NO");
    all_ok = all_ok && r.delivered;
  }
  std::printf("  (fragmentation kicks in past the single-element capacity of 235 B;\n"
              "   per-byte cost falls with size until the per-beacon overhead amortises)\n");

  std::printf("\n-- rate sweep for a 64-byte message --\n");
  std::printf("  %-8s %8s %12s %12s %10s\n", "rate", "beacons", "airtime_us", "tx_uJ",
              "delivered");
  double e_1m = 0.0, e_72m = 0.0;
  for (phy::WifiRate rate : {phy::WifiRate::B1, phy::WifiRate::B11, phy::WifiRate::G6,
                             phy::WifiRate::G24, phy::WifiRate::G54, phy::WifiRate::Mcs7,
                             phy::WifiRate::Mcs7Sgi}) {
    const SweepResult r = run(64, rate);
    const auto& info = phy::rate_info(rate);
    if (rate == phy::WifiRate::B1) e_1m = r.tx_energy_uj;
    if (rate == phy::WifiRate::Mcs7Sgi) e_72m = r.tx_energy_uj;
    std::printf("  %-8s %8d %12.1f %12.1f %10s\n", std::string(info.name).c_str(),
                r.beacons, r.airtime_us, r.tx_energy_uj, r.delivered ? "yes" : "NO");
    all_ok = all_ok && r.delivered;
  }
  std::printf("\n  72 Mbps vs 1 Mbps TX energy: %.1fx cheaper — the \"WiFi is efficient "
              "at the physical layer\" premise of §1, and why §5.4 injects at 72 Mbps.\n",
              e_1m / e_72m);

  const bool ok = all_ok && e_1m / e_72m > 5.0;
  std::printf("\n  shape %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
