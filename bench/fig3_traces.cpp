// Experiments E1/E2 — Figure 3 of the paper: the current consumed by
// WiFi (a) and Wi-LE (b) for transmitting one frame, sampled at the
// Keysight 34465A's 50 kS/s.
//
// Prints, for each trace: the phase bands with their time spans and mean
// currents (the coloured regions of the figure), a decimated time/current
// series (CSV) suitable for plotting, and summary statistics compared to
// the figure's visual features.
#include <cstdio>
#include <map>
#include <optional>

#include "ap/access_point.hpp"
#include "power/trace_recorder.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "sta/station.hpp"
#include "wile/sender.hpp"

using namespace wile;

namespace {

void print_phases(const power::PowerTimeline& tl, TimePoint from, TimePoint to) {
  // Merge consecutive segments by phase label.
  struct Band {
    std::string phase;
    TimePoint start;
    TimePoint end;
    Joules energy;
  };
  std::vector<Band> bands;
  const auto& segs = tl.segments();
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const TimePoint seg_start = std::max(segs[i].start, from);
    const TimePoint seg_end = std::min(i + 1 < segs.size() ? segs[i + 1].start : to, to);
    if (seg_end <= seg_start) continue;
    const Joules e = tl.energy_between(seg_start, seg_end);
    if (!bands.empty() && bands.back().phase == segs[i].phase) {
      bands.back().end = seg_end;
      bands.back().energy += e;
    } else {
      bands.push_back({segs[i].phase, seg_start, seg_end, e});
    }
  }
  std::printf("  %-22s %10s %10s %12s %10s\n", "phase", "start_s", "end_s", "mean_mA",
              "energy_mJ");
  for (const auto& band : bands) {
    const double dur = to_seconds(band.end - band.start);
    const double mean_ma =
        dur > 0 ? in_milliamps((band.energy / (band.end - band.start)) / volts(3.3)) : 0.0;
    std::printf("  %-22s %10.4f %10.4f %12.2f %10.3f\n", band.phase.c_str(),
                to_seconds(band.start - from), to_seconds(band.end - from), mean_ma,
                in_millijoules(band.energy));
  }
}

void print_series(const std::vector<power::TraceSample>& trace) {
  const auto sparse = power::TraceRecorder::decimate(trace, 100);
  std::printf("  trace (decimated to %zu points, max-preserving):\n", sparse.size());
  std::printf("  time_s,current_mA\n");
  for (const auto& s : sparse) {
    std::printf("  %.4f,%.3f\n", s.time_s, s.current_ma);
  }
}

/// WiFi-DC (Figure 3a): sleep 0.2 s, full connect + transmit, sleep again.
void run_fig3a() {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{10}};
  ap.start();
  sta::StationConfig sta_cfg;
  sta::Station sta{scheduler, medium, {3, 0}, sta_cfg, Rng{20}};

  std::optional<sta::CycleReport> report;
  scheduler.schedule_at(TimePoint{msec(200)}, [&] {
    sta.run_duty_cycle_transmission(Bytes(16, 0x42),
                                    [&](const sta::CycleReport& r) { report = r; });
  });
  scheduler.run_until(TimePoint{seconds(10)});

  const TimePoint from{};
  const TimePoint to = report->sleep_time + msec(300);
  power::TraceRecorder recorder;
  const auto trace = recorder.record(sta.timeline(), from, to);

  std::printf("--- Figure 3a: WiFi (duty cycle, full association) ---\n");
  std::printf("  success=%d, awake %.3f s, cycle energy %.1f mJ, trace peak %.1f mA\n",
              report->success ? 1 : 0, to_seconds(report->active_time),
              in_millijoules(report->energy), power::TraceRecorder::peak_ma(trace));
  std::printf("  paper: awake ~1.4 s (0.2-1.6 s), peaks ~250 mA, phases: MC/WiFi init -> "
              "Probe/Auth./Associate -> DHCP/ARP -> Tx\n\n");
  print_phases(sta.timeline(), from, to);
  std::printf("\n");
  print_series(trace);
  std::printf("\n");
}

/// Wi-LE (Figure 3b): sleep 0.2 s, short init + single injection, sleep.
void run_fig3b() {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  core::SenderConfig cfg;
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};

  std::optional<core::SendReport> report;
  scheduler.schedule_at(TimePoint{msec(200)}, [&] {
    sender.send_now(Bytes(16, 0x42), [&](const core::SendReport& r) { report = r; });
  });
  scheduler.run_until(TimePoint{seconds(5)});

  const TimePoint from{};
  const TimePoint to = TimePoint{msec(200)} + report->active_time + msec(300);
  power::TraceRecorder recorder;
  const auto trace = recorder.record(sender.timeline(), from, to);

  std::printf("--- Figure 3b: Wi-LE (connection-less beacon injection) ---\n");
  std::printf("  success=%d, awake %.3f s, tx-only energy %.1f uJ, cycle energy %.2f mJ, "
              "trace peak %.1f mA\n",
              report->success ? 1 : 0, to_seconds(report->active_time),
              in_microjoules(report->tx_only_energy), in_millijoules(report->cycle_energy),
              power::TraceRecorder::peak_ma(trace));
  std::printf("  paper: much shorter init than WiFi (no client prep), single Tx spike, "
              "then straight back to sleep\n\n");
  print_phases(sender.timeline(), from, to);
  std::printf("\n");
  print_series(trace);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== E1/E2: Figure 3 — current traces for one transmission ===\n\n");
  run_fig3a();
  run_fig3b();
  return 0;
}
