// Experiment E3 — Table 1 of the paper:
//
//                Wi-LE    BLE     WiFi-DC    WiFi-PS
//  Energy/packet 84 uJ    71 uJ   238.2 mJ   19.8 mJ
//  Idle current  2.5 uA   1.1 uA  2.5 uA     4500 uA
//
// Each scenario is simulated end to end (real frames over the shared
// medium) and energy is integrated from the device's current-draw
// timeline, exactly as the paper integrates its multimeter trace.
#include <cstdio>
#include <optional>

#include "ap/access_point.hpp"
#include "ble/link.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "sta/station.hpp"
#include "wile/sender.hpp"

using namespace wile;

namespace {

struct Row {
  const char* name;
  double paper_energy_uj;
  double measured_energy_uj;
  double paper_idle_ua;
  double measured_idle_ua;
};

Row run_wile() {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  core::SenderConfig cfg;
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};

  std::optional<core::SendReport> report;
  sender.send_now(Bytes(16, 0x42), [&](const core::SendReport& r) { report = r; });
  scheduler.run_until_idle();

  // Paper §5.4: "we consider only the time required to transmit the
  // packet and multiply that by the power consumption" — TX-only energy.
  return {"Wi-LE", 84.0, in_microjoules(report->tx_only_energy), 2.5,
          in_microamps(cfg.power.deep_sleep)};
}

Row run_ble() {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ble::BleLinkConfig cfg;
  cfg.connection_interval = seconds(1);
  ble::BleMaster master{scheduler, medium, {0, 0}, cfg};
  ble::BleSlave slave{scheduler, medium, {2, 0}, cfg};

  std::optional<ble::BleEventReport> report;
  slave.set_event_callback([&](const ble::BleEventReport& r) {
    if (r.data_sent && !report) report = r;
  });
  slave.queue_payload(Bytes(20, 0x42));
  master.start();
  slave.start();
  scheduler.run_until(TimePoint{seconds(3)});

  return {"BLE", 71.0, in_microjoules(report->energy), 1.1, in_microamps(cfg.power.sleep)};
}

Row run_wifi_dc() {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{10}};
  ap.start();
  sta::StationConfig sta_cfg;
  sta::Station sta{scheduler, medium, {3, 0}, sta_cfg, Rng{20}};

  std::optional<sta::CycleReport> report;
  sta.run_duty_cycle_transmission(Bytes(16, 0x42),
                                  [&](const sta::CycleReport& r) { report = r; });
  scheduler.run_until(TimePoint{seconds(10)});

  return {"WiFi-DC", 238'200.0, in_microjoules(report->energy), 2.5,
          in_microamps(sta_cfg.power.deep_sleep)};
}

Row run_wifi_ps() {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{10}};
  ap.start();
  sta::StationConfig sta_cfg;
  sta::Station sta{scheduler, medium, {3, 0}, sta_cfg, Rng{20}};

  bool ready = false;
  sta.connect_and_enter_power_save([&](bool ok) { ready = ok; });
  scheduler.run_until(TimePoint{seconds(10)});
  if (!ready) {
    std::fprintf(stderr, "WiFi-PS: association failed\n");
    return {"WiFi-PS", 19'800.0, 0.0, 4500.0, 0.0};
  }

  // Idle draw: average a full minute of PS idling (beacon wakes included).
  const TimePoint idle_from = scheduler.now();
  scheduler.run_until(idle_from + minutes(1));
  const Watts idle_avg = sta.timeline().average_power(idle_from, scheduler.now());
  const double idle_ua = in_microamps(idle_avg / sta_cfg.power.supply);

  std::optional<sta::CycleReport> report;
  sta.power_save_send(Bytes(16, 0x42), [&](const sta::CycleReport& r) { report = r; });
  scheduler.run_until(scheduler.now() + seconds(5));

  return {"WiFi-PS", 19'800.0, in_microjoules(report->energy), 4500.0, idle_ua};
}

void print_row(const Row& row) {
  auto fmt_energy = [](double uj) {
    char buf[32];
    if (uj >= 1000.0) {
      std::snprintf(buf, sizeof(buf), "%8.1f mJ", uj / 1000.0);
    } else {
      std::snprintf(buf, sizeof(buf), "%8.1f uJ", uj);
    }
    return std::string(buf);
  };
  std::printf("  %-8s | %12s | %12s | %+6.1f%% | %9.1f uA | %9.1f uA\n", row.name,
              fmt_energy(row.paper_energy_uj).c_str(),
              fmt_energy(row.measured_energy_uj).c_str(),
              100.0 * (row.measured_energy_uj - row.paper_energy_uj) / row.paper_energy_uj,
              row.paper_idle_ua, row.measured_idle_ua);
}

}  // namespace

int main() {
  std::printf("=== E3: Table 1 — energy per message and idle current ===\n\n");
  std::printf("  %-8s | %12s | %12s | %7s | %12s | %12s\n", "scenario", "paper E/pkt",
              "measured", "delta", "paper idle", "measured");
  std::printf("  ---------+--------------+--------------+---------+--------------+---------"
              "-----\n");

  const Row rows[] = {run_wile(), run_ble(), run_wifi_dc(), run_wifi_ps()};
  for (const Row& row : rows) print_row(row);

  // Shape checks the paper's narrative depends on.
  const double wile_uj = rows[0].measured_energy_uj;
  const double ble_uj = rows[1].measured_energy_uj;
  const double dc_uj = rows[2].measured_energy_uj;
  const double ps_uj = rows[3].measured_energy_uj;
  std::printf("\n  Wi-LE vs BLE:      %.2fx   (paper: 84/71 = 1.18x)\n", wile_uj / ble_uj);
  std::printf("  WiFi-DC vs WiFi-PS: %.1fx   (paper: 238.2/19.8 = 12.0x)\n", dc_uj / ps_uj);
  std::printf("  WiFi-PS vs Wi-LE:   %.0fx   (paper: 19800/84 = 236x)\n", ps_uj / wile_uj);

  const bool shape_ok = wile_uj / ble_uj < 2.0 && dc_uj / ps_uj > 5.0 &&
                        ps_uj / wile_uj > 100.0;
  std::printf("\n  shape %s\n", shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
