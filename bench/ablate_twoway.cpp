// Experiment E8 — §6 "Two-way communication":
//   "The challenge of receiving WiFi packets efficiently is that the
//    receiver needs to actively wait for packets and this is a power
//    hungry process. ... an IoT device ... can indicate in some beacon
//    frames that it will be ready to receive packets for a short time
//    slot after the current beacon. This way the waiting period will be
//    limited ... and therefore the power consumption is reduced
//    significantly."
//
// Measures per-cycle energy as the announced RX window grows, verifies
// downlink delivery inside the window, and compares against the
// always-listening alternative the paper argues against.
#include <cstdio>
#include <optional>

#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "wile/controller.hpp"
#include "wile/sender.hpp"

using namespace wile;

namespace {

struct WindowResult {
  double cycle_energy_uj = 0.0;
  std::size_t downlinks = 0;
};

WindowResult run_window(std::optional<Duration> window, bool queue_downlink) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};

  core::SenderConfig cfg;
  cfg.device_id = 0xD1;
  if (window) cfg.rx_window = core::RxWindow{msec(2), *window};
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};

  core::ControllerConfig ctl_cfg;
  core::Controller controller{scheduler, medium, {2, 0}, ctl_cfg, Rng{3}};
  if (queue_downlink) controller.queue_downlink(0xD1, Bytes{'c', 'm', 'd'});

  std::optional<core::SendReport> report;
  sender.send_now(Bytes(16, 0x42), [&](const core::SendReport& r) { report = r; });
  scheduler.run_until_idle();

  return {in_microjoules(report->cycle_energy), report->downlinks_received};
}

}  // namespace

int main() {
  std::printf("=== E8: two-way extension — RX-window energy cost ===\n\n");

  const WindowResult no_window = run_window(std::nullopt, false);
  std::printf("  uplink-only cycle (no window):        %8.1f uJ\n", no_window.cycle_energy_uj);

  std::printf("\n  %-12s | %12s | %14s | %s\n", "window", "cycle uJ", "overhead uJ",
              "downlink delivered");
  std::printf("  -------------+--------------+----------------+-------------------\n");
  bool all_delivered = true;
  double energy_50ms = 0.0;
  for (int ms : {5, 10, 20, 50, 100}) {
    const WindowResult r = run_window(msec(ms), /*queue_downlink=*/true);
    if (ms == 50) energy_50ms = r.cycle_energy_uj;
    std::printf("  %9d ms | %12.1f | %14.1f | %s\n", ms, r.cycle_energy_uj,
                r.cycle_energy_uj - no_window.cycle_energy_uj,
                r.downlinks == 1 ? "yes" : "NO");
    if (r.downlinks != 1) all_delivered = false;
  }

  // The alternative the paper warns about: listening continuously between
  // 1-minute transmissions at RX current.
  const power::Esp32PowerProfile esp;
  const Watts rx_power = esp.supply * esp.radio_rx;
  const Joules always_on = rx_power * minutes(1);
  std::printf("\n  always-on listening for one 1-minute interval: %.0f uJ (%.1f mJ)\n",
              in_microjoules(always_on), in_millijoules(always_on));
  std::printf("  scheduled 50 ms window instead:                 %.0f uJ  ->  %.0fx "
              "cheaper\n",
              energy_50ms, in_microjoules(always_on) / energy_50ms);

  const bool ok = all_delivered && in_microjoules(always_on) / energy_50ms > 100.0;
  std::printf("\n  shape %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
