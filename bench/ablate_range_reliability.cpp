// Range and reliability ablations.
//
// Part 1 — §5.4's range claim: "we use a physical bitrate of 72 Mbps at
// transmission power of 0 dBm which has a similar range as BLE at the
// same transmission power (i.e., a few meters)". Sweeps distance and
// measures delivery for a Wi-LE sender and a BLE advertiser side by
// side, both per-PDU (the physical-layer comparison the paper makes) and
// per-event for BLE (whose 3-channel repetition is built-in redundancy).
//
// Part 2 — open-loop reliability: beacons carry no ACK, so the only
// lever at the range edge is repetition. Shows delivery and energy per
// delivered message for 1/2/3 copies.
//
// Part 3 — §1's 5 GHz suggestion: same sender at 5 GHz (6 us less
// airtime, ~6 dB more path loss): slightly cheaper per message, shorter
// reach — quantifying the trade the paper only gestures at.
#include <cstdio>
#include <memory>

#include "ble/advertiser.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "wile/receiver.hpp"
#include "wile/sender.hpp"

using namespace wile;

namespace {

constexpr int kRounds = 200;
// The sender's wake cycle lasts ~325 ms; the period must exceed it or
// firings are skipped.
const Duration kPeriod = msec(400);

double wile_delivery_pct(double distance_m, int repeats, phy::Band band) {
  sim::Scheduler scheduler;
  const auto cfg_band = phy::ChannelConfig::for_band(band);
  sim::Medium medium{scheduler, phy::Channel{cfg_band}, Rng{31}};
  core::SenderConfig cfg;
  cfg.period = kPeriod;
  cfg.repeats = repeats;
  cfg.band = band;
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{32}};
  core::Receiver monitor{scheduler, medium, {distance_m, 0}};
  std::uint64_t cycles = 0;
  sender.start_duty_cycle([&cycles] {
    ++cycles;
    return Bytes(16, 1);
  });
  scheduler.run_until(TimePoint{kPeriod * (kRounds + 1) - msec(20)});
  sender.stop_duty_cycle();
  scheduler.run_until(scheduler.now() + seconds(1));
  return 100.0 * static_cast<double>(monitor.stats().messages) /
         static_cast<double>(cycles);
}

struct BleDelivery {
  double per_event_pct = 0.0;
  double per_pdu_pct = 0.0;
};

BleDelivery ble_adv_delivery(double distance_m) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{33}};
  ble::BleAdvertiserConfig cfg;
  cfg.adv_interval = kPeriod;
  ble::BleAdvertiser adv{scheduler, medium, {0, 0}, cfg};
  ble::BleScanner scanner{scheduler, medium, {distance_m, 0}};

  std::uint64_t events_seen = 0;
  std::uint32_t counter = 0;
  std::uint32_t last = 0xffffffff;
  scanner.set_callback([&](const ble::AdvertisingPdu& pdu, double) {
    if (pdu.adv_data.size() != 4) return;
    ByteReader r{pdu.adv_data};
    const std::uint32_t seq = r.u32le();
    if (seq != last) {
      ++events_seen;
      last = seq;
    }
  });
  adv.start([&counter] {
    ByteWriter w(4);
    w.u32le(counter++);
    return w.take();
  });
  scheduler.run_until(TimePoint{kPeriod * (kRounds + 1) - msec(20)});
  adv.stop();
  scheduler.run_until(scheduler.now() + seconds(1));

  BleDelivery out;
  out.per_event_pct = 100.0 * static_cast<double>(events_seen) / counter;
  out.per_pdu_pct =
      100.0 * static_cast<double>(scanner.pdus_received()) / (3.0 * counter);
  return out;
}

}  // namespace

int main() {
  std::printf("=== range & reliability ablations ===\n\n");

  std::printf("-- part 1: delivery vs distance at 0 dBm (%d rounds each) --\n", kRounds);
  std::printf("  %-10s | %-13s | %-14s | %-14s\n", "dist (m)", "Wi-LE 72M",
              "BLE per-PDU", "BLE per-event");
  std::printf("  -----------+---------------+----------------+----------------\n");
  double wile_edge = 0, ble_pdu_edge = 0;
  for (double d : {2.0, 6.0, 9.0, 10.0, 11.0, 12.0, 14.0, 18.0}) {
    const double w = wile_delivery_pct(d, 1, phy::Band::G2_4);
    const BleDelivery b = ble_adv_delivery(d);
    std::printf("  %-10.1f | %12.1f%% | %13.1f%% | %13.1f%%\n", d, w, b.per_pdu_pct,
                b.per_event_pct);
    if (w >= 50.0) wile_edge = d;
    if (b.per_pdu_pct >= 50.0) ble_pdu_edge = d;
  }
  std::printf("\n  ~50%%-delivery edges: Wi-LE %.0f m, BLE per-PDU %.0f m — the \"similar "
              "range ... a few meters\" claim of §5.4 holds at the PDU level; BLE's "
              "3-channel repetition buys extra per-event reach that Wi-LE can match with "
              "repeats (part 2).\n",
              wile_edge, ble_pdu_edge);

  std::printf("\n-- part 2: repetition at the range edge (11 m) --\n");
  std::printf("  %-8s | %-12s | %-24s\n", "repeats", "delivery", "TX energy per delivered");
  double last_pct = 0.0;
  bool monotone = true;
  for (int repeats : {1, 2, 3}) {
    const double pct = wile_delivery_pct(11.0, repeats, phy::Band::G2_4);
    const double uj_per_delivered = 84.0 * repeats / (pct / 100.0);
    std::printf("  %-8d | %10.1f%% | %20.0f uJ\n", repeats, pct, uj_per_delivered);
    if (pct < last_pct) monotone = false;
    last_pct = pct;
  }

  std::printf("\n-- part 3: 2.4 GHz vs 5 GHz --\n");
  std::printf("  %-10s | %-13s | %-13s\n", "dist (m)", "2.4 GHz", "5 GHz");
  for (double d : {2.0, 5.0, 7.0, 9.0, 11.0}) {
    std::printf("  %-10.1f | %12.1f%% | %12.1f%%\n", d,
                wile_delivery_pct(d, 1, phy::Band::G2_4),
                wile_delivery_pct(d, 1, phy::Band::G5));
  }
  std::printf("  5 GHz trades ~40%% of the range for a quieter band and 6 us less "
              "airtime per beacon.\n");

  const bool ok = wile_edge >= 8.0 && wile_edge <= 15.0 && ble_pdu_edge >= 8.0 &&
                  ble_pdu_edge / wile_edge <= 2.0 && monotone;
  std::printf("\n  shape %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
