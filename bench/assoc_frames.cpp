// Experiment E5 — the §3.1 connection-cost claim:
//   "At least 8 frames are exchanged during this [4-way handshake]
//    process. In addition to these 20 MAC-layer frames, 7 higher-layer
//    frames including DHCP and ARP have to be transmitted before a
//    client device can transmit to the AP."
//
// Runs one full association against the simulated Google-WiFi-class AP
// and prints the measured frame ledger, versus a single Wi-LE
// transmission which needs exactly one frame.
#include <cstdio>
#include <optional>

#include "ap/access_point.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "sta/station.hpp"
#include "wile/sender.hpp"

using namespace wile;

int main() {
  std::printf("=== E5: frames required before the first data byte ===\n\n");

  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{10}};
  ap.start();
  sta::StationConfig sta_cfg;
  sta::Station sta{scheduler, medium, {3, 0}, sta_cfg, Rng{20}};

  std::optional<sta::CycleReport> report;
  sta.run_duty_cycle_transmission(Bytes(16, 0x42),
                                  [&](const sta::CycleReport& r) { report = r; });
  scheduler.run_until(TimePoint{seconds(10)});

  if (!report || !report->success) {
    std::fprintf(stderr, "association failed\n");
    return 1;
  }

  const auto& s = sta.stats();
  std::printf("  WiFi (WPA2-PSK infrastructure network):\n");
  std::printf("    MAC-layer connection frames (mgmt + EAPOL + their ACKs): %llu   "
              "(paper: \"at least 20\", incl. >= 8 for the 4-way handshake)\n",
              static_cast<unsigned long long>(s.connect_mac_frames));
  std::printf("    higher-layer frames (DHCP x4, ARP x2, gratuitous ARP):   %llu   "
              "(paper: 7)\n",
              static_cast<unsigned long long>(s.connect_higher_layer_frames));
  std::printf("    total before the sensor reading leaves the device:       %llu\n",
              static_cast<unsigned long long>(s.connect_mac_frames +
                                              s.connect_higher_layer_frames));

  // Wi-LE: one injected beacon, no ACK, nothing else.
  sim::Scheduler scheduler2;
  sim::Medium medium2{scheduler2, phy::Channel{}, Rng{2}};
  core::SenderConfig wile_cfg;
  core::Sender sender{scheduler2, medium2, {0, 0}, wile_cfg, Rng{3}};
  std::optional<core::SendReport> wile_report;
  sender.send_now(Bytes(16, 0x42), [&](const core::SendReport& r) { wile_report = r; });
  scheduler2.run_until_idle();

  std::printf("\n  Wi-LE (connection-less):\n");
  std::printf("    frames transmitted: %d (the injected beacon itself; broadcast, no "
              "ACK)\n",
              wile_report->beacons_sent);

  const bool ok = s.connect_mac_frames >= 18 && s.connect_higher_layer_frames == 7 &&
                  wile_report->beacons_sent == 1;
  std::printf("\n  shape %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
