// Gateway ingest throughput: batched drain + flat-table dispatch vs the
// pre-refactor single-probe/single-send pipeline.
//
// Two measured sections, one JSON verdict
// (tools/check_bench_schema.py gates both):
//
// 1. DRAIN (the headline, simulated): a real AP + Gateway + sensor
//    fleet on the simulated medium, ingest saturated well past the
//    uplink's capacity. The gateway's power-save send cycle costs
//    ~155 ms of airtime/protocol per wake regardless of payload, so the
//    pre-PR one-reading-per-cycle drain caps at ~6 readings/s/gateway.
//    Batching batch_max readings per cycle multiplies sustained
//    frames/s/gateway by the achieved batch fill. Both configurations
//    run the SAME shipped Gateway code — batch_max=1 reproduces the
//    pre-PR single-send drain exactly (one record per datagram, one
//    send cycle per reading). speedup = sustained_fps(batch=16) /
//    sustained_fps(batch=1), gated >= 3x.
//
// 2. DISPATCH (CPU): a pre-generated 10k-device uplink fragment stream
//    pushed through (a) a faithful replica of the legacy controller's
//    three-unordered_map dispatch with a freshly allocated
//    ForwardedReading::encode per reading, and (b) the shipped
//    IngestTable (one flat-table probe, wile/ingest.hpp) +
//    ForwardedBatch arena encode (wile/gateway.hpp). Gated as a
//    no-regression guard (dispatch_speedup >= 0.9, wall-clock noise
//    margin included): the flat table collapses 4 probes to 1 on
//    rx-window frames, but on hosts whose last-level cache swallows
//    the whole fleet the legacy maps' smaller footprint cancels that,
//    so honest parity — not a manufactured win — is the expected
//    reading here. The structural payoff is single-probe semantics
//    plus the zero-allocation arena encode; the headline speedup is
//    section 1's simulated drain.
//
// Determinism oracle: every configuration runs twice with the same
// seeds; simulation counters and the FNV-1a digest of every uplink byte
// + report decision must match run-to-run (and the dispatch paths must
// make identical report decisions). Any mismatch fails the JSON gate.
//
// Writes BENCH_ingest_throughput.json.
//
// Usage: ingest_throughput [--quick] [--out PATH] [--devices N]
//                          [--frames N] [--batch N] [--best-of N]
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ap/access_point.hpp"
#include "util/rng.hpp"
#include "wile/gateway.hpp"
#include "wile/ingest.hpp"
#include "wile/rules/engine.hpp"
#include "wile/sender.hpp"

using namespace wile;

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, reinterpret_cast<const std::uint8_t*>(&v), 8);
}

// --- section 1: simulated sustained drain ------------------------------------

struct DrainResult {
  double sustained_fps = 0.0;  // forwarded readings per simulated second
  std::uint64_t received = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t batches = 0;
  std::uint64_t dropped = 0;
  std::uint64_t digest = 0;
};

/// One saturated-ingest run: `n_senders` Wi-LE sensors beaconing every
/// `period` around the gateway for `sim_seconds`, a real WPA2/UDP
/// uplink behind it. Everything is seeded — same args, same result.
DrainResult run_drain(std::size_t batch_max, int n_senders, Duration period,
                      int sim_seconds) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};

  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap::AccessPointConfig{}, Rng{10}};
  std::uint64_t server_digest = 0xcbf29ce484222325ull;
  std::uint64_t server_readings = 0;
  ap.set_uplink_handler([&](const MacAddress&, const net::Ipv4Header&,
                            const net::UdpDatagram& udp) {
    server_digest = fnv1a(server_digest, udp.payload.data(), udp.payload.size());
    if (const auto batch = core::ForwardedBatch::decode(udp.payload)) {
      server_readings += batch->readings.size();
    }
  });
  ap.start();

  core::GatewayConfig gw_cfg;
  gw_cfg.station.mac = MacAddress::from_seed(0x6A7E);
  gw_cfg.batch_max = batch_max;
  gw_cfg.max_queue = 64;
  core::Gateway gateway{scheduler, medium, {3, 0}, gw_cfg, Rng{20}};
  bool ready = false;
  gateway.start([&](bool ok) { ready = ok; });
  scheduler.run_until(scheduler.now() + seconds(10));
  if (!ready) {
    std::fprintf(stderr, "ingest_throughput: gateway failed to associate\n");
    std::exit(1);
  }

  // The fleet: short-period duty cycles, heavy enough to keep the
  // uplink queue non-empty at every batch size under test.
  std::vector<std::unique_ptr<core::Sender>> sensors;
  for (int i = 0; i < n_senders; ++i) {
    core::SenderConfig cfg;
    cfg.device_id = 0x5000 + static_cast<std::uint32_t>(i);
    cfg.period = period;
    cfg.wake_jitter = msec(20);
    sensors.push_back(std::make_unique<core::Sender>(
        scheduler, medium, sim::Position{5.0 + 0.5 * i, 2.0}, cfg,
        Rng{static_cast<std::uint64_t>(100 + i)}));
    std::uint8_t tag = static_cast<std::uint8_t>(i);
    sensors.back()->start_duty_cycle([tag] { return Bytes{tag, 0x17, 0xC0}; });
  }
  const TimePoint t_start = scheduler.now();
  scheduler.run_until(t_start + seconds(sim_seconds));
  for (auto& s : sensors) s->stop_duty_cycle();

  const core::GatewayStats& s = gateway.stats();
  DrainResult r;
  r.received = s.received;
  r.forwarded = s.forwarded;
  r.batches = s.batches_sent;
  r.dropped = s.dropped_total;
  r.sustained_fps = static_cast<double>(s.forwarded) / sim_seconds;
  std::uint64_t d = server_digest;
  d = fnv1a_u64(d, s.received);
  d = fnv1a_u64(d, s.forwarded);
  d = fnv1a_u64(d, s.batches_sent);
  d = fnv1a_u64(d, s.dropped_total);
  d = fnv1a_u64(d, server_readings);
  r.digest = d;
  return r;
}

// --- section 2: CPU dispatch -------------------------------------------------

/// One synthetic uplink fragment, pre-generated so both paths pay zero
/// generation cost inside the timed region.
struct Frame {
  std::uint32_t device_id = 0;
  std::uint32_t sequence = 0;
  bool rx_window = false;  // device announced a listen window
  std::int8_t rssi_dbm = -60;
  std::array<std::uint8_t, 8> payload{};
};

/// Deterministic fan-in stream: uniform device pick, ~3% sequence gaps
/// (loss), ~2% stale re-deliveries (reorder), RX window every 8th frame
/// per device on average.
std::vector<Frame> make_stream(std::uint32_t n_devices, std::size_t n_frames,
                               std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::uint32_t> next_seq(n_devices, 0);
  std::vector<Frame> frames;
  frames.reserve(n_frames);
  for (std::size_t i = 0; i < n_frames; ++i) {
    Frame f;
    f.device_id = static_cast<std::uint32_t>(rng.below(n_devices));
    const std::uint64_t roll = rng.below(100);
    if (roll < 3) next_seq[f.device_id] += 1 + static_cast<std::uint32_t>(rng.below(4));
    f.sequence = (roll >= 97 && next_seq[f.device_id] > 2)
                     ? next_seq[f.device_id] - 2  // stale re-delivery
                     : next_seq[f.device_id]++;
    f.rx_window = rng.below(8) == 0;
    f.rssi_dbm = static_cast<std::int8_t>(-40 - static_cast<int>(rng.below(50)));
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng.below(256));
    frames.push_back(f);
  }
  return frames;
}

struct PathResult {
  double fps = 0.0;  // frames ingested per wall second (best run)
  std::uint64_t digest = 0;
  bool deterministic = true;
  std::uint64_t sends = 0;    // uplink send cycles
  std::uint64_t reports = 0;  // channel-report decisions that fired
};

// The legacy controller dispatch, replicated from the pre-refactor
// code: three parallel maps, probed 3-4 times per fragment.
struct LegacyTrack {
  std::uint32_t last_sequence = 0;
  std::uint64_t recent_seen = 1;
  std::uint32_t span = 1;
  std::uint32_t last_reported_announce = 0;
  bool reported = false;
};

void legacy_update_track(LegacyTrack& track, std::uint32_t sequence) {
  const auto ahead = static_cast<std::int32_t>(sequence - track.last_sequence);
  if (ahead > 0) {
    const auto gap = static_cast<std::uint32_t>(ahead);
    track.recent_seen = (gap >= 64) ? 1 : ((track.recent_seen << gap) | 1);
    track.last_sequence = sequence;
    track.span = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(64, static_cast<std::uint64_t>(track.span) + gap));
  } else {
    const auto age = static_cast<std::uint32_t>(-ahead);
    if (age < 64) track.recent_seen |= std::uint64_t{1} << age;
  }
}

// Both dispatch paths start from the same device history, modelling a
// long-running controller in the sustained-ingest regime: every device
// has announced an RX window before (the legacy code's operator[] on
// the sequence-counter map allocated an entry per announcing device),
// and every 5th device was commanded once and drained (the legacy
// queue_downlink's operator[] entry persisted forever — empty deques
// were never erased). The legacy shape spreads that history over three
// maps probed separately; the flat table keeps it in the one record the
// first probe already fetched.
constexpr std::uint32_t kCommandedEvery = 5;

std::pair<std::uint64_t, PathResult> run_baseline_once(const std::vector<Frame>& frames,
                                                       std::uint32_t n_devices) {
  std::unordered_map<std::uint32_t, LegacyTrack> tracks;
  std::unordered_map<std::uint32_t, std::deque<Bytes>> queued;
  std::unordered_map<std::uint32_t, std::uint32_t> downlink_seq;
  for (std::uint32_t id = 0; id < n_devices; ++id) {
    downlink_seq[id] = 1;
    if (id % kCommandedEvery == 0) queued[id];  // commanded once, drained
  }

  std::uint64_t digest = 0xcbf29ce484222325ull;
  PathResult r;
  core::ForwardedReading reading;

  const auto t0 = std::chrono::steady_clock::now();
  for (const Frame& f : frames) {
    // Probe 1: the loss track.
    auto [tit, inserted] = tracks.try_emplace(f.device_id);
    if (inserted) {
      tit->second.last_sequence = f.sequence;
    } else {
      legacy_update_track(tit->second, f.sequence);
    }
    if (f.rx_window) {
      // Probe 2: the downlink queue.
      auto qit = queued.find(f.device_id);
      if (qit != queued.end() && !qit->second.empty()) {
        digest = fnv1a(digest, qit->second.front().data(), qit->second.front().size());
      }
      // Probe 3 (re-lookup of the track) + probe 4 (sequence counter)
      // on the report branch — exactly the legacy controller shape.
      LegacyTrack& track = tracks[f.device_id];
      if (!track.reported || track.last_reported_announce != f.sequence) {
        track.reported = true;
        track.last_reported_announce = f.sequence;
        const std::uint32_t seq = downlink_seq[f.device_id]++;
        ++r.reports;
        digest = fnv1a(digest, reinterpret_cast<const std::uint8_t*>(&seq), 4);
      }
    }
    // Forward: fresh encode allocation + one send per reading.
    reading.device_id = f.device_id;
    reading.sequence = f.sequence;
    reading.rssi_dbm = f.rssi_dbm;
    reading.data.assign(f.payload.begin(), f.payload.end());
    const Bytes wire = reading.encode();
    digest = fnv1a(digest, wire.data(), wire.size());
    ++r.sends;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  r.fps = static_cast<double>(frames.size()) / wall;
  r.digest = digest;
  return {digest, r};
}

std::pair<std::uint64_t, PathResult> run_pipeline_once(const std::vector<Frame>& frames,
                                                       std::uint32_t n_devices,
                                                       std::size_t batch_max) {
  core::IngestTable table;
  for (std::uint32_t id = 0; id < n_devices; ++id) {
    core::DeviceState& dev = table.state(id);
    dev.downlink_seq = 1;  // same history as the legacy maps above
    if (id % kCommandedEvery == 0) dev.queue();
  }
  std::uint64_t digest = 0xcbf29ce484222325ull;
  PathResult r;
  core::ForwardedReading reading;
  Bytes arena;
  std::size_t in_batch = 0;

  const auto t0 = std::chrono::steady_clock::now();
  core::ForwardedBatch::begin(arena);
  for (const Frame& f : frames) {
    // The single probe: every per-device decision below reads this record.
    core::DeviceState& dev = table.state(f.device_id);
    core::IngestTable::note_uplink(dev, f.sequence);
    if (f.rx_window) {
      if (dev.has_queued()) {
        digest = fnv1a(digest, dev.queued_downlinks->front().data(),
                       dev.queued_downlinks->front().size());
      }
      if (core::IngestTable::should_report(dev, f.sequence)) {
        const std::uint32_t seq = dev.downlink_seq++;
        ++r.reports;
        digest = fnv1a(digest, reinterpret_cast<const std::uint8_t*>(&seq), 4);
      }
    }
    // Forward: append into the arena batch; flush every batch_max.
    reading.device_id = f.device_id;
    reading.sequence = f.sequence;
    reading.rssi_dbm = f.rssi_dbm;
    reading.data.assign(f.payload.begin(), f.payload.end());
    core::ForwardedBatch::append(arena, reading);
    if (++in_batch == batch_max) {
      core::ForwardedBatch::finish(arena, in_batch);
      digest = fnv1a(digest, arena.data(), arena.size());
      ++r.sends;
      core::ForwardedBatch::begin(arena);
      in_batch = 0;
    }
  }
  if (in_batch > 0) {
    core::ForwardedBatch::finish(arena, in_batch);
    digest = fnv1a(digest, arena.data(), arena.size());
    ++r.sends;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  r.fps = static_cast<double>(frames.size()) / wall;
  r.digest = digest;
  return {digest, r};
}

// --- section 3: rules engine eval rate ---------------------------------------

std::pair<std::uint64_t, PathResult> run_rules_once(const std::vector<Frame>& frames) {
  std::vector<rules::RuleSpec> specs(3);
  specs[0].name = "hot-held";
  specs[0].when = rules::ConditionSpec{rules::Field::Value, rules::Cmp::Gt, 40000.0};
  specs[0].hold = seconds(10);
  specs[1].name = "burst";
  specs[1].aggregate =
      rules::AggregateSpec{rules::AggOp::Count, seconds(30), rules::Cmp::Ge, 8.0};
  specs[2].name = "weak-signal";
  specs[2].when = rules::ConditionSpec{rules::Field::RssiDbm, rules::Cmp::Lt, -85.0};
  specs[2].cooldown = seconds(60);
  rules::Engine engine{std::move(specs)};

  rules::Reading reading;
  std::uint64_t digest = 0xcbf29ce484222325ull;
  PathResult r;
  const auto t0 = std::chrono::steady_clock::now();
  std::int64_t t_us = 0;
  for (const Frame& f : frames) {
    t_us += 100;  // 10k readings/s of simulated time
    reading.device_id = f.device_id;
    reading.sequence = f.sequence;
    reading.rssi_dbm = f.rssi_dbm;
    reading.value = static_cast<double>(f.payload[0] | (f.payload[1] << 8));
    reading.at = TimePoint{Duration{t_us}};
    engine.on_reading(reading);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  digest = fnv1a_u64(digest, engine.fired_total());
  r.fps = static_cast<double>(frames.size()) / wall;
  r.digest = digest;
  r.reports = engine.fired_total();
  return {digest, r};
}

/// Run `once` best_of times: best fps wins, digests must all agree.
template <typename Fn>
PathResult best_of_runs(int best_of, Fn&& once) {
  PathResult best;
  std::uint64_t first_digest = 0;
  for (int i = 0; i < best_of; ++i) {
    auto [digest, r] = once();
    if (i == 0) {
      first_digest = digest;
      best = r;
    } else {
      best.deterministic = best.deterministic && digest == first_digest;
      if (r.fps > best.fps) {
        const bool det = best.deterministic;
        best = r;
        best.deterministic = det;
      }
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::uint32_t n_devices = 10'000;
  std::size_t n_frames = 2'000'000;
  std::size_t batch_max = 16;
  int best_of = 3;
  int drain_sim_seconds = 30;
  std::string out_path = "BENCH_ingest_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      n_frames = 300'000;
      drain_sim_seconds = 10;
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      n_devices = static_cast<std::uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      n_frames = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch_max = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--best-of") == 0 && i + 1 < argc) {
      best_of = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH] [--devices N] [--frames N] "
                   "[--batch N] [--best-of N]\n",
                   argv[0]);
      return 2;
    }
  }

  // --- drain: sustained frames/s/gateway, pre-PR vs batched ---------------
  // 12 sensors beaconing every 100 ms = ~120 readings/s offered, far
  // past the ~6/s the single-send drain can carry.
  const int n_senders = 16;
  const Duration period = msec(100);
  std::printf("ingest_throughput: drain %d senders @ %lld ms for %ds, batch 1 vs %zu%s\n",
              n_senders, static_cast<long long>(period.count() / 1000),
              drain_sim_seconds, batch_max, quick ? " [quick]" : "");
  const DrainResult drain_base_a = run_drain(1, n_senders, period, drain_sim_seconds);
  const DrainResult drain_base_b = run_drain(1, n_senders, period, drain_sim_seconds);
  const DrainResult drain_pipe_a =
      run_drain(batch_max, n_senders, period, drain_sim_seconds);
  const DrainResult drain_pipe_b =
      run_drain(batch_max, n_senders, period, drain_sim_seconds);
  const bool drain_deterministic = drain_base_a.digest == drain_base_b.digest &&
                                   drain_pipe_a.digest == drain_pipe_b.digest;
  const double drain_speedup = drain_pipe_a.sustained_fps / drain_base_a.sustained_fps;
  std::printf("  batch=1:   %.1f readings/s sustained (received=%llu forwarded=%llu "
              "batches=%llu dropped=%llu)\n",
              drain_base_a.sustained_fps,
              static_cast<unsigned long long>(drain_base_a.received),
              static_cast<unsigned long long>(drain_base_a.forwarded),
              static_cast<unsigned long long>(drain_base_a.batches),
              static_cast<unsigned long long>(drain_base_a.dropped));
  std::printf("  batch=%-2zu:  %.1f readings/s sustained (received=%llu forwarded=%llu "
              "batches=%llu dropped=%llu)\n",
              batch_max, drain_pipe_a.sustained_fps,
              static_cast<unsigned long long>(drain_pipe_a.received),
              static_cast<unsigned long long>(drain_pipe_a.forwarded),
              static_cast<unsigned long long>(drain_pipe_a.batches),
              static_cast<unsigned long long>(drain_pipe_a.dropped));
  std::printf("  drain speedup: %.2fx, determinism %s\n", drain_speedup,
              drain_deterministic ? "ok" : "FAILED");

  // --- dispatch: CPU cost of the per-fragment bookkeeping -----------------
  std::printf("dispatch: %u devices, %zu frames, best of %d\n", n_devices, n_frames,
              best_of);
  const std::vector<Frame> frames = make_stream(n_devices, n_frames, 0x1276E57);
  const PathResult baseline =
      best_of_runs(best_of, [&] { return run_baseline_once(frames, n_devices); });
  const PathResult pipeline =
      best_of_runs(best_of, [&] { return run_pipeline_once(frames, n_devices, batch_max); });
  const double dispatch_speedup = pipeline.fps / baseline.fps;
  std::printf("  legacy 3-map:        %.2fM frames/s (reports=%llu)\n",
              baseline.fps / 1e6, static_cast<unsigned long long>(baseline.reports));
  std::printf("  flat table + arena:  %.2fM frames/s (reports=%llu, %.2fx)\n",
              pipeline.fps / 1e6, static_cast<unsigned long long>(pipeline.reports),
              dispatch_speedup);

  const PathResult rules = best_of_runs(best_of, [&] { return run_rules_once(frames); });
  std::printf("rules: %.2fM readings/s through a 3-rule chain (fired=%llu)\n",
              rules.fps / 1e6, static_cast<unsigned long long>(rules.reports));

  // Both dispatch paths must make the same report decisions on the same
  // stream — the refactor is a layout change, not a semantics change.
  const bool reports_match = baseline.reports == pipeline.reports;
  const bool determinism_ok = drain_deterministic && baseline.deterministic &&
                              pipeline.deterministic && rules.deterministic &&
                              reports_match;
  std::printf("speedup: %.2fx sustained, %.2fx dispatch; determinism_ok: %s\n",
              drain_speedup, dispatch_speedup, determinism_ok ? "true" : "false");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::perror("ingest_throughput: fopen");
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"ingest_throughput\",\n"
      "  \"quick\": %s,\n"
      "  \"batch_max\": %zu,\n"
      "  \"drain_senders\": %d,\n"
      "  \"drain_sim_seconds\": %d,\n"
      "  \"baseline_fps\": %.2f,\n"
      "  \"pipeline_fps\": %.2f,\n"
      "  \"speedup\": %.3f,\n"
      "  \"baseline_forwarded\": %llu,\n"
      "  \"pipeline_forwarded\": %llu,\n"
      "  \"pipeline_batches\": %llu,\n"
      "  \"baseline_digest\": \"%016llx\",\n"
      "  \"pipeline_digest\": \"%016llx\",\n"
      "  \"n_devices\": %u,\n"
      "  \"frames\": %zu,\n"
      "  \"best_of\": %d,\n"
      "  \"dispatch_baseline_fps\": %.0f,\n"
      "  \"dispatch_pipeline_fps\": %.0f,\n"
      "  \"dispatch_speedup\": %.3f,\n"
      "  \"dispatch_reports\": %llu,\n"
      "  \"dispatch_baseline_digest\": \"%016llx\",\n"
      "  \"dispatch_pipeline_digest\": \"%016llx\",\n"
      "  \"rules_eval_fps\": %.0f,\n"
      "  \"rules_fired\": %llu,\n"
      "  \"determinism_ok\": %s\n"
      "}\n",
      quick ? "true" : "false", batch_max, n_senders, drain_sim_seconds,
      drain_base_a.sustained_fps, drain_pipe_a.sustained_fps, drain_speedup,
      static_cast<unsigned long long>(drain_base_a.forwarded),
      static_cast<unsigned long long>(drain_pipe_a.forwarded),
      static_cast<unsigned long long>(drain_pipe_a.batches),
      static_cast<unsigned long long>(drain_base_a.digest),
      static_cast<unsigned long long>(drain_pipe_a.digest), n_devices, n_frames,
      best_of, baseline.fps, pipeline.fps, dispatch_speedup,
      static_cast<unsigned long long>(pipeline.reports),
      static_cast<unsigned long long>(baseline.digest),
      static_cast<unsigned long long>(pipeline.digest), rules.fps,
      static_cast<unsigned long long>(rules.reports),
      determinism_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return determinism_ok && drain_speedup >= 3.0 && dispatch_speedup >= 0.9 ? 0 : 1;
}
