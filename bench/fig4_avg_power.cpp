// Experiment E4 — Figure 4 of the paper: average power consumption vs
// transmission interval (0-5 minutes, log-scale y) for WiFi-PS, WiFi-DC,
// Wi-LE and BLE.
//
// As in the paper, each scenario's (Ptx·Ttx, Pidle) pair is measured
// once from the simulated device and then Eq. (1) produces the curve:
//   Pavg = (Ptx·Ttx + Pidle·(INT - Ttx)) / INT
// For Wi-LE the paper's Table-1 accounting (TX time only) is used; the
// full-cycle alternative is printed alongside as a dashed series so the
// ASIC argument of §5.4 is visible in the data.
#include <cstdio>
#include <optional>

#include "ap/access_point.hpp"
#include "ble/link.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "sta/station.hpp"
#include "wile/sender.hpp"

using namespace wile;

namespace {

struct Scenario {
  const char* name;
  Joules active_energy{};  // Ptx * Ttx
  Duration t_tx{};
  Watts p_idle{};
};

Scenario measure_wile(bool full_cycle) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  core::SenderConfig cfg;
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{2}};
  std::optional<core::SendReport> report;
  sender.send_now(Bytes(16, 0x42), [&](const core::SendReport& r) { report = r; });
  scheduler.run_until_idle();

  Scenario s;
  s.name = full_cycle ? "Wi-LE (full cycle)" : "Wi-LE";
  s.active_energy = full_cycle ? report->cycle_energy : report->tx_only_energy;
  s.t_tx = full_cycle ? report->active_time : report->tx_airtime;
  s.p_idle = cfg.power.supply * cfg.power.deep_sleep;
  return s;
}

Scenario measure_ble() {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ble::BleLinkConfig cfg;
  ble::BleMaster master{scheduler, medium, {0, 0}, cfg};
  ble::BleSlave slave{scheduler, medium, {2, 0}, cfg};
  std::optional<ble::BleEventReport> report;
  slave.set_event_callback([&](const ble::BleEventReport& r) {
    if (r.data_sent && !report) report = r;
  });
  slave.queue_payload(Bytes(20, 0x42));
  master.start();
  slave.start();
  scheduler.run_until(TimePoint{seconds(3)});

  Scenario s;
  s.name = "BLE";
  s.active_energy = report->energy;
  s.t_tx = report->active_time;
  s.p_idle = cfg.power.supply * cfg.power.sleep;
  return s;
}

Scenario measure_wifi_dc() {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{10}};
  ap.start();
  sta::StationConfig sta_cfg;
  sta::Station sta{scheduler, medium, {3, 0}, sta_cfg, Rng{20}};
  std::optional<sta::CycleReport> report;
  sta.run_duty_cycle_transmission(Bytes(16, 0x42),
                                  [&](const sta::CycleReport& r) { report = r; });
  scheduler.run_until(TimePoint{seconds(10)});

  Scenario s;
  s.name = "WiFi-DC";
  s.active_energy = report->energy;
  s.t_tx = report->active_time;
  s.p_idle = sta_cfg.power.supply * sta_cfg.power.deep_sleep;
  return s;
}

Scenario measure_wifi_ps() {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{10}};
  ap.start();
  sta::StationConfig sta_cfg;
  sta::Station sta{scheduler, medium, {3, 0}, sta_cfg, Rng{20}};
  bool ready = false;
  sta.connect_and_enter_power_save([&](bool ok) { ready = ok; });
  scheduler.run_until(TimePoint{seconds(10)});

  const TimePoint idle_from = scheduler.now();
  scheduler.run_until(idle_from + minutes(1));
  const Watts idle = sta.timeline().average_power(idle_from, scheduler.now());

  std::optional<sta::CycleReport> report;
  sta.power_save_send(Bytes(16, 0x42), [&](const sta::CycleReport& r) { report = r; });
  scheduler.run_until(scheduler.now() + seconds(5));

  Scenario s;
  s.name = "WiFi-PS";
  s.active_energy = report->energy;
  s.t_tx = report->active_time;
  s.p_idle = idle;
  return s;
}

double eq1_mw(const Scenario& s, Duration interval) {
  if (interval <= s.t_tx) return in_milliwatts(s.active_energy / s.t_tx);
  const Joules idle_energy = s.p_idle * (interval - s.t_tx);
  return in_milliwatts((s.active_energy + idle_energy) / interval);
}

}  // namespace

int main() {
  std::printf("=== E4: Figure 4 — average power vs transmission interval ===\n\n");

  const Scenario scenarios[] = {measure_wifi_ps(), measure_wifi_dc(), measure_wile(false),
                                measure_ble(), measure_wile(true)};

  std::printf("  measured inputs to Eq. (1):\n");
  for (const auto& s : scenarios) {
    std::printf("    %-18s E_active=%11.1f uJ  Ttx=%8.1f ms  Pidle=%10.3f uW\n", s.name,
                in_microjoules(s.active_energy), to_seconds(s.t_tx) * 1e3,
                in_microwatts(s.p_idle));
  }

  std::printf("\n  interval_s,WiFi-PS_mW,WiFi-DC_mW,WiLE_mW,BLE_mW,WiLE-full-cycle_mW\n");
  for (int sec = 5; sec <= 300; sec += 5) {
    const Duration interval = seconds(sec);
    std::printf("  %d,%.6g,%.6g,%.6g,%.6g,%.6g\n", sec, eq1_mw(scenarios[0], interval),
                eq1_mw(scenarios[1], interval), eq1_mw(scenarios[2], interval),
                eq1_mw(scenarios[3], interval), eq1_mw(scenarios[4], interval));
  }

  // Paper shape claims:
  //  (a) PS beats DC at short intervals, loses at long intervals;
  //  (b) Wi-LE is close to BLE;
  //  (c) Wi-LE/BLE sit ~3 orders of magnitude below the WiFi curves.
  double crossover_s = -1.0;
  for (int sec = 1; sec <= 600; ++sec) {
    if (eq1_mw(scenarios[0], seconds(sec)) > eq1_mw(scenarios[1], seconds(sec))) {
      crossover_s = sec;
      break;
    }
  }
  const double ratio_10s =
      eq1_mw(scenarios[1], seconds(10)) / eq1_mw(scenarios[2], seconds(10));
  const double ratio_1min =
      eq1_mw(scenarios[1], minutes(1)) / eq1_mw(scenarios[2], minutes(1));
  const double wile_vs_ble = eq1_mw(scenarios[2], minutes(1)) / eq1_mw(scenarios[3], minutes(1));

  std::printf("\n  PS/DC crossover: %.0f s (paper's Table-1 numbers put it at ~15 s; the "
              "prose says \"about a minute\" — see EXPERIMENTS.md)\n",
              crossover_s);
  std::printf("  WiFi-DC / Wi-LE: %.0fx at 10 s, %.0fx at 1 min (paper: \"generally about "
              "3 orders of magnitude\"; its own Table-1 numbers give 412x at 1 min)\n",
              ratio_10s, ratio_1min);
  std::printf("  Wi-LE / BLE at 1 min: %.2fx (paper: close; its Table-1 numbers give "
              "2.15x at 1 min)\n",
              wile_vs_ble);

  const bool shape_ok = crossover_s > 5 && crossover_s < 120 && ratio_10s > 1000.0 &&
                        ratio_1min > 300.0 && wile_vs_ble < 3.0;
  std::printf("\n  shape %s\n", shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
