// Fleet-scale stress bench for the event core (DESIGN.md §9): N Wi-LE
// senders on a 5 m grid duty-cycling every 60 s, plus one gateway
// receiver per 2500 devices, simulated for an hour. Exercises exactly
// the paths the fleet refactor optimised — scheduler churn from CSMA
// and duty-cycle timers, spatial delivery queries over a mostly
// out-of-earshot fleet, and shared frame buffers on the dense
// neighbourhoods around each sender.
//
// Writes BENCH_scale_fleet.json: per-N events/sec, sim/wall speed
// ratio, Medium stats and peak RSS. The transmission/delivery/message
// counts double as a cross-version determinism oracle: they are
// seed-determined, so any event-core change that alters them broke
// reproducibility (see tests/test_determinism.cpp).
//
// Usage: scale_fleet [--quick] [--out PATH]
//   --quick   N=1000 for 600 simulated seconds (CI-sized)
//   default   N in {1000, 10000, 100000}, one simulated hour each
//
// Peak RSS is process-wide and monotone, so runs are ordered smallest
// N first and each row reports the high-water mark up to that run.
#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "wile/receiver.hpp"
#include "wile/sender.hpp"

using namespace wile;

namespace {

struct FleetResult {
  int n = 0;
  int sim_seconds = 0;
  double wall_s = 0.0;
  double ratio = 0.0;  // simulated seconds per wall second
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collision_losses = 0;
  std::uint64_t messages = 0;
  double rss_peak_mb = 0.0;
};

double peak_rss_mb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

FleetResult run_fleet(int n, int sim_seconds) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{0xF1EE7}};

  constexpr double kSpacingM = 5.0;
  const int side = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  const double extent = side * kSpacingM;

  Rng master{0xF1EE7C0DE};
  std::vector<std::unique_ptr<core::Sender>> senders;
  senders.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    core::SenderConfig cfg;
    cfg.device_id = static_cast<std::uint32_t>(i + 1);
    cfg.period = seconds(60);
    cfg.wake_jitter = msec(500);
    // An hour of duty cycles would otherwise retain ~1000 power-phase
    // segments per device; 64 keeps per-cycle queries exact and RSS flat
    // (energy totals stay exact regardless — see PowerTimeline).
    cfg.timeline_max_segments = 64;
    const sim::Position pos{(i % side) * kSpacingM, (i / side) * kSpacingM};
    senders.push_back(
        std::make_unique<core::Sender>(scheduler, medium, pos, cfg, master.fork()));
    // Stagger duty-cycle starts uniformly across one period so the fleet
    // doesn't wake in a single thundering herd at t=0.
    const auto start_us = static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(i) * 60'000'000ull) / static_cast<std::uint64_t>(n));
    core::Sender* s = senders.back().get();
    scheduler.schedule_at(TimePoint{usec(start_us)}, [s] {
      s->start_duty_cycle([] { return Bytes(16, 0xA5); });
    });
  }

  const int n_gw = std::max(1, n / 2500);
  std::vector<std::unique_ptr<core::Receiver>> gateways;
  std::uint64_t messages = 0;
  for (int k = 0; k < n_gw; ++k) {
    const double c = (k + 0.5) * extent / n_gw;  // along the diagonal
    gateways.push_back(
        std::make_unique<core::Receiver>(scheduler, medium, sim::Position{c, c}));
    gateways.back()->set_message_callback(
        [&messages](const core::Message&, const core::RxMeta&) { ++messages; });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  scheduler.run_until(TimePoint{seconds(sim_seconds)});
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  FleetResult r;
  r.n = n;
  r.sim_seconds = sim_seconds;
  r.wall_s = wall_s;
  r.ratio = sim_seconds / wall_s;
  r.events = scheduler.events_run();
  r.events_per_sec = static_cast<double>(r.events) / wall_s;
  r.transmissions = medium.stats().transmissions;
  r.deliveries = medium.stats().deliveries;
  r.collision_losses = medium.stats().collision_losses;
  r.messages = messages;
  r.rss_peak_mb = peak_rss_mb();
  return r;
}

void write_json(const std::vector<FleetResult>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror("scale_fleet: fopen");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"scale_fleet\",\n  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FleetResult& r = rows[i];
    std::fprintf(f,
                 "    {\"n\": %d, \"sim_seconds\": %d, \"wall_seconds\": %.3f,\n"
                 "     \"sim_wall_ratio\": %.1f, \"events\": %llu,\n"
                 "     \"events_per_sec\": %.0f, \"transmissions\": %llu,\n"
                 "     \"deliveries\": %llu, \"collision_losses\": %llu,\n"
                 "     \"messages\": %llu, \"rss_peak_mb\": %.1f}%s\n",
                 r.n, r.sim_seconds, r.wall_s, r.ratio,
                 static_cast<unsigned long long>(r.events), r.events_per_sec,
                 static_cast<unsigned long long>(r.transmissions),
                 static_cast<unsigned long long>(r.deliveries),
                 static_cast<unsigned long long>(r.collision_losses),
                 static_cast<unsigned long long>(r.messages), r.rss_peak_mb,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_scale_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  std::vector<std::pair<int, int>> plan;  // {n, sim_seconds}
  if (quick) {
    plan.emplace_back(1'000, 600);
  } else {
    plan.emplace_back(1'000, 3600);
    plan.emplace_back(10'000, 3600);
    plan.emplace_back(100'000, 3600);
  }

  std::printf("scale_fleet: %zu run(s)%s\n", plan.size(), quick ? " [quick]" : "");
  std::vector<FleetResult> rows;
  for (const auto& [n, sim_s] : plan) {
    const FleetResult r = run_fleet(n, sim_s);
    rows.push_back(r);
    std::printf(
        "n=%-7d sim=%ds wall=%.2fs ratio=%.1fx events=%llu (%.2fM ev/s) "
        "tx=%llu deliveries=%llu messages=%llu rss_peak=%.1fMB\n",
        r.n, r.sim_seconds, r.wall_s, r.ratio,
        static_cast<unsigned long long>(r.events), r.events_per_sec / 1e6,
        static_cast<unsigned long long>(r.transmissions),
        static_cast<unsigned long long>(r.deliveries),
        static_cast<unsigned long long>(r.messages), r.rss_peak_mb);
  }
  write_json(rows, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
