// Fleet-scale stress bench for the event core (DESIGN.md §9): N Wi-LE
// senders on a 5 m grid duty-cycling every 60 s, plus one gateway
// receiver per 2500 devices, simulated for an hour. Exercises exactly
// the paths the fleet refactor optimised — scheduler churn from CSMA
// and duty-cycle timers, spatial delivery queries over a mostly
// out-of-earshot fleet, and shared frame buffers on the dense
// neighbourhoods around each sender.
//
// Setup goes through sim::ScenarioBuilder, whose defaults ARE this
// bench's historical hand wiring (seeds 0xF1EE7 / 0xF1EE7C0DE, 5 m
// grid, staggered starts) — tests/test_telemetry.cpp pins the two
// bit-identical.
//
// Writes BENCH_scale_fleet.json: per-N events/sec, sim/wall speed
// ratio, Medium stats, peak RSS and this run's RSS delta. The
// transmission/delivery/message counts double as a cross-version
// determinism oracle: they are seed-determined, so any event-core
// change that alters them broke reproducibility (see
// tests/test_determinism.cpp). Unless --no-telemetry, also exports the
// full wile-telemetry-v1 snapshot of the last run (per-node TX/RX/
// energy plus aggregates) for the CI artifact + schema check.
//
// Usage: scale_fleet [--quick] [--out PATH] [--telemetry-out PATH]
//                    [--no-telemetry] [--threads N] [--shards N]
//   --quick          N=1000 for 600 simulated seconds (CI-sized)
//   default          N in {1000, 10000, 100000} serial, one simulated
//                    hour each; then N=100000 on the sharded engine at
//                    threads {1, 2, 4}; then the ROADMAP north-star
//                    N=1,000,000 x 1 h at 4 threads
//   --no-telemetry   skip metric registration entirely (A/B overhead runs)
//   --threads N      override: run the whole plan on the sharded engine
//                    with N worker threads (0 = legacy serial engine)
//   --shards N       stripe count for the sharded engine (default 8;
//                    results depend on this, not on --threads)
//
// Each JSON row carries its engine config (threads, shards — 0/0 for
// serial) plus hw_threads, the machine's core count: the schema gate
// only enforces events/sec scaling where the hardware can actually run
// the workers in parallel, but enforces the tx/delivery/message
// determinism oracle across thread counts unconditionally.
//
// Peak RSS is process-wide and monotone, so runs are ordered smallest
// N first and each row reports the high-water mark up to that run;
// rss_delta_mb is the per-run change in *current* RSS (from
// /proc/self/statm), which does not suffer the high-water-mark
// monotonicity.
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "wile/scenario.hpp"

using namespace wile;

namespace {

struct FleetResult {
  int n = 0;
  int sim_seconds = 0;
  unsigned threads = 0;   // 0 = legacy serial engine
  std::size_t shards = 0; // 0 = legacy serial engine
  double wall_s = 0.0;
  double ratio = 0.0;  // simulated seconds per wall second
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collision_losses = 0;
  std::uint64_t messages = 0;
  double rss_peak_mb = 0.0;
  double rss_delta_mb = 0.0;  // current-RSS change across this run
  double rss_per_node_bytes = 0.0;  // rss_delta_mb * 1024 * 1024 / n
};

double peak_rss_mb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

/// Current (not peak) resident set in MB, from /proc/self/statm.
/// Returns 0 on platforms without procfs — the delta then reads 0,
/// which the JSON consumer treats as "unavailable".
double current_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long size_pages = 0, resident_pages = 0;
  const int matched = std::fscanf(f, "%ld %ld", &size_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0.0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<double>(resident_pages) * static_cast<double>(page) /
         (1024.0 * 1024.0);
}

FleetResult run_fleet(int n, int sim_seconds, unsigned threads, std::size_t shards,
                      bool telemetry, std::string* telemetry_json) {
  const double rss_before_mb = current_rss_mb();

  auto builder = sim::ScenarioBuilder{}
                     .devices(n)
                     .grid_spacing_m(5)
                     .gateway_every(2500)
                     .duty_cycle(seconds(60))
                     .seed(0xF1EE7C0DE)
                     .medium_seed(0xF1EE7)
                     .telemetry(telemetry)
                     // Above ~10k nodes the per-node registry itself
                     // becomes a measurable slice of RSS; keep it out
                     // of the fleet-memory measurement. Aggregates
                     // stay on regardless.
                     .per_node_metrics(n <= 10'000);
  if (threads > 0) builder.threads(threads).shards(shards);
  auto scenario = builder.build();

  const auto wall_start = std::chrono::steady_clock::now();
  scenario->run_until(TimePoint{seconds(sim_seconds)});
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  FleetResult r;
  r.n = n;
  r.sim_seconds = sim_seconds;
  r.threads = threads;
  r.shards = threads > 0 ? shards : 0;
  r.wall_s = wall_s;
  r.ratio = sim_seconds / wall_s;
  r.events = scenario->events_run();
  r.events_per_sec = static_cast<double>(r.events) / wall_s;
  const sim::Medium::Stats stats = scenario->medium_stats();
  r.transmissions = stats.transmissions;
  r.deliveries = stats.deliveries;
  r.collision_losses = stats.collision_losses;
  r.messages = scenario->messages();
  r.rss_peak_mb = peak_rss_mb();
  r.rss_delta_mb = current_rss_mb() - rss_before_mb;
  r.rss_per_node_bytes =
      n > 0 ? r.rss_delta_mb * 1024.0 * 1024.0 / static_cast<double>(n) : 0.0;

  if (telemetry && telemetry_json != nullptr) {
    telemetry::ExportMeta meta;
    meta.bench = "scale_fleet";
    meta.ints = {{"n", n},
                 {"sim_seconds", sim_seconds},
                 {"events", static_cast<std::int64_t>(r.events)}};
    meta.doubles = {{"wall_seconds", wall_s}};
    *telemetry_json = scenario->export_json(meta);
  }
  return r;
}

void write_json(const std::vector<FleetResult>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror("scale_fleet: fopen");
    return;
  }
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n  \"bench\": \"scale_fleet\",\n  \"hw_threads\": %u,\n  \"runs\": [\n",
               hw_threads);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FleetResult& r = rows[i];
    std::fprintf(f,
                 "    {\"n\": %d, \"sim_seconds\": %d, \"wall_seconds\": %.3f,\n"
                 "     \"threads\": %u, \"shards\": %zu, \"hw_threads\": %u,\n"
                 "     \"sim_wall_ratio\": %.1f, \"events\": %llu,\n"
                 "     \"events_per_sec\": %.0f, \"transmissions\": %llu,\n"
                 "     \"deliveries\": %llu, \"collision_losses\": %llu,\n"
                 "     \"messages\": %llu, \"rss_peak_mb\": %.1f,\n"
                 "     \"rss_delta_mb\": %.1f, \"rss_per_node_bytes\": %.1f}%s\n",
                 r.n, r.sim_seconds, r.wall_s, r.threads, r.shards, hw_threads,
                 r.ratio,
                 static_cast<unsigned long long>(r.events), r.events_per_sec,
                 static_cast<unsigned long long>(r.transmissions),
                 static_cast<unsigned long long>(r.deliveries),
                 static_cast<unsigned long long>(r.collision_losses),
                 static_cast<unsigned long long>(r.messages), r.rss_peak_mb,
                 r.rss_delta_mb, r.rss_per_node_bytes,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

struct PlanEntry {
  int n;
  int sim_seconds;
  unsigned threads;   // 0 = serial
  std::size_t shards; // 0 = serial
};

int main(int argc, char** argv) {
  bool quick = false;
  bool telemetry = true;
  long threads_override = -1;  // -1 = no override; 0 = force serial
  std::size_t shards = 8;
  std::string out_path = "BENCH_scale_fleet.json";
  std::string telemetry_path = "BENCH_scale_fleet_telemetry.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--no-telemetry") == 0) {
      telemetry = false;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads_override = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--telemetry-out") == 0 && i + 1 < argc) {
      telemetry_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH] [--telemetry-out PATH] "
                   "[--no-telemetry] [--threads N] [--shards N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<PlanEntry> plan;
  if (threads_override >= 0) {
    // Override mode: the whole plan on one engine config (CI A/B runs).
    const auto t = static_cast<unsigned>(threads_override);
    const std::size_t s = t > 0 ? shards : 0;
    if (quick) {
      plan.push_back({1'000, 600, t, s});
    } else {
      plan.push_back({1'000, 3600, t, s});
      plan.push_back({10'000, 3600, t, s});
      plan.push_back({100'000, 3600, t, s});
    }
  } else if (quick) {
    plan.push_back({1'000, 600, 0, 0});
  } else {
    // Serial baseline, then the thread axis at fixed N and shard count
    // (the determinism oracle compares those three rows), then the
    // ROADMAP north-star fleet on the sharded engine.
    plan.push_back({1'000, 3600, 0, 0});
    plan.push_back({10'000, 3600, 0, 0});
    plan.push_back({100'000, 3600, 0, 0});
    plan.push_back({100'000, 3600, 1, shards});
    plan.push_back({100'000, 3600, 2, shards});
    plan.push_back({100'000, 3600, 4, shards});
    plan.push_back({1'000'000, 3600, 4, shards});
  }

  std::printf("scale_fleet: %zu run(s)%s%s\n", plan.size(), quick ? " [quick]" : "",
              telemetry ? "" : " [no-telemetry]");
  std::vector<FleetResult> rows;
  std::string telemetry_json;  // last run's full snapshot
  for (const PlanEntry& p : plan) {
    const FleetResult r =
        run_fleet(p.n, p.sim_seconds, p.threads, p.shards, telemetry, &telemetry_json);
    rows.push_back(r);
    std::printf(
        "n=%-7d sim=%ds threads=%u shards=%zu wall=%.2fs ratio=%.1fx "
        "events=%llu (%.2fM ev/s) tx=%llu deliveries=%llu messages=%llu "
        "rss_peak=%.1fMB rss_delta=%+.1fMB (%.0f B/node)\n",
        r.n, r.sim_seconds, r.threads, r.shards, r.wall_s, r.ratio,
        static_cast<unsigned long long>(r.events), r.events_per_sec / 1e6,
        static_cast<unsigned long long>(r.transmissions),
        static_cast<unsigned long long>(r.deliveries),
        static_cast<unsigned long long>(r.messages), r.rss_peak_mb, r.rss_delta_mb,
        r.rss_per_node_bytes);
  }
  write_json(rows, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  if (telemetry && !telemetry_json.empty()) {
    if (telemetry::write_file(telemetry_path, telemetry_json)) {
      std::printf("wrote %s\n", telemetry_path.c_str());
    } else {
      std::fprintf(stderr, "scale_fleet: failed to write %s\n",
                   telemetry_path.c_str());
      return 1;
    }
  }
  return 0;
}
