// Reliability strategies at the range edge.
//
// Wi-LE beacons carry no link-layer ACK. At the edge of range an
// application has three choices, all implemented by this library:
//   (1) accept the loss (the paper's position: telemetry is periodic),
//   (2) blind repetition (k copies per cycle),
//   (3) reliable mode: controller Acks over the §6 two-way channel and
//       sender retransmission on the *next* cycle.
// This bench measures delivery and TX energy per *delivered* message for
// each, at a distance where single-shot delivery is ~80 %. Reliable mode
// spends energy only when needed (retries), while repetition pays on
// every cycle — the classic open-loop/closed-loop trade.
//
// Also prints the BLE slave-latency knob (the BLE-side analogue of
// WiFi-PS beacon skipping) for the idle-energy column of the comparison.
#include <cstdio>
#include <optional>
#include <set>

#include "ble/link.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "wile/controller.hpp"
#include "wile/receiver.hpp"
#include "wile/sender.hpp"

using namespace wile;

namespace {

constexpr double kEdgeDistanceM = 11.0;
constexpr int kRounds = 300;
const Duration kPeriod = msec(400);

struct Strategy {
  const char* name;
  double delivery_pct = 0.0;
  double uj_per_delivered = 0.0;
};

Strategy run_repeats(int repeats) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{41}};
  core::SenderConfig cfg;
  cfg.period = kPeriod;
  cfg.repeats = repeats;
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{42}};
  core::Receiver monitor{scheduler, medium, {kEdgeDistanceM, 0}};

  Joules tx_energy{};
  std::uint64_t cycles = 0;
  sender.start_duty_cycle(
      [&cycles] {
        ++cycles;
        return Bytes(16, 1);
      },
      [&tx_energy](const core::SendReport& r) { tx_energy += r.tx_only_energy; });
  scheduler.run_until(TimePoint{kPeriod * (kRounds + 1)});
  sender.stop_duty_cycle();
  scheduler.run_until(scheduler.now() + seconds(1));

  Strategy out;
  out.name = repeats == 1 ? "single shot" : (repeats == 2 ? "2 copies" : "3 copies");
  out.delivery_pct =
      100.0 * static_cast<double>(monitor.stats().messages) / static_cast<double>(cycles);
  out.uj_per_delivered = monitor.stats().messages > 0
                             ? in_microjoules(tx_energy) /
                                   static_cast<double>(monitor.stats().messages)
                             : 0.0;
  return out;
}

Strategy run_reliable() {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{41}};
  core::SenderConfig cfg;
  cfg.period = kPeriod;
  cfg.rx_window = core::RxWindow{msec(2), msec(15)};
  cfg.reliable = true;
  cfg.reliable_max_attempts = 5;
  core::Sender sender{scheduler, medium, {0, 0}, cfg, Rng{42}};
  core::ControllerConfig ctl_cfg;
  ctl_cfg.auto_ack = true;
  core::Controller controller{scheduler, medium, {kEdgeDistanceM, 0}, ctl_cfg, Rng{43}};

  std::set<std::uint32_t> delivered;
  controller.set_message_callback(
      [&](const core::Message& m, const core::RxMeta&) { delivered.insert(m.sequence); });

  Joules tx_energy{};
  std::uint64_t fresh = 0;
  sender.start_duty_cycle(
      [&fresh] {
        ++fresh;
        return Bytes(16, 1);
      },
      [&tx_energy](const core::SendReport& r) { tx_energy += r.tx_only_energy; });
  scheduler.run_until(TimePoint{kPeriod * (kRounds + 1)});
  sender.stop_duty_cycle();
  scheduler.run_until(scheduler.now() + seconds(1));

  Strategy out;
  out.name = "reliable (acks)";
  // Delivery counted over *distinct* messages the sensor produced.
  out.delivery_pct =
      100.0 * static_cast<double>(delivered.size()) / static_cast<double>(fresh);
  out.uj_per_delivered = delivered.empty()
                             ? 0.0
                             : in_microjoules(tx_energy) /
                                   static_cast<double>(delivered.size());
  return out;
}

double ble_idle_ua(int slave_latency) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{44}};
  ble::BleLinkConfig cfg;
  cfg.connection_interval = seconds(1);
  cfg.slave_latency = slave_latency;
  ble::BleMaster master{scheduler, medium, {0, 0}, cfg};
  ble::BleSlave slave{scheduler, medium, {2, 0}, cfg};
  master.start();
  slave.start();
  scheduler.run_until(TimePoint{minutes(2)});
  const Watts avg =
      slave.timeline().average_power(TimePoint{seconds(2)}, scheduler.now());
  return in_microamps(avg / cfg.power.supply);
}

}  // namespace

int main() {
  std::printf("=== reliability strategies at the range edge (%.0f m, %d rounds) ===\n\n",
              kEdgeDistanceM, kRounds);
  std::printf("  %-16s | %-10s | %-24s\n", "strategy", "delivery",
              "TX energy per delivered");
  std::printf("  -----------------+------------+--------------------------\n");

  const Strategy strategies[] = {run_repeats(1), run_repeats(2), run_repeats(3),
                                 run_reliable()};
  for (const Strategy& s : strategies) {
    std::printf("  %-16s | %9.1f%% | %18.0f uJ\n", s.name, s.delivery_pct,
                s.uj_per_delivered);
  }

  const Strategy& blind3 = strategies[2];
  const Strategy& reliable = strategies[3];
  std::printf("\n  closed-loop retransmission reaches %.1f%% delivery at %.0f uJ per "
              "delivered message vs %.0f uJ for 3 blind copies — feedback beats "
              "redundancy when losses are bursty-free.\n",
              reliable.delivery_pct, reliable.uj_per_delivered, blind3.uj_per_delivered);

  std::printf("\n-- BLE slave-latency knob (idle current on an empty 1 s connection) --\n");
  std::printf("  %-14s | %-12s\n", "slave_latency", "idle uA");
  for (int latency : {0, 3, 9}) {
    std::printf("  %-14d | %10.2f\n", latency, ble_idle_ua(latency));
  }
  std::printf("  (the BLE analogue of WiFi-PS beacon skipping — see E10; deep sleep "
              "between attended events stays 1.1 uA, the knob trims the per-event "
              "wakes.)\n");

  const bool ok = reliable.delivery_pct > 99.0 &&
                  reliable.uj_per_delivered < blind3.uj_per_delivered &&
                  ble_idle_ua(9) < ble_idle_ua(0);
  std::printf("\n  shape %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
