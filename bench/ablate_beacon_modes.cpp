// Extension experiment — Wi-LE vs the *other* BLE mode.
//
// The paper's BLE baseline is a connection (master polls, slave answers).
// But the interaction model Wi-LE actually copies — broadcast, no
// connection, any listener — is BLE *advertising*. This bench puts all
// three on equal footing: one ~20-byte reading delivered to a
// mains-powered listener, energy integrated on the battery device.
//
// It also sweeps the advertising payload to show where each scheme wins:
// BLE advertising caps at 31 bytes/event while one Wi-LE beacon carries
// 235 bytes, so Wi-LE's advantage grows with message size.
// The Wi-LE and BLE-advertising arms run through the ScenarioBuilder
// mode presets (TxMode::WiLeBeacon / TxMode::Ble) with auto_start off —
// the preset assembles the same two-node wiring the bench used to hand
// build (same seeds, same positions, same construction order), and the
// bench drives one send_now / advertise_once by hand. Cell values are
// output-identical to the pre-port bench. The BLE *connection* arm stays
// hand-wired: a connection is not one of the three transmission modes.
#include <cstdio>
#include <optional>

#include "ble/link.hpp"
#include "wile/scenario.hpp"

using namespace wile;

namespace {

/// The shared two-node bench environment: one battery device at the
/// origin, one mains-powered listener 2 m away, medium seeded with 1.
sim::ScenarioBuilder bench_pair() {
  return sim::ScenarioBuilder{}
      .devices(1)
      .auto_start(false)
      .telemetry(false)
      .timeline_max_segments(0)
      .medium_seed(1)
      .place_device([](int) { return sim::Position{0, 0}; })
      .gateways(1)
      .place_gateway([](int) { return sim::Position{2, 0}; });
}

double wile_energy_uj(std::size_t payload) {
  auto scenario = bench_pair()
                      .mode(TxMode::WiLeBeacon)
                      .device_rng([](int) { return Rng{2}; })
                      .build();
  core::Sender& sender = *scenario->devices().front();
  std::optional<core::SendReport> report;
  sender.send_now(Bytes(payload, 0x42), [&](const core::SendReport& r) { report = r; });
  scenario->scheduler().run_until_idle();
  if (scenario->gateways().front()->stats().messages != 1) return -1.0;
  return in_microjoules(report->tx_only_energy);
}

double ble_adv_energy_uj(std::size_t payload, int channels) {
  if (payload > phy::BlePhy::kMaxAdvData) return -1.0;
  sim::BleFleetOptions opts;
  opts.advertiser.channels = channels;
  opts.adv_delay_max = Duration{0};  // one-shot event; keep the legacy no-RNG path
  auto scenario = bench_pair().ble(opts).build();
  ble::BleAdvertiser& adv = *scenario->ble_devices().front();
  ble::BleScanner& scanner = *scenario->ble_scanners().front();
  std::optional<ble::AdvEventReport> report;
  adv.advertise_once(Bytes(payload, 0x42), [&](const ble::AdvEventReport& r) { report = r; });
  scenario->scheduler().run_until_idle();
  if (scanner.pdus_received() == 0) return -1.0;
  return in_microjoules(report->energy);
}

double ble_conn_energy_uj(std::size_t payload) {
  if (payload > 27) return -1.0;
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ble::BleLinkConfig cfg;
  ble::BleMaster master{scheduler, medium, {0, 0}, cfg};
  ble::BleSlave slave{scheduler, medium, {2, 0}, cfg};
  std::optional<ble::BleEventReport> report;
  slave.set_event_callback([&](const ble::BleEventReport& r) {
    if (r.data_sent && !report) report = r;
  });
  slave.queue_payload(Bytes(payload, 0x42));
  master.start();
  slave.start();
  scheduler.run_until(TimePoint{seconds(3)});
  if (!report || master.received_payloads().empty()) return -1.0;
  return in_microjoules(report->energy);
}

void print_cell(double uj) {
  if (uj < 0) {
    std::printf(" %14s |", "n/a");
  } else {
    std::printf(" %11.1f uJ |", uj);
  }
}

}  // namespace

int main() {
  std::printf("=== extension: Wi-LE vs BLE advertising vs BLE connection ===\n");
  std::printf("(energy on the battery device to deliver one message to a mains-powered "
              "listener)\n\n");
  std::printf("  %-8s | %15s | %15s | %15s | %15s\n", "payload", "Wi-LE beacon",
              "BLE adv (3ch)", "BLE adv (1ch)", "BLE connection");
  std::printf("  ---------+-----------------+-----------------+-----------------+--------"
              "---------\n");

  double wile20 = 0, adv20 = 0;
  for (std::size_t payload : {8u, 20u, 27u, 31u, 64u, 235u}) {
    std::printf("  %-8zu |", payload);
    const double w = wile_energy_uj(payload);
    const double a3 = ble_adv_energy_uj(payload, 3);
    const double a1 = ble_adv_energy_uj(payload, 1);
    const double c = ble_conn_energy_uj(payload);
    print_cell(w);
    print_cell(a3);
    print_cell(a1);
    print_cell(c);
    std::printf("\n");
    if (payload == 20) {
      wile20 = w;
      adv20 = a3;
    }
  }

  // Related-work arm (§2): SSID stuffing carries at most 27 bytes per
  // beacon and pollutes scan lists; energy is identical to a Wi-LE beacon
  // of the same size (same airtime), so the trade is capacity + UX, not
  // power.
  std::printf("\n  SSID stuffing (Chandra'07-style, §2): max %zu B/beacon, visible in "
              "every scan list; Wi-LE's hidden-SSID vendor IE carries %u B invisibly.\n",
              core::kSsidStuffingCapacity, 235u);

  std::printf("\n  at a typical 20-byte reading: Wi-LE %.1f uJ vs BLE advertising %.1f uJ "
              "— the connection-less WiFi beacon beats the connection-less BLE beacon "
              "(%.2fx), because 72 Mbps airtime is ~40x shorter than three 1 Mbps "
              "advertising PDUs.\n",
              wile20, adv20, adv20 / wile20);
  std::printf("  past 31 bytes BLE advertising cannot carry the message at all; past 27 "
              "bytes the BLE connection must fragment (n/a cells).\n");

  const bool ok = wile20 > 0 && adv20 > wile20;
  std::printf("\n  shape %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
