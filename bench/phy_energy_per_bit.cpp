// Experiment E6 — the paper's §1 physical-layer claim:
//   "the energy required to transmit one bit of data using Bluetooth is
//    275-300 nJ/bit while with WiFi it is 10-100 depending on the
//    bitrate."
//
// Prints WiFi PHY energy/bit across every supported rate, plus the BLE
// raw and effective (advertising-event) numbers the cited measurement
// papers report.
#include <cstdio>

#include "phy/energy.hpp"

int main() {
  using namespace wile;
  using namespace wile::phy;

  std::printf("=== E6: physical-layer energy per bit (paper §1) ===\n\n");
  std::printf("WiFi (ESP32-class TX draw %.0f mW):\n",
              in_milliwatts(kWifiTxPowerDraw));
  std::printf("  %-8s %10s %14s %22s\n", "rate", "Mbps", "nJ/bit (PHY)",
              "nJ/bit (100B frame)");
  for (const RateInfo& info : all_rates()) {
    const Joules phy_e = wifi_energy_per_bit(info.rate);
    const Joules eff_e = wifi_effective_energy_per_bit(100, info.rate);
    std::printf("  %-8s %10.1f %14.1f %22.1f\n", std::string(info.name).c_str(),
                info.bits_per_us, in_nanojoules(phy_e), in_nanojoules(eff_e));
  }

  const double lo = in_nanojoules(wifi_energy_per_bit(WifiRate::Mcs7Sgi));
  const double hi = in_nanojoules(wifi_energy_per_bit(WifiRate::G6));
  std::printf("\n  WiFi span across bitrates: %.1f - %.1f nJ/bit   (paper: 10-100)\n",
              lo, hi);

  std::printf("\nBLE (CC2541-class TX draw %.1f mW):\n", in_milliwatts(kBleTxPowerDraw));
  std::printf("  raw 1 Mbps PHY:                 %6.1f nJ/bit\n",
              in_nanojoules(ble_raw_energy_per_bit()));
  for (std::size_t adv = 31; adv >= 8; adv /= 2) {
    std::printf("  effective, %2zu B adv payload x3: %6.1f nJ/bit\n", adv,
                in_nanojoules(ble_effective_energy_per_bit(adv)));
  }
  std::printf("\n  BLE effective (31 B adv event): %.1f nJ/bit   (paper: 275-300)\n",
              in_nanojoules(ble_effective_energy_per_bit()));

  std::printf("\nShape check: BLE effective / WiFi@72M = %.0fx (paper implies ~30x: "
              "\"nearly three times as much energy ... as WiFi\" at the 100 nJ/bit "
              "end, ~30x at the 10 nJ/bit end)\n",
              in_nanojoules(ble_effective_energy_per_bit()) / lo);
  return 0;
}
