// Experiment E10 — the WiFi-PS design point (§5.3):
//   "the WiFi chip wakes up only for every third beacon frame"
//
// Sweeps the listen interval (wake for every Nth beacon) and measures
// the PS idle current from the simulated station, then shows the effect
// on Eq.-(1) average power at a 1-minute transmission interval. This is
// the knob that trades downlink latency for idle power — and the bench
// shows why even the most aggressive setting stays ~3 orders of
// magnitude above Wi-LE's deep-sleep idle.
#include <cstdio>
#include <optional>

#include "ap/access_point.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "sta/station.hpp"

using namespace wile;

namespace {

struct SkipResult {
  bool ok = false;
  double idle_ua = 0.0;
  double beacons_per_min = 0.0;
};

SkipResult run(int listen_skip) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{10}};
  ap.start();
  sta::StationConfig sta_cfg;
  sta_cfg.listen_skip = listen_skip;
  sta::Station sta{scheduler, medium, {3, 0}, sta_cfg, Rng{20}};

  bool ready = false;
  sta.connect_and_enter_power_save([&](bool ok) { ready = ok; });
  scheduler.run_until(TimePoint{seconds(10)});
  if (!ready) return {};

  const TimePoint from = scheduler.now();
  const auto beacons_before = sta.stats().beacons_heard;
  scheduler.run_until(from + minutes(2));
  const Watts avg = sta.timeline().average_power(from, scheduler.now());

  SkipResult r;
  r.ok = true;
  r.idle_ua = in_microamps(avg / sta_cfg.power.supply);
  r.beacons_per_min =
      static_cast<double>(sta.stats().beacons_heard - beacons_before) / 2.0;
  return r;
}

}  // namespace

int main() {
  std::printf("=== E10: WiFi-PS listen-interval ablation ===\n\n");
  std::printf("  %-12s | %12s | %14s | %20s\n", "listen_skip", "idle_uA",
              "beacons/min", "Pavg @ 1 min (mW)");
  std::printf("  -------------+--------------+----------------+---------------------\n");

  const Joules e_tx = millijoules(19.9);  // PS transmission cost (Table 1 bench)
  const Duration t_tx = msec(150);

  double idle_skip1 = 0.0, idle_skip10 = 0.0;
  bool skip3_near_paper = false;
  for (int skip : {1, 2, 3, 5, 10}) {
    const SkipResult r = run(skip);
    if (!r.ok) {
      std::printf("  %-12d | association failed\n", skip);
      continue;
    }
    const Watts p_idle = microwatts(r.idle_ua * 3.3);
    const Watts p_avg = power::duty_cycle_average_power(e_tx / t_tx, t_tx, p_idle, minutes(1));
    std::printf("  %-12d | %12.1f | %14.1f | %20.3f\n", skip, r.idle_ua,
                r.beacons_per_min, in_milliwatts(p_avg));
    if (skip == 1) idle_skip1 = r.idle_ua;
    if (skip == 10) idle_skip10 = r.idle_ua;
    if (skip == 3 && r.idle_ua > 3800 && r.idle_ua < 5200) skip3_near_paper = true;
  }

  std::printf("\n  paper's configuration (skip=3) gives ~4500 uA (Table 1): %s\n",
              skip3_near_paper ? "reproduced" : "NOT reproduced");
  std::printf("  even skip=10 idles ~%.0fx above Wi-LE's 2.5 uA deep sleep — maintaining "
              "an association costs orders of magnitude regardless of the knob.\n",
              idle_skip10 / 2.5);

  const bool ok = skip3_near_paper && idle_skip1 > idle_skip10;
  std::printf("\n  shape %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
