// Microbenchmarks (google-benchmark) for the hot paths of the library:
// the Wi-LE payload codec, the 802.11 frame codec, the crypto
// primitives, and the discrete-event simulator core.
//
// These are not paper experiments; they document the cost of the
// building blocks so downstream users can budget for them (e.g. a
// gateway decoding thousands of Wi-LE beacons per second).
#include <benchmark/benchmark.h>

#include <cmath>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "crypto/aes_modes.hpp"
#include "crypto/pbkdf2.hpp"
#include "crypto/sha1.hpp"
#include "dot11/frame.hpp"
#include "phy/channel.hpp"
#include "sim/medium.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "wile/codec.hpp"
#include "wile/ingest.hpp"
#include "wile/rules/engine.hpp"

using namespace wile;

namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

void BM_WileEncode(benchmark::State& state) {
  core::Codec codec;
  core::Message msg;
  msg.device_id = 7;
  msg.data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    msg.sequence++;
    benchmark::DoNotOptimize(codec.encode(msg));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WileEncode)->Arg(16)->Arg(235)->Arg(1024);

void BM_WileDecode(benchmark::State& state) {
  core::Codec codec;
  core::Message msg;
  msg.device_id = 7;
  msg.data = random_bytes(static_cast<std::size_t>(state.range(0)), 2);
  const auto ies = codec.encode(msg);
  for (auto _ : state) {
    for (const auto& ie : ies) benchmark::DoNotOptimize(codec.decode(ie));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WileDecode)->Arg(16)->Arg(235)->Arg(1024);

void BM_WileEncodeEncrypted(benchmark::State& state) {
  core::Codec codec{Bytes(16, 0x42)};
  core::Message msg;
  msg.device_id = 7;
  msg.data = random_bytes(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    msg.sequence++;
    benchmark::DoNotOptimize(codec.encode(msg));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WileEncodeEncrypted)->Arg(16)->Arg(227);

void BM_BeaconAssembleParse(benchmark::State& state) {
  dot11::Beacon beacon;
  beacon.ies.add(dot11::make_ssid_ie(""));
  beacon.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  beacon.ies.add(dot11::make_ds_param_ie(6));
  const Bytes body = beacon.encode();
  const MacAddress mac = MacAddress::from_seed(1);
  for (auto _ : state) {
    const Bytes mpdu =
        dot11::build_mgmt_mpdu(dot11::MgmtSubtype::Beacon, MacAddress::broadcast(), mac,
                               mac, 1, body);
    benchmark::DoNotOptimize(dot11::parse_mpdu(mpdu));
  }
}
BENCHMARK(BM_BeaconAssembleParse);

void BM_Sha1(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AesCtr(benchmark::State& state) {
  crypto::Aes128 aes{Bytes(16, 0x11)};
  std::array<std::uint8_t, 12> nonce{};
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_ctr(aes, nonce, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(64)->Arg(1024);

void BM_Wpa2PskDerivation(benchmark::State& state) {
  // 4096 PBKDF2 iterations — the cost the ESP32 caches in NVS.
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::wpa2_psk("hotnets2019", "GoogleWifi"));
  }
}
BENCHMARK(BM_Wpa2PskDerivation)->Unit(benchmark::kMillisecond);

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler scheduler;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      scheduler.schedule_in(usec(i), [&fired] { ++fired; });
    }
    scheduler.run_until_idle();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerChurn);

void BM_SchedulerChurnCancel(benchmark::State& state) {
  // Cancel-heavy workload: every CSMA backoff and every guard timer in
  // the protocol stack schedules-then-cancels. Two of every three
  // events here are cancelled before they fire.
  for (auto _ : state) {
    sim::Scheduler scheduler;
    int fired = 0;
    std::vector<sim::EventId> ids;
    ids.reserve(3000);
    for (int i = 0; i < 3000; ++i) {
      ids.push_back(scheduler.schedule_in(usec(i), [&fired] { ++fired; }));
    }
    for (int i = 0; i < 3000; ++i) {
      if (i % 3 != 0) scheduler.cancel(ids[static_cast<std::size_t>(i)]);
    }
    scheduler.run_until_idle();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 3000);
}
BENCHMARK(BM_SchedulerChurnCancel);

void BM_SchedulerRunUntil(benchmark::State& state) {
  // Bounded-horizon stepping, the fleet-bench inner loop: a recurring
  // event reschedules itself while run_until repeatedly hits deadlines
  // with work left in the queue.
  for (auto _ : state) {
    sim::Scheduler scheduler;
    std::uint64_t ticks = 0;
    std::function<void()> tick = [&] {
      ++ticks;
      scheduler.schedule_in(usec(10), tick);
    };
    scheduler.schedule_in(usec(0), tick);
    for (int horizon = 1; horizon <= 100; ++horizon) {
      scheduler.run_until(TimePoint{usec(horizon * 100)});
    }
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerRunUntil);

class CountingClient final : public sim::MediumClient {
 public:
  void on_frame(const sim::RxFrame& frame) override {
    bytes += frame.mpdu.size();
    ++frames;
  }
  void on_corrupt_frame(const sim::RxFrame&, bool) override { ++corrupt; }
  [[nodiscard]] bool rx_enabled() const override { return true; }
  std::uint64_t frames = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t bytes = 0;
};

void BM_MediumBroadcast(benchmark::State& state) {
  // One transmitter, N listeners packed within audible range: the
  // delivery fan-out cost per frame (spatial query + shared-buffer
  // handoff + PER draw per receiver).
  const int n_rx = static_cast<int>(state.range(0));
  sim::Scheduler scheduler;
  phy::Channel channel{};
  sim::Medium medium{scheduler, channel, Rng{17}};

  CountingClient tx_client;
  const sim::NodeId tx = medium.attach(&tx_client, {0, 0});
  std::vector<std::unique_ptr<CountingClient>> listeners;
  const int side = static_cast<int>(std::ceil(std::sqrt(n_rx)));
  for (int i = 0; i < n_rx; ++i) {
    listeners.push_back(std::make_unique<CountingClient>());
    // 0.5 m spacing keeps even the 1000-listener square inside ~25 m
    // carrier-sense range of the transmitter.
    medium.attach(listeners.back().get(),
                  {1.0 + static_cast<double>(i % side) * 0.5,
                   static_cast<double>(i / side) * 0.5});
  }

  const Bytes payload(200, 0xBE);
  for (auto _ : state) {
    sim::TxRequest req;
    req.mpdu = payload;
    req.airtime = usec(100);
    req.rate = phy::WifiRate::Mcs7Sgi;
    medium.transmit(tx, std::move(req));
    scheduler.run_until_idle();
  }
  state.SetItemsProcessed(state.iterations() * n_rx);
}
BENCHMARK(BM_MediumBroadcast)->Arg(100)->Arg(1000);

void BM_MediumSparseFleet(benchmark::State& state) {
  // N nodes spread far apart, one transmission: the spatial grid should
  // make delivery cost independent of fleet size (the dense scan was
  // O(N) per transmission).
  const int n_nodes = static_cast<int>(state.range(0));
  sim::Scheduler scheduler;
  phy::Channel channel{};
  sim::Medium medium{scheduler, channel, Rng{18}};

  std::vector<std::unique_ptr<CountingClient>> nodes;
  const int side = static_cast<int>(std::ceil(std::sqrt(n_nodes)));
  sim::NodeId tx{};
  for (int i = 0; i < n_nodes; ++i) {
    nodes.push_back(std::make_unique<CountingClient>());
    // 100 m spacing: everyone is out of earshot of everyone.
    const sim::NodeId id = medium.attach(
        nodes.back().get(),
        {static_cast<double>(i % side) * 100.0, static_cast<double>(i / side) * 100.0});
    if (i == 0) tx = id;
  }

  const Bytes payload(32, 0xCD);
  for (auto _ : state) {
    sim::TxRequest req;
    req.mpdu = payload;
    req.airtime = usec(50);
    medium.transmit(tx, std::move(req));
    scheduler.run_until_idle();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MediumSparseFleet)->Arg(1000)->Arg(10000);

void BM_ShardBoundary(benchmark::State& state) {
  // The cross-shard commit path of the parallel engine: route a
  // boundary transmission whose audible circle spans `span` stripes
  // through the ShardRouter's SPSC queues, then drain at every
  // destination in canonical merge order. This is the per-frame cost a
  // boundary node adds over an interior node.
  const int span = static_cast<int>(state.range(0));
  sim::ShardRouter router{8, 0.0, 80.0};
  sim::RemoteTx tx;
  tx.origin_node = sim::NodeId{1};
  tx.tx_power_dbm = 20.0;
  tx.mpdu = FrameBuffer{Bytes(200, 0xAB)};
  tx.airtime = usec(100);
  // Center the circle mid-domain; radius chosen so it overlaps `span`
  // stripes (stripe width 10 m).
  tx.origin = {40.0, 0.0};
  tx.audible_range_m = static_cast<double>(span) * 10.0 / 2.0 - 0.5;
  const std::size_t src = router.shard_of(tx.origin.x_m);

  std::vector<sim::BoundaryTx> drained;
  for (auto _ : state) {
    router.route(src, tx);
    for (std::size_t dst = 0; dst < 8; ++dst) {
      drained.clear();
      router.drain(dst, drained);
      benchmark::DoNotOptimize(drained.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * (span - 1));
}
BENCHMARK(BM_ShardBoundary)->Arg(2)->Arg(4)->Arg(8);

void BM_WindowBarrier(benchmark::State& state) {
  // Window-barrier round-trip for T workers: two arrive_and_wait calls
  // per conservative window (run-phase barrier + drain-phase barrier).
  // On a machine with fewer cores than T this measures the
  // yield-and-reschedule cost the engine pays per window — exactly the
  // overhead visible in scale_fleet's threads>hw_threads rows.
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::SpinBarrier barrier{static_cast<unsigned>(workers)};
    constexpr int kWindows = 64;
    std::uint64_t stalls = 0;
    std::vector<std::thread> extra;
    auto loop = [&barrier] {
      std::uint64_t s = 0;
      for (int w = 0; w < kWindows; ++w) {
        s += barrier.arrive_and_wait();  // run phase done
        s += barrier.arrive_and_wait();  // drain phase done
      }
      return s;
    };
    for (int t = 1; t < workers; ++t) extra.emplace_back([&] { loop(); });
    stalls = loop();
    for (auto& t : extra) t.join();
    benchmark::DoNotOptimize(stalls);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 2);
}
BENCHMARK(BM_WindowBarrier)->Arg(1)->Arg(2)->Arg(4);

void BM_IngestDispatch(benchmark::State& state) {
  // The controller's per-fragment hot path over an N-device fleet: one
  // flat-table probe resolving the consolidated DeviceState, then the
  // track update and the once-per-announce report trigger. This is the
  // unit cost bench/ingest_throughput section 2 measures end-to-end
  // against the legacy three-map replica.
  const auto n_devices = static_cast<std::uint32_t>(state.range(0));
  core::IngestTable table;
  for (std::uint32_t id = 0; id < n_devices; ++id) table.state(id);

  Rng rng{0x1276E57};
  struct Frag {
    std::uint32_t device;
    std::uint32_t sequence;
  };
  std::vector<Frag> frags(1 << 16);
  std::vector<std::uint32_t> next_seq(n_devices, 1);
  for (auto& f : frags) {
    f.device = static_cast<std::uint32_t>(rng.below(n_devices));
    f.sequence = next_seq[f.device]++;
  }

  std::size_t i = 0;
  std::uint64_t reports = 0;
  for (auto _ : state) {
    const Frag& f = frags[i];
    if (++i == frags.size()) i = 0;
    core::DeviceState& dev = table.state(f.device);
    core::IngestTable::note_uplink(dev, f.sequence);
    reports += core::IngestTable::should_report(dev, f.sequence) ? 1 : 0;
  }
  benchmark::DoNotOptimize(reports);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IngestDispatch)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RulesEval(benchmark::State& state) {
  // One reading through the gateway rules engine's node chain: a value
  // condition feeding a hold node, plus a windowed aggregate — the two
  // stateful shapes. Readings cycle over N devices so per-device state
  // (streaks, windows) stays live.
  const auto n_devices = static_cast<std::uint32_t>(state.range(0));
  rules::RuleSpec hot;
  hot.name = "hot";
  hot.when = rules::ConditionSpec{rules::Field::Value, rules::Cmp::Gt, 40000.0};
  hot.hold = seconds(10);
  rules::RuleSpec burst;
  burst.name = "burst";
  burst.when = rules::ConditionSpec{rules::Field::Value, rules::Cmp::Ge, 0.0};
  rules::AggregateSpec agg;
  agg.op = rules::AggOp::Count;
  agg.window = seconds(30);
  agg.cmp = rules::Cmp::Ge;
  agg.rhs = 8;
  burst.aggregate = agg;
  rules::Engine engine{{hot, burst}};

  Rng rng{0xA11CE};
  rules::Reading reading;
  std::uint64_t t_us = 0;
  for (auto _ : state) {
    reading.device_id = static_cast<std::uint32_t>(rng.below(n_devices));
    reading.at = TimePoint{usec(static_cast<std::int64_t>(t_us))};
    t_us += 100;
    reading.value = static_cast<double>(rng.below(65536));
    reading.rssi_dbm = -60;
    engine.on_reading(reading);
  }
  benchmark::DoNotOptimize(engine.fired_total());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RulesEval)->Arg(100)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
