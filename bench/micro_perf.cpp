// Microbenchmarks (google-benchmark) for the hot paths of the library:
// the Wi-LE payload codec, the 802.11 frame codec, the crypto
// primitives, and the discrete-event simulator core.
//
// These are not paper experiments; they document the cost of the
// building blocks so downstream users can budget for them (e.g. a
// gateway decoding thousands of Wi-LE beacons per second).
#include <benchmark/benchmark.h>

#include "crypto/aes_modes.hpp"
#include "crypto/pbkdf2.hpp"
#include "crypto/sha1.hpp"
#include "dot11/frame.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "wile/codec.hpp"

using namespace wile;

namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

void BM_WileEncode(benchmark::State& state) {
  core::Codec codec;
  core::Message msg;
  msg.device_id = 7;
  msg.data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    msg.sequence++;
    benchmark::DoNotOptimize(codec.encode(msg));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WileEncode)->Arg(16)->Arg(235)->Arg(1024);

void BM_WileDecode(benchmark::State& state) {
  core::Codec codec;
  core::Message msg;
  msg.device_id = 7;
  msg.data = random_bytes(static_cast<std::size_t>(state.range(0)), 2);
  const auto ies = codec.encode(msg);
  for (auto _ : state) {
    for (const auto& ie : ies) benchmark::DoNotOptimize(codec.decode(ie));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WileDecode)->Arg(16)->Arg(235)->Arg(1024);

void BM_WileEncodeEncrypted(benchmark::State& state) {
  core::Codec codec{Bytes(16, 0x42)};
  core::Message msg;
  msg.device_id = 7;
  msg.data = random_bytes(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    msg.sequence++;
    benchmark::DoNotOptimize(codec.encode(msg));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WileEncodeEncrypted)->Arg(16)->Arg(227);

void BM_BeaconAssembleParse(benchmark::State& state) {
  dot11::Beacon beacon;
  beacon.ies.add(dot11::make_ssid_ie(""));
  beacon.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  beacon.ies.add(dot11::make_ds_param_ie(6));
  const Bytes body = beacon.encode();
  const MacAddress mac = MacAddress::from_seed(1);
  for (auto _ : state) {
    const Bytes mpdu =
        dot11::build_mgmt_mpdu(dot11::MgmtSubtype::Beacon, MacAddress::broadcast(), mac,
                               mac, 1, body);
    benchmark::DoNotOptimize(dot11::parse_mpdu(mpdu));
  }
}
BENCHMARK(BM_BeaconAssembleParse);

void BM_Sha1(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AesCtr(benchmark::State& state) {
  crypto::Aes128 aes{Bytes(16, 0x11)};
  std::array<std::uint8_t, 12> nonce{};
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_ctr(aes, nonce, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(64)->Arg(1024);

void BM_Wpa2PskDerivation(benchmark::State& state) {
  // 4096 PBKDF2 iterations — the cost the ESP32 caches in NVS.
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::wpa2_psk("hotnets2019", "GoogleWifi"));
  }
}
BENCHMARK(BM_Wpa2PskDerivation)->Unit(benchmark::kMillisecond);

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler scheduler;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      scheduler.schedule_in(usec(i), [&fired] { ++fired; });
    }
    scheduler.run_until_idle();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerChurn);

}  // namespace

BENCHMARK_MAIN();
