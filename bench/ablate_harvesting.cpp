// Harvesting feasibility frontier: distance-from-AP vs. report rate.
//
// BEH and "Powering the Next Billion Devices with Wi-Fi" (PAPERS.md)
// power beacon-class senders from ambient RF; how often such a device
// can report is set by how much power its rectenna pulls out of the
// air, which falls off with the same log-distance path loss the data
// channel uses. This bench sweeps the sender's distance from a 30 dBm
// RF source and measures the achieved report rate of a
// harvesting-class sender (power::Harvester + the Sender's
// EnergyGovernor wake gate):
//
//   * close in, the capacitor refills faster than the duty cycle
//     spends it — every wake runs, rate == the configured period;
//   * further out the wake gate starts skipping cycles to let charge
//     build — the rate degrades smoothly, not by mid-cycle death;
//   * past the feasibility edge the harvest cannot even cover sleep
//     current + leakage, and the device lives only off its initial
//     stored charge — the BEH cliff.
//
// Every distance runs twice with the same seeds; the digests of the
// delivered/medium/energy counters must match (determinism oracle).
// The frontier must be monotone: report rate never increases with
// distance. Both checks gate the exit code and are recorded in
// BENCH_ablate_harvesting.json for tools/check_bench_schema.py.
//
// Usage: ablate_harvesting [--quick] [--out PATH]
//   --quick   600 simulated seconds per run (CI-sized); default 3600
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "power/harvester.hpp"
#include "wile/scenario.hpp"

using namespace wile;

namespace {

const Duration kPeriod = seconds(5);

/// Microwatt-budget injector platform: FRAM-class retention in deep
/// sleep, a small MCU, and the short bring-up of a TX-only radio path.
/// The ESP32 profile's 300 ms init at 40 mA would dwarf any realistic
/// harvest; this is the class of device BEH actually builds.
power::Esp32PowerProfile harvesting_class_profile() {
  power::Esp32PowerProfile p;
  p.deep_sleep = microamps(0.5);
  p.cpu_active = milliamps(8.0);
  p.radio_tx = milliamps(90.0);
  p.boot_from_deep_sleep = msec(3);
  p.wifi_inject_init = msec(5);
  p.shutdown_time = msec(1);
  return p;
}

struct RunResult {
  double distance_m = 0.0;
  double harvest_uw = 0.0;
  std::uint64_t cycles_run = 0;
  std::uint64_t cycles_skipped = 0;
  std::uint64_t brown_outs = 0;
  std::uint64_t cycles_resumed = 0;
  std::uint64_t messages = 0;
  double reports_per_hour = 0.0;
  std::uint64_t digest = 0;
};

/// FNV-1a over the counters that must be seed-determined.
struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

RunResult run_once(double distance_m, int sim_seconds) {
  const phy::Channel channel{phy::ChannelConfig{}};
  const Watts harvest =
      power::rf_harvest_power(channel, /*source_tx_dbm=*/30.0, distance_m,
                              /*efficiency=*/0.3);

  core::HarvestingConfig harvesting;
  harvesting.harvester.capacitance_f = 1e-3;  // 1 mF: ~5.4 mJ at 3.3 V
  harvesting.harvester.initial_charge_fraction = 0.25;
  harvesting.harvester.harvest_power = harvest;
  harvesting.harvester.leakage = microwatts(0.1);
  harvesting.wake_margin = 1.1;
  harvesting.resume_margin = 1.5;

  auto scenario = sim::ScenarioBuilder{}
                      .devices(1)
                      .duty_cycle(kPeriod)
                      .wake_jitter(Duration{0})
                      .stagger_starts(false)
                      .harvesting(harvesting)
                      .configure_sender([](core::SenderConfig& cfg, int) {
                        cfg.power = harvesting_class_profile();
                      })
                      .place_gateway([](int) { return sim::Position{2, 0}; })
                      .payload([] { return Bytes(16, 0x42); }())
                      .build();

  scenario->run_until(TimePoint{seconds(sim_seconds)});
  scenario->stop_all();
  scenario->run_for(seconds(1));

  const core::Sender& dev = *scenario->devices().front();
  RunResult r;
  r.distance_m = distance_m;
  r.harvest_uw = in_microwatts(harvest);
  r.cycles_run = dev.cycles_run();
  r.cycles_skipped = dev.cycles_skipped_energy();
  r.brown_outs = dev.brown_outs();
  r.cycles_resumed = dev.cycles_resumed();
  r.messages = scenario->messages();
  r.reports_per_hour =
      3600.0 * static_cast<double>(r.messages) / static_cast<double>(sim_seconds);

  Digest d;
  d.add(r.cycles_run);
  d.add(r.cycles_skipped);
  d.add(r.brown_outs);
  d.add(r.cycles_resumed);
  d.add(r.messages);
  d.add(dev.beacons_sent());
  d.add(scenario->medium().stats().transmissions);
  d.add(scenario->medium().stats().deliveries);
  d.add(scenario->scheduler().events_run());
  r.digest = d.h;
  return r;
}

void write_json(const std::vector<RunResult>& rows, int sim_seconds, bool quick,
                bool monotone, bool deterministic, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror("ablate_harvesting: fopen");
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"ablate_harvesting\",\n  \"quick\": %s,\n"
               "  \"sim_seconds\": %d,\n  \"period_seconds\": %lld,\n"
               "  \"source_tx_dbm\": 30.0,\n  \"rectenna_efficiency\": 0.3,\n"
               "  \"runs\": [\n",
               quick ? "true" : "false", sim_seconds,
               static_cast<long long>(kPeriod.count() / 1'000'000));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::fprintf(f,
                 "    {\"distance_m\": %.2f, \"harvest_uw\": %.3f,\n"
                 "     \"cycles_run\": %llu, \"cycles_skipped\": %llu,\n"
                 "     \"brown_outs\": %llu, \"cycles_resumed\": %llu,\n"
                 "     \"messages\": %llu, \"reports_per_hour\": %.1f,\n"
                 "     \"digest\": \"%016llx\"}%s\n",
                 r.distance_m, r.harvest_uw,
                 static_cast<unsigned long long>(r.cycles_run),
                 static_cast<unsigned long long>(r.cycles_skipped),
                 static_cast<unsigned long long>(r.brown_outs),
                 static_cast<unsigned long long>(r.cycles_resumed),
                 static_cast<unsigned long long>(r.messages), r.reports_per_hour,
                 static_cast<unsigned long long>(r.digest),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"monotone_frontier\": %s,\n  \"determinism_ok\": %s\n}\n",
               monotone ? "true" : "false", deterministic ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_ablate_harvesting.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  const int sim_seconds = quick ? 600 : 3600;
  const double distances[] = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0};

  std::printf("=== harvesting feasibility frontier (distance vs report rate) ===\n");
  std::printf("    30 dBm source, eta=0.3 rectenna, 1 mF cap, %llds period, %ds sim%s\n\n",
              static_cast<long long>(kPeriod.count() / 1'000'000), sim_seconds,
              quick ? " [quick]" : "");
  std::printf("  %-6s | %-11s | %-7s | %-8s | %-7s | %-8s | %-9s\n", "dist", "harvest",
              "cycles", "skipped", "brnouts", "messages", "rep/hour");
  std::printf("  -------+-------------+---------+----------+---------+----------+----------\n");

  std::vector<RunResult> rows;
  bool deterministic = true;
  for (const double d : distances) {
    RunResult r = run_once(d, sim_seconds);
    const RunResult replay = run_once(d, sim_seconds);
    if (replay.digest != r.digest) deterministic = false;
    rows.push_back(r);
    std::printf("  %4.1fm | %8.3f uW | %7llu | %8llu | %7llu | %8llu | %8.1f\n", d,
                r.harvest_uw, static_cast<unsigned long long>(r.cycles_run),
                static_cast<unsigned long long>(r.cycles_skipped),
                static_cast<unsigned long long>(r.brown_outs),
                static_cast<unsigned long long>(r.messages), r.reports_per_hour);
  }

  // The frontier: moving away from the source never raises the rate.
  bool monotone = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].reports_per_hour > rows[i - 1].reports_per_hour) monotone = false;
  }
  // And it must actually be a frontier, not a flat line: the nearest
  // point must beat the farthest.
  const bool degrades = rows.front().reports_per_hour > rows.back().reports_per_hour;

  write_json(rows, sim_seconds, quick, monotone && degrades, deterministic, out_path);
  std::printf("\nwrote %s\n", out_path.c_str());
  std::printf("  frontier %s, determinism %s\n",
              monotone && degrades ? "OK" : "MISMATCH", deterministic ? "OK" : "BROKEN");
  return (monotone && degrades && deterministic) ? 0 : 1;
}
