// Fault-recovery ablation — robustness beyond the paper's clean-channel
// assumptions.
//
// The full bridge chain (Wi-LE sensor -> gateway monitor -> WPA2 uplink
// -> AP -> server) runs for 180 s while faults hit it mid-run: the AP
// crashes for 30 s and a duty-cycled jammer occupies the channel. We
// sweep the jammer's duty cycle (the fault intensity) and report the
// end-to-end delivery rate plus how long the self-healing gateway takes
// to re-associate once the AP returns. The recovery machinery under
// test: beacon-loss detection, capped-backoff re-association, and the
// forward retry budget (src/wile/gateway.cpp, src/sta/station.cpp).
#include <cstdio>
#include <optional>

#include "ap/access_point.hpp"
#include "sim/fault.hpp"
#include "wile/gateway.hpp"
#include "wile/sender.hpp"

using namespace wile;

namespace {

constexpr int kDurationS = 180;
constexpr int kOutageStartS = 60;
constexpr int kOutageEndS = 90;

struct RunResult {
  std::uint64_t sensor_cycles = 0;
  std::uint64_t server_datagrams = 0;
  core::GatewayStats gw{};
  sim::FaultStats faults{};
  std::optional<double> recovery_latency_s;  // uplink back after the outage
  bool uplink_ready_at_end = false;
};

RunResult run(double jammer_duty, bool ap_outage, bool sensor_csma) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{1}};

  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, medium, {0, 0}, ap_cfg, Rng{10}};
  RunResult result;
  ap.set_uplink_handler(
      [&](const MacAddress&, const net::Ipv4Header&, const net::UdpDatagram&) {
        ++result.server_datagrams;
      });
  ap.start();

  core::GatewayConfig gw_cfg;
  gw_cfg.station.mac = MacAddress::from_seed(0x6A7E);
  core::Gateway gateway{scheduler, medium, {3, 0}, gw_cfg, Rng{20}};
  gateway.start({});

  core::SenderConfig sensor_cfg;
  sensor_cfg.device_id = 0x501;
  sensor_cfg.period = seconds(2);
  // Real sleep clocks jitter; without this the 2 s period phase-locks to
  // the jammer's 10 ms burst grid and every in-window cycle sees the
  // same (all-or-nothing) fate.
  sensor_cfg.wake_jitter = msec(50);
  sensor_cfg.use_csma = sensor_csma;
  core::Sender sensor{scheduler, medium, {5, 0}, sensor_cfg, Rng{30}};
  scheduler.schedule_at(TimePoint{seconds(10)}, [&] {
    sensor.start_duty_cycle([] { return Bytes{'o', 'k'}; });
  });

  sim::FaultInjector fi{scheduler, medium, Rng{7}};
  if (ap_outage) {
    fi.window(TimePoint{seconds(kOutageStartS)}, seconds(kOutageEndS - kOutageStartS),
              [&] { ap.stop(); }, [&] { ap.start(); });
  }
  if (jammer_duty > 0.0) {
    sim::JammerConfig jam;
    jam.position = {4, 1};
    jam.duty_cycle = jammer_duty;
    fi.jammer(TimePoint{seconds(40)}, seconds(80), jam);
  }

  // Recovery probe: 100 ms resolution from the moment the AP returns.
  for (int i = 0; i < (kDurationS - kOutageEndS) * 10; ++i) {
    const TimePoint at{seconds(kOutageEndS) + msec(100 * i)};
    scheduler.schedule_at(at, [&, at] {
      if (!result.recovery_latency_s && gateway.uplink_ready()) {
        result.recovery_latency_s = to_seconds(at - TimePoint{seconds(kOutageEndS)});
      }
    });
  }

  scheduler.run_until(TimePoint{seconds(kDurationS)});
  sensor.stop_duty_cycle();

  result.sensor_cycles = sensor.cycles_run();
  result.gw = gateway.stats();
  result.faults = fi.stats();
  result.uplink_ready_at_end = gateway.uplink_ready();
  return result;
}

}  // namespace

int main() {
  std::printf("=== fault recovery: delivery rate vs fault intensity ===\n");
  std::printf("(%d s run, Wi-LE sensor at 0.5 Hz; AP down %d-%d s; jammer on 40-120 s "
              "with the duty cycle swept; gateway self-heals via beacon-loss detection "
              "+ capped-backoff re-association + forward retries)\n\n",
              kDurationS, kOutageStartS, kOutageEndS);
  std::printf("  %-18s | %-14s | %-14s | %-10s | %-8s | %-7s | %-7s | %-7s\n",
              "fault intensity", "rate (CSMA)", "rate (raw)", "recovery", "reassoc",
              "retries", "dropped", "uplink");
  std::printf("  -------------------+----------------+----------------+------------+----"
              "------+---------+---------+--------\n");

  bool ok = true;
  struct Arm {
    const char* label;
    double duty;
    bool outage;
  };
  const Arm arms[] = {
      {"none (baseline)", 0.00, false},
      {"outage only", 0.00, true},
      {"outage + 10% jam", 0.10, true},
      {"outage + 25% jam", 0.25, true},
      {"outage + 50% jam", 0.50, true},
      {"outage + 80% jam", 0.80, true},
  };
  std::optional<double> raw_at_none;
  std::optional<double> raw_at_max;
  for (const Arm& arm : arms) {
    const RunResult r = run(arm.duty, arm.outage, /*sensor_csma=*/true);
    const RunResult raw = run(arm.duty, arm.outage, /*sensor_csma=*/false);
    const auto rate_of = [](const RunResult& x) {
      return x.sensor_cycles > 0 ? 100.0 * static_cast<double>(x.gw.forwarded) /
                                       static_cast<double>(x.sensor_cycles)
                                 : 0.0;
    };
    const double rate = rate_of(r);
    const double raw_rate = rate_of(raw);
    if (arm.duty == 0.0 && arm.outage) raw_at_none = raw_rate;
    if (arm.duty >= 0.79) raw_at_max = raw_rate;
    char recovery[24];
    if (arm.outage && r.recovery_latency_s) {
      std::snprintf(recovery, sizeof(recovery), "%8.1f s", *r.recovery_latency_s);
    } else {
      std::snprintf(recovery, sizeof(recovery), "%10s", arm.outage ? "never" : "n/a");
    }
    const std::uint64_t dropped = r.gw.dropped_queue_full + r.gw.dropped_retry_budget;
    std::printf("  %-18s | %4llu/%-3llu %4.0f%% | %4llu/%-3llu %4.0f%% | %s | %8llu | "
                "%7llu | %7llu | %s\n",
                arm.label, static_cast<unsigned long long>(r.gw.forwarded),
                static_cast<unsigned long long>(r.sensor_cycles), rate,
                static_cast<unsigned long long>(raw.gw.forwarded),
                static_cast<unsigned long long>(raw.sensor_cycles), raw_rate, recovery,
                static_cast<unsigned long long>(r.gw.reassociations),
                static_cast<unsigned long long>(r.gw.retries),
                static_cast<unsigned long long>(dropped),
                r.uplink_ready_at_end ? "up" : "DOWN");

    // Shape checks: the clean run delivers nearly everything; every
    // faulted run must end healed (uplink up, >=1 re-association, prompt
    // recovery) and still deliver the majority of readings.
    if (!arm.outage && rate < 95.0) ok = false;
    if (arm.outage) {
      if (!r.uplink_ready_at_end || r.gw.reassociations < 1) ok = false;
      if (!r.recovery_latency_s || *r.recovery_latency_s > 20.0) ok = false;
      if (rate < 50.0) ok = false;
    }
  }
  // The intensity axis must bite somewhere: a carrier-blind sensor loses
  // measurably more under the heaviest jam than with no jammer at all.
  if (raw_at_none && raw_at_max && *raw_at_max > *raw_at_none - 10.0) ok = false;

  std::printf("\n  measured: a 30 s AP outage costs at most the readings buffered past "
              "the queue cap plus the retry budget, not the link — the gateway "
              "re-associates within seconds of the AP's return (capped 8 s backoff + "
              "WPA2 connect). A CSMA-polite sensor rides the jammer's idle gaps, so "
              "its delivery stays flat with intensity; a carrier-blind injector "
              "degrades with duty cycle — the recovery machinery keeps the uplink "
              "alive either way.\n");
  std::printf("\n  shape %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
