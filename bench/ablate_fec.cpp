// Erasure coding vs blind repetition on the ack-less uplink.
//
// Wi-LE's broadcast beacons have no retransmission path, so reliability
// is open-loop redundancy — and the question is what *shape* of
// redundancy buys the most delivery per joule. This bench sweeps an
// SNR-independent injected loss floor (5/10/20/30 %) across:
//   * blind repetition: every beacon sent 1/2/3 times;
//   * cross-cycle XOR recovery beacons: one parity-of-the-last-K beacon
//     every K/2 messages (overlapping groups), K = 2/4/8.
// A recovery beacon costs ~1/stride extra beacons per message but can
// reconstruct any single loss per covered group, so at moderate loss it
// recovers most gaps for a fraction of repetition's energy. At very high
// loss the XOR groups saturate (two losses per group are unrecoverable)
// and brute-force repetition wins — the crossover this table shows.
//
// Deterministic for the pinned seeds; the shape check at the bottom pins
// the acceptance bar: at 20 % loss, K=4 recovers at least half of the
// otherwise-lost messages while spending less extra energy per delivered
// message than a second blind copy.
#include <cstdio>
#include <vector>

#include "wile/scenario.hpp"

using namespace wile;

namespace {

constexpr int kRounds = 400;
const Duration kPeriod = msec(200);

struct Arm {
  const char* name;
  int repeats = 1;
  int recovery_k = 0;  // 0 = no recovery beacons; stride defaults to K/2
};

struct Result {
  const char* name;
  double delivery_pct = 0.0;
  double uj_per_delivered = 0.0;
  std::uint64_t recovered = 0;
};

Result run_arm(const Arm& arm, double loss_floor) {
  Joules tx_energy{};
  std::uint64_t cycles = 0;

  // One sender, one monitor 2 m away (the SNR-driven PER is ~0 there, so
  // the injected loss floor is the whole story). The legacy per-node
  // seeds (medium 61, device 62) and the zeroed fleet defaults keep this
  // arm bit-identical to the pre-ScenarioBuilder hand wiring.
  auto scenario =
      sim::ScenarioBuilder{}
          .devices(1)
          .medium_seed(61)
          .loss_floor(loss_floor)
          .duty_cycle(kPeriod)
          .wake_jitter(Duration{0})
          .timeline_max_segments(0)  // legacy: unbounded retention
          .stagger_starts(false)
          .device_rng([](int) { return Rng{62}; })
          .configure_sender([&arm](core::SenderConfig& cfg, int) {
            cfg.repeats = arm.repeats;
            cfg.recovery_k = arm.recovery_k;
          })
          .place_gateway([](int) { return sim::Position{2, 0}; })
          .payload_provider([&cycles](int) -> core::Sender::PayloadProvider {
            return [&cycles] {
              ++cycles;
              return Bytes(16, 0x42);
            };
          })
          .on_send_report(
              [&tx_energy](int, const core::SendReport& r) {
                tx_energy += r.tx_only_energy;
              })
          .build();

  scenario->run_until(TimePoint{kPeriod * (kRounds + 1)});
  scenario->stop_all();
  scenario->run_for(seconds(1));

  const core::ReceiverStats& monitor = scenario->gateways().front()->stats();
  Result out;
  out.name = arm.name;
  const double delivered = static_cast<double>(monitor.messages);
  out.delivery_pct = 100.0 * delivered / static_cast<double>(cycles);
  out.uj_per_delivered = delivered > 0 ? in_microjoules(tx_energy) / delivered : 0.0;
  out.recovered = monitor.recovered;
  return out;
}

}  // namespace

int main() {
  const Arm arms[] = {
      {"1 copy (base)", 1, 0}, {"2 copies", 2, 0},        {"3 copies", 3, 0},
      {"XOR K=2", 1, 2},       {"XOR K=4", 1, 4},         {"XOR K=8", 1, 8},
  };
  const double floors[] = {0.05, 0.10, 0.20, 0.30};

  std::printf("=== erasure-coded recovery beacons vs blind repetition ===\n");
  std::printf("    (%d rounds per arm; injected SNR-independent loss floor)\n\n", kRounds);

  // The 20 % column drives the shape check below.
  Result base20{}, rep2_20{}, k4_20{};

  for (const double floor : floors) {
    std::printf("-- injected loss %.0f%% --\n", 100.0 * floor);
    std::printf("  %-14s | %-9s | %-9s | %-18s\n", "arm", "delivery", "recovered",
                "TX uJ/delivered");
    std::printf("  ---------------+-----------+-----------+-------------------\n");
    std::vector<Result> results;
    for (const Arm& arm : arms) results.push_back(run_arm(arm, floor));
    for (const Result& r : results) {
      std::printf("  %-14s | %8.1f%% | %9llu | %15.0f\n", r.name, r.delivery_pct,
                  static_cast<unsigned long long>(r.recovered), r.uj_per_delivered);
    }
    std::printf("\n");
    if (floor == 0.20) {
      base20 = results[0];
      rep2_20 = results[1];
      k4_20 = results[4];
    }
  }

  // Shape check at the 20 % operating point.
  const double lost_base = 100.0 - base20.delivery_pct;
  const double recovered_frac =
      lost_base > 0 ? (k4_20.delivery_pct - base20.delivery_pct) / lost_base : 0.0;
  const double k4_extra_uj = k4_20.uj_per_delivered - base20.uj_per_delivered;
  const double rep2_extra_uj = rep2_20.uj_per_delivered - base20.uj_per_delivered;

  std::printf("at 20%% loss: XOR K=4 recovers %.0f%% of otherwise-lost messages for "
              "+%.0f uJ per delivered message; a second blind copy costs +%.0f uJ for "
              "the same job.\n",
              100.0 * recovered_frac, k4_extra_uj, rep2_extra_uj);

  const bool ok = recovered_frac >= 0.5 && k4_extra_uj < rep2_extra_uj &&
                  k4_20.recovered > 0;
  std::printf("\n  shape %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
