// Experiment E7 — §6 "Network of IoT devices":
//   "The possibility of concurrent transmissions from multiple devices
//    and the mitigation mechanism need to be studied. We believe that if
//    two devices happen to transmit at the same time and they have the
//    same transmission period, their transmissions will automatically
//    differ away from each other due to the jitter of their clocks."
//
// Sweeps the device count and measures delivery ratio at a monitor for
// three designs: raw injection with perfectly synchronised clocks (worst
// case), raw injection with realistic clock jitter (the paper's
// hypothesis), and CSMA-deferred injection (what real chipsets do).
#include <cstdio>
#include <memory>
#include <vector>

#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "wile/receiver.hpp"
#include "wile/sender.hpp"

using namespace wile;

namespace {

struct Result {
  std::uint64_t delivered = 0;
  std::uint64_t expected = 0;
  std::uint64_t collisions = 0;
};

Result run(int n_devices, bool jitter, bool csma, std::uint64_t seed) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{seed}};
  core::Receiver monitor{scheduler, medium, {0, 3}};

  Rng seeder{seed + 1};
  std::vector<std::unique_ptr<core::Sender>> senders;
  std::uint64_t cycles = 0;
  constexpr int kRounds = 60;
  const Duration period = seconds(2);

  for (int i = 0; i < n_devices; ++i) {
    core::SenderConfig cfg;
    cfg.device_id = 1 + i;
    cfg.period = period;
    cfg.use_csma = csma;
    if (jitter) {
      cfg.clock_ppm_error = static_cast<double>(seeder.range(-40, 40));  // real XTALs
      cfg.wake_jitter = msec(3);
    }
    senders.push_back(std::make_unique<core::Sender>(
        scheduler, medium,
        sim::Position{static_cast<double>(i % 4), static_cast<double>(i / 4)}, cfg,
        seeder.fork()));
    senders.back()->start_duty_cycle([&cycles] {
      ++cycles;
      return Bytes{0x17};
    });
  }
  scheduler.run_until(TimePoint{period * (kRounds + 1) - msec(500)});
  for (auto& s : senders) s->stop_duty_cycle();
  scheduler.run_until(scheduler.now() + seconds(2));

  Result r;
  r.delivered = monitor.stats().messages;
  r.expected = cycles;
  r.collisions = monitor.stats().collisions_observed;
  return r;
}

}  // namespace

int main() {
  std::printf("=== E7: multi-device collisions — jitter and carrier sense ===\n");
  std::printf("(delivery ratio at a monitor; %s)\n\n",
              "period 2 s, 60 rounds, devices within carrier-sense range");
  std::printf("  %-8s | %-22s | %-22s | %-22s\n", "devices", "synced, raw inject",
              "jittered, raw inject", "CSMA inject");
  std::printf("  ---------+------------------------+------------------------+--------------"
              "----------\n");

  bool hypothesis_holds = true;
  for (int n : {1, 2, 3, 5, 8, 12}) {
    const Result synced = run(n, /*jitter=*/false, /*csma=*/false, 100 + n);
    const Result jittered = run(n, /*jitter=*/true, /*csma=*/false, 200 + n);
    const Result csma = run(n, /*jitter=*/false, /*csma=*/true, 300 + n);
    auto ratio = [](const Result& r) {
      return r.expected > 0
                 ? 100.0 * static_cast<double>(r.delivered) / static_cast<double>(r.expected)
                 : 0.0;
    };
    std::printf("  %-8d | %6.1f%% (%4llu coll.)  | %6.1f%% (%4llu coll.)  | %6.1f%% (%4llu "
                "coll.)\n",
                n, ratio(synced), static_cast<unsigned long long>(synced.collisions),
                ratio(jittered), static_cast<unsigned long long>(jittered.collisions),
                ratio(csma), static_cast<unsigned long long>(csma.collisions));
    if (n > 1) {
      // The paper's hypothesis: jitter rescues co-periodic devices.
      if (ratio(jittered) < ratio(synced) + 30.0) hypothesis_holds = false;
    }
  }

  std::printf("\n  paper's hypothesis (clock jitter de-synchronises co-periodic devices): "
              "%s\n",
              hypothesis_holds ? "SUPPORTED" : "NOT SUPPORTED");
  std::printf("  note: CSMA injection resolves contention at slightly higher firmware "
              "complexity — the trade §6 leaves open.\n");
  return hypothesis_holds ? 0 : 1;
}
