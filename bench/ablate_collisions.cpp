// Experiment E7 — §6 "Network of IoT devices":
//   "The possibility of concurrent transmissions from multiple devices
//    and the mitigation mechanism need to be studied. We believe that if
//    two devices happen to transmit at the same time and they have the
//    same transmission period, their transmissions will automatically
//    differ away from each other due to the jitter of their clocks."
//
// Sweeps the device count and measures delivery ratio at a monitor for
// three designs: raw injection with perfectly synchronised clocks (worst
// case), raw injection with realistic clock jitter (the paper's
// hypothesis), and CSMA-deferred injection (what real chipsets do).
// Ported onto the ScenarioBuilder mode-preset API (TxMode::WiLeBeacon is
// the default preset): the builder replays the historical hand wiring —
// same medium seed, same seeder draw order (ppm range draw then fork,
// per device), same start order — so every row below is output-identical
// to the pre-port bench.
#include <cstdio>
#include <memory>
#include <vector>

#include "wile/scenario.hpp"

using namespace wile;

namespace {

struct Result {
  std::uint64_t delivered = 0;
  std::uint64_t expected = 0;
  std::uint64_t collisions = 0;
};

Result run(int n_devices, bool jitter, bool csma, std::uint64_t seed) {
  constexpr int kRounds = 60;
  const Duration period = seconds(2);

  // Shared across the builder's per-device hooks; the hook call order
  // (configure_sender's ppm draw, then device_rng's fork, per device in
  // index order) reproduces the legacy seeder sequence exactly.
  auto seeder = std::make_shared<Rng>(seed + 1);
  auto cycles = std::make_shared<std::uint64_t>(0);

  auto scenario =
      sim::ScenarioBuilder{}
          .mode(TxMode::WiLeBeacon)
          .devices(n_devices)
          .duty_cycle(period)
          .wake_jitter(jitter ? msec(3) : Duration{0})
          .timeline_max_segments(0)
          .stagger_starts(false)
          .telemetry(false)
          .medium_seed(seed)
          .gateways(1)
          .place_gateway([](int) { return sim::Position{0, 3}; })
          .place_device([](int i) {
            return sim::Position{static_cast<double>(i % 4),
                                 static_cast<double>(i / 4)};
          })
          .configure_sender([seeder, jitter, csma](core::SenderConfig& cfg, int) {
            cfg.use_csma = csma;
            if (jitter) {
              cfg.clock_ppm_error =
                  static_cast<double>(seeder->range(-40, 40));  // real XTALs
            }
          })
          .device_rng([seeder](int) { return seeder->fork(); })
          .payload_provider([cycles](int) -> core::Sender::PayloadProvider {
            return [cycles] {
              ++*cycles;
              return Bytes{0x17};
            };
          })
          .build();

  scenario->run_until(TimePoint{period * (kRounds + 1) - msec(500)});
  scenario->stop_all();
  scenario->run_for(seconds(2));

  const core::Receiver& monitor = *scenario->gateways().front();
  Result r;
  r.delivered = monitor.stats().messages;
  r.expected = *cycles;
  r.collisions = monitor.stats().collisions_observed;
  return r;
}

}  // namespace

int main() {
  std::printf("=== E7: multi-device collisions — jitter and carrier sense ===\n");
  std::printf("(delivery ratio at a monitor; %s)\n\n",
              "period 2 s, 60 rounds, devices within carrier-sense range");
  std::printf("  %-8s | %-22s | %-22s | %-22s\n", "devices", "synced, raw inject",
              "jittered, raw inject", "CSMA inject");
  std::printf("  ---------+------------------------+------------------------+--------------"
              "----------\n");

  bool hypothesis_holds = true;
  for (int n : {1, 2, 3, 5, 8, 12}) {
    const Result synced = run(n, /*jitter=*/false, /*csma=*/false, 100 + n);
    const Result jittered = run(n, /*jitter=*/true, /*csma=*/false, 200 + n);
    const Result csma = run(n, /*jitter=*/false, /*csma=*/true, 300 + n);
    auto ratio = [](const Result& r) {
      return r.expected > 0
                 ? 100.0 * static_cast<double>(r.delivered) / static_cast<double>(r.expected)
                 : 0.0;
    };
    std::printf("  %-8d | %6.1f%% (%4llu coll.)  | %6.1f%% (%4llu coll.)  | %6.1f%% (%4llu "
                "coll.)\n",
                n, ratio(synced), static_cast<unsigned long long>(synced.collisions),
                ratio(jittered), static_cast<unsigned long long>(jittered.collisions),
                ratio(csma), static_cast<unsigned long long>(csma.collisions));
    if (n > 1) {
      // The paper's hypothesis: jitter rescues co-periodic devices.
      if (ratio(jittered) < ratio(synced) + 30.0) hypothesis_holds = false;
    }
  }

  std::printf("\n  paper's hypothesis (clock jitter de-synchronises co-periodic devices): "
              "%s\n",
              hypothesis_holds ? "SUPPORTED" : "NOT SUPPORTED");
  std::printf("  note: CSMA injection resolves contention at slightly higher firmware "
              "complexity — the trade §6 leaves open.\n");
  return hypothesis_holds ? 0 : 1;
}
