// Chaos soak: N seeded fault campaigns against Wi-LE fleets, with the
// full invariant catalog armed and minimal-repro shrinking on failure.
//
// Each campaign is drawn from a single seed over the whole fault
// vocabulary (AP outages, jammers, loss floors, per-device floors,
// clock-drift steps, brown-outs, harvest fades, RF droughts) and thrown
// at a harvesting FEC fleet while the InvariantMonitor sweeps the
// oracles: scheduler monotonicity, frame-buffer leak accounting,
// per-gateway sequence uniqueness and reassembler bounds, per-device
// sequence monotonicity and energy conservation. A violation triggers
// ddmin shrinking (fresh scenario per probe) and a replayable
// chaos_repro_<seed>.json; the soak's exit code and the
// zero-violations flag in BENCH_chaos_soak.json gate CI
// (tools/check_bench_schema.py).
//
// Campaign 0 additionally runs twice with identical seeds; digest
// mismatch fails the determinism oracle the same way a violation does.
//
// Usage: chaos_soak [--quick] [--campaigns N] [--seed-base N]
//                   [--shrink-budget N] [--out PATH]
//   --quick   32 campaigns, 30 s horizon, small fleets only (CI-sized);
//             default 200 campaigns, 120 s horizon, alternating
//             small/medium fleets
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "power/harvester.hpp"
#include "sim/chaos.hpp"
#include "sim/invariants.hpp"
#include "wile/scenario.hpp"

using namespace wile;

namespace {

struct SoakOptions {
  bool quick = false;
  int campaigns = 200;
  std::uint64_t seed_base = 0xC7A05;
  std::size_t shrink_budget = 64;
  std::string out_path = "BENCH_chaos_soak.json";
};

/// Microwatt-budget injector platform (same class bench/ablate_harvesting
/// measures): the fleet actually browns out under droughts instead of
/// coasting on an ESP32-sized battery.
power::Esp32PowerProfile harvesting_class_profile() {
  power::Esp32PowerProfile p;
  p.deep_sleep = microamps(0.5);
  p.cpu_active = milliamps(8.0);
  p.radio_tx = milliamps(90.0);
  p.boot_from_deep_sleep = msec(3);
  p.wifi_inject_init = msec(5);
  p.shutdown_time = msec(1);
  return p;
}

struct FleetSpec {
  const char* label;
  int devices;
  Duration horizon;
};

/// Even seeds soak a small fleet, odd seeds a medium one; --quick keeps
/// everything small and short.
FleetSpec fleet_for(std::uint64_t seed, bool quick) {
  if (quick) return {"small-fleet", 6, seconds(30)};
  if (seed % 2 == 0) return {"small-fleet", 6, seconds(120)};
  return {"medium-fleet", 40, seconds(120)};
}

std::unique_ptr<sim::Scenario> build_fleet(const FleetSpec& spec,
                                           std::uint64_t seed) {
  core::HarvestingConfig harvesting;
  harvesting.harvester.capacitance_f = 1e-3;  // 1 mF: ~5.4 mJ at 3.3 V
  harvesting.harvester.initial_charge_fraction = 0.5;
  harvesting.harvester.harvest_power = microwatts(250);
  harvesting.harvester.leakage = microwatts(0.1);
  harvesting.wake_margin = 1.1;
  harvesting.resume_margin = 1.5;

  return sim::ScenarioBuilder{}
      .devices(spec.devices)
      .gateways(1)
      .grid_spacing_m(4.0)
      .duty_cycle(seconds(5))
      .seed(seed)
      .harvesting(harvesting)
      .configure_sender([](core::SenderConfig& cfg, int) {
        cfg.power = harvesting_class_profile();
        // Cross-cycle FEC: recovery beacons are exactly the machinery a
        // brown-out resume can race, which is what we're hunting.
        cfg.recovery_k = 4;
        cfg.recovery_stride = 2;
      })
      .payload(Bytes(16, 0x42))
      .build();
}

struct CampaignResult {
  std::uint64_t seed = 0;
  const char* fleet = "";
  std::size_t generated = 0;
  std::size_t armed = 0;
  std::uint64_t violations = 0;
  sim::Violation first;  // valid when violations > 0
  std::uint64_t messages = 0;
  std::uint64_t digest = 0;
};

/// FNV-1a over the counters that must be seed-determined.
struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

/// Run one campaign against a fresh fleet; `only` replaces the
/// generated campaign when non-null (shrink probes).
CampaignResult run_campaign(std::uint64_t seed, const SoakOptions& opt,
                            const sim::Campaign* only = nullptr) {
  const FleetSpec spec = fleet_for(seed, opt.quick);
  auto scenario = build_fleet(spec, seed);
  sim::InvariantMonitor monitor;
  scenario->attach_invariants(monitor);
  monitor.start(scenario->scheduler(), msec(250));

  sim::ChaosConfig config;
  config.horizon = spec.horizon;
  config.n_devices = spec.devices;
  const sim::Campaign campaign =
      only != nullptr ? *only : sim::generate_campaign(seed, config);

  CampaignResult result;
  result.seed = seed;
  result.fleet = spec.label;
  result.generated = campaign.actions.size();
  result.armed = sim::schedule_campaign(campaign, scenario->chaos_targets());

  scenario->run_until(TimePoint{spec.horizon});
  scenario->stop_all();
  scenario->run_for(seconds(2));  // drain in-flight cycles and unwinds
  monitor.run_checks(scenario->scheduler().now());
  monitor.stop();

  result.violations = monitor.stats().violations;
  if (!monitor.violations().empty()) result.first = monitor.violations().front();
  result.messages = scenario->messages();

  Digest d;
  d.add(result.messages);
  d.add(scenario->medium().stats().transmissions);
  d.add(scenario->medium().stats().deliveries);
  d.add(scenario->medium().stats().collision_losses);
  d.add(scenario->medium().stats().channel_losses);
  d.add(scenario->scheduler().events_run());
  d.add(monitor.stats().checks_run);
  d.add(monitor.stats().violations);
  result.digest = d.h;
  return result;
}

struct ShrinkRecord {
  std::uint64_t seed = 0;
  std::string invariant;
  std::size_t original_actions = 0;
  std::size_t minimal_actions = 0;
  std::size_t runs = 0;
  std::string repro_path;
};

/// Shrink a failing campaign to a minimal repro and write the repro
/// file. The predicate demands the *same invariant* re-fires, so the
/// minimal script reproduces the original failure, not just any noise.
ShrinkRecord shrink_and_write(std::uint64_t seed, const CampaignResult& failed,
                              const SoakOptions& opt) {
  const FleetSpec spec = fleet_for(seed, opt.quick);
  sim::ChaosConfig config;
  config.horizon = spec.horizon;
  config.n_devices = spec.devices;
  const sim::Campaign original = sim::generate_campaign(seed, config);

  const std::string invariant = failed.first.invariant;
  const sim::ShrinkResult shrunk = sim::shrink_campaign(
      original,
      [&](const sim::Campaign& candidate) {
        const CampaignResult probe = run_campaign(seed, opt, &candidate);
        return probe.violations > 0 && probe.first.invariant == invariant;
      },
      opt.shrink_budget);

  sim::ReproFile repro;
  repro.campaign = shrunk.minimal;
  repro.scenario = spec.label;
  repro.scenario_seed = seed;
  repro.invariant = failed.first.invariant;
  repro.detail = failed.first.detail;
  repro.violation_at_us = failed.first.at.us();
  repro.node = failed.first.node;

  ShrinkRecord record;
  record.seed = seed;
  record.invariant = failed.first.invariant;
  record.original_actions = shrunk.original_actions;
  record.minimal_actions = shrunk.minimal.actions.size();
  record.runs = shrunk.runs;
  record.repro_path = "chaos_repro_" + std::to_string(seed) + ".json";
  if (!sim::write_repro_file(record.repro_path, repro)) {
    std::fprintf(stderr, "chaos_soak: failed to write %s\n",
                 record.repro_path.c_str());
  }
  return record;
}

void write_json(const SoakOptions& opt, std::uint64_t faults_generated,
                std::uint64_t faults_armed, std::uint64_t violations,
                int campaigns_with_violations, bool determinism_ok,
                const std::vector<ShrinkRecord>& shrinks) {
  std::FILE* f = std::fopen(opt.out_path.c_str(), "w");
  if (f == nullptr) {
    std::perror("chaos_soak: fopen");
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"chaos_soak\",\n  \"quick\": %s,\n"
               "  \"campaigns\": %d,\n  \"seed_base\": %" PRIu64 ",\n"
               "  \"faults_generated\": %" PRIu64 ",\n"
               "  \"faults_armed\": %" PRIu64 ",\n"
               "  \"violations\": %" PRIu64 ",\n"
               "  \"campaigns_with_violations\": %d,\n"
               "  \"determinism_ok\": %s,\n  \"shrinks\": [\n",
               opt.quick ? "true" : "false", opt.campaigns, opt.seed_base,
               faults_generated, faults_armed, violations,
               campaigns_with_violations, determinism_ok ? "true" : "false");
  for (std::size_t i = 0; i < shrinks.size(); ++i) {
    const ShrinkRecord& s = shrinks[i];
    std::fprintf(f,
                 "    {\"seed\": %" PRIu64 ", \"invariant\": \"%s\", "
                 "\"original_actions\": %zu, \"minimal_actions\": %zu, "
                 "\"runs\": %zu, \"repro\": \"%s\"}%s\n",
                 s.seed, s.invariant.c_str(), s.original_actions,
                 s.minimal_actions, s.runs, s.repro_path.c_str(),
                 i + 1 < shrinks.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  SoakOptions opt;
  bool campaigns_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--campaigns") == 0 && i + 1 < argc) {
      opt.campaigns = std::atoi(argv[++i]);
      campaigns_set = true;
    } else if (std::strcmp(argv[i], "--seed-base") == 0 && i + 1 < argc) {
      opt.seed_base = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--shrink-budget") == 0 && i + 1 < argc) {
      opt.shrink_budget = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--campaigns N] [--seed-base N] "
                   "[--shrink-budget N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (opt.quick && !campaigns_set) opt.campaigns = 32;

  std::printf("=== chaos soak: %d seeded campaigns (seed base 0x%" PRIx64 ")%s ===\n\n",
              opt.campaigns, opt.seed_base, opt.quick ? " [quick]" : "");

  std::uint64_t faults_generated = 0;
  std::uint64_t faults_armed = 0;
  std::uint64_t total_violations = 0;
  int campaigns_with_violations = 0;
  bool determinism_ok = true;
  std::vector<ShrinkRecord> shrinks;

  for (int i = 0; i < opt.campaigns; ++i) {
    const std::uint64_t seed = opt.seed_base + static_cast<std::uint64_t>(i);
    const CampaignResult r = run_campaign(seed, opt);
    faults_generated += r.generated;
    faults_armed += r.armed;
    total_violations += r.violations;

    if (i == 0) {
      const CampaignResult replay = run_campaign(seed, opt);
      if (replay.digest != r.digest) {
        determinism_ok = false;
        std::printf("  [%3d] seed %" PRIu64 ": DETERMINISM BROKEN "
                    "(digest %016" PRIx64 " vs %016" PRIx64 ")\n",
                    i, seed, r.digest, replay.digest);
      }
    }

    if (r.violations > 0) {
      ++campaigns_with_violations;
      std::printf("  [%3d] seed %" PRIu64 " (%s): %" PRIu64
                  " violation(s), first: %s — %s\n",
                  i, seed, r.fleet, r.violations, r.first.invariant.c_str(),
                  r.first.detail.c_str());
      shrinks.push_back(shrink_and_write(seed, r, opt));
      const ShrinkRecord& s = shrinks.back();
      std::printf("        shrunk %zu -> %zu action(s) in %zu run(s): %s\n",
                  s.original_actions, s.minimal_actions, s.runs,
                  s.repro_path.c_str());
    } else if ((i + 1) % 50 == 0 || i + 1 == opt.campaigns) {
      std::printf("  [%3d] ... clean through seed %" PRIu64 " (%s, %" PRIu64
                  " msgs, %zu faults)\n",
                  i, seed, r.fleet, r.messages, r.armed);
    }
  }

  write_json(opt, faults_generated, faults_armed, total_violations,
             campaigns_with_violations, determinism_ok, shrinks);

  std::printf("\nwrote %s\n", opt.out_path.c_str());
  std::printf("  %d campaigns, %" PRIu64 " faults armed, %" PRIu64
              " violations across %d campaign(s), determinism %s\n",
              opt.campaigns, faults_armed, total_violations,
              campaigns_with_violations, determinism_ok ? "OK" : "BROKEN");
  return (total_violations == 0 && determinism_ok) ? 0 : 1;
}
