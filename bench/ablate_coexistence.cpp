// Coexistence experiment — §4.1's claim:
//   "Wi-LE does not interfere with the normal operation of WiFi networks."
//
// A Wi-LE sensor shares the channel with an ordinary WiFi transfer
// (1500-byte unicast data frames through CSMA). We sweep the background
// offered load and measure, over 60 s:
//   (a) the background network's throughput with and without the Wi-LE
//       device present — the interference the paper claims is negligible;
//   (b) the Wi-LE delivery ratio — how the sensor fares on a busy channel,
//       with CSMA injection vs. raw (carrier-blind) injection.
#include <cstdio>
#include <memory>
#include <optional>

#include "sim/airtime_monitor.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "sim/traffic.hpp"
#include "wile/receiver.hpp"
#include "wile/sender.hpp"

using namespace wile;

namespace {

struct RunResult {
  double background_mbps = 0.0;
  double wile_delivery_pct = 0.0;
  std::uint64_t wile_expected = 0;
  double channel_busy_pct = 0.0;
};

RunResult run(double background_fps, bool with_wile, bool wile_csma) {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{5}};

  // Background transfer: source at (0,0), sink at (3,0).
  sim::TrafficConfig traffic_cfg;
  traffic_cfg.frames_per_second = background_fps;
  sim::TrafficSink sink{scheduler, medium, {3, 0}, traffic_cfg.sink_mac};
  std::optional<sim::TrafficSource> source;
  if (background_fps > 0) {
    source.emplace(scheduler, medium, sim::Position{0, 0}, traffic_cfg, Rng{6});
    source->start();
  }

  // The Wi-LE sensor + monitor, in carrier-sense range of the transfer.
  core::Receiver monitor{scheduler, medium, {1.5, 2}};
  sim::AirtimeMonitor occupancy{scheduler, medium, {1.5, 2.1}};
  std::unique_ptr<core::Sender> sensor;
  std::uint64_t wile_cycles = 0;
  if (with_wile) {
    core::SenderConfig cfg;
    cfg.device_id = 1;
    cfg.period = msec(500);  // aggressive 2 Hz reporting
    cfg.use_csma = wile_csma;
    sensor = std::make_unique<core::Sender>(scheduler, medium, sim::Position{1.5, 1},
                                            cfg, Rng{7});
    sensor->start_duty_cycle([&wile_cycles] {
      ++wile_cycles;
      return Bytes(16, 0x42);
    });
  }

  constexpr auto kDurationS = 60;
  scheduler.run_until(TimePoint{seconds(kDurationS)});
  if (source) source->stop();
  if (sensor) sensor->stop_duty_cycle();

  RunResult out;
  out.channel_busy_pct = 100.0 * occupancy.busy_fraction();
  out.background_mbps =
      static_cast<double>(sink.bytes_received()) * 8.0 / (kDurationS * 1e6);
  out.wile_expected = wile_cycles;
  out.wile_delivery_pct =
      wile_cycles > 0 ? 100.0 * static_cast<double>(monitor.stats().messages) /
                            static_cast<double>(wile_cycles)
                      : 0.0;
  return out;
}

}  // namespace

int main() {
  std::printf("=== coexistence: Wi-LE on a busy channel (§4.1) ===\n");
  std::printf("(60 s, background = 1500 B unicast frames at MCS7 through CSMA; Wi-LE "
              "sensor beacons at 2 Hz)\n\n");
  std::printf("  %-10s | %-22s | %-12s | %-10s | %-14s | %-14s\n", "load (f/s)",
              "bg throughput (Mbit/s)", "impact", "ch busy", "Wi-LE (CSMA)",
              "Wi-LE (raw)");
  std::printf("  -----------+------------------------+--------------+------------+--------"
              "--------+----------------\n");

  bool ok = true;
  double wile_only_busy_pct = 0.0;
  for (double fps : {0.0, 100.0, 400.0, 800.0, 1500.0}) {
    const RunResult baseline = run(fps, /*with_wile=*/false, false);
    const RunResult with_csma = run(fps, /*with_wile=*/true, /*wile_csma=*/true);
    const RunResult with_raw = run(fps, /*with_wile=*/true, /*wile_csma=*/false);
    if (fps == 0.0) wile_only_busy_pct = with_csma.channel_busy_pct;
    const double impact_pct =
        baseline.background_mbps > 0
            ? 100.0 * (baseline.background_mbps - with_csma.background_mbps) /
                  baseline.background_mbps
            : 0.0;
    std::printf("  %-10.0f | %10.2f -> %7.2f | %+10.1f%% | %9.2f%% | %12.1f%% | %12.1f%%\n",
                fps, baseline.background_mbps, with_csma.background_mbps, impact_pct,
                with_csma.channel_busy_pct, with_csma.wile_delivery_pct,
                with_raw.wile_delivery_pct);
    // The §4.1 claim: adding the Wi-LE device costs the network at most a
    // couple percent of throughput (its beacons occupy ~0.01% airtime).
    if (fps > 0 && impact_pct > 3.0) ok = false;
    // And the polite injector keeps delivering even on a busy channel.
    if (with_csma.wile_delivery_pct < 95.0) ok = false;
  }

  std::printf("\n  measured: the 2 Hz Wi-LE sensor alone occupies %.3f%% of airtime; CSMA "
              "injection rides idle gaps, so both the network and the sensor keep "
              "working. Raw injection degrades with load — the cost of the cheapest "
              "firmware.\n",
              wile_only_busy_pct);
  std::printf("\n  shape %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
