// Massive-IoT contention study: Wi-LE beacons vs BLE advertising vs
// 802.11ba wake-up radio, sweeping the station count.
//
// §6 of the paper asks what happens when many devices share the air.
// This bench answers it for all three transmission modes on identical
// fleets (same grid, same duty-cycle period, one mains-powered
// listener), built through the ScenarioBuilder mode presets:
//
//   wile_beacon — every station wakes on a local timer and CSMA-injects
//                 one fake beacon per period (the paper's design);
//   ble         — every station runs an ADV_NONCONN_IND event per period
//                 (pure ALOHA, spec advDelay, 3 channels);
//   wur         — every station deep-sleeps behind a uW 802.11ba
//                 companion receiver; the AP polls the fleet round-robin
//                 once per period, so uplinks are centrally serialized.
//
// Each sample carries (device_id, seq, send-timestamp) in its payload;
// the listener-side callbacks dedupe on (id, seq) and integrate
// delivery ratio, device-side energy per delivered message, and mean
// delivery latency — the energy/latency/delivery frontier per mode.
//
// Every (mode, n) cell runs twice with the same seeds; counter digests
// must match (determinism oracle). A side probe measures the WUR
// companion's listen draw out of the power accounting (armed-idle fleet
// minus plain deep sleep) and gates it at uW class (< 1 mW). Results
// land in BENCH_ablate_wur.json for tools/check_bench_schema.py.
//
// Usage: ablate_wur [--quick] [--out PATH]
//   --quick   stations {250, 1000}, 60 simulated seconds (CI-sized);
//             default {250, 1000, 2000, 4000} and 120 s
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "wile/scenario.hpp"

using namespace wile;

namespace {

const Duration kPeriod = seconds(10);
constexpr double kSpacingM = 0.5;  // dense hall: thousands of stations in range

struct RunResult {
  const char* mode = "";
  int stations = 0;
  std::uint64_t expected = 0;   // samples produced on the devices
  std::uint64_t delivered = 0;  // unique (id, seq) pairs heard by the listener
  double delivery_ratio = 0.0;
  double energy_per_msg_uj = 0.0;  // fleet energy / delivered
  double avg_device_uw = 0.0;      // fleet energy / sim time / station
  double mean_latency_ms = 0.0;    // sample timestamp -> listener delivery
  std::uint64_t digest = 0;
};

/// FNV-1a over the counters that must be seed-determined.
struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

/// 12-byte sample: device_id u16le | seq u16le | send-time us i64le.
Bytes encode_sample(std::uint16_t id, std::uint16_t seq, std::int64_t ts_us) {
  Bytes b(12);
  b[0] = static_cast<std::uint8_t>(id & 0xFF);
  b[1] = static_cast<std::uint8_t>(id >> 8);
  b[2] = static_cast<std::uint8_t>(seq & 0xFF);
  b[3] = static_cast<std::uint8_t>(seq >> 8);
  for (int i = 0; i < 8; ++i) {
    b[static_cast<std::size_t>(4 + i)] =
        static_cast<std::uint8_t>((static_cast<std::uint64_t>(ts_us) >> (8 * i)) & 0xFF);
  }
  return b;
}

struct Sample {
  std::uint16_t id = 0;
  std::uint16_t seq = 0;
  std::int64_t ts_us = 0;
};

bool decode_sample(const Bytes& b, Sample& out) {
  if (b.size() < 12) return false;
  out.id = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  out.seq = static_cast<std::uint16_t>(b[2] | (b[3] << 8));
  std::uint64_t raw = 0;
  for (int i = 7; i >= 0; --i) {
    raw = (raw << 8) | b[static_cast<std::size_t>(4 + i)];
  }
  out.ts_us = static_cast<std::int64_t>(raw);
  return true;
}

/// Listener-side tally shared by all three modes' delivery callbacks.
struct Tally {
  sim::Scenario* scenario = nullptr;  // time source; set right after build
  std::uint64_t produced = 0;
  std::uint64_t delivered = 0;
  std::int64_t latency_sum_us = 0;
  std::unordered_set<std::uint32_t> seen;  // id << 16 | seq

  void on_sample(const Bytes& payload, TimePoint received_at) {
    Sample s;
    if (!decode_sample(payload, s)) return;
    const std::uint32_t key =
        (static_cast<std::uint32_t>(s.id) << 16) | s.seq;
    if (!seen.insert(key).second) return;  // BLE repeats on 3 channels; dedupe
    ++delivered;
    latency_sum_us += received_at.since_epoch().count() - s.ts_us;
  }
};

RunResult run_once(TxMode mode, int stations, int sim_seconds) {
  auto tally = std::make_shared<Tally>();
  auto seqs = std::make_shared<std::vector<std::uint16_t>>(
      static_cast<std::size_t>(stations), 0);

  sim::ScenarioBuilder builder;
  builder.mode(mode)
      .devices(stations)
      .grid_spacing_m(kSpacingM)
      .duty_cycle(kPeriod)
      .timeline_max_segments(16)
      .telemetry(false)
      .gateways(1)
      .seed(0xA81BA000u + static_cast<std::uint64_t>(stations))
      .medium_seed(0x5EED0000u + static_cast<std::uint64_t>(stations))
      .payload_provider([tally, seqs](int i) -> core::Sender::PayloadProvider {
        return [tally, seqs, i] {
          ++tally->produced;
          const std::uint16_t seq = (*seqs)[static_cast<std::size_t>(i)]++;
          return encode_sample(static_cast<std::uint16_t>(i + 1), seq,
                               tally->scenario->now().since_epoch().count());
        };
      });
  if (mode == TxMode::WiLeBeacon || mode == TxMode::Wur) {
    builder.on_message([tally](const core::Message& msg, const core::RxMeta& meta) {
      tally->on_sample(msg.data, meta.received_at);
    });
  }
  if (mode == TxMode::Ble) {
    builder.ble(sim::BleFleetOptions{})
        .on_adv([tally](int, const ble::AdvertisingPdu& pdu, double) {
          tally->on_sample(pdu.adv_data, tally->scenario->now());
        });
  }
  if (mode == TxMode::Wur) {
    builder.wur(sim::WurFleetOptions{});  // round-robin sweep, one pass/period
  }

  auto scenario = builder.build();
  tally->scenario = scenario.get();

  scenario->run_until(TimePoint{seconds(sim_seconds)});
  scenario->stop_all();
  scenario->run_for(seconds(2));

  // Device-side energy over the whole run, exact under segment pruning.
  double fleet_uj = 0.0;
  const TimePoint end = scenario->now();
  for (const auto& s : scenario->devices()) {
    fleet_uj += in_microjoules(s->timeline().energy_between(TimePoint{}, end));
  }
  for (const auto& a : scenario->ble_devices()) {
    fleet_uj += in_microjoules(a->timeline().energy_between(TimePoint{}, end));
  }

  RunResult r;
  r.mode = to_string(mode);
  r.stations = stations;
  r.expected = tally->produced;
  r.delivered = tally->delivered;
  r.delivery_ratio = r.expected > 0 ? static_cast<double>(r.delivered) /
                                          static_cast<double>(r.expected)
                                    : 0.0;
  r.energy_per_msg_uj =
      r.delivered > 0 ? fleet_uj / static_cast<double>(r.delivered) : 0.0;
  r.avg_device_uw = fleet_uj / static_cast<double>(sim_seconds) /
                    static_cast<double>(stations);
  r.mean_latency_ms = r.delivered > 0
                          ? static_cast<double>(tally->latency_sum_us) /
                                static_cast<double>(r.delivered) / 1000.0
                          : 0.0;

  const sim::Medium::Stats ms = scenario->medium_stats();
  Digest d;
  d.add(r.expected);
  d.add(r.delivered);
  d.add(static_cast<std::uint64_t>(tally->latency_sum_us));
  d.add(ms.transmissions);
  d.add(ms.deliveries);
  d.add(ms.collision_losses);
  d.add(ms.channel_losses);
  d.add(scenario->events_run());
  d.add(static_cast<std::uint64_t>(fleet_uj * 1000.0));
  r.digest = d.h;
  return r;
}

/// The companion receiver's listen draw, measured out of the power
/// accounting rather than read off the config: an armed WUR device
/// idling before its first wake, minus the same device plain
/// deep-sleeping, leaves exactly the uW overlay.
double wur_listen_uw_probe() {
  const Duration window = seconds(5);
  auto idle_uw = [&](bool with_wur) {
    sim::ScenarioBuilder b;
    b.devices(1)
        .duty_cycle(seconds(10))
        .telemetry(false)
        .gateways(1)
        .auto_start(!with_wur ? false : true);
    if (with_wur) {
      sim::WurFleetOptions opts;
      opts.cadence = seconds(10);  // first wake at t=10s, after the window
      b.wur(opts);
    } else {
      b.auto_start(false);  // plain sender parked in deep sleep
    }
    auto scenario = b.build();
    scenario->run_until(TimePoint{window});
    const Joules e = scenario->devices().front()->timeline().energy_between(
        TimePoint{}, TimePoint{window});
    return in_microjoules(e) / to_seconds(window);  // uJ/s == uW
  };
  return idle_uw(true) - idle_uw(false);
}

void write_json(const std::vector<RunResult>& rows, int sim_seconds, bool quick,
                double wur_listen_uw, bool monotone, bool deterministic,
                const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror("ablate_wur: fopen");
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"ablate_wur\",\n  \"quick\": %s,\n"
               "  \"sim_seconds\": %d,\n  \"period_seconds\": %lld,\n"
               "  \"grid_spacing_m\": %.2f,\n  \"wur_listen_uw\": %.3f,\n"
               "  \"rows\": [\n",
               quick ? "true" : "false", sim_seconds,
               static_cast<long long>(kPeriod.count() / 1'000'000), kSpacingM,
               wur_listen_uw);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"stations\": %d,\n"
                 "     \"expected\": %llu, \"delivered\": %llu,\n"
                 "     \"delivery_ratio\": %.6f, \"energy_per_msg_uj\": %.3f,\n"
                 "     \"avg_device_uw\": %.3f, \"mean_latency_ms\": %.3f,\n"
                 "     \"digest\": \"%016llx\"}%s\n",
                 r.mode, r.stations, static_cast<unsigned long long>(r.expected),
                 static_cast<unsigned long long>(r.delivered), r.delivery_ratio,
                 r.energy_per_msg_uj, r.avg_device_uw, r.mean_latency_ms,
                 static_cast<unsigned long long>(r.digest),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"monotone_frontier\": %s,\n  \"determinism_ok\": %s\n}\n",
               monotone ? "true" : "false", deterministic ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_ablate_wur.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  const int sim_seconds = quick ? 60 : 120;
  std::vector<int> station_counts = quick ? std::vector<int>{250, 1000}
                                          : std::vector<int>{250, 1000, 2000, 4000};
  const TxMode modes[] = {TxMode::WiLeBeacon, TxMode::Ble, TxMode::Wur};

  std::printf("=== massive-IoT contention: Wi-LE vs BLE adv vs 802.11ba WUR ===\n");
  std::printf("    %.1fm grid pitch, %llds report period, one listener, %ds sim%s\n\n",
              kSpacingM, static_cast<long long>(kPeriod.count() / 1'000'000),
              sim_seconds, quick ? " [quick]" : "");

  const double wur_listen_uw = wur_listen_uw_probe();
  std::printf("  WUR companion listen draw (from power accounting): %.1f uW %s\n\n",
              wur_listen_uw, wur_listen_uw < 1000.0 ? "[uW-class OK]" : "[NOT uW-class]");

  std::printf("  %-12s | %-8s | %-9s | %-9s | %-7s | %-12s | %-9s\n", "mode",
              "stations", "expected", "delivered", "ratio", "uJ/message", "lat (ms)");
  std::printf("  -------------+----------+-----------+-----------+---------+--------------+----------\n");

  std::vector<RunResult> rows;
  bool deterministic = true;
  for (const TxMode mode : modes) {
    for (const int n : station_counts) {
      RunResult r = run_once(mode, n, sim_seconds);
      const RunResult replay = run_once(mode, n, sim_seconds);
      if (replay.digest != r.digest) deterministic = false;
      rows.push_back(r);
      std::printf("  %-12s | %8d | %9llu | %9llu | %6.1f%% | %12.1f | %9.2f\n",
                  r.mode, r.stations, static_cast<unsigned long long>(r.expected),
                  static_cast<unsigned long long>(r.delivered),
                  100.0 * r.delivery_ratio, r.energy_per_msg_uj, r.mean_latency_ms);
    }
    std::printf("  -------------+----------+-----------+-----------+---------+--------------+----------\n");
  }

  // The frontier: per mode, adding stations never *improves* delivery
  // (2% slack absorbs sampling noise on the ratio).
  bool monotone = true;
  for (const TxMode mode : modes) {
    double prev = 2.0;
    for (const RunResult& r : rows) {
      if (std::strcmp(r.mode, to_string(mode)) != 0) continue;
      if (r.delivery_ratio > prev + 0.02) monotone = false;
      prev = r.delivery_ratio;
    }
  }
  // Every cell must have actually produced and delivered something.
  bool live = true;
  for (const RunResult& r : rows) {
    if (r.expected == 0 || r.delivered == 0) live = false;
  }

  const bool listen_ok = wur_listen_uw > 0.0 && wur_listen_uw < 1000.0;
  write_json(rows, sim_seconds, quick, wur_listen_uw, monotone, deterministic,
             out_path);
  std::printf("\nwrote %s\n", out_path.c_str());
  std::printf("  frontier %s, determinism %s, WUR listen %s\n",
              monotone && live ? "OK" : "MISMATCH",
              deterministic ? "OK" : "BROKEN", listen_ok ? "uW-class" : "OVER BUDGET");
  return (monotone && live && deterministic && listen_ok) ? 0 : 1;
}
