// Farm deployment — the paper's no-infrastructure scenario (§1):
//   "in environments with no WiFi infrastructure such as farms Wi-LE
//    enables wireless communication directly between IoT devices and a
//    WiFi device such as a smartphone."
//
// Twelve soil/temperature sensors are scattered over a field with no
// access point anywhere. A worker's smartphone (any WiFi chip that can
// surface beacons) walks by and harvests readings. Sensors share the
// same nominal reporting period but free-run on cheap sleep clocks
// (tens of ppm apart), which — per §6 — keeps them from colliding
// persistently. Payloads are AEAD-encrypted with a per-farm key.
//
// Built with sim::ScenarioBuilder: the per-sensor knobs (ids, keys,
// clock skew, placement) are hooks on one fluent setup instead of a
// hand-rolled construction loop.
//
// Run:  ./farm_sensors
#include <cstdio>
#include <memory>

#include "wile/scenario.hpp"

using namespace wile;

namespace {

constexpr int kSensors = 12;

/// Sensor payload: moisture (u8 %), temperature (s16 centi-C), battery
/// (u8 decivolt).
Bytes sample_soil(Rng& rng, int sensor_index) {
  const auto moisture = static_cast<std::uint8_t>(30 + rng.below(40));
  const auto temp = static_cast<std::int16_t>(1500 + 25 * sensor_index + rng.range(-80, 80));
  const auto battery = static_cast<std::uint8_t>(29 + rng.below(5));
  ByteWriter w(4);
  w.u8(moisture);
  w.u16le(static_cast<std::uint16_t>(temp));
  w.u8(battery);
  return w.take();
}

}  // namespace

int main() {
  const Bytes farm_key(16, 0xF0);

  // Open farmland: free-space-like propagation, mild shadowing from crops.
  phy::ChannelConfig channel_cfg;
  channel_cfg.path_loss_exponent = 2.4;
  channel_cfg.shadowing_sigma_db = 2.0;

  std::uint64_t readings = 0;
  // One seeder drives the per-sensor clock skew, radio RNG and sensor
  // physics, drawn in the same per-device order the legacy hand-wired
  // loop used (configure -> device rng -> payload rng).
  Rng seeder{7};

  auto scenario =
      sim::ScenarioBuilder{}
          .devices(kSensors)
          .duty_cycle(seconds(30))
          .wake_jitter(msec(20))
          .timeline_max_segments(0)
          .stagger_starts(false)
          .channel(channel_cfg)
          .medium_seed(2024)
          .configure_sender([&seeder, &farm_key](core::SenderConfig& cfg, int i) {
            cfg.device_id = 100 + i;
            cfg.key = farm_key;
            cfg.clock_ppm_error = static_cast<double>(seeder.range(-50, 50));
            cfg.use_csma = false;  // cheapest firmware: raw injection, jitter only
          })
          .device_rng([&seeder](int) { return seeder.fork(); })
          // Up to ~8 m from the phone, on a rough 4x3 grid.
          .place_device([](int i) {
            return sim::Position{-6.0 + 4.0 * (i % 4), -4.0 + 4.0 * (i / 4)};
          })
          .payload_provider([&seeder](int i) -> core::Sender::PayloadProvider {
            return [rng = seeder.fork(), i]() mutable { return sample_soil(rng, i); };
          })
          // The smartphone in the middle of the field.
          .place_gateway([](int) { return sim::Position{0, 0}; })
          .configure_gateway([&farm_key](core::ReceiverConfig& cfg, int) {
            cfg.key = farm_key;
          })
          .on_message([&readings](const core::Message& msg, const core::RxMeta& meta) {
            if (msg.data.size() != 4) return;
            ByteReader r{msg.data};
            const int moisture = r.u8();
            const double temp_c = static_cast<std::int16_t>(r.u16le()) / 100.0;
            const double battery_v = r.u8() / 10.0;
            ++readings;
            if (readings <= 15 || readings % 50 == 0) {
              std::printf("t=%7.1fs sensor %2u seq=%-3u moisture=%2d%% temp=%5.2fC "
                          "batt=%.1fV rssi=%.0f dBm\n",
                          to_seconds(meta.received_at.since_epoch()), msg.device_id,
                          msg.sequence, moisture, temp_c, battery_v, meta.rssi_dbm);
            }
          })
          .build();

  std::printf("farm: %d encrypted Wi-LE sensors, 30 s period, no AP anywhere\n\n",
              kSensors);
  scenario->run_until(TimePoint{minutes(10)});
  scenario->stop_all();

  const core::Receiver& phone = *scenario->gateways().front();
  std::printf("\n--- after 10 minutes ---\n");
  std::printf("%-8s %9s %8s %8s %10s\n", "sensor", "messages", "lost", "loss%", "rssi dBm");
  std::uint64_t total = 0, lost = 0;
  for (const auto& [id, dev] : phone.devices()) {
    const double loss_pct =
        100.0 * static_cast<double>(dev.estimated_losses) /
        static_cast<double>(dev.messages + dev.estimated_losses);
    std::printf("%-8u %9llu %8llu %7.1f%% %10.0f\n", id,
                static_cast<unsigned long long>(dev.messages),
                static_cast<unsigned long long>(dev.estimated_losses), loss_pct,
                dev.last_rssi_dbm);
    total += dev.messages;
    lost += dev.estimated_losses;
  }
  std::printf("\ntotal: %llu readings, %llu lost (%.1f%%), %llu decode failures, "
              "%llu collisions seen\n",
              static_cast<unsigned long long>(total), static_cast<unsigned long long>(lost),
              100.0 * static_cast<double>(lost) / static_cast<double>(total + lost),
              static_cast<unsigned long long>(phone.stats().crc_failures +
                                              phone.stats().decrypt_failures),
              static_cast<unsigned long long>(phone.stats().collisions_observed));
  return phone.devices().size() == kSensors ? 0 : 1;
}
