// Gateway bridge — "Wi-LE can utilize existing WiFi infrastructure" (§1).
//
// Topology:
//
//   [sensor]x4  ~~Wi-LE beacons~~>  [gateway]  ==WPA2/UDP==>  [AP]  ->  server
//
// The sensors never associate with anything (they deep-sleep at 2.5 uA).
// The mains-powered gateway runs two radios: a monitor-mode card that
// harvests Wi-LE beacons, and a normal client that is associated with
// the building's WPA2 AP in power-save mode and forwards each reading to
// a collector server as a UDP datagram — through a genuine 4-way
// handshake, DHCP lease and CCMP-protected data path.
//
// Run:  ./gateway_bridge
#include <cstdio>
#include <memory>
#include <vector>

#include "ap/access_point.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "wile/gateway.hpp"
#include "wile/sender.hpp"

using namespace wile;

int main() {
  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{321}};

  // The building AP, with the collector "server" behind it.
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint access_point{scheduler, medium, {0, 0}, ap_cfg, Rng{1}};
  std::uint64_t server_rows = 0;
  access_point.set_uplink_handler([&](const MacAddress&, const net::Ipv4Header&,
                                      const net::UdpDatagram& udp) {
    const auto reading = core::ForwardedReading::decode(udp.payload);
    if (!reading) return;
    ++server_rows;
    std::printf("t=%7.1fs  [server] device=%#06x seq=%-3u rssi=%d dBm data=%zuB\n",
                to_seconds(scheduler.now().since_epoch()), reading->device_id,
                reading->sequence, reading->rssi_dbm, reading->data.size());
  });
  access_point.start();

  // The gateway, a few meters from the AP.
  core::GatewayConfig gw_cfg;
  gw_cfg.station.mac = MacAddress::from_seed(0x6A7E);
  core::Gateway gateway{scheduler, medium, {4, 0}, gw_cfg, Rng{2}};
  gateway.start([&](bool ok) {
    std::printf("t=%7.1fs  [gateway] uplink %s (ip %s)\n",
                to_seconds(scheduler.now().since_epoch()),
                ok ? "associated" : "FAILED",
                gateway.station().ip() ? gateway.station().ip()->to_string().c_str()
                                       : "none");
  });

  // Four Wi-LE sensors scattered around the gateway.
  Rng seeder{3};
  std::vector<std::unique_ptr<core::Sender>> sensors;
  for (int i = 0; i < 4; ++i) {
    core::SenderConfig cfg;
    cfg.device_id = 0x2000 + i;
    cfg.period = seconds(45);
    cfg.wake_jitter = msec(400);
    sensors.push_back(std::make_unique<core::Sender>(
        scheduler, medium, sim::Position{6.0 + i, 2.0}, cfg, seeder.fork()));
    sensors.back()->start_duty_cycle([i] {
      ByteWriter w(3);
      w.u8(static_cast<std::uint8_t>(i));
      w.u16le(1700 + 10 * i);
      return w.take();
    });
  }

  scheduler.run_until(TimePoint{minutes(5)});
  for (auto& s : sensors) s->stop_duty_cycle();
  scheduler.run_until(scheduler.now() + seconds(5));

  const auto& gw = gateway.stats();
  std::printf("\n--- after 5 minutes ---\n");
  std::printf("gateway: %llu Wi-LE messages received, %llu forwarded, %llu dropped, "
              "%llu failures\n",
              static_cast<unsigned long long>(gw.received),
              static_cast<unsigned long long>(gw.forwarded),
              static_cast<unsigned long long>(gw.dropped_queue_full),
              static_cast<unsigned long long>(gw.forward_failures));
  std::printf("server: %llu rows stored; AP handled %llu PS-Polls and delivered %llu "
              "buffered frames\n",
              static_cast<unsigned long long>(server_rows),
              static_cast<unsigned long long>(access_point.stats().ps_poll_received),
              static_cast<unsigned long long>(
                  access_point.stats().buffered_frames_delivered));
  return (server_rows > 0 && server_rows == gw.forwarded) ? 0 : 1;
}
