// Gateway bridge — "Wi-LE can utilize existing WiFi infrastructure" (§1).
//
// Topology:
//
//   [sensor]x4  ~~Wi-LE beacons~~>  [gateway]  ==WPA2/UDP==>  [AP]  ->  server
//
// The sensors never associate with anything (they deep-sleep at 2.5 uA).
// The mains-powered gateway runs two radios: a monitor-mode card that
// harvests Wi-LE beacons, and a normal client that is associated with
// the building's WPA2 AP in power-save mode and forwards each reading to
// a collector server as a UDP datagram — through a genuine 4-way
// handshake, DHCP lease and CCMP-protected data path.
//
// ScenarioBuilder owns the environment and the sensor fleet; the
// infrastructure side (AP + bridging Gateway) is built on the
// scenario's scheduler/medium and publishes into the same telemetry
// registry, so one JSON export covers the whole topology.
//
// Run:  ./gateway_bridge
#include <cstdio>
#include <memory>
#include <string>

#include "ap/access_point.hpp"
#include "wile/gateway.hpp"
#include "wile/scenario.hpp"

using namespace wile;

int main() {
  // Four Wi-LE sensors scattered around the gateway; no monitor from the
  // builder — the bridging Gateway below is the Wi-LE receiver.
  Rng seeder{3};
  auto scenario =
      sim::ScenarioBuilder{}
          .devices(4)
          .gateways(0)
          .duty_cycle(seconds(45))
          .wake_jitter(msec(400))
          .timeline_max_segments(0)
          .stagger_starts(false)
          .medium_seed(321)
          .device_rng([&seeder](int) { return seeder.fork(); })
          .configure_sender([](core::SenderConfig& cfg, int i) {
            cfg.device_id = 0x2000 + i;
          })
          .place_device([](int i) { return sim::Position{6.0 + i, 2.0}; })
          .payload_provider([](int i) -> core::Sender::PayloadProvider {
            return [i] {
              ByteWriter w(3);
              w.u8(static_cast<std::uint8_t>(i));
              w.u16le(1700 + 10 * i);
              return w.take();
            };
          })
          .build();
  sim::Scheduler& scheduler = scenario->scheduler();

  // The building AP, with the collector "server" behind it.
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint access_point{scheduler, scenario->medium(), {0, 0}, ap_cfg, Rng{1}};
  std::uint64_t server_rows = 0;
  access_point.set_uplink_handler([&](const MacAddress&, const net::Ipv4Header&,
                                      const net::UdpDatagram& udp) {
    const auto batch = core::ForwardedBatch::decode(udp.payload);
    if (!batch) return;
    for (const core::ForwardedReading& reading : batch->readings) {
      ++server_rows;
      std::printf("t=%7.1fs  [server] device=%#06x seq=%-3u rssi=%d dBm data=%zuB\n",
                  to_seconds(scheduler.now().since_epoch()), reading.device_id,
                  reading.sequence, reading.rssi_dbm, reading.data.size());
    }
  });
  access_point.start();
  access_point.publish_metrics(
      scenario->metrics(), "node." + std::to_string(access_point.node_id()) + ".ap");

  // The gateway, a few meters from the AP.
  core::GatewayConfig gw_cfg;
  gw_cfg.station.mac = MacAddress::from_seed(0x6A7E);
  core::Gateway gateway{scheduler, scenario->medium(), {4, 0}, gw_cfg, Rng{2}};
  gateway.start([&](bool ok) {
    std::printf("t=%7.1fs  [gateway] uplink %s (ip %s)\n",
                to_seconds(scheduler.now().since_epoch()),
                ok ? "associated" : "FAILED",
                gateway.station().ip() ? gateway.station().ip()->to_string().c_str()
                                       : "none");
  });
  gateway.publish_metrics(scenario->metrics(), "gateway");

  scenario->run_until(TimePoint{minutes(5)});
  scenario->stop_all();
  scenario->run_for(seconds(5));

  const auto& gw = gateway.stats();
  std::printf("\n--- after 5 minutes ---\n");
  std::printf("gateway: %llu Wi-LE messages received, %llu forwarded, %llu dropped, "
              "%llu failures\n",
              static_cast<unsigned long long>(gw.received),
              static_cast<unsigned long long>(gw.forwarded),
              static_cast<unsigned long long>(gw.dropped_queue_full),
              static_cast<unsigned long long>(gw.forward_failures));
  std::printf("server: %llu rows stored; AP handled %llu PS-Polls and delivered %llu "
              "buffered frames\n",
              static_cast<unsigned long long>(server_rows),
              static_cast<unsigned long long>(access_point.stats().ps_poll_received),
              static_cast<unsigned long long>(
                  access_point.stats().buffered_frames_delivered));
  return (server_rows > 0 && server_rows == gw.forwarded) ? 0 : 1;
}
