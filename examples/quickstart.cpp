// Quickstart: one Wi-LE temperature sensor and one monitor-mode receiver.
//
// Mirrors Figure 1 of the paper: the sensor wakes every 10 seconds,
// embeds its reading in a fake 802.11 beacon (hidden SSID, vendor IE),
// injects it, and deep-sleeps. The receiver — any WiFi card in monitor
// mode — extracts the readings without either side ever associating.
//
// Setup goes through sim::ScenarioBuilder, the library's one-stop
// facade: it owns the scheduler, the radio medium, the nodes and the
// telemetry registry, so an experiment is a handful of fluent calls
// plus the domain callbacks.
//
// Run:  ./quickstart
#include <cstdio>
#include <memory>

#include "wile/scenario.hpp"

int main() {
  using namespace wile;

  // Simulated sensor physics: a slow daily drift around 17 C (Figure 1's
  // display value). The provider factory is called once per device and
  // returns that device's per-cycle sampling closure.
  auto make_thermometer = [](int) -> core::Sender::PayloadProvider {
    return [tick = 0]() mutable {
      const double temp_c = 17.0 + 0.5 * ((tick++ % 20) / 10.0 - 1.0);
      const auto centi = static_cast<std::uint16_t>(temp_c * 100.0);
      return Bytes{static_cast<std::uint8_t>(centi & 0xff),
                   static_cast<std::uint8_t>(centi >> 8)};
    };
  };

  auto scenario =
      sim::ScenarioBuilder{}
          .devices(1)  // the IoT device: a temperature sensor
          .duty_cycle(seconds(10))
          .wake_jitter(Duration{0})
          .timeline_max_segments(0)
          .stagger_starts(false)
          .medium_seed(42)
          .device_rng([](int) { return Rng{1}; })
          .configure_sender(
              [](core::SenderConfig& cfg, int) { cfg.device_id = 0x1001; })
          // The receiver: a laptop WiFi card in monitor mode, 2 m away.
          .place_gateway([](int) { return sim::Position{2.0, 0.0}; })
          .payload_provider(make_thermometer)
          .on_message([](const core::Message& msg, const core::RxMeta& meta) {
            // Payload layout: centi-degrees, little-endian u16.
            if (msg.data.size() != 2) return;
            const double temp_c =
                static_cast<double>(msg.data[0] | (msg.data[1] << 8)) / 100.0;
            std::printf("t=%8.3fs  device=%#06x  seq=%u  temp=%.2f C  rssi=%.1f dBm\n",
                        to_seconds(meta.received_at.since_epoch()), msg.device_id,
                        msg.sequence, temp_c, meta.rssi_dbm);
          })
          .on_send_report([](int, const core::SendReport& report) {
            std::printf("    sensor cycle: %d beacon(s), tx-only %.1f uJ, cycle %.1f uJ, "
                        "awake %.1f ms\n",
                        report.beacons_sent, in_microjoules(report.tx_only_energy),
                        in_microjoules(report.cycle_energy),
                        to_seconds(report.active_time) * 1e3);
          })
          .build();

  scenario->run_until(TimePoint{minutes(1)});

  const auto& stats = scenario->gateways().front()->stats();
  std::printf("\nreceived %llu message(s) in %llu Wi-LE beacon(s); "
              "%llu duplicate(s), %llu CRC failure(s)\n",
              static_cast<unsigned long long>(stats.messages),
              static_cast<unsigned long long>(stats.wile_beacons),
              static_cast<unsigned long long>(stats.duplicates),
              static_cast<unsigned long long>(stats.crc_failures));
  return stats.messages > 0 ? 0 : 1;
}
