// Quickstart: one Wi-LE temperature sensor and one monitor-mode receiver.
//
// Mirrors Figure 1 of the paper: the sensor wakes every 10 seconds,
// embeds its reading in a fake 802.11 beacon (hidden SSID, vendor IE),
// injects it, and deep-sleeps. The receiver — any WiFi card in monitor
// mode — extracts the readings without either side ever associating.
//
// Run:  ./quickstart
#include <cstdio>

#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "wile/receiver.hpp"
#include "wile/sender.hpp"

int main() {
  using namespace wile;

  sim::Scheduler scheduler;
  sim::Medium medium{scheduler, phy::Channel{}, Rng{42}};

  // The IoT device: a temperature sensor two meters from the receiver.
  core::SenderConfig sensor_cfg;
  sensor_cfg.device_id = 0x1001;
  sensor_cfg.period = seconds(10);
  core::Sender sensor{scheduler, medium, {0.0, 0.0}, sensor_cfg, Rng{1}};

  // The receiver: a laptop WiFi card in monitor mode.
  core::Receiver monitor{scheduler, medium, {2.0, 0.0}};
  monitor.set_message_callback([](const core::Message& msg, const core::RxMeta& meta) {
    // Payload layout: centi-degrees, little-endian u16.
    if (msg.data.size() != 2) return;
    const double temp_c = static_cast<double>(msg.data[0] | (msg.data[1] << 8)) / 100.0;
    std::printf("t=%8.3fs  device=%#06x  seq=%u  temp=%.2f C  rssi=%.1f dBm\n",
                to_seconds(meta.received_at.since_epoch()), msg.device_id, msg.sequence,
                temp_c, meta.rssi_dbm);
  });

  // Simulated sensor physics: a slow daily drift around 17 C (Figure 1's
  // display value).
  int tick = 0;
  sensor.start_duty_cycle(
      [&tick]() {
        const double temp_c = 17.0 + 0.5 * ((tick++ % 20) / 10.0 - 1.0);
        const auto centi = static_cast<std::uint16_t>(temp_c * 100.0);
        return Bytes{static_cast<std::uint8_t>(centi & 0xff),
                     static_cast<std::uint8_t>(centi >> 8)};
      },
      [](const core::SendReport& report) {
        std::printf("    sensor cycle: %d beacon(s), tx-only %.1f uJ, cycle %.1f uJ, "
                    "awake %.1f ms\n",
                    report.beacons_sent, in_microjoules(report.tx_only_energy),
                    in_microjoules(report.cycle_energy),
                    to_seconds(report.active_time) * 1e3);
      });

  scheduler.run_until(TimePoint{minutes(1)});

  const auto& stats = monitor.stats();
  std::printf("\nreceived %llu message(s) in %llu Wi-LE beacon(s); "
              "%llu duplicate(s), %llu CRC failure(s)\n",
              static_cast<unsigned long long>(stats.messages),
              static_cast<unsigned long long>(stats.wile_beacons),
              static_cast<unsigned long long>(stats.duplicates),
              static_cast<unsigned long long>(stats.crc_failures));
  return stats.messages > 0 ? 0 : 1;
}
