// Smart-home two-way communication — the §6 extension in action.
//
// A battery thermostat reports temperature over Wi-LE once a minute and
// announces a 20 ms receive window after each beacon. A mains-powered
// hub (a WiFi card doing monitor-mode receive + raw injection) watches
// the beacons; when the user changes the setpoint, the hub queues a
// Downlink message that rides the thermostat's next window — so the
// thermostat's radio is only ever on for ~22 ms per minute instead of
// listening continuously.
//
// ScenarioBuilder owns the environment and the thermostat; the hub — a
// Controller, outside the builder's device fleet — is constructed on
// the scenario's scheduler/medium and publishes its counters into the
// same telemetry registry.
//
// Run:  ./smart_home_twoway
#include <cstdio>
#include <memory>
#include <optional>

#include "wile/controller.hpp"
#include "wile/scenario.hpp"

using namespace wile;

namespace {

constexpr std::uint32_t kThermostatId = 0x7E40;

Bytes encode_report(double temp_c, double setpoint_c) {
  ByteWriter w(4);
  w.u16le(static_cast<std::uint16_t>(temp_c * 100));
  w.u16le(static_cast<std::uint16_t>(setpoint_c * 100));
  return w.take();
}

std::optional<double> decode_setpoint(BytesView data) {
  if (data.size() != 2) return std::nullopt;
  ByteReader r{data};
  return r.u16le() / 100.0;
}

}  // namespace

int main() {
  // --- the thermostat (battery powered, deep sleeps between beacons) ---
  auto scenario =
      sim::ScenarioBuilder{}
          .devices(1)
          .gateways(0)  // the hub replaces the default monitor
          .duty_cycle(minutes(1))
          .wake_jitter(Duration{0})
          .timeline_max_segments(0)
          .medium_seed(99)
          .device_rng([](int) { return Rng{1}; })
          .configure_sender([](core::SenderConfig& cfg, int) {
            cfg.device_id = kThermostatId;
            cfg.rx_window = core::RxWindow{msec(2), msec(20)};
          })
          .auto_start(false)  // started below, once the callbacks exist
          .build();
  sim::Scheduler& scheduler = scenario->scheduler();
  core::Sender& thermostat = *scenario->devices().front();

  double room_temp = 19.0;
  double setpoint = 20.0;
  thermostat.set_downlink_callback([&](const core::Message& msg) {
    if (auto sp = decode_setpoint(msg.data)) {
      std::printf("t=%6.1fs  [thermostat] received new setpoint %.1f C (was %.1f C)\n",
                  to_seconds(scheduler.now().since_epoch()), *sp, setpoint);
      setpoint = *sp;
    }
  });

  Joules total_energy{};
  thermostat.start_duty_cycle(
      [&] {
        // Toy thermal model: the room drifts toward the setpoint.
        room_temp += 0.2 * (setpoint - room_temp);
        return encode_report(room_temp, setpoint);
      },
      [&](const core::SendReport& r) { total_energy += r.cycle_energy; });

  // --- the hub (mains powered) ---
  core::ControllerConfig hub_cfg;
  core::Controller hub{scheduler, scenario->medium(), {4, 2}, hub_cfg, Rng{2}};
  hub.set_message_callback([&](const core::Message& msg, const core::RxMeta&) {
    if (msg.device_id != kThermostatId || msg.data.size() != 4) return;
    ByteReader r{msg.data};
    const double temp = r.u16le() / 100.0;
    const double sp = r.u16le() / 100.0;
    std::printf("t=%6.1fs  [hub] report: room %.2f C, setpoint %.1f C\n",
                to_seconds(scheduler.now().since_epoch()), temp, sp);
  });
  hub.publish_metrics(scenario->metrics(),
                      "node." + std::to_string(hub.node_id()) + ".controller");

  // The user bumps the setpoint twice during the simulation.
  scheduler.schedule_at(TimePoint{seconds(150)}, [&] {
    std::printf("t=%6.1fs  [user] sets 22.5 C on the app\n",
                to_seconds(scheduler.now().since_epoch()));
    ByteWriter w(2);
    w.u16le(2250);
    hub.queue_downlink(kThermostatId, w.take());
  });
  scheduler.schedule_at(TimePoint{seconds(400)}, [&] {
    std::printf("t=%6.1fs  [user] sets 18.0 C on the app\n",
                to_seconds(scheduler.now().since_epoch()));
    ByteWriter w(2);
    w.u16le(1800);
    hub.queue_downlink(kThermostatId, w.take());
  });

  scenario->run_until(TimePoint{minutes(10)});
  scenario->stop_all();

  std::printf("\n--- after 10 minutes ---\n");
  std::printf("thermostat cycles: %llu, downlinks delivered: %llu/%llu, windows seen by "
              "hub: %llu\n",
              static_cast<unsigned long long>(thermostat.cycles_run()),
              static_cast<unsigned long long>(hub.stats().downlinks_sent),
              static_cast<unsigned long long>(hub.stats().downlinks_queued),
              static_cast<unsigned long long>(hub.stats().windows_seen));
  std::printf("thermostat radio energy over 10 min: %.1f mJ (avg %.1f uW) — an always-on "
              "receiver would have burnt %.0f mJ\n",
              in_millijoules(total_energy),
              in_microwatts(total_energy / minutes(10)),
              in_millijoules((volts(3.3) * milliamps(110.0)) * minutes(10)));

  const bool ok = hub.stats().downlinks_sent == 2 && setpoint == 18.0;
  return ok ? 0 : 1;
}
