// Power comparison — "can WiFi replace Bluetooth?" for YOUR workload.
//
// A small planning tool built on the library's four radio scenarios: give
// it a transmission interval (seconds) and an optional battery size
// (mAh), and it prints projected average power and battery life for
// Wi-LE, BLE, WiFi-DC and WiFi-PS, using energies measured from the
// simulated protocol exchanges (the Table-1 pipeline).
//
// Each measurement arm gets its environment (scheduler + seeded medium)
// from sim::ScenarioBuilder; the non-Wi-LE nodes (BLE link, WiFi
// station/AP) are built on top of it, since only Wi-LE senders live in
// the builder's fleet.
//
// Run:  ./power_comparison [interval_seconds] [battery_mah]
//       ./power_comparison 600 225        # 10-minute sensor, CR2032
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>

#include "ap/access_point.hpp"
#include "ble/link.hpp"
#include "power/timeline.hpp"
#include "sta/station.hpp"
#include "wile/scenario.hpp"

using namespace wile;

namespace {

struct Tech {
  const char* name;
  Joules per_message{};
  Duration active_time{};
  Watts idle{};
  Volts supply{};
};

/// Environment-only scenario: scheduler + medium with the arm's seed,
/// no Wi-LE fleet unless the arm asks for one.
std::unique_ptr<sim::Scenario> arm_env(int devices) {
  return sim::ScenarioBuilder{}
      .devices(devices)
      .gateways(0)
      .wake_jitter(Duration{0})
      .timeline_max_segments(0)
      .medium_seed(1)
      .device_rng([](int) { return Rng{2}; })
      .auto_start(false)
      .build();
}

Tech measure_wile() {
  auto scenario = arm_env(/*devices=*/1);
  core::Sender& sender = *scenario->devices().front();
  const core::SenderConfig& cfg = sender.config();
  std::optional<core::SendReport> r;
  sender.send_now(Bytes(16, 1), [&](const core::SendReport& rep) { r = rep; });
  scenario->scheduler().run_until_idle();
  return {"Wi-LE", r->tx_only_energy, r->tx_airtime,
          cfg.power.supply * cfg.power.deep_sleep, cfg.power.supply};
}

Tech measure_ble() {
  auto scenario = arm_env(0);
  ble::BleLinkConfig cfg;
  ble::BleMaster master{scenario->scheduler(), scenario->medium(), {0, 0}, cfg};
  ble::BleSlave slave{scenario->scheduler(), scenario->medium(), {2, 0}, cfg};
  std::optional<ble::BleEventReport> r;
  slave.set_event_callback([&](const ble::BleEventReport& rep) {
    if (rep.data_sent && !r) r = rep;
  });
  slave.queue_payload(Bytes(20, 1));
  master.start();
  slave.start();
  scenario->run_until(TimePoint{seconds(3)});
  return {"BLE", r->energy, r->active_time, cfg.power.supply * cfg.power.sleep,
          cfg.power.supply};
}

Tech measure_wifi(bool power_save) {
  auto scenario = arm_env(0);
  sim::Scheduler& scheduler = scenario->scheduler();
  ap::AccessPointConfig ap_cfg;
  ap::AccessPoint ap{scheduler, scenario->medium(), {0, 0}, ap_cfg, Rng{10}};
  ap.start();
  sta::StationConfig sta_cfg;
  sta::Station sta{scheduler, scenario->medium(), {3, 0}, sta_cfg, Rng{20}};

  if (!power_save) {
    std::optional<sta::CycleReport> r;
    sta.run_duty_cycle_transmission(Bytes(16, 1),
                                    [&](const sta::CycleReport& rep) { r = rep; });
    scenario->run_until(TimePoint{seconds(10)});
    return {"WiFi-DC", r->energy, r->active_time,
            sta_cfg.power.supply * sta_cfg.power.deep_sleep, sta_cfg.power.supply};
  }

  bool ready = false;
  sta.connect_and_enter_power_save([&](bool ok) { ready = ok; });
  scenario->run_until(TimePoint{seconds(10)});
  const TimePoint from = scheduler.now();
  scenario->run_for(minutes(1));
  const Watts idle = sta.timeline().average_power(from, scheduler.now());
  std::optional<sta::CycleReport> r;
  sta.power_save_send(Bytes(16, 1), [&](const sta::CycleReport& rep) { r = rep; });
  scenario->run_for(seconds(5));
  return {"WiFi-PS", r->energy, r->active_time, idle, sta_cfg.power.supply};
}

}  // namespace

int main(int argc, char** argv) {
  const long interval_s = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 60;
  const double battery_mah = argc > 2 ? std::strtod(argv[2], nullptr) : 225.0;  // CR2032
  if (interval_s <= 0) {
    std::fprintf(stderr, "usage: %s [interval_seconds>0] [battery_mah]\n", argv[0]);
    return 2;
  }

  std::printf("workload: one message every %ld s, %.0f mAh battery\n\n", interval_s,
              battery_mah);
  std::printf("measuring each technology (simulated protocol exchanges)...\n\n");

  const Tech techs[] = {measure_wile(), measure_ble(), measure_wifi(true),
                        measure_wifi(false)};

  std::printf("%-8s | %12s | %12s | %12s | %14s\n", "tech", "E/message", "idle draw",
              "avg power", "battery life");
  std::printf("---------+--------------+--------------+--------------+---------------\n");
  for (const Tech& t : techs) {
    const Watts avg = power::duty_cycle_average_power(
        t.per_message / std::max(t.active_time, usec(1)), t.active_time,
        t.idle, seconds(interval_s));
    const double avg_current_ma = in_milliamps(avg / t.supply);
    const double life_hours = battery_mah / avg_current_ma;
    char life[40];
    if (life_hours > 24.0 * 365.0) {
      std::snprintf(life, sizeof(life), "%.1f years", life_hours / (24.0 * 365.0));
    } else if (life_hours > 48.0) {
      std::snprintf(life, sizeof(life), "%.0f days", life_hours / 24.0);
    } else {
      std::snprintf(life, sizeof(life), "%.1f hours", life_hours);
    }
    std::printf("%-8s | %9.1f uJ | %9.2f uA | %9.2f uW | %14s\n", t.name,
                in_microjoules(t.per_message),
                in_microamps(t.idle / t.supply), in_microwatts(avg), life);
  }

  std::printf("\n(Wi-LE uses the paper's TX-only accounting; battery life assumes the "
              "battery's full charge is usable and self-discharge is ignored.)\n");
  return 0;
}
