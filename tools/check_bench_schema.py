#!/usr/bin/env python3
"""Schema check for the repo's bench JSON artifacts.

Validates two document shapes (CI fails on drift so downstream
dashboards and the cross-version determinism oracle never ingest a
silently reshaped file):

  * wile-telemetry-v1 (src/telemetry/export.hpp) — whole-sim telemetry
    snapshots exported by ScenarioBuilder scenarios;
  * the scale_fleet runs table (BENCH_scale_fleet*.json);
  * the ablate_harvesting feasibility frontier
    (BENCH_ablate_harvesting*.json) — distance vs. report rate, which
    must be monotone and carry a matching determinism oracle;
  * the chaos_soak campaign summary (BENCH_chaos_soak*.json) — the
    randomized fault-campaign soak, which must report zero invariant
    violations and a passing same-seed determinism oracle;
  * the ingest_throughput verdict (BENCH_ingest_throughput*.json) —
    batched gateway drain vs the pre-refactor single-send pipeline,
    which must hold the >= 3x sustained-frames/s speedup, dispatch
    no-regression, and a passing dual-run determinism oracle;
  * the ablate_wur contention study (BENCH_ablate_wur*.json) — the
    massive-IoT energy/latency/delivery frontier across the three
    transmission modes (wile_beacon / ble / wur), which must cover all
    three modes up to >= 1000 contending stations, stay monotone
    (delivery ratio non-increasing with station count, per mode), show
    a uW-class WUR listen draw, and pass the dual-run oracle.

Usage: check_bench_schema.py FILE [FILE...]
Exit 0 when every file validates; 1 with per-file diagnostics otherwise.
"""
import json
import sys

TELEMETRY_SCHEMA = "wile-telemetry-v1"
TELEMETRY_REQUIRED = ["schema", "bench", "sim_time_us", "meta", "aggregates",
                      "histograms", "nodes", "samples", "trace"]
# Aggregates every scenario must export (the builder binds these before
# any per-node metric).
TELEMETRY_REQUIRED_AGGREGATES = [
    "scheduler.events_run",
    "medium.transmissions",
    "medium.deliveries",
    "fleet.messages",
]
# Per-node series the acceptance criteria pin: TX, RX and energy.
NODE_SENDER_REQUIRED = ["sender.tx.beacons", "sender.tx.airtime_us",
                        "sender.cycles", "sender.energy_j"]
NODE_RECEIVER_REQUIRED = ["receiver.messages", "receiver.beacons_seen"]
HISTOGRAM_REQUIRED = ["count", "sum", "min", "max", "mean", "buckets"]

FLEET_RUN_REQUIRED = ["n", "sim_seconds", "wall_seconds", "sim_wall_ratio",
                      "events", "events_per_sec", "transmissions", "deliveries",
                      "collision_losses", "messages", "rss_peak_mb",
                      "rss_delta_mb"]
# Rows written by the sharded engine additionally carry the engine
# config and the per-node memory footprint (0/0 threads/shards marks a
# legacy serial row; old artifacts without these keys still validate).
FLEET_SHARDED_REQUIRED = ["threads", "shards", "hw_threads",
                          "rss_per_node_bytes"]

HARVEST_TOP_REQUIRED = ["bench", "quick", "sim_seconds", "period_seconds",
                        "source_tx_dbm", "rectenna_efficiency", "runs",
                        "monotone_frontier", "determinism_ok"]
HARVEST_RUN_REQUIRED = ["distance_m", "harvest_uw", "cycles_run",
                        "cycles_skipped", "brown_outs", "cycles_resumed",
                        "messages", "reports_per_hour", "digest"]

CHAOS_TOP_REQUIRED = ["bench", "quick", "campaigns", "seed_base",
                      "faults_generated", "faults_armed", "violations",
                      "campaigns_with_violations", "determinism_ok",
                      "shrinks"]
# Each entry the soak writes when a campaign trips an oracle and gets
# ddmin-shrunk to a replayable repro file.
CHAOS_SHRINK_REQUIRED = ["seed", "invariant", "original_actions",
                         "minimal_actions", "runs", "repro"]

INGEST_TOP_REQUIRED = ["bench", "quick", "batch_max", "drain_senders",
                       "drain_sim_seconds", "baseline_fps", "pipeline_fps",
                       "speedup", "baseline_forwarded", "pipeline_forwarded",
                       "pipeline_batches", "n_devices", "frames",
                       "dispatch_baseline_fps", "dispatch_pipeline_fps",
                       "dispatch_speedup", "dispatch_reports",
                       "rules_eval_fps", "rules_fired", "determinism_ok"]

WUR_TOP_REQUIRED = ["bench", "quick", "sim_seconds", "period_seconds",
                    "grid_spacing_m", "wur_listen_uw", "rows",
                    "monotone_frontier", "determinism_ok"]
WUR_ROW_REQUIRED = ["mode", "stations", "expected", "delivered",
                    "delivery_ratio", "energy_per_msg_uj", "avg_device_uw",
                    "mean_latency_ms", "digest"]
WUR_MODES = ("wile_beacon", "ble", "wur")


def fail(errors, msg):
    errors.append(msg)


def check_telemetry(doc, errors):
    for key in TELEMETRY_REQUIRED:
        if key not in doc:
            fail(errors, f"missing top-level key {key!r}")
    if doc.get("schema") != TELEMETRY_SCHEMA:
        fail(errors, f"schema is {doc.get('schema')!r}, want {TELEMETRY_SCHEMA!r}")
    if errors:
        return

    aggregates = doc["aggregates"]
    if not isinstance(aggregates, dict):
        return fail(errors, "aggregates is not an object")
    for name in TELEMETRY_REQUIRED_AGGREGATES:
        if name not in aggregates:
            fail(errors, f"missing aggregate {name!r}")

    for full, hist in doc["histograms"].items():
        for key in HISTOGRAM_REQUIRED:
            if key not in hist:
                fail(errors, f"histogram {full!r} missing {key!r}")

    nodes = doc["nodes"]
    if not isinstance(nodes, list):
        return fail(errors, "nodes is not a list")
    for entry in nodes:
        if "node" not in entry or "metrics" not in entry:
            fail(errors, f"node entry missing node/metrics: {entry}")
            continue
        metrics = entry["metrics"]
        # Classify by the component prefixes present; each component that
        # appears must carry its full required set.
        if any(k.startswith("sender.") for k in metrics):
            for k in NODE_SENDER_REQUIRED:
                if k not in metrics:
                    fail(errors, f"node {entry['node']} missing {k!r}")
        if any(k.startswith("receiver.") for k in metrics):
            for k in NODE_RECEIVER_REQUIRED:
                if k not in metrics:
                    fail(errors, f"node {entry['node']} missing {k!r}")

    trace = doc["trace"]
    for key in ("recorded", "dropped"):
        if key not in trace:
            fail(errors, f"trace missing {key!r}")


def check_fleet_runs(doc, errors):
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return fail(errors, "runs missing or empty")
    threads_aware = any("threads" in run for run in runs)
    for i, run in enumerate(runs):
        for key in FLEET_RUN_REQUIRED:
            if key not in run:
                fail(errors, f"runs[{i}] missing {key!r}")
        if threads_aware:
            for key in FLEET_SHARDED_REQUIRED:
                if key not in run:
                    fail(errors, f"runs[{i}] missing {key!r}")
        if run.get("transmissions", 0) <= 0 or run.get("messages", 0) <= 0:
            fail(errors, f"runs[{i}] has no traffic — broken run?")
    if errors or not threads_aware:
        return

    # Determinism oracle across the thread axis: rows that differ only
    # in thread count ran the exact same simulation on the exact same
    # shard layout, so their traffic counters must be identical
    # (DESIGN.md §13: results depend on shards, never threads). This
    # holds regardless of the hardware the bench ran on.
    groups = {}
    for i, run in enumerate(runs):
        if run.get("threads", 0) > 0:
            key = (run["n"], run["sim_seconds"], run["shards"])
            groups.setdefault(key, []).append((i, run))
    for (n, _, shards), members in groups.items():
        if len(members) < 2:
            continue
        oracle = ["transmissions", "deliveries", "messages", "events"]
        first_i, first = members[0]
        for i, run in members[1:]:
            for key in oracle:
                if run.get(key) != first.get(key):
                    fail(errors,
                         f"runs[{i}] {key}={run.get(key)} differs from "
                         f"runs[{first_i}] {key}={first.get(key)} at same "
                         f"(n={n}, shards={shards}) — thread count leaked "
                         "into simulation results")
        # Throughput scaling gate: only enforceable where the machine
        # can actually run the workers in parallel. On a 1-core runner
        # extra threads are pure barrier overhead; the determinism
        # oracle above is the unconditional check.
        for i, run in members[1:]:
            if run.get("n", 0) < 100_000:
                continue
            if run.get("hw_threads", 0) >= run.get("threads", 0) \
                    and run.get("threads", 0) > first.get("threads", 0):
                if run.get("events_per_sec", 0) < first.get("events_per_sec", 0):
                    fail(errors,
                         f"runs[{i}] events/sec regressed vs runs[{first_i}] "
                         f"despite more threads ({run.get('threads')} vs "
                         f"{first.get('threads')}) on hardware with "
                         f"{run.get('hw_threads')} cores")


def check_harvesting(doc, errors):
    for key in HARVEST_TOP_REQUIRED:
        if key not in doc:
            fail(errors, f"missing top-level key {key!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return fail(errors, "runs missing or empty")
    for i, run in enumerate(runs):
        for key in HARVEST_RUN_REQUIRED:
            if key not in run:
                fail(errors, f"runs[{i}] missing {key!r}")
    if errors:
        return

    # The feasibility frontier: harvest power and report rate must both
    # be non-increasing as the sender moves away from the RF source.
    for prev, cur in zip(runs, runs[1:]):
        if cur["distance_m"] <= prev["distance_m"]:
            fail(errors, "runs not sorted by increasing distance")
        if cur["harvest_uw"] > prev["harvest_uw"]:
            fail(errors, f"harvest rises at {cur['distance_m']} m")
        if cur["reports_per_hour"] > prev["reports_per_hour"]:
            fail(errors, f"report rate rises at {cur['distance_m']} m "
                         "— frontier not monotone")
    if runs[0]["reports_per_hour"] <= runs[-1]["reports_per_hour"]:
        fail(errors, "frontier is flat: nearest point does not beat farthest")
    if runs[0]["messages"] <= 0:
        fail(errors, "no traffic at the nearest distance — broken run?")
    # The bench compares two same-seed runs per distance before writing;
    # these flags are the oracle's verdict and the exit-code gate.
    if doc["monotone_frontier"] is not True:
        fail(errors, "monotone_frontier is not true")
    if doc["determinism_ok"] is not True:
        fail(errors, "determinism oracle failed: same-seed digests differ")


def check_chaos_soak(doc, errors):
    for key in CHAOS_TOP_REQUIRED:
        if key not in doc:
            fail(errors, f"missing top-level key {key!r}")
    if errors:
        return

    if doc["campaigns"] <= 0:
        fail(errors, "no campaigns run — broken soak?")
    if doc["faults_armed"] <= 0:
        fail(errors, "no faults armed — campaigns never touched the fleet?")
    if doc["faults_armed"] > doc["faults_generated"]:
        fail(errors, "faults_armed exceeds faults_generated")

    shrinks = doc["shrinks"]
    if not isinstance(shrinks, list):
        return fail(errors, "shrinks is not a list")
    for i, entry in enumerate(shrinks):
        for key in CHAOS_SHRINK_REQUIRED:
            if key not in entry:
                fail(errors, f"shrinks[{i}] missing {key!r}")
        if entry.get("minimal_actions", 0) > entry.get("original_actions", 0):
            fail(errors, f"shrinks[{i}] grew: ddmin must never add actions")

    # The gates. A violation means a graceful-degradation bug escaped the
    # invariant oracles into main; the soak's whole point is that this
    # stays at zero (the repro files in `shrinks` are the debugging
    # starting point when it does not).
    if doc["violations"] != 0:
        fail(errors, f"{doc['violations']} invariant violation(s) across "
                     f"{doc['campaigns_with_violations']} campaign(s)")
    if doc["determinism_ok"] is not True:
        fail(errors, "determinism oracle failed: same-seed campaign replay "
                     "diverged")


def check_ingest(doc, errors):
    for key in INGEST_TOP_REQUIRED:
        if key not in doc:
            fail(errors, f"missing top-level key {key!r}")
    if errors:
        return

    # The acceptance criterion (ISSUE 9): batching multiplies sustained
    # frames/s/gateway by the achieved fill against the same shipped
    # Gateway at batch_max=1. Both numbers come out of the deterministic
    # simulation, so the gate is noise-free.
    if doc["speedup"] < 3.0:
        fail(errors, f"drain speedup {doc['speedup']} below the 3x gate")
    if doc["pipeline_fps"] < 3.0 * doc["baseline_fps"]:
        fail(errors, "pipeline_fps does not clear 3x the single-send floor")
    if doc["baseline_fps"] <= 0 or doc["pipeline_forwarded"] <= 0:
        fail(errors, "no traffic drained — broken run?")
    if doc["pipeline_batches"] <= 0:
        fail(errors, "batched path sent no batches")
    # Dispatch is a wall-clock no-regression guard, not a speedup claim:
    # the flat table collapses 4 probes to 1 on rx-window frames, which
    # on big-LLC hosts nets out to parity with the legacy maps' smaller
    # footprint. 0.9 leaves margin for shared-runner noise.
    if doc["dispatch_speedup"] < 0.9:
        fail(errors, f"dispatch regressed: {doc['dispatch_speedup']}x "
                     "against the legacy three-map replica")
    if doc["dispatch_reports"] <= 0 or doc["rules_fired"] <= 0:
        fail(errors, "dispatch/rules sections saw no work — broken stream?")
    # Dual-run oracle: same seeds, same counters, same FNV-1a payload
    # digests, and identical report decisions across both dispatch paths.
    if doc["determinism_ok"] is not True:
        fail(errors, "determinism oracle failed: same-seed runs diverged")


def check_wur(doc, errors):
    for key in WUR_TOP_REQUIRED:
        if key not in doc:
            fail(errors, f"missing top-level key {key!r}")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        return fail(errors, "rows missing or empty")
    for i, row in enumerate(rows):
        for key in WUR_ROW_REQUIRED:
            if key not in row:
                fail(errors, f"rows[{i}] missing {key!r}")
    if errors:
        return

    by_mode = {}
    for i, row in enumerate(rows):
        mode = row["mode"]
        if mode not in WUR_MODES:
            fail(errors, f"rows[{i}] has unknown mode {mode!r}")
            continue
        by_mode.setdefault(mode, []).append(row)
        if row["expected"] <= 0 or row["delivered"] <= 0:
            fail(errors, f"rows[{i}] ({mode}, n={row['stations']}) saw no "
                         "traffic — broken run?")
    for mode in WUR_MODES:
        if mode not in by_mode:
            fail(errors, f"mode {mode!r} missing from the frontier")
    if errors:
        return

    # The contention frontier per mode: delivery ratio must not *rise*
    # as stations are added (the bench allows a 2% slack for CSMA
    # scheduling noise before declaring the frontier broken), and the
    # massive-IoT claim needs at least one >= 1000-station point.
    for mode, mode_rows in by_mode.items():
        for prev, cur in zip(mode_rows, mode_rows[1:]):
            if cur["stations"] <= prev["stations"]:
                fail(errors, f"{mode} rows not sorted by station count")
            if cur["delivery_ratio"] > prev["delivery_ratio"] + 0.02:
                fail(errors, f"{mode} delivery rises at n={cur['stations']} "
                             "— frontier not monotone")
        if max(r["stations"] for r in mode_rows) < 1000:
            fail(errors, f"{mode} frontier stops short of 1000 stations")

    # The tentpole power claim: the 802.11ba companion receiver listens
    # at uW class, visible in the power accounting (not a spec constant).
    if not 0.0 < doc["wur_listen_uw"] < 1000.0:
        fail(errors, f"wur_listen_uw={doc['wur_listen_uw']} is not uW-class "
                     "(want 0 < x < 1000)")
    if doc["monotone_frontier"] is not True:
        fail(errors, "monotone_frontier is not true")
    if doc["determinism_ok"] is not True:
        fail(errors, "determinism oracle failed: same-seed digests differ")


def check_file(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"unreadable or invalid JSON: {e}"]

    if doc.get("schema") == TELEMETRY_SCHEMA:
        check_telemetry(doc, errors)
    elif doc.get("bench") == "scale_fleet" and "runs" in doc:
        check_fleet_runs(doc, errors)
    elif doc.get("bench") == "ablate_harvesting":
        check_harvesting(doc, errors)
    elif doc.get("bench") == "chaos_soak":
        check_chaos_soak(doc, errors)
    elif doc.get("bench") == "ingest_throughput":
        check_ingest(doc, errors)
    elif doc.get("bench") == "ablate_wur":
        check_wur(doc, errors)
    else:
        errors.append("unrecognized document: not wile-telemetry-v1, "
                      "a scale_fleet runs table, an ablate_harvesting "
                      "frontier, a chaos_soak summary, an "
                      "ingest_throughput verdict, or an ablate_wur "
                      "contention study")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    bad = 0
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            bad += 1
            for e in errors:
                print(f"{path}: {e}", file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
