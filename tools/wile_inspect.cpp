// wile_inspect — decode a pcap capture of Wi-LE traffic.
//
// The tcpdump of this repository: reads a classic pcap file (as written
// by the simulator's CaptureTap, or by a real monitor-mode card using
// LINKTYPE_IEEE802_11) and prints one line per frame, decoding Wi-LE
// vendor elements when present.
//
// Usage:
//   wile_inspect <capture.pcap> [--key <32 hex chars>] [--wile-only]
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "ble/pdu.hpp"
#include "dot11/frame.hpp"
#include "dot11/mgmt.hpp"
#include "util/hex.hpp"
#include "util/pcap.hpp"
#include "wile/codec.hpp"

using namespace wile;

namespace {

void print_wifi_frame(double t, BytesView frame, const core::Codec& codec,
                      bool wile_only) {
  if (dot11::is_control_frame(frame)) {
    if (wile_only) return;
    if (auto ack = dot11::parse_ack(frame)) {
      std::printf("%10.6f  ctrl/ack       RA %s%s\n", t, ack->receiver.to_string().c_str(),
                  ack->fcs_ok ? "" : "  [BAD FCS]");
      return;
    }
    if (auto poll = dot11::parse_ps_poll(frame)) {
      std::printf("%10.6f  ctrl/ps-poll   AID %u  BSSID %s\n", t, poll->aid,
                  poll->bssid.to_string().c_str());
      return;
    }
    std::printf("%10.6f  ctrl/?         %zu bytes\n", t, frame.size());
    return;
  }

  auto parsed = dot11::parse_mpdu(frame);
  if (!parsed) {
    if (!wile_only) std::printf("%10.6f  <unparseable %zu bytes>\n", t, frame.size());
    return;
  }

  // Wi-LE content, if any.
  std::string wile_note;
  if (parsed->header.fc.is_mgmt(dot11::MgmtSubtype::Beacon)) {
    if (auto beacon = dot11::Beacon::decode(parsed->body)) {
      for (const core::Fragment& f : codec.decode_all(beacon->ies)) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "  WiLE dev=%#x seq=%u frag=%u/%u type=%u data=%s", f.device_id,
                      f.sequence, f.frag_index + 1, f.frag_count,
                      static_cast<unsigned>(f.type),
                      to_hex(BytesView{f.data.data(),
                                       std::min<std::size_t>(f.data.size(), 16)})
                          .c_str());
        wile_note += buf;
      }
      const auto ssid = dot11::parse_ssid_ie(beacon->ies);
      if (ssid && !ssid->empty()) {
        if (auto stuffed = core::decode_ssid_stuffed(*ssid)) {
          wile_note += "  [SSID-stuffed dev=" + std::to_string(stuffed->device_id) + "]";
        }
      }
    }
  }
  if (wile_only && wile_note.empty()) return;

  std::printf("%10.6f  %-14s A1 %s  A2 %s  seq %u  %zuB%s%s\n", t,
              parsed->header.fc.describe().c_str(), parsed->header.addr1.to_string().c_str(),
              parsed->header.addr2.to_string().c_str(), parsed->header.sequence_number(),
              frame.size(), parsed->fcs_ok ? "" : "  [BAD FCS]", wile_note.c_str());
}

void print_ble_frame(double t, BytesView frame) {
  for (std::uint8_t channel : ble::kAdvChannels) {
    auto air = ble::parse_air_packet(frame, channel);
    if (!air || !air->crc_ok) continue;
    if (auto pdu = ble::AdvertisingPdu::decode(air->pdu)) {
      std::printf("%10.6f  ble/adv ch%u    AdvA %s  %zuB adv data\n", t, channel,
                  pdu->advertiser.to_string().c_str(), pdu->adv_data.size());
      return;
    }
  }
  std::printf("%10.6f  ble/?          %zu bytes\n", t, frame.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <capture.pcap> [--key <32 hex chars>] [--wile-only]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  std::optional<Bytes> key;
  bool wile_only = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--key") == 0 && i + 1 < argc) {
      key = from_hex(argv[++i]);
      if (!key || key->size() != 16) {
        std::fprintf(stderr, "error: --key expects 32 hex characters\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--wile-only") == 0) {
      wile_only = true;
    } else {
      std::fprintf(stderr, "error: unknown argument %s\n", argv[i]);
      return 2;
    }
  }

  const auto capture = read_pcap_file(path);
  if (!capture) {
    std::fprintf(stderr, "error: cannot read %s as a pcap capture\n", path.c_str());
    return 1;
  }

  const core::Codec codec = key ? core::Codec{*key} : core::Codec{};
  std::printf("# %s: %zu frame(s), link type %u\n", path.c_str(),
              capture->records.size(), static_cast<unsigned>(capture->link_type));
  for (const PcapRecord& rec : capture->records) {
    const double t = to_seconds(rec.timestamp.since_epoch());
    if (capture->link_type == PcapLinkType::BluetoothLeLl) {
      print_ble_frame(t, rec.frame);
    } else {
      print_wifi_frame(t, rec.frame, codec, wile_only);
    }
  }
  return 0;
}
