#!/usr/bin/env sh
# Build the whole tree with ASan+UBSan (-DWILE_SANITIZE=ON) in a separate
# build directory and run the tier-1 test suite under the sanitizers.
# Usage: tools/run_sanitized_tests.sh [ctest-args...]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${WILE_SANITIZE_BUILD_DIR:-$repo_root/build-asan}"

cmake -B "$build_dir" -S "$repo_root" -DWILE_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

# halt_on_error via -fno-sanitize-recover=all; keep odr/leak checks on.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)" "$@"
