#include "phy/energy.hpp"

#include "phy/airtime.hpp"

namespace wile::phy {

Joules wifi_energy_per_bit(WifiRate rate, Watts tx_power) {
  const double bits_per_second = rate_info(rate).bits_per_us * 1e6;
  return {tx_power.value / bits_per_second};
}

Joules ble_raw_energy_per_bit(Watts tx_power) {
  const double bits_per_second = BlePhy::kBitsPerUs * 1e6;
  return {tx_power.value / bits_per_second};
}

Joules ble_effective_energy_per_bit(std::size_t adv_data_bytes, int channels,
                                    Watts tx_power) {
  // ADV payload = AdvA (6 bytes) + AdvData.
  const Duration per_channel = BlePhy::pdu_airtime(6 + adv_data_bytes);
  const Joules event_energy = tx_power * Duration{per_channel.count() * channels};
  const double useful_bits = static_cast<double>(adv_data_bytes) * 8.0;
  return {event_energy.value / useful_bits};
}

Joules wifi_effective_energy_per_bit(std::size_t mpdu_bytes, WifiRate rate,
                                     Watts tx_power) {
  const Joules frame_energy = tx_power * frame_airtime(mpdu_bytes, rate);
  return {frame_energy.value / mpdu_bits(mpdu_bytes)};
}

}  // namespace wile::phy
