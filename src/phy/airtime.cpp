#include "phy/airtime.hpp"

#include <cmath>
#include <stdexcept>

namespace wile::phy {

Duration frame_airtime(std::size_t mpdu_bytes, WifiRate rate, Band band) {
  const RateInfo& info = rate_info(rate);
  // The 6 us signal extension exists only in the 2.4 GHz band.
  const double signal_ext_us = band == Band::G2_4 ? 6.0 : 0.0;
  double us = 0.0;
  switch (info.modulation) {
    case Modulation::Dsss: {
      if (band == Band::G5) {
        throw std::invalid_argument("DSSS rates are not defined at 5 GHz");
      }
      // Long preamble (144 us) + PLCP header (48 us), both at 1 Mbps.
      constexpr double kPreamblePlcpUs = 192.0;
      us = kPreamblePlcpUs + mpdu_bits(mpdu_bytes) / info.bits_per_us;
      break;
    }
    case Modulation::Ofdm: {
      // 16 us preamble + 4 us SIGNAL + data symbols (+ signal extension
      // at 2.4 GHz). SERVICE(16) + TAIL(6) bits ride with the payload.
      const double payload_bits = 16.0 + 6.0 + mpdu_bits(mpdu_bytes);
      const double n_sym = std::ceil(payload_bits / static_cast<double>(info.n_dbps));
      us = 16.0 + 4.0 + 4.0 * n_sym + signal_ext_us;
      break;
    }
    case Modulation::HtMixed: {
      // L-STF(8) + L-LTF(8) + L-SIG(4) + HT-SIG(8) + HT-STF(4) +
      // HT-LTF(4) = 36 us preamble for one spatial stream.
      const double payload_bits = 16.0 + 6.0 + mpdu_bits(mpdu_bytes);
      const double n_sym = std::ceil(payload_bits / static_cast<double>(info.n_dbps));
      const double t_sym = info.short_gi ? 3.6 : 4.0;
      us = 36.0 + t_sym * n_sym + signal_ext_us;
      break;
    }
  }
  return from_seconds(us / 1e6);
}

Duration ack_airtime(Band band) {
  constexpr std::size_t kAckBytes = 14;  // FC(2) Dur(2) RA(6) FCS(4)
  return frame_airtime(kAckBytes, kControlResponseRate, band);
}

}  // namespace wile::phy
