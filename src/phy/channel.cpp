#include "phy/channel.hpp"

#include <cmath>

namespace wile::phy {

namespace {

/// Logistic PER curve: ~0.5 at the threshold, rolling off over ~2 dB.
/// Scaled to frame length relative to the 1000-byte reference the
/// sensitivity thresholds are quoted for.
double logistic_per(double snr_db, double threshold_db, std::size_t mpdu_bytes) {
  constexpr double kSlopePerDb = 2.0;
  const double x = (snr_db - threshold_db) * kSlopePerDb;
  const double per_ref = 1.0 / (1.0 + std::exp(x));
  // Convert the reference PER to a per-bit success probability and
  // re-scale to the actual frame length.
  constexpr double kRefBits = 1000.0 * 8.0;
  const double bit_success = std::pow(1.0 - per_ref, 1.0 / kRefBits);
  const double bits = static_cast<double>(mpdu_bytes) * 8.0;
  return 1.0 - std::pow(bit_success, bits);
}

double bisect_range(double lo, double hi, const auto& per_at, double target_per) {
  // PER is monotone increasing in distance; find the crossing.
  if (per_at(hi) < target_per) return hi;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (per_at(mid) < target_per) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

double Channel::rx_power_dbm(double tx_power_dbm, double distance_m) const {
  const double d = std::max(distance_m, 0.1);
  const double path_loss =
      config_.reference_loss_db + 10.0 * config_.path_loss_exponent * std::log10(d);
  return tx_power_dbm - path_loss;
}

double Channel::max_audible_range_m(double tx_power_dbm, double floor_dbm) const {
  const double budget_db = tx_power_dbm - config_.reference_loss_db - floor_dbm;
  const double d = std::pow(10.0, budget_db / (10.0 * config_.path_loss_exponent));
  return std::max(d, 0.1);
}

double Channel::packet_error_rate(double snr, WifiRate rate, std::size_t mpdu_bytes) const {
  return logistic_per(snr, rate_info(rate).min_snr_db, mpdu_bytes);
}

double Channel::max_range_m(double tx_power_dbm, WifiRate rate, std::size_t mpdu_bytes,
                            double target_per) const {
  const auto per_at = [&](double d) {
    return packet_error_rate(snr_db(tx_power_dbm, d), rate, mpdu_bytes);
  };
  return bisect_range(0.1, 10'000.0, per_at, target_per);
}

bool Channel::frame_lost(Rng& rng, double tx_power_dbm, double distance_m, WifiRate rate,
                         std::size_t mpdu_bytes) const {
  double snr = snr_db(tx_power_dbm, distance_m);
  if (config_.shadowing_sigma_db > 0.0) {
    snr += rng.gaussian() * config_.shadowing_sigma_db;
  }
  return rng.chance(packet_error_rate(snr, rate, mpdu_bytes));
}

double Channel::ble_packet_error_rate(double snr, std::size_t pdu_bytes) const {
  constexpr double kBleThresholdDb = 25.0;  // matches MCS7-class sensitivity:
  // BLE at 0 dBm reaches "a few meters" like 72 Mbps WiFi (paper §5.4),
  // so the two links share a detection threshold in this model.
  return logistic_per(snr, kBleThresholdDb, pdu_bytes);
}

double Channel::ble_max_range_m(double tx_power_dbm, std::size_t pdu_bytes,
                                double target_per) const {
  const auto per_at = [&](double d) {
    return ble_packet_error_rate(snr_db(tx_power_dbm, d), pdu_bytes);
  };
  return bisect_range(0.1, 10'000.0, per_at, target_per);
}

}  // namespace wile::phy
