#include "phy/wur_phy.hpp"

namespace wile::phy {
namespace {

// Frame-control byte for a wake-up frame body. 802.11ba's real FC is a
// 3-bit type plus reserved bits; we use a fixed magic so that WUR frame
// bodies can never be confused with Wi-LE beacon fragments or 802.11
// MPDUs sharing the medium.
constexpr std::uint8_t kWurFrameControl = 0xBA;

// CRC-8/ATM (poly 0x07), enough for a 5-byte body and cheap to model.
std::uint8_t crc8(BytesView data) {
  std::uint8_t crc = 0;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80) != 0 ? static_cast<std::uint8_t>((crc << 1) ^ 0x07)
                              : static_cast<std::uint8_t>(crc << 1);
    }
  }
  return crc;
}

}  // namespace

Bytes encode_wakeup_frame(const WakeUpFrame& frame) {
  Bytes body(WurPhy::kFrameBytes);
  body[0] = kWurFrameControl;
  body[1] = frame.group_addressed ? 0x01 : 0x00;
  const std::uint16_t addr = frame.address & WurPhy::kMaxId;
  body[2] = static_cast<std::uint8_t>(addr & 0xFF);
  body[3] = static_cast<std::uint8_t>(addr >> 8);
  body[4] = frame.seq;
  body[5] = crc8(BytesView{body.data(), 5});
  return body;
}

std::optional<WakeUpFrame> decode_wakeup_frame(BytesView body) {
  if (body.size() != WurPhy::kFrameBytes) return std::nullopt;
  if (body[0] != kWurFrameControl) return std::nullopt;
  if ((body[1] & ~0x01) != 0) return std::nullopt;  // reserved flag bits
  if ((body[3] & ~0x0F) != 0) return std::nullopt;  // address is 12-bit
  if (body[5] != crc8(body.subspan(0, 5))) return std::nullopt;
  WakeUpFrame frame;
  frame.group_addressed = (body[1] & 0x01) != 0;
  frame.address = static_cast<std::uint16_t>(body[2] | (body[3] << 8));
  frame.seq = body[4];
  return frame;
}

}  // namespace wile::phy
