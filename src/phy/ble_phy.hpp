// Bluetooth Low Energy 4.x PHY timing (1 Mbps GFSK).
//
// On-air format: preamble (1 B) + access address (4 B) + PDU header (2 B)
// + payload (<= 37 B advertising / <= 27 B data in 4.0/4.1) + CRC (3 B),
// all at 1 us per bit. T_IFS between packets of an event is 150 us.
// Bluetooth Core v4.2 Vol 6 Part B.
#pragma once

#include <cstddef>

#include "util/units.hpp"

namespace wile::phy {

struct BlePhy {
  static constexpr double kBitsPerUs = 1.0;  // BLE 1M
  static constexpr std::size_t kPreambleBytes = 1;
  static constexpr std::size_t kAccessAddressBytes = 4;
  static constexpr std::size_t kHeaderBytes = 2;
  static constexpr std::size_t kCrcBytes = 3;
  static constexpr std::size_t kMaxAdvPayload = 37;   // AdvA(6) + AdvData(<=31)
  static constexpr std::size_t kMaxAdvData = 31;
  static constexpr Duration kTifs = Duration{150};

  /// Airtime of a PDU with `payload_bytes` of PDU payload.
  static constexpr Duration pdu_airtime(std::size_t payload_bytes) {
    const std::size_t on_air =
        kPreambleBytes + kAccessAddressBytes + kHeaderBytes + payload_bytes + kCrcBytes;
    return Duration{static_cast<std::int64_t>(
        static_cast<double>(on_air) * 8.0 / kBitsPerUs)};
  }
};

}  // namespace wile::phy
