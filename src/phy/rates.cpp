#include "phy/rates.hpp"

#include <array>
#include <stdexcept>

namespace wile::phy {

namespace {

// min_snr_db values follow the usual receiver-sensitivity ladder
// (≈ -94 dBm at 1 Mbps up to ≈ -70 dBm at MCS7 over a -95 dBm noise
// floor). They feed the SNR -> PER link model in channel.cpp.
constexpr std::array<RateInfo, 21> kRates{{
    {WifiRate::B1, Modulation::Dsss, 1.0, 0, false, 1.0, "1M"},
    {WifiRate::B2, Modulation::Dsss, 2.0, 0, false, 3.0, "2M"},
    {WifiRate::B5_5, Modulation::Dsss, 5.5, 0, false, 5.0, "5.5M"},
    {WifiRate::B11, Modulation::Dsss, 11.0, 0, false, 8.0, "11M"},
    {WifiRate::G6, Modulation::Ofdm, 6.0, 24, false, 5.0, "6M"},
    {WifiRate::G9, Modulation::Ofdm, 9.0, 36, false, 6.0, "9M"},
    {WifiRate::G12, Modulation::Ofdm, 12.0, 48, false, 8.0, "12M"},
    {WifiRate::G18, Modulation::Ofdm, 18.0, 72, false, 10.0, "18M"},
    {WifiRate::G24, Modulation::Ofdm, 24.0, 96, false, 13.0, "24M"},
    {WifiRate::G36, Modulation::Ofdm, 36.0, 144, false, 17.0, "36M"},
    {WifiRate::G48, Modulation::Ofdm, 48.0, 192, false, 21.0, "48M"},
    {WifiRate::G54, Modulation::Ofdm, 54.0, 216, false, 23.0, "54M"},
    {WifiRate::Mcs0, Modulation::HtMixed, 6.5, 26, false, 5.0, "mcs0"},
    {WifiRate::Mcs1, Modulation::HtMixed, 13.0, 52, false, 8.0, "mcs1"},
    {WifiRate::Mcs2, Modulation::HtMixed, 19.5, 78, false, 11.0, "mcs2"},
    {WifiRate::Mcs3, Modulation::HtMixed, 26.0, 104, false, 14.0, "mcs3"},
    {WifiRate::Mcs4, Modulation::HtMixed, 39.0, 156, false, 18.0, "mcs4"},
    {WifiRate::Mcs5, Modulation::HtMixed, 52.0, 208, false, 22.0, "mcs5"},
    {WifiRate::Mcs6, Modulation::HtMixed, 58.5, 234, false, 24.0, "mcs6"},
    {WifiRate::Mcs7, Modulation::HtMixed, 65.0, 260, false, 25.0, "mcs7"},
    {WifiRate::Mcs7Sgi, Modulation::HtMixed, 72.2, 260, true, 25.0, "72M"},
}};

}  // namespace

const RateInfo& rate_info(WifiRate rate) {
  for (const auto& info : kRates) {
    if (info.rate == rate) return info;
  }
  throw std::logic_error("rate_info: unknown rate");
}

std::span<const RateInfo> all_rates() { return kRates; }

std::optional<WifiRate> parse_rate(std::string_view name) {
  for (const auto& info : kRates) {
    if (info.name == name) return info.rate;
  }
  return std::nullopt;
}

}  // namespace wile::phy
