#include "phy/ble_phy.hpp"

namespace wile::phy {
// Constants only; this TU anchors the header in the library.
static_assert(BlePhy::pdu_airtime(0).count() == 80);  // 10 bytes * 8 us
}  // namespace wile::phy
