// 802.11 frame airtime model and MAC interframe timing.
//
// Airtime is what couples frame sizes to energy: E_tx = P_tx * airtime.
// We implement the standard's per-PPDU duration formulas:
//
//  * DSSS/CCK (802.11b): 192 us long preamble+PLCP (or 96 us short),
//    then payload bytes at the data rate.
//  * Legacy OFDM (802.11g): 16 us preamble + 4 us SIGNAL +
//    4 us * ceil((16 + 6 + 8*len) / N_DBPS) + 6 us signal extension
//    (2.4 GHz band).
//  * HT mixed mode (802.11n): 20 us legacy preamble + 8 us HT-SIG +
//    4 us HT-STF + 4 us HT-LTF, then 4 us (or 3.6 us SGI) symbols.
//
// IEEE 802.11-2012 §17/§18/§20.
#pragma once

#include "phy/rates.hpp"
#include "util/units.hpp"

namespace wile::phy {

/// 2.4 GHz ERP MAC timing constants (us).
struct MacTiming {
  static constexpr Duration kSifs = Duration{10};
  static constexpr Duration kSlot = Duration{9};   // ERP short slot
  static constexpr Duration kDifs = Duration{28};  // SIFS + 2*slot
  static constexpr int kCwMin = 15;
  static constexpr int kCwMax = 1023;
  /// Dot11 retry limit used by our MAC.
  static constexpr int kRetryLimit = 7;
};

/// Duration on air of a PPDU carrying `mpdu_bytes` (MAC header + body +
/// FCS) at `rate`. Includes preamble/PLCP per the modulation family.
/// Throws std::invalid_argument for DSSS rates at 5 GHz (not defined
/// there).
Duration frame_airtime(std::size_t mpdu_bytes, WifiRate rate, Band band = Band::G2_4);

/// Airtime of an 802.11 ACK control frame (14 bytes) at the control
/// response rate.
Duration ack_airtime(Band band = Band::G2_4);

/// Bits that count toward goodput within the PPDU (MPDU bits only).
inline double mpdu_bits(std::size_t mpdu_bytes) {
  return static_cast<double>(mpdu_bytes) * 8.0;
}

}  // namespace wile::phy
