// IEEE 802.11ba wake-up radio (WUR) PHY timing and frame codec.
//
// The WUR PPDU rides inside a regular 20 MHz 802.11 channel: a 20 us
// legacy preamble (L-STF + L-LTF + L-SIG, so legacy stations defer) and
// a 4 us BPSK-Mark symbol, then a WUR-Sync field and an OOK body in a
// 4 MHz subchannel. Two data rates are defined: low (62.5 kb/s, 16 us
// per bit, 128 us sync) and high (250 kb/s, 4 us per bit, 64 us sync).
// The wake-up frame body we model is the minimal 48-bit frame from the
// 802.11ba performance-evaluation literature: frame control, an
// address field carrying a 12-bit WUR ID (unicast) or group ID
// (multicast), a sequence counter, and an FCS.
//
// The companion receiver that decodes this waveform is a separate
// uW-class circuit (power::WurReceiverModel in power/devices.hpp); the
// main 802.11 radio stays in deep sleep until a matching frame arrives.
#pragma once

#include <cstdint>
#include <optional>

#include "util/byte_buffer.hpp"
#include "util/units.hpp"

namespace wile::phy {

/// 802.11ba data rates for the OOK body.
enum class WurRate : std::uint8_t {
  kLow = 0,   // 62.5 kb/s: 16 us/bit, 128 us WUR-Sync
  kHigh = 1,  // 250 kb/s:   4 us/bit,  64 us WUR-Sync
};

struct WurPhy {
  /// 802.11 legacy preamble (L-STF + L-LTF + L-SIG) that makes WUR
  /// PPDUs defer-able by ordinary stations.
  static constexpr Duration kLegacyPreamble = Duration{20};
  /// BPSK-Mark symbol following the legacy preamble (802.11ba D3.0).
  static constexpr Duration kBpskMark = Duration{4};
  static constexpr Duration kSyncLow = Duration{128};
  static constexpr Duration kSyncHigh = Duration{64};
  /// Wake-up frame body: FC(8) + flags(8) + address(16) + seq(8) + FCS(8).
  static constexpr std::size_t kFrameBodyBits = 48;
  /// Encoded wake-up frame body in bytes (kFrameBodyBits / 8).
  static constexpr std::size_t kFrameBytes = kFrameBodyBits / 8;
  /// WUR IDs and group IDs are 12-bit (802.11ba address space).
  static constexpr std::uint16_t kMaxId = 0x0FFF;

  static constexpr Duration bit_time(WurRate rate) {
    return rate == WurRate::kLow ? Duration{16} : Duration{4};
  }

  static constexpr Duration sync_time(WurRate rate) {
    return rate == WurRate::kLow ? kSyncLow : kSyncHigh;
  }

  /// Airtime of a WUR PPDU carrying `body_bits` of OOK payload.
  static constexpr Duration ppdu_airtime(std::size_t body_bits, WurRate rate) {
    return kLegacyPreamble + kBpskMark + sync_time(rate) +
           Duration{static_cast<std::int64_t>(body_bits) * bit_time(rate).count()};
  }

  /// Airtime of the standard 48-bit wake-up frame: 920 us at the low
  /// rate, 280 us at the high rate.
  static constexpr Duration frame_airtime(WurRate rate) {
    return ppdu_airtime(kFrameBodyBits, rate);
  }
};

/// A decoded 802.11ba wake-up frame.
struct WakeUpFrame {
  /// True = `address` is a group ID (wakes every member); false =
  /// unicast WUR ID of one companion receiver.
  bool group_addressed = false;
  std::uint16_t address = 0;  // 12-bit WUR ID or group ID
  std::uint8_t seq = 0;       // wake-frame sequence counter

  friend bool operator==(const WakeUpFrame&, const WakeUpFrame&) = default;
};

/// Serialize a wake-up frame to its 6-byte on-air body. Addresses are
/// masked to 12 bits.
Bytes encode_wakeup_frame(const WakeUpFrame& frame);

/// Parse a 6-byte wake-up frame body. Returns nullopt when the buffer
/// is not a WUR frame (wrong length, frame control, or FCS) — Wi-LE
/// beacons and 802.11 MPDUs never alias into a valid WUR frame because
/// of the magic frame-control byte plus checksum.
std::optional<WakeUpFrame> decode_wakeup_frame(BytesView body);

}  // namespace wile::phy
