// Physical-layer energy-per-bit accounting (paper §1 and experiment E6).
//
// The paper's motivating observation: "the energy required to transmit
// one bit of data using Bluetooth is 275-300 nJ/bit while with WiFi it
// is 10-100 depending on the bitrate". We reproduce both numbers:
//
//  * WiFi: energy/bit = total TX power draw / PHY data rate. With the
//    ESP32-class 600 mW TX draw this spans 100 nJ/bit at 6 Mbps down to
//    ~8 nJ/bit at 72 Mbps — the cited 10-100 range.
//  * BLE: the cited 275-300 nJ/bit figures (Mikhaylov'13, Siekkinen'12)
//    are *effective* numbers: a BLE advertising event repeats the PDU on
//    three channels and each 31-byte payload drags 16 bytes of framing,
//    so the useful-bit energy is ~5x the raw 1 Mbps PHY energy.
#pragma once

#include "phy/ble_phy.hpp"
#include "phy/rates.hpp"
#include "util/units.hpp"

namespace wile::phy {

/// Total radio power draw while transmitting (device-level, at 0 dBm RF).
/// Calibrated against ESP32 / CC2541 datasheet currents.
constexpr Watts kWifiTxPowerDraw = {0.600};  // ~182 mA at 3.3 V
constexpr Watts kBleTxPowerDraw = {0.0615};  // ~20.5 mA at 3.0 V

/// WiFi PHY energy per MPDU bit at the given rate (preamble excluded —
/// the number the literature quotes is the steady-state per-bit cost).
Joules wifi_energy_per_bit(WifiRate rate, Watts tx_power = kWifiTxPowerDraw);

/// Raw BLE PHY energy per on-air bit (1 Mbps GFSK).
Joules ble_raw_energy_per_bit(Watts tx_power = kBleTxPowerDraw);

/// Effective BLE energy per *useful* payload bit for an advertising event
/// carrying `adv_data_bytes`, repeated on `channels` advertising channels
/// (3 in a standard event). This is the 275-300 nJ/bit regime.
Joules ble_effective_energy_per_bit(std::size_t adv_data_bytes = 31, int channels = 3,
                                    Watts tx_power = kBleTxPowerDraw);

/// WiFi effective energy per useful bit for a whole PPDU: includes
/// preamble/PLCP airtime, so small frames at high rates show the
/// overhead-dominated regime.
Joules wifi_effective_energy_per_bit(std::size_t mpdu_bytes, WifiRate rate,
                                     Watts tx_power = kWifiTxPowerDraw);

}  // namespace wile::phy
