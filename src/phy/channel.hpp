// Radio propagation and link-quality model.
//
// A log-distance path-loss channel with optional shadowing, mapping
// transmit power and distance to received power, SNR, and packet error
// rate per 802.11 rate. The paper notes Wi-LE at 0 dBm / 72 Mbps has
// "a similar range as BLE at the same transmission power (i.e., a few
// meters)"; this model is what lets tests and benches check that claim.
#pragma once

#include <cstddef>

#include "phy/rates.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace wile::phy {

/// Propagation speed of the radio wave. The sharded engine
/// (sim/parallel.hpp) derives its conservative-lookahead lower bound
/// from this: a transmission starting at a shard boundary cannot be
/// heard `d` meters into the neighbor before d / c seconds elapse.
inline constexpr double kSpeedOfLightMps = 299'792'458.0;

struct ChannelConfig {
  double path_loss_exponent = 3.0;   // indoor
  double reference_loss_db = 40.0;   // at 1 m, 2.4 GHz
  double noise_floor_dbm = -95.0;
  double shadowing_sigma_db = 0.0;   // log-normal shadowing; 0 = off

  /// Defaults for each band; 5 GHz pays ~6.4 dB more reference loss
  /// (free-space scales with f^2: 20*log10(5.5/2.4) ≈ 7.2 dB, a little
  /// less indoors).
  static ChannelConfig for_band(Band band) {
    ChannelConfig cfg;
    if (band == Band::G5) cfg.reference_loss_db = 46.4;
    return cfg;
  }
};

class Channel {
 public:
  explicit Channel(ChannelConfig config = {}) : config_(config) {}

  [[nodiscard]] const ChannelConfig& config() const { return config_; }

  /// Received power for a transmission at `tx_power_dbm` over `distance_m`
  /// (deterministic part only; shadowing is sampled separately).
  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, double distance_m) const;

  /// Largest distance at which rx_power_dbm(tx_power_dbm, d) still
  /// reaches `floor_dbm` — the analytic inversion of the log-distance
  /// model. The Medium's spatial index uses this to bound how far a
  /// transmission can possibly be heard (floor = the carrier-sense
  /// threshold). Never below the 0.1 m near-field clamp of
  /// rx_power_dbm.
  [[nodiscard]] double max_audible_range_m(double tx_power_dbm, double floor_dbm) const;

  [[nodiscard]] double snr_db(double tx_power_dbm, double distance_m) const {
    return rx_power_dbm(tx_power_dbm, distance_m) - config_.noise_floor_dbm;
  }

  /// Packet error rate for an `mpdu_bytes` frame at `rate` given `snr`.
  /// Smooth logistic roll-off around the rate's sensitivity threshold,
  /// scaled by frame length (longer frames fail more).
  [[nodiscard]] double packet_error_rate(double snr, WifiRate rate,
                                         std::size_t mpdu_bytes) const;

  /// Max distance at which PER for the given frame stays below
  /// `target_per`. Bisection over the monotone PER-vs-distance curve.
  [[nodiscard]] double max_range_m(double tx_power_dbm, WifiRate rate,
                                   std::size_t mpdu_bytes, double target_per = 0.1) const;

  /// Sample whether a frame is lost, applying shadowing if configured.
  bool frame_lost(Rng& rng, double tx_power_dbm, double distance_m, WifiRate rate,
                  std::size_t mpdu_bytes) const;

  /// BLE link: same propagation, GFSK sensitivity ladder baked into a
  /// single threshold (-70 dBm-class receivers need about 10 dB SNR over
  /// a -95 dBm floor for 10% PER on a 39-byte PDU).
  [[nodiscard]] double ble_packet_error_rate(double snr, std::size_t pdu_bytes) const;
  [[nodiscard]] double ble_max_range_m(double tx_power_dbm, std::size_t pdu_bytes,
                                       double target_per = 0.1) const;

 private:
  ChannelConfig config_;
};

}  // namespace wile::phy
