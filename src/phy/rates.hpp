// 802.11 b/g/n (2.4 GHz, 20 MHz) physical rates.
//
// The ESP32 the paper prototypes on supports exactly this set. Each rate
// carries the parameters the airtime model needs: modulation family,
// data bits per OFDM symbol, and the legacy rate field encoding.
// The paper's Wi-LE measurement uses "a physical bitrate of 72 Mbps"
// — HT MCS 7, 20 MHz, short guard interval (Mcs7Sgi here).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace wile::phy {

/// Radio band. §1 of the paper: low-power WiFi enables "the use of the
/// 5 GHz spectrum (allowing devices to avoid the increasingly crowded
/// 2.4 GHz spectrum used by BLE)". 5 GHz drops DSSS rates and the 6 us
/// OFDM signal extension, and pays ~6 dB more free-space path loss.
enum class Band : std::uint8_t {
  G2_4,
  G5,
};

enum class Modulation : std::uint8_t {
  Dsss,      // 802.11b: DBPSK/DQPSK/CCK
  Ofdm,      // 802.11g: legacy OFDM
  HtMixed,   // 802.11n: HT mixed-mode, 20 MHz
};

enum class WifiRate : std::uint8_t {
  // 802.11b
  B1,
  B2,
  B5_5,
  B11,
  // 802.11g (legacy OFDM)
  G6,
  G9,
  G12,
  G18,
  G24,
  G36,
  G48,
  G54,
  // 802.11n HT20, long GI (MCS 0-7)
  Mcs0,
  Mcs1,
  Mcs2,
  Mcs3,
  Mcs4,
  Mcs5,
  Mcs6,
  Mcs7,
  // 802.11n HT20, short GI, MCS 7 — the 72.2 Mbps mode the paper uses.
  Mcs7Sgi,
};

struct RateInfo {
  WifiRate rate;
  Modulation modulation;
  double bits_per_us;       // PHY data rate (Mbps == bits/us)
  std::uint16_t n_dbps;     // data bits per symbol (OFDM/HT); 0 for DSSS
  bool short_gi;            // HT short guard interval (3.6 us symbols)
  double min_snr_db;        // SNR needed for ~10% PER at 1000B (link model)
  std::string_view name;
};

/// Static descriptor for a rate. Never fails; the enum is closed.
const RateInfo& rate_info(WifiRate rate);

/// All rates, for table-driven tests and sweeps.
std::span<const RateInfo> all_rates();

/// Parse "72M", "6M", "5.5M", "mcs7"... used by example CLI flags.
std::optional<WifiRate> parse_rate(std::string_view name);

/// The mandatory basic rate used for ACK/control responses in our 2.4 GHz
/// ERP network model.
constexpr WifiRate kControlResponseRate = WifiRate::G24;

}  // namespace wile::phy
