#include "util/pcap.hpp"

#include <iterator>
#include <stdexcept>

namespace wile {

namespace detail {

Bytes pcap_global_header(PcapLinkType link_type) {
  ByteWriter w(24);
  w.u32le(0xa1b2c3d4);  // magic, microsecond resolution
  w.u16le(2);           // version major
  w.u16le(4);           // version minor
  w.u32le(0);           // thiszone
  w.u32le(0);           // sigfigs
  w.u32le(65535);       // snaplen
  w.u32le(static_cast<std::uint32_t>(link_type));
  return w.take();
}

Bytes pcap_record_header(TimePoint timestamp, std::size_t length) {
  const std::int64_t us = timestamp.us();
  ByteWriter w(16);
  w.u32le(static_cast<std::uint32_t>(us / 1'000'000));
  w.u32le(static_cast<std::uint32_t>(us % 1'000'000));
  w.u32le(static_cast<std::uint32_t>(length));  // captured length
  w.u32le(static_cast<std::uint32_t>(length));  // original length
  return w.take();
}

}  // namespace detail

PcapWriter::PcapWriter(const std::string& path, PcapLinkType link_type)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw std::runtime_error("PcapWriter: cannot open " + path);
  const Bytes header = detail::pcap_global_header(link_type);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
}

void PcapWriter::write(TimePoint timestamp, BytesView frame) {
  const Bytes rec = detail::pcap_record_header(timestamp, frame.size());
  out_.write(reinterpret_cast<const char*>(rec.data()),
             static_cast<std::streamsize>(rec.size()));
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  ++frames_;
}

void PcapWriter::flush() { out_.flush(); }

PcapBuffer::PcapBuffer(PcapLinkType link_type) {
  const Bytes header = detail::pcap_global_header(link_type);
  buf_.insert(buf_.end(), header.begin(), header.end());
}

void PcapBuffer::write(TimePoint timestamp, BytesView frame) {
  const Bytes rec = detail::pcap_record_header(timestamp, frame.size());
  buf_.insert(buf_.end(), rec.begin(), rec.end());
  buf_.insert(buf_.end(), frame.begin(), frame.end());
  ++frames_;
}

std::optional<PcapFile> read_pcap(BytesView data) {
  try {
    ByteReader r{data};
    if (r.u32le() != 0xa1b2c3d4) return std::nullopt;
    r.skip(2 + 2 + 4 + 4 + 4);  // versions, thiszone, sigfigs, snaplen
    PcapFile out;
    out.link_type = static_cast<PcapLinkType>(r.u32le());
    while (!r.empty()) {
      const std::uint32_t ts_sec = r.u32le();
      const std::uint32_t ts_usec = r.u32le();
      const std::uint32_t cap_len = r.u32le();
      r.u32le();  // original length
      PcapRecord rec;
      rec.timestamp = TimePoint{seconds(ts_sec) + usec(ts_usec)};
      rec.frame = r.bytes_copy(cap_len);
      out.records.push_back(std::move(rec));
    }
    return out;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

std::optional<PcapFile> read_pcap_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return read_pcap(data);
}

}  // namespace wile
