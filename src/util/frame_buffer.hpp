// Refcounted immutable byte buffer for zero-copy frame fan-out.
//
// One radio transmission may be heard by thousands of receivers; the
// Medium hands every one of them the same FrameBuffer, so the payload
// bytes are allocated once per transmission instead of once per
// receiver. Copying a FrameBuffer bumps a refcount; the bytes
// themselves are immutable for the buffer's lifetime. It converts
// implicitly to BytesView, so every parser in the codebase (they all
// take views) accepts it unchanged.
//
// Thread safety: frames cross shard boundaries in the parallel engine
// (sim/parallel.hpp), so the control block's refcount is atomic —
// increments are relaxed (grabbing a new reference needs no ordering;
// the holder already owns one), the decrement is acq-rel (the thread
// that drops the last reference must observe every other thread's
// release before freeing the bytes). This is the standard shared_ptr
// discipline, but intrusive: control block and payload live in ONE
// arena allocation (header + bytes contiguously), halving the
// allocations per transmission versus the shared_ptr<Counted> scheme
// it replaced and keeping the payload header-adjacent in cache. On the
// single-threaded path the atomics are uncontended lock-prefixed adds —
// a handful of cycles, no fences beyond what the plain code paid for
// the shared_ptr control block before.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>

#include "util/byte_buffer.hpp"

namespace wile {

class FrameBuffer {
 public:
  FrameBuffer() = default;

  /// Copies `bytes` into a fresh single-allocation buffer (header and
  /// payload contiguous). The argument is taken by value for call-site
  /// compatibility; the payload is memcpy'd once either way.
  FrameBuffer(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : data_(bytes.empty() ? nullptr : allocate(bytes.data(), bytes.size())) {}

  static FrameBuffer copy_of(BytesView view) {
    FrameBuffer fb;
    if (!view.empty()) fb.data_ = allocate(view.data(), view.size());
    return fb;
  }

  FrameBuffer(const FrameBuffer& other) : data_(other.data_) {
    // Relaxed: we hold a reference through `other` for the whole call,
    // so the count cannot reach zero concurrently.
    if (data_ != nullptr) data_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  FrameBuffer(FrameBuffer&& other) noexcept : data_(other.data_) {
    other.data_ = nullptr;
  }
  FrameBuffer& operator=(const FrameBuffer& other) {
    if (this != &other) {
      FrameBuffer tmp(other);  // ref first: self-safe and exception-safe
      std::swap(data_, tmp.data_);
    }
    return *this;
  }
  FrameBuffer& operator=(FrameBuffer&& other) noexcept {
    std::swap(data_, other.data_);
    return *this;
  }
  ~FrameBuffer() { release(); }

  [[nodiscard]] std::size_t size() const { return data_ ? data_->size : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const std::uint8_t* data() const {
    return data_ ? data_->payload() : nullptr;
  }
  [[nodiscard]] const std::uint8_t* begin() const { return data(); }
  [[nodiscard]] const std::uint8_t* end() const { return data() + size(); }
  std::uint8_t operator[](std::size_t i) const { return data_->payload()[i]; }

  [[nodiscard]] BytesView view() const {
    return data_ ? BytesView{data_->payload(), data_->size} : BytesView{};
  }
  operator BytesView() const { return view(); }  // NOLINT(google-explicit-constructor)

  /// Materialise an owned copy (only where mutation is genuinely needed).
  [[nodiscard]] Bytes to_bytes() const {
    return data_ ? Bytes(begin(), end()) : Bytes{};
  }

  /// How many FrameBuffers share these bytes (tests pin the zero-copy
  /// contract with this). A relaxed snapshot: exact when no other thread
  /// is copying/dropping concurrently, advisory otherwise — same
  /// semantics shared_ptr::use_count had.
  [[nodiscard]] long owners() const {
    return data_ ? static_cast<long>(data_->refs.load(std::memory_order_relaxed)) : 0;
  }

  /// Distinct payload allocations currently alive, process-wide. Copies
  /// share an allocation; only creating/destroying the last owner moves
  /// this count. The chaos harness's leak oracle compares it against
  /// Medium::active_transmissions() on an idle channel — a component
  /// squirrelling away RxFrames past its contract shows up here. Relaxed
  /// census: read it only when the threads that could move it are
  /// quiescent (the oracle sweeps between events; tests join first).
  [[nodiscard]] static std::uint64_t live_buffers() {
    return live_count_.load(std::memory_order_relaxed);
  }

  friend bool operator==(const FrameBuffer& a, const FrameBuffer& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const FrameBuffer& a, const Bytes& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const Bytes& a, const FrameBuffer& b) { return b == a; }

 private:
  /// Intrusive control block, immediately followed by the payload bytes
  /// in the same allocation.
  struct Counted {
    explicit Counted(std::uint32_t n) : refs(1), size(n) {}
    std::atomic<std::uint32_t> refs;
    std::uint32_t size;
    [[nodiscard]] const std::uint8_t* payload() const {
      return reinterpret_cast<const std::uint8_t*>(this + 1);
    }
    [[nodiscard]] std::uint8_t* payload() {
      return reinterpret_cast<std::uint8_t*>(this + 1);
    }
  };
  static_assert(alignof(Counted) >= alignof(std::uint8_t));

  static Counted* allocate(const std::uint8_t* src, std::size_t n) {
    auto* raw = ::operator new(sizeof(Counted) + n);
    auto* c = new (raw) Counted{static_cast<std::uint32_t>(n)};
    std::memcpy(c->payload(), src, n);
    live_count_.fetch_add(1, std::memory_order_relaxed);
    return c;
  }

  void release() {
    if (data_ == nullptr) return;
    // Acq-rel: the releasing store publishes this thread's last use of
    // the bytes; the acquire on the final decrement makes every earlier
    // release visible to the deleting thread.
    if (data_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      live_count_.fetch_sub(1, std::memory_order_relaxed);
      data_->~Counted();
      ::operator delete(static_cast<void*>(data_));
    }
    data_ = nullptr;
  }

  static inline std::atomic<std::uint64_t> live_count_{0};

  Counted* data_ = nullptr;
};

}  // namespace wile
