// Refcounted immutable byte buffer for zero-copy frame fan-out.
//
// One radio transmission may be heard by thousands of receivers; the
// Medium hands every one of them the same FrameBuffer, so the payload
// bytes are allocated once per transmission instead of once per
// receiver. Copying a FrameBuffer bumps a refcount; the bytes
// themselves are immutable for the buffer's lifetime. It converts
// implicitly to BytesView, so every parser in the codebase (they all
// take views) accepts it unchanged.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/byte_buffer.hpp"

namespace wile {

class FrameBuffer {
 public:
  FrameBuffer() = default;

  /// Takes ownership of `bytes` — the payload is moved, not copied.
  FrameBuffer(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : data_(bytes.empty() ? nullptr
                            : std::make_shared<const Counted>(std::move(bytes))) {}

  static FrameBuffer copy_of(BytesView view) {
    return FrameBuffer{Bytes(view.begin(), view.end())};
  }

  [[nodiscard]] std::size_t size() const { return data_ ? data_->bytes.size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const std::uint8_t* data() const {
    return data_ ? data_->bytes.data() : nullptr;
  }
  [[nodiscard]] const std::uint8_t* begin() const { return data(); }
  [[nodiscard]] const std::uint8_t* end() const { return data() + size(); }
  std::uint8_t operator[](std::size_t i) const { return data_->bytes[i]; }

  [[nodiscard]] BytesView view() const {
    return data_ ? BytesView{data_->bytes} : BytesView{};
  }
  operator BytesView() const { return view(); }  // NOLINT(google-explicit-constructor)

  /// Materialise an owned copy (only where mutation is genuinely needed).
  [[nodiscard]] Bytes to_bytes() const { return data_ ? data_->bytes : Bytes{}; }

  /// How many FrameBuffers share these bytes (tests pin the zero-copy
  /// contract with this).
  [[nodiscard]] long owners() const { return data_ ? data_.use_count() : 0; }

  /// Distinct payload allocations currently alive, process-wide. Copies
  /// share an allocation; only creating/destroying the last owner moves
  /// this count. The chaos harness's leak oracle compares it against
  /// Medium::active_transmissions() on an idle channel — a component
  /// squirrelling away RxFrames past its contract shows up here.
  [[nodiscard]] static std::uint64_t live_buffers() { return live_count_; }

  friend bool operator==(const FrameBuffer& a, const FrameBuffer& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const FrameBuffer& a, const Bytes& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const Bytes& a, const FrameBuffer& b) { return b == a; }

 private:
  /// The shared payload, counted at allocation granularity (ctor/dtor of
  /// the control block, not of each FrameBuffer handle).
  struct Counted {
    Bytes bytes;
    explicit Counted(Bytes b) : bytes(std::move(b)) { ++live_count_; }
    Counted(const Counted&) = delete;
    Counted& operator=(const Counted&) = delete;
    ~Counted() { --live_count_; }
  };

  // The simulator is single-threaded by design; plain is fine.
  static inline std::uint64_t live_count_ = 0;

  std::shared_ptr<const Counted> data_;
};

}  // namespace wile
