// Refcounted immutable byte buffer for zero-copy frame fan-out.
//
// One radio transmission may be heard by thousands of receivers; the
// Medium hands every one of them the same FrameBuffer, so the payload
// bytes are allocated once per transmission instead of once per
// receiver. Copying a FrameBuffer bumps a refcount; the bytes
// themselves are immutable for the buffer's lifetime. It converts
// implicitly to BytesView, so every parser in the codebase (they all
// take views) accepts it unchanged.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/byte_buffer.hpp"

namespace wile {

class FrameBuffer {
 public:
  FrameBuffer() = default;

  /// Takes ownership of `bytes` — the payload is moved, not copied.
  FrameBuffer(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : data_(bytes.empty() ? nullptr
                            : std::make_shared<const Bytes>(std::move(bytes))) {}

  static FrameBuffer copy_of(BytesView view) {
    return FrameBuffer{Bytes(view.begin(), view.end())};
  }

  [[nodiscard]] std::size_t size() const { return data_ ? data_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const std::uint8_t* data() const {
    return data_ ? data_->data() : nullptr;
  }
  [[nodiscard]] const std::uint8_t* begin() const { return data(); }
  [[nodiscard]] const std::uint8_t* end() const { return data() + size(); }
  std::uint8_t operator[](std::size_t i) const { return (*data_)[i]; }

  [[nodiscard]] BytesView view() const {
    return data_ ? BytesView{*data_} : BytesView{};
  }
  operator BytesView() const { return view(); }  // NOLINT(google-explicit-constructor)

  /// Materialise an owned copy (only where mutation is genuinely needed).
  [[nodiscard]] Bytes to_bytes() const { return data_ ? *data_ : Bytes{}; }

  /// How many FrameBuffers share these bytes (tests pin the zero-copy
  /// contract with this).
  [[nodiscard]] long owners() const { return data_ ? data_.use_count() : 0; }

  friend bool operator==(const FrameBuffer& a, const FrameBuffer& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const FrameBuffer& a, const Bytes& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const Bytes& a, const FrameBuffer& b) { return b == a; }

 private:
  std::shared_ptr<const Bytes> data_;
};

}  // namespace wile
