#include "util/mac_address.hpp"

#include <cctype>
#include <cstdio>

namespace wile {

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  // Expect exactly "xx:xx:xx:xx:xx:xx" (17 chars).
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, kSize> out{};
  for (std::size_t i = 0; i < kSize; ++i) {
    const std::size_t base = i * 3;
    const int hi = hex_digit(text[base]);
    const int lo = hex_digit(text[base + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    if (i + 1 < kSize && text[base + 2] != ':') return std::nullopt;
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return MacAddress{out};
}

MacAddress MacAddress::from_seed(std::uint64_t seed) {
  // SplitMix64 finaliser spreads consecutive seeds across the space.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  std::array<std::uint8_t, kSize> out{};
  for (std::size_t i = 0; i < kSize; ++i) {
    out[i] = static_cast<std::uint8_t>((z >> (8 * i)) & 0xff);
  }
  out[0] = static_cast<std::uint8_t>((out[0] & 0xfc) | 0x02);  // local, unicast
  return MacAddress{out};
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0], octets_[1],
                octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

MacAddress MacAddress::read_from(ByteReader& r) {
  std::array<std::uint8_t, kSize> out{};
  BytesView v = r.bytes(kSize);
  std::copy(v.begin(), v.end(), out.begin());
  return MacAddress{out};
}

}  // namespace wile
