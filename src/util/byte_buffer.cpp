#include "util/byte_buffer.hpp"

// Header-only by design; this translation unit exists so the library has
// an archive member and the header is compiled standalone at least once.
namespace wile {
static_assert(sizeof(std::uint8_t) == 1);
}  // namespace wile
