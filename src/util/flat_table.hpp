// Flat open-addressing hash table keyed by 32-bit ids.
//
// The layout PR 8 proved out for the medium's path-loss cache, made
// generic: one contiguous slot array, Fibonacci multiplicative hashing
// (the high bits carry the mix, so power-of-two masking stays well
// distributed), linear probing, and a load factor capped at 1/2 with
// doubling growth. Lookup is a single probe sequence over one cache
// line in the common case — no node allocations, no bucket chains, no
// rehash-on-read. Keys are never removed (device registries only grow),
// which keeps probing tombstone-free.
//
// Used for every per-device registry on the ingest hot path: the
// controller's DeviceState table (wile/ingest.hpp) and the rules
// engine's per-(rule, device) state (wile/rules/engine.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wile::util {

template <typename Value>
class FlatTable {
 public:
  FlatTable() = default;

  /// Single-probe find-or-insert: returns the value for `key`, default
  /// constructing it on first sight. The reference stays valid until
  /// the next find_or_insert (which may grow the slot array).
  Value& find_or_insert(std::uint32_t key) {
    if (slots_.empty()) {
      slots_.resize(kInitialSlots);
    } else if ((used_ + 1) * 2 > slots_.size()) {
      grow();
    }
    Slot& slot = probe(slots_, key);
    if (slot.key_plus_one == 0) {
      slot.key_plus_one = std::uint64_t{key} + 1;
      ++used_;
    }
    return slot.value;
  }

  /// Lookup without insertion; nullptr when the key was never seen.
  [[nodiscard]] Value* find(std::uint32_t key) {
    if (slots_.empty()) return nullptr;
    Slot& slot = probe(slots_, key);
    return slot.key_plus_one != 0 ? &slot.value : nullptr;
  }
  [[nodiscard]] const Value* find(std::uint32_t key) const {
    if (slots_.empty()) return nullptr;
    const Slot& slot = probe(const_cast<std::vector<Slot>&>(slots_), key);
    return slot.key_plus_one != 0 ? &slot.value : nullptr;
  }

  [[nodiscard]] std::size_t size() const { return used_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] bool empty() const { return used_ == 0; }

  /// Visit every (key, value) pair in slot order. The order is a pure
  /// function of the insertion sequence (hash layout is deterministic),
  /// so same-seed runs iterate identically.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.key_plus_one != 0) {
        fn(static_cast<std::uint32_t>(slot.key_plus_one - 1), slot.value);
      }
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key_plus_one != 0) {
        fn(static_cast<std::uint32_t>(slot.key_plus_one - 1), slot.value);
      }
    }
  }

 private:
  /// key+1 so 0 can mark an empty slot (device id 0 is a legal key).
  struct Slot {
    std::uint64_t key_plus_one = 0;
    Value value{};
  };

  static constexpr std::size_t kInitialSlots = 16;

  static Slot& probe(std::vector<Slot>& slots, std::uint32_t key) {
    const std::size_t mask = slots.size() - 1;
    std::uint64_t h = (std::uint64_t{key} + 1) * 0x9E3779B97F4A7C15ull;
    h ^= h >> 32;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    const std::uint64_t want = std::uint64_t{key} + 1;
    while (slots[i].key_plus_one != 0 && slots[i].key_plus_one != want) {
      i = (i + 1) & mask;
    }
    return slots[i];
  }

  void grow() {
    std::vector<Slot> old(slots_.size() * 2);
    old.swap(slots_);
    for (Slot& s : old) {
      if (s.key_plus_one == 0) continue;
      Slot& dst = probe(slots_, static_cast<std::uint32_t>(s.key_plus_one - 1));
      dst.key_plus_one = s.key_plus_one;
      dst.value = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t used_ = 0;
};

}  // namespace wile::util
