// Strong electrical and time units used throughout the Wi-LE codebase.
//
// The paper's evaluation is entirely about energy book-keeping
// (current draw x voltage x time), so we make the units impossible to
// mix up: Volts * Amps = Watts, Watts * Duration = Joules, and so on.
// All quantities are stored in SI base units as double; named factory
// functions (milliamps, microjoules, ...) keep call sites readable and
// match the units the paper reports.
#pragma once

#include <chrono>
#include <cmath>
#include <compare>
#include <cstdint>

namespace wile {

/// Simulated durations are integral microseconds end-to-end; sub-us
/// airtime maths happens in double seconds inside the PHY and is rounded
/// when scheduled.
using Duration = std::chrono::microseconds;

constexpr Duration usec(std::int64_t v) { return Duration{v}; }
constexpr Duration msec(std::int64_t v) { return Duration{v * 1000}; }
constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000}; }
constexpr Duration minutes(std::int64_t v) { return seconds(v * 60); }

/// Convert a simulated duration to floating-point seconds.
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / 1e6;
}

/// Convert floating-point seconds to a simulated duration (rounded).
inline Duration from_seconds(double s) {
  return Duration{static_cast<std::int64_t>(std::llround(s * 1e6))};
}

/// A point on the simulated clock, microseconds since simulation start.
/// Distinct from Duration so that `t + d` is legal but `t + t` is not.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(Duration since_epoch) : us_(since_epoch.count()) {}

  [[nodiscard]] constexpr Duration since_epoch() const { return Duration{us_}; }
  [[nodiscard]] constexpr std::int64_t us() const { return us_; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{Duration{t.us_ + d.count()}};
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{Duration{t.us_ - d.count()}};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration{a.us_ - b.us_};
  }
  constexpr TimePoint& operator+=(Duration d) {
    us_ += d.count();
    return *this;
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

 private:
  std::int64_t us_ = 0;
};

// ---------------------------------------------------------------------------
// Electrical units.
// ---------------------------------------------------------------------------

struct Volts {
  double value = 0.0;  // volts
  friend constexpr auto operator<=>(Volts, Volts) = default;
};

struct Amps {
  double value = 0.0;  // amperes
  friend constexpr auto operator<=>(Amps, Amps) = default;
  friend constexpr Amps operator+(Amps a, Amps b) { return {a.value + b.value}; }
  friend constexpr Amps operator-(Amps a, Amps b) { return {a.value - b.value}; }
  friend constexpr Amps operator*(double k, Amps a) { return {k * a.value}; }
};

struct Watts {
  double value = 0.0;  // watts
  friend constexpr auto operator<=>(Watts, Watts) = default;
  friend constexpr Watts operator+(Watts a, Watts b) { return {a.value + b.value}; }
  friend constexpr Watts operator-(Watts a, Watts b) { return {a.value - b.value}; }
  friend constexpr Watts operator*(double k, Watts w) { return {k * w.value}; }
  friend constexpr Watts operator/(Watts w, double k) { return {w.value / k}; }
};

struct Joules {
  double value = 0.0;  // joules
  friend constexpr auto operator<=>(Joules, Joules) = default;
  friend constexpr Joules operator+(Joules a, Joules b) { return {a.value + b.value}; }
  friend constexpr Joules operator-(Joules a, Joules b) { return {a.value - b.value}; }
  constexpr Joules& operator+=(Joules o) {
    value += o.value;
    return *this;
  }
};

constexpr Volts volts(double v) { return {v}; }
constexpr Amps amps(double a) { return {a}; }
constexpr Amps milliamps(double ma) { return {ma * 1e-3}; }
constexpr Amps microamps(double ua) { return {ua * 1e-6}; }
constexpr Watts watts(double w) { return {w}; }
constexpr Watts milliwatts(double mw) { return {mw * 1e-3}; }
constexpr Watts microwatts(double uw) { return {uw * 1e-6}; }
constexpr Joules joules(double j) { return {j}; }
constexpr Joules millijoules(double mj) { return {mj * 1e-3}; }
constexpr Joules microjoules(double uj) { return {uj * 1e-6}; }
constexpr Joules nanojoules(double nj) { return {nj * 1e-9}; }

constexpr double in_milliamps(Amps a) { return a.value * 1e3; }
constexpr double in_microamps(Amps a) { return a.value * 1e6; }
constexpr double in_milliwatts(Watts w) { return w.value * 1e3; }
constexpr double in_microwatts(Watts w) { return w.value * 1e6; }
constexpr double in_millijoules(Joules j) { return j.value * 1e3; }
constexpr double in_microjoules(Joules j) { return j.value * 1e6; }
constexpr double in_nanojoules(Joules j) { return j.value * 1e9; }

// P = V * I
constexpr Watts operator*(Volts v, Amps i) { return {v.value * i.value}; }
constexpr Watts operator*(Amps i, Volts v) { return v * i; }

// E = P * t
constexpr Joules operator*(Watts p, Duration t) { return {p.value * to_seconds(t)}; }
constexpr Joules operator*(Duration t, Watts p) { return p * t; }

// P = E / t ; I = P / V
constexpr Watts operator/(Joules e, Duration t) { return {e.value / to_seconds(t)}; }
constexpr Amps operator/(Watts p, Volts v) { return {p.value / v.value}; }

}  // namespace wile
