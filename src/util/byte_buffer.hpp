// Bounds-checked binary codec primitives.
//
// Every wire format in this repository (802.11 frames, information
// elements, EAPOL, ARP/IPv4/UDP/DHCP, BLE PDUs, the Wi-LE payload
// container) is serialised through ByteWriter and parsed through
// ByteReader. 802.11 and BLE are little-endian on the wire; the IP suite
// is big-endian; both byte orders are provided explicitly so call sites
// never rely on host order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace wile {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Thrown by ByteReader when a read would run past the end of the buffer.
/// Malformed network input is expected; parsers that face untrusted bytes
/// catch this at the frame boundary and report a decode failure.
class BufferUnderflow : public std::runtime_error {
 public:
  explicit BufferUnderflow(const std::string& what) : std::runtime_error(what) {}
};

/// Appends integers, byte ranges and strings to a growable byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16le(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u16be(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }
  void u24le(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    buf_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  }
  void u32le(std::uint32_t v) {
    u16le(static_cast<std::uint16_t>(v & 0xffff));
    u16le(static_cast<std::uint16_t>(v >> 16));
  }
  void u32be(std::uint32_t v) {
    u16be(static_cast<std::uint16_t>(v >> 16));
    u16be(static_cast<std::uint16_t>(v & 0xffff));
  }
  void u64le(std::uint64_t v) {
    u32le(static_cast<std::uint32_t>(v & 0xffffffff));
    u32le(static_cast<std::uint32_t>(v >> 32));
  }
  void u64be(std::uint64_t v) {
    u32be(static_cast<std::uint32_t>(v >> 32));
    u32be(static_cast<std::uint32_t>(v & 0xffffffff));
  }

  void bytes(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }
  void bytes(const std::uint8_t* data, std::size_t n) { bytes(BytesView{data, n}); }
  void str(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void zeros(std::size_t n) { buf_.insert(buf_.end(), n, 0); }

  /// Overwrite previously written bytes (e.g. patching a length field).
  void patch_u8(std::size_t offset, std::uint8_t v) {
    buf_.at(offset) = v;
  }
  void patch_u16be(std::size_t offset, std::uint16_t v) {
    buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
    buf_.at(offset + 1) = static_cast<std::uint8_t>(v & 0xff);
  }
  void patch_u16le(std::size_t offset, std::uint16_t v) {
    buf_.at(offset) = static_cast<std::uint8_t>(v & 0xff);
    buf_.at(offset + 1) = static_cast<std::uint8_t>(v >> 8);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] BytesView view() const { return buf_; }

  /// Move the accumulated bytes out; the writer is empty afterwards.
  [[nodiscard]] Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Sequential reader over a borrowed byte range. All reads are
/// bounds-checked and throw BufferUnderflow on truncated input.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16le() {
    need(2);
    const auto v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }
  std::uint16_t u16be() {
    need(2);
    const auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u24le() {
    need(3);
    const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                            (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                            (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16);
    pos_ += 3;
    return v;
  }
  std::uint32_t u32le() {
    const std::uint32_t lo = u16le();
    const std::uint32_t hi = u16le();
    return lo | (hi << 16);
  }
  std::uint32_t u32be() {
    const std::uint32_t hi = u16be();
    const std::uint32_t lo = u16be();
    return (hi << 16) | lo;
  }
  std::uint64_t u64le() {
    const std::uint64_t lo = u32le();
    const std::uint64_t hi = u32le();
    return lo | (hi << 32);
  }
  std::uint64_t u64be() {
    const std::uint64_t hi = u32be();
    const std::uint64_t lo = u32be();
    return (hi << 32) | lo;
  }

  /// Borrow the next n bytes without copying.
  BytesView bytes(std::size_t n) {
    need(n);
    BytesView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Copy the next n bytes.
  Bytes bytes_copy(std::size_t n) {
    BytesView v = bytes(n);
    return Bytes(v.begin(), v.end());
  }

  std::string str(std::size_t n) {
    BytesView v = bytes(n);
    return std::string(v.begin(), v.end());
  }

  void skip(std::size_t n) { need(n), pos_ += n; }

  /// Borrow everything left without consuming it.
  [[nodiscard]] BytesView peek_rest() const { return data_.subspan(pos_); }

  /// Borrow and consume everything left.
  BytesView rest() {
    BytesView out = data_.subspan(pos_);
    pos_ = data_.size();
    return out;
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) {
      throw BufferUnderflow("ByteReader: need " + std::to_string(n) + " bytes, have " +
                            std::to_string(remaining()));
    }
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace wile
