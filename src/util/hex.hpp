// Hex encoding/decoding helpers, used by tests (known-answer vectors) and
// by example programs when printing captured frames.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/byte_buffer.hpp"

namespace wile {

/// Lowercase hex string, no separators ("deadbeef").
std::string to_hex(BytesView data);

/// Parse a hex string (whitespace tolerated between bytes). Returns
/// nullopt if the input contains non-hex characters or an odd digit count.
std::optional<Bytes> from_hex(std::string_view text);

/// Classic 16-bytes-per-row hexdump with an ASCII gutter, for debugging
/// captured frames.
std::string hexdump(BytesView data);

}  // namespace wile
