// Minimal levelled logger.
//
// The simulator is deterministic and single-threaded; logging exists for
// example programs and debugging, defaults to Warn, and writes to stderr
// so bench CSV output on stdout stays clean.
#pragma once

#include <sstream>
#include <string>

namespace wile {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: LOG(Info) << "assoc done for " << mac;
/// The expression is only evaluated when the level is enabled.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace wile

#define WILE_LOG(level)                                  \
  if (::wile::LogLevel::level < ::wile::log_level()) {   \
  } else                                                 \
    ::wile::LogLine(::wile::LogLevel::level)
