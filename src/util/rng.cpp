#include "util/rng.hpp"

#include <cmath>

namespace wile {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words from splitmix64 as its authors recommend;
  // guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 random bits into the mantissa.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * m;
  have_spare_gaussian_ = true;
  return u * m;
}

Rng Rng::fork() { return Rng{next()}; }

}  // namespace wile
