// 48-bit IEEE 802 MAC address value type.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "util/byte_buffer.hpp"

namespace wile {

/// An EUI-48 address as used by 802.11 (and by BLE public device
/// addresses, which share the format).
class MacAddress {
 public:
  static constexpr std::size_t kSize = 6;

  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, kSize> octets) : octets_(octets) {}

  /// The all-ones broadcast address ff:ff:ff:ff:ff:ff.
  static constexpr MacAddress broadcast() {
    return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }
  /// The all-zero address, used as "unset".
  static constexpr MacAddress zero() { return MacAddress{}; }

  /// Parse "aa:bb:cc:dd:ee:ff" (case-insensitive). Returns nullopt on any
  /// formatting problem.
  static std::optional<MacAddress> parse(std::string_view text);

  /// Derive a locally-administered unicast address from a 64-bit seed.
  /// Used to hand out distinct, stable addresses to simulated nodes.
  static MacAddress from_seed(std::uint64_t seed);

  [[nodiscard]] constexpr const std::array<std::uint8_t, kSize>& octets() const {
    return octets_;
  }
  [[nodiscard]] constexpr bool is_broadcast() const { return *this == broadcast(); }
  [[nodiscard]] constexpr bool is_zero() const { return *this == zero(); }
  /// Group bit (LSB of first octet): set for broadcast/multicast.
  [[nodiscard]] constexpr bool is_multicast() const { return (octets_[0] & 0x01) != 0; }
  /// Locally-administered bit.
  [[nodiscard]] constexpr bool is_local() const { return (octets_[0] & 0x02) != 0; }

  [[nodiscard]] std::string to_string() const;

  void write_to(ByteWriter& w) const { w.bytes(octets_.data(), kSize); }
  static MacAddress read_from(ByteReader& r);

  friend constexpr auto operator<=>(const MacAddress&, const MacAddress&) = default;

 private:
  std::array<std::uint8_t, kSize> octets_{};
};

}  // namespace wile

template <>
struct std::hash<wile::MacAddress> {
  std::size_t operator()(const wile::MacAddress& m) const noexcept {
    std::uint64_t v = 0;
    for (auto o : m.octets()) v = (v << 8) | o;
    return std::hash<std::uint64_t>{}(v);
  }
};
