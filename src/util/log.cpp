#include "util/log.hpp"

#include <cstdio>

namespace wile {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void emit(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace wile
