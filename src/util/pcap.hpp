// Classic pcap capture writer (LINKTYPE_IEEE802_11, and raw variants).
//
// A real Wi-LE deployment is debugged with Wireshark next to the
// injector; this writer lets any simulated node (the monitor Receiver,
// the AP, a test) dump the frames it saw to a standard .pcap file that
// Wireshark/tcpdump open directly. The format is the original
// libpcap file layout (magic 0xa1b2c3d4, microsecond timestamps) —
// 802.11 MPDUs as captured, FCS included.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "util/byte_buffer.hpp"
#include "util/units.hpp"

namespace wile {

enum class PcapLinkType : std::uint32_t {
  Ieee80211 = 105,   // 802.11 MPDUs, FCS present
  BluetoothLeLl = 251,  // BLE link-layer air packets
  User0 = 147,       // private: anything else
};

class PcapWriter {
 public:
  /// Opens (truncates) `path` and writes the global header. Throws
  /// std::runtime_error if the file cannot be created.
  PcapWriter(const std::string& path, PcapLinkType link_type);

  /// Append one captured frame with the given simulated timestamp.
  /// `frame` is written unmodified.
  void write(TimePoint timestamp, BytesView frame);

  [[nodiscard]] std::uint64_t frames_written() const { return frames_; }

  /// Flush buffered records to disk (also happens on destruction).
  void flush();

 private:
  std::ofstream out_;
  std::uint64_t frames_ = 0;
};

/// In-memory variant for tests and for embedding captures in reports:
/// identical byte layout, no filesystem.
class PcapBuffer {
 public:
  explicit PcapBuffer(PcapLinkType link_type);
  void write(TimePoint timestamp, BytesView frame);
  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] std::uint64_t frames_written() const { return frames_; }

 private:
  Bytes buf_;
  std::uint64_t frames_ = 0;
};

/// One record read back from a capture.
struct PcapRecord {
  TimePoint timestamp;
  Bytes frame;
};

/// Parsed capture file.
struct PcapFile {
  PcapLinkType link_type{};
  std::vector<PcapRecord> records;
};

/// Parse a classic pcap byte stream (as produced by PcapWriter/PcapBuffer
/// or any libpcap tool using the 0xa1b2c3d4 microsecond format). Returns
/// nullopt on bad magic or a truncated record.
std::optional<PcapFile> read_pcap(BytesView data);

/// Convenience: load and parse a capture file from disk.
std::optional<PcapFile> read_pcap_file(const std::string& path);

namespace detail {
Bytes pcap_global_header(PcapLinkType link_type);
Bytes pcap_record_header(TimePoint timestamp, std::size_t length);
}  // namespace detail

}  // namespace wile
