// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic element of the simulation (CSMA backoff draws, clock
// jitter, channel fading, packet-loss coin flips) draws from an Rng seeded
// explicitly, so a run is reproducible bit-for-bit from its seed. We use
// xoshiro256** — small, fast, and good enough statistical quality for
// simulation (this is not a cryptographic generator; crypto lives in
// src/crypto).
#pragma once

#include <cstdint>

namespace wile {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x57694c45u /* "WiLE" */);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Standard normal via Marsaglia polar method.
  double gaussian();

  /// Fork an independent stream (e.g. one per simulated node) so adding a
  /// node does not perturb the draws other nodes see.
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace wile
