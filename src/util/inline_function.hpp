// Move-only callable wrapper with inline small-object storage.
//
// The event scheduler runs tens of millions of callbacks per simulated
// hour; std::function's copyability constraint forces most simulator
// lambdas (which capture `this` plus a couple of words) onto the heap.
// InlineFunction stores any callable up to InlineBytes directly inside
// the wrapper — no allocation on the schedule hot path — and falls back
// to the heap only for oversized captures (e.g. a whole TxRequest).
// Move-only by design: event handlers are consumed exactly once.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace wile {

template <typename Signature, std::size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(f));
  }

  /// Construct a callable directly in place (after destroying any held
  /// one) — the scheduler's hot path files handlers into slab slots
  /// without a single intermediate move.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  void emplace(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

 private:
  template <typename F, typename D = std::decay_t<F>>
  void construct(F&& f) {
    if constexpr (fits_inline<D>()) {
      ::new (storage()) D(std::forward<F>(f));
      invoke_ = [](void* s, Args... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(std::forward<Args>(args)...);
      };
      if constexpr (!trivial_inline<D>()) {
        // Trivially copyable callables (the common case: captures of
        // `this` plus a few words) leave manage_ null — moves are a raw
        // memcpy and destruction is free, with no indirect call.
        manage_ = [](void* dst, void* src) {
          D* obj = std::launder(reinterpret_cast<D*>(src));
          if (dst != nullptr) ::new (dst) D(std::move(*obj));
          obj->~D();
        };
      }
    } else {
      // Oversized capture: one owning pointer lives inline instead.
      ::new (storage()) D*(new D(std::forward<F>(f)));
      invoke_ = [](void* s, Args... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(s)))(std::forward<Args>(args)...);
      };
      manage_ = [](void* dst, void* src) {
        D** slot = std::launder(reinterpret_cast<D**>(src));
        if (dst != nullptr) {
          ::new (dst) D*(*slot);  // ownership transfers with the pointer
        } else {
          delete *slot;
        }
      };
    }
  }

 public:
  InlineFunction(InlineFunction&& other) noexcept { adopt(std::move(other)); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      adopt(std::move(other));
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  R operator()(Args... args) { return invoke_(storage(), std::forward<Args>(args)...); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  void reset() {
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) manage_(nullptr, storage());
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  /// Whether a callable of type D avoids the heap (for tests).
  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= InlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  /// Whether a callable of type D additionally takes the zero-overhead
  /// move path (memcpy, no manage function).
  template <typename D>
  static constexpr bool trivial_inline() {
    return fits_inline<D>() && std::is_trivially_copyable_v<D> &&
           std::is_trivially_destructible_v<D>;
  }

 private:
  void adopt(InlineFunction&& other) noexcept {
    if (other.invoke_ != nullptr) {
      if (other.manage_ == nullptr) {
        std::memcpy(buf_, other.buf_, InlineBytes);
      } else {
        other.manage_(storage(), other.storage());
      }
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  void* storage() { return static_cast<void*>(buf_); }

  using InvokeFn = R (*)(void*, Args...);
  /// manage(dst, src): move src's callable into dst and destroy src's;
  /// with dst == nullptr, just destroy.
  using ManageFn = void (*)(void*, void*);

  alignas(std::max_align_t) std::byte buf_[InlineBytes];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace wile
