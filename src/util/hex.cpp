#include "util/hex.hpp"

#include <cctype>
#include <cstdio>

namespace wile {

std::string to_hex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view text) {
  Bytes out;
  out.reserve(text.size() / 2);
  int hi = -1;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (hi >= 0) return std::nullopt;  // whitespace splitting a byte
      continue;
    }
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    if (hi < 0) {
      hi = d;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | d));
      hi = -1;
    }
  }
  if (hi >= 0) return std::nullopt;  // odd digit count
  return out;
}

std::string hexdump(BytesView data) {
  std::string out;
  char line[16];
  for (std::size_t row = 0; row < data.size(); row += 16) {
    std::snprintf(line, sizeof(line), "%08zx  ", row);
    out += line;
    for (std::size_t i = 0; i < 16; ++i) {
      if (row + i < data.size()) {
        std::snprintf(line, sizeof(line), "%02x ", data[row + i]);
        out += line;
      } else {
        out += "   ";
      }
      if (i == 7) out += ' ';
    }
    out += " |";
    for (std::size_t i = 0; i < 16 && row + i < data.size(); ++i) {
      const char c = static_cast<char>(data[row + i]);
      out += std::isprint(static_cast<unsigned char>(c)) ? c : '.';
    }
    out += "|\n";
  }
  return out;
}

}  // namespace wile
