// Full MPDU assembly and parsing: MAC header + body + FCS.
//
// This is the layer the simulated radio carries. Regular frames use the
// 24-byte three-address header; ACK and PS-Poll control frames use their
// short formats (§8.3.1).
#pragma once

#include <cstdint>
#include <optional>

#include "dot11/mac_header.hpp"
#include "dot11/mgmt.hpp"
#include "util/byte_buffer.hpp"
#include "util/mac_address.hpp"

namespace wile::dot11 {

constexpr std::size_t kFcsSize = 4;

/// Serialise header + body and append the CRC-32 FCS.
Bytes assemble_mpdu(const MacHeader& header, BytesView body);

/// Return a copy of `mpdu` with the Duration/ID field set to
/// `duration_us` and the FCS recomputed. Used by the MAC to fill in the
/// NAV reservation (SIFS + ACK time) just before transmission.
Bytes with_duration(BytesView mpdu, std::uint16_t duration_us);

/// A parsed regular (three-address) MPDU. `body` borrows from the input.
struct ParsedMpdu {
  MacHeader header;
  BytesView body;   // between header and FCS
  bool fcs_ok = false;
};

/// Parse a regular MPDU. Returns nullopt for buffers too short to hold a
/// header + FCS, or for control frames (which have short headers — use
/// parse_ack / parse_ps_poll).
std::optional<ParsedMpdu> parse_mpdu(BytesView mpdu);

// --- ACK (10-byte header + FCS = 14 bytes) ---------------------------------

Bytes build_ack(const MacAddress& receiver);

struct AckFrame {
  MacAddress receiver;
  bool fcs_ok = false;
};
std::optional<AckFrame> parse_ack(BytesView mpdu);

/// True if the raw MPDU is any control frame (short header formats).
bool is_control_frame(BytesView mpdu);

// --- RTS (16-byte header + FCS = 20 bytes) ----------------------------------

Bytes build_rts(const MacAddress& receiver, const MacAddress& transmitter,
                std::uint16_t duration_us);

struct RtsFrame {
  std::uint16_t duration_us = 0;
  MacAddress receiver;
  MacAddress transmitter;
  bool fcs_ok = false;
};
std::optional<RtsFrame> parse_rts(BytesView mpdu);

// --- CTS (10-byte header + FCS = 14 bytes) ----------------------------------

Bytes build_cts(const MacAddress& receiver, std::uint16_t duration_us);

struct CtsFrame {
  std::uint16_t duration_us = 0;
  MacAddress receiver;
  bool fcs_ok = false;
};
std::optional<CtsFrame> parse_cts(BytesView mpdu);

// --- PS-Poll (16-byte header + FCS = 20 bytes) ------------------------------

Bytes build_ps_poll(std::uint16_t aid, const MacAddress& bssid, const MacAddress& ta);

struct PsPollFrame {
  std::uint16_t aid = 0;
  MacAddress bssid;
  MacAddress transmitter;
  bool fcs_ok = false;
};
std::optional<PsPollFrame> parse_ps_poll(BytesView mpdu);

// --- Typed management frame builders ---------------------------------------

/// Build a complete management MPDU: DA/SA/BSSID header, sequence number,
/// encoded body, FCS.
Bytes build_mgmt_mpdu(MgmtSubtype subtype, const MacAddress& da, const MacAddress& sa,
                      const MacAddress& bssid, std::uint16_t seq, BytesView body);

/// Build a data MPDU to the DS (STA -> AP): addr1 = BSSID, addr2 = SA,
/// addr3 = final DA. `llc_payload` is the LLC/SNAP-encapsulated packet.
Bytes build_data_to_ds(const MacAddress& bssid, const MacAddress& sa, const MacAddress& da,
                       std::uint16_t seq, BytesView llc_payload, bool protected_frame,
                       bool power_management = false);

/// Build a data MPDU from the DS (AP -> STA): addr1 = DA, addr2 = BSSID,
/// addr3 = original SA.
Bytes build_data_from_ds(const MacAddress& da, const MacAddress& bssid, const MacAddress& sa,
                         std::uint16_t seq, BytesView llc_payload, bool protected_frame,
                         bool more_data = false);

/// Build a Null-function data frame (used by STAs to signal PS
/// transitions without a payload).
Bytes build_null_data(const MacAddress& bssid, const MacAddress& sa, std::uint16_t seq,
                      bool power_management);

}  // namespace wile::dot11
