// CCMP-style protection for 802.11 data frame bodies.
//
// After the 4-way handshake, data frames between STA and AP are encrypted
// with the temporal key. We keep the real CCMP framing — an 8-byte header
// carrying the 48-bit packet number (PN) with the ExtIV flag — and use
// our CTR+CMAC AEAD as the cipher core with the transmitter address and
// PN forming the nonce, mirroring CCM's nonce construction
// (IEEE 802.11-2012 §11.4.3). Tag is 8 bytes, same as CCMP's MIC.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/aead.hpp"
#include "util/byte_buffer.hpp"
#include "util/mac_address.hpp"

namespace wile::dot11 {

class CcmpSession {
 public:
  static constexpr std::size_t kHeaderSize = 8;
  static constexpr std::size_t kOverhead = kHeaderSize + crypto::Aead::kTagSize;

  explicit CcmpSession(const std::array<std::uint8_t, 16>& temporal_key)
      : aead_(temporal_key) {}

  /// Encrypt `plaintext` for transmission from `ta`. Increments the PN.
  Bytes seal(const MacAddress& ta, BytesView plaintext);

  /// Decrypt a protected body received from `ta`. Enforces strictly
  /// increasing PN (replay protection). Returns nullopt on tag mismatch,
  /// malformed header, or replay.
  std::optional<Bytes> open(const MacAddress& ta, BytesView protected_body);

  [[nodiscard]] std::uint64_t tx_pn() const { return tx_pn_; }

 private:
  static crypto::Aead::Nonce make_nonce(const MacAddress& ta, std::uint64_t pn);

  crypto::Aead aead_;
  std::uint64_t tx_pn_ = 0;
  std::uint64_t last_rx_pn_ = 0;
};

}  // namespace wile::dot11
