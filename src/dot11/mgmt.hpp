// Typed 802.11 management frame bodies (IEEE 802.11-2012 §8.3.3).
//
// Each struct encodes/decodes the frame *body*; frame.hpp pairs a body
// with a MacHeader and FCS to form the full MPDU. These are the frames
// the paper counts when it says establishing a connection costs "at
// least 20 MAC-layer frames" — and Beacon is the one frame Wi-LE keeps.
#pragma once

#include <cstdint>
#include <optional>

#include "dot11/ie.hpp"
#include "util/byte_buffer.hpp"

namespace wile::dot11 {

/// Capability Information bits (§8.4.1.4).
struct Capability {
  static constexpr std::uint16_t kEss = 0x0001;
  static constexpr std::uint16_t kIbss = 0x0002;
  static constexpr std::uint16_t kPrivacy = 0x0010;
  static constexpr std::uint16_t kShortPreamble = 0x0020;
  static constexpr std::uint16_t kShortSlot = 0x0400;
};

/// Status codes (§8.4.1.9), the subset our AP emits.
enum class StatusCode : std::uint16_t {
  Success = 0,
  UnspecifiedFailure = 1,
  AuthAlgoUnsupported = 13,
  AssocDenied = 17,
};

/// Reason codes (§8.4.1.7).
enum class ReasonCode : std::uint16_t {
  Unspecified = 1,
  PrevAuthExpired = 2,
  DeauthLeaving = 3,
  DisassocInactivity = 4,
};

struct Beacon {
  std::uint64_t timestamp_us = 0;       // TSF at transmission
  std::uint16_t beacon_interval_tu = 100;  // 1 TU = 1024 us
  std::uint16_t capability = Capability::kEss;
  IeList ies;

  [[nodiscard]] Bytes encode() const;
  static std::optional<Beacon> decode(BytesView body);
};

struct ProbeRequest {
  IeList ies;  // SSID (possibly wildcard) + supported rates

  [[nodiscard]] Bytes encode() const;
  static std::optional<ProbeRequest> decode(BytesView body);
};

/// Probe responses share the beacon body layout (minus TIM).
struct ProbeResponse {
  std::uint64_t timestamp_us = 0;
  std::uint16_t beacon_interval_tu = 100;
  std::uint16_t capability = Capability::kEss;
  IeList ies;

  [[nodiscard]] Bytes encode() const;
  static std::optional<ProbeResponse> decode(BytesView body);
};

struct Authentication {
  enum class Algorithm : std::uint16_t { OpenSystem = 0, SharedKey = 1 };
  Algorithm algorithm = Algorithm::OpenSystem;
  std::uint16_t transaction_seq = 1;  // 1 = request, 2 = response
  StatusCode status = StatusCode::Success;

  [[nodiscard]] Bytes encode() const;
  static std::optional<Authentication> decode(BytesView body);
};

struct AssocRequest {
  std::uint16_t capability = Capability::kEss;
  std::uint16_t listen_interval = 3;  // beacons; matches WiFi-PS skip of 3
  IeList ies;                         // SSID, rates, RSN, HT caps

  [[nodiscard]] Bytes encode() const;
  static std::optional<AssocRequest> decode(BytesView body);
};

struct AssocResponse {
  std::uint16_t capability = Capability::kEss;
  StatusCode status = StatusCode::Success;
  std::uint16_t aid = 0;  // association ID (with the two MSBs set on air)
  IeList ies;

  [[nodiscard]] Bytes encode() const;
  static std::optional<AssocResponse> decode(BytesView body);
};

struct Deauthentication {
  ReasonCode reason = ReasonCode::DeauthLeaving;

  [[nodiscard]] Bytes encode() const;
  static std::optional<Deauthentication> decode(BytesView body);
};

struct Disassociation {
  ReasonCode reason = ReasonCode::DisassocInactivity;

  [[nodiscard]] Bytes encode() const;
  static std::optional<Disassociation> decode(BytesView body);
};

}  // namespace wile::dot11
