#include "dot11/frame_control.hpp"

namespace wile::dot11 {

std::uint16_t FrameControl::encode() const {
  std::uint16_t v = 0;
  v |= static_cast<std::uint16_t>(protocol_version & 0x3);
  v |= static_cast<std::uint16_t>((static_cast<std::uint16_t>(type) & 0x3) << 2);
  v |= static_cast<std::uint16_t>((subtype & 0xf) << 4);
  if (to_ds) v |= 1u << 8;
  if (from_ds) v |= 1u << 9;
  if (more_fragments) v |= 1u << 10;
  if (retry) v |= 1u << 11;
  if (power_management) v |= 1u << 12;
  if (more_data) v |= 1u << 13;
  if (protected_frame) v |= 1u << 14;
  if (order) v |= 1u << 15;
  return v;
}

FrameControl FrameControl::decode(std::uint16_t raw) {
  FrameControl fc;
  fc.protocol_version = static_cast<std::uint8_t>(raw & 0x3);
  fc.type = static_cast<FrameType>((raw >> 2) & 0x3);
  fc.subtype = static_cast<std::uint8_t>((raw >> 4) & 0xf);
  fc.to_ds = (raw >> 8) & 1;
  fc.from_ds = (raw >> 9) & 1;
  fc.more_fragments = (raw >> 10) & 1;
  fc.retry = (raw >> 11) & 1;
  fc.power_management = (raw >> 12) & 1;
  fc.more_data = (raw >> 13) & 1;
  fc.protected_frame = (raw >> 14) & 1;
  fc.order = (raw >> 15) & 1;
  return fc;
}

std::string FrameControl::describe() const {
  std::string out;
  switch (type) {
    case FrameType::Management: {
      out = "mgmt/";
      switch (static_cast<MgmtSubtype>(subtype)) {
        case MgmtSubtype::AssocRequest: return out + "assoc-req";
        case MgmtSubtype::AssocResponse: return out + "assoc-resp";
        case MgmtSubtype::ReassocRequest: return out + "reassoc-req";
        case MgmtSubtype::ReassocResponse: return out + "reassoc-resp";
        case MgmtSubtype::ProbeRequest: return out + "probe-req";
        case MgmtSubtype::ProbeResponse: return out + "probe-resp";
        case MgmtSubtype::Beacon: return out + "beacon";
        case MgmtSubtype::Atim: return out + "atim";
        case MgmtSubtype::Disassoc: return out + "disassoc";
        case MgmtSubtype::Authentication: return out + "auth";
        case MgmtSubtype::Deauthentication: return out + "deauth";
        case MgmtSubtype::Action: return out + "action";
      }
      return out + std::to_string(subtype);
    }
    case FrameType::Control: {
      out = "ctrl/";
      switch (static_cast<CtrlSubtype>(subtype)) {
        case CtrlSubtype::BlockAckReq: return out + "ba-req";
        case CtrlSubtype::BlockAck: return out + "ba";
        case CtrlSubtype::PsPoll: return out + "ps-poll";
        case CtrlSubtype::Rts: return out + "rts";
        case CtrlSubtype::Cts: return out + "cts";
        case CtrlSubtype::Ack: return out + "ack";
      }
      return out + std::to_string(subtype);
    }
    case FrameType::Data: {
      out = "data/";
      switch (static_cast<DataSubtype>(subtype)) {
        case DataSubtype::Data: return out + "data";
        case DataSubtype::Null: return out + "null";
        case DataSubtype::QosData: return out + "qos-data";
        case DataSubtype::QosNull: return out + "qos-null";
      }
      return out + std::to_string(subtype);
    }
    case FrameType::Extension: return "ext/" + std::to_string(subtype);
  }
  return "?";
}

}  // namespace wile::dot11
