// The 16-bit 802.11 Frame Control field (IEEE 802.11-2012 §8.2.4.1).
#pragma once

#include <cstdint>
#include <string>

namespace wile::dot11 {

enum class FrameType : std::uint8_t {
  Management = 0,
  Control = 1,
  Data = 2,
  Extension = 3,
};

/// Management subtypes (type == Management).
enum class MgmtSubtype : std::uint8_t {
  AssocRequest = 0,
  AssocResponse = 1,
  ReassocRequest = 2,
  ReassocResponse = 3,
  ProbeRequest = 4,
  ProbeResponse = 5,
  Beacon = 8,
  Atim = 9,
  Disassoc = 10,
  Authentication = 11,
  Deauthentication = 12,
  Action = 13,
};

/// Control subtypes (type == Control).
enum class CtrlSubtype : std::uint8_t {
  BlockAckReq = 8,
  BlockAck = 9,
  PsPoll = 10,
  Rts = 11,
  Cts = 12,
  Ack = 13,
};

/// Data subtypes (type == Data).
enum class DataSubtype : std::uint8_t {
  Data = 0,
  Null = 4,
  QosData = 8,
  QosNull = 12,
};

struct FrameControl {
  std::uint8_t protocol_version = 0;
  FrameType type = FrameType::Management;
  std::uint8_t subtype = 0;
  bool to_ds = false;
  bool from_ds = false;
  bool more_fragments = false;
  bool retry = false;
  bool power_management = false;  // STA announces it is entering PS mode
  bool more_data = false;         // AP has more buffered frames for the STA
  bool protected_frame = false;   // encrypted body
  bool order = false;

  [[nodiscard]] std::uint16_t encode() const;
  static FrameControl decode(std::uint16_t raw);

  [[nodiscard]] bool is_mgmt(MgmtSubtype s) const {
    return type == FrameType::Management && subtype == static_cast<std::uint8_t>(s);
  }
  [[nodiscard]] bool is_ctrl(CtrlSubtype s) const {
    return type == FrameType::Control && subtype == static_cast<std::uint8_t>(s);
  }
  [[nodiscard]] bool is_data(DataSubtype s) const {
    return type == FrameType::Data && subtype == static_cast<std::uint8_t>(s);
  }

  static FrameControl mgmt(MgmtSubtype s) {
    FrameControl fc;
    fc.type = FrameType::Management;
    fc.subtype = static_cast<std::uint8_t>(s);
    return fc;
  }
  static FrameControl ctrl(CtrlSubtype s) {
    FrameControl fc;
    fc.type = FrameType::Control;
    fc.subtype = static_cast<std::uint8_t>(s);
    return fc;
  }
  static FrameControl data(DataSubtype s) {
    FrameControl fc;
    fc.type = FrameType::Data;
    fc.subtype = static_cast<std::uint8_t>(s);
    return fc;
  }

  /// Human-readable "mgmt/beacon", "ctrl/ack", ... for logs and captures.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const FrameControl&, const FrameControl&) = default;
};

}  // namespace wile::dot11
