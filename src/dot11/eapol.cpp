#include "dot11/eapol.hpp"

#include <cstring>

#include "crypto/aes_modes.hpp"
#include "crypto/hmac_sha1.hpp"

namespace wile::dot11 {

namespace {
constexpr std::uint8_t kEapolTypeKey = 3;
constexpr std::uint8_t kKeyDescriptorRsn = 2;
// GTK KDE header: dd len 00-0f-ac 01 <key-id/flags> <reserved>
constexpr std::uint8_t kKdeType = 0xdd;
constexpr std::array<std::uint8_t, 3> kKdeOui = {0x00, 0x0f, 0xac};
constexpr std::uint8_t kKdeGtk = 0x01;
}  // namespace

Bytes EapolKeyFrame::encode(bool zero_mic) const {
  ByteWriter body(95 + key_data.size());
  body.u8(kKeyDescriptorRsn);
  body.u16be(key_info);
  body.u16be(key_length);
  body.u64be(replay_counter);
  body.bytes(nonce.data(), nonce.size());
  body.zeros(16);  // EAPOL key IV (unused with descriptor v2)
  body.zeros(8);   // key RSC
  body.zeros(8);   // reserved
  if (zero_mic) {
    body.zeros(kMicSize);
  } else {
    body.bytes(mic.data(), mic.size());
  }
  body.u16be(static_cast<std::uint16_t>(key_data.size()));
  body.bytes(key_data);
  const Bytes descriptor = body.take();

  ByteWriter w(4 + descriptor.size());
  w.u8(protocol_version);
  w.u8(kEapolTypeKey);
  w.u16be(static_cast<std::uint16_t>(descriptor.size()));
  w.bytes(descriptor);
  return w.take();
}

std::optional<EapolKeyFrame> EapolKeyFrame::decode(BytesView frame) {
  try {
    ByteReader r{frame};
    EapolKeyFrame out;
    out.protocol_version = r.u8();
    if (r.u8() != kEapolTypeKey) return std::nullopt;
    const std::uint16_t body_len = r.u16be();
    if (body_len > r.remaining()) return std::nullopt;
    if (r.u8() != kKeyDescriptorRsn) return std::nullopt;
    out.key_info = r.u16be();
    out.key_length = r.u16be();
    out.replay_counter = r.u64be();
    const BytesView nonce = r.bytes(kNonceSize);
    std::copy(nonce.begin(), nonce.end(), out.nonce.begin());
    r.skip(16 + 8 + 8);  // IV, RSC, reserved
    const BytesView mic = r.bytes(kMicSize);
    std::copy(mic.begin(), mic.end(), out.mic.begin());
    const std::uint16_t kd_len = r.u16be();
    out.key_data = r.bytes_copy(kd_len);
    return out;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

std::array<std::uint8_t, EapolKeyFrame::kMicSize> EapolKeyFrame::compute_mic(
    const std::array<std::uint8_t, 16>& kck) const {
  const Bytes zeroed = encode(/*zero_mic=*/true);
  const auto digest = crypto::hmac_sha1(kck, zeroed);
  std::array<std::uint8_t, kMicSize> out{};
  std::memcpy(out.data(), digest.data(), kMicSize);
  return out;
}

void EapolKeyFrame::sign(const std::array<std::uint8_t, 16>& kck) {
  key_info |= KeyInfo::kMic;
  mic = compute_mic(kck);
}

bool EapolKeyFrame::verify_mic(const std::array<std::uint8_t, 16>& kck) const {
  if (!has(KeyInfo::kMic)) return false;
  return compute_mic(kck) == mic;
}

EapolKeyFrame make_handshake_m1(std::uint64_t replay,
                                const std::array<std::uint8_t, 32>& anonce) {
  EapolKeyFrame f;
  f.key_info |= KeyInfo::kPairwise | KeyInfo::kAck;
  f.replay_counter = replay;
  f.nonce = anonce;
  return f;
}

EapolKeyFrame make_handshake_m2(std::uint64_t replay,
                                const std::array<std::uint8_t, 32>& snonce,
                                BytesView rsn_ie,
                                const std::array<std::uint8_t, 16>& kck) {
  EapolKeyFrame f;
  f.key_info |= KeyInfo::kPairwise;
  f.replay_counter = replay;
  f.nonce = snonce;
  f.key_data.assign(rsn_ie.begin(), rsn_ie.end());
  f.sign(kck);
  return f;
}

EapolKeyFrame make_handshake_m3(std::uint64_t replay,
                                const std::array<std::uint8_t, 32>& anonce,
                                BytesView rsn_ie, BytesView gtk,
                                const std::array<std::uint8_t, 16>& kck,
                                const std::array<std::uint8_t, 16>& kek) {
  EapolKeyFrame f;
  f.key_info |= KeyInfo::kPairwise | KeyInfo::kInstall | KeyInfo::kAck | KeyInfo::kSecure |
                KeyInfo::kEncryptedKeyData;
  f.replay_counter = replay;
  f.nonce = anonce;

  // Plaintext key data: RSN IE || GTK KDE, padded to a key-wrap block.
  ByteWriter kd(rsn_ie.size() + gtk.size() + 8);
  kd.bytes(rsn_ie);
  kd.u8(kKdeType);
  kd.u8(static_cast<std::uint8_t>(4 + 2 + gtk.size()));  // OUI+type+keyid/rsvd+gtk
  kd.bytes(kKdeOui);
  kd.u8(kKdeGtk);
  kd.u8(0x01);  // key id 1, not tx-only
  kd.u8(0x00);  // reserved
  kd.bytes(gtk);
  Bytes plain = kd.take();
  // Pad with dd 00.. to a multiple of 8 (and minimum 16) for key wrap.
  if (plain.size() % 8 != 0 || plain.size() < 16) {
    plain.push_back(0xdd);
    while (plain.size() % 8 != 0 || plain.size() < 16) plain.push_back(0x00);
  }
  f.key_data = crypto::aes_key_wrap(crypto::Aes128{kek}, plain);
  f.sign(kck);
  return f;
}

EapolKeyFrame make_handshake_m4(std::uint64_t replay,
                                const std::array<std::uint8_t, 16>& kck) {
  EapolKeyFrame f;
  f.key_info |= KeyInfo::kPairwise | KeyInfo::kSecure;
  f.replay_counter = replay;
  f.sign(kck);
  return f;
}

std::optional<Bytes> extract_gtk(const EapolKeyFrame& m3,
                                 const std::array<std::uint8_t, 16>& kek) {
  if (!m3.has(KeyInfo::kEncryptedKeyData)) return std::nullopt;
  const auto plain = crypto::aes_key_unwrap(crypto::Aes128{kek}, m3.key_data);
  if (!plain) return std::nullopt;
  // Walk the KDE/IE list looking for the GTK KDE.
  try {
    ByteReader r{*plain};
    while (r.remaining() >= 2) {
      const std::uint8_t type = r.u8();
      const std::uint8_t len = r.u8();
      if (len > r.remaining()) break;  // into padding
      const BytesView body = r.bytes(len);
      if (type == kKdeType && len >= 6 &&
          std::equal(kKdeOui.begin(), kKdeOui.end(), body.begin()) && body[3] == kKdeGtk) {
        return Bytes(body.begin() + 6, body.end());
      }
    }
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
  return std::nullopt;
}

int handshake_message_number(const EapolKeyFrame& f) {
  const bool pairwise = f.has(KeyInfo::kPairwise);
  if (!pairwise) return 0;
  const bool ack = f.has(KeyInfo::kAck);
  const bool mic = f.has(KeyInfo::kMic);
  const bool secure = f.has(KeyInfo::kSecure);
  const bool install = f.has(KeyInfo::kInstall);
  if (ack && !mic) return 1;
  if (ack && mic && install) return 3;
  if (!ack && mic && !secure) return 2;
  if (!ack && mic && secure) return 4;
  return 0;
}

}  // namespace wile::dot11
