#include "dot11/frame.hpp"

#include "crypto/crc.hpp"

namespace wile::dot11 {

namespace {
void append_fcs(ByteWriter& w) {
  w.u32le(crypto::crc32(w.view()));
}

bool check_fcs(BytesView mpdu) {
  const BytesView covered = mpdu.subspan(0, mpdu.size() - kFcsSize);
  ByteReader tail{mpdu.subspan(mpdu.size() - kFcsSize)};
  return crypto::crc32(covered) == tail.u32le();
}
}  // namespace

Bytes assemble_mpdu(const MacHeader& header, BytesView body) {
  ByteWriter w(MacHeader::kSize + body.size() + kFcsSize);
  header.write_to(w);
  w.bytes(body);
  append_fcs(w);
  return w.take();
}

Bytes with_duration(BytesView mpdu, std::uint16_t duration_us) {
  Bytes out(mpdu.begin(), mpdu.end());
  if (out.size() < 4 + kFcsSize) return out;
  out[2] = static_cast<std::uint8_t>(duration_us & 0xff);
  out[3] = static_cast<std::uint8_t>(duration_us >> 8);
  const BytesView covered{out.data(), out.size() - kFcsSize};
  const std::uint32_t fcs = crypto::crc32(covered);
  out[out.size() - 4] = static_cast<std::uint8_t>(fcs & 0xff);
  out[out.size() - 3] = static_cast<std::uint8_t>((fcs >> 8) & 0xff);
  out[out.size() - 2] = static_cast<std::uint8_t>((fcs >> 16) & 0xff);
  out[out.size() - 1] = static_cast<std::uint8_t>((fcs >> 24) & 0xff);
  return out;
}

std::optional<ParsedMpdu> parse_mpdu(BytesView mpdu) {
  if (mpdu.size() < MacHeader::kSize + kFcsSize) return std::nullopt;
  if (is_control_frame(mpdu)) return std::nullopt;
  ParsedMpdu out;
  ByteReader r{mpdu};
  out.header = MacHeader::read_from(r);
  out.body = mpdu.subspan(MacHeader::kSize, mpdu.size() - MacHeader::kSize - kFcsSize);
  out.fcs_ok = check_fcs(mpdu);
  return out;
}

bool is_control_frame(BytesView mpdu) {
  if (mpdu.size() < 2) return false;
  const auto fc = FrameControl::decode(
      static_cast<std::uint16_t>(mpdu[0] | (mpdu[1] << 8)));
  return fc.type == FrameType::Control;
}

Bytes build_ack(const MacAddress& receiver) {
  ByteWriter w(14);
  w.u16le(FrameControl::ctrl(CtrlSubtype::Ack).encode());
  w.u16le(0);  // duration
  receiver.write_to(w);
  append_fcs(w);
  return w.take();
}

std::optional<AckFrame> parse_ack(BytesView mpdu) {
  if (mpdu.size() != 14) return std::nullopt;
  ByteReader r{mpdu};
  const auto fc = FrameControl::decode(r.u16le());
  if (!fc.is_ctrl(CtrlSubtype::Ack)) return std::nullopt;
  r.u16le();  // duration
  AckFrame out;
  out.receiver = MacAddress::read_from(r);
  out.fcs_ok = check_fcs(mpdu);
  return out;
}

Bytes build_rts(const MacAddress& receiver, const MacAddress& transmitter,
                std::uint16_t duration_us) {
  ByteWriter w(20);
  w.u16le(FrameControl::ctrl(CtrlSubtype::Rts).encode());
  w.u16le(duration_us);
  receiver.write_to(w);
  transmitter.write_to(w);
  append_fcs(w);
  return w.take();
}

std::optional<RtsFrame> parse_rts(BytesView mpdu) {
  if (mpdu.size() != 20) return std::nullopt;
  ByteReader r{mpdu};
  const auto fc = FrameControl::decode(r.u16le());
  if (!fc.is_ctrl(CtrlSubtype::Rts)) return std::nullopt;
  RtsFrame out;
  out.duration_us = r.u16le();
  out.receiver = MacAddress::read_from(r);
  out.transmitter = MacAddress::read_from(r);
  out.fcs_ok = check_fcs(mpdu);
  return out;
}

Bytes build_cts(const MacAddress& receiver, std::uint16_t duration_us) {
  ByteWriter w(14);
  w.u16le(FrameControl::ctrl(CtrlSubtype::Cts).encode());
  w.u16le(duration_us);
  receiver.write_to(w);
  append_fcs(w);
  return w.take();
}

std::optional<CtsFrame> parse_cts(BytesView mpdu) {
  if (mpdu.size() != 14) return std::nullopt;
  ByteReader r{mpdu};
  const auto fc = FrameControl::decode(r.u16le());
  if (!fc.is_ctrl(CtrlSubtype::Cts)) return std::nullopt;
  CtsFrame out;
  out.duration_us = r.u16le();
  out.receiver = MacAddress::read_from(r);
  out.fcs_ok = check_fcs(mpdu);
  return out;
}

Bytes build_ps_poll(std::uint16_t aid, const MacAddress& bssid, const MacAddress& ta) {
  ByteWriter w(20);
  w.u16le(FrameControl::ctrl(CtrlSubtype::PsPoll).encode());
  w.u16le(static_cast<std::uint16_t>(aid | 0xc000));  // AID with both MSBs set
  bssid.write_to(w);
  ta.write_to(w);
  append_fcs(w);
  return w.take();
}

std::optional<PsPollFrame> parse_ps_poll(BytesView mpdu) {
  if (mpdu.size() != 20) return std::nullopt;
  ByteReader r{mpdu};
  const auto fc = FrameControl::decode(r.u16le());
  if (!fc.is_ctrl(CtrlSubtype::PsPoll)) return std::nullopt;
  PsPollFrame out;
  out.aid = static_cast<std::uint16_t>(r.u16le() & 0x3fff);
  out.bssid = MacAddress::read_from(r);
  out.transmitter = MacAddress::read_from(r);
  out.fcs_ok = check_fcs(mpdu);
  return out;
}

Bytes build_mgmt_mpdu(MgmtSubtype subtype, const MacAddress& da, const MacAddress& sa,
                      const MacAddress& bssid, std::uint16_t seq, BytesView body) {
  MacHeader h;
  h.fc = FrameControl::mgmt(subtype);
  h.addr1 = da;
  h.addr2 = sa;
  h.addr3 = bssid;
  h.set_sequence(seq);
  return assemble_mpdu(h, body);
}

Bytes build_data_to_ds(const MacAddress& bssid, const MacAddress& sa, const MacAddress& da,
                       std::uint16_t seq, BytesView llc_payload, bool protected_frame,
                       bool power_management) {
  MacHeader h;
  h.fc = FrameControl::data(DataSubtype::Data);
  h.fc.to_ds = true;
  h.fc.protected_frame = protected_frame;
  h.fc.power_management = power_management;
  h.addr1 = bssid;
  h.addr2 = sa;
  h.addr3 = da;
  h.set_sequence(seq);
  return assemble_mpdu(h, llc_payload);
}

Bytes build_data_from_ds(const MacAddress& da, const MacAddress& bssid, const MacAddress& sa,
                         std::uint16_t seq, BytesView llc_payload, bool protected_frame,
                         bool more_data) {
  MacHeader h;
  h.fc = FrameControl::data(DataSubtype::Data);
  h.fc.from_ds = true;
  h.fc.protected_frame = protected_frame;
  h.fc.more_data = more_data;
  h.addr1 = da;
  h.addr2 = bssid;
  h.addr3 = sa;
  h.set_sequence(seq);
  return assemble_mpdu(h, llc_payload);
}

Bytes build_null_data(const MacAddress& bssid, const MacAddress& sa, std::uint16_t seq,
                      bool power_management) {
  MacHeader h;
  h.fc = FrameControl::data(DataSubtype::Null);
  h.fc.to_ds = true;
  h.fc.power_management = power_management;
  h.addr1 = bssid;
  h.addr2 = sa;
  h.addr3 = bssid;
  h.set_sequence(seq);
  return assemble_mpdu(h, {});
}

}  // namespace wile::dot11
