#include "dot11/ie.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wile::dot11 {

void IeList::add(InfoElement ie) {
  if (ie.data.size() > kMaxIeData) {
    throw std::invalid_argument("InfoElement data exceeds 255 bytes");
  }
  elements_.push_back(std::move(ie));
}

void IeList::add(IeId id, BytesView data) {
  add(InfoElement{id, Bytes(data.begin(), data.end())});
}

const InfoElement* IeList::find(IeId id) const {
  for (const auto& ie : elements_) {
    if (ie.id == id) return &ie;
  }
  return nullptr;
}

std::vector<const InfoElement*> IeList::find_all(IeId id) const {
  std::vector<const InfoElement*> out;
  for (const auto& ie : elements_) {
    if (ie.id == id) out.push_back(&ie);
  }
  return out;
}

void IeList::write_to(ByteWriter& w) const {
  for (const auto& ie : elements_) {
    w.u8(static_cast<std::uint8_t>(ie.id));
    w.u8(static_cast<std::uint8_t>(ie.data.size()));
    w.bytes(ie.data);
  }
}

std::size_t IeList::encoded_size() const {
  std::size_t n = 0;
  for (const auto& ie : elements_) n += 2 + ie.data.size();
  return n;
}

IeList IeList::read_from(ByteReader& r) {
  IeList out;
  while (!r.empty()) {
    const auto id = static_cast<IeId>(r.u8());
    const std::size_t len = r.u8();
    out.add(InfoElement{id, r.bytes_copy(len)});
  }
  return out;
}

// ---------------------------------------------------------------------------

InfoElement make_ssid_ie(std::string_view ssid) {
  if (ssid.size() > 32) throw std::invalid_argument("SSID longer than 32 bytes");
  InfoElement ie{IeId::Ssid, {}};
  ie.data.assign(ssid.begin(), ssid.end());
  return ie;
}

std::optional<std::string> parse_ssid_ie(const IeList& ies) {
  const InfoElement* ie = ies.find(IeId::Ssid);
  if (ie == nullptr) return std::nullopt;
  return std::string(ie->data.begin(), ie->data.end());
}

bool has_hidden_ssid(const IeList& ies) {
  const InfoElement* ie = ies.find(IeId::Ssid);
  return ie != nullptr && ie->data.empty();
}

void SupportedRates::add(double mbps, bool basic) {
  auto units = static_cast<std::uint8_t>(std::lround(mbps * 2.0));
  if (basic) units |= 0x80;
  rates_500kbps.push_back(units);
}

std::vector<double> SupportedRates::mbps() const {
  std::vector<double> out;
  out.reserve(rates_500kbps.size());
  for (std::uint8_t r : rates_500kbps) out.push_back((r & 0x7f) / 2.0);
  return out;
}

InfoElement make_supported_rates_ie(const SupportedRates& rates) {
  // The SupportedRates element holds at most 8 rates; overflow goes to
  // ExtSupportedRates. We encode the first 8 here; callers with more
  // should split (default_bg_rates() stays within 8).
  InfoElement ie{IeId::SupportedRates, {}};
  const std::size_t n = std::min<std::size_t>(rates.rates_500kbps.size(), 8);
  ie.data.assign(rates.rates_500kbps.begin(), rates.rates_500kbps.begin() + n);
  return ie;
}

std::optional<SupportedRates> parse_supported_rates_ie(const IeList& ies) {
  const InfoElement* ie = ies.find(IeId::SupportedRates);
  if (ie == nullptr) return std::nullopt;
  SupportedRates out;
  out.rates_500kbps.assign(ie->data.begin(), ie->data.end());
  return out;
}

SupportedRates default_bg_rates() {
  SupportedRates r;
  r.add(1.0, true);
  r.add(2.0, true);
  r.add(5.5, true);
  r.add(11.0, true);
  r.add(6.0, false);
  r.add(12.0, false);
  r.add(24.0, false);
  r.add(54.0, false);
  return r;
}

InfoElement make_ds_param_ie(std::uint8_t channel) {
  return InfoElement{IeId::DsParam, {channel}};
}

std::optional<std::uint8_t> parse_ds_param_ie(const IeList& ies) {
  const InfoElement* ie = ies.find(IeId::DsParam);
  if (ie == nullptr || ie->data.size() != 1) return std::nullopt;
  return ie->data[0];
}

bool Tim::traffic_for(std::uint16_t aid) const {
  return std::find(aids.begin(), aids.end(), aid) != aids.end();
}

InfoElement make_tim_ie(const Tim& tim) {
  // Partial virtual bitmap: bytes [n1..n2] of the full 251-byte bitmap,
  // where n1 is the largest even number with no set bits below byte n1.
  std::array<std::uint8_t, 251> full{};
  std::uint16_t max_aid = 0;
  for (std::uint16_t aid : tim.aids) {
    if (aid == 0 || aid > 2007) throw std::invalid_argument("TIM: AID out of range");
    full[aid / 8] |= static_cast<std::uint8_t>(1u << (aid % 8));
    max_aid = std::max(max_aid, aid);
  }
  std::size_t n1 = 0;
  while (n1 + 1 < full.size() && full[n1] == 0 && full[n1 + 1] == 0 &&
         (n1 + 2) * 8 <= max_aid) {
    n1 += 2;  // n1 must be even
  }
  const std::size_t n2 = std::max<std::size_t>(max_aid / 8, n1);

  InfoElement ie{IeId::Tim, {}};
  ie.data.push_back(tim.dtim_count);
  ie.data.push_back(tim.dtim_period);
  std::uint8_t bitmap_control = static_cast<std::uint8_t>(n1 & 0xfe);
  if (tim.multicast_buffered) bitmap_control |= 0x01;
  ie.data.push_back(bitmap_control);
  for (std::size_t i = n1; i <= n2; ++i) ie.data.push_back(full[i]);
  return ie;
}

std::optional<Tim> parse_tim_ie(const IeList& ies) {
  const InfoElement* ie = ies.find(IeId::Tim);
  if (ie == nullptr || ie->data.size() < 4) return std::nullopt;
  Tim out;
  out.dtim_count = ie->data[0];
  out.dtim_period = ie->data[1];
  const std::uint8_t bitmap_control = ie->data[2];
  out.multicast_buffered = (bitmap_control & 0x01) != 0;
  const std::size_t n1 = bitmap_control & 0xfe;
  for (std::size_t i = 3; i < ie->data.size(); ++i) {
    const std::uint8_t byte = ie->data[i];
    for (int bit = 0; bit < 8; ++bit) {
      if (byte & (1u << bit)) {
        const auto aid = static_cast<std::uint16_t>((n1 + (i - 3)) * 8 + bit);
        if (aid != 0) out.aids.push_back(aid);
      }
    }
  }
  return out;
}

namespace {
constexpr std::array<std::uint8_t, 4> kRsnCipherCcmp = {0x00, 0x0f, 0xac, 0x04};
constexpr std::array<std::uint8_t, 4> kRsnAkmPsk = {0x00, 0x0f, 0xac, 0x02};
}  // namespace

InfoElement make_rsn_psk_ccmp_ie() {
  ByteWriter w(20);
  w.u16le(1);                  // version
  w.bytes(kRsnCipherCcmp);     // group cipher
  w.u16le(1);                  // pairwise count
  w.bytes(kRsnCipherCcmp);     // pairwise cipher
  w.u16le(1);                  // AKM count
  w.bytes(kRsnAkmPsk);         // AKM: PSK
  w.u16le(0);                  // RSN capabilities
  return InfoElement{IeId::Rsn, w.take()};
}

bool has_rsn_psk(const IeList& ies) {
  const InfoElement* ie = ies.find(IeId::Rsn);
  if (ie == nullptr) return false;
  try {
    ByteReader r{ie->data};
    if (r.u16le() != 1) return false;  // version
    r.skip(4);                         // group cipher
    const std::uint16_t pairwise_count = r.u16le();
    r.skip(4u * pairwise_count);
    const std::uint16_t akm_count = r.u16le();
    for (std::uint16_t i = 0; i < akm_count; ++i) {
      const BytesView akm = r.bytes(4);
      if (std::equal(akm.begin(), akm.end(), kRsnAkmPsk.begin())) return true;
    }
  } catch (const BufferUnderflow&) {
    return false;
  }
  return false;
}

std::optional<InfoElement> make_vendor_ie(const std::array<std::uint8_t, 3>& oui,
                                          std::uint8_t subtype, BytesView payload) {
  if (payload.size() > vendor_payload_capacity()) return std::nullopt;
  InfoElement ie{IeId::VendorSpecific, {}};
  ie.data.reserve(4 + payload.size());
  ie.data.insert(ie.data.end(), oui.begin(), oui.end());
  ie.data.push_back(subtype);
  ie.data.insert(ie.data.end(), payload.begin(), payload.end());
  return ie;
}

std::vector<VendorIe> parse_vendor_ies(const IeList& ies,
                                       const std::array<std::uint8_t, 3>& oui) {
  std::vector<VendorIe> out;
  for (const InfoElement* ie : ies.find_all(IeId::VendorSpecific)) {
    if (ie->data.size() < 4) continue;
    if (!std::equal(oui.begin(), oui.end(), ie->data.begin())) continue;
    VendorIe v;
    v.oui = oui;
    v.subtype = ie->data[3];
    v.payload.assign(ie->data.begin() + 4, ie->data.end());
    out.push_back(std::move(v));
  }
  return out;
}

InfoElement make_erp_ie() { return InfoElement{IeId::ErpInfo, {0x00}}; }

InfoElement make_country_ie() {
  InfoElement ie{IeId::Country, {}};
  ie.data = {'C', 'A', ' ', /*first channel*/ 1, /*num channels*/ 11, /*max dBm*/ 20};
  return ie;
}

InfoElement make_ht_caps_ie() {
  // 26-byte HT Capabilities: capabilities info with SGI-20 (bit 5) set,
  // A-MPDU params zero, MCS set with MCS 0-7 RX bitmap.
  InfoElement ie{IeId::HtCapabilities, Bytes(26, 0)};
  ie.data[0] = 0x20;  // short GI for 20 MHz
  ie.data[3] = 0xff;  // RX MCS bitmap: MCS 0-7
  return ie;
}

bool has_ht_caps(const IeList& ies) { return ies.find(IeId::HtCapabilities) != nullptr; }

}  // namespace wile::dot11
