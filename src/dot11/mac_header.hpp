// The three-address 802.11 MAC header used by management and
// (non-WDS) data frames (IEEE 802.11-2012 §8.2.4).
#pragma once

#include <cstdint>

#include "dot11/frame_control.hpp"
#include "util/byte_buffer.hpp"
#include "util/mac_address.hpp"

namespace wile::dot11 {

struct MacHeader {
  static constexpr std::size_t kSize = 24;  // fc(2) dur(2) 3*addr(18) seq(2)

  FrameControl fc;
  std::uint16_t duration_id = 0;
  MacAddress addr1;  // RA/DA
  MacAddress addr2;  // TA/SA
  MacAddress addr3;  // BSSID (mgmt), or DA/SA depending on to/from-DS
  std::uint16_t sequence_control = 0;

  [[nodiscard]] std::uint16_t sequence_number() const {
    return static_cast<std::uint16_t>(sequence_control >> 4);
  }
  [[nodiscard]] std::uint8_t fragment_number() const {
    return static_cast<std::uint8_t>(sequence_control & 0xf);
  }
  void set_sequence(std::uint16_t seq, std::uint8_t frag = 0) {
    sequence_control = static_cast<std::uint16_t>((seq << 4) | (frag & 0xf));
  }

  void write_to(ByteWriter& w) const;
  static MacHeader read_from(ByteReader& r);

  friend bool operator==(const MacHeader&, const MacHeader&) = default;
};

}  // namespace wile::dot11
