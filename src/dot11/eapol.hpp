// EAPOL-Key frames for the WPA2-PSK 4-way handshake
// (IEEE 802.1X-2010 §11 framing; IEEE 802.11-2012 §11.6 key descriptor).
//
// The paper's AP uses 802.1X/WPA2: "A four-way handshake is performed
// using the 802.1x protocol to confirm that the client has the
// shared-key. At least 8 frames are exchanged during this process"
// (4 EAPOL-Key frames + 4 ACKs). This module implements the key
// descriptor codec, the four message constructors, and genuine
// HMAC-SHA1-128 MICs so both simulated sides verify each other.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/prf80211.hpp"
#include "util/byte_buffer.hpp"

namespace wile::dot11 {

/// Key Information bitfield (§11.6.2).
struct KeyInfo {
  static constexpr std::uint16_t kDescV2HmacSha1Aes = 0x0002;  // bits 0-2
  static constexpr std::uint16_t kPairwise = 0x0008;
  static constexpr std::uint16_t kInstall = 0x0040;
  static constexpr std::uint16_t kAck = 0x0080;
  static constexpr std::uint16_t kMic = 0x0100;
  static constexpr std::uint16_t kSecure = 0x0200;
  static constexpr std::uint16_t kEncryptedKeyData = 0x1000;
};

struct EapolKeyFrame {
  static constexpr std::size_t kNonceSize = 32;
  static constexpr std::size_t kMicSize = 16;

  std::uint8_t protocol_version = 2;  // 802.1X-2004
  std::uint16_t key_info = KeyInfo::kDescV2HmacSha1Aes;
  std::uint16_t key_length = 16;  // CCMP TK
  std::uint64_t replay_counter = 0;
  std::array<std::uint8_t, kNonceSize> nonce{};
  std::array<std::uint8_t, kMicSize> mic{};
  Bytes key_data;

  [[nodiscard]] bool has(std::uint16_t flag) const { return (key_info & flag) != 0; }

  /// Serialise the full EAPOL frame (802.1X header + key descriptor).
  /// If `zero_mic`, the MIC field is written as zeros (the form the MIC
  /// itself is computed over).
  [[nodiscard]] Bytes encode(bool zero_mic = false) const;

  static std::optional<EapolKeyFrame> decode(BytesView frame);

  /// Compute HMAC-SHA1-128 over the zero-MIC encoding with the KCK.
  [[nodiscard]] std::array<std::uint8_t, kMicSize> compute_mic(
      const std::array<std::uint8_t, 16>& kck) const;

  /// Fill in the MIC field (and set the kMic flag).
  void sign(const std::array<std::uint8_t, 16>& kck);

  /// Verify this frame's MIC against the KCK.
  [[nodiscard]] bool verify_mic(const std::array<std::uint8_t, 16>& kck) const;
};

/// Constructors for the four handshake messages. Key data for message 2
/// is the supplicant's RSN IE; message 3 carries the RSN IE plus the GTK
/// KDE wrapped with the KEK (AES Key Wrap).
EapolKeyFrame make_handshake_m1(std::uint64_t replay,
                                const std::array<std::uint8_t, 32>& anonce);
EapolKeyFrame make_handshake_m2(std::uint64_t replay,
                                const std::array<std::uint8_t, 32>& snonce,
                                BytesView rsn_ie,
                                const std::array<std::uint8_t, 16>& kck);
EapolKeyFrame make_handshake_m3(std::uint64_t replay,
                                const std::array<std::uint8_t, 32>& anonce,
                                BytesView rsn_ie, BytesView gtk,
                                const std::array<std::uint8_t, 16>& kck,
                                const std::array<std::uint8_t, 16>& kek);
EapolKeyFrame make_handshake_m4(std::uint64_t replay,
                                const std::array<std::uint8_t, 16>& kck);

/// Unwrap and extract the GTK from a message-3 key-data blob.
std::optional<Bytes> extract_gtk(const EapolKeyFrame& m3,
                                 const std::array<std::uint8_t, 16>& kek);

/// Classify a received EAPOL-Key frame by its flags: returns 1..4, or 0
/// if the flag combination matches no handshake message.
int handshake_message_number(const EapolKeyFrame& frame);

}  // namespace wile::dot11
