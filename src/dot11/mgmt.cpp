#include "dot11/mgmt.hpp"

namespace wile::dot11 {

namespace {
/// Decode helper: run `fn` and convert truncation into nullopt.
template <typename T, typename Fn>
std::optional<T> guarded_decode(BytesView body, Fn&& fn) {
  try {
    ByteReader r{body};
    return fn(r);
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}
}  // namespace

Bytes Beacon::encode() const {
  ByteWriter w(12 + ies.encoded_size());
  w.u64le(timestamp_us);
  w.u16le(beacon_interval_tu);
  w.u16le(capability);
  ies.write_to(w);
  return w.take();
}

std::optional<Beacon> Beacon::decode(BytesView body) {
  return guarded_decode<Beacon>(body, [](ByteReader& r) {
    Beacon b;
    b.timestamp_us = r.u64le();
    b.beacon_interval_tu = r.u16le();
    b.capability = r.u16le();
    b.ies = IeList::read_from(r);
    return b;
  });
}

Bytes ProbeRequest::encode() const {
  ByteWriter w(ies.encoded_size());
  ies.write_to(w);
  return w.take();
}

std::optional<ProbeRequest> ProbeRequest::decode(BytesView body) {
  return guarded_decode<ProbeRequest>(body, [](ByteReader& r) {
    ProbeRequest p;
    p.ies = IeList::read_from(r);
    return p;
  });
}

Bytes ProbeResponse::encode() const {
  ByteWriter w(12 + ies.encoded_size());
  w.u64le(timestamp_us);
  w.u16le(beacon_interval_tu);
  w.u16le(capability);
  ies.write_to(w);
  return w.take();
}

std::optional<ProbeResponse> ProbeResponse::decode(BytesView body) {
  return guarded_decode<ProbeResponse>(body, [](ByteReader& r) {
    ProbeResponse p;
    p.timestamp_us = r.u64le();
    p.beacon_interval_tu = r.u16le();
    p.capability = r.u16le();
    p.ies = IeList::read_from(r);
    return p;
  });
}

Bytes Authentication::encode() const {
  ByteWriter w(6);
  w.u16le(static_cast<std::uint16_t>(algorithm));
  w.u16le(transaction_seq);
  w.u16le(static_cast<std::uint16_t>(status));
  return w.take();
}

std::optional<Authentication> Authentication::decode(BytesView body) {
  return guarded_decode<Authentication>(body, [](ByteReader& r) {
    Authentication a;
    a.algorithm = static_cast<Algorithm>(r.u16le());
    a.transaction_seq = r.u16le();
    a.status = static_cast<StatusCode>(r.u16le());
    return a;
  });
}

Bytes AssocRequest::encode() const {
  ByteWriter w(4 + ies.encoded_size());
  w.u16le(capability);
  w.u16le(listen_interval);
  ies.write_to(w);
  return w.take();
}

std::optional<AssocRequest> AssocRequest::decode(BytesView body) {
  return guarded_decode<AssocRequest>(body, [](ByteReader& r) {
    AssocRequest a;
    a.capability = r.u16le();
    a.listen_interval = r.u16le();
    a.ies = IeList::read_from(r);
    return a;
  });
}

Bytes AssocResponse::encode() const {
  ByteWriter w(6 + ies.encoded_size());
  w.u16le(capability);
  w.u16le(static_cast<std::uint16_t>(status));
  w.u16le(static_cast<std::uint16_t>(aid | 0xc000));  // AID MSBs set on air
  ies.write_to(w);
  return w.take();
}

std::optional<AssocResponse> AssocResponse::decode(BytesView body) {
  return guarded_decode<AssocResponse>(body, [](ByteReader& r) {
    AssocResponse a;
    a.capability = r.u16le();
    a.status = static_cast<StatusCode>(r.u16le());
    a.aid = static_cast<std::uint16_t>(r.u16le() & 0x3fff);
    a.ies = IeList::read_from(r);
    return a;
  });
}

Bytes Deauthentication::encode() const {
  ByteWriter w(2);
  w.u16le(static_cast<std::uint16_t>(reason));
  return w.take();
}

std::optional<Deauthentication> Deauthentication::decode(BytesView body) {
  return guarded_decode<Deauthentication>(body, [](ByteReader& r) {
    Deauthentication d;
    d.reason = static_cast<ReasonCode>(r.u16le());
    return d;
  });
}

Bytes Disassociation::encode() const {
  ByteWriter w(2);
  w.u16le(static_cast<std::uint16_t>(reason));
  return w.take();
}

std::optional<Disassociation> Disassociation::decode(BytesView body) {
  return guarded_decode<Disassociation>(body, [](ByteReader& r) {
    Disassociation d;
    d.reason = static_cast<ReasonCode>(r.u16le());
    return d;
  });
}

}  // namespace wile::dot11
