#include "dot11/ccmp.hpp"

namespace wile::dot11 {

crypto::Aead::Nonce CcmpSession::make_nonce(const MacAddress& ta, std::uint64_t pn) {
  crypto::Aead::Nonce nonce{};
  const auto& mac = ta.octets();
  for (std::size_t i = 0; i < 6; ++i) nonce[i] = mac[i];
  for (int i = 0; i < 6; ++i) {
    nonce[6 + i] = static_cast<std::uint8_t>(pn >> (8 * (5 - i)));
  }
  return nonce;
}

Bytes CcmpSession::seal(const MacAddress& ta, BytesView plaintext) {
  const std::uint64_t pn = ++tx_pn_;
  // CCMP header: PN0 PN1 rsvd flags(ExtIV|keyid) PN2 PN3 PN4 PN5.
  ByteWriter w(kHeaderSize + plaintext.size() + crypto::Aead::kTagSize);
  w.u8(static_cast<std::uint8_t>(pn));
  w.u8(static_cast<std::uint8_t>(pn >> 8));
  w.u8(0x00);
  w.u8(0x20);  // ExtIV, key id 0
  w.u8(static_cast<std::uint8_t>(pn >> 16));
  w.u8(static_cast<std::uint8_t>(pn >> 24));
  w.u8(static_cast<std::uint8_t>(pn >> 32));
  w.u8(static_cast<std::uint8_t>(pn >> 40));
  const Bytes sealed = aead_.seal(make_nonce(ta, pn), ta.octets(), plaintext);
  w.bytes(sealed);
  return w.take();
}

std::optional<Bytes> CcmpSession::open(const MacAddress& ta, BytesView protected_body) {
  if (protected_body.size() < kOverhead) return std::nullopt;
  if ((protected_body[3] & 0x20) == 0) return std::nullopt;  // ExtIV required
  const std::uint64_t pn =
      static_cast<std::uint64_t>(protected_body[0]) |
      (static_cast<std::uint64_t>(protected_body[1]) << 8) |
      (static_cast<std::uint64_t>(protected_body[4]) << 16) |
      (static_cast<std::uint64_t>(protected_body[5]) << 24) |
      (static_cast<std::uint64_t>(protected_body[6]) << 32) |
      (static_cast<std::uint64_t>(protected_body[7]) << 40);
  if (pn <= last_rx_pn_) return std::nullopt;  // replay
  auto plain = aead_.open(make_nonce(ta, pn), ta.octets(),
                          protected_body.subspan(kHeaderSize));
  if (!plain) return std::nullopt;
  last_rx_pn_ = pn;
  return plain;
}

}  // namespace wile::dot11
