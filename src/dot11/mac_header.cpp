#include "dot11/mac_header.hpp"

namespace wile::dot11 {

void MacHeader::write_to(ByteWriter& w) const {
  w.u16le(fc.encode());
  w.u16le(duration_id);
  addr1.write_to(w);
  addr2.write_to(w);
  addr3.write_to(w);
  w.u16le(sequence_control);
}

MacHeader MacHeader::read_from(ByteReader& r) {
  MacHeader h;
  h.fc = FrameControl::decode(r.u16le());
  h.duration_id = r.u16le();
  h.addr1 = MacAddress::read_from(r);
  h.addr2 = MacAddress::read_from(r);
  h.addr3 = MacAddress::read_from(r);
  h.sequence_control = r.u16le();
  return h;
}

}  // namespace wile::dot11
