// 802.11 information elements (IEEE 802.11-2012 §8.4.2).
//
// Management frame bodies are mostly TLV lists of information elements.
// Wi-LE's entire data path lives in one of them: the Vendor Specific IE
// (id 221), which the paper picks because it "can be up to 253 bytes and
// does not have any specific format" (§4.1). The hidden-SSID trick is a
// zero-length SSID IE (§4.1 again).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/byte_buffer.hpp"

namespace wile::dot11 {

enum class IeId : std::uint8_t {
  Ssid = 0,
  SupportedRates = 1,
  DsParam = 3,
  Tim = 5,
  Country = 7,
  ErpInfo = 42,
  HtCapabilities = 45,
  Rsn = 48,
  ExtSupportedRates = 50,
  HtOperation = 61,
  VendorSpecific = 221,
};

/// One raw element: id, then up to 255 bytes of payload.
struct InfoElement {
  IeId id{};
  Bytes data;

  friend bool operator==(const InfoElement&, const InfoElement&) = default;
};

/// Ordered element list with codec and typed accessors.
class IeList {
 public:
  /// Maximum payload of a single element.
  static constexpr std::size_t kMaxIeData = 255;
  /// Maximum usable payload of a vendor-specific element once the 3-byte
  /// OUI is spent — the 253-byte budget the paper quotes minus OUI... see
  /// vendor_payload_capacity() for the exact arithmetic Wi-LE uses.
  static constexpr std::size_t kMaxVendorData = kMaxIeData - 3;

  IeList() = default;

  void add(InfoElement ie);
  void add(IeId id, BytesView data);

  [[nodiscard]] const std::vector<InfoElement>& elements() const { return elements_; }
  [[nodiscard]] bool empty() const { return elements_.empty(); }
  [[nodiscard]] std::size_t size() const { return elements_.size(); }

  /// First element with the given id, if any.
  [[nodiscard]] const InfoElement* find(IeId id) const;
  /// All elements with the given id (vendor IEs commonly repeat).
  [[nodiscard]] std::vector<const InfoElement*> find_all(IeId id) const;

  void write_to(ByteWriter& w) const;
  [[nodiscard]] std::size_t encoded_size() const;

  /// Parse elements until the reader is exhausted. Throws BufferUnderflow
  /// on a truncated element (length byte promising more than remains).
  static IeList read_from(ByteReader& r);

  friend bool operator==(const IeList&, const IeList&) = default;

 private:
  std::vector<InfoElement> elements_;
};

// ---------------------------------------------------------------------------
// Typed element builders/parsers.
// ---------------------------------------------------------------------------

/// SSID element. An empty ssid encodes the "hidden SSID" wildcard/null
/// element Wi-LE transmits (zero-length, §4.1).
InfoElement make_ssid_ie(std::string_view ssid);
std::optional<std::string> parse_ssid_ie(const IeList& ies);
/// True when the list carries an SSID element of length zero (hidden).
bool has_hidden_ssid(const IeList& ies);

/// Supported rates in units of 500 kbit/s; `basic` rates get the high bit.
struct SupportedRates {
  std::vector<std::uint8_t> rates_500kbps;  // raw, incl. basic-rate bit
  void add(double mbps, bool basic);
  [[nodiscard]] std::vector<double> mbps() const;
};
InfoElement make_supported_rates_ie(const SupportedRates& rates);
std::optional<SupportedRates> parse_supported_rates_ie(const IeList& ies);
/// The standard b/g rate set our simulated network advertises.
SupportedRates default_bg_rates();

/// DS Parameter Set: the 2.4 GHz channel number.
InfoElement make_ds_param_ie(std::uint8_t channel);
std::optional<std::uint8_t> parse_ds_param_ie(const IeList& ies);

/// Traffic Indication Map (§8.4.2.7). The AP sets one bit per
/// association ID with buffered downlink traffic; PS clients read their
/// bit to decide whether to stay awake. We encode the minimal partial
/// virtual bitmap covering the set AIDs.
struct Tim {
  std::uint8_t dtim_count = 0;
  std::uint8_t dtim_period = 1;
  bool multicast_buffered = false;    // bitmap control bit 0
  std::vector<std::uint16_t> aids;    // AIDs with traffic (1..2007)

  [[nodiscard]] bool traffic_for(std::uint16_t aid) const;
};
InfoElement make_tim_ie(const Tim& tim);
std::optional<Tim> parse_tim_ie(const IeList& ies);

/// RSN element for WPA2-PSK with CCMP pairwise+group cipher (the Google
/// WiFi configuration in the paper's testbed).
InfoElement make_rsn_psk_ccmp_ie();
/// True if the list has an RSN element selecting PSK AKM.
bool has_rsn_psk(const IeList& ies);

/// Vendor-specific element: 3-byte OUI + one vendor subtype byte +
/// payload. Returns nullopt if payload exceeds capacity.
std::optional<InfoElement> make_vendor_ie(const std::array<std::uint8_t, 3>& oui,
                                          std::uint8_t subtype, BytesView payload);
struct VendorIe {
  std::array<std::uint8_t, 3> oui{};
  std::uint8_t subtype = 0;
  Bytes payload;
};
/// All vendor elements matching the OUI (any subtype).
std::vector<VendorIe> parse_vendor_ies(const IeList& ies,
                                       const std::array<std::uint8_t, 3>& oui);
/// Bytes available for payload in one vendor IE after OUI + subtype.
constexpr std::size_t vendor_payload_capacity() { return IeList::kMaxIeData - 4; }

/// ERP Information (802.11g protection bits); we advertise none set.
InfoElement make_erp_ie();

/// Country element ("CA " — the paper's testbed is in Canada) with one
/// 2.4 GHz triplet.
InfoElement make_country_ie();

/// Minimal HT Capabilities advertising a single stream, 20 MHz, SGI —
/// enough for the 72.2 Mbps mode Wi-LE transmits at.
InfoElement make_ht_caps_ie();
bool has_ht_caps(const IeList& ies);

}  // namespace wile::dot11
