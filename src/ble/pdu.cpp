#include "ble/pdu.hpp"

#include "crypto/crc.hpp"

namespace wile::ble {

Bytes AdvertisingPdu::encode() const {
  if (adv_data.size() > 31) throw std::invalid_argument("AdvData exceeds 31 bytes");
  ByteWriter w(2 + 6 + adv_data.size());
  std::uint8_t h0 = static_cast<std::uint8_t>(type) & 0x0f;
  if (tx_add_random) h0 |= 0x40;  // TxAdd
  w.u8(h0);
  w.u8(static_cast<std::uint8_t>(6 + adv_data.size()));  // length
  // AdvA is transmitted LSB first (little-endian byte order).
  const auto& mac = advertiser.octets();
  for (int i = 5; i >= 0; --i) w.u8(mac[i]);
  w.bytes(adv_data);
  return w.take();
}

std::optional<AdvertisingPdu> AdvertisingPdu::decode(BytesView pdu) {
  if (pdu.size() < 8) return std::nullopt;
  AdvertisingPdu out;
  out.type = static_cast<AdvPduType>(pdu[0] & 0x0f);
  out.tx_add_random = (pdu[0] & 0x40) != 0;
  const std::size_t len = pdu[1] & 0x3f;
  if (len < 6 || pdu.size() < 2 + len) return std::nullopt;
  std::array<std::uint8_t, 6> mac{};
  for (int i = 0; i < 6; ++i) mac[5 - i] = pdu[2 + i];
  out.advertiser = MacAddress{mac};
  out.adv_data.assign(pdu.begin() + 8, pdu.begin() + 2 + len);
  return out;
}

Bytes DataPdu::encode() const {
  if (payload.size() > 27) throw std::invalid_argument("Data PDU payload exceeds 27 bytes");
  ByteWriter w(2 + payload.size());
  std::uint8_t h0 = static_cast<std::uint8_t>(llid) & 0x03;
  if (nesn) h0 |= 0x04;
  if (sn) h0 |= 0x08;
  if (more_data) h0 |= 0x10;
  w.u8(h0);
  w.u8(static_cast<std::uint8_t>(payload.size()));
  w.bytes(payload);
  return w.take();
}

std::optional<DataPdu> DataPdu::decode(BytesView pdu) {
  if (pdu.size() < 2) return std::nullopt;
  DataPdu out;
  out.llid = static_cast<Llid>(pdu[0] & 0x03);
  out.nesn = (pdu[0] & 0x04) != 0;
  out.sn = (pdu[0] & 0x08) != 0;
  out.more_data = (pdu[0] & 0x10) != 0;
  const std::size_t len = pdu[1] & 0x1f;
  if (pdu.size() < 2 + len) return std::nullopt;
  out.payload.assign(pdu.begin() + 2, pdu.begin() + 2 + len);
  return out;
}

DataPdu DataPdu::empty_poll(bool nesn, bool sn) {
  DataPdu p;
  p.llid = Llid::Continuation;
  p.nesn = nesn;
  p.sn = sn;
  return p;
}

void whiten(std::uint8_t channel, std::uint8_t* data, std::size_t len) {
  // 7-bit LFSR, position 6 initialised to 1, positions 5..0 to the
  // channel index; polynomial x^7 + x^4 + 1, applied bit 0 first.
  std::uint8_t lfsr = static_cast<std::uint8_t>(0x40 | (channel & 0x3f));
  for (std::size_t i = 0; i < len; ++i) {
    std::uint8_t byte = data[i];
    for (int bit = 0; bit < 8; ++bit) {
      const std::uint8_t white = (lfsr >> 6) & 1;
      byte = static_cast<std::uint8_t>(byte ^ (white << bit));
      // Advance the LFSR: feedback from position 6 into positions 0 and 4.
      const std::uint8_t fb = (lfsr >> 6) & 1;
      lfsr = static_cast<std::uint8_t>((lfsr << 1) & 0x7f);
      if (fb) lfsr ^= 0x11;  // taps at x^4 and x^0
    }
    data[i] = byte;
  }
}

Bytes assemble_air_packet(std::uint32_t access_address, BytesView pdu, std::uint8_t channel,
                          std::uint32_t crc_init) {
  ByteWriter w(4 + pdu.size() + 3);
  w.u32le(access_address);
  // CRC is computed over the un-whitened PDU, then PDU+CRC are whitened.
  const std::uint32_t crc = crypto::crc24_ble(pdu, crc_init);
  Bytes body(pdu.begin(), pdu.end());
  body.push_back(static_cast<std::uint8_t>(crc & 0xff));
  body.push_back(static_cast<std::uint8_t>((crc >> 8) & 0xff));
  body.push_back(static_cast<std::uint8_t>((crc >> 16) & 0xff));
  whiten(channel, body.data(), body.size());
  w.bytes(body);
  return w.take();
}

std::optional<AirPacket> parse_air_packet(BytesView packet, std::uint8_t channel,
                                          std::uint32_t crc_init) {
  if (packet.size() < 4 + 2 + 3) return std::nullopt;
  AirPacket out;
  ByteReader r{packet};
  out.access_address = r.u32le();
  Bytes body(packet.begin() + 4, packet.end());
  whiten(channel, body.data(), body.size());
  const std::size_t pdu_len = body.size() - 3;
  const std::uint32_t wire_crc = static_cast<std::uint32_t>(body[pdu_len]) |
                                 (static_cast<std::uint32_t>(body[pdu_len + 1]) << 8) |
                                 (static_cast<std::uint32_t>(body[pdu_len + 2]) << 16);
  out.pdu.assign(body.begin(), body.begin() + static_cast<std::ptrdiff_t>(pdu_len));
  out.crc_ok = crypto::crc24_ble(out.pdu, crc_init) == wire_crc;
  return out;
}

}  // namespace wile::ble
