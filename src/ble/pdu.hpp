// Bluetooth Low Energy 4.x link-layer PDUs (Core spec Vol 6 Part B §2).
//
// The paper's BLE baseline is a CC2541 slave that "periodically transmits
// a data packet to another BLE device which is in the master mode". We
// implement the actual on-air format — advertising and data channel PDUs,
// CRC-24, and the channel whitening LFSR — so the baseline rides a real
// protocol stack rather than a constant.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/byte_buffer.hpp"
#include "util/mac_address.hpp"

namespace wile::ble {

/// Advertising channel PDU types (Vol 6 Part B §2.3).
enum class AdvPduType : std::uint8_t {
  AdvInd = 0b0000,
  AdvDirectInd = 0b0001,
  AdvNonconnInd = 0b0010,
  ScanReq = 0b0011,
  ScanRsp = 0b0100,
  ConnectInd = 0b0101,
  AdvScanInd = 0b0110,
};

/// The fixed access address of the three advertising channels.
constexpr std::uint32_t kAdvAccessAddress = 0x8E89BED6;
/// Advertising channel indices 37, 38, 39.
constexpr std::array<std::uint8_t, 3> kAdvChannels = {37, 38, 39};

struct AdvertisingPdu {
  AdvPduType type = AdvPduType::AdvNonconnInd;
  bool tx_add_random = true;  // AdvA is a random device address
  MacAddress advertiser;      // AdvA
  Bytes adv_data;             // 0..31 bytes of AD structures

  /// PDU bytes: 2-byte header + AdvA + AdvData (no preamble/AA/CRC).
  [[nodiscard]] Bytes encode() const;
  static std::optional<AdvertisingPdu> decode(BytesView pdu);
};

/// Data channel PDU header fields (Vol 6 Part B §2.4).
struct DataPdu {
  enum class Llid : std::uint8_t {
    Continuation = 0b01,  // or empty PDU
    Start = 0b10,         // complete L2CAP frame (our sensor payloads)
    Control = 0b11,
  };
  Llid llid = Llid::Start;
  bool nesn = false;
  bool sn = false;
  bool more_data = false;
  Bytes payload;  // <= 27 bytes in 4.0/4.1

  [[nodiscard]] Bytes encode() const;
  static std::optional<DataPdu> decode(BytesView pdu);

  /// An empty continuation PDU — what a master sends to poll its slave.
  static DataPdu empty_poll(bool nesn, bool sn);
};

/// Assemble a full on-air packet (without preamble): access address,
/// whitened (PDU || CRC24). `channel` selects the whitening seed;
/// `crc_init` is 0x555555 for advertising PDUs.
Bytes assemble_air_packet(std::uint32_t access_address, BytesView pdu, std::uint8_t channel,
                          std::uint32_t crc_init = 0x555555);

struct AirPacket {
  std::uint32_t access_address = 0;
  Bytes pdu;
  bool crc_ok = false;
};
/// Reverse of assemble_air_packet. Returns nullopt if too short.
std::optional<AirPacket> parse_air_packet(BytesView packet, std::uint8_t channel,
                                          std::uint32_t crc_init = 0x555555);

/// In-place BLE whitening/de-whitening (self-inverse). LFSR x^7 + x^4 + 1
/// seeded with the channel index (Vol 6 Part B §3.2).
void whiten(std::uint8_t channel, std::uint8_t* data, std::size_t len);

}  // namespace wile::ble
