// BLE advertising — the closest BLE analogue of Wi-LE's beacon trick.
//
// A non-connectable advertiser (ADV_NONCONN_IND) broadcasts its payload
// on the three advertising channels each event; any scanner can read it
// without a connection — exactly the interaction model Wi-LE builds on
// WiFi. Implemented with the real PDU format (pdu.hpp) and the CC2541
// power phases, so the library can answer the natural follow-up
// question the paper leaves open: how does Wi-LE compare to *BLE
// beacons*, not just to connection-oriented BLE? (bench/ablate_beacon_modes)
#pragma once

#include <functional>
#include <optional>

#include "ble/pdu.hpp"
#include "phy/ble_phy.hpp"
#include "power/devices.hpp"
#include "power/timeline.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace wile::ble {

struct BleAdvertiserConfig {
  MacAddress address = MacAddress::from_seed(0xAD7);
  Duration adv_interval = seconds(1);
  /// Advertising channels used per event (1..3; standard events use 3).
  int channels = 3;
  /// Radio retune time between the per-channel transmissions.
  Duration channel_hop_time = usec(400);
  double tx_power_dbm = 0.0;
  /// Spec advDelay: a uniform pseudo-random delay in [0, adv_delay_max]
  /// added to every advertising interval (Core v4.2 Vol 6 Part B §4.4.2.2
  /// prescribes 0-10 ms) so co-periodic advertisers drift apart. Zero =
  /// fixed cadence — the legacy behaviour, with no RNG draws at all.
  Duration adv_delay_max{};
  power::Cc2541PowerProfile power{};
};

struct AdvEventReport {
  TimePoint wake_time{};
  TimePoint sleep_time{};
  Joules energy{};
  Duration active_time{};
  int pdus_sent = 0;
};

class BleAdvertiser : public sim::MediumClient {
 public:
  /// `rng` feeds the advDelay draw only; the default keeps legacy
  /// fixed-cadence advertisers free of any randomness.
  BleAdvertiser(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
                BleAdvertiserConfig config, Rng rng = Rng{0});

  using PayloadProvider = std::function<Bytes()>;  // <= 31 bytes AdvData
  using EventCallback = std::function<void(const AdvEventReport&)>;

  /// Begin periodic advertising; `provider` supplies each event's AdvData.
  void start(PayloadProvider provider, EventCallback per_event = {});
  void stop();

  /// One-shot advertising event.
  void advertise_once(Bytes adv_data, EventCallback done);

  [[nodiscard]] const power::PowerTimeline& timeline() const { return timeline_; }
  [[nodiscard]] std::uint64_t events_run() const { return events_; }

  void on_frame(const sim::RxFrame&) override {}  // transmit-only role
  [[nodiscard]] bool rx_enabled() const override { return false; }

 private:
  void schedule_event_loop();
  void run_event(Bytes adv_data, EventCallback done);
  void transmit_channel(int index, Bytes adv_data, EventCallback done);
  void finish_event(EventCallback done, int pdus);

  sim::Scheduler& scheduler_;
  sim::Medium& medium_;
  BleAdvertiserConfig config_;
  sim::NodeId node_id_;
  power::PowerTimeline timeline_;
  Rng rng_;

  bool running_ = false;
  std::uint64_t events_ = 0;
  TimePoint wake_time_{};
  PayloadProvider provider_;
  EventCallback per_event_;
};

/// A mains-powered scanner collecting advertising PDUs (the phone/base
/// station of the BLE-beacon deployment). Listens continuously; our
/// single-medium model means it hears every channel, which is the
/// best-case scanner (energy on the advertiser side is unaffected).
class BleScanner : public sim::MediumClient {
 public:
  BleScanner(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position);

  using AdvCallback = std::function<void(const AdvertisingPdu&, double rssi_dbm)>;
  void set_callback(AdvCallback cb) { callback_ = std::move(cb); }

  [[nodiscard]] std::uint64_t pdus_received() const { return received_; }
  [[nodiscard]] std::uint64_t crc_failures() const { return crc_failures_; }

  void on_frame(const sim::RxFrame& frame) override;
  [[nodiscard]] bool rx_enabled() const override { return true; }

 private:
  sim::NodeId node_id_;
  AdvCallback callback_;
  std::uint64_t received_ = 0;
  std::uint64_t crc_failures_ = 0;
};

}  // namespace wile::ble
