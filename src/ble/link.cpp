#include "ble/link.hpp"

namespace wile::ble {

// ---------------------------------------------------------------------------
// Master.
// ---------------------------------------------------------------------------

BleMaster::BleMaster(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
                     BleLinkConfig config)
    : scheduler_(scheduler), medium_(medium), config_(config) {
  node_id_ = medium_.attach(this, position);
}

void BleMaster::start() {
  if (running_) return;
  running_ = true;
  scheduler_.schedule_in(config_.connection_interval, [this] { run_event(); });
}

bool BleMaster::rx_enabled() const { return !medium_.transmitting(node_id_); }

void BleMaster::run_event() {
  if (!running_) return;
  ++events_;
  const DataPdu poll = DataPdu::empty_poll(/*nesn=*/!sn_, /*sn=*/sn_);
  sn_ = !sn_;
  const Bytes packet =
      assemble_air_packet(config_.access_address, poll.encode(), config_.data_channel,
                          config_.crc_init);
  sim::TxRequest req;
  req.mpdu = packet;
  // On-air time includes the 1-byte preamble not present in `packet`.
  req.airtime = phy::BlePhy::pdu_airtime(poll.encode().size() - 2);
  req.tx_power_dbm = config_.tx_power_dbm;
  medium_.transmit(node_id_, std::move(req));
  scheduler_.schedule_in(config_.connection_interval, [this] { run_event(); });
}

void BleMaster::on_frame(const sim::RxFrame& frame) {
  auto air = parse_air_packet(frame.mpdu, config_.data_channel, config_.crc_init);
  if (!air || !air->crc_ok || air->access_address != config_.access_address) return;
  auto pdu = DataPdu::decode(air->pdu);
  if (!pdu) return;
  if (pdu->llid == DataPdu::Llid::Start && !pdu->payload.empty()) {
    received_.push_back(pdu->payload);
  }
}

// ---------------------------------------------------------------------------
// Slave.
// ---------------------------------------------------------------------------

BleSlave::BleSlave(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
                   BleLinkConfig config)
    : scheduler_(scheduler),
      medium_(medium),
      config_(config),
      timeline_(config.power.supply) {
  node_id_ = medium_.attach(this, position);
  timeline_.set_current(scheduler_.now(), config_.power.sleep, "Sleep");
}

void BleSlave::start() {
  schedule_next_event(scheduler_.now() + config_.connection_interval);
}

void BleSlave::queue_payload(Bytes payload) {
  if (payload.size() > 27) throw std::invalid_argument("BLE payload exceeds 27 bytes");
  pending_.push_back(std::move(payload));
}

bool BleSlave::rx_enabled() const {
  return state_ == State::RxWait && !medium_.transmitting(node_id_);
}

void BleSlave::schedule_next_event(TimePoint anchor) {
  const Duration bring_up =
      config_.power.wake_up_time + config_.power.pre_processing_time + config_.rx_guard;
  const TimePoint wake_at = anchor - bring_up;
  scheduler_.schedule_at(wake_at, [this, anchor] {
    // Slave latency: with nothing to send and skips left in the budget,
    // sleep through this event entirely (the master transmits into
    // silence, as real masters do for latent slaves).
    if (config_.slave_latency > 0 && pending_.empty() &&
        consecutive_skips_ < config_.slave_latency) {
      ++consecutive_skips_;
      ++events_skipped_;
      schedule_next_event(anchor + config_.connection_interval);
      return;
    }
    consecutive_skips_ = 0;
    begin_event(anchor);
  });
}

void BleSlave::begin_event(TimePoint anchor) {
  ++events_;
  wake_time_ = scheduler_.now();
  state_ = State::WakeUp;
  timeline_.set_current(wake_time_, config_.power.wake_up, "Wake-up");
  scheduler_.schedule_in(config_.power.wake_up_time, [this, anchor] {
    state_ = State::PreProcessing;
    timeline_.set_current(scheduler_.now(), config_.power.pre_processing, "Pre-processing");
    scheduler_.schedule_in(config_.power.pre_processing_time, [this, anchor] {
      state_ = State::RxWait;
      timeline_.set_current(scheduler_.now(), config_.power.radio_rx, "Rx");
      // Give up if the master's poll never arrives.
      const TimePoint deadline = anchor + config_.poll_timeout;
      poll_timer_ = scheduler_.schedule_at(deadline, [this] {
        poll_timer_.reset();
        ++polls_missed_;
        end_event(/*data_sent=*/false);
      });
    });
  });
}

void BleSlave::on_frame(const sim::RxFrame& frame) {
  if (state_ != State::RxWait) return;
  auto air = parse_air_packet(frame.mpdu, config_.data_channel, config_.crc_init);
  if (!air || !air->crc_ok || air->access_address != config_.access_address) return;
  auto pdu = DataPdu::decode(air->pdu);
  if (!pdu) return;

  if (poll_timer_) {
    scheduler_.cancel(*poll_timer_);
    poll_timer_.reset();
  }
  state_ = State::Ifs;
  timeline_.set_current(scheduler_.now(), config_.power.ifs_idle, "T_IFS");
  scheduler_.schedule_in(phy::BlePhy::kTifs, [this] { respond_with_data(); });
}

void BleSlave::respond_with_data() {
  DataPdu pdu;
  if (pending_.empty()) {
    pdu = DataPdu::empty_poll(!sn_, sn_);
  } else {
    pdu.llid = DataPdu::Llid::Start;
    pdu.payload = std::move(pending_.front());
    pending_.pop_front();
    pdu.nesn = !sn_;
    pdu.sn = sn_;
  }
  sn_ = !sn_;
  const bool has_data = pdu.llid == DataPdu::Llid::Start;

  const Bytes encoded = pdu.encode();
  const Bytes packet =
      assemble_air_packet(config_.access_address, encoded, config_.data_channel,
                          config_.crc_init);
  state_ = State::Tx;
  timeline_.set_current(scheduler_.now(), config_.power.radio_tx, "Tx");

  sim::TxRequest req;
  req.mpdu = packet;
  req.airtime = phy::BlePhy::pdu_airtime(encoded.size() - 2);
  req.tx_power_dbm = config_.tx_power_dbm;
  req.on_complete = [this, has_data] {
    state_ = State::PostProcessing;
    timeline_.set_current(scheduler_.now(), config_.power.post_processing,
                          "Post-processing");
    scheduler_.schedule_in(config_.power.post_processing_time,
                           [this, has_data] { end_event(has_data); });
  };
  medium_.transmit(node_id_, std::move(req));
}

void BleSlave::end_event(bool data_sent) {
  state_ = State::Sleep;
  const TimePoint sleep_at = scheduler_.now();
  timeline_.set_current(sleep_at, config_.power.sleep, "Sleep");

  BleEventReport report;
  report.data_sent = data_sent;
  report.wake_time = wake_time_;
  report.sleep_time = sleep_at;
  report.active_time = sleep_at - wake_time_;
  report.energy = timeline_.energy_between(wake_time_, sleep_at);
  if (event_cb_) event_cb_(report);

  // Next anchor: maintain the cadence relative to the event we just ran.
  const Duration bring_up =
      config_.power.wake_up_time + config_.power.pre_processing_time + config_.rx_guard;
  const TimePoint last_anchor = wake_time_ + bring_up;
  schedule_next_event(last_anchor + config_.connection_interval);
}

}  // namespace wile::ble
