// BLE connection-event link model: a CC2541-class slave reporting to a
// mains-powered master (the paper's BLE scenario, §5.3: "the BLE chip is
// in the slave mode, and periodically transmits a data packet to another
// BLE device which is in the master mode. The microcontroller goes into
// the deep sleep mode between the transmissions").
//
// Each connection event follows the Core spec sequence on a shared data
// channel: the master transmits an (empty) poll PDU at the anchor point,
// the slave answers T_IFS = 150 us later with its data PDU. The slave's
// radio bring-up/tear-down phases and currents follow the TI SWRA347a
// measurement report, which is also where the paper takes its BLE
// numbers from.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "ble/pdu.hpp"
#include "phy/ble_phy.hpp"
#include "power/devices.hpp"
#include "power/timeline.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace wile::ble {

struct BleLinkConfig {
  std::uint32_t access_address = 0x50123456;
  std::uint32_t crc_init = 0x0BAD5E;
  std::uint8_t data_channel = 11;
  Duration connection_interval = seconds(1);
  double tx_power_dbm = 0.0;  // matches the paper's 0 dBm comparison
  /// Slave receive window opens this long before the anchor point
  /// (sleep-clock uncertainty guard).
  Duration rx_guard = usec(150);
  /// Give up on the master's poll this long after the anchor.
  Duration poll_timeout = msec(2);
  /// Slave latency (Core spec connection parameter): with no data
  /// pending, the slave may sleep through up to this many consecutive
  /// connection events — BLE's analogue of the WiFi-PS beacon-skip knob.
  int slave_latency = 0;
  power::Cc2541PowerProfile power{};
};

/// Per-connection-event summary from the slave, for Table 1 / Fig. 4.
struct BleEventReport {
  bool data_sent = false;
  TimePoint wake_time{};
  TimePoint sleep_time{};
  Joules energy{};
  Duration active_time{};
};

class BleMaster : public sim::MediumClient {
 public:
  BleMaster(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
            BleLinkConfig config);

  /// Begin issuing connection events, first anchor one interval from now.
  void start();

  [[nodiscard]] const std::vector<Bytes>& received_payloads() const { return received_; }
  [[nodiscard]] std::uint64_t events_run() const { return events_; }
  [[nodiscard]] sim::NodeId node_id() const { return node_id_; }

  void on_frame(const sim::RxFrame& frame) override;
  [[nodiscard]] bool rx_enabled() const override;

 private:
  void run_event();

  sim::Scheduler& scheduler_;
  sim::Medium& medium_;
  BleLinkConfig config_;
  sim::NodeId node_id_;
  bool running_ = false;
  bool sn_ = false;
  std::uint64_t events_ = 0;
  std::vector<Bytes> received_;
};

class BleSlave : public sim::MediumClient {
 public:
  BleSlave(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
           BleLinkConfig config);

  /// Begin following the master's anchor schedule (call start() on the
  /// master in the same simulated instant).
  void start();

  /// Queue a payload (<= 27 bytes) for the next connection event.
  void queue_payload(Bytes payload);

  using EventCallback = std::function<void(const BleEventReport&)>;
  void set_event_callback(EventCallback cb) { event_cb_ = std::move(cb); }

  [[nodiscard]] const power::PowerTimeline& timeline() const { return timeline_; }
  [[nodiscard]] std::uint64_t events_attended() const { return events_; }
  [[nodiscard]] std::uint64_t events_skipped() const { return events_skipped_; }
  [[nodiscard]] std::uint64_t polls_missed() const { return polls_missed_; }
  [[nodiscard]] sim::NodeId node_id() const { return node_id_; }
  [[nodiscard]] const BleLinkConfig& config() const { return config_; }

  void on_frame(const sim::RxFrame& frame) override;
  [[nodiscard]] bool rx_enabled() const override;

 private:
  enum class State { Sleep, WakeUp, PreProcessing, RxWait, Ifs, Tx, PostProcessing };

  void schedule_next_event(TimePoint anchor);
  void begin_event(TimePoint anchor);
  void respond_with_data();
  void end_event(bool data_sent);

  sim::Scheduler& scheduler_;
  sim::Medium& medium_;
  BleLinkConfig config_;
  sim::NodeId node_id_;
  power::PowerTimeline timeline_;

  State state_ = State::Sleep;
  bool sn_ = false;
  TimePoint wake_time_{};
  std::deque<Bytes> pending_;
  std::optional<sim::EventId> poll_timer_;
  std::uint64_t events_ = 0;
  std::uint64_t events_skipped_ = 0;
  int consecutive_skips_ = 0;
  std::uint64_t polls_missed_ = 0;
  EventCallback event_cb_;
};

}  // namespace wile::ble
