#include "ble/advertiser.hpp"

#include <stdexcept>

namespace wile::ble {

BleAdvertiser::BleAdvertiser(sim::Scheduler& scheduler, sim::Medium& medium,
                             sim::Position position, BleAdvertiserConfig config, Rng rng)
    : scheduler_(scheduler),
      medium_(medium),
      config_(config),
      timeline_(config.power.supply),
      rng_(rng) {
  if (config_.channels < 1 || config_.channels > 3) {
    throw std::invalid_argument("BleAdvertiser: channels must be 1..3");
  }
  node_id_ = medium_.attach(this, position);
  timeline_.set_current(scheduler_.now(), config_.power.sleep, "Sleep");
}

void BleAdvertiser::start(PayloadProvider provider, EventCallback per_event) {
  if (!provider) throw std::invalid_argument("BleAdvertiser: null payload provider");
  running_ = true;
  provider_ = std::move(provider);
  per_event_ = std::move(per_event);
  schedule_event_loop();
}

void BleAdvertiser::schedule_event_loop() {
  // Cadence is wake-to-wake; an advertising event lasts a few ms and the
  // spec's minimum interval is 100 ms, so events never overlap.
  Duration interval = config_.adv_interval;
  if (config_.adv_delay_max.count() > 0) {
    // Spec advDelay: perturb each event so co-periodic advertisers
    // cannot collide forever (pure ALOHA needs this to be honest).
    interval += Duration{static_cast<std::int64_t>(
        rng_.below(static_cast<std::uint64_t>(config_.adv_delay_max.count()) + 1))};
  }
  scheduler_.schedule_in(interval, [this] {
    if (!running_) return;
    schedule_event_loop();
    run_event(provider_(), [this](const AdvEventReport& r) {
      if (per_event_) per_event_(r);
    });
  });
}

void BleAdvertiser::stop() { running_ = false; }

void BleAdvertiser::advertise_once(Bytes adv_data, EventCallback done) {
  run_event(std::move(adv_data), std::move(done));
}

void BleAdvertiser::run_event(Bytes adv_data, EventCallback done) {
  if (adv_data.size() > phy::BlePhy::kMaxAdvData) {
    throw std::invalid_argument("BleAdvertiser: AdvData exceeds 31 bytes");
  }
  ++events_;
  wake_time_ = scheduler_.now();
  timeline_.set_current(wake_time_, config_.power.wake_up, "Wake-up");
  scheduler_.schedule_in(config_.power.wake_up_time, [this, adv_data = std::move(adv_data),
                                                      done = std::move(done)]() mutable {
    timeline_.set_current(scheduler_.now(), config_.power.pre_processing, "Pre-processing");
    scheduler_.schedule_in(config_.power.pre_processing_time,
                           [this, adv_data = std::move(adv_data),
                            done = std::move(done)]() mutable {
                             transmit_channel(0, std::move(adv_data), std::move(done));
                           });
  });
}

void BleAdvertiser::transmit_channel(int index, Bytes adv_data, EventCallback done) {
  AdvertisingPdu pdu;
  pdu.type = AdvPduType::AdvNonconnInd;
  pdu.advertiser = config_.address;
  pdu.adv_data = adv_data;
  const Bytes encoded = pdu.encode();
  const std::uint8_t channel = kAdvChannels[static_cast<std::size_t>(index)];
  const Bytes packet = assemble_air_packet(kAdvAccessAddress, encoded, channel);

  timeline_.set_current(scheduler_.now(), config_.power.radio_tx, "Tx");
  sim::TxRequest req;
  req.mpdu = packet;
  req.airtime = phy::BlePhy::pdu_airtime(encoded.size() - 2);
  req.tx_power_dbm = config_.tx_power_dbm;
  req.on_complete = [this, index, adv_data = std::move(adv_data),
                     done = std::move(done)]() mutable {
    if (index + 1 < config_.channels) {
      // Retune to the next advertising channel.
      timeline_.set_current(scheduler_.now(), config_.power.pre_processing, "Hop");
      scheduler_.schedule_in(config_.channel_hop_time,
                             [this, index, adv_data = std::move(adv_data),
                              done = std::move(done)]() mutable {
                               transmit_channel(index + 1, std::move(adv_data),
                                                std::move(done));
                             });
    } else {
      timeline_.set_current(scheduler_.now(), config_.power.post_processing,
                            "Post-processing");
      scheduler_.schedule_in(config_.power.post_processing_time,
                             [this, done = std::move(done), pdus = index + 1]() mutable {
                               finish_event(std::move(done), pdus);
                             });
    }
  };
  medium_.transmit(node_id_, std::move(req));
}

void BleAdvertiser::finish_event(EventCallback done, int pdus) {
  const TimePoint sleep_at = scheduler_.now();
  timeline_.set_current(sleep_at, config_.power.sleep, "Sleep");
  AdvEventReport report;
  report.wake_time = wake_time_;
  report.sleep_time = sleep_at;
  report.active_time = sleep_at - wake_time_;
  report.energy = timeline_.energy_between(wake_time_, sleep_at);
  report.pdus_sent = pdus;
  if (done) done(report);
}

BleScanner::BleScanner(sim::Scheduler& scheduler, sim::Medium& medium,
                       sim::Position position) {
  (void)scheduler;
  node_id_ = medium.attach(this, position);
}

void BleScanner::on_frame(const sim::RxFrame& frame) {
  // Try all three advertising channels' whitening; a real scanner knows
  // which channel it is parked on, our single-medium model does not.
  for (std::uint8_t channel : kAdvChannels) {
    auto air = parse_air_packet(frame.mpdu, channel);
    if (!air || air->access_address != kAdvAccessAddress) continue;
    if (!air->crc_ok) continue;
    auto pdu = AdvertisingPdu::decode(air->pdu);
    if (!pdu) continue;
    ++received_;
    if (callback_) callback_(*pdu, frame.rx_power_dbm);
    return;
  }
  ++crc_failures_;
}

}  // namespace wile::ble
