#include "wile/rules/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "wile/rules/extractors.hpp"

namespace wile::rules {

std::string_view node_kind_name(NodeKind k) {
  switch (k) {
    case NodeKind::Condition: return "condition";
    case NodeKind::Aggregate: return "aggregate";
    case NodeKind::Hold: return "hold";
    case NodeKind::Cooldown: return "cooldown";
  }
  return "node";
}

Engine::Engine(std::vector<RuleSpec> specs)
    : extract_(ExtractorRegistry::global().get(ExtractorRegistry::kDefault)) {
  rules_.reserve(specs.size());
  for (RuleSpec& spec : specs) {
    Rule rule;
    rule.spec = std::move(spec);
    auto add_node = [&rule](NodeKind kind) {
      rule.nodes.push_back(NodeCounters{kind, 0, 0});
      return static_cast<int>(rule.nodes.size()) - 1;
    };
    if (rule.spec.when) rule.condition_node = add_node(NodeKind::Condition);
    if (rule.spec.aggregate) rule.aggregate_node = add_node(NodeKind::Aggregate);
    if (rule.spec.hold.count() > 0) rule.hold_node = add_node(NodeKind::Hold);
    if (rule.spec.cooldown.count() > 0) rule.cooldown_node = add_node(NodeKind::Cooldown);
    rules_.push_back(std::move(rule));
  }
}

void Engine::set_value_extractor(std::string_view name) {
  extract_ = ExtractorRegistry::global().get(name);
}

bool Engine::compare(double lhs, Cmp cmp, double rhs) {
  switch (cmp) {
    case Cmp::Lt: return lhs < rhs;
    case Cmp::Le: return lhs <= rhs;
    case Cmp::Gt: return lhs > rhs;
    case Cmp::Ge: return lhs >= rhs;
    case Cmp::Eq: return lhs == rhs;
    case Cmp::Ne: return lhs != rhs;
  }
  return false;
}

void Engine::on_message(const core::Message& message, double rssi_dbm, TimePoint at) {
  Reading reading;
  reading.device_id = message.device_id;
  reading.sequence = message.sequence;
  reading.type = message.type;
  reading.rssi_dbm = rssi_dbm;
  reading.value = extract_ ? extract_(message) : std::nullopt;
  reading.at = at;
  on_reading(reading);
}

void Engine::on_reading(const Reading& reading) {
  for (Rule& rule : rules_) evaluate(rule, reading);
}

void Engine::evaluate(Rule& rule, const Reading& reading) {
  DevState& dev = rule.per_device.find_or_insert(reading.device_id);
  dev.last_seen = reading.at;
  dev.seen = true;
  dev.stale_fired = false;  // a fresh reading re-arms the staleness watchdog

  bool pass = true;
  // The value the final comparison sees; overwritten by the aggregate
  // node when present.
  double observed = reading.value.value_or(reading.rssi_dbm);

  if (rule.condition_node >= 0) {
    NodeCounters& node = rule.nodes[static_cast<std::size_t>(rule.condition_node)];
    ++node.evaluated;
    const ConditionSpec& cond = *rule.spec.when;
    std::optional<double> lhs;
    switch (cond.field) {
      case Field::Value: lhs = reading.value; break;
      case Field::RssiDbm: lhs = reading.rssi_dbm; break;
      case Field::DeviceId: lhs = static_cast<double>(reading.device_id); break;
      case Field::Sequence: lhs = static_cast<double>(reading.sequence); break;
    }
    pass = lhs.has_value() && compare(*lhs, cond.cmp, cond.rhs);
    if (pass) {
      ++node.passed;
      observed = *lhs;
    }
  }

  // The aggregate window accumulates only readings that cleared the
  // condition — "mean of the over-threshold samples", W4RPBLE-style.
  if (rule.aggregate_node >= 0 && pass) {
    NodeCounters& node = rule.nodes[static_cast<std::size_t>(rule.aggregate_node)];
    ++node.evaluated;
    const AggregateSpec& agg = *rule.spec.aggregate;
    const double sample =
        agg.op == AggOp::Count ? 1.0 : reading.value.value_or(observed);
    dev.window.emplace_back(reading.at.us(), sample);
    const std::int64_t horizon = reading.at.us() - agg.window.count();
    while (!dev.window.empty() && dev.window.front().first < horizon) {
      dev.window.pop_front();
    }
    double result = 0.0;
    switch (agg.op) {
      case AggOp::Count: result = static_cast<double>(dev.window.size()); break;
      case AggOp::Sum:
      case AggOp::Mean: {
        double sum = 0.0;
        for (const auto& [_, v] : dev.window) sum += v;
        result = agg.op == AggOp::Sum
                     ? sum
                     : sum / static_cast<double>(dev.window.size());
        break;
      }
      case AggOp::Min: {
        result = dev.window.front().second;
        for (const auto& [_, v] : dev.window) result = std::min(result, v);
        break;
      }
      case AggOp::Max: {
        result = dev.window.front().second;
        for (const auto& [_, v] : dev.window) result = std::max(result, v);
        break;
      }
    }
    observed = result;
    pass = compare(result, agg.cmp, agg.rhs);
    if (pass) ++node.passed;
  }

  // Hold sees every reading (a failure upstream must reset the streak),
  // unlike the short-circuited nodes around it.
  if (rule.hold_node >= 0) {
    NodeCounters& node = rule.nodes[static_cast<std::size_t>(rule.hold_node)];
    ++node.evaluated;
    if (pass) {
      if (!dev.holding) {
        dev.holding = true;
        dev.hold_since = reading.at;
      }
      pass = reading.at - dev.hold_since >= rule.spec.hold;
      if (pass) ++node.passed;
    } else {
      dev.holding = false;
    }
  }

  if (rule.cooldown_node >= 0 && pass) {
    NodeCounters& node = rule.nodes[static_cast<std::size_t>(rule.cooldown_node)];
    ++node.evaluated;
    pass = !dev.fired_once || reading.at - dev.last_fire >= rule.spec.cooldown;
    if (pass) ++node.passed;
  }

  if (pass && !rule.nodes.empty()) {
    dev.fired_once = true;
    dev.last_fire = reading.at;
    emit(rule, reading.device_id, reading.at, observed, /*stale=*/false);
  }
}

void Engine::poll(TimePoint now) {
  for (Rule& rule : rules_) {
    if (!rule.spec.stale_after) continue;
    const Duration stale_after = *rule.spec.stale_after;
    rule.per_device.for_each([&](std::uint32_t device_id, DevState& dev) {
      if (!dev.seen || dev.stale_fired) return;
      const Duration silence = now - dev.last_seen;
      if (silence < stale_after) return;
      dev.stale_fired = true;  // once per silence; the next reading re-arms
      emit(rule, device_id, now, to_seconds(silence), /*stale=*/true);
    });
  }
}

void Engine::emit(Rule& rule, std::uint32_t device_id, TimePoint at, double observed,
                  bool stale) {
  ++rule.fired;
  ++fired_total_;
  Fire fire{rule.spec.name, device_id, at, observed, stale};
  if (fires_.size() >= kMaxRetainedFires) fires_.pop_front();
  fires_.push_back(fire);
  if (on_fire_) on_fire_(fire);
}

std::uint64_t Engine::fired(std::string_view rule) const {
  for (const Rule& r : rules_) {
    if (r.spec.name == rule) return r.fired;
  }
  throw std::out_of_range("rules::Engine: unknown rule");
}

const std::vector<NodeCounters>& Engine::nodes(std::string_view rule) const {
  for (const Rule& r : rules_) {
    if (r.spec.name == rule) return r.nodes;
  }
  throw std::out_of_range("rules::Engine: unknown rule");
}

void Engine::publish_metrics(telemetry::MetricsRegistry& registry,
                             const std::string& prefix) const {
  registry.bind_counter(prefix + ".fired", &fired_total_);
  for (const Rule& rule : rules_) {
    const std::string base = prefix + "." + rule.spec.name;
    registry.bind_counter(base + ".fired", &rule.fired);
    for (const NodeCounters& node : rule.nodes) {
      const std::string node_base =
          base + "." + std::string(node_kind_name(node.kind));
      registry.bind_counter(node_base + ".evaluated", &node.evaluated);
      registry.bind_counter(node_base + ".passed", &node.passed);
    }
  }
}

}  // namespace wile::rules
