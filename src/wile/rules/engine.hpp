// Node-based rules engine over decoded gateway readings.
//
// Scenarios express fleet logic — alerting, stale-signal detection, rate
// aggregation — as declarative RuleSpecs instead of recompiled C++. Each
// spec compiles into a small chain of nodes:
//
//   condition  — compare one field of the reading against a constant
//   aggregate  — sliding-window reduce (count/sum/mean/min/max) over the
//                values that passed the condition, compared to a constant
//   hold       — the chain so far must stay true for a minimum duration
//                (debounce); any failure resets the streak
//   cooldown   — minimum spacing between fires per device
//
// plus an out-of-band staleness watchdog (`stale_after`): poll() fires
// once per silence for every device that stopped reporting.
//
// Only the nodes named by the spec are compiled; each keeps evaluated/
// passed counters so per-stage behaviour is observable through telemetry.
// Per-(rule, device) state lives in the same flat open-addressing table
// the ingest path uses (util/flat_table.hpp) — evaluation cost is one
// probe per rule per reading, and iteration order (stale sweeps) is a
// pure function of the arrival sequence, keeping same-seed runs
// bit-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "util/flat_table.hpp"
#include "wile/message.hpp"

namespace wile::rules {

/// Which field of a reading a condition looks at. Value is the decoded
/// sensor scalar (see Engine::set_value_extractor); readings without a
/// value fail Value conditions.
enum class Field : std::uint8_t { Value, RssiDbm, DeviceId, Sequence };
enum class Cmp : std::uint8_t { Lt, Le, Gt, Ge, Eq, Ne };
enum class AggOp : std::uint8_t { Count, Sum, Mean, Min, Max };

struct ConditionSpec {
  Field field = Field::Value;
  Cmp cmp = Cmp::Gt;
  double rhs = 0.0;
};

struct AggregateSpec {
  AggOp op = AggOp::Mean;
  /// Sliding window over simulated time; entries age out exactly.
  Duration window = seconds(60);
  Cmp cmp = Cmp::Gt;
  double rhs = 0.0;
};

/// One declarative rule. Only the members you set become nodes.
struct RuleSpec {
  std::string name;
  std::optional<ConditionSpec> when;
  std::optional<AggregateSpec> aggregate;
  Duration hold = Duration{0};      // 0 = no hold node
  Duration cooldown = Duration{0};  // 0 = no cooldown node
  /// Fire (once per silence) when a device that has reported goes quiet
  /// for this long. Checked by poll().
  std::optional<Duration> stale_after;
};

/// One decoded reading as the engine sees it.
struct Reading {
  std::uint32_t device_id = 0;
  std::uint32_t sequence = 0;
  core::MessageType type = core::MessageType::Telemetry;
  double rssi_dbm = 0.0;
  std::optional<double> value;
  TimePoint at;
};

/// A rule firing for one device.
struct Fire {
  std::string rule;
  std::uint32_t device_id = 0;
  TimePoint at;
  /// The value the final comparison saw (aggregate result if the rule
  /// aggregates, else the condition field; silence duration in seconds
  /// for stale fires).
  double observed = 0.0;
  bool stale = false;
};

enum class NodeKind : std::uint8_t { Condition, Aggregate, Hold, Cooldown };
[[nodiscard]] std::string_view node_kind_name(NodeKind k);

struct NodeCounters {
  NodeKind kind = NodeKind::Condition;
  std::uint64_t evaluated = 0;
  std::uint64_t passed = 0;
};

class Engine {
 public:
  /// Fires retained for inspection before old ones are discarded.
  static constexpr std::size_t kMaxRetainedFires = 1024;

  explicit Engine(std::vector<RuleSpec> specs);

  using FireCallback = std::function<void(const Fire&)>;
  void set_fire_callback(FireCallback cb) { on_fire_ = std::move(cb); }

  /// How to turn a message payload into the scalar Value conditions and
  /// aggregates read. The default is ExtractorRegistry::kDefault
  /// ("u16le"): little-endian unsigned from the first bytes — u16le when
  /// the payload has >= 2 bytes, the single byte when it has 1, nothing
  /// when empty (the historical hard-coded decode, unchanged).
  using ValueExtractor = std::function<std::optional<double>(const core::Message&)>;
  void set_value_extractor(ValueExtractor fn) { extract_ = std::move(fn); }
  /// Named form: resolve through ExtractorRegistry::global(). Throws
  /// std::out_of_range on unknown names.
  void set_value_extractor(std::string_view name);

  /// Feed one decoded gateway message (convenience over on_reading).
  void on_message(const core::Message& message, double rssi_dbm, TimePoint at);
  void on_reading(const Reading& reading);

  /// Staleness sweep: fire stale_after rules for devices gone quiet.
  /// Call periodically on the simulated clock.
  void poll(TimePoint now);

  [[nodiscard]] std::uint64_t fired_total() const { return fired_total_; }
  [[nodiscard]] std::uint64_t fired(std::string_view rule) const;
  [[nodiscard]] const std::vector<NodeCounters>& nodes(std::string_view rule) const;
  /// Most recent fires, oldest first (bounded by kMaxRetainedFires).
  [[nodiscard]] const std::deque<Fire>& recent_fires() const { return fires_; }
  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

  /// Bind `<prefix>.fired` plus per-rule and per-node counters
  /// (canonically prefix = "rules").
  void publish_metrics(telemetry::MetricsRegistry& registry,
                       const std::string& prefix) const;

 private:
  /// Per-(rule, device) evaluation state.
  struct DevState {
    TimePoint hold_since;
    TimePoint last_fire;
    TimePoint last_seen;
    bool holding = false;
    bool fired_once = false;
    bool seen = false;
    bool stale_fired = false;
    /// (timestamp us, value) pairs inside the aggregate window.
    std::deque<std::pair<std::int64_t, double>> window;
  };

  struct Rule {
    RuleSpec spec;
    std::vector<NodeCounters> nodes;  // in chain order
    int condition_node = -1;          // indices into `nodes`, -1 = absent
    int aggregate_node = -1;
    int hold_node = -1;
    int cooldown_node = -1;
    std::uint64_t fired = 0;
    util::FlatTable<DevState> per_device;
  };

  void evaluate(Rule& rule, const Reading& reading);
  void emit(Rule& rule, std::uint32_t device_id, TimePoint at, double observed,
            bool stale);
  [[nodiscard]] static bool compare(double lhs, Cmp cmp, double rhs);

  std::vector<Rule> rules_;
  ValueExtractor extract_;
  FireCallback on_fire_;
  std::deque<Fire> fires_;
  std::uint64_t fired_total_ = 0;
};

}  // namespace wile::rules
