// Typed value-extractor registry for the rules engine.
//
// A rule's Value field is whatever scalar the engine decodes out of the
// message payload. That decode used to be one hard-coded lambda inside
// engine.cpp (little-endian u16 from the first two bytes) with a raw
// std::function escape hatch. The registry makes the decode a named,
// typed choice instead:
//
//   engine.set_value_extractor("f32le");            // by name
//   ExtractorRegistry::global().register_extractor( // or bring your own
//       "my_sensor", [](const core::Message& m) { ... });
//
// The legacy decoder is registered under ExtractorRegistry::kDefault and
// installed by the Engine constructor, so existing rule chains are
// bit-identical: same function semantics, same fires, same counters.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "wile/message.hpp"

namespace wile::rules {

/// Decode one message payload into the scalar that Value conditions and
/// aggregates read; nullopt = "no value" (Value conditions then fail).
using Extractor = std::function<std::optional<double>(const core::Message&)>;

class ExtractorRegistry {
 public:
  /// The legacy engine decode: little-endian u16 from the first two
  /// payload bytes, the single byte when the payload has exactly one,
  /// nothing when it is empty.
  static constexpr const char* kDefault = "u16le";

  /// Constructed with the built-ins registered: u16le (default), u8,
  /// i16le, u32le, f32le (IEEE-754 from the first four bytes), len
  /// (payload size in bytes).
  ExtractorRegistry();

  /// Register or replace a named extractor. Throws on empty name/fn.
  void register_extractor(std::string name, Extractor fn);

  /// Null when the name is unknown.
  [[nodiscard]] const Extractor* find(std::string_view name) const;
  /// Throws std::out_of_range on unknown names (the misspelled-name
  /// failure should be loud, not a silently valueless rule chain).
  [[nodiscard]] Extractor get(std::string_view name) const;

  /// Registered names in registration order (deterministic).
  [[nodiscard]] std::vector<std::string> names() const;

  /// The process-wide registry the Engine consults. Scenarios normally
  /// extend this one; tests can build private instances.
  static ExtractorRegistry& global();

 private:
  // Registration-ordered vector, not a hash map: lookup happens once per
  // set_value_extractor call, and iteration order must be deterministic.
  std::vector<std::pair<std::string, Extractor>> entries_;
};

}  // namespace wile::rules
