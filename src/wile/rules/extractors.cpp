#include "wile/rules/extractors.hpp"

#include <cstring>
#include <stdexcept>

namespace wile::rules {

namespace {

// The historical engine.cpp decode, verbatim semantics: u16le when two
// bytes exist, the lone byte when one does, no value otherwise.
std::optional<double> extract_u16le(const core::Message& message) {
  if (message.data.size() >= 2) {
    return static_cast<double>(message.data[0] |
                               (static_cast<std::uint32_t>(message.data[1]) << 8));
  }
  if (message.data.size() == 1) return static_cast<double>(message.data[0]);
  return std::nullopt;
}

std::optional<double> extract_u8(const core::Message& message) {
  if (message.data.empty()) return std::nullopt;
  return static_cast<double>(message.data[0]);
}

std::optional<double> extract_i16le(const core::Message& message) {
  if (message.data.size() < 2) return std::nullopt;
  const auto raw = static_cast<std::uint16_t>(
      message.data[0] | (static_cast<std::uint32_t>(message.data[1]) << 8));
  return static_cast<double>(static_cast<std::int16_t>(raw));
}

std::optional<double> extract_u32le(const core::Message& message) {
  if (message.data.size() < 4) return std::nullopt;
  std::uint32_t raw = 0;
  for (int i = 3; i >= 0; --i) {
    raw = (raw << 8) | message.data[static_cast<std::size_t>(i)];
  }
  return static_cast<double>(raw);
}

std::optional<double> extract_f32le(const core::Message& message) {
  if (message.data.size() < 4) return std::nullopt;
  std::uint32_t raw = 0;
  for (int i = 3; i >= 0; --i) {
    raw = (raw << 8) | message.data[static_cast<std::size_t>(i)];
  }
  float value = 0.0F;
  static_assert(sizeof(value) == sizeof(raw));
  std::memcpy(&value, &raw, sizeof(value));
  return static_cast<double>(value);
}

std::optional<double> extract_len(const core::Message& message) {
  return static_cast<double>(message.data.size());
}

}  // namespace

ExtractorRegistry::ExtractorRegistry() {
  register_extractor(kDefault, extract_u16le);
  register_extractor("u8", extract_u8);
  register_extractor("i16le", extract_i16le);
  register_extractor("u32le", extract_u32le);
  register_extractor("f32le", extract_f32le);
  register_extractor("len", extract_len);
}

void ExtractorRegistry::register_extractor(std::string name, Extractor fn) {
  if (name.empty()) {
    throw std::invalid_argument("ExtractorRegistry: empty extractor name");
  }
  if (!fn) {
    throw std::invalid_argument("ExtractorRegistry: null extractor for '" + name + "'");
  }
  for (auto& [existing, existing_fn] : entries_) {
    if (existing == name) {
      existing_fn = std::move(fn);
      return;
    }
  }
  entries_.emplace_back(std::move(name), std::move(fn));
}

const Extractor* ExtractorRegistry::find(std::string_view name) const {
  for (const auto& [existing, fn] : entries_) {
    if (existing == name) return &fn;
  }
  return nullptr;
}

Extractor ExtractorRegistry::get(std::string_view name) const {
  if (const Extractor* fn = find(name)) return *fn;
  throw std::out_of_range("ExtractorRegistry: unknown extractor '" +
                          std::string(name) + "'");
}

std::vector<std::string> ExtractorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, fn] : entries_) out.push_back(name);
  return out;
}

ExtractorRegistry& ExtractorRegistry::global() {
  static ExtractorRegistry instance;
  return instance;
}

}  // namespace wile::rules
