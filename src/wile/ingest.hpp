// Controller-side ingest dispatch: one flat-table probe per fragment.
//
// The controller used to keep three parallel unordered_maps — per-device
// loss tracks, queued downlinks and the downlink sequence counter — and
// paid 3+ hash lookups per received fragment across them (try_emplace on
// the track, find on the queue, operator[] on the sequence counter, plus
// a re-lookup of the track in the channel-report branch). At massive-IoT
// fan-in (thousands of contending stations behind one receiver, the
// 802.11ba evaluation regime) that dispatch cost is the fleet ceiling.
//
// IngestTable consolidates all of it into one DeviceState record in a
// flat Fibonacci-hash open-addressing table (util/flat_table.hpp, the
// layout the medium's path-loss cache proved out), so each fragment
// resolves its device with exactly one probe and every per-device
// decision — track update, report trigger, downlink pick, sequence
// allocation — reads the same already-hot record.
//
// bench/ingest_throughput drives this exact type against a replica of
// the legacy three-map dispatch; keep the bookkeeping here so the bench
// measures the shipped code path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>

#include "util/byte_buffer.hpp"
#include "util/flat_table.hpp"

namespace wile::core {

/// Everything the controller knows about one device, in one record.
/// Kept to 40 bytes (one cache line per table slot): the downlink queue
/// — present for a tiny fraction of a massive-IoT fleet — lives behind
/// a lazily allocated pointer so the 99% of records that never queue a
/// downlink stay flat and allocation-free.
struct DeviceState {
  // --- wrap-safe reception track (input to ChannelReports) ---
  /// Seen bitmap over the most recent uplink sequences (bit i set means
  /// sequence last_sequence - i was received); mirrors Receiver's
  /// DeviceInfo.
  std::uint64_t recent_seen = 1;
  std::uint32_t last_sequence = 0;
  std::uint32_t span = 1;  // sequence positions observed, capped at 64
  std::uint32_t last_reported_announce = 0;
  bool reported = false;
  /// False until the first uplink fragment arrives (the record can be
  /// created earlier by queue_downlink).
  bool track_started = false;
  // --- downlink side ---
  std::uint32_t downlink_seq = 0;
  std::unique_ptr<std::deque<Bytes>> queued_downlinks;

  [[nodiscard]] bool has_queued() const {
    return queued_downlinks != nullptr && !queued_downlinks->empty();
  }
  /// The downlink queue, allocated on first use.
  [[nodiscard]] std::deque<Bytes>& queue() {
    if (!queued_downlinks) queued_downlinks = std::make_unique<std::deque<Bytes>>();
    return *queued_downlinks;
  }
};

class IngestTable {
 public:
  /// The single probe: find-or-create the device's record. The
  /// reference stays valid until the next state() call for an unseen
  /// device (growth rehash).
  DeviceState& state(std::uint32_t device_id) {
    return table_.find_or_insert(device_id);
  }
  [[nodiscard]] DeviceState* find(std::uint32_t device_id) {
    return table_.find(device_id);
  }
  [[nodiscard]] std::size_t devices() const { return table_.size(); }

  /// Track update for one uplink fragment. Serial-number arithmetic:
  /// correct across the uint32 sequence wrap (same discipline as
  /// Receiver::register_message).
  static void note_uplink(DeviceState& dev, std::uint32_t sequence) {
    if (!dev.track_started) {
      dev.track_started = true;
      dev.last_sequence = sequence;
      return;
    }
    const auto ahead = static_cast<std::int32_t>(sequence - dev.last_sequence);
    if (ahead > 0) {
      const auto gap = static_cast<std::uint32_t>(ahead);
      dev.recent_seen = (gap >= 64) ? 1 : ((dev.recent_seen << gap) | 1);
      dev.last_sequence = sequence;
      dev.span = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          64, static_cast<std::uint64_t>(dev.span) + gap));
    } else {
      const auto age = static_cast<std::uint32_t>(-ahead);
      if (age < 64) dev.recent_seen |= std::uint64_t{1} << age;
    }
  }

  /// Loss-adaptive redundancy trigger: one ChannelReport per announced
  /// sequence (repeats of the same beacon don't re-trigger). Marks the
  /// announce as reported when it fires.
  static bool should_report(DeviceState& dev, std::uint32_t announced_sequence) {
    if (dev.reported && dev.last_reported_announce == announced_sequence) {
      return false;
    }
    dev.reported = true;
    dev.last_reported_announce = announced_sequence;
    return true;
  }

 private:
  util::FlatTable<DeviceState> table_;
};

}  // namespace wile::core
