#include "wile/gateway.hpp"

#include "util/log.hpp"

namespace wile::core {

Bytes ForwardedReading::encode() const {
  ByteWriter w(12 + data.size());
  w.u32le(device_id);
  w.u32le(sequence);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(static_cast<std::uint8_t>(rssi_dbm));
  w.u16le(static_cast<std::uint16_t>(data.size()));
  w.bytes(data);
  return w.take();
}

std::optional<ForwardedReading> ForwardedReading::decode(BytesView payload) {
  try {
    ByteReader r{payload};
    ForwardedReading out;
    out.device_id = r.u32le();
    out.sequence = r.u32le();
    out.type = static_cast<MessageType>(r.u8());
    out.rssi_dbm = static_cast<std::int8_t>(r.u8());
    const std::uint16_t len = r.u16le();
    if (len != r.remaining()) return std::nullopt;
    out.data = r.bytes_copy(len);
    return out;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

Gateway::Gateway(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
                 GatewayConfig config, Rng rng)
    : scheduler_(scheduler), config_(std::move(config)) {
  monitor_ = std::make_unique<Receiver>(scheduler, medium, position, config_.monitor);
  station_ = std::make_unique<sta::Station>(scheduler, medium, position, config_.station,
                                            rng.fork());
  monitor_->set_message_callback(
      [this](const Message& message, const RxMeta& meta) { enqueue(message, meta); });
}

void Gateway::start(std::function<void(bool)> ready) {
  station_->connect_and_enter_power_save(
      [this, ready = std::move(ready)](bool ok) {
        uplink_ready_ = ok;
        if (ready) ready(ok);
        if (ok) pump();
      });
}

void Gateway::enqueue(const Message& message, const RxMeta& meta) {
  ++stats_.received;
  ForwardedReading reading;
  reading.device_id = message.device_id;
  reading.sequence = message.sequence;
  reading.type = message.type;
  reading.rssi_dbm = static_cast<std::int8_t>(
      std::max(-127.0, std::min(127.0, meta.rssi_dbm)));
  reading.data = message.data;

  if (queue_.size() >= config_.max_queue) {
    queue_.pop_front();
    ++stats_.dropped_queue_full;
  }
  queue_.push_back(std::move(reading));
  pump();
}

void Gateway::pump() {
  if (!uplink_ready_ || sending_ || queue_.empty()) return;
  sending_ = true;
  ForwardedReading next = std::move(queue_.front());
  queue_.pop_front();
  station_->power_save_send(next.encode(), [this](const sta::CycleReport& report) {
    sending_ = false;
    if (report.success) {
      ++stats_.forwarded;
    } else {
      ++stats_.forward_failures;
    }
    // Drain anything that arrived while the uplink was busy.
    if (!queue_.empty()) {
      scheduler_.schedule_in(msec(1), [this] { pump(); });
    }
  });
}

}  // namespace wile::core
