#include "wile/gateway.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace wile::core {

void ForwardedReading::encode_into(Bytes& out) const {
  out.reserve(out.size() + 12 + data.size());
  const auto u16 = [&out](std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
  };
  const auto u32 = [&u16](std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v & 0xffff));
    u16(static_cast<std::uint16_t>(v >> 16));
  };
  u32(device_id);
  u32(sequence);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(static_cast<std::uint8_t>(rssi_dbm));
  u16(static_cast<std::uint16_t>(data.size()));
  out.insert(out.end(), data.begin(), data.end());
}

Bytes ForwardedReading::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

std::optional<ForwardedReading> ForwardedReading::decode(BytesView payload) {
  try {
    ByteReader r{payload};
    ForwardedReading out;
    out.device_id = r.u32le();
    out.sequence = r.u32le();
    out.type = static_cast<MessageType>(r.u8());
    out.rssi_dbm = static_cast<std::int8_t>(r.u8());
    const std::uint16_t len = r.u16le();
    if (len != r.remaining()) return std::nullopt;
    out.data = r.bytes_copy(len);
    return out;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

void ForwardedBatch::begin(Bytes& out) {
  out.clear();
  out.push_back(kVersion);
  out.push_back(0);  // flags, none defined in v1
  out.push_back(0);  // count, patched by finish()
  out.push_back(0);
}

void ForwardedBatch::append(Bytes& out, const ForwardedReading& reading) {
  const std::size_t len_at = out.size();
  out.push_back(0);  // record_len, patched below
  out.push_back(0);
  reading.encode_into(out);
  const std::size_t len = out.size() - len_at - 2;
  out[len_at] = static_cast<std::uint8_t>(len & 0xff);
  out[len_at + 1] = static_cast<std::uint8_t>((len >> 8) & 0xff);
}

void ForwardedBatch::finish(Bytes& out, std::size_t count) {
  out[2] = static_cast<std::uint8_t>(count & 0xff);
  out[3] = static_cast<std::uint8_t>((count >> 8) & 0xff);
}

Bytes ForwardedBatch::encode() const {
  Bytes out;
  begin(out);
  for (const ForwardedReading& reading : readings) append(out, reading);
  finish(out, readings.size());
  return out;
}

std::optional<ForwardedBatch> ForwardedBatch::decode(BytesView payload) {
  try {
    ByteReader r{payload};
    if (r.u8() != kVersion) return std::nullopt;
    if (r.u8() != 0) return std::nullopt;  // unknown flags
    const std::uint16_t count = r.u16le();
    ForwardedBatch out;
    out.readings.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      const std::uint16_t len = r.u16le();
      auto reading = ForwardedReading::decode(r.bytes(len));
      if (!reading) return std::nullopt;
      out.readings.push_back(std::move(*reading));
    }
    if (!r.empty()) return std::nullopt;  // trailing bytes
    return out;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

Gateway::Gateway(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
                 GatewayConfig config, Rng rng)
    : scheduler_(scheduler), config_(std::move(config)), rng_(std::move(rng)) {
  monitor_ = std::make_unique<Receiver>(scheduler, medium, position, config_.monitor);
  station_ = std::make_unique<sta::Station>(scheduler, medium, position, config_.station,
                                            rng_.fork());
  if (!config_.rules.empty()) {
    rules_ = std::make_unique<rules::Engine>(config_.rules);
  }
  monitor_->set_message_callback(
      [this](const Message& message, const RxMeta& meta) { enqueue(message, meta); });
  station_->set_link_lost_handler([this] { on_uplink_lost(); });
}

Gateway::~Gateway() {
  if (reconnect_timer_) scheduler_.cancel(*reconnect_timer_);
  if (pump_timer_) scheduler_.cancel(*pump_timer_);
}

void Gateway::start(std::function<void(bool)> ready) {
  started_ = true;
  first_ready_ = std::move(ready);
  attempt_connect();
}

void Gateway::kill_uplink() { station_->force_link_down(); }

void Gateway::attempt_connect() {
  reconnect_timer_.reset();
  if (!station_->deep_sleeping()) {
    // Teardown (or a previous attempt) still settling; come back later.
    schedule_reconnect();
    return;
  }
  const bool initial = !first_attempt_done_;
  first_attempt_done_ = true;
  if (!initial) ++stats_.reconnect_attempts;
  station_->connect_and_enter_power_save([this, initial](bool ok) {
    uplink_ready_ = ok;
    if (ok) {
      consecutive_connect_failures_ = 0;
      if (!initial) ++stats_.reassociations;
    } else {
      ++consecutive_connect_failures_;
    }
    if (initial && first_ready_) {
      auto cb = std::move(first_ready_);
      first_ready_ = {};
      cb(ok);
    }
    if (ok) {
      pump();  // drain whatever queued up during the outage
    } else {
      schedule_reconnect();
    }
  });
}

void Gateway::on_uplink_lost() {
  if (!uplink_ready_) return;  // already supervising a reconnect
  uplink_ready_ = false;
  ++stats_.uplink_losses;
  // A loss is usually correlated across the fleet (the AP died, not this
  // box); arm the one-shot desync so the first reassociation wave is
  // spread instead of synchronized.
  desync_pending_ = true;
  // An in-flight send (if any) reports its failed CycleReport right after
  // this handler; its batch is requeued there. Here we only arrange the
  // re-association.
  schedule_reconnect();
}

void Gateway::schedule_reconnect() {
  if (!started_ || reconnect_timer_) return;
  reconnect_timer_ = scheduler_.schedule_in(backoff_delay(), [this] { attempt_connect(); });
}

Duration Gateway::backoff_delay() {
  const int shift = std::min(consecutive_connect_failures_, 16);
  Duration delay = config_.reconnect_backoff_base * (std::int64_t{1} << shift);
  if (delay.count() <= 0 || delay > config_.reconnect_backoff_cap) {
    delay = config_.reconnect_backoff_cap;
  }
  const double spread =
      1.0 + config_.reconnect_jitter_fraction * (2.0 * rng_.uniform() - 1.0);
  Duration jittered{
      static_cast<std::int64_t>(static_cast<double>(delay.count()) * spread)};
  if (desync_pending_) {
    // Deterministic (seeded) fleet desynchronisation: uniform extra
    // delay on the first attempt after a loss, drawn from this
    // gateway's own RNG so same-seed runs reproduce it exactly.
    desync_pending_ = false;
    if (config_.reconnect_desync_spread.count() > 0) {
      jittered += Duration{static_cast<std::int64_t>(
          rng_.uniform() * static_cast<double>(config_.reconnect_desync_spread.count()))};
    }
  }
  return std::max(jittered, msec(1));
}

void Gateway::drop_reading(std::uint64_t& reason_counter) {
  ++reason_counter;
  ++stats_.dropped_total;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->instant(scheduler_.now(), monitor_->node_id(), telemetry::Phase::Drop);
  }
}

void Gateway::enqueue(const Message& message, const RxMeta& meta) {
  ++stats_.received;
  if (rules_) rules_->on_message(message, meta.rssi_dbm, meta.received_at);
  ForwardedReading reading;
  reading.device_id = message.device_id;
  reading.sequence = message.sequence;
  reading.type = message.type;
  reading.rssi_dbm = static_cast<std::int8_t>(
      std::max(-127.0, std::min(127.0, meta.rssi_dbm)));
  reading.data = message.data;

  if (queue_.size() >= config_.max_queue) {
    queue_.pop_front();  // newest-first retention: evict the oldest reading
    drop_reading(stats_.dropped_queue_full);
  }
  queue_.push_back(QueuedReading{std::move(reading), 0});
  pump();
}

void Gateway::pump() {
  if (!uplink_ready_ || sending_ || queue_.empty()) return;
  sending_ = true;
  const std::size_t batch_max = std::max<std::size_t>(1, config_.batch_max);
  const std::size_t take = std::min(batch_max, queue_.size());
  in_flight_.clear();
  ForwardedBatch::begin(arena_);
  for (std::size_t i = 0; i < take; ++i) {
    QueuedReading item = std::move(queue_.front());
    queue_.pop_front();
    if (item.attempts > 0) ++stats_.retries;
    ForwardedBatch::append(arena_, item.reading);
    in_flight_.push_back(std::move(item));
  }
  ForwardedBatch::finish(arena_, in_flight_.size());
  if (batch_fill_ != nullptr) {
    batch_fill_->record(static_cast<std::uint64_t>(in_flight_.size()));
  }
  station_->power_save_send(std::move(arena_), [this](const sta::CycleReport& report) {
    on_send_result(report.success);
  });
}

void Gateway::on_send_result(bool success) {
  sending_ = false;
  // The cycle is over (either way), so the payload buffer is idle; take
  // it back and re-fill it next pump instead of allocating.
  arena_ = station_->reclaim_payload();
  if (success) {
    stats_.forwarded += in_flight_.size();
    ++stats_.batches_sent;
  } else {
    ++stats_.forward_failures;
    // Walk the failed batch back-to-front pushing at the queue head, so
    // surviving readings retry in their original order ahead of anything
    // that arrived during the outage. Per-reading budgets still decide
    // individual fates: a reading over its retry budget is abandoned, and
    // when the queue filled up mid-outage the oldest (these) lose —
    // newest-first retention, same as enqueue.
    for (auto it = in_flight_.rbegin(); it != in_flight_.rend(); ++it) {
      ++it->attempts;
      if (it->attempts > config_.forward_retry_limit) {
        drop_reading(stats_.dropped_retry_budget);
      } else if (queue_.size() >= config_.max_queue) {
        drop_reading(stats_.dropped_queue_full);
      } else {
        queue_.push_front(std::move(*it));
      }
    }
  }
  in_flight_.clear();
  // Drain anything that arrived (or was requeued) while the uplink was
  // busy. Deferred a beat so a failed send cannot spin synchronously.
  if (!queue_.empty() && uplink_ready_ && !pump_timer_) {
    pump_timer_ = scheduler_.schedule_in(msec(1), [this] {
      pump_timer_.reset();
      pump();
    });
  }
}

void Gateway::publish_metrics(telemetry::MetricsRegistry& registry,
                              const std::string& prefix) const {
  registry.bind_counter(prefix + ".received", &stats_.received);
  registry.bind_counter(prefix + ".forwarded", &stats_.forwarded);
  registry.bind_counter(prefix + ".batches_sent", &stats_.batches_sent);
  registry.bind_counter(prefix + ".dropped_queue_full", &stats_.dropped_queue_full);
  registry.bind_counter(prefix + ".forward_failures", &stats_.forward_failures);
  registry.bind_counter(prefix + ".retries", &stats_.retries);
  registry.bind_counter(prefix + ".dropped_retry_budget", &stats_.dropped_retry_budget);
  registry.bind_counter(prefix + ".dropped_total", &stats_.dropped_total);
  registry.bind_counter(prefix + ".uplink_losses", &stats_.uplink_losses);
  registry.bind_counter(prefix + ".reconnect_attempts", &stats_.reconnect_attempts);
  registry.bind_counter(prefix + ".reassociations", &stats_.reassociations);
  registry.bind_counter_fn(prefix + ".queue_depth", [this] {
    return static_cast<std::uint64_t>(queue_.size());
  });
  batch_fill_ = registry.histogram(prefix + ".batch_fill");
  if (rules_) rules_->publish_metrics(registry, prefix + ".rules");
  monitor_->publish_metrics(registry, prefix + ".monitor");
  station_->publish_metrics(registry, prefix + ".station");
}

}  // namespace wile::core
