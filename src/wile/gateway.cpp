#include "wile/gateway.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace wile::core {

Bytes ForwardedReading::encode() const {
  ByteWriter w(12 + data.size());
  w.u32le(device_id);
  w.u32le(sequence);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(static_cast<std::uint8_t>(rssi_dbm));
  w.u16le(static_cast<std::uint16_t>(data.size()));
  w.bytes(data);
  return w.take();
}

std::optional<ForwardedReading> ForwardedReading::decode(BytesView payload) {
  try {
    ByteReader r{payload};
    ForwardedReading out;
    out.device_id = r.u32le();
    out.sequence = r.u32le();
    out.type = static_cast<MessageType>(r.u8());
    out.rssi_dbm = static_cast<std::int8_t>(r.u8());
    const std::uint16_t len = r.u16le();
    if (len != r.remaining()) return std::nullopt;
    out.data = r.bytes_copy(len);
    return out;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

Gateway::Gateway(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
                 GatewayConfig config, Rng rng)
    : scheduler_(scheduler), config_(std::move(config)), rng_(std::move(rng)) {
  monitor_ = std::make_unique<Receiver>(scheduler, medium, position, config_.monitor);
  station_ = std::make_unique<sta::Station>(scheduler, medium, position, config_.station,
                                            rng_.fork());
  monitor_->set_message_callback(
      [this](const Message& message, const RxMeta& meta) { enqueue(message, meta); });
  station_->set_link_lost_handler([this] { on_uplink_lost(); });
}

Gateway::~Gateway() {
  if (reconnect_timer_) scheduler_.cancel(*reconnect_timer_);
  if (pump_timer_) scheduler_.cancel(*pump_timer_);
}

void Gateway::start(std::function<void(bool)> ready) {
  started_ = true;
  first_ready_ = std::move(ready);
  attempt_connect();
}

void Gateway::kill_uplink() { station_->force_link_down(); }

void Gateway::attempt_connect() {
  reconnect_timer_.reset();
  if (!station_->deep_sleeping()) {
    // Teardown (or a previous attempt) still settling; come back later.
    schedule_reconnect();
    return;
  }
  const bool initial = !first_attempt_done_;
  first_attempt_done_ = true;
  if (!initial) ++stats_.reconnect_attempts;
  station_->connect_and_enter_power_save([this, initial](bool ok) {
    uplink_ready_ = ok;
    if (ok) {
      consecutive_connect_failures_ = 0;
      if (!initial) ++stats_.reassociations;
    } else {
      ++consecutive_connect_failures_;
    }
    if (initial && first_ready_) {
      auto cb = std::move(first_ready_);
      first_ready_ = {};
      cb(ok);
    }
    if (ok) {
      pump();  // drain whatever queued up during the outage
    } else {
      schedule_reconnect();
    }
  });
}

void Gateway::on_uplink_lost() {
  if (!uplink_ready_) return;  // already supervising a reconnect
  uplink_ready_ = false;
  ++stats_.uplink_losses;
  // A loss is usually correlated across the fleet (the AP died, not this
  // box); arm the one-shot desync so the first reassociation wave is
  // spread instead of synchronized.
  desync_pending_ = true;
  // An in-flight send (if any) reports its failed CycleReport right after
  // this handler; its reading is requeued there. Here we only arrange the
  // re-association.
  schedule_reconnect();
}

void Gateway::schedule_reconnect() {
  if (!started_ || reconnect_timer_) return;
  reconnect_timer_ = scheduler_.schedule_in(backoff_delay(), [this] { attempt_connect(); });
}

Duration Gateway::backoff_delay() {
  const int shift = std::min(consecutive_connect_failures_, 16);
  Duration delay = config_.reconnect_backoff_base * (std::int64_t{1} << shift);
  if (delay.count() <= 0 || delay > config_.reconnect_backoff_cap) {
    delay = config_.reconnect_backoff_cap;
  }
  const double spread =
      1.0 + config_.reconnect_jitter_fraction * (2.0 * rng_.uniform() - 1.0);
  Duration jittered{
      static_cast<std::int64_t>(static_cast<double>(delay.count()) * spread)};
  if (desync_pending_) {
    // Deterministic (seeded) fleet desynchronisation: uniform extra
    // delay on the first attempt after a loss, drawn from this
    // gateway's own RNG so same-seed runs reproduce it exactly.
    desync_pending_ = false;
    if (config_.reconnect_desync_spread.count() > 0) {
      jittered += Duration{static_cast<std::int64_t>(
          rng_.uniform() * static_cast<double>(config_.reconnect_desync_spread.count()))};
    }
  }
  return std::max(jittered, msec(1));
}

void Gateway::enqueue(const Message& message, const RxMeta& meta) {
  ++stats_.received;
  ForwardedReading reading;
  reading.device_id = message.device_id;
  reading.sequence = message.sequence;
  reading.type = message.type;
  reading.rssi_dbm = static_cast<std::int8_t>(
      std::max(-127.0, std::min(127.0, meta.rssi_dbm)));
  reading.data = message.data;

  if (queue_.size() >= config_.max_queue) {
    queue_.pop_front();  // newest-first retention: evict the oldest reading
    ++stats_.dropped_queue_full;
  }
  queue_.push_back(QueuedReading{std::move(reading), 0});
  pump();
}

void Gateway::pump() {
  if (!uplink_ready_ || sending_ || queue_.empty()) return;
  sending_ = true;
  QueuedReading item = std::move(queue_.front());
  queue_.pop_front();
  if (item.attempts > 0) ++stats_.retries;
  Bytes payload = item.reading.encode();
  station_->power_save_send(
      std::move(payload), [this, item = std::move(item)](const sta::CycleReport& report) mutable {
        on_send_result(std::move(item), report.success);
      });
}

void Gateway::on_send_result(QueuedReading item, bool success) {
  sending_ = false;
  if (success) {
    ++stats_.forwarded;
  } else {
    ++stats_.forward_failures;
    ++item.attempts;
    if (item.attempts > config_.forward_retry_limit) {
      ++stats_.dropped_retry_budget;
    } else if (queue_.size() >= config_.max_queue) {
      ++stats_.dropped_queue_full;  // queue filled during the outage; newest wins
    } else {
      queue_.push_front(std::move(item));  // retry in original order
    }
  }
  // Drain anything that arrived (or was requeued) while the uplink was
  // busy. Deferred a beat so a failed send cannot spin synchronously.
  if (!queue_.empty() && uplink_ready_ && !pump_timer_) {
    pump_timer_ = scheduler_.schedule_in(msec(1), [this] {
      pump_timer_.reset();
      pump();
    });
  }
}

void Gateway::publish_metrics(telemetry::MetricsRegistry& registry,
                              const std::string& prefix) const {
  registry.bind_counter(prefix + ".received", &stats_.received);
  registry.bind_counter(prefix + ".forwarded", &stats_.forwarded);
  registry.bind_counter(prefix + ".dropped_queue_full", &stats_.dropped_queue_full);
  registry.bind_counter(prefix + ".forward_failures", &stats_.forward_failures);
  registry.bind_counter(prefix + ".retries", &stats_.retries);
  registry.bind_counter(prefix + ".dropped_retry_budget", &stats_.dropped_retry_budget);
  registry.bind_counter(prefix + ".uplink_losses", &stats_.uplink_losses);
  registry.bind_counter(prefix + ".reconnect_attempts", &stats_.reconnect_attempts);
  registry.bind_counter(prefix + ".reassociations", &stats_.reassociations);
  registry.bind_counter_fn(prefix + ".queue_depth", [this] {
    return static_cast<std::uint64_t>(queue_.size());
  });
  monitor_->publish_metrics(registry, prefix + ".monitor");
  station_->publish_metrics(registry, prefix + ".station");
}

}  // namespace wile::core
