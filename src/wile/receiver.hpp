// The Wi-LE receiver — any WiFi device in monitor mode, or an ordinary
// smartphone/laptop whose OS surfaces received beacons (§4: "Upon
// receiving a WiFi beacon frame, the MAC layer forwards it to higher
// layer ... an application looks for special beacon frames transmitted
// by IoT devices and extracts their data").
//
// The receiver is passive: it never transmits, it just watches the
// medium for beacons carrying Wi-LE vendor elements, reassembles
// fragments, de-duplicates by (device, sequence), and keeps a per-device
// registry with loss estimates from sequence gaps.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "dot11/frame.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "wile/codec.hpp"

namespace wile::core {

struct ReceiverConfig {
  /// Device key for encrypted payloads (must match the senders').
  std::optional<Bytes> key;
  /// Accept only beacons using the hidden-SSID discipline (reject
  /// spoofed-SSID senders). Off by default: a monitor sees everything.
  bool require_hidden_ssid = false;
  /// Reassembly memory bound: at most this many in-progress fragmented
  /// messages are held; beyond it the stalest partial is evicted
  /// (surfaced as ReceiverStats::partials_evicted).
  std::size_t max_partials = Reassembler::kDefaultMaxPartials;
};

struct ReceiverStats {
  std::uint64_t beacons_seen = 0;         // all beacons, Wi-LE or not
  std::uint64_t wile_beacons = 0;         // beacons with >= 1 Wi-LE element
  std::uint64_t fragments = 0;
  std::uint64_t messages = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t crc_failures = 0;
  std::uint64_t decrypt_failures = 0;
  std::uint64_t fcs_failures = 0;         // corrupt radio frames observed
  std::uint64_t collisions_observed = 0;
  // --- FEC ---
  std::uint64_t parity_beacons = 0;   // parity elements seen
  std::uint64_t recovery_beacons = 0; // distinct Recovery messages seen
  /// Messages reconstructed without retransmission: group-parity XOR
  /// plus cross-cycle recovery-beacon decodes. Counted in `messages` too.
  std::uint64_t recovered = 0;
  std::uint64_t partials_evicted = 0; // reassembler memory-bound drops
};

struct DeviceInfo {
  std::uint32_t device_id = 0;
  std::uint32_t last_sequence = 0;
  std::uint64_t messages = 0;
  std::uint64_t estimated_losses = 0;  // from sequence gaps
  /// Sliding window over the last 64 sequence numbers: bit i set means
  /// sequence (last_sequence - i) was received. Lets a late retransmitted
  /// beacon fill its gap (decrementing estimated_losses) instead of being
  /// miscounted as a duplicate or inflating the loss estimate.
  std::uint64_t recent_seen = 1;
  TimePoint first_seen{};
  TimePoint last_seen{};
  double last_rssi_dbm = 0.0;
};

struct RxMeta {
  TimePoint received_at{};
  double rssi_dbm = 0.0;
  MacAddress bssid;  // the fake-AP address the device used
};

class Receiver : public sim::MediumClient {
 public:
  Receiver(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
           ReceiverConfig config = {});

  using MessageCallback = std::function<void(const Message&, const RxMeta&)>;
  void set_message_callback(MessageCallback cb) { callback_ = std::move(cb); }

  [[nodiscard]] const ReceiverStats& stats() const { return stats_; }

  /// Bind this receiver's counters into a telemetry registry under
  /// `prefix` (canonically "node.<id>.receiver"); stats() remains a
  /// view of the exact same slots.
  void publish_metrics(telemetry::MetricsRegistry& registry,
                       const std::string& prefix) const;
  /// Registry ordered by device id (stable iteration for tests/benches).
  [[nodiscard]] const std::map<std::uint32_t, DeviceInfo>& devices() const {
    return devices_;
  }

  /// Device registry as CSV ("device_id,messages,losses,loss_pct,
  /// last_seq,first_seen_s,last_seen_s,rssi_dbm") for ops dashboards.
  [[nodiscard]] std::string devices_csv() const;
  [[nodiscard]] sim::NodeId node_id() const { return node_id_; }
  [[nodiscard]] const ReceiverConfig& config() const { return config_; }
  /// In-progress fragmented messages currently held. The chaos
  /// harness's partial-table oracle pins this to config().max_partials.
  [[nodiscard]] std::size_t reassembler_partials() const {
    return reassembler_.partials();
  }

  // --- sim::MediumClient -----------------------------------------------------
  void on_frame(const sim::RxFrame& frame) override;
  void on_corrupt_frame(const sim::RxFrame& frame, bool collision) override;
  [[nodiscard]] bool rx_enabled() const override;

 private:
  /// How many payloads (and how far back in sequence space) the FEC
  /// machinery can reach: matches DeviceInfo::recent_seen's 64-bit
  /// horizon, so anything the bitmap remembers is XOR-reconstructable.
  static constexpr std::size_t kPayloadCacheSize = 64;
  static constexpr std::size_t kMaxPendingRecoveries = 8;

  struct CachedPayload {
    std::uint32_t sequence = 0;
    MessageType type = MessageType::Telemetry;
    Bytes data;
  };
  /// Per-device erasure-decoding state: recently delivered payloads (the
  /// XOR inputs) and recovery beacons still waiting for a second loss in
  /// their group to be filled by a later beacon or delivery.
  struct FecState {
    std::vector<CachedPayload> cache;
    std::vector<RecoveryPayload> pending;
    std::optional<std::uint32_t> last_recovery_seq;
  };

  void accept_fragment(const Fragment& fragment, const RxMeta& meta);
  /// Registry update (dedup, gap/loss accounting, wrap-safe). Returns
  /// false for duplicates and beyond-horizon stragglers.
  bool register_message(const Message& message, const RxMeta& meta);
  /// Registry + cache + user callback for one completed message.
  void deliver(const Message& message, const RxMeta& meta, bool recovered);
  void handle_recovery(std::uint32_t device_id, std::uint32_t recovery_seq,
                       const RecoveryPayload& payload, const RxMeta& meta);
  /// Try to decode one recovery group. Returns true when the beacon is
  /// spent (recovered something, nothing missing, or unrecoverable) and
  /// false when it should stay pending.
  bool attempt_recovery(std::uint32_t device_id, const RecoveryPayload& payload,
                        const RxMeta& meta);
  /// Re-try pending recovery beacons until no further progress (one
  /// recovered message can complete another group).
  void drain_pending(std::uint32_t device_id, const RxMeta& meta);

  sim::Scheduler& scheduler_;
  sim::Medium& medium_;
  ReceiverConfig config_;
  sim::NodeId node_id_;
  Codec codec_;
  Reassembler reassembler_;
  MessageCallback callback_;
  ReceiverStats stats_;
  std::map<std::uint32_t, DeviceInfo> devices_;
  std::map<std::uint32_t, FecState> fec_;
  std::uint64_t cross_recovered_ = 0;  // recovery-beacon decodes (not parity)
};

}  // namespace wile::core
