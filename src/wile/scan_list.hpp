// Model of an operating system's "available WiFi networks" list.
//
// §4.1's spam concern, verbatim: "Users would see a long list of fake
// access points on their phones or computers which can adversely impact
// the user experience. To avoid this problem, Wi-LE utilizes the
// 'hidden SSID' mechanism... As a result, the access point is not shown
// on the list of available WiFi networks."
//
// This class behaves like the scan-results UI of a phone: it collects
// beacons/probe responses, groups them by BSSID, and shows only entries
// with a non-empty SSID. Tests and the spam ablation use it to verify
// that a fleet of Wi-LE devices leaves the user's list untouched while
// spoofed-SSID devices pollute it.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dot11/frame.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"

namespace wile::core {

struct VisibleNetwork {
  std::string ssid;
  MacAddress bssid;
  double rssi_dbm = 0.0;
  TimePoint last_seen{};
  std::uint64_t beacons = 0;
  bool rsn_protected = false;
};

class ScanListModel : public sim::MediumClient {
 public:
  ScanListModel(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position);

  /// What the user sees: networks with an advertised (non-hidden) SSID,
  /// strongest first — like every phone's WiFi settings page.
  [[nodiscard]] std::vector<VisibleNetwork> visible() const;

  /// BSSIDs heard advertising a hidden SSID (the OS knows they exist but
  /// does not list them).
  [[nodiscard]] std::size_t hidden_networks() const { return hidden_.size(); }

  [[nodiscard]] std::uint64_t beacons_processed() const { return beacons_; }

  void on_frame(const sim::RxFrame& frame) override;
  [[nodiscard]] bool rx_enabled() const override { return true; }

 private:
  sim::Scheduler& scheduler_;
  std::map<MacAddress, VisibleNetwork> networks_;  // advertised SSIDs
  std::map<MacAddress, std::uint64_t> hidden_;     // hidden-SSID BSSIDs
  std::uint64_t beacons_ = 0;
};

}  // namespace wile::core
