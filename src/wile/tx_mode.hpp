// The unified transmission-mode axis of the testbed.
//
// Three ways for a battery-class device to get a reading out, each a
// first-class ScenarioBuilder preset (ScenarioBuilder::mode) that owns
// the cross-cutting defaults previously smeared across SenderConfig,
// BleAdvertiserConfig and per-bench hand wiring:
//
//   WiLeBeacon — the paper's contribution: wake on a local timer,
//                inject one fake 802.11 beacon, sleep. Uplink-only,
//                CSMA-polite, no infrastructure in the loop.
//   Ble        — ADV_NONCONN_IND advertising on a local timer (the
//                related-work baseline; pure ALOHA, no carrier sense).
//   Wur        — IEEE 802.11ba: the device deep-sleeps behind a uW
//                wake-up receiver and transmits only when the AP's
//                wake-up frame polls it; the AP owns the cadence.
#pragma once

namespace wile {

enum class TxMode {
  WiLeBeacon,
  Ble,
  Wur,
};

constexpr const char* to_string(TxMode mode) {
  switch (mode) {
    case TxMode::WiLeBeacon:
      return "wile_beacon";
    case TxMode::Ble:
      return "ble";
    case TxMode::Wur:
      return "wur";
  }
  return "?";
}

}  // namespace wile
