#include "wile/receiver.hpp"

#include <cstdio>

#include "dot11/mgmt.hpp"

namespace wile::core {

namespace {
/// Serial-number arithmetic (RFC 1982 style): how far `a` is ahead of
/// `b` in the 32-bit circular sequence space. Positive = newer, even
/// across the uint32 wrap.
std::int32_t seq_ahead(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b);
}
}  // namespace

Receiver::Receiver(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
                   ReceiverConfig config)
    : scheduler_(scheduler),
      medium_(medium),
      config_(std::move(config)),
      codec_(config_.key ? Codec{*config_.key} : Codec{}),
      reassembler_(config_.max_partials) {
  node_id_ = medium_.attach(this, position);
}

bool Receiver::rx_enabled() const { return true; }  // mains-powered monitor

void Receiver::on_corrupt_frame(const sim::RxFrame&, bool collision) {
  ++stats_.fcs_failures;
  if (collision) ++stats_.collisions_observed;
}

void Receiver::on_frame(const sim::RxFrame& frame) {
  auto parsed = dot11::parse_mpdu(frame.mpdu);
  if (!parsed) return;
  if (!parsed->fcs_ok) {
    ++stats_.fcs_failures;
    return;
  }
  if (!parsed->header.fc.is_mgmt(dot11::MgmtSubtype::Beacon)) return;
  ++stats_.beacons_seen;

  auto beacon = dot11::Beacon::decode(parsed->body);
  if (!beacon) return;
  if (config_.require_hidden_ssid && !dot11::has_hidden_ssid(beacon->ies)) return;

  RxMeta meta;
  meta.received_at = scheduler_.now();
  meta.rssi_dbm = frame.rx_power_dbm;
  meta.bssid = parsed->header.addr3;

  bool any = false;
  // Related-work arm: SSID-stuffed beacons (§2) carry data in the SSID
  // field itself.
  if (const auto ssid = dot11::parse_ssid_ie(beacon->ies)) {
    if (auto fragment = decode_ssid_stuffed(*ssid)) {
      any = true;
      ++stats_.fragments;
      accept_fragment(*fragment, meta);
    }
  }
  for (const dot11::InfoElement* ie :
       beacon->ies.find_all(dot11::IeId::VendorSpecific)) {
    DecodeError error{};
    auto fragment = codec_.decode(*ie, &error);
    if (!fragment) {
      if (error == DecodeError::BadCrc) ++stats_.crc_failures;
      if (error == DecodeError::DecryptFailed) ++stats_.decrypt_failures;
      continue;
    }
    any = true;
    ++stats_.fragments;
    accept_fragment(*fragment, meta);
  }
  if (any) ++stats_.wile_beacons;
}

std::string Receiver::devices_csv() const {
  std::string out =
      "device_id,messages,losses,loss_pct,last_seq,first_seen_s,last_seen_s,rssi_dbm\n";
  char line[160];
  for (const auto& [id, dev] : devices_) {
    const double total = static_cast<double>(dev.messages + dev.estimated_losses);
    const double loss_pct =
        total > 0 ? 100.0 * static_cast<double>(dev.estimated_losses) / total : 0.0;
    std::snprintf(line, sizeof(line), "%u,%llu,%llu,%.2f,%u,%.3f,%.3f,%.1f\n", id,
                  static_cast<unsigned long long>(dev.messages),
                  static_cast<unsigned long long>(dev.estimated_losses), loss_pct,
                  dev.last_sequence, to_seconds(dev.first_seen.since_epoch()),
                  to_seconds(dev.last_seen.since_epoch()), dev.last_rssi_dbm);
    out += line;
  }
  return out;
}

void Receiver::accept_fragment(const Fragment& fragment, const RxMeta& meta) {
  if (fragment.parity) ++stats_.parity_beacons;
  auto message = reassembler_.add(fragment);
  stats_.partials_evicted = reassembler_.partials_evicted();
  stats_.recovered = reassembler_.parity_recoveries() + cross_recovered_;
  if (!message) return;

  if (message->type == MessageType::Recovery) {
    if (auto payload = decode_recovery_payload(message->data)) {
      handle_recovery(message->device_id, message->sequence, *payload, meta);
    }
    return;
  }
  if (message->type == MessageType::ChannelReport) {
    // Controller-side downlink control traffic: surface it but keep it
    // out of the uplink registry (it rides the downlink sequence space).
    if (callback_) callback_(*message, meta);
    return;
  }
  deliver(*message, meta, /*recovered=*/false);
  drain_pending(message->device_id, meta);
}

bool Receiver::register_message(const Message& message, const RxMeta& meta) {
  auto [it, inserted] = devices_.try_emplace(message.device_id);
  DeviceInfo& dev = it->second;
  if (inserted) {
    dev.device_id = message.device_id;
    dev.first_seen = meta.received_at;
    dev.last_sequence = message.sequence;
    dev.recent_seen = 1;
  } else {
    // Serial-number comparison so the uint32 sequence wrap neither
    // miscounts ~2^32 losses nor mistakes post-wrap messages for stale
    // duplicates.
    const std::int32_t ahead = seq_ahead(message.sequence, dev.last_sequence);
    if (ahead > 0) {
      const auto gap = static_cast<std::uint32_t>(ahead);
      dev.estimated_losses += gap - 1;
      dev.recent_seen = (gap >= 64) ? 1 : ((dev.recent_seen << gap) | 1);
      dev.last_sequence = message.sequence;
    } else {
      // Late arrival (out of order, or a retransmission after a gap was
      // already charged as lost). If we have it, it's a duplicate; if
      // not, it fills its gap and the loss estimate is walked back.
      const auto age = static_cast<std::uint32_t>(-ahead);
      if (age >= 64) return false;  // beyond the tracking horizon
      const std::uint64_t bit = std::uint64_t{1} << age;
      if (dev.recent_seen & bit) {
        ++stats_.duplicates;
        return false;
      }
      dev.recent_seen |= bit;
      if (dev.estimated_losses > 0) --dev.estimated_losses;
    }
  }
  dev.last_seen = meta.received_at;
  dev.last_rssi_dbm = meta.rssi_dbm;
  ++dev.messages;
  ++stats_.messages;
  return true;
}

void Receiver::deliver(const Message& message, const RxMeta& meta, bool recovered) {
  if (!register_message(message, meta)) return;
  if (recovered) {
    ++cross_recovered_;
    stats_.recovered = reassembler_.parity_recoveries() + cross_recovered_;
  }
  // Only uplink payloads feed the XOR cache: recovery groups cover the
  // device's own sequence space, not controller Acks/Downlinks.
  if (message.type == MessageType::Telemetry || message.type == MessageType::Event ||
      message.type == MessageType::Probe) {
    FecState& fec = fec_[message.device_id];
    fec.cache.push_back({message.sequence, message.type, message.data});
    if (fec.cache.size() > kPayloadCacheSize) fec.cache.erase(fec.cache.begin());
  }
  if (callback_) callback_(message, meta);
}

void Receiver::handle_recovery(std::uint32_t device_id, std::uint32_t recovery_seq,
                               const RecoveryPayload& payload, const RxMeta& meta) {
  FecState& fec = fec_[device_id];
  if (fec.last_recovery_seq && seq_ahead(recovery_seq, *fec.last_recovery_seq) <= 0) {
    return;  // repeat of a recovery beacon already processed
  }
  fec.last_recovery_seq = recovery_seq;
  ++stats_.recovery_beacons;
  if (!attempt_recovery(device_id, payload, meta)) {
    // Two or more covered messages are still missing: park the beacon —
    // a later beacon (overlapping group) may recover one and make this
    // group decodable.
    fec.pending.push_back(payload);
    if (fec.pending.size() > kMaxPendingRecoveries) fec.pending.erase(fec.pending.begin());
  } else {
    drain_pending(device_id, meta);
  }
}

bool Receiver::attempt_recovery(std::uint32_t device_id, const RecoveryPayload& payload,
                                const RxMeta& meta) {
  const auto dev_it = devices_.find(device_id);
  const DeviceInfo* dev = dev_it == devices_.end() ? nullptr : &dev_it->second;

  std::vector<std::size_t> missing;
  std::vector<std::size_t> present;
  for (std::size_t i = 0; i < payload.entries.size(); ++i) {
    const std::uint32_t seq = payload.base_sequence + static_cast<std::uint32_t>(i);
    if (dev == nullptr) {
      missing.push_back(i);
      continue;
    }
    const std::int32_t ahead = seq_ahead(seq, dev->last_sequence);
    if (ahead > 0) {
      missing.push_back(i);  // newer than anything received: lost in flight
      continue;
    }
    const auto age = static_cast<std::uint32_t>(-ahead);
    if (age >= 64) return true;  // beyond the horizon: unrecoverable, spend it
    if (dev->recent_seen & (std::uint64_t{1} << age)) {
      present.push_back(i);
    } else {
      missing.push_back(i);
    }
  }
  if (missing.size() != 1) return missing.empty();

  const std::size_t idx = missing.front();
  const std::size_t length = payload.entries[idx].length;
  if (length > payload.xor_block.size()) return true;  // malformed: spend it

  Bytes data = payload.xor_block;
  const FecState& fec = fec_[device_id];
  for (const std::size_t i : present) {
    const std::uint32_t seq = payload.base_sequence + static_cast<std::uint32_t>(i);
    const CachedPayload* cached = nullptr;
    for (const CachedPayload& c : fec.cache) {
      if (c.sequence == seq) {
        cached = &c;
        break;
      }
    }
    // Received but no longer cached (or delivered before this receiver's
    // cache horizon): the XOR input is gone for good.
    if (cached == nullptr) return true;
    if (cached->data.size() > data.size()) return true;  // inconsistent: spend it
    for (std::size_t b = 0; b < cached->data.size(); ++b) data[b] ^= cached->data[b];
  }
  data.resize(length);

  Message recovered;
  recovered.device_id = device_id;
  recovered.sequence = payload.base_sequence + static_cast<std::uint32_t>(idx);
  recovered.type = payload.entries[idx].type;
  recovered.data = std::move(data);
  deliver(recovered, meta, /*recovered=*/true);
  return true;
}

void Receiver::drain_pending(std::uint32_t device_id, const RxMeta& meta) {
  FecState& fec = fec_[device_id];
  bool progress = true;
  while (progress && !fec.pending.empty()) {
    progress = false;
    for (std::size_t i = 0; i < fec.pending.size();) {
      // Copy: attempt_recovery -> deliver may not touch pending, but the
      // vector can still reallocate via fec_ lookups elsewhere.
      const RecoveryPayload payload = fec.pending[i];
      if (attempt_recovery(device_id, payload, meta)) {
        fec.pending.erase(fec.pending.begin() + static_cast<std::ptrdiff_t>(i));
        progress = true;
      } else {
        ++i;
      }
    }
  }
}

void Receiver::publish_metrics(telemetry::MetricsRegistry& registry,
                               const std::string& prefix) const {
  registry.bind_counter(prefix + ".beacons_seen", &stats_.beacons_seen);
  registry.bind_counter(prefix + ".wile_beacons", &stats_.wile_beacons);
  registry.bind_counter(prefix + ".fragments", &stats_.fragments);
  registry.bind_counter(prefix + ".messages", &stats_.messages);
  registry.bind_counter(prefix + ".duplicates", &stats_.duplicates);
  registry.bind_counter(prefix + ".crc_failures", &stats_.crc_failures);
  registry.bind_counter(prefix + ".decrypt_failures", &stats_.decrypt_failures);
  registry.bind_counter(prefix + ".fcs_failures", &stats_.fcs_failures);
  registry.bind_counter(prefix + ".collisions_observed", &stats_.collisions_observed);
  registry.bind_counter(prefix + ".fec.parity_beacons", &stats_.parity_beacons);
  registry.bind_counter(prefix + ".fec.recovery_beacons", &stats_.recovery_beacons);
  registry.bind_counter(prefix + ".fec.recovered", &stats_.recovered);
  registry.bind_counter(prefix + ".partials_evicted", &stats_.partials_evicted);
  registry.bind_counter_fn(prefix + ".devices", [this] {
    return static_cast<std::uint64_t>(devices_.size());
  });
  registry.bind_counter_fn(prefix + ".estimated_losses", [this] {
    std::uint64_t total = 0;
    for (const auto& [id, dev] : devices_) total += dev.estimated_losses;
    return total;
  });
}

}  // namespace wile::core
