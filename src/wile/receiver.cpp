#include "wile/receiver.hpp"

#include <cstdio>

#include "dot11/mgmt.hpp"

namespace wile::core {

Receiver::Receiver(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
                   ReceiverConfig config)
    : scheduler_(scheduler),
      medium_(medium),
      config_(std::move(config)),
      codec_(config_.key ? Codec{*config_.key} : Codec{}) {
  node_id_ = medium_.attach(this, position);
}

bool Receiver::rx_enabled() const { return true; }  // mains-powered monitor

void Receiver::on_corrupt_frame(const sim::RxFrame&, bool collision) {
  ++stats_.fcs_failures;
  if (collision) ++stats_.collisions_observed;
}

void Receiver::on_frame(const sim::RxFrame& frame) {
  auto parsed = dot11::parse_mpdu(frame.mpdu);
  if (!parsed) return;
  if (!parsed->fcs_ok) {
    ++stats_.fcs_failures;
    return;
  }
  if (!parsed->header.fc.is_mgmt(dot11::MgmtSubtype::Beacon)) return;
  ++stats_.beacons_seen;

  auto beacon = dot11::Beacon::decode(parsed->body);
  if (!beacon) return;
  if (config_.require_hidden_ssid && !dot11::has_hidden_ssid(beacon->ies)) return;

  RxMeta meta;
  meta.received_at = scheduler_.now();
  meta.rssi_dbm = frame.rx_power_dbm;
  meta.bssid = parsed->header.addr3;

  bool any = false;
  // Related-work arm: SSID-stuffed beacons (§2) carry data in the SSID
  // field itself.
  if (const auto ssid = dot11::parse_ssid_ie(beacon->ies)) {
    if (auto fragment = decode_ssid_stuffed(*ssid)) {
      any = true;
      ++stats_.fragments;
      accept_fragment(*fragment, meta);
    }
  }
  for (const dot11::InfoElement* ie :
       beacon->ies.find_all(dot11::IeId::VendorSpecific)) {
    DecodeError error{};
    auto fragment = codec_.decode(*ie, &error);
    if (!fragment) {
      if (error == DecodeError::BadCrc) ++stats_.crc_failures;
      if (error == DecodeError::DecryptFailed) ++stats_.decrypt_failures;
      continue;
    }
    any = true;
    ++stats_.fragments;
    accept_fragment(*fragment, meta);
  }
  if (any) ++stats_.wile_beacons;
}

std::string Receiver::devices_csv() const {
  std::string out =
      "device_id,messages,losses,loss_pct,last_seq,first_seen_s,last_seen_s,rssi_dbm\n";
  char line[160];
  for (const auto& [id, dev] : devices_) {
    const double total = static_cast<double>(dev.messages + dev.estimated_losses);
    const double loss_pct =
        total > 0 ? 100.0 * static_cast<double>(dev.estimated_losses) / total : 0.0;
    std::snprintf(line, sizeof(line), "%u,%llu,%llu,%.2f,%u,%.3f,%.3f,%.1f\n", id,
                  static_cast<unsigned long long>(dev.messages),
                  static_cast<unsigned long long>(dev.estimated_losses), loss_pct,
                  dev.last_sequence, to_seconds(dev.first_seen.since_epoch()),
                  to_seconds(dev.last_seen.since_epoch()), dev.last_rssi_dbm);
    out += line;
  }
  return out;
}

void Receiver::accept_fragment(const Fragment& fragment, const RxMeta& meta) {
  auto message = reassembler_.add(fragment);
  if (!message) return;

  auto [it, inserted] = devices_.try_emplace(message->device_id);
  DeviceInfo& dev = it->second;
  if (inserted) {
    dev.device_id = message->device_id;
    dev.first_seen = meta.received_at;
    dev.last_sequence = message->sequence;
    dev.recent_seen = 1;
  } else if (message->sequence > dev.last_sequence) {
    const std::uint32_t gap = message->sequence - dev.last_sequence;
    dev.estimated_losses += gap - 1;
    dev.recent_seen = (gap >= 64) ? 1 : ((dev.recent_seen << gap) | 1);
    dev.last_sequence = message->sequence;
  } else {
    // Late arrival (out of order, or a retransmission after a gap was
    // already charged as lost). If we have it, it's a duplicate; if not,
    // it fills its gap and the loss estimate is walked back.
    const std::uint32_t age = dev.last_sequence - message->sequence;
    if (age >= 64) return;  // beyond the tracking horizon
    const std::uint64_t bit = std::uint64_t{1} << age;
    if (dev.recent_seen & bit) {
      ++stats_.duplicates;
      return;
    }
    dev.recent_seen |= bit;
    if (dev.estimated_losses > 0) --dev.estimated_losses;
  }
  dev.last_seen = meta.received_at;
  dev.last_rssi_dbm = meta.rssi_dbm;
  ++dev.messages;
  ++stats_.messages;
  if (callback_) callback_(*message, meta);
}

}  // namespace wile::core
