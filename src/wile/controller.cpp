#include "wile/controller.hpp"

#include "dot11/mgmt.hpp"

namespace wile::core {

Controller::Controller(sim::Scheduler& scheduler, sim::Medium& medium,
                       sim::Position position, ControllerConfig config, Rng rng)
    : scheduler_(scheduler),
      medium_(medium),
      config_(std::move(config)),
      rng_(rng),
      codec_(config_.key ? Codec{*config_.key} : Codec{}) {
  node_id_ = medium_.attach(this, position);
  sim::CsmaConfig csma_cfg;
  csma_cfg.tx_power_dbm = config_.tx_power_dbm;
  csma_ = std::make_unique<sim::Csma>(scheduler_, medium_, node_id_, rng_.fork(), csma_cfg);
}

bool Controller::rx_enabled() const { return !medium_.transmitting(node_id_); }

void Controller::queue_downlink(std::uint32_t device_id, Bytes data) {
  queued_[device_id].push_back(std::move(data));
  ++stats_.downlinks_queued;
}

void Controller::on_frame(const sim::RxFrame& frame) {
  auto parsed = dot11::parse_mpdu(frame.mpdu);
  if (!parsed || !parsed->fcs_ok) return;
  if (!parsed->header.fc.is_mgmt(dot11::MgmtSubtype::Beacon)) return;
  auto beacon = dot11::Beacon::decode(parsed->body);
  if (!beacon) return;

  RxMeta meta;
  meta.received_at = scheduler_.now();
  meta.rssi_dbm = frame.rx_power_dbm;
  meta.bssid = parsed->header.addr3;

  for (const Fragment& fragment : codec_.decode_all(beacon->ies)) {
    if (fragment.rx_window) {
      ++stats_.windows_seen;
      auto qit = queued_.find(fragment.device_id);
      if (qit != queued_.end() && !qit->second.empty()) {
        inject_downlink(fragment.device_id, *fragment.rx_window);
      }
    }
    if (auto message = reassembler_.add(fragment)) {
      // Reliable mode: acknowledge completed uplinks into the window the
      // device just announced.
      if (config_.auto_ack && fragment.rx_window && message->type != MessageType::Ack) {
        Message ack;
        ack.device_id = message->device_id;
        ack.sequence = downlink_seq_[message->device_id]++;
        ack.type = MessageType::Ack;
        ByteWriter w(4);
        w.u32le(message->sequence);
        ack.data = w.take();
        schedule_injection(*fragment.rx_window, std::move(ack), /*is_ack=*/true);
      }
      if (callback_) callback_(*message, meta);
    }
  }
}

Bytes Controller::build_downlink_beacon(const Message& message) {
  dot11::Beacon beacon;
  beacon.timestamp_us = static_cast<std::uint64_t>(scheduler_.now().us());
  beacon.capability = dot11::Capability::kEss;
  beacon.ies.add(dot11::make_ssid_ie(""));  // hidden, like the devices
  beacon.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  for (const auto& ie : codec_.encode(message)) beacon.ies.add(ie);

  dot11::MacHeader h;
  h.fc = dot11::FrameControl::mgmt(dot11::MgmtSubtype::Beacon);
  h.addr1 = MacAddress::broadcast();
  h.addr2 = config_.mac;
  h.addr3 = config_.mac;
  h.set_sequence(seq_ctl_++ & 0x0fff);
  return dot11::assemble_mpdu(h, beacon.encode());
}

void Controller::inject_downlink(std::uint32_t device_id, const RxWindow& window) {
  auto qit = queued_.find(device_id);
  if (qit == queued_.end() || qit->second.empty()) return;
  Message message;
  message.device_id = device_id;
  message.sequence = downlink_seq_[device_id]++;
  message.type = MessageType::Downlink;
  message.data = std::move(qit->second.front());
  qit->second.pop_front();
  schedule_injection(window, std::move(message), /*is_ack=*/false);
}

void Controller::schedule_injection(const RxWindow& window, Message message, bool is_ack) {
  // The device starts listening `window.offset` after its beacon ended —
  // which is now (frames are delivered at end-of-airtime). Aim a little
  // into the window so CSMA slop does not miss it.
  const Duration lead = window.offset + config_.aim_into_window;
  scheduler_.schedule_in(lead, [this, message = std::move(message), is_ack] {
    const Bytes mpdu = build_downlink_beacon(message);
    csma_->send(mpdu, config_.rate, /*expect_ack=*/false,
                [this, is_ack](const sim::Csma::Result&) {
                  if (is_ack) {
                    ++stats_.acks_sent;
                  } else {
                    ++stats_.downlinks_sent;
                  }
                });
  });
}

}  // namespace wile::core
