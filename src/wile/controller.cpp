#include "wile/controller.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "dot11/mgmt.hpp"

namespace wile::core {

Controller::Controller(sim::Scheduler& scheduler, sim::Medium& medium,
                       sim::Position position, ControllerConfig config, Rng rng)
    : scheduler_(scheduler),
      medium_(medium),
      config_(std::move(config)),
      rng_(rng),
      codec_(config_.key ? Codec{*config_.key} : Codec{}) {
  node_id_ = medium_.attach(this, position);
  sim::CsmaConfig csma_cfg;
  csma_cfg.tx_power_dbm = config_.tx_power_dbm;
  csma_ = std::make_unique<sim::Csma>(scheduler_, medium_, node_id_, rng_.fork(), csma_cfg);
}

bool Controller::rx_enabled() const { return !medium_.transmitting(node_id_); }

void Controller::queue_downlink(std::uint32_t device_id, Bytes data) {
  devices_.state(device_id).queue().push_back(std::move(data));
  ++stats_.downlinks_queued;
}

void Controller::on_frame(const sim::RxFrame& frame) {
  const auto t0 = dispatch_ns_ ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
  auto parsed = dot11::parse_mpdu(frame.mpdu);
  if (!parsed || !parsed->fcs_ok) return;
  if (!parsed->header.fc.is_mgmt(dot11::MgmtSubtype::Beacon)) return;
  auto beacon = dot11::Beacon::decode(parsed->body);
  if (!beacon) return;

  RxMeta meta;
  meta.received_at = scheduler_.now();
  meta.rssi_dbm = frame.rx_power_dbm;
  meta.bssid = parsed->header.addr3;

  for (const Fragment& fragment : codec_.decode_all(beacon->ies)) {
    // Loss bookkeeping runs at fragment granularity over the uplink data
    // types only: Recovery beacons and downlink traffic (possibly from
    // other controllers) ride different sequence spaces.
    const bool uplink_data = fragment.type == MessageType::Telemetry ||
                             fragment.type == MessageType::Event ||
                             fragment.type == MessageType::Probe;
    // One probe resolves everything this fragment needs: the loss track,
    // the downlink queue and the downlink sequence counter all live in
    // the same DeviceState record. Only uplink data may create a record;
    // other types look up what queue_downlink already created, if any.
    DeviceState* dev = uplink_data ? &devices_.state(fragment.device_id)
                                   : devices_.find(fragment.device_id);
    if (uplink_data) IngestTable::note_uplink(*dev, fragment.sequence);
    if (fragment.rx_window) {
      ++stats_.windows_seen;
      if (dev && dev->has_queued()) {
        inject_downlink(fragment.device_id, *dev, *fragment.rx_window);
      }
      // Loss-adaptive redundancy: one ChannelReport per announced
      // sequence (repeats of the same beacon don't re-trigger).
      if (config_.channel_reports && uplink_data &&
          IngestTable::should_report(*dev, fragment.sequence)) {
        Message report;
        report.device_id = fragment.device_id;
        report.sequence = dev->downlink_seq++;
        report.type = MessageType::ChannelReport;
        report.data = encode_channel_report(make_report(*dev));
        schedule_injection(*fragment.rx_window, std::move(report), TxKind::Report);
      }
    }
    if (auto message = reassembler_.add(fragment)) {
      // Reliable mode: acknowledge completed uplinks into the window the
      // device just announced. Only data uplinks are acked — FEC and
      // control traffic is not part of the reliable stream.
      const bool ackable = message->type == MessageType::Telemetry ||
                           message->type == MessageType::Event ||
                           message->type == MessageType::Probe;
      if (config_.auto_ack && fragment.rx_window && ackable) {
        Message ack;
        ack.device_id = message->device_id;
        // A completed message normally belongs to the fragment's device,
        // so its sequence counter is already in hand; fall back to a
        // fresh probe for cross-device completions. (state() may grow the
        // table, so `dev` must not be used after this point.)
        DeviceState& ack_dev = (dev && message->device_id == fragment.device_id)
                                   ? *dev
                                   : devices_.state(message->device_id);
        ack.sequence = ack_dev.downlink_seq++;
        ack.type = MessageType::Ack;
        ByteWriter w(4);
        w.u32le(message->sequence);
        ack.data = w.take();
        schedule_injection(*fragment.rx_window, std::move(ack), TxKind::Ack);
      }
      if (callback_) callback_(*message, meta);
    }
  }
  if (dispatch_ns_) {
    dispatch_ns_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
}

ChannelReport Controller::make_report(const DeviceState& dev) const {
  const auto window = static_cast<std::uint32_t>(std::clamp(config_.report_window, 1, 64));
  const std::uint32_t w = std::min(window, dev.span);
  const std::uint64_t mask = w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
  const auto received =
      static_cast<std::uint32_t>(std::popcount(dev.recent_seen & mask));
  ChannelReport report;
  report.as_of_sequence = dev.last_sequence;
  report.loss_permille = static_cast<std::uint16_t>(1000 * (w - std::min(received, w)) / w);
  report.window = static_cast<std::uint8_t>(w);
  return report;
}

Bytes Controller::build_downlink_beacon(const Message& message) {
  dot11::Beacon beacon;
  beacon.timestamp_us = static_cast<std::uint64_t>(scheduler_.now().us());
  beacon.capability = dot11::Capability::kEss;
  beacon.ies.add(dot11::make_ssid_ie(""));  // hidden, like the devices
  beacon.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  for (const auto& ie : codec_.encode(message)) beacon.ies.add(ie);

  dot11::MacHeader h;
  h.fc = dot11::FrameControl::mgmt(dot11::MgmtSubtype::Beacon);
  h.addr1 = MacAddress::broadcast();
  h.addr2 = config_.mac;
  h.addr3 = config_.mac;
  h.set_sequence(seq_ctl_++ & 0x0fff);
  return dot11::assemble_mpdu(h, beacon.encode());
}

void Controller::inject_downlink(std::uint32_t device_id, DeviceState& dev,
                                 const RxWindow& window) {
  Message message;
  message.device_id = device_id;
  message.sequence = dev.downlink_seq++;
  message.type = MessageType::Downlink;
  message.data = std::move(dev.queued_downlinks->front());
  dev.queued_downlinks->pop_front();
  schedule_injection(window, std::move(message), TxKind::Downlink);
}

void Controller::schedule_injection(const RxWindow& window, Message message, TxKind kind) {
  // The device starts listening `window.offset` after its beacon ended —
  // which is now (frames are delivered at end-of-airtime). Aim a little
  // into the window so CSMA slop does not miss it.
  const Duration lead = window.offset + config_.aim_into_window;
  scheduler_.schedule_in(lead, [this, message = std::move(message), kind] {
    const Bytes mpdu = build_downlink_beacon(message);
    csma_->send(mpdu, config_.rate, /*expect_ack=*/false,
                [this, kind](const sim::Csma::Result&) {
                  switch (kind) {
                    case TxKind::Ack: ++stats_.acks_sent; break;
                    case TxKind::Report: ++stats_.reports_sent; break;
                    case TxKind::Downlink: ++stats_.downlinks_sent; break;
                  }
                });
  });
}

void Controller::publish_metrics(telemetry::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  registry.bind_counter(prefix + ".downlinks_queued", &stats_.downlinks_queued);
  registry.bind_counter(prefix + ".downlinks_sent", &stats_.downlinks_sent);
  registry.bind_counter(prefix + ".windows_seen", &stats_.windows_seen);
  registry.bind_counter(prefix + ".acks_sent", &stats_.acks_sent);
  registry.bind_counter(prefix + ".reports_sent", &stats_.reports_sent);
}

void Controller::publish_ingest_timing(telemetry::MetricsRegistry& registry,
                                       const std::string& prefix) {
  dispatch_ns_ = registry.histogram(prefix + ".dispatch_ns");
}

}  // namespace wile::core
