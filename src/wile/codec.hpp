// The Wi-LE payload container: messages inside 802.11 vendor-specific
// information elements.
//
// §4.1 of the paper: with the hidden-SSID trick the SSID field must be
// null, so "Wi-LE must place IoT devices' data in other fields. The
// 'vendor specific' information element field in the 802.11 beacon frame
// is a suitable place". This codec defines the byte layout inside that
// element:
//
//   OUI(3) subtype(1)                       -- element identification
//   ver(1) flags(1) device_id(4) seq(4)
//   type(1) [frag_idx(1) frag_cnt(1)] [win_off_ms(2) win_dur_ms(2)]
//   data_len(1) data(..) crc32(4)
//
// flags: bit0 = data encrypted (AEAD; tag included in data), bit1 =
// fragmented, bit2 = rx-window present, bit3 = parity element (forward
// erasure correction; see below). The CRC covers everything from
// `ver` through `data` (over the ciphertext when encrypted, so corrupt
// elements are rejected before any key work). Messages larger than one
// element are split across multiple vendor IEs in the same beacon or,
// when even that is not enough, across consecutive beacons — the
// receiver's reassembly does not care which.
//
// FEC (the ack-less uplink has no retransmission path, so reliability is
// open-loop redundancy):
//   * Group parity: a fragmented message may carry one extra parity
//     element (frag_index == frag_count, bit3 set) whose body is
//     [last_frag_len(1)][XOR of all data fragments zero-padded to the
//     full fragment size]. A receiver holding all-but-one fragment of
//     the group XORs the missing one back.
//   * Cross-cycle recovery: a MessageType::Recovery message carries the
//     XOR of the last K *message* payloads (RecoveryPayload below), so
//     even unfragmented single-beacon messages survive one loss per
//     covered group.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "crypto/aead.hpp"
#include "dot11/ie.hpp"
#include "wile/message.hpp"

namespace wile::core {

/// Organisationally-unique identifier used by Wi-LE elements.
constexpr std::array<std::uint8_t, 3> kWileOui = {0x57, 0x69, 0x4c};  // "WiL"
constexpr std::uint8_t kWileSubtype = 0x45;                           // "E"

/// One decoded element (possibly a fragment of a larger message).
struct Fragment {
  std::uint32_t device_id = 0;
  std::uint32_t sequence = 0;
  MessageType type = MessageType::Telemetry;
  std::uint8_t frag_index = 0;
  std::uint8_t frag_count = 1;
  /// Group-parity element: `data` is [last_frag_len][XOR of the group's
  /// data fragments], and frag_index == frag_count.
  bool parity = false;
  std::optional<RxWindow> rx_window;
  Bytes data;  // decrypted if the codec has the key
};

enum class DecodeError {
  NotWile,        // wrong OUI/subtype/version
  Malformed,      // truncated or inconsistent lengths
  BadCrc,         // transmission survived FCS but container CRC failed
  DecryptFailed,  // AEAD tag mismatch (wrong key or tampering)
  KeyRequired,    // element is encrypted but codec has no key
};

class Codec {
 public:
  /// Plaintext codec.
  Codec() = default;
  /// Encrypting codec; `key` is the 16-byte device key.
  explicit Codec(BytesView key);

  [[nodiscard]] bool encrypted() const { return aead_.has_value(); }

  /// Usable data bytes in a single element for the given feature set.
  [[nodiscard]] std::size_t max_fragment_data(bool fragmented, bool has_window) const;

  /// Largest message data size encodable into `max_elements` elements.
  [[nodiscard]] std::size_t capacity(std::size_t max_elements, bool has_window) const;

  /// Encode a message into one or more vendor IEs. Throws
  /// std::invalid_argument if the message needs more than 255 fragments.
  /// With `parity` set, a fragmented message additionally gets one XOR
  /// parity element (the last element returned); unfragmented messages
  /// are unchanged — cross-cycle Recovery beacons cover those. Parity
  /// costs one data byte per fragment (the parity body carries a 1-byte
  /// length header and must still fit the element).
  [[nodiscard]] std::vector<dot11::InfoElement> encode(const Message& message,
                                                       bool parity = false) const;

  /// Decode one vendor IE payload (after OUI+subtype matching, which
  /// decode() performs itself from the raw element).
  [[nodiscard]] std::optional<Fragment> decode(const dot11::InfoElement& element,
                                               DecodeError* error = nullptr) const;

  /// Convenience: all Wi-LE fragments in an IE list.
  [[nodiscard]] std::vector<Fragment> decode_all(const dot11::IeList& ies) const;

 private:
  [[nodiscard]] Bytes encode_one(const Message& message, std::uint8_t frag_index,
                                 std::uint8_t frag_count, BytesView data,
                                 bool parity = false) const;

  std::optional<crypto::Aead> aead_;
};

// ---------------------------------------------------------------------------
// FEC payload containers.
// ---------------------------------------------------------------------------

/// One message covered by a Recovery beacon: its original type and
/// payload length (needed to strip the XOR block's zero padding).
struct RecoveryEntry {
  MessageType type = MessageType::Telemetry;
  std::uint16_t length = 0;

  friend bool operator==(const RecoveryEntry&, const RecoveryEntry&) = default;
};

/// Payload of a MessageType::Recovery message: the XOR of the payloads
/// of the K consecutive uplink messages starting at `base_sequence`
/// (each zero-padded to the longest). Layout:
///   base_seq(4) k(1) k x [type(1) len(2)] xor_block(max len)
struct RecoveryPayload {
  std::uint32_t base_sequence = 0;
  std::vector<RecoveryEntry> entries;  // oldest first, size K (1..=32)
  Bytes xor_block;                     // length = max entry length

  friend bool operator==(const RecoveryPayload&, const RecoveryPayload&) = default;
};

/// Most messages a single Recovery beacon may cover.
constexpr std::size_t kMaxRecoveryGroup = 32;

/// Encode/decode a Recovery message payload. Encoding throws
/// std::invalid_argument on inconsistent sizes (0 or > kMaxRecoveryGroup
/// entries, xor_block shorter than the longest entry).
[[nodiscard]] Bytes encode_recovery_payload(const RecoveryPayload& payload);
[[nodiscard]] std::optional<RecoveryPayload> decode_recovery_payload(BytesView data);

/// Payload of a MessageType::ChannelReport downlink: the controller's
/// receiver-side loss estimate for one device, measured over the last
/// `window` sequence numbers up to `as_of_sequence`. Layout:
///   as_of_seq(4) loss_permille(2) window(1)
struct ChannelReport {
  std::uint32_t as_of_sequence = 0;
  std::uint16_t loss_permille = 0;  // 0..1000
  std::uint8_t window = 0;          // sequences the estimate covers

  friend bool operator==(const ChannelReport&, const ChannelReport&) = default;
};

[[nodiscard]] Bytes encode_channel_report(const ChannelReport& report);
[[nodiscard]] std::optional<ChannelReport> decode_channel_report(BytesView data);

// ---------------------------------------------------------------------------
// SSID stuffing — the related-work alternative (§2).
//
// "The work closest to ours is a technique called WiFi beacon-stuffing
// [Chandra'07] ... overloads some fields in the 802.11 beacon" — most
// prominently the SSID itself. We implement it as a comparison arm: the
// message rides in the SSID field, which caps the payload at 32 bytes
// minus header and, unlike the hidden-SSID vendor-IE scheme, pollutes
// every nearby device's network list (see ScanListModel).
// ---------------------------------------------------------------------------

/// Data bytes one stuffed SSID can carry (32 - magic(2) - device(2) -
/// seq(1) = 27).
constexpr std::size_t kSsidStuffingCapacity = 27;

/// Encode into an SSID-field payload. Returns nullopt if data exceeds
/// kSsidStuffingCapacity or device_id exceeds 16 bits (the field is too
/// small for the full header; that is the point of the comparison).
std::optional<std::string> encode_ssid_stuffed(const Message& message);

/// Decode an SSID captured from a beacon. Returns nullopt for ordinary
/// (human) network names.
std::optional<Fragment> decode_ssid_stuffed(std::string_view ssid);

/// Reassembles fragments into complete messages. One instance per
/// receiver; tolerates interleaved devices and lost fragments (stale
/// partial messages are dropped when a newer sequence arrives). Holds at
/// most `max_partials` in-progress messages — devices that go silent
/// mid-message are evicted oldest-first, so a monitor parked on a busy
/// channel is memory-bounded no matter how many devices it hears.
/// Understands group-parity elements: a group missing exactly one data
/// fragment is completed by XOR as soon as the parity arrives (or the
/// parity is already held and the second-to-last fragment arrives).
class Reassembler {
 public:
  static constexpr std::size_t kDefaultMaxPartials = 256;

  explicit Reassembler(std::size_t max_partials = kDefaultMaxPartials)
      : max_partials_(max_partials > 0 ? max_partials : 1) {}

  /// Feed one fragment; returns the completed message when all parts of
  /// its (device, sequence) group have arrived or become recoverable.
  std::optional<Message> add(const Fragment& fragment);

  /// Messages completed by XOR-ing a missing fragment back from parity.
  [[nodiscard]] std::uint64_t parity_recoveries() const { return parity_recoveries_; }
  /// Incomplete messages dropped to keep the partial table bounded.
  [[nodiscard]] std::uint64_t partials_evicted() const { return partials_evicted_; }
  [[nodiscard]] std::size_t partials() const { return partial_.size(); }

 private:
  struct Partial {
    std::uint32_t sequence = 0;
    std::uint8_t frag_count = 0;
    std::vector<std::optional<Bytes>> parts;
    std::optional<Bytes> parity;  // [last_len][xor block], if seen
    MessageType type = MessageType::Telemetry;
    std::optional<RxWindow> rx_window;
    std::uint64_t last_touch = 0;  // monotonic tick for eviction order
  };

  [[nodiscard]] std::optional<Message> try_complete(std::uint32_t device_id, Partial& p);

  std::unordered_map<std::uint32_t, Partial> partial_;  // by device id
  std::size_t max_partials_ = kDefaultMaxPartials;
  std::uint64_t tick_ = 0;
  std::uint64_t parity_recoveries_ = 0;
  std::uint64_t partials_evicted_ = 0;
};

}  // namespace wile::core
