// The Wi-LE payload container: messages inside 802.11 vendor-specific
// information elements.
//
// §4.1 of the paper: with the hidden-SSID trick the SSID field must be
// null, so "Wi-LE must place IoT devices' data in other fields. The
// 'vendor specific' information element field in the 802.11 beacon frame
// is a suitable place". This codec defines the byte layout inside that
// element:
//
//   OUI(3) subtype(1)                       -- element identification
//   ver(1) flags(1) device_id(4) seq(4)
//   type(1) [frag_idx(1) frag_cnt(1)] [win_off_ms(2) win_dur_ms(2)]
//   data_len(1) data(..) crc32(4)
//
// flags: bit0 = data encrypted (AEAD; tag included in data), bit1 =
// fragmented, bit2 = rx-window present. The CRC covers everything from
// `ver` through `data` (over the ciphertext when encrypted, so corrupt
// elements are rejected before any key work). Messages larger than one
// element are split across multiple vendor IEs in the same beacon or,
// when even that is not enough, across consecutive beacons — the
// receiver's reassembly does not care which.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "crypto/aead.hpp"
#include "dot11/ie.hpp"
#include "wile/message.hpp"

namespace wile::core {

/// Organisationally-unique identifier used by Wi-LE elements.
constexpr std::array<std::uint8_t, 3> kWileOui = {0x57, 0x69, 0x4c};  // "WiL"
constexpr std::uint8_t kWileSubtype = 0x45;                           // "E"

/// One decoded element (possibly a fragment of a larger message).
struct Fragment {
  std::uint32_t device_id = 0;
  std::uint32_t sequence = 0;
  MessageType type = MessageType::Telemetry;
  std::uint8_t frag_index = 0;
  std::uint8_t frag_count = 1;
  std::optional<RxWindow> rx_window;
  Bytes data;  // decrypted if the codec has the key
};

enum class DecodeError {
  NotWile,        // wrong OUI/subtype/version
  Malformed,      // truncated or inconsistent lengths
  BadCrc,         // transmission survived FCS but container CRC failed
  DecryptFailed,  // AEAD tag mismatch (wrong key or tampering)
  KeyRequired,    // element is encrypted but codec has no key
};

class Codec {
 public:
  /// Plaintext codec.
  Codec() = default;
  /// Encrypting codec; `key` is the 16-byte device key.
  explicit Codec(BytesView key);

  [[nodiscard]] bool encrypted() const { return aead_.has_value(); }

  /// Usable data bytes in a single element for the given feature set.
  [[nodiscard]] std::size_t max_fragment_data(bool fragmented, bool has_window) const;

  /// Largest message data size encodable into `max_elements` elements.
  [[nodiscard]] std::size_t capacity(std::size_t max_elements, bool has_window) const;

  /// Encode a message into one or more vendor IEs. Throws
  /// std::invalid_argument if the message needs more than 255 fragments.
  [[nodiscard]] std::vector<dot11::InfoElement> encode(const Message& message) const;

  /// Decode one vendor IE payload (after OUI+subtype matching, which
  /// decode() performs itself from the raw element).
  [[nodiscard]] std::optional<Fragment> decode(const dot11::InfoElement& element,
                                               DecodeError* error = nullptr) const;

  /// Convenience: all Wi-LE fragments in an IE list.
  [[nodiscard]] std::vector<Fragment> decode_all(const dot11::IeList& ies) const;

 private:
  [[nodiscard]] Bytes encode_one(const Message& message, std::uint8_t frag_index,
                                 std::uint8_t frag_count, BytesView data) const;

  std::optional<crypto::Aead> aead_;
};

// ---------------------------------------------------------------------------
// SSID stuffing — the related-work alternative (§2).
//
// "The work closest to ours is a technique called WiFi beacon-stuffing
// [Chandra'07] ... overloads some fields in the 802.11 beacon" — most
// prominently the SSID itself. We implement it as a comparison arm: the
// message rides in the SSID field, which caps the payload at 32 bytes
// minus header and, unlike the hidden-SSID vendor-IE scheme, pollutes
// every nearby device's network list (see ScanListModel).
// ---------------------------------------------------------------------------

/// Data bytes one stuffed SSID can carry (32 - magic(2) - device(2) -
/// seq(1) = 27).
constexpr std::size_t kSsidStuffingCapacity = 27;

/// Encode into an SSID-field payload. Returns nullopt if data exceeds
/// kSsidStuffingCapacity or device_id exceeds 16 bits (the field is too
/// small for the full header; that is the point of the comparison).
std::optional<std::string> encode_ssid_stuffed(const Message& message);

/// Decode an SSID captured from a beacon. Returns nullopt for ordinary
/// (human) network names.
std::optional<Fragment> decode_ssid_stuffed(std::string_view ssid);

/// Reassembles fragments into complete messages. One instance per
/// receiver; tolerates interleaved devices and lost fragments (stale
/// partial messages are dropped when a newer sequence arrives).
class Reassembler {
 public:
  /// Feed one fragment; returns the completed message when all parts of
  /// its (device, sequence) group have arrived.
  std::optional<Message> add(const Fragment& fragment);

 private:
  struct Partial {
    std::uint32_t sequence = 0;
    std::uint8_t frag_count = 0;
    std::vector<std::optional<Bytes>> parts;
    MessageType type = MessageType::Telemetry;
    std::optional<RxWindow> rx_window;
  };
  std::unordered_map<std::uint32_t, Partial> partial_;  // by device id
};

}  // namespace wile::core
