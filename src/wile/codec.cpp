#include "wile/codec.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/crc.hpp"

namespace wile::core {

namespace {
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFlagEncrypted = 0x01;
constexpr std::uint8_t kFlagFragmented = 0x02;
constexpr std::uint8_t kFlagRxWindow = 0x04;
constexpr std::uint8_t kFlagParity = 0x08;

// ver flags device_id seq type data_len crc
constexpr std::size_t kFixedOverhead = 1 + 1 + 4 + 4 + 1 + 1 + 4;
constexpr std::size_t kFragOverhead = 2;
constexpr std::size_t kWindowOverhead = 4;

crypto::Aead::Nonce make_nonce(std::uint32_t device_id, std::uint32_t sequence,
                               std::uint8_t frag_index) {
  crypto::Aead::Nonce nonce{};
  for (int i = 0; i < 4; ++i) nonce[i] = static_cast<std::uint8_t>(device_id >> (8 * i));
  for (int i = 0; i < 4; ++i) nonce[4 + i] = static_cast<std::uint8_t>(sequence >> (8 * i));
  nonce[8] = frag_index;
  return nonce;
}
}  // namespace

Codec::Codec(BytesView key) : aead_(crypto::Aead{key}) {}

std::size_t Codec::max_fragment_data(bool fragmented, bool has_window) const {
  std::size_t capacity = dot11::vendor_payload_capacity();  // after OUI+subtype
  capacity -= kFixedOverhead;
  if (fragmented) capacity -= kFragOverhead;
  if (has_window) capacity -= kWindowOverhead;
  if (aead_) capacity -= crypto::Aead::kTagSize;
  return capacity;
}

std::size_t Codec::capacity(std::size_t max_elements, bool has_window) const {
  if (max_elements == 0) return 0;
  if (max_elements == 1) return max_fragment_data(false, has_window);
  return max_elements * max_fragment_data(true, has_window);
}

Bytes Codec::encode_one(const Message& message, std::uint8_t frag_index,
                        std::uint8_t frag_count, BytesView data, bool parity) const {
  const bool fragmented = frag_count > 1 || parity;
  std::uint8_t flags = 0;
  if (aead_) flags |= kFlagEncrypted;
  if (fragmented) flags |= kFlagFragmented;
  if (message.rx_window) flags |= kFlagRxWindow;
  if (parity) flags |= kFlagParity;

  Bytes body;  // data or sealed data
  if (aead_) {
    // Associated data binds identity fields so they cannot be spliced.
    std::array<std::uint8_t, 9> ad{};
    for (int i = 0; i < 4; ++i) ad[i] = static_cast<std::uint8_t>(message.device_id >> (8 * i));
    for (int i = 0; i < 4; ++i) {
      ad[4 + i] = static_cast<std::uint8_t>(message.sequence >> (8 * i));
    }
    ad[8] = frag_index;
    body = aead_->seal(make_nonce(message.device_id, message.sequence, frag_index), ad, data);
  } else {
    body.assign(data.begin(), data.end());
  }
  if (body.size() > 255) throw std::logic_error("Wi-LE fragment body exceeds length field");

  ByteWriter w(kFixedOverhead + kFragOverhead + kWindowOverhead + body.size());
  w.u8(kVersion);
  w.u8(flags);
  w.u32le(message.device_id);
  w.u32le(message.sequence);
  w.u8(static_cast<std::uint8_t>(message.type));
  if (fragmented) {
    w.u8(frag_index);
    w.u8(frag_count);
  }
  if (message.rx_window) {
    w.u16le(static_cast<std::uint16_t>(message.rx_window->offset.count() / 1000));
    w.u16le(static_cast<std::uint16_t>(message.rx_window->duration.count() / 1000));
  }
  w.u8(static_cast<std::uint8_t>(body.size()));
  w.bytes(body);
  w.u32le(crypto::crc32(w.view()));
  return w.take();
}

std::vector<dot11::InfoElement> Codec::encode(const Message& message, bool parity) const {
  const bool has_window = message.rx_window.has_value();
  const std::size_t single = max_fragment_data(false, has_window);
  std::vector<dot11::InfoElement> out;

  auto wrap = [&](BytesView payload) {
    auto ie = dot11::make_vendor_ie(kWileOui, kWileSubtype, payload);
    if (!ie) throw std::logic_error("Wi-LE element exceeded vendor IE capacity");
    out.push_back(std::move(*ie));
  };

  if (message.data.size() <= single) {
    wrap(encode_one(message, 0, 1, message.data));
    return out;
  }

  // Parity mode gives up one data byte per fragment: the parity body is
  // [last_len][per_frag-byte XOR block] and must fit the same element.
  const std::size_t per_frag = max_fragment_data(true, has_window) - (parity ? 1 : 0);
  const std::size_t count = (message.data.size() + per_frag - 1) / per_frag;
  if (count > 255) throw std::invalid_argument("Wi-LE message needs more than 255 fragments");
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t off = i * per_frag;
    const std::size_t len = std::min(per_frag, message.data.size() - off);
    wrap(encode_one(message, static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(count),
                    BytesView{message.data.data() + off, len}));
  }
  if (parity) {
    const std::size_t last_len = message.data.size() - (count - 1) * per_frag;
    Bytes body(1 + per_frag, 0);
    body[0] = static_cast<std::uint8_t>(last_len);
    for (std::size_t i = 0; i < message.data.size(); ++i) {
      body[1 + i % per_frag] ^= message.data[i];
    }
    wrap(encode_one(message, static_cast<std::uint8_t>(count),
                    static_cast<std::uint8_t>(count), body, /*parity=*/true));
  }
  return out;
}

std::optional<Fragment> Codec::decode(const dot11::InfoElement& element,
                                      DecodeError* error) const {
  auto fail = [&](DecodeError e) {
    if (error != nullptr) *error = e;
    return std::nullopt;
  };

  if (element.id != dot11::IeId::VendorSpecific || element.data.size() < 4 ||
      !std::equal(kWileOui.begin(), kWileOui.end(), element.data.begin()) ||
      element.data[3] != kWileSubtype) {
    return fail(DecodeError::NotWile);
  }

  const BytesView payload{element.data.data() + 4, element.data.size() - 4};
  if (payload.size() < kFixedOverhead) return fail(DecodeError::Malformed);

  // CRC over everything before the trailing 4 bytes.
  const BytesView covered = payload.subspan(0, payload.size() - 4);
  ByteReader crc_r{payload.subspan(payload.size() - 4)};
  if (crypto::crc32(covered) != crc_r.u32le()) return fail(DecodeError::BadCrc);

  try {
    ByteReader r{covered};
    if (r.u8() != kVersion) return fail(DecodeError::NotWile);
    const std::uint8_t flags = r.u8();
    Fragment f;
    f.device_id = r.u32le();
    f.sequence = r.u32le();
    f.type = static_cast<MessageType>(r.u8());
    f.parity = (flags & kFlagParity) != 0;
    if (f.parity && !(flags & kFlagFragmented)) return fail(DecodeError::Malformed);
    if (flags & kFlagFragmented) {
      f.frag_index = r.u8();
      f.frag_count = r.u8();
      // A parity element sits one past the end of its group
      // (frag_index == frag_count); data fragments must be inside it.
      if (f.frag_count == 0 ||
          (f.parity ? f.frag_index != f.frag_count : f.frag_index >= f.frag_count)) {
        return fail(DecodeError::Malformed);
      }
    }
    if (flags & kFlagRxWindow) {
      RxWindow win;
      win.offset = msec(r.u16le());
      win.duration = msec(r.u16le());
      f.rx_window = win;
    }
    const std::size_t body_len = r.u8();
    if (body_len != r.remaining()) return fail(DecodeError::Malformed);
    const BytesView body = r.bytes(body_len);

    if (flags & kFlagEncrypted) {
      if (!aead_) return fail(DecodeError::KeyRequired);
      std::array<std::uint8_t, 9> ad{};
      for (int i = 0; i < 4; ++i) ad[i] = static_cast<std::uint8_t>(f.device_id >> (8 * i));
      for (int i = 0; i < 4; ++i) ad[4 + i] = static_cast<std::uint8_t>(f.sequence >> (8 * i));
      ad[8] = f.frag_index;
      auto plain = aead_->open(make_nonce(f.device_id, f.sequence, f.frag_index), ad, body);
      if (!plain) return fail(DecodeError::DecryptFailed);
      f.data = std::move(*plain);
    } else {
      f.data.assign(body.begin(), body.end());
    }
    return f;
  } catch (const BufferUnderflow&) {
    return fail(DecodeError::Malformed);
  }
}

std::vector<Fragment> Codec::decode_all(const dot11::IeList& ies) const {
  std::vector<Fragment> out;
  for (const dot11::InfoElement* ie : ies.find_all(dot11::IeId::VendorSpecific)) {
    if (auto f = decode(*ie)) out.push_back(std::move(*f));
  }
  return out;
}

std::optional<std::string> encode_ssid_stuffed(const Message& message) {
  if (message.data.size() > kSsidStuffingCapacity) return std::nullopt;
  if (message.device_id > 0xffff) return std::nullopt;
  std::string out;
  out.reserve(5 + message.data.size());
  out.push_back('\x57');  // 'W'
  out.push_back('\x21');  // '!'
  out.push_back(static_cast<char>(message.device_id & 0xff));
  out.push_back(static_cast<char>((message.device_id >> 8) & 0xff));
  out.push_back(static_cast<char>(message.sequence & 0xff));
  out.append(message.data.begin(), message.data.end());
  return out;
}

std::optional<Fragment> decode_ssid_stuffed(std::string_view ssid) {
  if (ssid.size() < 5 || ssid[0] != '\x57' || ssid[1] != '\x21') return std::nullopt;
  Fragment f;
  f.device_id = static_cast<std::uint8_t>(ssid[2]) |
                (static_cast<std::uint32_t>(static_cast<std::uint8_t>(ssid[3])) << 8);
  f.sequence = static_cast<std::uint8_t>(ssid[4]);
  f.type = MessageType::Telemetry;
  f.data.assign(ssid.begin() + 5, ssid.end());
  return f;
}

Bytes encode_recovery_payload(const RecoveryPayload& payload) {
  if (payload.entries.empty() || payload.entries.size() > kMaxRecoveryGroup) {
    throw std::invalid_argument("recovery payload: bad group size");
  }
  std::size_t max_len = 0;
  for (const auto& e : payload.entries) max_len = std::max<std::size_t>(max_len, e.length);
  if (payload.xor_block.size() != max_len) {
    throw std::invalid_argument("recovery payload: xor block / length mismatch");
  }
  ByteWriter w(5 + 3 * payload.entries.size() + payload.xor_block.size());
  w.u32le(payload.base_sequence);
  w.u8(static_cast<std::uint8_t>(payload.entries.size()));
  for (const auto& e : payload.entries) {
    w.u8(static_cast<std::uint8_t>(e.type));
    w.u16le(e.length);
  }
  w.bytes(payload.xor_block);
  return w.take();
}

std::optional<RecoveryPayload> decode_recovery_payload(BytesView data) {
  try {
    ByteReader r{data};
    RecoveryPayload p;
    p.base_sequence = r.u32le();
    const std::size_t k = r.u8();
    if (k == 0 || k > kMaxRecoveryGroup) return std::nullopt;
    std::size_t max_len = 0;
    p.entries.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      RecoveryEntry e;
      e.type = static_cast<MessageType>(r.u8());
      e.length = r.u16le();
      max_len = std::max<std::size_t>(max_len, e.length);
      p.entries.push_back(e);
    }
    if (r.remaining() != max_len) return std::nullopt;
    const BytesView block = r.bytes(max_len);
    p.xor_block.assign(block.begin(), block.end());
    return p;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

Bytes encode_channel_report(const ChannelReport& report) {
  ByteWriter w(7);
  w.u32le(report.as_of_sequence);
  w.u16le(report.loss_permille);
  w.u8(report.window);
  return w.take();
}

std::optional<ChannelReport> decode_channel_report(BytesView data) {
  try {
    ByteReader r{data};
    ChannelReport rep;
    rep.as_of_sequence = r.u32le();
    rep.loss_permille = r.u16le();
    rep.window = r.u8();
    if (r.remaining() != 0) return std::nullopt;
    if (rep.loss_permille > 1000 || rep.window == 0) return std::nullopt;
    return rep;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

std::optional<Message> Reassembler::add(const Fragment& fragment) {
  if (fragment.frag_count <= 1 && !fragment.parity) {
    Message m;
    m.device_id = fragment.device_id;
    m.sequence = fragment.sequence;
    m.type = fragment.type;
    m.data = fragment.data;
    m.rx_window = fragment.rx_window;
    return m;
  }

  // Codec::decode enforces these, but hand-built fragments must not be
  // able to index outside the group.
  if (fragment.frag_count == 0) return std::nullopt;
  if (!fragment.parity && fragment.frag_index >= fragment.frag_count) return std::nullopt;

  auto it = partial_.find(fragment.device_id);
  if (it == partial_.end()) {
    if (partial_.size() >= max_partials_) {
      // Table full: drop the partial that has waited longest for its
      // missing fragments (its device likely went silent mid-message).
      auto oldest = partial_.begin();
      for (auto cand = partial_.begin(); cand != partial_.end(); ++cand) {
        if (cand->second.last_touch < oldest->second.last_touch) oldest = cand;
      }
      partial_.erase(oldest);
      ++partials_evicted_;
    }
    it = partial_.try_emplace(fragment.device_id).first;
  }
  Partial& p = it->second;
  if (p.sequence != fragment.sequence || p.frag_count != fragment.frag_count ||
      p.parts.size() != fragment.frag_count) {
    // New message (or stale partial): reset the slot.
    p = Partial{};
    p.sequence = fragment.sequence;
    p.frag_count = fragment.frag_count;
    p.parts.assign(fragment.frag_count, std::nullopt);
  }
  p.type = fragment.type;
  p.last_touch = ++tick_;
  if (fragment.rx_window) p.rx_window = fragment.rx_window;
  if (fragment.parity) {
    if (fragment.data.empty()) return std::nullopt;  // malformed parity body
    p.parity = fragment.data;
  } else {
    p.parts[fragment.frag_index] = fragment.data;
  }
  return try_complete(fragment.device_id, p);
}

std::optional<Message> Reassembler::try_complete(std::uint32_t device_id, Partial& p) {
  std::size_t missing = 0;
  std::size_t missing_index = 0;
  for (std::size_t i = 0; i < p.parts.size(); ++i) {
    if (!p.parts[i]) {
      ++missing;
      missing_index = i;
    }
  }

  if (missing == 1 && p.parity) {
    // Erasure-correct the one missing fragment: XOR the parity block
    // with every present fragment (zero-padded to the block length).
    const std::size_t xor_len = p.parity->size() - 1;
    const std::size_t last_len = (*p.parity)[0];
    bool usable = last_len <= xor_len;
    for (const auto& part : p.parts) {
      if (part && part->size() > xor_len) usable = false;
    }
    if (usable) {
      Bytes rec(p.parity->begin() + 1, p.parity->end());
      for (const auto& part : p.parts) {
        if (!part) continue;
        for (std::size_t i = 0; i < part->size(); ++i) rec[i] ^= (*part)[i];
      }
      rec.resize(missing_index + 1 == p.parts.size() ? last_len : xor_len);
      p.parts[missing_index] = std::move(rec);
      ++parity_recoveries_;
      missing = 0;
    }
  }
  if (missing > 0) return std::nullopt;

  Message m;
  m.device_id = device_id;
  m.sequence = p.sequence;
  m.type = p.type;
  m.rx_window = p.rx_window;
  for (auto& part : p.parts) {
    m.data.insert(m.data.end(), part->begin(), part->end());
  }
  partial_.erase(device_id);
  return m;
}

}  // namespace wile::core
