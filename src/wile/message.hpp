// Wi-LE application messages.
//
// The paper's future-work section (§6) requires messages to "contain
// unique identifiers so that they can be distinguished from each other";
// we give every message a 32-bit device id and a 32-bit sequence number.
// The sequence number doubles as the AEAD nonce component when payload
// encryption is enabled and lets receivers estimate loss from gaps.
#pragma once

#include <cstdint>
#include <optional>

#include "util/byte_buffer.hpp"
#include "util/units.hpp"

namespace wile::core {

enum class MessageType : std::uint8_t {
  Telemetry = 1,  // periodic sensor reading (the paper's temperature demo)
  Event = 2,      // asynchronous notification
  Downlink = 3,   // controller -> device (two-way extension, §6)
  Probe = 4,      // device discovery / liveness
  /// Controller -> device acknowledgment of an uplink message; the
  /// 4-byte little-endian payload is the acknowledged sequence number.
  /// Rides RX windows like any Downlink and enables reliable mode.
  Ack = 5,
  /// Cross-cycle erasure coding: the payload is the XOR of the last K
  /// uplink message payloads (see RecoveryPayload in codec.hpp). A
  /// receiver that missed exactly one covered message reconstructs it
  /// without any retransmission. Uses its own sequence space so it never
  /// perturbs gap-based loss estimates.
  Recovery = 6,
  /// Controller -> device receiver-side loss estimate (see
  /// ChannelReport in codec.hpp). Rides RX windows like Acks and drives
  /// the sender's loss-adaptive redundancy tiers.
  ChannelReport = 7,
};

/// Two-way extension (§6): the device announces that it will listen for
/// `duration` starting `offset` after the end of this beacon.
struct RxWindow {
  Duration offset = msec(2);
  Duration duration = msec(20);

  friend bool operator==(const RxWindow&, const RxWindow&) = default;
};

struct Message {
  std::uint32_t device_id = 0;
  std::uint32_t sequence = 0;
  MessageType type = MessageType::Telemetry;
  Bytes data;
  std::optional<RxWindow> rx_window;

  friend bool operator==(const Message&, const Message&) = default;
};

}  // namespace wile::core
