// Two-way Wi-LE: the infrastructure-side controller (§6 "Two-way
// communication").
//
// "An IoT device that utilizes Wi-LE can indicate in some beacon frames
// that it will be ready to receive packets for a short time slot after
// the current beacon." The Controller is the other half of that scheme:
// a mains-powered WiFi card that monitors Wi-LE beacons like a Receiver
// and, when it has a payload queued for a device that just announced an
// RX window, injects a Downlink beacon inside that window.
//
// Per-device bookkeeping (loss track, downlink queue, downlink sequence)
// lives in one DeviceState record per device inside a flat open-addressing
// table (wile/ingest.hpp): each received fragment resolves its device with
// a single hash probe instead of the former three unordered_map lookups.
#pragma once

#include <memory>

#include "wile/ingest.hpp"
#include "wile/receiver.hpp"
#include "phy/airtime.hpp"
#include "sim/csma.hpp"

namespace wile::core {

struct ControllerConfig {
  std::optional<Bytes> key;  // shared device key, as for Receiver
  MacAddress mac = MacAddress::from_seed(0xC0117011E7ULL);
  phy::WifiRate rate = phy::WifiRate::Mcs7Sgi;
  double tx_power_dbm = 0.0;
  /// Injection is aimed this far into the announced window (leaves room
  /// for scheduling slop on both sides).
  Duration aim_into_window = msec(1);
  /// Acknowledge every completed uplink message from a window-announcing
  /// device with an Ack downlink — the controller half of the senders'
  /// reliable mode.
  bool auto_ack = false;
  /// Send a ChannelReport downlink (receiver-side loss estimate) into
  /// each announced RX window — the controller half of the senders'
  /// loss-adaptive redundancy. One report per announced sequence number.
  bool channel_reports = false;
  /// Sequence positions the loss estimate covers (1..64). Small windows
  /// react fast, large ones smooth; 16 converges within a handful of
  /// cycles yet rides out single losses.
  int report_window = 16;
};

struct ControllerStats {
  std::uint64_t downlinks_queued = 0;
  std::uint64_t downlinks_sent = 0;
  std::uint64_t windows_seen = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t reports_sent = 0;
};

class Controller : public sim::MediumClient {
 public:
  Controller(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
             ControllerConfig config, Rng rng);

  /// Queue a downlink payload; it rides the target's next RX window.
  void queue_downlink(std::uint32_t device_id, Bytes data);

  using MessageCallback = std::function<void(const Message&, const RxMeta&)>;
  void set_message_callback(MessageCallback cb) { callback_ = std::move(cb); }

  [[nodiscard]] const ControllerStats& stats() const { return stats_; }
  [[nodiscard]] sim::NodeId node_id() const { return node_id_; }
  [[nodiscard]] std::size_t devices_tracked() const { return devices_.devices(); }

  /// Bind controller counters into a telemetry registry under `prefix`
  /// (canonically "node.<id>.controller").
  void publish_metrics(telemetry::MetricsRegistry& registry,
                       const std::string& prefix) const;

  /// Opt-in wall-clock dispatch timing: records nanoseconds spent in
  /// on_frame into `<prefix>.dispatch_ns` (canonically
  /// "ingest.dispatch_ns"). Separate from publish_metrics because
  /// wall-clock values are nondeterministic — byte-identical telemetry
  /// exports stay byte-identical unless a scenario asks for timing.
  void publish_ingest_timing(telemetry::MetricsRegistry& registry,
                             const std::string& prefix);

  // --- sim::MediumClient -----------------------------------------------------
  void on_frame(const sim::RxFrame& frame) override;
  [[nodiscard]] bool rx_enabled() const override;

 private:
  enum class TxKind { Downlink, Ack, Report };

  void inject_downlink(std::uint32_t device_id, DeviceState& dev,
                       const RxWindow& window);
  void schedule_injection(const RxWindow& window, Message message, TxKind kind);
  [[nodiscard]] Bytes build_downlink_beacon(const Message& message);
  [[nodiscard]] ChannelReport make_report(const DeviceState& dev) const;

  sim::Scheduler& scheduler_;
  sim::Medium& medium_;
  ControllerConfig config_;
  Rng rng_;
  sim::NodeId node_id_;
  std::unique_ptr<sim::Csma> csma_;
  Codec codec_;
  Reassembler reassembler_;
  MessageCallback callback_;

  IngestTable devices_;
  std::uint16_t seq_ctl_ = 0;
  ControllerStats stats_;
  telemetry::Histogram* dispatch_ns_ = nullptr;  // opt-in, see above
};

}  // namespace wile::core
