// Wi-LE to infrastructure gateway.
//
// §1 of the paper: "when available, Wi-LE can utilize existing WiFi
// infrastructure (which Bluetooth cannot)". This node is how: one
// monitor-mode radio harvests Wi-LE beacons while a second, associated
// radio (a full sta::Station in power-save mode) forwards each message
// to a server behind the AP as a UDP datagram. A Raspberry-Pi-class box
// with two WiFi interfaces — mains powered, so its energy is not the
// scarce resource; the sensors' is.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "sta/station.hpp"
#include "wile/receiver.hpp"

namespace wile::core {

/// Wire format of one forwarded reading (the UDP payload the server
/// receives): device_id u32le, sequence u32le, type u8, rssi dBm s8,
/// data_len u16le, data.
struct ForwardedReading {
  std::uint32_t device_id = 0;
  std::uint32_t sequence = 0;
  MessageType type = MessageType::Telemetry;
  std::int8_t rssi_dbm = 0;
  Bytes data;

  [[nodiscard]] Bytes encode() const;
  static std::optional<ForwardedReading> decode(BytesView payload);

  friend bool operator==(const ForwardedReading&, const ForwardedReading&) = default;
};

struct GatewayConfig {
  /// Infrastructure side (ssid/passphrase must match the AP; server_ip /
  /// server_port name the collector behind it).
  sta::StationConfig station{};
  /// Wi-LE side (device key etc.).
  ReceiverConfig monitor{};
  /// Readings buffered while the uplink is busy; older ones drop first.
  std::size_t max_queue = 64;
};

struct GatewayStats {
  std::uint64_t received = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t forward_failures = 0;
};

class Gateway {
 public:
  Gateway(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
          GatewayConfig config, Rng rng);

  /// Associate the uplink station and begin bridging. `ready` fires once
  /// the station is through DHCP (or has failed).
  void start(std::function<void(bool)> ready);

  [[nodiscard]] const GatewayStats& stats() const { return stats_; }
  [[nodiscard]] const Receiver& monitor() const { return *monitor_; }
  [[nodiscard]] const sta::Station& station() const { return *station_; }

 private:
  void enqueue(const Message& message, const RxMeta& meta);
  void pump();

  sim::Scheduler& scheduler_;
  GatewayConfig config_;
  std::unique_ptr<Receiver> monitor_;
  std::unique_ptr<sta::Station> station_;
  std::deque<ForwardedReading> queue_;
  bool uplink_ready_ = false;
  bool sending_ = false;
  GatewayStats stats_;
};

}  // namespace wile::core
