// Wi-LE to infrastructure gateway.
//
// §1 of the paper: "when available, Wi-LE can utilize existing WiFi
// infrastructure (which Bluetooth cannot)". This node is how: one
// monitor-mode radio harvests Wi-LE beacons while a second, associated
// radio (a full sta::Station in power-save mode) forwards each message
// to a server behind the AP as a UDP datagram. A Raspberry-Pi-class box
// with two WiFi interfaces — mains powered, so its energy is not the
// scarce resource; the sensors' is.
//
// The gateway is self-healing: it supervises its uplink (the station's
// beacon-loss detection plus per-send failure reports), re-associates
// with capped exponential backoff + jitter after any loss, retries each
// reading within a budget, and keeps newest-first semantics when the
// queue overflows during an outage. All of it is observable through
// GatewayStats; tests/test_fault_injection.cpp drives the recovery
// paths end-to-end.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "sta/station.hpp"
#include "wile/receiver.hpp"

namespace wile::core {

/// Wire format of one forwarded reading (the UDP payload the server
/// receives): device_id u32le, sequence u32le, type u8, rssi dBm s8,
/// data_len u16le, data.
struct ForwardedReading {
  std::uint32_t device_id = 0;
  std::uint32_t sequence = 0;
  MessageType type = MessageType::Telemetry;
  std::int8_t rssi_dbm = 0;
  Bytes data;

  [[nodiscard]] Bytes encode() const;
  static std::optional<ForwardedReading> decode(BytesView payload);

  friend bool operator==(const ForwardedReading&, const ForwardedReading&) = default;
};

struct GatewayConfig {
  /// Infrastructure side (ssid/passphrase must match the AP; server_ip /
  /// server_port name the collector behind it).
  sta::StationConfig station{};
  /// Wi-LE side (device key etc.).
  ReceiverConfig monitor{};
  /// Readings buffered while the uplink is busy; older ones drop first
  /// (newest-first retention — the latest sensor state matters most).
  std::size_t max_queue = 64;
  /// Forward retries per reading after a failed send (0 = fire and
  /// forget). A reading that exhausts the budget is dropped.
  int forward_retry_limit = 3;
  /// Re-association backoff: delay = base * 2^attempt, capped, with a
  /// uniform ±jitter_fraction spread so a fleet of gateways does not
  /// stampede a recovering AP.
  Duration reconnect_backoff_base = msec(500);
  Duration reconnect_backoff_cap = seconds(8);
  double reconnect_jitter_fraction = 0.2;
  /// Thundering-herd desync: an extra one-shot delay drawn uniformly
  /// (seeded, per gateway) from [0, this] on the FIRST reconnect after
  /// an uplink loss. The multiplicative jitter above only spreads a
  /// fleet ±20% around the backoff base, so a fleet-wide AP restart
  /// still lands every reassociation in the same ~200 ms; this spreads
  /// the first wave across the whole window. 0 disables.
  Duration reconnect_desync_spread = seconds(1);
};

struct GatewayStats {
  std::uint64_t received = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped_queue_full = 0;
  /// Failed forward attempts (each failed send, including retries).
  std::uint64_t forward_failures = 0;
  /// Re-sends of a queued reading after a failure.
  std::uint64_t retries = 0;
  /// Readings abandoned after exhausting forward_retry_limit.
  std::uint64_t dropped_retry_budget = 0;
  /// Uplink-dead declarations observed (beacon loss, send death, fault).
  std::uint64_t uplink_losses = 0;
  /// Connection attempts made after the initial start().
  std::uint64_t reconnect_attempts = 0;
  /// Successful re-associations after a loss or failed attempt.
  std::uint64_t reassociations = 0;
};

class Gateway {
 public:
  Gateway(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
          GatewayConfig config, Rng rng);
  ~Gateway();

  /// Associate the uplink station and begin bridging. `ready` fires once
  /// with the outcome of the *first* attempt (through DHCP, or failed).
  /// Whatever the outcome, the gateway keeps supervising: failures and
  /// later losses trigger automatic re-association with backoff.
  void start(std::function<void(bool)> ready);

  /// Injected fault: kill the uplink radio/driver. The station tears
  /// down; the supervision machinery notices and re-associates.
  void kill_uplink();

  [[nodiscard]] bool uplink_ready() const { return uplink_ready_; }
  [[nodiscard]] const GatewayStats& stats() const { return stats_; }

  /// Bind bridge counters (and the monitor radio's receiver counters,
  /// under `prefix`.monitor) into a telemetry registry; the stats()
  /// accessors keep reading the same slots.
  void publish_metrics(telemetry::MetricsRegistry& registry,
                       const std::string& prefix) const;

  /// Next reconnect delay (capped exponential backoff x jitter, plus
  /// the one-shot desync spread after a loss). Public so tests can pin
  /// the distribution; consumes this gateway's jitter RNG.
  [[nodiscard]] Duration backoff_delay();
  [[nodiscard]] const Receiver& monitor() const { return *monitor_; }
  [[nodiscard]] const sta::Station& station() const { return *station_; }

 private:
  struct QueuedReading {
    ForwardedReading reading;
    int attempts = 0;  // failed sends so far
  };

  void enqueue(const Message& message, const RxMeta& meta);
  void pump();
  void on_send_result(QueuedReading item, bool success);
  void on_uplink_lost();
  void attempt_connect();
  void schedule_reconnect();

  sim::Scheduler& scheduler_;
  GatewayConfig config_;
  Rng rng_;  // backoff jitter
  std::unique_ptr<Receiver> monitor_;
  std::unique_ptr<sta::Station> station_;
  std::deque<QueuedReading> queue_;
  bool uplink_ready_ = false;
  bool sending_ = false;
  bool started_ = false;
  bool first_attempt_done_ = false;
  bool desync_pending_ = false;  // next backoff adds the desync spread
  int consecutive_connect_failures_ = 0;
  std::optional<sim::EventId> reconnect_timer_;
  std::optional<sim::EventId> pump_timer_;
  std::function<void(bool)> first_ready_;
  GatewayStats stats_;
};

}  // namespace wile::core
