// Wi-LE to infrastructure gateway.
//
// §1 of the paper: "when available, Wi-LE can utilize existing WiFi
// infrastructure (which Bluetooth cannot)". This node is how: one
// monitor-mode radio harvests Wi-LE beacons while a second, associated
// radio (a full sta::Station in power-save mode) forwards each message
// to a server behind the AP as a UDP datagram. A Raspberry-Pi-class box
// with two WiFi interfaces — mains powered, so its energy is not the
// scarce resource; the sensors' is.
//
// The uplink drains in batches: up to batch_max queued readings coalesce
// into one ForwardedBatch payload per power-save send cycle
// (`wile-batch-v1`: a 4-byte header then length-prefixed ForwardedReading
// records), encoded into an arena buffer that is reclaimed from the
// station after every cycle — steady-state forwarding does not allocate.
//
// The gateway is self-healing: it supervises its uplink (the station's
// beacon-loss detection plus per-send failure reports), re-associates
// with capped exponential backoff + jitter after any loss, retries each
// reading within a budget, and keeps newest-first semantics when the
// queue overflows during an outage. All of it is observable through
// GatewayStats; tests/test_fault_injection.cpp drives the recovery
// paths end-to-end.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "sta/station.hpp"
#include "telemetry/trace.hpp"
#include "wile/receiver.hpp"
#include "wile/rules/engine.hpp"

namespace wile::core {

/// Wire format of one forwarded reading (the UDP payload the server
/// receives): device_id u32le, sequence u32le, type u8, rssi dBm s8,
/// data_len u16le, data.
struct ForwardedReading {
  std::uint32_t device_id = 0;
  std::uint32_t sequence = 0;
  MessageType type = MessageType::Telemetry;
  std::int8_t rssi_dbm = 0;
  Bytes data;

  [[nodiscard]] Bytes encode() const;
  /// Append the record encoding to `out` (the allocation-free path the
  /// batch encoder uses).
  void encode_into(Bytes& out) const;
  static std::optional<ForwardedReading> decode(BytesView payload);

  friend bool operator==(const ForwardedReading&, const ForwardedReading&) = default;
};

/// `wile-batch-v1`: what one uplink datagram carries. Header: version
/// u8 (=1), flags u8 (=0), count u16le; then `count` records, each
/// record_len u16le + that many bytes in the ForwardedReading encoding.
/// Records are length-prefixed whole units — a batch boundary can never
/// split a record.
struct ForwardedBatch {
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::size_t kHeaderSize = 4;

  std::vector<ForwardedReading> readings;

  [[nodiscard]] Bytes encode() const;
  static std::optional<ForwardedBatch> decode(BytesView payload);

  // Incremental encoding into a reused arena:
  static void begin(Bytes& out);  // clears `out`, writes the header
  static void append(Bytes& out, const ForwardedReading& reading);
  static void finish(Bytes& out, std::size_t count);  // patches count
};

struct GatewayConfig {
  /// Infrastructure side (ssid/passphrase must match the AP; server_ip /
  /// server_port name the collector behind it).
  sta::StationConfig station{};
  /// Wi-LE side (device key etc.).
  ReceiverConfig monitor{};
  /// Readings buffered while the uplink is busy; older ones drop first
  /// (newest-first retention — the latest sensor state matters most).
  std::size_t max_queue = 64;
  /// Readings coalesced into one uplink payload per power-save send
  /// cycle (min 1). Larger batches amortise the wake/TX cycle over more
  /// readings at the cost of a bigger datagram.
  std::size_t batch_max = 16;
  /// Forward retries per reading after a failed send (0 = fire and
  /// forget). A reading that exhausts the budget is dropped.
  int forward_retry_limit = 3;
  /// Re-association backoff: delay = base * 2^attempt, capped, with a
  /// uniform ±jitter_fraction spread so a fleet of gateways does not
  /// stampede a recovering AP.
  Duration reconnect_backoff_base = msec(500);
  Duration reconnect_backoff_cap = seconds(8);
  double reconnect_jitter_fraction = 0.2;
  /// Thundering-herd desync: an extra one-shot delay drawn uniformly
  /// (seeded, per gateway) from [0, this] on the FIRST reconnect after
  /// an uplink loss. The multiplicative jitter above only spreads a
  /// fleet ±20% around the backoff base, so a fleet-wide AP restart
  /// still lands every reassociation in the same ~200 ms; this spreads
  /// the first wave across the whole window. 0 disables.
  Duration reconnect_desync_spread = seconds(1);
  /// Rules evaluated over every decoded reading (empty = no engine).
  std::vector<rules::RuleSpec> rules;
};

struct GatewayStats {
  std::uint64_t received = 0;
  std::uint64_t forwarded = 0;
  /// Uplink send cycles that carried a batch (forwarded / batches_sent
  /// = achieved coalescing).
  std::uint64_t batches_sent = 0;
  std::uint64_t dropped_queue_full = 0;
  /// Failed forward attempts (each failed send cycle, including retries).
  std::uint64_t forward_failures = 0;
  /// Re-sends of a queued reading after a failure.
  std::uint64_t retries = 0;
  /// Readings abandoned after exhausting forward_retry_limit.
  std::uint64_t dropped_retry_budget = 0;
  /// Every reading destroyed without being forwarded, whatever the
  /// reason (== dropped_queue_full + dropped_retry_budget).
  std::uint64_t dropped_total = 0;
  /// Uplink-dead declarations observed (beacon loss, send death, fault).
  std::uint64_t uplink_losses = 0;
  /// Connection attempts made after the initial start().
  std::uint64_t reconnect_attempts = 0;
  /// Successful re-associations after a loss or failed attempt.
  std::uint64_t reassociations = 0;
};

class Gateway {
 public:
  Gateway(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
          GatewayConfig config, Rng rng);
  ~Gateway();

  /// Associate the uplink station and begin bridging. `ready` fires once
  /// with the outcome of the *first* attempt (through DHCP, or failed).
  /// Whatever the outcome, the gateway keeps supervising: failures and
  /// later losses trigger automatic re-association with backoff.
  void start(std::function<void(bool)> ready);

  /// Injected fault: kill the uplink radio/driver. The station tears
  /// down; the supervision machinery notices and re-associates.
  void kill_uplink();

  [[nodiscard]] bool uplink_ready() const { return uplink_ready_; }
  [[nodiscard]] const GatewayStats& stats() const { return stats_; }

  /// Bind bridge counters (and the monitor radio's receiver counters,
  /// under `prefix`.monitor) into a telemetry registry; the stats()
  /// accessors keep reading the same slots. Also creates the
  /// `<prefix>.batch_fill` histogram of readings per sent batch
  /// (canonically "ingest.batch_fill" when prefix = "ingest").
  void publish_metrics(telemetry::MetricsRegistry& registry,
                       const std::string& prefix) const;

  /// Attach a tracer (nullptr detaches): the gateway emits a Drop
  /// instant, on the monitor radio's node, for every reading it
  /// destroys — chaos-soak oracles can bound loss from the trace.
  void set_tracer(telemetry::Tracer* tracer) { tracer_ = tracer; }

  /// The rules engine, or nullptr when GatewayConfig::rules was empty.
  [[nodiscard]] rules::Engine* rules() { return rules_.get(); }
  [[nodiscard]] const rules::Engine* rules() const { return rules_.get(); }

  /// Next reconnect delay (capped exponential backoff x jitter, plus
  /// the one-shot desync spread after a loss). Public so tests can pin
  /// the distribution; consumes this gateway's jitter RNG.
  [[nodiscard]] Duration backoff_delay();
  [[nodiscard]] const Receiver& monitor() const { return *monitor_; }
  [[nodiscard]] const sta::Station& station() const { return *station_; }

 private:
  struct QueuedReading {
    ForwardedReading reading;
    int attempts = 0;  // failed sends so far
  };

  void enqueue(const Message& message, const RxMeta& meta);
  void pump();
  void on_send_result(bool success);
  void drop_reading(std::uint64_t& reason_counter);
  void on_uplink_lost();
  void attempt_connect();
  void schedule_reconnect();

  sim::Scheduler& scheduler_;
  GatewayConfig config_;
  Rng rng_;  // backoff jitter
  std::unique_ptr<Receiver> monitor_;
  std::unique_ptr<sta::Station> station_;
  std::unique_ptr<rules::Engine> rules_;
  std::deque<QueuedReading> queue_;
  /// Readings riding the current send cycle (front of queue_ at pump
  /// time, in order). Capacity is reused across cycles.
  std::vector<QueuedReading> in_flight_;
  /// Encode buffer handed to the station each cycle and reclaimed in
  /// on_send_result — the steady-state drain loop never allocates.
  Bytes arena_;
  bool uplink_ready_ = false;
  bool sending_ = false;
  bool started_ = false;
  bool first_attempt_done_ = false;
  bool desync_pending_ = false;  // next backoff adds the desync spread
  int consecutive_connect_failures_ = 0;
  std::optional<sim::EventId> reconnect_timer_;
  std::optional<sim::EventId> pump_timer_;
  std::function<void(bool)> first_ready_;
  GatewayStats stats_;
  telemetry::Tracer* tracer_ = nullptr;
  mutable telemetry::Histogram* batch_fill_ = nullptr;
};

}  // namespace wile::core
