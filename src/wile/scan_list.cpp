#include "wile/scan_list.hpp"

#include <algorithm>

#include "dot11/mgmt.hpp"

namespace wile::core {

ScanListModel::ScanListModel(sim::Scheduler& scheduler, sim::Medium& medium,
                             sim::Position position)
    : scheduler_(scheduler) {
  medium.attach(this, position);
}

void ScanListModel::on_frame(const sim::RxFrame& frame) {
  auto parsed = dot11::parse_mpdu(frame.mpdu);
  if (!parsed || !parsed->fcs_ok) return;
  const auto& fc = parsed->header.fc;
  const bool beacon = fc.is_mgmt(dot11::MgmtSubtype::Beacon);
  const bool probe_resp = fc.is_mgmt(dot11::MgmtSubtype::ProbeResponse);
  if (!beacon && !probe_resp) return;

  // Beacon and probe-response bodies share the layout.
  auto body = dot11::Beacon::decode(parsed->body);
  if (!body) return;
  ++beacons_;

  const auto ssid = dot11::parse_ssid_ie(body->ies);
  const MacAddress bssid = parsed->header.addr3;
  if (!ssid || ssid->empty()) {
    ++hidden_[bssid];
    return;
  }
  VisibleNetwork& net = networks_[bssid];
  net.ssid = *ssid;
  net.bssid = bssid;
  net.rssi_dbm = frame.rx_power_dbm;
  net.last_seen = scheduler_.now();
  net.rsn_protected = dot11::has_rsn_psk(body->ies);
  ++net.beacons;
}

std::vector<VisibleNetwork> ScanListModel::visible() const {
  std::vector<VisibleNetwork> out;
  out.reserve(networks_.size());
  for (const auto& [bssid, net] : networks_) out.push_back(net);
  std::sort(out.begin(), out.end(), [](const VisibleNetwork& a, const VisibleNetwork& b) {
    return a.rssi_dbm > b.rssi_dbm;
  });
  return out;
}

}  // namespace wile::core
