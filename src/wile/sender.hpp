// The Wi-LE sender — the paper's core contribution (§4).
//
// An IoT device that never associates: it wakes from deep sleep,
// enables the radio just enough to inject one (or a few) fake 802.11
// beacon frames carrying its data in vendor-specific elements with a
// hidden SSID, and goes straight back to deep sleep. "When the
// microcontroller wakes up, it embeds its data in a beacon frame,
// transmits it immediately and goes back to sleep. Note that Wi-LE does
// not associate with an AP for transmission."
//
// The beacon's constant parts (MAC header template, SSID/rates/DS
// elements) are precomputed once, mirroring §5.4's observation that "the
// content of the packet including all of the headers can be pre-computed
// and then only the IoT device's data needs to be inserted".
//
// Optional extensions implemented from §6:
//   * clock-jittered periods, so co-periodic devices drift apart;
//   * per-device payload encryption (see codec.hpp);
//   * two-way communication: a beacon can announce a short RX window
//     during which the device listens for Downlink messages.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "phy/airtime.hpp"
#include "phy/wur_phy.hpp"
#include "power/devices.hpp"
#include "power/harvester.hpp"
#include "power/radio_tracker.hpp"
#include "power/timeline.hpp"
#include "sim/csma.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/mac_address.hpp"
#include "util/rng.hpp"
#include "wile/codec.hpp"

namespace wile::core {

/// One open-loop redundancy operating point for the ack-less uplink:
/// how many times each beacon train is repeated, whether fragmented
/// messages carry an XOR parity element, and how often a cross-cycle
/// Recovery beacon (XOR of the last `recovery_k` message payloads) is
/// transmitted. The adaptation state machine moves between tiers based
/// on controller ChannelReports; without adaptation the SenderConfig
/// fields below define a single fixed tier.
struct RedundancyTier {
  int repeats = 1;
  bool fec_parity = false;
  /// Cross-cycle recovery group size; 0 disables recovery beacons.
  int recovery_k = 0;
  /// Send a recovery beacon every `stride` fresh messages, each covering
  /// the last `recovery_k`. 0 = recovery_k / 2 (min 1): overlapping
  /// groups, so every message is covered twice and two-loss patterns
  /// that fall across group boundaries remain recoverable.
  int recovery_stride = 0;
};

/// Loss-adaptive redundancy (closed-loop tuning of open-loop FEC): the
/// sender listens for controller ChannelReports in its RX windows and
/// walks up `tiers` while the reported loss stays above
/// `raise_loss_pct`, back down when it stays below `clear_loss_pct`.
/// The band between the two thresholds is a hysteresis dead zone: both
/// streaks reset, the tier holds, and the sender cannot oscillate while
/// an estimate decays through the middle. With no controller audible for
/// `fallback_after_cycles` duty cycles the sender switches to the
/// configured open-loop `fallback_tier` (it cannot know the channel, so
/// it pays for scheduled redundancy instead).
struct AdaptationConfig {
  std::vector<RedundancyTier> tiers;  // base tier first, max redundancy last
  double raise_loss_pct = 10.0;       // report >= this: raise pressure
  double clear_loss_pct = 2.0;        // report <= this: clear pressure
  int raise_after = 1;                // consecutive high reports to raise
  int clear_after = 2;                // consecutive low reports to clear
  int fallback_after_cycles = 0;      // 0 = never fall back
  std::size_t fallback_tier = 0;
  /// Stale-report watchdog: with ChannelReports silent for this many
  /// duty cycles, the tier starts decaying one step toward
  /// `fallback_tier` every `decay_every` further cycles instead of
  /// freezing at the last commanded tier (a dead controller must not
  /// pin a sender at maximum redundancy forever). 0 = disabled. Decay
  /// composes with fallback_after_cycles: decay walks, fallback jumps.
  int decay_after_cycles = 0;
  int decay_every = 1;
};

/// Intermittent-power operation (see power/harvester.hpp): the sender
/// runs off a harvested capacitor instead of an infinite supply. Wakes
/// are gated on a charge budget, brown-outs checkpoint the in-flight
/// cycle, and recharged devices resume the cycle instead of restarting.
struct HarvestingConfig {
  power::HarvesterConfig harvester{};
  /// Wake gate: skip a duty cycle unless the settled charge covers
  /// `wake_margin * estimated_cycle_cost()` (headroom for CSMA
  /// deferral and fragment-count variance the estimate cannot see).
  double wake_margin = 1.5;
  /// Recharge target after a brown-out, as the same multiple of the
  /// estimated cycle cost (clamped to the capacitor's capacity).
  double resume_margin = 1.5;
  /// Bounded staleness: a checkpointed sample older than this when the
  /// device finally recharges is discarded, not retransmitted — the
  /// reading no longer describes the world. 0 = keep forever.
  Duration max_checkpoint_age = minutes(5);
};

/// 802.11ba wake-up radio companion (the third transmission mode beside
/// Wi-LE duty cycles and BLE advertising). The main 802.11 radio stays
/// in deep sleep while a uW-class OOK companion receiver listens
/// continuously; an AP wake-up frame addressed to this device's WUR ID
/// (or one of its groups) triggers one full wake->inject->sleep cycle.
/// The listen draw rides the power timeline as an always-on overlay, so
/// the Harvester/EnergyGovernor see it and a brown-out darkens it.
struct WurCompanionConfig {
  /// 12-bit WUR ID this companion answers to. 0 = derive from device_id.
  std::uint16_t wur_id = 0;
  /// Group membership for multicast wakes; 0 = no group.
  std::uint16_t group_id = 0;
  power::WurReceiverModel receiver{};
};

struct SenderConfig {
  std::uint32_t device_id = 1;
  /// Locally-administered MAC the fake beacons claim as their BSSID.
  /// Zero = derive from device_id.
  MacAddress mac = MacAddress::zero();
  phy::WifiRate rate = phy::WifiRate::Mcs7Sgi;  // 72 Mbps, §5.4
  /// §1 suggests 5 GHz to escape the crowded 2.4 GHz band; pair with a
  /// Medium built from phy::ChannelConfig::for_band(Band::G5).
  phy::Band band = phy::Band::G2_4;
  double tx_power_dbm = 0.0;                    // §5.4: 0 dBm, BLE-class range
  /// 16-byte device key enabling payload encryption (§6 "Security").
  std::optional<Bytes> key;

  /// Duty-cycle period (the paper sweeps 0-5 minutes in Fig. 4).
  Duration period = minutes(1);
  /// Systematic clock error in parts-per-million (±). Real sleep clocks
  /// have tens of ppm; §6 argues this drift un-synchronises colliding
  /// devices. Applied multiplicatively to every period.
  double clock_ppm_error = 0.0;
  /// Additional uniform per-wake jitter (± this amount).
  Duration wake_jitter = Duration{0};

  /// Defer to CSMA before injecting (polite: checks the channel). The
  /// off setting models the cheapest possible injector and is what the
  /// collision ablation (E7) exercises.
  bool use_csma = true;

  /// Inject each beacon this many times per cycle (1 = paper behaviour).
  /// Broadcast frames carry no ACK, so repetition is the standard
  /// open-loop reliability lever; receivers de-duplicate by sequence
  /// number. Energy per message scales linearly.
  int repeats = 1;

  /// Advertised beacon interval field in the fake beacon (TUs).
  std::uint16_t beacon_interval_tu = 100;
  /// Non-empty = advertise this SSID openly instead of the hidden-SSID
  /// null element (the spam ablation; §4.1 explains why hidden wins).
  std::string spoofed_ssid;

  /// Related-work arm (§2, beacon-stuffing): carry the message in the
  /// SSID field itself instead of a vendor IE. Caps the payload at
  /// kSsidStuffingCapacity bytes, truncates the sequence number to 8
  /// bits, forgoes encryption/fragmentation/rx-windows — and spams every
  /// nearby scan list. Mutually exclusive with spoofed_ssid.
  bool ssid_stuffing = false;

  /// Two-way extension: announce an RX window on every beacon.
  std::optional<RxWindow> rx_window;

  /// Reliable mode (a §6-grade extension): retransmit a message — same
  /// sequence number — on subsequent cycles until a controller Ack
  /// arrives in the RX window, up to reliable_max_attempts per message.
  /// Requires rx_window; pair with ControllerConfig::auto_ack.
  bool reliable = false;
  int reliable_max_attempts = 3;

  /// First uplink sequence number (devices persisting their counter
  /// across reboots resume mid-space; also pins wraparound tests).
  std::uint32_t initial_sequence = 0;

  /// Fixed FEC tier (see RedundancyTier): parity elements on fragmented
  /// messages and periodic cross-cycle Recovery beacons. Ignored for the
  /// ssid_stuffing arm (no vendor elements to protect).
  bool fec_parity = false;
  int recovery_k = 0;
  int recovery_stride = 0;

  /// Loss-adaptive redundancy: overrides repeats/fec_parity/recovery_*
  /// with the active tier. Requires rx_window (reports arrive like Acks)
  /// and a controller with channel_reports enabled to leave the base
  /// tier — except via the no-controller fallback.
  std::optional<AdaptationConfig> adaptation;

  /// Batteryless operation: run off a harvested capacitor (see
  /// HarvestingConfig). Absent = the legacy infinite supply.
  std::optional<HarvestingConfig> harvesting;

  /// 802.11ba wake-up radio companion receiver. Absent = no companion
  /// circuit; set, it enables arm_wur() and adds the uW listen draw to
  /// every power-timeline segment.
  std::optional<WurCompanionConfig> wur;

  power::Esp32PowerProfile power{};

  /// Bound on the power timeline's retained segment history (0 =
  /// unbounded). Fleet-scale simulations set a small bound so 100k
  /// devices don't each keep an hour of phase annotations; energy
  /// totals stay exact (power::PowerTimeline::set_max_segments).
  std::size_t timeline_max_segments = 0;
};

struct SendReport {
  bool success = false;
  std::uint32_t sequence = 0;
  int beacons_sent = 0;       // fragments transmitted
  Duration tx_airtime{};      // on-air time, all fragments
  /// Reliable mode: this cycle's message was acknowledged in its window.
  bool acked = false;
  /// Reliable mode: this cycle retransmitted a previously unacked message.
  bool retransmission = false;
  /// Harvesting: this cycle resumed from a brown-out checkpoint (same
  /// sequence as the interrupted attempt; receivers dedupe).
  bool resumed = false;
  /// Table-1 accounting: "we consider only the time required to transmit
  /// the packet" — (airtime + PA ramp) x TX power draw.
  Joules tx_only_energy{};
  /// Whole wake->sleep cycle energy, init and shutdown included.
  Joules cycle_energy{};
  Duration active_time{};
  std::size_t downlinks_received = 0;  // during this cycle's RX window
  /// FEC accounting: beacons/airtime/energy spent on redundancy this
  /// cycle (parity elements + recovery beacons). Included in the totals
  /// above; broken out so benches can price the erasure code exactly.
  int parity_beacons = 0;
  Duration parity_airtime{};
  Joules parity_tx_energy{};
  /// Active redundancy tier index (0 unless adaptation raised it).
  std::size_t tier = 0;
};

class Sender : public sim::MediumClient {
 public:
  Sender(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
         SenderConfig config, Rng rng);

  using SendCallback = std::function<void(const SendReport&)>;
  using PayloadProvider = std::function<Bytes()>;
  using DownlinkCallback = std::function<void(const Message&)>;

  /// One-shot: wake from deep sleep, inject, sleep, report.
  void send_now(Bytes data, SendCallback done);

  /// Periodic operation: every (jittered) period, wake and transmit
  /// whatever `provider` returns. `per_cycle` fires after each cycle.
  void start_duty_cycle(PayloadProvider provider, SendCallback per_cycle = {});
  void stop_duty_cycle();

  /// 802.11ba duty model: arm the wake-up companion receiver and stay in
  /// deep sleep. Every AP wake-up frame matching this device's WUR ID or
  /// group triggers one wake->inject->sleep cycle transmitting whatever
  /// `provider` returns (uplink rides the normal Wi-LE beacon path).
  /// Requires config.wur. There is no periodic timer — the AP owns the
  /// cadence.
  void arm_wur(PayloadProvider provider, SendCallback per_cycle = {});
  void disarm_wur() { wur_armed_ = false; }

  /// Deliver Downlink messages received during announced RX windows.
  void set_downlink_callback(DownlinkCallback cb) { downlink_cb_ = std::move(cb); }

  /// Step the sleep clock's systematic error at runtime (fault injection:
  /// a temperature excursion shifting the crystal). Takes effect from the
  /// next scheduled wake onward; jittered_period() reads it per cycle.
  void apply_clock_drift_ppm(double ppm) { config_.clock_ppm_error = ppm; }

  [[nodiscard]] const power::PowerTimeline& timeline() const { return timeline_; }
  [[nodiscard]] const SenderConfig& config() const { return config_; }
  [[nodiscard]] sim::NodeId node_id() const { return node_id_; }
  [[nodiscard]] std::uint32_t next_sequence() const { return sequence_; }
  [[nodiscard]] std::uint64_t cycles_run() const { return cycles_; }
  /// Beacons injected since construction (fragments, repeats, parity and
  /// recovery beacons included).
  [[nodiscard]] std::uint64_t beacons_sent() const { return beacons_sent_total_; }
  /// Cumulative on-air time of everything this device transmitted.
  [[nodiscard]] Duration tx_airtime_total() const { return tx_airtime_total_; }

  // --- telemetry -------------------------------------------------------------
  /// Bind this device's counters into a telemetry registry under
  /// `prefix` (canonically "node.<id>.sender"): TX counts/airtime,
  /// cycle counters, FEC/adaptation state and an integrated-energy
  /// gauge over the power timeline. Also claims a registry-owned
  /// histogram of per-cycle active time. Non-const only because the
  /// histogram slot is cached for lookup-free recording.
  void publish_metrics(telemetry::MetricsRegistry& registry,
                       const std::string& prefix);

  /// Attach a protocol-phase tracer (nullptr detaches). The sender emits
  /// wake/sample/encode/csma/tx/rx-window/sleep spans on the simulated
  /// clock only while the tracer is attached AND enabled.
  void set_tracer(telemetry::Tracer* tracer) { tracer_ = tracer; }
  /// Reliable mode: messages abandoned after reliable_max_attempts.
  [[nodiscard]] std::uint64_t messages_dropped_unacked() const {
    return dropped_unacked_;
  }

  // --- FEC / adaptation observability ---------------------------------------
  /// Active redundancy tier index (always 0 without adaptation).
  [[nodiscard]] std::size_t current_tier() const { return tier_; }
  [[nodiscard]] std::uint64_t reports_received() const { return reports_received_; }
  [[nodiscard]] std::uint64_t tier_raises() const { return tier_raises_; }
  [[nodiscard]] std::uint64_t tier_clears() const { return tier_clears_; }
  /// True while running the open-loop fallback tier (controller silent).
  [[nodiscard]] bool fallback_active() const { return fallback_active_; }
  /// Stale-report watchdog steps taken toward the fallback tier.
  [[nodiscard]] std::uint64_t tier_decays() const { return tier_decays_; }
  [[nodiscard]] std::uint64_t recovery_beacons_sent() const {
    return recovery_beacons_sent_;
  }

  // --- intermittent power observability --------------------------------------
  /// Non-null iff config.harvesting was set. The governor is also the
  /// sim::EnergyFaultTarget to hand FaultInjector::attach_energy_target.
  [[nodiscard]] power::EnergyGovernor* energy_governor() { return governor_.get(); }
  [[nodiscard]] const power::EnergyGovernor* energy_governor() const {
    return governor_.get();
  }
  /// True between a brown-out and the recharge that clears it.
  [[nodiscard]] bool recovering() const { return recovering_; }
  [[nodiscard]] std::uint64_t brown_outs() const { return brown_outs_total_; }
  [[nodiscard]] std::uint64_t cycles_resumed() const { return cycles_resumed_; }
  [[nodiscard]] std::uint64_t cycles_aborted_stale() const {
    return cycles_aborted_stale_;
  }
  /// Wakes skipped because the capacitor could not fund a full cycle.
  [[nodiscard]] std::uint64_t cycles_skipped_energy() const {
    return cycles_skipped_energy_;
  }
  /// Charge budget the wake gate compares against (one nominal cycle at
  /// the active tier, margins excluded). Exposed for benches/tests.
  [[nodiscard]] Joules estimated_cycle_cost() const;

  // --- WUR observability ------------------------------------------------------
  /// Wake-up frames that matched this device and triggered a cycle.
  [[nodiscard]] std::uint64_t wur_wakes() const { return wur_wakes_total_; }
  /// Decoded wake-up frames addressed elsewhere (or stale repeats).
  [[nodiscard]] std::uint64_t wur_frames_ignored() const {
    return wur_frames_ignored_;
  }
  /// Effective (derived) 12-bit WUR ID; 0 when config.wur is absent.
  [[nodiscard]] std::uint16_t wur_id() const {
    return config_.wur ? config_.wur->wur_id : 0;
  }

  /// TX power draw (P_tx of Eq. 1) for this device profile.
  [[nodiscard]] Watts tx_power_draw() const {
    return config_.power.supply * config_.power.radio_tx;
  }
  /// Idle power draw (P_idle of Eq. 1): deep sleep.
  [[nodiscard]] Watts idle_power_draw() const {
    return config_.power.supply * config_.power.deep_sleep;
  }

  // --- sim::MediumClient -----------------------------------------------------
  void on_frame(const sim::RxFrame& frame) override;
  [[nodiscard]] bool rx_enabled() const override;

 private:
  enum class Phase { DeepSleep, Init, Tx, RxWindow, Shutdown };

  /// One frame of this cycle's train; `fec` marks pure-redundancy
  /// beacons (parity elements, recovery beacons) for energy accounting.
  struct CycleMpdu {
    Bytes mpdu;
    bool fec = false;
  };

  void begin_cycle(Bytes data, SendCallback done);
  /// Shared back half of begin_cycle/resume_cycle: encode `message`
  /// into this cycle's beacon train and schedule the init->TX chain.
  void encode_and_transmit(const Message& message, bool include_recovery);
  void inject_fragments(std::vector<CycleMpdu> mpdus, std::size_t index);
  void after_last_beacon();
  [[nodiscard]] RedundancyTier active_tier() const;
  /// Build this cycle's Recovery beacon if one is due, else nullopt.
  [[nodiscard]] std::optional<Message> maybe_recovery_message(const RedundancyTier& tier);
  void on_channel_report(const ChannelReport& report);
  void finish_cycle();
  void schedule_next_cycle();
  [[nodiscard]] Bytes build_beacon_mpdu(const dot11::InfoElement& vendor_ie);
  [[nodiscard]] Bytes build_ssid_stuffed_mpdu(const std::string& stuffed_ssid);
  [[nodiscard]] Duration jittered_period();

  sim::Scheduler& scheduler_;
  sim::Medium& medium_;
  SenderConfig config_;
  Rng rng_;
  sim::NodeId node_id_;
  std::unique_ptr<sim::Csma> csma_;
  power::PowerTimeline timeline_;
  power::RadioPowerTracker tracker_;
  Codec codec_;

  /// Precomputed beacon-body prefix (everything before the vendor IEs).
  Bytes body_prefix_;

  // --- telemetry hooks (null/zero when no registry is attached) -------------
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::Histogram* cycle_active_hist_ = nullptr;
  void trace_begin(telemetry::Phase p) {
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->begin(scheduler_.now(), node_id_, p);
    }
  }
  void trace_end(telemetry::Phase p) {
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->end(scheduler_.now(), node_id_, p);
    }
  }
  void trace_instant(telemetry::Phase p) {
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->instant(scheduler_.now(), node_id_, p);
    }
  }

  Phase phase_ = Phase::DeepSleep;
  std::uint32_t sequence_ = 0;
  std::uint16_t seq_ctl_ = 0;
  std::uint64_t cycles_ = 0;
  // Lifetime totals surfaced through the metrics registry.
  std::uint64_t beacons_sent_total_ = 0;
  std::uint64_t parity_beacons_total_ = 0;
  std::uint64_t downlinks_total_ = 0;
  std::uint64_t cycles_failed_total_ = 0;
  Duration tx_airtime_total_{};

  // current cycle bookkeeping
  SendCallback cycle_done_;
  TimePoint wake_time_{};
  Duration cycle_airtime_{};
  int cycle_beacons_ = 0;
  std::size_t cycle_downlinks_ = 0;
  bool cycle_failed_ = false;
  bool cycle_acked_ = false;
  bool cycle_retransmission_ = false;
  bool cycle_resumed_ = false;
  std::uint32_t cycle_sequence_ = 0;  // the sequence this cycle carries
  int cycle_parity_beacons_ = 0;
  Duration cycle_parity_airtime_{};

  // FEC: payloads of the last kMaxRecoveryGroup fresh messages, for
  // cross-cycle recovery beacons.
  struct RecentMessage {
    std::uint32_t sequence = 0;
    MessageType type = MessageType::Telemetry;
    Bytes data;
  };
  std::vector<RecentMessage> recent_sent_;
  int msgs_since_recovery_ = 0;
  std::uint32_t recovery_sequence_ = 0;  // own space; never perturbs loss gaps
  std::uint64_t recovery_beacons_sent_ = 0;

  // adaptation state machine
  std::size_t tier_ = 0;
  int raise_streak_ = 0;
  int clear_streak_ = 0;
  std::uint64_t cycles_since_report_ = 0;
  bool fallback_active_ = false;
  std::uint64_t reports_received_ = 0;
  std::uint64_t tier_raises_ = 0;
  std::uint64_t tier_clears_ = 0;

  // reliable mode
  std::optional<Message> unacked_;
  int unacked_attempts_ = 0;
  std::uint64_t dropped_unacked_ = 0;
  [[nodiscard]] bool will_retransmit() const {
    return config_.reliable && unacked_ &&
           unacked_attempts_ < config_.reliable_max_attempts;
  }

  // adaptation: stale-report decay
  std::uint64_t tier_decays_ = 0;

  // --- intermittent power (harvesting) --------------------------------------
  // The persistent region an intermittent device keeps across
  // brown-outs: sequence_/recovery_sequence_/recent_sent_/
  // msgs_since_recovery_ above (FRAM-class state), plus the checkpoint
  // of the in-flight cycle written before the risky phases.
  struct Checkpoint {
    Message message;          // sequence already assigned
    TimePoint sampled_at{};   // staleness is measured from first sampling
  };
  void on_brown_out();
  void schedule_resume();
  void resume_cycle();
  [[nodiscard]] Joules resume_target() const;
  /// True (and the brown-out path has run) if the capacitor is dry at
  /// this phase boundary. No-op without harvesting.
  bool maybe_brown_out();

  std::unique_ptr<power::EnergyGovernor> governor_;
  std::optional<Checkpoint> checkpoint_;
  /// Bumped on every brown-out; scheduled cycle lambdas capture the
  /// epoch they belong to and bail when stranded.
  std::uint64_t cycle_epoch_ = 0;
  bool recovering_ = false;
  std::optional<sim::EventId> resume_event_;
  TimePoint brown_out_at_{};
  std::uint64_t brown_outs_total_ = 0;
  std::uint64_t cycles_resumed_ = 0;
  std::uint64_t cycles_aborted_stale_ = 0;
  std::uint64_t cycles_skipped_energy_ = 0;
  telemetry::Histogram* recharge_hist_ = nullptr;

  // duty cycle
  bool duty_cycling_ = false;
  PayloadProvider provider_;
  SendCallback per_cycle_;

  // --- 802.11ba wake-up companion ---------------------------------------------
  void on_wakeup_frame(const phy::WakeUpFrame& wake);
  bool wur_armed_ = false;
  std::uint64_t wur_wakes_total_ = 0;
  std::uint64_t wur_frames_ignored_ = 0;
  /// Sequence dedupe for repeated wake frames (per address kind).
  std::optional<std::uint8_t> last_unicast_wake_seq_;
  std::optional<std::uint8_t> last_group_wake_seq_;

  DownlinkCallback downlink_cb_;
};

}  // namespace wile::core
