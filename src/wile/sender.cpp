#include "wile/sender.hpp"

#include <algorithm>

#include "dot11/frame.hpp"
#include "dot11/mgmt.hpp"

namespace wile::core {

namespace {
// Phase labels matching the legend of Figure 3b.
constexpr const char* kPhaseSleep = "Sleep";
constexpr const char* kPhaseInit = "MC/WiFi init";
constexpr const char* kPhaseTx = "Tx";
constexpr const char* kPhaseRxWindow = "RxWindow";
constexpr const char* kPhaseBrownOut = "BrownOut";
/// Deep sleep with the 802.11ba companion receiver listening: the main
/// radio is off, the uW overlay is the only draw above deep-sleep.
constexpr const char* kPhaseWurListen = "WurListen";
}  // namespace

Sender::Sender(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
               SenderConfig config, Rng rng)
    : scheduler_(scheduler),
      medium_(medium),
      config_(std::move(config)),
      rng_(rng),
      timeline_(config_.power.supply),
      tracker_(scheduler, timeline_, config_.power.radio_tx, config_.power.tx_ramp),
      codec_(config_.key ? Codec{*config_.key} : Codec{}) {
  if (config_.mac.is_zero()) {
    config_.mac = MacAddress::from_seed(0xB13C000ULL + config_.device_id);
  }
  sequence_ = config_.initial_sequence;
  timeline_.set_max_segments(config_.timeline_max_segments);
  node_id_ = medium_.attach(this, position);
  sim::CsmaConfig csma_cfg;
  csma_cfg.tx_power_dbm = config_.tx_power_dbm;
  csma_cfg.band = config_.band;
  csma_ = std::make_unique<sim::Csma>(scheduler_, medium_, node_id_, rng_.fork(), csma_cfg);
  csma_->set_tx_listener([this](Duration airtime, phy::WifiRate) {
    tracker_.on_tx_start(airtime);
    trace_end(telemetry::Phase::Csma);  // deferral over, frame on the air
  });

  if (config_.harvesting) {
    governor_ = std::make_unique<power::EnergyGovernor>(scheduler_, timeline_,
                                                        config_.harvesting->harvester);
    governor_->set_brown_out_handler([this] { on_brown_out(); });
    governor_->set_harvest_changed_handler([this] {
      // A lifted fade turns "never" into a finite recharge time, and a
      // fresh fade invalidates a scheduled one — re-derive the resume.
      if (recovering_) schedule_resume();
    });
  }

  // Precompute the constant beacon-body prefix: timestamp placeholder is
  // patched per send; SSID (hidden unless spoofed), rates and channel
  // never change for a device.
  dot11::Beacon prototype;
  prototype.beacon_interval_tu = config_.beacon_interval_tu;
  prototype.capability = dot11::Capability::kEss | dot11::Capability::kShortSlot;
  prototype.ies.add(dot11::make_ssid_ie(config_.spoofed_ssid));  // "" = hidden
  prototype.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  prototype.ies.add(dot11::make_ds_param_ie(6));
  body_prefix_ = prototype.encode();

  if (config_.wur) {
    // Companion receiver: derive the 12-bit WUR ID when unset and hang
    // the always-on listen draw over every future timeline segment.
    if (config_.wur->wur_id == 0) {
      config_.wur->wur_id =
          static_cast<std::uint16_t>(config_.device_id) & phy::WurPhy::kMaxId;
    }
    tracker_.set_overlay(config_.wur->receiver.listen);
    tracker_.set_phase(config_.power.deep_sleep, kPhaseWurListen);
  } else {
    timeline_.set_current(scheduler_.now(), config_.power.deep_sleep, kPhaseSleep);
  }
}

bool Sender::rx_enabled() const {
  if (config_.wur && phase_ == Phase::DeepSleep) {
    // The uW companion receiver listens whenever the main radio sleeps —
    // unless a brown-out darkened the whole board.
    return !recovering_ && !medium_.transmitting(node_id_);
  }
  return phase_ == Phase::RxWindow && !medium_.transmitting(node_id_);
}

void Sender::send_now(Bytes data, SendCallback done) {
  if (phase_ != Phase::DeepSleep) {
    throw std::logic_error("wile::Sender: send_now requires deep sleep");
  }
  begin_cycle(std::move(data), std::move(done));
}

void Sender::start_duty_cycle(PayloadProvider provider, SendCallback per_cycle) {
  if (!provider) throw std::invalid_argument("wile::Sender: null payload provider");
  duty_cycling_ = true;
  provider_ = std::move(provider);
  per_cycle_ = std::move(per_cycle);
  schedule_next_cycle();
}

void Sender::stop_duty_cycle() { duty_cycling_ = false; }

void Sender::arm_wur(PayloadProvider provider, SendCallback per_cycle) {
  if (!config_.wur) {
    throw std::logic_error("wile::Sender: arm_wur requires SenderConfig::wur");
  }
  if (!provider) throw std::invalid_argument("wile::Sender: null payload provider");
  wur_armed_ = true;
  provider_ = std::move(provider);
  per_cycle_ = std::move(per_cycle);
}

void Sender::on_wakeup_frame(const phy::WakeUpFrame& wake) {
  const WurCompanionConfig& wur = *config_.wur;
  std::optional<std::uint8_t>& last_seq =
      wake.group_addressed ? last_group_wake_seq_ : last_unicast_wake_seq_;
  const bool addressed_here =
      wake.group_addressed ? (wur.group_id != 0 && wake.address == wur.group_id)
                           : wake.address == wur.wur_id;
  if (!addressed_here || !wur_armed_ || (last_seq && *last_seq == wake.seq)) {
    // Someone else's wake, a disarmed companion, or a reliability repeat
    // of a frame this device already acted on.
    ++wur_frames_ignored_;
    return;
  }
  last_seq = wake.seq;
  if (governor_) {
    // Same wake gate as the periodic duty cycle: a cycle the capacitor
    // cannot fund would brown out mid-flight.
    const Joules need{config_.harvesting->wake_margin * estimated_cycle_cost().value};
    if (!governor_->can_afford(need)) {
      ++cycles_skipped_energy_;
      return;
    }
  }
  ++wur_wakes_total_;
  // Companion decode + wake-interrupt latency, then the normal cycle.
  const std::uint64_t epoch = cycle_epoch_;
  scheduler_.schedule_in(wur.receiver.wake_latency, [this, epoch] {
    if (epoch != cycle_epoch_) return;        // browned out in the gap
    if (phase_ != Phase::DeepSleep) return;   // already mid-cycle
    if (!will_retransmit()) trace_instant(telemetry::Phase::Sample);
    Bytes data = will_retransmit() ? Bytes{} : provider_();
    begin_cycle(std::move(data), [this](const SendReport& report) {
      if (per_cycle_) per_cycle_(report);
    });
  });
}

Duration Sender::jittered_period() {
  double period_us = static_cast<double>(config_.period.count());
  period_us *= 1.0 + config_.clock_ppm_error * 1e-6;
  if (config_.wake_jitter.count() > 0) {
    period_us += static_cast<double>(
        rng_.range(-config_.wake_jitter.count(), config_.wake_jitter.count()));
  }
  return Duration{static_cast<std::int64_t>(period_us)};
}

void Sender::schedule_next_cycle() {
  scheduler_.schedule_in(jittered_period(), [this] {
    if (!duty_cycling_) return;
    // Maintain the wake cadence: the next timer runs from this wake-up,
    // not from cycle completion (the deep-sleep timer on the ESP32 is
    // armed before sleeping, so the period is wake-to-wake).
    schedule_next_cycle();
    if (phase_ != Phase::DeepSleep) return;  // previous cycle still busy
    if (recovering_) return;  // browned out: the resume path owns the restart
    if (governor_) {
      // Wake gate: a cycle the capacitor cannot fund would brown out
      // mid-flight; cheaper to stay asleep and let the charge build.
      const Joules need{config_.harvesting->wake_margin *
                        estimated_cycle_cost().value};
      if (!governor_->can_afford(need)) {
        ++cycles_skipped_energy_;
        return;
      }
    }
    // Reliable mode: don't consume fresh sensor data while a
    // retransmission is pending.
    if (!will_retransmit()) trace_instant(telemetry::Phase::Sample);
    Bytes data = will_retransmit() ? Bytes{} : provider_();
    begin_cycle(std::move(data), [this](const SendReport& report) {
      if (per_cycle_) per_cycle_(report);
    });
  });
}

Bytes Sender::build_beacon_mpdu(const dot11::InfoElement& vendor_ie) {
  // Patch the precomputed prefix: timestamp (first 8 bytes of the body).
  Bytes body = body_prefix_;
  const auto ts = static_cast<std::uint64_t>(scheduler_.now().us());
  for (int i = 0; i < 8; ++i) body[i] = static_cast<std::uint8_t>(ts >> (8 * i));
  // Append the data-bearing vendor element.
  ByteWriter ie_w(2 + vendor_ie.data.size());
  ie_w.u8(static_cast<std::uint8_t>(vendor_ie.id));
  ie_w.u8(static_cast<std::uint8_t>(vendor_ie.data.size()));
  ie_w.bytes(vendor_ie.data);
  const Bytes ie_bytes = ie_w.take();
  body.insert(body.end(), ie_bytes.begin(), ie_bytes.end());

  dot11::MacHeader h;
  h.fc = dot11::FrameControl::mgmt(dot11::MgmtSubtype::Beacon);
  h.addr1 = MacAddress::broadcast();
  h.addr2 = config_.mac;
  h.addr3 = config_.mac;  // the device itself is the (fake) BSSID
  h.set_sequence(seq_ctl_++ & 0x0fff);
  return dot11::assemble_mpdu(h, body);
}

Bytes Sender::build_ssid_stuffed_mpdu(const std::string& stuffed_ssid) {
  dot11::Beacon beacon;
  beacon.timestamp_us = static_cast<std::uint64_t>(scheduler_.now().us());
  beacon.beacon_interval_tu = config_.beacon_interval_tu;
  beacon.capability = dot11::Capability::kEss | dot11::Capability::kShortSlot;
  beacon.ies.add(dot11::make_ssid_ie(stuffed_ssid));  // data in the SSID itself
  beacon.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  beacon.ies.add(dot11::make_ds_param_ie(6));

  dot11::MacHeader h;
  h.fc = dot11::FrameControl::mgmt(dot11::MgmtSubtype::Beacon);
  h.addr1 = MacAddress::broadcast();
  h.addr2 = config_.mac;
  h.addr3 = config_.mac;
  h.set_sequence(seq_ctl_++ & 0x0fff);
  return dot11::assemble_mpdu(h, beacon.encode());
}

RedundancyTier Sender::active_tier() const {
  if (config_.adaptation && !config_.adaptation->tiers.empty()) {
    return config_.adaptation->tiers[std::min(tier_, config_.adaptation->tiers.size() - 1)];
  }
  RedundancyTier tier;
  tier.repeats = config_.repeats;
  tier.fec_parity = config_.fec_parity;
  tier.recovery_k = config_.recovery_k;
  tier.recovery_stride = config_.recovery_stride;
  return tier;
}

std::optional<Message> Sender::maybe_recovery_message(const RedundancyTier& tier) {
  const auto k = static_cast<std::size_t>(
      std::clamp<int>(tier.recovery_k, 0, static_cast<int>(kMaxRecoveryGroup)));
  if (k == 0 || recent_sent_.size() < k) return std::nullopt;
  const int stride = tier.recovery_stride > 0 ? tier.recovery_stride
                                              : std::max<int>(1, static_cast<int>(k) / 2);
  if (msgs_since_recovery_ < stride) return std::nullopt;
  msgs_since_recovery_ = 0;

  RecoveryPayload payload;
  payload.base_sequence = recent_sent_[recent_sent_.size() - k].sequence;
  for (std::size_t i = recent_sent_.size() - k; i < recent_sent_.size(); ++i) {
    const RecentMessage& r = recent_sent_[i];
    payload.entries.push_back(
        {r.type, static_cast<std::uint16_t>(std::min<std::size_t>(r.data.size(), 0xffff))});
    if (r.data.size() > payload.xor_block.size()) payload.xor_block.resize(r.data.size());
  }
  for (std::size_t i = recent_sent_.size() - k; i < recent_sent_.size(); ++i) {
    const Bytes& d = recent_sent_[i].data;
    for (std::size_t b = 0; b < d.size(); ++b) payload.xor_block[b] ^= d[b];
  }

  Message m;
  m.device_id = config_.device_id;
  m.sequence = recovery_sequence_++;
  m.type = MessageType::Recovery;
  m.data = encode_recovery_payload(payload);
  return m;
}

void Sender::begin_cycle(Bytes data, SendCallback done) {
  ++cycles_;
  cycle_done_ = std::move(done);
  wake_time_ = scheduler_.now();
  trace_begin(telemetry::Phase::Cycle);
  trace_begin(telemetry::Phase::Wake);
  cycle_airtime_ = Duration{0};
  cycle_beacons_ = 0;
  cycle_downlinks_ = 0;
  cycle_failed_ = false;
  cycle_acked_ = false;
  cycle_retransmission_ = false;
  cycle_resumed_ = false;
  cycle_parity_beacons_ = 0;
  cycle_parity_airtime_ = Duration{0};

  // No-controller fallback: with ChannelReports silent for long enough,
  // stop waiting for closed-loop guidance and run the configured
  // open-loop schedule.
  if (config_.adaptation && config_.adaptation->fallback_after_cycles > 0 &&
      !fallback_active_ &&
      cycles_since_report_ >=
          static_cast<std::uint64_t>(config_.adaptation->fallback_after_cycles) &&
      !config_.adaptation->tiers.empty()) {
    fallback_active_ = true;
    tier_ = std::min(config_.adaptation->fallback_tier, config_.adaptation->tiers.size() - 1);
  }
  // Stale-report watchdog: a silent controller walks the tier back
  // toward the open-loop fallback one step at a time instead of
  // freezing the sender at the last commanded redundancy level.
  if (config_.adaptation && config_.adaptation->decay_after_cycles > 0 &&
      !config_.adaptation->tiers.empty()) {
    const AdaptationConfig& a = *config_.adaptation;
    const std::size_t target = std::min(a.fallback_tier, a.tiers.size() - 1);
    const auto threshold = static_cast<std::uint64_t>(a.decay_after_cycles);
    const auto every = static_cast<std::uint64_t>(std::max(a.decay_every, 1));
    if (tier_ != target && cycles_since_report_ >= threshold &&
        (cycles_since_report_ - threshold) % every == 0) {
      if (tier_ < target) {
        ++tier_;
      } else {
        --tier_;
      }
      ++tier_decays_;
    }
  }
  ++cycles_since_report_;

  Message message;
  bool fresh = false;
  if (will_retransmit()) {
    // Reliable mode: repeat the unacknowledged message, same sequence.
    message = *unacked_;
    cycle_retransmission_ = true;
  } else {
    if (config_.reliable && unacked_) {
      // Retry budget exhausted: abandon and move on.
      ++dropped_unacked_;
      unacked_.reset();
      unacked_attempts_ = 0;
    }
    message.device_id = config_.device_id;
    message.sequence = sequence_++;
    message.type = MessageType::Telemetry;
    message.data = std::move(data);
    message.rx_window = config_.rx_window;
    fresh = true;
  }
  if (config_.reliable) {
    unacked_ = message;
    ++unacked_attempts_;
  }

  const bool fec_usable = !config_.ssid_stuffing;
  if (fresh && fec_usable) {
    recent_sent_.push_back({message.sequence, message.type, message.data});
    if (recent_sent_.size() > kMaxRecoveryGroup) {
      recent_sent_.erase(recent_sent_.begin());
    }
    ++msgs_since_recovery_;
  }
  cycle_sequence_ = message.sequence;

  // Intermittent power: checkpoint the cycle into the persistent region
  // before any risky phase. The sequence is already assigned and the FEC
  // accumulator already booked the sample, so a post-brown-out resume
  // replays the identical train instead of minting a duplicate.
  if (governor_) checkpoint_ = Checkpoint{message, scheduler_.now()};

  encode_and_transmit(message, fresh && fec_usable);
}

void Sender::encode_and_transmit(const Message& message, bool include_recovery) {
  const RedundancyTier tier = active_tier();
  std::vector<CycleMpdu> mpdus;
  trace_instant(telemetry::Phase::Encode);
  try {
    std::vector<CycleMpdu> once;
    if (config_.ssid_stuffing) {
      if (auto stuffed = encode_ssid_stuffed(message)) {
        once.push_back({build_ssid_stuffed_mpdu(*stuffed), false});
      } else {
        cycle_failed_ = true;  // message does not fit the SSID field
      }
    } else {
      const auto elements = codec_.encode(message, tier.fec_parity);
      // With parity on, a fragmented message's last element is the
      // parity (encode() only appends one when there are >= 2 data
      // fragments, so a parity train always has >= 3 elements).
      const std::size_t parity_from =
          tier.fec_parity && elements.size() >= 3 ? elements.size() - 1 : elements.size();
      for (std::size_t i = 0; i < elements.size(); ++i) {
        once.push_back({build_beacon_mpdu(elements[i]), i >= parity_from});
      }
    }
    // Open-loop reliability: repeat the whole fragment train. Receivers
    // drop the duplicates by (device, sequence).
    const int repeats = std::max(tier.repeats, 1);
    for (int r = 0; r < repeats; ++r) {
      mpdus.insert(mpdus.end(), once.begin(), once.end());
    }
    // Cross-cycle FEC: one (unrepeated) recovery beacon when due.
    if (include_recovery) {
      if (auto recovery = maybe_recovery_message(tier)) {
        for (const auto& ie : codec_.encode(*recovery)) {
          mpdus.push_back({build_beacon_mpdu(ie), true});
        }
        ++recovery_beacons_sent_;
      }
    }
  } catch (const std::invalid_argument&) {
    cycle_failed_ = true;
  }

  phase_ = Phase::Init;
  tracker_.set_phase(config_.power.cpu_active, kPhaseInit);
  const Duration init =
      config_.power.boot_from_deep_sleep + config_.power.wifi_inject_init;
  const std::uint64_t epoch = cycle_epoch_;
  scheduler_.schedule_in(init, [this, epoch, mpdus = std::move(mpdus)]() mutable {
    if (epoch != cycle_epoch_) return;  // browned out during init
    trace_end(telemetry::Phase::Wake);
    if (maybe_brown_out()) return;  // the init phase outran the charge
    if (cycle_failed_ || mpdus.empty()) {
      finish_cycle();
      return;
    }
    phase_ = Phase::Tx;
    tracker_.set_phase(config_.power.cpu_active, kPhaseTx);
    trace_begin(telemetry::Phase::Tx);
    inject_fragments(std::move(mpdus), 0);
  });
}

void Sender::inject_fragments(std::vector<CycleMpdu> mpdus, std::size_t index) {
  // Organic brown-out check at every fragment boundary: a capacitor
  // that ran dry during the previous fragment kills the train here.
  if (maybe_brown_out()) return;
  if (index >= mpdus.size()) {
    trace_end(telemetry::Phase::Tx);
    after_last_beacon();
    return;
  }
  const Bytes& mpdu = mpdus[index].mpdu;
  const Duration airtime = phy::frame_airtime(mpdu.size(), config_.rate, config_.band);
  cycle_airtime_ += airtime;
  ++cycle_beacons_;
  ++beacons_sent_total_;
  tx_airtime_total_ += airtime;
  if (mpdus[index].fec) {
    cycle_parity_airtime_ += airtime;
    ++cycle_parity_beacons_;
    ++parity_beacons_total_;
  }

  const std::uint64_t epoch = cycle_epoch_;
  if (config_.use_csma) {
    trace_begin(telemetry::Phase::Csma);
    csma_->send(mpdu, config_.rate, /*expect_ack=*/false,
                [this, epoch, mpdus = std::move(mpdus),
                 index](const sim::Csma::Result&) mutable {
                  if (epoch != cycle_epoch_) return;  // browned out mid-train
                  inject_fragments(std::move(mpdus), index + 1);
                });
  } else {
    // Raw injection: fire immediately, no carrier sense (E7 ablation).
    sim::TxRequest req;
    req.mpdu = mpdu;
    req.airtime = airtime;
    req.tx_power_dbm = config_.tx_power_dbm;
    req.rate = config_.rate;
    req.on_complete = [this, epoch, mpdus = std::move(mpdus), index]() mutable {
      if (epoch != cycle_epoch_) return;  // browned out mid-train
      inject_fragments(std::move(mpdus), index + 1);
    };
    tracker_.on_tx_start(airtime);
    medium_.transmit(node_id_, std::move(req));
  }
}

void Sender::after_last_beacon() {
  // The train is on the air: the sample has been transmitted, so the
  // checkpoint has nothing left to protect. A brown-out from here on
  // costs only the RX window / report, never the reading.
  checkpoint_.reset();
  if (!config_.rx_window) {
    finish_cycle();
    return;
  }
  // Two-way extension: idle briefly, then listen for the announced
  // window. The radio draws RX current for the whole window — this is
  // the energy cost E8 measures against always-on listening.
  phase_ = Phase::Tx;  // offset gap: radio on but not yet listening
  tracker_.set_phase(config_.power.cpu_active, kPhaseRxWindow);
  const std::uint64_t epoch = cycle_epoch_;
  scheduler_.schedule_in(config_.rx_window->offset, [this, epoch] {
    if (epoch != cycle_epoch_) return;
    if (maybe_brown_out()) return;
    phase_ = Phase::RxWindow;
    tracker_.set_phase(config_.power.radio_rx, kPhaseRxWindow);
    trace_begin(telemetry::Phase::RxWindow);
    scheduler_.schedule_in(config_.rx_window->duration, [this, epoch] {
      if (epoch != cycle_epoch_) return;
      trace_end(telemetry::Phase::RxWindow);
      finish_cycle();
    });
  });
}

void Sender::finish_cycle() {
  checkpoint_.reset();  // cycle completed (or failed terminally)
  phase_ = Phase::Shutdown;
  tracker_.set_phase(config_.power.cpu_active, kPhaseInit);
  const std::uint64_t epoch = cycle_epoch_;
  scheduler_.schedule_in(config_.power.shutdown_time, [this, epoch] {
    if (epoch != cycle_epoch_) return;  // browned out during shutdown
    phase_ = Phase::DeepSleep;
    tracker_.set_phase(config_.power.deep_sleep,
                       config_.wur ? kPhaseWurListen : kPhaseSleep);
    // A capacitor that ran dry during shutdown browns out here; the
    // cycle's work is done, so only the recharge wait is at stake.
    maybe_brown_out();

    SendReport report;
    report.success = !cycle_failed_ && cycle_beacons_ > 0;
    report.sequence = cycle_sequence_;
    report.resumed = cycle_resumed_;
    report.beacons_sent = cycle_beacons_;
    report.tx_airtime = cycle_airtime_;
    const Duration tx_time =
        cycle_airtime_ + Duration{config_.power.tx_ramp.count() * cycle_beacons_};
    report.tx_only_energy = tx_power_draw() * tx_time;
    report.parity_beacons = cycle_parity_beacons_;
    report.parity_airtime = cycle_parity_airtime_;
    report.parity_tx_energy =
        tx_power_draw() * (cycle_parity_airtime_ +
                           Duration{config_.power.tx_ramp.count() * cycle_parity_beacons_});
    report.tier = tier_;
    report.active_time = scheduler_.now() - wake_time_;
    report.cycle_energy = timeline_.energy_between(wake_time_, scheduler_.now());
    report.downlinks_received = cycle_downlinks_;
    report.acked = cycle_acked_;
    report.retransmission = cycle_retransmission_;
    if (!report.success) ++cycles_failed_total_;
    if (cycle_active_hist_ != nullptr) {
      cycle_active_hist_->record(static_cast<std::uint64_t>(report.active_time.count()));
    }
    trace_instant(telemetry::Phase::Sleep);
    trace_end(telemetry::Phase::Cycle);
    if (cycle_done_) {
      auto cb = std::move(cycle_done_);
      cycle_done_ = {};
      cb(report);
    }
  });
}

// ---------------------------------------------------------------------------
// Intermittent power: gating, checkpointing, brown-out recovery.
// ---------------------------------------------------------------------------

Joules Sender::estimated_cycle_cost() const {
  const auto& p = config_.power;
  const RedundancyTier tier = active_tier();
  // Nominal cost of one cycle at the active tier: init + a
  // single-fragment train (typical beacon size) + RX window + shutdown.
  // The HarvestingConfig margins absorb what this cannot see (CSMA
  // deferral, fragmentation, recovery beacons).
  constexpr std::size_t kNominalMpduBytes = 128;
  const Duration airtime =
      phy::frame_airtime(kNominalMpduBytes, config_.rate, config_.band);
  const int beacons =
      std::max(tier.repeats, 1) + ((tier.fec_parity || tier.recovery_k > 0) ? 1 : 0);
  const Watts cpu = p.supply * p.cpu_active;
  Joules cost = cpu * (p.boot_from_deep_sleep + p.wifi_inject_init + p.shutdown_time);
  cost += tx_power_draw() * Duration{(airtime.count() + p.tx_ramp.count()) * beacons};
  if (config_.rx_window) {
    cost += cpu * config_.rx_window->offset;
    cost += (p.supply * p.radio_rx) * config_.rx_window->duration;
  }
  return cost;
}

bool Sender::maybe_brown_out() { return governor_ && governor_->check_brown_out(); }

void Sender::on_brown_out() {
  ++brown_outs_total_;
  trace_instant(telemetry::Phase::BrownOut);
  if (phase_ != Phase::DeepSleep) {
    // Kill the in-flight cycle: strand its scheduled continuations via
    // the epoch, flush the CSMA queue, power down. The checkpoint
    // written in begin_cycle survives in the persistent region.
    ++cycle_epoch_;
    csma_->drop_queued();
    phase_ = Phase::DeepSleep;
  }
  recovering_ = true;
  brown_out_at_ = scheduler_.now();
  // Dark: not even sleep current, and the WUR companion receiver dies
  // with the rest of the board (its overlay must not keep integrating).
  if (config_.wur) tracker_.set_overlay(Amps{0.0});
  tracker_.set_phase(Amps{0.0}, kPhaseBrownOut);
  schedule_resume();
}

Joules Sender::resume_target() const {
  // Clamped to capacity: a small capacitor must still be able to resume
  // even when the margin asks for more than it can ever hold.
  const double want = config_.harvesting->resume_margin * estimated_cycle_cost().value;
  return Joules{std::min(want, governor_->harvester().capacity().value)};
}

void Sender::schedule_resume() {
  if (resume_event_) {
    scheduler_.cancel(*resume_event_);
    resume_event_.reset();
  }
  if (!recovering_) return;
  const Duration wait = governor_->time_until(resume_target());
  // During a drought the harvest can never reach the target; the
  // harvest-changed handler re-derives this when the fade lifts.
  if (wait == Duration::max()) return;
  resume_event_ = scheduler_.schedule_in(std::max<Duration>(wait, usec(1)), [this] {
    resume_event_.reset();
    resume_cycle();
  });
}

void Sender::resume_cycle() {
  // A fade may have raced the recharge timer; re-derive if still short.
  if (governor_->charge() < resume_target()) {
    schedule_resume();
    return;
  }
  recovering_ = false;
  if (config_.wur) tracker_.set_overlay(config_.wur->receiver.listen);
  tracker_.set_phase(config_.power.deep_sleep,
                     config_.wur ? kPhaseWurListen : kPhaseSleep);
  trace_instant(telemetry::Phase::Recharge);
  if (recharge_hist_ != nullptr) {
    recharge_hist_->record(
        static_cast<std::uint64_t>((scheduler_.now() - brown_out_at_).count()));
  }
  if (!checkpoint_) return;  // browned out while asleep: nothing to replay

  Checkpoint cp = std::move(*checkpoint_);
  checkpoint_.reset();
  const Duration age = scheduler_.now() - cp.sampled_at;
  const Duration bound = config_.harvesting->max_checkpoint_age;
  if (bound.count() > 0 && age > bound) {
    // Bounded staleness: the reading no longer describes the world.
    // Drop it (the sequence stays consumed — receivers see a gap, which
    // is the honest signal) instead of retransmitting it forever.
    ++cycles_aborted_stale_;
    if (cycle_done_) {
      SendReport report;
      report.sequence = cp.message.sequence;
      auto cb = std::move(cycle_done_);
      cycle_done_ = {};
      cb(report);
    }
    return;
  }

  // Resume the interrupted cycle from the persistent region: identical
  // message, identical already-assigned sequence — receivers dedupe any
  // fragments that made it out before the lights went off. The FEC
  // accumulator already booked this sample, so no new recovery beacon.
  ++cycles_resumed_;
  wake_time_ = scheduler_.now();
  trace_begin(telemetry::Phase::Cycle);
  trace_begin(telemetry::Phase::Wake);
  cycle_airtime_ = Duration{0};
  cycle_beacons_ = 0;
  cycle_downlinks_ = 0;
  cycle_failed_ = false;
  cycle_acked_ = false;
  cycle_retransmission_ = false;
  cycle_resumed_ = true;
  cycle_parity_beacons_ = 0;
  cycle_parity_airtime_ = Duration{0};
  cycle_sequence_ = cp.message.sequence;
  checkpoint_ = Checkpoint{cp.message, cp.sampled_at};  // survive repeated brown-outs
  encode_and_transmit(cp.message, /*include_recovery=*/false);
}

void Sender::on_frame(const sim::RxFrame& frame) {
  if (config_.wur && phase_ == Phase::DeepSleep) {
    // Only the companion receiver is powered: the sole thing it can
    // decode is a 6-byte OOK wake-up frame. Everything else on the air
    // is energy the envelope detector discards.
    if (auto wake = phy::decode_wakeup_frame(frame.mpdu.view())) {
      on_wakeup_frame(*wake);
    }
    return;
  }
  if (phase_ != Phase::RxWindow) return;
  auto parsed = dot11::parse_mpdu(frame.mpdu);
  if (!parsed || !parsed->fcs_ok) return;
  if (!parsed->header.fc.is_mgmt(dot11::MgmtSubtype::Beacon)) return;
  auto beacon = dot11::Beacon::decode(parsed->body);
  if (!beacon) return;
  for (const Fragment& f : codec_.decode_all(beacon->ies)) {
    if (f.device_id != config_.device_id) continue;
    if (f.type == MessageType::ChannelReport) {
      if (auto report = decode_channel_report(f.data)) on_channel_report(*report);
      continue;
    }
    if (f.type == MessageType::Ack) {
      // Reliable mode: match the acknowledged sequence number.
      if (config_.reliable && unacked_ && f.data.size() == 4) {
        ByteReader r{f.data};
        if (r.u32le() == unacked_->sequence) {
          cycle_acked_ = true;
          unacked_.reset();
          unacked_attempts_ = 0;
        }
      }
      continue;
    }
    if (f.type != MessageType::Downlink) continue;
    Message m;
    m.device_id = f.device_id;
    m.sequence = f.sequence;
    m.type = f.type;
    m.data = f.data;
    ++cycle_downlinks_;
    ++downlinks_total_;
    if (downlink_cb_) downlink_cb_(m);
  }
}

void Sender::on_channel_report(const ChannelReport& report) {
  ++reports_received_;
  cycles_since_report_ = 0;
  fallback_active_ = false;  // a controller is audible again
  if (!config_.adaptation || config_.adaptation->tiers.empty()) return;
  const AdaptationConfig& a = *config_.adaptation;

  const double loss_pct = static_cast<double>(report.loss_permille) / 10.0;
  if (loss_pct >= a.raise_loss_pct) {
    clear_streak_ = 0;
    if (++raise_streak_ >= std::max(a.raise_after, 1)) {
      raise_streak_ = 0;
      if (tier_ + 1 < a.tiers.size()) {
        ++tier_;
        ++tier_raises_;
      }
    }
  } else if (loss_pct <= a.clear_loss_pct) {
    raise_streak_ = 0;
    if (++clear_streak_ >= std::max(a.clear_after, 1)) {
      clear_streak_ = 0;
      if (tier_ > 0) {
        --tier_;
        ++tier_clears_;
      }
    }
  } else {
    // Hysteresis dead zone: hold the tier, restart both streaks.
    raise_streak_ = 0;
    clear_streak_ = 0;
  }
}

void Sender::publish_metrics(telemetry::MetricsRegistry& registry,
                             const std::string& prefix) {
  registry.bind_counter(prefix + ".cycles", &cycles_);
  registry.bind_counter(prefix + ".cycles_failed", &cycles_failed_total_);
  registry.bind_counter(prefix + ".tx.beacons", &beacons_sent_total_);
  registry.bind_counter(prefix + ".tx.parity_beacons", &parity_beacons_total_);
  registry.bind_counter_fn(prefix + ".tx.airtime_us", [this] {
    return static_cast<std::uint64_t>(tx_airtime_total_.count());
  });
  registry.bind_counter(prefix + ".rx.downlinks", &downlinks_total_);
  registry.bind_counter(prefix + ".fec.recovery_beacons", &recovery_beacons_sent_);
  registry.bind_counter(prefix + ".adapt.reports_received", &reports_received_);
  registry.bind_counter(prefix + ".adapt.tier_raises", &tier_raises_);
  registry.bind_counter(prefix + ".adapt.tier_clears", &tier_clears_);
  registry.bind_counter(prefix + ".adapt.tier_decays", &tier_decays_);
  registry.bind_counter(prefix + ".reliable.dropped_unacked", &dropped_unacked_);
  if (config_.wur) {
    registry.bind_counter(prefix + ".wur.wakes", &wur_wakes_total_);
    registry.bind_counter(prefix + ".wur.frames_ignored", &wur_frames_ignored_);
  }
  registry.bind_gauge_fn(prefix + ".adapt.tier",
                         [this] { return static_cast<double>(tier_); });
  // Integrated energy since simulation start. PowerTimeline folds old
  // segment history on fleet runs but keeps the from-zero integral exact
  // (see PowerTimeline::set_max_segments), so this gauge is always the
  // true lifetime energy.
  registry.bind_gauge_fn(prefix + ".energy_j", [this] {
    return timeline_.energy_between(TimePoint{}, scheduler_.now()).value;
  });
  cycle_active_hist_ = registry.histogram(prefix + ".cycle_active_us");

  if (governor_) {
    registry.bind_counter(prefix + ".energy.brown_outs", &brown_outs_total_);
    registry.bind_counter(prefix + ".energy.cycles_resumed", &cycles_resumed_);
    registry.bind_counter(prefix + ".energy.cycles_aborted_stale",
                          &cycles_aborted_stale_);
    registry.bind_counter(prefix + ".energy.cycles_skipped", &cycles_skipped_energy_);
    // Charge gauge: a pure projection to the snapshot time. Reading it
    // never settles the governor, so attaching telemetry cannot perturb
    // the settlement sequence (same-seed runs stay bit-exact).
    registry.bind_gauge_fn(prefix + ".energy.charge_j", [this] {
      return governor_->projected_charge(scheduler_.now()).value;
    });
    // Resumed-vs-aborted is in the counters above; this histogram adds
    // how long each outage lasted (brown-out to recharge).
    recharge_hist_ = registry.histogram(prefix + ".energy.recharge_us");
  }
}

}  // namespace wile::core
